(* bmcastctl: drive BMcast deployments on the simulated testbed.

     dune exec bin/bmcastctl.exe -- deploy --image-gb 8 --disk ahci
     dune exec bin/bmcastctl.exe -- compare --image-gb 32
     dune exec bin/bmcastctl.exe -- params *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Machine = Bmcast_platform.Machine
module Os = Bmcast_guest.Os
module Vmm = Bmcast_core.Vmm
module Params = Bmcast_core.Params
module Stacks = Bmcast_experiments.Stacks

let secs t = Time.to_float_s t

(* --- deploy: one instance, streaming deployment, progress timeline --- *)

let deploy image_gb disk watch =
  let disk_kind =
    match disk with
    | "ide" -> Machine.Ide_disk
    | "ahci" -> Machine.Ahci_disk
    | other ->
      Printf.eprintf "unknown disk kind %S (ahci|ide)\n" other;
      exit 2
  in
  let env = Stacks.make_env ~image_gb () in
  let m = Stacks.machine env ~name:"instance0" ~disk_kind () in
  Printf.printf "Deploying a %d GB image to %s over AoE (disk: %s)\n%!"
    image_gb m.Machine.name disk;
  Stacks.run env (fun () ->
      let t0 = Sim.clock () in
      let rt, vmm = Stacks.bmcast env m () in
      Printf.printf "[%7.2fs] VMM booted (PXE + init); deployment phase begins\n%!"
        (secs (Time.diff (Sim.clock ()) t0));
      if watch then
        Sim.spawn (fun () ->
            let rec tick () =
              if Vmm.devirtualized_at vmm = None then begin
                Sim.sleep (Time.s 10);
                Printf.printf "[%7.2fs] progress %5.1f%%  guest IO %.0f/s\n%!"
                  (secs (Time.diff (Sim.clock ()) t0))
                  (Vmm.progress vmm *. 100.0)
                  (Vmm.guest_io_rate vmm);
                tick ()
              end
            in
            tick ());
      Os.boot rt ();
      Printf.printf "[%7.2fs] guest OS up (instance is serving)\n%!"
        (secs (Time.diff (Sim.clock ()) t0));
      Vmm.wait_devirtualized vmm;
      Printf.printf "[%7.2fs] de-virtualized: VMM gone, bare-metal phase\n%!"
        (secs (Time.diff (Sim.clock ()) t0));
      let t = Vmm.totals vmm in
      Printf.printf
        "totals: %d redirects (%.1f MB copy-on-read), %.1f MB background \
         copy,\n        %d multiplexed commands, %d queued guest commands, %d \
         VM exits, %d AoE retransmits\n%!"
        t.Vmm.redirects
        (float_of_int t.Vmm.redirected_bytes /. 1e6)
        (float_of_int t.Vmm.background_bytes /. 1e6)
        t.Vmm.multiplexed_ops t.Vmm.queued_commands t.Vmm.vm_exits
        t.Vmm.aoe_retransmits;
      Printf.printf "lifecycle:\n";
      List.iter
        (fun (at, what) ->
          Printf.printf "  [%7.2fs] %s\n" (secs (Time.diff at t0)) what)
        (Vmm.events vmm));
  0

(* --- chaos: deploy under a named fault scenario, check invariants --- *)

let chaos scenario seed image_mb =
  let module Fault = Bmcast_faults.Fault in
  let module Fabric = Bmcast_net.Fabric in
  let module Disk = Bmcast_storage.Disk in
  let module Vblade = Bmcast_proto.Vblade in
  let module Content = Bmcast_storage.Content in
  let module Block_io = Bmcast_guest.Block_io in
  let image_sectors = image_mb * 2048 in
  let plan =
    if scenario = "random" then
      Fault.random_plan ~seed ~active:(Time.s 10) ~image_sectors
    else
      match Fault.scenario ~image_sectors scenario with
      | Some p -> p
      | None ->
        Printf.eprintf "unknown scenario %S; known: random %s\n" scenario
          (String.concat " " Fault.scenario_names);
        exit 2
  in
  let sim = Sim.create ~seed () in
  let fabric = Fabric.create sim () in
  let profile =
    { Disk.hdd_constellation2 with Disk.capacity_sectors = 2 * image_sectors }
  in
  let server_disk = Disk.create sim profile in
  Disk.fill_with_image server_disk;
  let vblade = Vblade.create sim ~fabric ~name:"server" ~disk:server_disk () in
  let machine =
    Machine.create sim ~name:"instance0" ~disk_profile:profile
      ~disk_kind:Machine.Ahci_disk ~fabric ()
  in
  let params = Bmcast_core.Params.default ~image_sectors in
  Printf.printf "Chaos run: scenario %S, seed %d, %d MB image\n%!" scenario
    seed image_mb;
  let rig = { Fault.sim; fabric; server = vblade; server_disk } in
  let inj = Fault.inject rig plan in
  let vmm_ref = ref None in
  Sim.spawn_at sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot machine ~params ~server_port:(Vblade.port_id vblade) ()
      in
      vmm_ref := Some vmm;
      let blk = Block_io.attach machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm);
  Sim.run ~until:(Time.minutes 60) sim;
  let vmm = Option.get !vmm_ref in
  Printf.printf "fault trace:\n";
  List.iter
    (fun (at, what) -> Printf.printf "  [%7.2fs] %s\n" (secs at) what)
    (Fault.trace inj);
  Printf.printf "lifecycle:\n";
  List.iter
    (fun (at, what) -> Printf.printf "  [%7.2fs] %s\n" (secs at) what)
    (Vmm.events vmm);
  let t = Vmm.totals vmm in
  Printf.printf
    "totals: %d retransmits, %d escalations, %d fetch failures, %d server \
     crashes, %d injected disk errors\n"
    t.Vmm.aoe_retransmits t.Vmm.aoe_escalations t.Vmm.fetch_failures
    (Vblade.crashes vblade) (Disk.read_errors server_disk);
  let checks =
    Fault.Invariants.all ~image_sectors ~disk:machine.Machine.disk vmm
  in
  Printf.printf "invariants:\n%s\n" (Fault.Invariants.report checks);
  if Fault.Invariants.failures checks = [] then 0 else 1

(* --- compare: startup-time comparison (Figure 4 on demand) --- *)

let compare_cmd image_gb =
  Bmcast_experiments.Fig04_startup.run ~image_gb ();
  0

(* --- params: print the calibrated model constants --- *)

let params () =
  let p = Params.default ~image_sectors:Params.image_32gb_sectors in
  Printf.printf "BMcast deployment parameters (32 GB image):\n";
  Printf.printf "  chunk                 %d sectors (%d KB)\n"
    p.Params.chunk_sectors (p.Params.chunk_sectors / 2);
  Printf.printf "  VMM-write interval    %s\n"
    (Time.to_string p.Params.write_interval);
  Printf.printf "  suspend interval      %s\n"
    (Time.to_string p.Params.suspend_interval);
  Printf.printf "  guest IO threshold    %.0f IOs/s\n" p.Params.guest_io_threshold;
  Printf.printf "  poll interval         %s\n"
    (Time.to_string p.Params.poll_interval);
  Printf.printf "  VMM memory            %d MB\n"
    (p.Params.vmm_mem_bytes / 1024 / 1024);
  Printf.printf "  VM-exit cost          %s\n" (Time.to_string p.Params.exit_cost);
  Printf.printf "  deployment CPU steal  %.1f%%\n" (p.Params.deploy_steal *. 100.0);
  0

let () =
  let open Cmdliner in
  let image_gb =
    Arg.(value & opt int 8 & info [ "image-gb" ] ~docv:"GB" ~doc:"OS image size")
  in
  let disk =
    Arg.(value & opt string "ahci" & info [ "disk" ] ~docv:"KIND" ~doc:"ahci or ide")
  in
  let watch =
    Arg.(value & flag & info [ "watch" ] ~doc:"print deployment progress")
  in
  let deploy_cmd =
    Cmd.v
      (Cmd.info "deploy" ~doc:"stream-deploy one bare-metal instance")
      Term.(const deploy $ image_gb $ disk $ watch)
  in
  let compare_cmd =
    Cmd.v
      (Cmd.info "compare" ~doc:"compare startup time across deployment methods")
      Term.(const compare_cmd $ image_gb)
  in
  let scenario =
    Arg.(
      value
      & opt string "crash-mid-copy"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"fault scenario (or 'random' for a seeded random plan)")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed")
  in
  let image_mb =
    Arg.(
      value & opt int 256
      & info [ "image-mb" ] ~docv:"MB" ~doc:"OS image size in MB")
  in
  let chaos_cmd =
    Cmd.v
      (Cmd.info "chaos"
         ~doc:"deploy under a named fault scenario and check invariants")
      Term.(const chaos $ scenario $ seed $ image_mb)
  in
  let params_cmd =
    Cmd.v
      (Cmd.info "params" ~doc:"print deployment parameters")
      Term.(const params $ const ())
  in
  let group =
    Cmd.group
      (Cmd.info "bmcastctl" ~doc:"BMcast bare-metal deployment control")
      [ deploy_cmd; chaos_cmd; compare_cmd; params_cmd ]
  in
  exit (Cmd.eval' group)
