(* bmcastctl: drive BMcast deployments on the simulated testbed.

     dune exec bin/bmcastctl.exe -- deploy --image-gb 8 --disk ahci
     dune exec bin/bmcastctl.exe -- compare --image-gb 32
     dune exec bin/bmcastctl.exe -- params *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Machine = Bmcast_platform.Machine
module Os = Bmcast_guest.Os
module Vmm = Bmcast_core.Vmm
module Params = Bmcast_core.Params
module Stacks = Bmcast_experiments.Stacks

let secs t = Time.to_float_s t

(* --- deploy: one instance, streaming deployment, progress timeline --- *)

let deploy image_gb disk watch =
  let disk_kind =
    match disk with
    | "ide" -> Machine.Ide_disk
    | "ahci" -> Machine.Ahci_disk
    | other ->
      Printf.eprintf "unknown disk kind %S (ahci|ide)\n" other;
      exit 2
  in
  let env = Stacks.make_env ~image_gb () in
  let m = Stacks.machine env ~name:"instance0" ~disk_kind () in
  Printf.printf "Deploying a %d GB image to %s over AoE (disk: %s)\n%!"
    image_gb m.Machine.name disk;
  Stacks.run env (fun () ->
      let t0 = Sim.clock () in
      let rt, vmm = Stacks.bmcast env m () in
      Printf.printf "[%7.2fs] VMM booted (PXE + init); deployment phase begins\n%!"
        (secs (Time.diff (Sim.clock ()) t0));
      if watch then
        Sim.spawn (fun () ->
            let rec tick () =
              if Vmm.devirtualized_at vmm = None then begin
                Sim.sleep (Time.s 10);
                Printf.printf "[%7.2fs] progress %5.1f%%  guest IO %.0f/s\n%!"
                  (secs (Time.diff (Sim.clock ()) t0))
                  (Vmm.progress vmm *. 100.0)
                  (Vmm.guest_io_rate vmm);
                tick ()
              end
            in
            tick ());
      Os.boot rt ();
      Printf.printf "[%7.2fs] guest OS up (instance is serving)\n%!"
        (secs (Time.diff (Sim.clock ()) t0));
      Vmm.wait_devirtualized vmm;
      Printf.printf "[%7.2fs] de-virtualized: VMM gone, bare-metal phase\n%!"
        (secs (Time.diff (Sim.clock ()) t0));
      let t = Vmm.totals vmm in
      Printf.printf
        "totals: %d redirects (%.1f MB copy-on-read), %.1f MB background \
         copy,\n        %d multiplexed commands, %d queued guest commands, %d \
         VM exits, %d AoE retransmits\n%!"
        t.Vmm.redirects
        (float_of_int t.Vmm.redirected_bytes /. 1e6)
        (float_of_int t.Vmm.background_bytes /. 1e6)
        t.Vmm.multiplexed_ops t.Vmm.queued_commands t.Vmm.vm_exits
        t.Vmm.aoe_retransmits;
      Printf.printf "lifecycle:\n";
      List.iter
        (fun (at, what) ->
          Printf.printf "  [%7.2fs] %s\n" (secs (Time.diff at t0)) what)
        (Vmm.events vmm));
  0

(* --- compare: startup-time comparison (Figure 4 on demand) --- *)

let compare_cmd image_gb =
  Bmcast_experiments.Fig04_startup.run ~image_gb ();
  0

(* --- params: print the calibrated model constants --- *)

let params () =
  let p = Params.default ~image_sectors:Params.image_32gb_sectors in
  Printf.printf "BMcast deployment parameters (32 GB image):\n";
  Printf.printf "  chunk                 %d sectors (%d KB)\n"
    p.Params.chunk_sectors (p.Params.chunk_sectors / 2);
  Printf.printf "  VMM-write interval    %s\n"
    (Time.to_string p.Params.write_interval);
  Printf.printf "  suspend interval      %s\n"
    (Time.to_string p.Params.suspend_interval);
  Printf.printf "  guest IO threshold    %.0f IOs/s\n" p.Params.guest_io_threshold;
  Printf.printf "  poll interval         %s\n"
    (Time.to_string p.Params.poll_interval);
  Printf.printf "  VMM memory            %d MB\n"
    (p.Params.vmm_mem_bytes / 1024 / 1024);
  Printf.printf "  VM-exit cost          %s\n" (Time.to_string p.Params.exit_cost);
  Printf.printf "  deployment CPU steal  %.1f%%\n" (p.Params.deploy_steal *. 100.0);
  0

let () =
  let open Cmdliner in
  let image_gb =
    Arg.(value & opt int 8 & info [ "image-gb" ] ~docv:"GB" ~doc:"OS image size")
  in
  let disk =
    Arg.(value & opt string "ahci" & info [ "disk" ] ~docv:"KIND" ~doc:"ahci or ide")
  in
  let watch =
    Arg.(value & flag & info [ "watch" ] ~doc:"print deployment progress")
  in
  let deploy_cmd =
    Cmd.v
      (Cmd.info "deploy" ~doc:"stream-deploy one bare-metal instance")
      Term.(const deploy $ image_gb $ disk $ watch)
  in
  let compare_cmd =
    Cmd.v
      (Cmd.info "compare" ~doc:"compare startup time across deployment methods")
      Term.(const compare_cmd $ image_gb)
  in
  let params_cmd =
    Cmd.v
      (Cmd.info "params" ~doc:"print deployment parameters")
      Term.(const params $ const ())
  in
  let group =
    Cmd.group
      (Cmd.info "bmcastctl" ~doc:"BMcast bare-metal deployment control")
      [ deploy_cmd; compare_cmd; params_cmd ]
  in
  exit (Cmd.eval' group)
