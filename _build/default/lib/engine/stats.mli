(** Measurement collectors for experiments.

    All collectors are cheap to update from the simulation hot path and
    compute summaries lazily. *)

(** Sample accumulator with exact percentiles (stores all samples). *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  val percentile : t -> float -> float
  (** [percentile h p] with [p] in [\[0,100\]]; linear interpolation.
      Raises [Invalid_argument] if the histogram is empty. *)

  val median : t -> float
  val clear : t -> unit
end

(** Append-only (time, value) series. *)
module Series : sig
  type t

  val create : unit -> t
  val add : t -> Time.t -> float -> unit
  val length : t -> int
  val to_list : t -> (Time.t * float) list

  val bucket_mean : t -> width:Time.span -> (Time.t * float) list
  (** Average value per time bucket of the given width; buckets with no
      samples are skipped. Bucket timestamps are bucket start times. *)
end

(** Event-rate meter: record occurrences (optionally weighted) and read
    rates per window. *)
module Rate : sig
  type t

  val create : unit -> t

  val tick : t -> Time.t -> unit
  (** Record one event at the given time. *)

  val add : t -> Time.t -> float -> unit
  (** Record a weighted event (e.g. bytes transferred). *)

  val total : t -> float

  val rate_between : t -> Time.t -> Time.t -> float
  (** Sum of weights in [\[t0, t1)] divided by the window in seconds. *)

  val per_window : t -> width:Time.span -> (Time.t * float) list
  (** Rate (weight per second) for each consecutive window from the first
      recorded event. *)
end

(** Running mean without storing samples (Welford). *)
module Mean : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end
