(** Counting semaphore for simulation processes (FIFO wake-up order). *)

type t

val create : int -> t
(** [create n] starts with [n] permits ([n >= 0]). *)

val acquire : t -> unit
(** Take a permit, blocking while none are available (process context). *)

val try_acquire : t -> bool
val release : t -> unit
val available : t -> int

val with_permit : t -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)
