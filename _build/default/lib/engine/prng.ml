type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Use the top bits to avoid modulo bias in common small-bound cases;
     for simulation purposes modulo of a mixed 62-bit value is fine. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits -> [0,1) *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (float_of_int v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(* YCSB-style Zipfian generator (Gray et al., "Quickly generating
   billion-record synthetic databases").  Constants are recomputed per
   call only when [n] or [theta] change, cached in a small memo. *)
type zipf_consts = { zn : int; ztheta : float; zetan : float; zeta2 : float }

let zipf_cache : zipf_consts option ref = ref None

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  let consts =
    match !zipf_cache with
    | Some c when c.zn = n && c.ztheta = theta -> c
    | _ ->
      let c = { zn = n; ztheta = theta; zetan = zeta n theta; zeta2 = zeta 2 theta } in
      zipf_cache := Some c;
      c
  in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (consts.zeta2 /. consts.zetan))
  in
  let u = float t 1.0 in
  let uz = u *. consts.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 theta then 1
  else
    let r =
      float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha
    in
    Stdlib.min (n - 1) (int_of_float r)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
