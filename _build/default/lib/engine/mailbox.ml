type 'a t = {
  capacity : int option;
  items : 'a Queue.t;
  recv_waiters : ('a -> bool) Queue.t;
  send_waiters : (unit -> bool) Queue.t;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Mailbox.create: capacity must be positive"
  | _ -> ());
  { capacity;
    items = Queue.create ();
    recv_waiters = Queue.create ();
    send_waiters = Queue.create () }

let is_full t =
  match t.capacity with
  | None -> false
  | Some c -> Queue.length t.items >= c

(* Pop waiters until one accepts (a waker returns false if its process was
   already resumed by a racing source, e.g. a timeout). *)
let rec wake_one_recv t v =
  match Queue.take_opt t.recv_waiters with
  | None -> false
  | Some waker -> if waker v then true else wake_one_recv t v

let rec wake_one_send t =
  match Queue.take_opt t.send_waiters with
  | None -> false
  | Some waker -> if waker () then true else wake_one_send t

let try_send t v =
  if wake_one_recv t v then true
  else if is_full t then false
  else begin
    Queue.add v t.items;
    true
  end

let rec send t v =
  if not (try_send t v) then begin
    Sim.suspend (fun waker ->
        Queue.add (fun () -> waker ()) t.send_waiters);
    send t v
  end

let take_item t =
  let v = Queue.take t.items in
  (* Space freed: resume one blocked sender, if any. *)
  ignore (wake_one_send t : bool);
  v

let try_recv t =
  if Queue.is_empty t.items then None else Some (take_item t)

let rec recv t =
  match try_recv t with
  | Some v -> v
  | None ->
    let got =
      Sim.suspend (fun waker ->
          Queue.add (fun v -> waker (Some v)) t.recv_waiters)
    in
    (match got with Some v -> v | None -> recv t)

let recv_timeout t timeout =
  match try_recv t with
  | Some v -> Some v
  | None ->
    let sim = Sim.self () in
    Sim.suspend (fun waker ->
        Queue.add (fun v -> waker (Some v)) t.recv_waiters;
        Sim.schedule sim
          (Time.add (Sim.now sim) timeout)
          (fun () -> ignore (waker None : bool)))

let length t = Queue.length t.items
let is_empty t = Queue.is_empty t.items
