(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator draws from an explicitly
    seeded [Prng.t], so simulation runs are exactly reproducible. [split]
    derives an independent stream, letting subsystems own private streams
    whose draws do not perturb each other. *)

type t

val create : int -> t
(** [create seed] makes a generator from an integer seed. *)

val split : t -> t
(** Derive an independent generator; advances the parent by one draw. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal sample. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-distributed rank in [\[0, n)] with skew [theta] (YCSB-style
    request popularity). Uses the rejection-inversion-free approximation
    of Gray et al. as used in the YCSB generator. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
