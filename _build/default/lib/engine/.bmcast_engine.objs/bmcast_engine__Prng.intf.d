lib/engine/prng.mli:
