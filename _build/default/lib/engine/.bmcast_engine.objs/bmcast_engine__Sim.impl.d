lib/engine/sim.ml: Effect Heap Option Printf Prng Time
