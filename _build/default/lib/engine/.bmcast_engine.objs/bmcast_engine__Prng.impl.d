lib/engine/prng.ml: Array Float Int64 Stdlib
