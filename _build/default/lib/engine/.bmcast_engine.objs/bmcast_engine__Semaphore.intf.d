lib/engine/semaphore.mli:
