lib/engine/signal.mli: Time
