lib/engine/mailbox.mli: Time
