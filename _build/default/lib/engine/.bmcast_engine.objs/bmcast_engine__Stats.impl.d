lib/engine/stats.ml: Array Float Hashtbl List Option Stdlib Time
