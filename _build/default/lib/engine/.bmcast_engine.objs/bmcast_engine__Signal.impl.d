lib/engine/signal.ml: List Sim Time
