lib/engine/time.ml: Float Format Stdlib
