type t = int
type span = int

let zero = 0

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let s x = x * 1_000_000_000
let minutes x = x * 60_000_000_000

let of_float_s x = int_of_float (Float.round (x *. 1e9))
let to_float_s x = float_of_int x /. 1e9
let to_float_ms x = float_of_int x /. 1e6
let to_float_us x = float_of_int x /. 1e3

let add a d = a + d
let diff a b = a - b
let mul d k = d * k
let div d k = d / k

let min = Stdlib.min
let max = Stdlib.max

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dns" t
  else if a < 1_000_000 then Format.fprintf fmt "%.2fus" (to_float_us t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_float_ms t)
  else Format.fprintf fmt "%.3fs" (to_float_s t)

let to_string t = Format.asprintf "%a" pp t
