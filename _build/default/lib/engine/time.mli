(** Simulated time.

    All simulation timestamps and durations are integer nanoseconds held in
    a native [int] (63 bits on 64-bit platforms, i.e. ~292 years of range).
    Timestamps ([t]) and durations ([span]) share the representation but
    are kept distinct in the API for readability. *)

type t = int
(** Absolute simulation time in nanoseconds since simulation start. *)

type span = int
(** Duration in nanoseconds. *)

val zero : t

val ns : int -> span
val us : int -> span
val ms : int -> span
val s : int -> span
val minutes : int -> span

val of_float_s : float -> span
(** [of_float_s x] is [x] seconds as a span, rounded to the nearest ns. *)

val to_float_s : span -> float
val to_float_ms : span -> float
val to_float_us : span -> float

val add : t -> span -> t
val diff : t -> t -> span
(** [diff a b] is [a - b]. *)

val mul : span -> int -> span
val div : span -> int -> span

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/us/ms/s). *)

val to_string : t -> string
