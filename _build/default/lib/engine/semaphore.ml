type t = {
  mutable permits : int;
  waiters : (unit -> bool) Queue.t;
}

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative permits";
  { permits = n; waiters = Queue.create () }

let try_acquire t =
  if t.permits > 0 then begin
    t.permits <- t.permits - 1;
    true
  end
  else false

let rec acquire t =
  if not (try_acquire t) then begin
    Sim.suspend (fun waker -> Queue.add (fun () -> waker ()) t.waiters);
    acquire t
  end

let rec release t =
  match Queue.take_opt t.waiters with
  | Some waker ->
    (* Hand the permit to the waiter by incrementing then waking; if the
       waiter is dead (raced with a timeout), try the next one. *)
    if waker () then t.permits <- t.permits + 1 else release t
  | None -> t.permits <- t.permits + 1

let available t = t.permits

let with_permit t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e
