module Latch = struct
  type t = { mutable set : bool; mutable waiters : (unit -> bool) list }

  let create () = { set = false; waiters = [] }

  let set t =
    if not t.set then begin
      t.set <- true;
      let ws = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun w -> ignore (w () : bool)) ws
    end

  let is_set t = t.set

  let wait t =
    if not t.set then
      Sim.suspend (fun waker ->
          t.waiters <- (fun () -> waker ()) :: t.waiters)

  let on_set t f =
    if t.set then f ()
    else
      t.waiters <-
        (fun () ->
          f ();
          true)
        :: t.waiters
end

module Pulse = struct
  type t = { mutable waiters : (bool -> bool) list }

  let create () = { waiters = [] }

  let pulse t =
    let ws = List.rev t.waiters in
    t.waiters <- [];
    List.iter (fun w -> ignore (w true : bool)) ws

  let wait t =
    ignore
      (Sim.suspend (fun waker -> t.waiters <- waker :: t.waiters) : bool)

  let wait_timeout t timeout =
    let sim = Sim.self () in
    Sim.suspend (fun waker ->
        t.waiters <- waker :: t.waiters;
        Sim.schedule sim
          (Time.add (Sim.now sim) timeout)
          (fun () -> ignore (waker false : bool)))
end
