(** Bounded FIFO channel between simulation processes.

    [send] blocks while the mailbox is full; [recv] blocks while it is
    empty. Waiters are resumed in FIFO order. A mailbox with unlimited
    capacity never blocks senders. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] defaults to unlimited. *)

val send : 'a t -> 'a -> unit
(** Blocking send (process context). *)

val try_send : 'a t -> 'a -> bool
(** Non-blocking send: [false] if the mailbox is full. *)

val recv : 'a t -> 'a
(** Blocking receive (process context). *)

val recv_timeout : 'a t -> Time.span -> 'a option
(** Receive with a timeout; [None] if nothing arrived in time. *)

val try_recv : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
