(** Broadcast signals and one-shot latches for simulation processes. *)

(** A level-triggered latch: once [set], all current and future waiters
    pass immediately. *)
module Latch : sig
  type t

  val create : unit -> t
  val set : t -> unit
  val is_set : t -> bool

  val wait : t -> unit
  (** Block until the latch is set (process context). *)

  val on_set : t -> (unit -> unit) -> unit
  (** Run a callback when the latch is set (immediately if it already
      is). Callable from any context. *)
end

(** An edge-triggered broadcast: [wait] blocks until the {e next} [pulse],
    regardless of past pulses. *)
module Pulse : sig
  type t

  val create : unit -> t
  val pulse : t -> unit

  val wait : t -> unit
  (** Block until the next pulse (process context). *)

  val wait_timeout : t -> Time.span -> bool
  (** [true] if pulsed before the timeout. *)
end
