(** MPI collective operations over InfiniBand (§5.3).

    Standard algorithms (MPICH-style) over the {!Bmcast_net.Ib}
    messaging layer: ring allgather, recursive-doubling allreduce,
    binomial broadcast/gather/scatter/reduce, dissemination barrier and
    pairwise alltoall. Because every message posting pays the
    endpoint's virtualization overhead, collectives with many
    small sequential messages (allgather) amplify a per-op adder the
    way Figure 6 shows for KVM, while BMcast endpoints stay at
    bare-metal latency. *)

type comm

val create : ?compute:(bytes:int -> unit) -> Bmcast_net.Ib.endpoint array -> comm
(** A communicator over the given endpoints (rank = index). Needs at
    least 2 ranks. [compute] runs the reduction operator after each
    receive in Reduce/Allreduce (stack-dependent: virtualization taxes
    apply to it). *)

val size : comm -> int

type collective =
  | Barrier
  | Bcast
  | Gather
  | Scatter
  | Reduce
  | Allgather
  | Allreduce
  | Alltoall

val all_collectives : collective list
val name : collective -> string

val run : comm -> collective -> bytes:int -> Bmcast_engine.Time.span
(** Execute one collective with per-rank payload [bytes] and return the
    wall time until the slowest rank finishes (process context). *)

val latency :
  comm -> collective -> bytes:int -> ?iterations:int -> unit ->
  float
(** OSU-style mean latency in microseconds over repeated runs
    (default 20 iterations; process context). *)
