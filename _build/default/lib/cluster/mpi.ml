module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Signal = Bmcast_engine.Signal
module Ib = Bmcast_net.Ib

type comm = { eps : Ib.endpoint array; compute : bytes:int -> unit }

let create ?(compute = fun ~bytes:_ -> ()) eps =
  if Array.length eps < 2 then invalid_arg "Mpi.create: need at least 2 ranks";
  { eps; compute }

let size c = Array.length c.eps

type collective =
  | Barrier
  | Bcast
  | Gather
  | Scatter
  | Reduce
  | Allgather
  | Allreduce
  | Alltoall

let all_collectives =
  [ Barrier; Bcast; Gather; Scatter; Reduce; Allgather; Allreduce; Alltoall ]

let name = function
  | Barrier -> "Barrier"
  | Bcast -> "Bcast"
  | Gather -> "Gather"
  | Scatter -> "Scatter"
  | Reduce -> "Reduce"
  | Allgather -> "Allgather"
  | Allreduce -> "Allreduce"
  | Alltoall -> "Alltoall"

let send c ~from ~dst ~bytes =
  Ib.send_msg c.eps.(from) ~dst:c.eps.(dst) ~bytes

let recv c ~rank ~src = ignore (Ib.recv_msg c.eps.(rank) ~src:c.eps.(src) : int)

(* Round up to the next power of two <= p handling: we use algorithms
   valid for any p by falling back to loops over actual ranks. *)

(* Dissemination barrier: ceil(log2 p) rounds. *)
let barrier_rank c rank =
  let p = size c in
  let rec rounds k =
    if k < p then begin
      let dst = (rank + k) mod p in
      let src = (rank - k + p) mod p in
      (* Send and receive concurrently to avoid deadlock. *)
      let sent = Signal.Latch.create () in
      Sim.spawn (fun () ->
          send c ~from:rank ~dst ~bytes:8;
          Signal.Latch.set sent);
      recv c ~rank ~src;
      Signal.Latch.wait sent;
      rounds (k * 2)
    end
  in
  rounds 1

(* Binomial tree rooted at 0: returns (parent, children). *)
let binomial_links p rank =
  let parent = ref None in
  let children = ref [] in
  let rec go mask =
    if mask < p then begin
      if rank land mask <> 0 && !parent = None then
        parent := Some (rank land lnot mask)
      else if !parent = None && rank lor mask < p && rank land (mask - 1) = 0
      then children := (rank lor mask) :: !children;
      go (mask * 2)
    end
  in
  go 1;
  (!parent, List.rev !children)

let bcast_rank c rank ~bytes =
  let p = size c in
  let parent, children = binomial_links p rank in
  (match parent with Some src -> recv c ~rank ~src | None -> ());
  List.iter (fun dst -> send c ~from:rank ~dst ~bytes) children

let reduce_rank c rank ~bytes =
  let p = size c in
  let parent, children = binomial_links p rank in
  (* Reverse of broadcast: gather partial results up the tree, folding
     the reduction operator after each receive. *)
  List.iter
    (fun src ->
      recv c ~rank ~src;
      c.compute ~bytes)
    children;
  match parent with Some dst -> send c ~from:rank ~dst ~bytes | None -> ()

let gather_rank c rank ~bytes =
  (* Linear gather to root 0 (OSU gather on small clusters). *)
  if rank = 0 then
    for src = 1 to size c - 1 do
      recv c ~rank ~src
    done
  else send c ~from:rank ~dst:0 ~bytes

let scatter_rank c rank ~bytes =
  if rank = 0 then
    for dst = 1 to size c - 1 do
      send c ~from:rank ~dst ~bytes
    done
  else recv c ~rank ~src:0

(* Ring allgather: p-1 steps, each rank sends its current block right
   and receives from the left. *)
let allgather_rank c rank ~bytes =
  let p = size c in
  let right = (rank + 1) mod p and left = (rank - 1 + p) mod p in
  for _ = 1 to p - 1 do
    let sent = Signal.Latch.create () in
    Sim.spawn (fun () ->
        send c ~from:rank ~dst:right ~bytes;
        Signal.Latch.set sent);
    recv c ~rank ~src:left;
    Signal.Latch.wait sent
  done

(* Recursive-doubling allreduce (power-of-two ranks exchange; extras
   fold in linearly). *)
let allreduce_rank c rank ~bytes =
  let p = size c in
  let pof2 =
    let rec go v = if v * 2 <= p then go (v * 2) else v in
    go 1
  in
  let extra = p - pof2 in
  if rank < 2 * extra then begin
    (* Fold extras into their partners first. *)
    if rank land 1 = 1 then send c ~from:rank ~dst:(rank - 1) ~bytes
    else recv c ~rank ~src:(rank + 1)
  end;
  let active_rank = if rank < 2 * extra then rank / 2 else rank - extra in
  let is_active = rank >= 2 * extra || rank land 1 = 0 in
  if is_active then begin
    let to_real r = if r < extra then 2 * r else r + extra in
    let rec rounds mask =
      if mask < pof2 then begin
        let partner = to_real (active_rank lxor mask) in
        let sent = Signal.Latch.create () in
        Sim.spawn (fun () ->
            send c ~from:rank ~dst:partner ~bytes;
            Signal.Latch.set sent);
        recv c ~rank ~src:partner;
        c.compute ~bytes;
        Signal.Latch.wait sent;
        rounds (mask * 2)
      end
    in
    rounds 1
  end;
  (* Push results back to the folded extras. *)
  if rank < 2 * extra then
    if rank land 1 = 0 then send c ~from:rank ~dst:(rank + 1) ~bytes
    else recv c ~rank ~src:(rank - 1)

(* Pairwise-exchange alltoall: p-1 rounds. *)
let alltoall_rank c rank ~bytes =
  let p = size c in
  for round = 1 to p - 1 do
    let dst = (rank + round) mod p and src = (rank - round + p) mod p in
    let sent = Signal.Latch.create () in
    Sim.spawn (fun () ->
        send c ~from:rank ~dst ~bytes;
        Signal.Latch.set sent);
    recv c ~rank ~src;
    Signal.Latch.wait sent
  done

let rank_body c coll ~bytes rank =
  match coll with
  | Barrier -> barrier_rank c rank
  | Bcast -> bcast_rank c rank ~bytes
  | Gather -> gather_rank c rank ~bytes
  | Scatter -> scatter_rank c rank ~bytes
  | Reduce -> reduce_rank c rank ~bytes
  | Allgather -> allgather_rank c rank ~bytes
  | Allreduce -> allreduce_rank c rank ~bytes
  | Alltoall -> alltoall_rank c rank ~bytes

let run c coll ~bytes =
  let p = size c in
  let t0 = Sim.clock () in
  let finished = ref 0 in
  let all_done = Signal.Latch.create () in
  for rank = 0 to p - 1 do
    Sim.spawn ~name:(Printf.sprintf "mpi-rank%d" rank) (fun () ->
        rank_body c coll ~bytes rank;
        incr finished;
        if !finished = p then Signal.Latch.set all_done)
  done;
  Signal.Latch.wait all_done;
  Time.diff (Sim.clock ()) t0

let latency c coll ~bytes ?(iterations = 20) () =
  let total = ref 0 in
  for _ = 1 to iterations do
    total := !total + run c coll ~bytes
  done;
  Time.to_float_us (!total / iterations)
