lib/cluster/mpi.ml: Array Bmcast_engine Bmcast_net List Printf
