lib/cluster/mpi.mli: Bmcast_engine Bmcast_net
