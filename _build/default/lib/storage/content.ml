type t = Zero | Image of int | Data of int | Blob of string

let equal a b =
  match (a, b) with
  | Zero, Zero -> true
  | Image x, Image y -> x = y
  | Data x, Data y -> x = y
  | Blob x, Blob y -> String.equal x y
  | (Zero | Image _ | Data _ | Blob _), _ -> false

let pp fmt = function
  | Zero -> Format.pp_print_string fmt "zero"
  | Image lba -> Format.fprintf fmt "image[%d]" lba
  | Data tag -> Format.fprintf fmt "data#%d" tag
  | Blob s -> Format.fprintf fmt "blob[%d bytes]" (String.length s)

let tag_counter = ref 0

let fresh_tag () =
  incr tag_counter;
  !tag_counter

let image_sectors ~lba ~count = Array.init count (fun i -> Image (lba + i))

let data_sectors ~count =
  let tag = fresh_tag () in
  Array.make count (Data tag)

let zeroes ~count = Array.make count Zero
