(** IDE/ATA controller model (task file + bus-master DMA).

    The driver programs the task-file registers (sector count, LBA bytes,
    device), points the bus-master engine at a PRD table, writes the
    command register (READ DMA / WRITE DMA) and starts the bus master.
    The device transfers via DMA and raises its interrupt unless nIEN is
    set in the device-control register.

    Unlike AHCI there is no command queue: one command is in flight at a
    time, and the task file itself carries the command context — which is
    why the IDE mediator keeps a shadow task file (§3.2's I/O
    interpretation for PIO devices). *)

(** Port offsets relative to the command block base. Writing [command]
    issues a command; reading it returns the status register. *)
module Regs : sig
  val data : int
  val features : int
  val seccount : int
  val lba0 : int
  val lba1 : int
  val lba2 : int
  val device : int
  val command : int
end

(** Commands and status bits. *)
val cmd_read_dma : int
val cmd_write_dma : int
val cmd_flush : int

val status_bsy : int
val status_drdy : int
val status_err : int

(** Bus-master register offsets relative to the bus-master base:
    [command] (bit 0 = start), [status] (bit 0 = active, bit 2 = IRQ,
    RW1C), [prdt] (PRD table address). *)
module Bm : sig
  val command : int
  val status : int
  val prdt : int
end

(** Device-control register (its own 1-port range). *)
val ctrl_nien : int
(** Bit: interrupts disabled. *)

type prd = { buf_addr : int; sectors : int }

type t

val create :
  Bmcast_engine.Sim.t ->
  pio:Bmcast_hw.Pio.t ->
  cmd_base:int ->
  bm_base:int ->
  ctrl_base:int ->
  dma:Dma.t ->
  disk:Disk.t ->
  irq:Bmcast_hw.Irq.t ->
  irq_vec:int ->
  t

val cmd_base : t -> int
val bm_base : t -> int
val ctrl_base : t -> int
val irq_vec : t -> int
val dma : t -> Dma.t
val disk : t -> Disk.t

val raw_cmd : t -> Bmcast_hw.Pio.handler
(** Direct task-file access bypassing interposers. *)

val raw_bm : t -> Bmcast_hw.Pio.handler
val raw_ctrl : t -> Bmcast_hw.Pio.handler

val register_prdt : t -> prd list -> int
(** Store a PRD table in guest memory; returns its address (the value
    written to the bus-master PRDT register). *)

val prdt : t -> addr:int -> prd list

val commands_processed : t -> int
val irqs_raised : t -> int
