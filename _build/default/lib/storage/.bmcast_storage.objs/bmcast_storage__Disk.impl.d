lib/storage/disk.ml: Array Bmcast_engine Content Extent_map List Printf
