lib/storage/ahci.mli: Bmcast_engine Bmcast_hw Disk Dma
