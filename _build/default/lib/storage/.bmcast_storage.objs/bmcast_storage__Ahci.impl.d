lib/storage/ahci.ml: Array Bmcast_engine Bmcast_hw Content Disk Dma Hashtbl Int64 List Printf
