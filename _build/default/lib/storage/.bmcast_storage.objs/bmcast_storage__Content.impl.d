lib/storage/content.ml: Array Format String
