lib/storage/dma.mli: Content
