lib/storage/extent_map.ml: Int List Map Seq
