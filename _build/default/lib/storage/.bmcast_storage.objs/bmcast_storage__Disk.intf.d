lib/storage/disk.mli: Bmcast_engine Content
