lib/storage/ide.ml: Array Bmcast_engine Bmcast_hw Content Disk Dma Hashtbl List Printf
