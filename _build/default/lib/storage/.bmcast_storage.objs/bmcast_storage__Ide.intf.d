lib/storage/ide.mli: Bmcast_engine Bmcast_hw Disk Dma
