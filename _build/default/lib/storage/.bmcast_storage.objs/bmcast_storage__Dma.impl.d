lib/storage/dma.ml: Array Content Hashtbl Printf
