(** Sector content identity.

    The simulator tracks {e what} a sector holds rather than its bytes:
    whether it is untouched, carries sector [lba] of the golden OS image,
    or carries data from a specific guest write. This makes end-to-end
    correctness properties checkable — e.g. "after deployment every
    sector equals the server image except where the guest wrote"
    (§3.1/Figure 1d) and "a late background-copy fill must never clobber
    a newer guest write" (§3.3's bitmap consistency argument). *)

type t =
  | Zero  (** never written; a fresh local disk *)
  | Image of int  (** sector [lba] of the golden image *)
  | Data of int  (** guest-written data, identified by a unique tag *)
  | Blob of string
      (** actual bytes, for the rare data whose contents matter to the
          simulation itself (e.g. the VMM's persisted fill bitmap) *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val fresh_tag : unit -> int
(** Allocate a unique tag for a guest write. *)

val image_sectors : lba:int -> count:int -> t array
(** [count] consecutive image sectors starting at [lba]. *)

val data_sectors : count:int -> t array
(** [count] sectors of a single fresh guest write (same tag). *)

val zeroes : count:int -> t array
