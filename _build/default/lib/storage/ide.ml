module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Pio = Bmcast_hw.Pio
module Irq = Bmcast_hw.Irq

module Regs = struct
  let data = 0
  let features = 1
  let seccount = 2
  let lba0 = 3
  let lba1 = 4
  let lba2 = 5
  let device = 6
  let command = 7
end

let cmd_read_dma = 0xC8
let cmd_write_dma = 0xCA
let cmd_flush = 0xE7

let status_bsy = 0x80
let status_drdy = 0x40
let status_err = 0x01

module Bm = struct
  let command = 0
  let status = 2
  let prdt = 4
end

let ctrl_nien = 0x02

type prd = { buf_addr : int; sectors : int }

(* Per-command controller overhead; IDE has higher per-command cost than
   AHCI (PIO register programming, legacy protocol). *)
let command_overhead = Time.us 35

type t = {
  sim : Sim.t;
  cmd_base : int;
  bm_base : int;
  ctrl_base : int;
  dma : Dma.t;
  disk : Disk.t;
  irq : Irq.t;
  irq_vec : int;
  (* task file *)
  mutable seccount : int;
  mutable lba0 : int;
  mutable lba1 : int;
  mutable lba2 : int;
  mutable device : int;
  mutable status : int;
  (* bus master *)
  mutable bm_cmd : int;
  mutable bm_status : int;
  mutable bm_prdt : int;
  (* control *)
  mutable ctrl : int;
  (* PRD tables *)
  mutable next_addr : int;
  prdts : (int, prd list) Hashtbl.t;
  (* pending command armed by a command-register write, executed when the
     bus master is started *)
  mutable armed : int option;
  mutable commands_processed : int;
  mutable irqs_raised : int;
}

let cmd_base t = t.cmd_base
let bm_base t = t.bm_base
let ctrl_base t = t.ctrl_base
let irq_vec t = t.irq_vec
let dma t = t.dma
let disk t = t.disk
let commands_processed t = t.commands_processed
let irqs_raised t = t.irqs_raised

let register_prdt t prds =
  let addr = t.next_addr in
  t.next_addr <- addr + 0x100;
  Hashtbl.replace t.prdts addr prds;
  addr

let prdt t ~addr =
  match Hashtbl.find_opt t.prdts addr with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Ide: no PRD table at 0x%x" addr)

let lba_of_taskfile t =
  (* 28-bit LBA: low nibble of the device register holds bits 24-27. *)
  t.lba0 lor (t.lba1 lsl 8) lor (t.lba2 lsl 16) lor ((t.device land 0x0F) lsl 24)

let count_of_taskfile t = if t.seccount = 0 then 256 else t.seccount

let execute t cmd =
  t.status <- status_bsy;
  t.bm_status <- t.bm_status lor 0x01;
  Sim.sleep command_overhead;
  let lba = lba_of_taskfile t and count = count_of_taskfile t in
  (if cmd = cmd_read_dma then begin
     let data = Disk.read t.disk ~lba ~count in
     let prds = prdt t ~addr:t.bm_prdt in
     let off = ref 0 in
     List.iter
       (fun prd ->
         if !off < count then begin
           let n = min prd.sectors (count - !off) in
           let buf = Dma.find t.dma ~addr:prd.buf_addr in
           Dma.write buf ~off:0 (Array.sub data !off n);
           off := !off + n
         end)
       prds
   end
   else if cmd = cmd_write_dma then begin
     let prds = prdt t ~addr:t.bm_prdt in
     let data = Array.make count Content.Zero in
     let off = ref 0 in
     List.iter
       (fun prd ->
         if !off < count then begin
           let n = min prd.sectors (count - !off) in
           let buf = Dma.find t.dma ~addr:prd.buf_addr in
           Array.blit (Dma.read buf ~off:0 ~count:n) 0 data !off n;
           off := !off + n
         end)
       prds;
     Disk.write t.disk ~lba ~count data
   end
   else if cmd = cmd_flush then Sim.sleep (Time.us 500)
   else invalid_arg (Printf.sprintf "Ide: unsupported command 0x%x" cmd));
  t.commands_processed <- t.commands_processed + 1;
  t.status <- status_drdy;
  t.bm_cmd <- t.bm_cmd land lnot 0x01;
  t.bm_status <- (t.bm_status land lnot 0x01) lor 0x04;
  if t.ctrl land ctrl_nien = 0 then begin
    t.irqs_raised <- t.irqs_raised + 1;
    Irq.raise_irq t.irq ~vec:t.irq_vec
  end

let start_bus_master t =
  match t.armed with
  | None -> invalid_arg "Ide: bus master started with no command armed"
  | Some cmd ->
    t.armed <- None;
    (* BSY asserts the moment DMA starts — before any simulated time
       passes — so no other agent can observe an idle device and clobber
       the task file. *)
    t.status <- status_bsy;
    t.bm_status <- t.bm_status lor 0x01;
    Sim.spawn_at t.sim ~name:"ide-execute" (Sim.now t.sim) (fun () ->
        execute t cmd)

(* --- task file handlers --- *)

let cmd_inp t off =
  if off = Regs.command then t.status
  else if off = Regs.seccount then t.seccount
  else if off = Regs.lba0 then t.lba0
  else if off = Regs.lba1 then t.lba1
  else if off = Regs.lba2 then t.lba2
  else if off = Regs.device then t.device
  else if off = Regs.features || off = Regs.data then 0
  else invalid_arg (Printf.sprintf "Ide: read of unknown task-file port %d" off)

let cmd_outp t off v =
  if off = Regs.seccount then t.seccount <- v land 0xFF
  else if off = Regs.lba0 then t.lba0 <- v land 0xFF
  else if off = Regs.lba1 then t.lba1 <- v land 0xFF
  else if off = Regs.lba2 then t.lba2 <- v land 0xFF
  else if off = Regs.device then t.device <- v land 0xFF
  else if off = Regs.features || off = Regs.data then ()
  else if off = Regs.command then begin
    if t.status land status_bsy <> 0 then
      invalid_arg "Ide: command written while busy";
    if v = cmd_flush then begin
      (* Non-DMA command: executes immediately (BSY asserts now). *)
      t.status <- status_bsy;
      Sim.spawn_at t.sim ~name:"ide-flush" (Sim.now t.sim) (fun () ->
          execute t v)
    end
    else t.armed <- Some v
  end
  else invalid_arg (Printf.sprintf "Ide: write of unknown task-file port %d" off)

(* --- bus master handlers --- *)

let bm_inp t off =
  if off = Bm.command then t.bm_cmd
  else if off = Bm.status then t.bm_status
  else if off = Bm.prdt then t.bm_prdt
  else invalid_arg (Printf.sprintf "Ide: read of unknown bus-master port %d" off)

let bm_outp t off v =
  if off = Bm.command then begin
    let starting = v land 0x01 <> 0 && t.bm_cmd land 0x01 = 0 in
    t.bm_cmd <- v;
    if starting then start_bus_master t
  end
  else if off = Bm.status then
    (* RW1C on the IRQ bit. *)
    t.bm_status <- t.bm_status land lnot (v land 0x04)
  else if off = Bm.prdt then t.bm_prdt <- v
  else invalid_arg (Printf.sprintf "Ide: write of unknown bus-master port %d" off)

(* --- control handlers --- *)

let ctrl_inp t off =
  if off = 0 then t.status  (* alternate status *)
  else invalid_arg "Ide: unknown control port"

let ctrl_outp t off v =
  if off = 0 then t.ctrl <- v
  else invalid_arg "Ide: unknown control port"

let raw_cmd t = { Pio.inp = cmd_inp t; outp = cmd_outp t }
let raw_bm t = { Pio.inp = bm_inp t; outp = bm_outp t }
let raw_ctrl t = { Pio.inp = ctrl_inp t; outp = ctrl_outp t }

let create sim ~pio ~cmd_base ~bm_base ~ctrl_base ~dma ~disk ~irq ~irq_vec =
  let t =
    { sim;
      cmd_base;
      bm_base;
      ctrl_base;
      dma;
      disk;
      irq;
      irq_vec;
      seccount = 0;
      lba0 = 0;
      lba1 = 0;
      lba2 = 0;
      device = 0;
      status = status_drdy;
      bm_cmd = 0;
      bm_status = 0;
      bm_prdt = 0;
      ctrl = 0;
      next_addr = 0x9000_0000;
      prdts = Hashtbl.create 16;
      armed = None;
      commands_processed = 0;
      irqs_raised = 0 }
  in
  Pio.map pio ~base:cmd_base ~count:8 (raw_cmd t);
  Pio.map pio ~base:bm_base ~count:8 (raw_bm t);
  Pio.map pio ~base:ctrl_base ~count:1 (raw_ctrl t);
  t
