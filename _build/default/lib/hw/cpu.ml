module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Signal = Bmcast_engine.Signal

type exit_reason =
  | Pio
  | Mmio
  | Cpuid
  | Preempt_timer
  | Control_reg
  | Init_sipi
  | Other

type core = {
  index : int;
  sim : Sim.t;
  mutable unavailable_until : Time.t;
  available_pulse : Signal.Pulse.t;
  mutable stall_time : Time.span;
  mutable wakeup_armed : bool;
  mutable interference_seen : bool;
}

type t = {
  sim : Sim.t;
  cores_arr : core array;
  exit_counts : (exit_reason, int) Hashtbl.t;
  mutable exit_time : Time.span;
}

let create sim ~cores =
  if cores <= 0 then invalid_arg "Cpu.create: cores must be positive";
  let mk index =
    { index;
      sim;
      unavailable_until = Time.zero;
      available_pulse = Signal.Pulse.create ();
      stall_time = 0;
      wakeup_armed = false;
      interference_seen = false }
  in
  { sim;
    cores_arr = Array.init cores mk;
    exit_counts = Hashtbl.create 8;
    exit_time = 0 }

let num_cores t = Array.length t.cores_arr

let core t i =
  if i < 0 || i >= Array.length t.cores_arr then
    invalid_arg (Printf.sprintf "Cpu.core: no core %d" i);
  t.cores_arr.(i)

let core_index c = c.index

let is_available (c : core) = Sim.now c.sim >= c.unavailable_until

(* Arrange a pulse when the core becomes available again; idempotent for
   a given deadline extension (re-arms if the window was extended). *)
let arm_wakeup (c : core) =
  if not c.wakeup_armed then begin
    c.wakeup_armed <- true;
    let rec fire_at deadline =
      Sim.schedule c.sim deadline (fun () ->
          if Sim.now c.sim >= c.unavailable_until then begin
            c.wakeup_armed <- false;
            Signal.Pulse.pulse c.available_pulse
          end
          else fire_at c.unavailable_until)
    in
    fire_at c.unavailable_until
  end

let enable_interference t =
  Array.iter (fun c -> c.interference_seen <- true) t.cores_arr

let set_unavailable_until (c : core) until =
  if not c.interference_seen then
    invalid_arg "Cpu.set_unavailable_until: call enable_interference first";
  if until > c.unavailable_until then begin
    c.unavailable_until <- until;
    arm_wakeup c
  end

let run (c : core) span =
  if span < 0 then invalid_arg "Cpu.run: negative span";
  let rec loop remaining =
    if remaining > 0 then
      if not c.interference_seen then Sim.sleep remaining
      else if is_available c then begin
        (* Run until done or until a preemption window begins.  Windows
           are only known once set, so run in bounded slices when a
           future window could cut in; a 1 ms slice bounds the error. *)
        let slice = min remaining (Time.ms 1) in
        Sim.sleep slice;
        (* If a window opened mid-slice we charge it as stall below on
           the next iteration. *)
        loop (remaining - slice)
      end
      else begin
        let stall_start = Sim.clock () in
        Signal.Pulse.wait c.available_pulse;
        c.stall_time <- c.stall_time + Time.diff (Sim.clock ()) stall_start;
        loop remaining
      end
  in
  loop span

let stall_time (c : core) = c.stall_time

let record_exit t reason ~cost =
  let n = Option.value (Hashtbl.find_opt t.exit_counts reason) ~default:0 in
  Hashtbl.replace t.exit_counts reason (n + 1);
  t.exit_time <- t.exit_time + cost

let exits t reason = Option.value (Hashtbl.find_opt t.exit_counts reason) ~default:0

let total_exits t = Hashtbl.fold (fun _ n acc -> acc + n) t.exit_counts 0
let exit_time t = t.exit_time

let reset_exit_counters t =
  Hashtbl.reset t.exit_counts;
  t.exit_time <- 0

let pp_exit_reason fmt = function
  | Pio -> Format.pp_print_string fmt "pio"
  | Mmio -> Format.pp_print_string fmt "mmio"
  | Cpuid -> Format.pp_print_string fmt "cpuid"
  | Preempt_timer -> Format.pp_print_string fmt "preempt-timer"
  | Control_reg -> Format.pp_print_string fmt "control-reg"
  | Init_sipi -> Format.pp_print_string fmt "init-sipi"
  | Other -> Format.pp_print_string fmt "other"
