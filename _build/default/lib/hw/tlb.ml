type mode = Native | Nested_paging | Nested_paging_host

type params = { nested_tax : float; host_pollution_tax : float }

(* Calibration: sysbench-memory is ~fully memory bound; paper reports 6%
   overhead for BMcast and 35% for KVM (nested paging + host cache
   pollution) at 16 KB blocks. BMcast's 6% is split between this tax and
   the deployment threads' CPU steal (Params.deploy_steal). *)
let default = { nested_tax = 0.035; host_pollution_tax = 0.315 }

let slowdown ?(params = default) mode ~mem_intensity =
  if mem_intensity < 0.0 || mem_intensity > 1.0 then
    invalid_arg "Tlb.slowdown: mem_intensity must be in [0,1]";
  match mode with
  | Native -> 1.0
  | Nested_paging -> 1.0 +. (mem_intensity *. params.nested_tax)
  | Nested_paging_host ->
    1.0 +. (mem_intensity *. (params.nested_tax +. params.host_pollution_tax))
