module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time

type params = {
  post_time : Time.span;
  warm_reboot_time : Time.span;
  pxe_dhcp_time : Time.span;
  pxe_rate_bytes_per_s : float;
}

let default =
  { post_time = Time.s 133;
    warm_reboot_time = Time.s 145;
    pxe_dhcp_time = Time.ms 1500;
    (* TFTP over GbE is well below line rate; ~40 MB/s effective. *)
    pxe_rate_bytes_per_s = 40e6 }

let post p = Sim.sleep p.post_time
let warm_reboot p = Sim.sleep p.warm_reboot_time

let pxe_load_span p ~bytes_len =
  if bytes_len < 0 then invalid_arg "Firmware.pxe_load: negative size";
  Time.add p.pxe_dhcp_time
    (Time.of_float_s (float_of_int bytes_len /. p.pxe_rate_bytes_per_s))

let pxe_load p ~bytes_len = Sim.sleep (pxe_load_span p ~bytes_len)
