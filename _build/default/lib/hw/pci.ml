type bdf = { bus : int; dev : int; fn : int }

type device = {
  bdf : bdf;
  vendor_id : int;
  device_id : int;
  class_code : int;
  bars : (int * int) list;
}

type slot = { device : device; mutable hidden : bool }

type t = { mutable slots : slot list }

let create () = { slots = [] }

let add t device =
  if List.exists (fun s -> s.device.bdf = device.bdf) t.slots then
    invalid_arg "Pci.add: BDF already present";
  t.slots <- { device; hidden = false } :: t.slots

let bdf_compare a b = compare (a.bus, a.dev, a.fn) (b.bus, b.dev, b.fn)

let scan t =
  t.slots
  |> List.filter (fun s -> not s.hidden)
  |> List.map (fun s -> s.device)
  |> List.sort (fun a b -> bdf_compare a.bdf b.bdf)

let find_slot t bdf = List.find_opt (fun s -> s.device.bdf = bdf) t.slots

let find t bdf =
  match find_slot t bdf with
  | Some s when not s.hidden -> Some s.device
  | Some _ | None -> None

let hide t bdf =
  match find_slot t bdf with
  | Some s -> s.hidden <- true
  | None -> invalid_arg "Pci.hide: no such device"

let unhide t bdf =
  match find_slot t bdf with
  | Some s -> s.hidden <- false
  | None -> invalid_arg "Pci.unhide: no such device"

let is_hidden t bdf =
  match find_slot t bdf with
  | Some s -> s.hidden
  | None -> invalid_arg "Pci.is_hidden: no such device"

let pp_bdf fmt b = Format.fprintf fmt "%02x:%02x.%d" b.bus b.dev b.fn
