(** Server firmware timing model.

    Server motherboards have notoriously slow POST; the paper's FUJITSU
    PRIMERGY RX200 S6 took 133 seconds. Network booting (PXE) adds DHCP +
    TFTP transfer of the boot payload. *)

type params = {
  post_time : Bmcast_engine.Time.span;  (** full power-on self test *)
  warm_reboot_time : Bmcast_engine.Time.span;
      (** reboot POST (the paper measured 145 s for the image-copy
          restart, including controller re-init) *)
  pxe_dhcp_time : Bmcast_engine.Time.span;  (** DHCP/TFTP handshake *)
  pxe_rate_bytes_per_s : float;  (** effective TFTP payload rate *)
}

val default : params
(** Calibrated to the paper's testbed (133 s POST; §5.1). *)

val post : params -> unit
(** Run power-on self test (blocks the calling process). *)

val warm_reboot : params -> unit

val pxe_load : params -> bytes_len:int -> unit
(** Fetch a boot payload of the given size over PXE (blocks). *)

val pxe_load_span : params -> bytes_len:int -> Bmcast_engine.Time.span
(** Duration [pxe_load] would block for. *)
