(** Interrupt controller model (flat APIC-like vector space).

    Devices raise vectors; registered handlers run after a small delivery
    latency. BMcast's device mediators deliberately avoid injecting
    virtual interrupts — they arrange for the physical device to generate
    real ones (redirection) or poll instead of using interrupts at all
    (multiplexing) — so this controller is never virtualized. *)

type t

val create : Bmcast_engine.Sim.t -> t

val register : t -> vec:int -> (unit -> unit) -> unit
(** Install the ISR for a vector (replacing any previous one). The ISR
    runs as a simulation process. *)

val unregister : t -> vec:int -> unit

val raise_irq : t -> vec:int -> unit
(** Deliver an interrupt: the ISR is scheduled after the delivery
    latency. Unhandled vectors are counted as spurious. *)

val delivered : t -> vec:int -> int
(** Number of deliveries so far on a vector. *)

val spurious : t -> int
(** Deliveries that found no ISR registered. *)

val delivery_latency : Bmcast_engine.Time.span
(** Fixed modelled LAPIC delivery latency. *)
