module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time

let delivery_latency = Time.us 2

type t = {
  sim : Sim.t;
  handlers : (int, unit -> unit) Hashtbl.t;
  counts : (int, int) Hashtbl.t;
  mutable spurious : int;
}

let create sim =
  { sim; handlers = Hashtbl.create 16; counts = Hashtbl.create 16; spurious = 0 }

let register t ~vec isr = Hashtbl.replace t.handlers vec isr
let unregister t ~vec = Hashtbl.remove t.handlers vec

let raise_irq t ~vec =
  let n = Option.value (Hashtbl.find_opt t.counts vec) ~default:0 in
  Hashtbl.replace t.counts vec (n + 1);
  match Hashtbl.find_opt t.handlers vec with
  | Some isr ->
    Sim.spawn_at t.sim
      ~name:(Printf.sprintf "isr-vec%d" vec)
      (Time.add (Sim.now t.sim) delivery_latency)
      isr
  | None -> t.spurious <- t.spurious + 1

let delivered t ~vec = Option.value (Hashtbl.find_opt t.counts vec) ~default:0
let spurious t = t.spurious
