(** Port-mapped (programmed) I/O space with VMM interposition.

    Structure mirrors {!Mmio} but over the 16-bit x86 port space; IDE task
    files and bus-master DMA registers live here. *)

type t

type handler = { inp : int -> int; outp : int -> int -> unit }
(** Handlers see port offsets relative to the mapped base. *)

type interposer = {
  on_in : next:(int -> int) -> int -> int;
  on_out : next:(int -> int -> unit) -> int -> int -> unit;
}

val create : unit -> t
val map : t -> base:int -> count:int -> handler -> unit
val unmap : t -> base:int -> unit
val interpose : t -> base:int -> interposer -> unit
val remove_interposer : t -> base:int -> unit

val inp : t -> int -> int
(** Read a port (absolute port number). *)

val outp : t -> int -> int -> unit

val trapped_accesses : t -> int
