(** TLB / nested-paging cost model.

    The paper attributes BMcast's small deployment-phase overhead mainly
    to TLB pollution under nested paging: "the number of TLB misses
    increased up to 5 times and the latency on TLB misses doubled due to
    the two-dimensional page walks" (§5.2), yielding ~6% slowdown on the
    memory benchmark and ~5% on memcached. KVM with a host OS adds cache
    pollution on top (35% at 16 KB blocks in the memory benchmark).

    [slowdown] converts a workload's memory intensity (fraction of time
    bound on memory accesses, in [0,1]) into a multiplicative execution
    factor >= 1. *)

type mode =
  | Native  (** no virtualization: factor 1 *)
  | Nested_paging  (** thin VMM (BMcast during deployment) *)
  | Nested_paging_host  (** full VMM + host OS cache pollution (KVM) *)

type params = {
  nested_tax : float;
      (** slowdown at mem_intensity = 1 under plain nested paging *)
  host_pollution_tax : float;
      (** additional slowdown at mem_intensity = 1 from host cache
          pollution *)
}

val default : params

val slowdown : ?params:params -> mode -> mem_intensity:float -> float
(** Multiplicative execution-time factor, >= 1.0.
    Raises [Invalid_argument] unless [0 <= mem_intensity <= 1]. *)
