type kind = Usable | Reserved | Vmm_reserved

type entry = { base : int; size : int; kind : kind }

type t = { mutable list : entry list (* sorted by base, non-overlapping *) }

let create ~total_bytes =
  if total_bytes <= 0 then invalid_arg "Memmap.create: size must be positive";
  (* Model the conventional hole below 1 MB as Reserved for realism. *)
  let low = min total_bytes 0x100000 in
  let entries =
    if total_bytes <= low then [ { base = 0; size = total_bytes; kind = Reserved } ]
    else
      [ { base = 0; size = low; kind = Reserved };
        { base = low; size = total_bytes - low; kind = Usable } ]
  in
  { list = entries }

let coalesce entries =
  let rec go = function
    | a :: b :: rest when a.kind = b.kind && a.base + a.size = b.base ->
      go ({ a with size = a.size + b.size } :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go (List.sort (fun a b -> compare a.base b.base) entries)

let entries t = coalesce t.list

let reserve_vmm t ~size =
  if size <= 0 then invalid_arg "Memmap.reserve_vmm: size must be positive";
  (* Take from the top of the highest usable region. *)
  let usable =
    List.filter (fun e -> e.kind = Usable && e.size >= size) t.list
  in
  match List.rev (List.sort (fun a b -> compare a.base b.base) usable) with
  | [] -> invalid_arg "Memmap.reserve_vmm: no usable region large enough"
  | top :: _ ->
    let vmm = { base = top.base + top.size - size; size; kind = Vmm_reserved } in
    let rest = { top with size = top.size - size } in
    t.list <-
      vmm :: (if rest.size > 0 then [ rest ] else [])
      @ List.filter (fun e -> e.base <> top.base) t.list;
    vmm

let release_vmm t =
  t.list <-
    List.map
      (fun e -> if e.kind = Vmm_reserved then { e with kind = Usable } else e)
      t.list

let sum_kind t k =
  List.fold_left (fun acc e -> if e.kind = k then acc + e.size else acc) 0 t.list

let usable_bytes t = sum_kind t Usable
let vmm_reserved_bytes t = sum_kind t Vmm_reserved

let kind_at t addr =
  match
    List.find_opt (fun e -> addr >= e.base && addr < e.base + e.size) t.list
  with
  | Some e -> e.kind
  | None -> invalid_arg (Printf.sprintf "Memmap.kind_at: address 0x%x out of range" addr)
