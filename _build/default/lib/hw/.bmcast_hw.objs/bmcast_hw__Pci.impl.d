lib/hw/pci.ml: Format List
