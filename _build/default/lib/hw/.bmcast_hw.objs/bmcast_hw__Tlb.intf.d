lib/hw/tlb.mli:
