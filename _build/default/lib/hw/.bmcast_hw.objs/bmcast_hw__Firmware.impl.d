lib/hw/firmware.ml: Bmcast_engine
