lib/hw/pio.ml: List Printf
