lib/hw/irq.mli: Bmcast_engine
