lib/hw/pio.mli:
