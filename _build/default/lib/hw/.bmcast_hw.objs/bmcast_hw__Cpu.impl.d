lib/hw/cpu.ml: Array Bmcast_engine Format Hashtbl Option Printf
