lib/hw/irq.ml: Bmcast_engine Hashtbl Option Printf
