lib/hw/firmware.mli: Bmcast_engine
