lib/hw/memmap.ml: List Printf
