lib/hw/mmio.ml: List Printf
