lib/hw/tlb.ml:
