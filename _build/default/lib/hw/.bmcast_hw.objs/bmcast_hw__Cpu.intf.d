lib/hw/cpu.mli: Bmcast_engine Format
