lib/hw/mmio.mli:
