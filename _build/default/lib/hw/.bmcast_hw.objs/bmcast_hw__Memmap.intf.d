lib/hw/memmap.mli:
