lib/hw/pci.mli: Format
