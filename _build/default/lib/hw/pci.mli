(** PCI configuration space model.

    Supports device enumeration as a guest OS would perform it, and
    hiding a device's config space — the mechanism §4.3 proposes for
    keeping a management NIC invisible to the guest after deployment. *)

type bdf = { bus : int; dev : int; fn : int }

type device = {
  bdf : bdf;
  vendor_id : int;
  device_id : int;
  class_code : int;
  bars : (int * int) list;  (** (base, size) pairs *)
}

type t

val create : unit -> t

val add : t -> device -> unit
(** Raises [Invalid_argument] if the BDF is taken. *)

val scan : t -> device list
(** Devices visible to a config-space scan, BDF order. *)

val find : t -> bdf -> device option
(** [None] if absent or hidden. *)

val hide : t -> bdf -> unit
(** Make the device invisible to [scan]/[find]. *)

val unhide : t -> bdf -> unit
val is_hidden : t -> bdf -> bool

val pp_bdf : Format.formatter -> bdf -> unit
