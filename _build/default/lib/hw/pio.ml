type handler = { inp : int -> int; outp : int -> int -> unit }

type interposer = {
  on_in : next:(int -> int) -> int -> int;
  on_out : next:(int -> int -> unit) -> int -> int -> unit;
}

type range = {
  base : int;
  count : int;
  device : handler;
  mutable interposer : interposer option;
}

type t = { mutable ranges : range list; mutable trapped : int }

let create () = { ranges = []; trapped = 0 }

let map t ~base ~count handler =
  if count <= 0 then invalid_arg "Pio.map: count must be positive";
  List.iter
    (fun r ->
      if base < r.base + r.count && r.base < base + count then
        invalid_arg (Printf.sprintf "Pio.map: port range 0x%x overlaps" base))
    t.ranges;
  t.ranges <- { base; count; device = handler; interposer = None } :: t.ranges

let unmap t ~base = t.ranges <- List.filter (fun r -> r.base <> base) t.ranges

let find_range t port =
  match
    List.find_opt (fun r -> port >= r.base && port < r.base + r.count) t.ranges
  with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Pio: unmapped port 0x%x" port)

let find_by_base t base =
  match List.find_opt (fun r -> r.base = base) t.ranges with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Pio: no range mapped at 0x%x" base)

let interpose t ~base ix =
  let r = find_by_base t base in
  if r.interposer <> None then invalid_arg "Pio.interpose: already interposed";
  r.interposer <- Some ix

let remove_interposer t ~base =
  let r = find_by_base t base in
  r.interposer <- None

let inp t port =
  let r = find_range t port in
  let off = port - r.base in
  match r.interposer with
  | None -> r.device.inp off
  | Some ix ->
    t.trapped <- t.trapped + 1;
    ix.on_in ~next:r.device.inp off

let outp t port v =
  let r = find_range t port in
  let off = port - r.base in
  match r.interposer with
  | None -> r.device.outp off v
  | Some ix ->
    t.trapped <- t.trapped + 1;
    ix.on_out ~next:r.device.outp off v

let trapped_accesses t = t.trapped
