(** Physical memory map (e820-style) with VMM reservation.

    BMcast identity-maps guest physical to machine physical memory and
    hides its own region (128 MB in the prototype) by editing the map the
    BIOS reports, so the guest never allocates it (§3.4). *)

type kind = Usable | Reserved | Vmm_reserved

type entry = { base : int; size : int; kind : kind }

type t

val create : total_bytes:int -> t
(** A map with one usable region covering all of memory. *)

val reserve_vmm : t -> size:int -> entry
(** Carve a VMM region off the top of the highest usable region and mark
    it [Vmm_reserved]. Raises [Invalid_argument] if no usable region is
    large enough. *)

val release_vmm : t -> unit
(** Return all [Vmm_reserved] regions to [Usable] (the memory-hot-plug
    mitigation discussed in §4.3; the prototype does not do this). *)

val entries : t -> entry list
(** Sorted by base address; adjacent same-kind regions are coalesced. *)

val usable_bytes : t -> int
val vmm_reserved_bytes : t -> int

val kind_at : t -> int -> kind
(** Kind of the region containing the given address.
    Raises [Invalid_argument] if out of range. *)
