(** Physical CPU model: cores, availability windows, VM-exit accounting.

    A core consumes virtual time when running work. A host-side
    interference source (e.g. the KVM baseline's host scheduler) can mark
    a core unavailable for a window; [run] then stalls until the core is
    available again — this is how lock-holder preemption emerges in the
    sysbench-threads experiment.

    VM exits are counted per reason with their time cost; "zero overhead
    after de-virtualization" is asserted by reading these counters. *)

type t
type core

type exit_reason =
  | Pio
  | Mmio
  | Cpuid
  | Preempt_timer
  | Control_reg
  | Init_sipi
  | Other

val create : Bmcast_engine.Sim.t -> cores:int -> t
val num_cores : t -> int
val core : t -> int -> core
val core_index : core -> int

(** {2 Running work} *)

val run : core -> Bmcast_engine.Time.span -> unit
(** Consume the given amount of {e available} core time; stalls across
    unavailability windows (process context). *)

(** {2 Availability (host interference hooks)} *)

val enable_interference : t -> unit
(** Declare that cores may be preempted by a host scheduler. Must be
    called before {!set_unavailable_until}; cores without interference
    take a faster simulation path. *)

val set_unavailable_until : core -> Bmcast_engine.Time.t -> unit
(** Mark the core stolen by the host until the given absolute time.
    Raises [Invalid_argument] unless {!enable_interference} was called. *)

val is_available : core -> bool

val stall_time : core -> Bmcast_engine.Time.span
(** Total time [run] calls on this core spent stalled. *)

(** {2 VM-exit accounting} *)

val record_exit : t -> exit_reason -> cost:Bmcast_engine.Time.span -> unit
val exits : t -> exit_reason -> int
val total_exits : t -> int
val exit_time : t -> Bmcast_engine.Time.span
val reset_exit_counters : t -> unit

val pp_exit_reason : Format.formatter -> exit_reason -> unit
