(** Network-installation baseline (Kickstart, §2).

    "OS-specific and takes tens of minutes": fetch packages over the
    network, then unpack and install with interleaved CPU and disk
    writes. Modelled coarsely — it only appears as a qualitative
    comparison point. *)

type breakdown = {
  fetch : Bmcast_engine.Time.span;
  install : Bmcast_engine.Time.span;
}

val run :
  Bmcast_platform.Machine.t ->
  ?package_bytes:int ->
  ?install_cpu:Bmcast_engine.Time.span ->
  unit ->
  breakdown
(** Defaults: 2.2 GB of packages at PXE/HTTP rates, 11 minutes of
    unpack/config CPU, writes through the local disk (process
    context). *)
