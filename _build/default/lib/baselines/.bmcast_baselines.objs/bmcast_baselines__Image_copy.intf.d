lib/baselines/image_copy.mli: Bmcast_engine Bmcast_platform Bmcast_proto
