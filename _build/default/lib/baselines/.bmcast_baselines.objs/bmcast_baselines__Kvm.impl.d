lib/baselines/kvm.ml: Bmcast_engine Bmcast_hw Bmcast_net Bmcast_platform Bmcast_proto Bmcast_storage Printf
