lib/baselines/net_boot.mli: Bmcast_platform Bmcast_proto
