lib/baselines/kickstart.mli: Bmcast_engine Bmcast_platform
