lib/baselines/kvm.mli: Bmcast_engine Bmcast_platform Bmcast_proto Bmcast_storage
