lib/baselines/kickstart.ml: Bmcast_engine Bmcast_platform Bmcast_storage
