lib/baselines/image_copy.ml: Bmcast_engine Bmcast_hw Bmcast_platform Bmcast_proto Bmcast_storage List Printf
