lib/baselines/net_boot.ml: Bmcast_engine Bmcast_hw Bmcast_platform Bmcast_proto
