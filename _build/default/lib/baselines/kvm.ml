module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Semaphore = Bmcast_engine.Semaphore
module Cpu = Bmcast_hw.Cpu
module Tlb = Bmcast_hw.Tlb
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Ib = Bmcast_net.Ib
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Cpu_model = Bmcast_platform.Cpu_model
module Remote_block = Bmcast_proto.Remote_block

type backend = Local | Remote of Remote_block.client

(* Calibration targets:
   - virtio storage: read -10.5% / write -13.6% at 1 MB blocks (Fig 10);
   - host steals: ~3% of CPU in short slices (kernbench +3%, Fig 7),
     which compound into lock-holder preemption under contention;
   - contended-lock spins: a few pause-loop exits plus a vCPU kick,
     ~25 us per contended acquire (sysbench-threads +68% at 24 threads);
   - IB: +23.6% on synchronous 64 KB RDMA latency (Fig 13). *)
let host_boot_time = Time.s 30
let guest_boot_extra = Time.of_float_s 4.0
let virtio_read_fixed = Time.us 220
let virtio_read_per_sector = Time.ns 390
let virtio_write_fixed = Time.us 260
let virtio_write_per_sector = Time.ns 590
let yield_exit_cost = Time.us 25
let ib_op_overhead = Time.us 5
let steal_period = Time.ms 8
let steal_duration = Time.us 120

type t = {
  machine : Machine.t;
  backend : backend;
  cpu_model : Cpu_model.t;
  host_disk_lock : Semaphore.t;
}

(* Host scheduler interference: periodically steal each core for
   housekeeping (softirqs, host timer ticks, QEMU iothreads). Pinning
   keeps it small but never zero. *)
let start_host_scheduler machine =
  let cpu = machine.Machine.cpu in
  Cpu.enable_interference cpu;
  let prng = Prng.split (Sim.rand machine.Machine.sim) in
  for core = 0 to Cpu.num_cores cpu - 1 do
    Sim.spawn_at machine.Machine.sim
      ~name:(Printf.sprintf "kvm-host-steal%d" core)
      (Sim.now machine.Machine.sim)
      (fun () ->
        let c = Cpu.core cpu core in
        let rec loop () =
          (* Jitter the period so cores do not steal in lockstep. *)
          let jitter = Prng.int prng (steal_period / 4) in
          Sim.sleep (steal_period + jitter);
          Cpu.set_unavailable_until c
            (Time.add (Sim.now machine.Machine.sim) steal_duration);
          loop ()
        in
        loop ())
  done

let create machine ~backend =
  let cpu_model =
    Cpu_model.create ~tlb_mode:Tlb.Nested_paging_host ~steal:0.01
      ~exit_overhead:0.0
  in
  Cpu_model.set_yield_cost cpu_model yield_exit_cost;
  start_host_scheduler machine;
  (match machine.Machine.ib with
  | Some ep -> Ib.set_op_overhead ep ib_op_overhead
  | None -> ());
  { machine; backend; cpu_model; host_disk_lock = Semaphore.create 1 }

let boot_host _t = Sim.sleep host_boot_time

let cpu_model t = t.cpu_model

let virtio_cost fixed per_sector count = fixed + (per_sector * count)

let block_read t ~lba ~count =
  Sim.sleep (virtio_cost virtio_read_fixed virtio_read_per_sector count);
  Cpu.record_exit t.machine.Machine.cpu Cpu.Mmio ~cost:(Time.us 2);
  match t.backend with
  | Local ->
    Semaphore.with_permit t.host_disk_lock (fun () ->
        Disk.read t.machine.Machine.disk ~lba ~count)
  | Remote client -> Remote_block.read client ~lba ~count

let block_write t ~lba ~count data =
  Sim.sleep (virtio_cost virtio_write_fixed virtio_write_per_sector count);
  Cpu.record_exit t.machine.Machine.cpu Cpu.Mmio ~cost:(Time.us 2);
  match t.backend with
  | Local ->
    Semaphore.with_permit t.host_disk_lock (fun () ->
        Disk.write t.machine.Machine.disk ~lba ~count data)
  | Remote client -> Remote_block.write client ~lba ~count data

let runtime t =
  { Runtime.label = "kvm";
    machine = t.machine;
    block_read = (fun ~lba ~count -> block_read t ~lba ~count);
    block_write = (fun ~lba ~count data -> block_write t ~lba ~count data);
    cpu = t.cpu_model;
    phase = (fun () -> Runtime.Kvm) }
