(** KVM-with-ELI baseline (§5, "a state-of-the-art VMM").

    Models the paper's comparison stack: KVM (Linux 3.9 + the ELI
    exit-less-interrupt patch), processor pinning, 2 GB huge pages,
    para-virtual (virtio) storage over a local disk or an NFS/iSCSI
    image backend, and direct device assignment for InfiniBand.

    Cost structure, each visible in a different figure:
    - nested paging + host cache pollution on memory-bound work (Fig 9);
    - a per-request virtio overhead on storage (Fig 10);
    - a per-operation IOMMU/posting overhead on InfiniBand that latency
      tests see but bandwidth tests pipeline away (Figs 12/13);
    - host-scheduler core steals plus per-yield VM exits, which compound
      into lock-holder preemption on contended workloads (Fig 8);
    - and, unlike BMcast, none of it ever goes away. *)

type backend = Local | Remote of Bmcast_proto.Remote_block.client

type t

val create : Bmcast_platform.Machine.t -> backend:backend -> t
(** Configure the hypervisor on a machine: installs CPU taxes, host
    scheduler interference, and the IB overhead. No simulated time
    passes. *)

val boot_host : t -> unit
(** Boot the KVM host (the paper measured 30 s; process context). *)

val guest_boot_extra : Bmcast_engine.Time.span
(** Fixed guest pre-boot cost (QEMU init, SeaBIOS, bootloader). *)

val host_boot_time : Bmcast_engine.Time.span

val cpu_model : t -> Bmcast_platform.Cpu_model.t

val block_read : t -> lba:int -> count:int -> Bmcast_storage.Content.t array
(** Virtio-blk read (process context). *)

val block_write : t -> lba:int -> count:int -> Bmcast_storage.Content.t array -> unit

val runtime : t -> Bmcast_platform.Runtime.t
(** Assemble the guest-visible runtime. *)

val ib_op_overhead : Bmcast_engine.Time.span
(** Per-RDMA-op posting overhead under device assignment (IOMMU). *)
