module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Firmware = Bmcast_hw.Firmware
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Cpu_model = Bmcast_platform.Cpu_model
module Remote_block = Bmcast_proto.Remote_block

type t = { machine : Machine.t; server : Remote_block.client }

(* kernel + initramfs payload fetched by the PXE loader *)
let loader_bytes = 48 * 1024 * 1024

(* NFS-root pays per-access metadata RPCs (lookup/getattr revalidation)
   that an image-file backend does not. *)
let metadata_overhead = Time.ms 2

let create machine ~server = { machine; server }

let pxe_boot_loader t =
  Firmware.pxe_load t.machine.Machine.firmware ~bytes_len:loader_bytes

let runtime t =
  { Runtime.label = "netboot";
    machine = t.machine;
    block_read =
      (fun ~lba ~count ->
        Sim.sleep metadata_overhead;
        Remote_block.read t.server ~lba ~count);
    block_write =
      (fun ~lba ~count data ->
        Sim.sleep metadata_overhead;
        Remote_block.write t.server ~lba ~count data);
    cpu = Cpu_model.bare ();
    phase = (fun () -> Runtime.Bare) }
