(** Diskless network boot (NFS root, §2/§5.1).

    Boots quickly — no image is copied — but every disk access forever
    after is redirected over the network, the continuous overhead
    Figure 10's "Netboot" bars show. *)

type t

val create :
  Bmcast_platform.Machine.t -> server:Bmcast_proto.Remote_block.client -> t

val pxe_boot_loader : t -> unit
(** Fetch kernel + initramfs over PXE (process context). *)

val runtime : t -> Bmcast_platform.Runtime.t
(** All block I/O goes to the NFS server; writes too. *)
