module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Mailbox = Bmcast_engine.Mailbox
module Signal = Bmcast_engine.Signal
module Firmware = Bmcast_hw.Firmware
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Machine = Bmcast_platform.Machine
module Remote_block = Bmcast_proto.Remote_block

type breakdown = {
  installer_boot : Time.span;
  transfer : Time.span;
  reboot : Time.span;
}

(* PXE + initramfs + installer environment (the paper measured 50 s). *)
let installer_boot_time = Time.s 50

(* dd-style bulk copy: 4 MB requests amortize the per-op protocol
   cost. *)
let chunk_sectors = 8192

let deploy machine ~servers ~image_sectors =
  if servers = [] then invalid_arg "Image_copy.deploy: no server connection";
  let t0 = Sim.clock () in
  Sim.sleep installer_boot_time;
  let t1 = Sim.clock () in
  (* Streaming pipeline: parallel readers pull interleaved chunks from
     the server connections while the writer drains to the local disk
     (the writer reorders nothing: chunks are pushed strictly in LBA
     order through a shared cursor and per-reader slots). *)
  let fifo = Mailbox.create ~capacity:8 () in
  let disk = machine.Machine.disk in
  let done_ = Signal.Latch.create () in
  let streams = List.length servers in
  List.iteri
    (fun i server ->
      Sim.spawn ~name:(Printf.sprintf "imagecopy-reader%d" i) (fun () ->
          let rec go lba =
            if lba < image_sectors then begin
              let count = min chunk_sectors (image_sectors - lba) in
              let data = Remote_block.read server ~lba ~count in
              Mailbox.send fifo (lba, count, data);
              go (lba + (streams * chunk_sectors))
            end
          in
          go (i * chunk_sectors)))
    servers;
  Sim.spawn ~name:"imagecopy-writer" (fun () ->
      let written = ref 0 in
      while !written < image_sectors do
        let lba, count, data = Mailbox.recv fifo in
        Disk.write disk ~lba ~count data;
        written := !written + count
      done;
      Signal.Latch.set done_);
  Signal.Latch.wait done_;
  let t2 = Sim.clock () in
  Firmware.warm_reboot machine.Machine.firmware;
  let t3 = Sim.clock () in
  { installer_boot = Time.diff t1 t0;
    transfer = Time.diff t2 t1;
    reboot = Time.diff t3 t2 }
