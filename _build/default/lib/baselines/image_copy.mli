(** Image-copying deployment baseline (§2, §5.1).

    The OpenStack-Nova-style flow the paper measured at 544 s for a
    32-GB image: network-boot an installer OS (50 s), stream the whole
    image from an iSCSI server to the local disk (double-buffered reader
    and writer, ~100 MB/s on GbE), then reboot through the slow server
    firmware (145 s) before the real OS can boot. *)

type breakdown = {
  installer_boot : Bmcast_engine.Time.span;
  transfer : Bmcast_engine.Time.span;
  reboot : Bmcast_engine.Time.span;
}

val installer_boot_time : Bmcast_engine.Time.span

val deploy :
  Bmcast_platform.Machine.t ->
  servers:Bmcast_proto.Remote_block.client list ->
  image_sectors:int ->
  breakdown
(** Run the full deployment (process context); afterwards the local
    disk holds the image and the machine is ready for a cold OS boot.
    [servers] are parallel connections to the image store (dd-style
    streaming typically keeps 2 in flight to stay wire-limited). *)
