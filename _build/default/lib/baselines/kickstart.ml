module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Machine = Bmcast_platform.Machine

type breakdown = { fetch : Time.span; install : Time.span }

let run machine ?(package_bytes = 2_200 * 1024 * 1024)
    ?(install_cpu = Time.minutes 11) () =
  let t0 = Sim.clock () in
  (* Mirror fetch at HTTP-over-GbE effective rates. *)
  Sim.sleep (Time.of_float_s (float_of_int package_bytes /. 70e6));
  let t1 = Sim.clock () in
  (* Unpack: alternate CPU bursts and installed-file writes. *)
  let disk = machine.Machine.disk in
  let steps = 64 in
  let write_sectors = package_bytes * 2 / 512 / steps in
  let cpu_slice = Time.div install_cpu steps in
  for i = 0 to steps - 1 do
    Sim.sleep cpu_slice;
    Disk.write disk ~lba:(i * write_sectors) ~count:write_sectors
      (Content.data_sectors ~count:write_sectors)
  done;
  let t2 = Sim.clock () in
  { fetch = Time.diff t1 t0; install = Time.diff t2 t1 }
