(** kernbench: parallel kernel compile (§5.4).

    Models `make -j12` of a minimal 2.6.32 configuration: a queue of
    compile tasks, each reading a source file, burning compiler CPU
    (low memory intensity — compilers are cache-friendly) and writing an
    object file. Calibrated to ~16 s on the paper's 12-core bare-metal
    node. During BMcast deployment the guest's reads contend with
    background-copy multiplexing; that, plus the deployment threads'
    CPU steal, is the paper's +8 %. *)

type result = {
  elapsed : Bmcast_engine.Time.span;
  tasks : int;
}

val run :
  Bmcast_platform.Runtime.t ->
  ?jobs:int ->
  ?tasks:int ->
  ?src_lba:int ->
  unit ->
  result
(** Defaults: 12 jobs, 384 compile units, sources at 4 GB (process
    context). *)
