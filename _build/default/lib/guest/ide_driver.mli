(** Guest IDE driver (task file + bus-master DMA over port I/O).

    The IDE twin of {!Ahci_driver}; exercises BMcast's IDE device
    mediator, whose I/O interpretation must shadow the task-file
    registers written one port at a time. *)

type t

val attach : Bmcast_platform.Machine.t -> t
(** Hook the ISR. The machine must have an IDE controller.
    @raise Invalid_argument on an AHCI machine. *)

val read : t -> lba:int -> count:int -> Bmcast_storage.Content.t array
(** Blocking read (process context). Requests larger than 256 sectors
    are split into multiple commands (the task-file limit). *)

val write : t -> lba:int -> count:int -> Bmcast_storage.Content.t array -> unit

val ios_completed : t -> int
