module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Semaphore = Bmcast_engine.Semaphore
module Cpu = Bmcast_hw.Cpu
module Runtime = Bmcast_platform.Runtime
module Cpu_model = Bmcast_platform.Cpu_model
module Machine = Bmcast_platform.Machine

let quantum = Time.us 500
let context_switch_cost = Time.us 2

type t = {
  runtime : Runtime.t;
  cores : int;
  slots : Semaphore.t array;  (* one run slot per core *)
  mutable contended : int;
}

let create runtime =
  let cores = Cpu.num_cores runtime.Runtime.machine.Machine.cpu in
  { runtime;
    cores;
    slots = Array.init cores (fun _ -> Semaphore.create 1);
    contended = 0 }

let contended_acquires t = t.contended

let run t ~tid ~work ~mem_intensity =
  if work < 0 then invalid_arg "Sched.run: negative work";
  let core = tid mod t.cores in
  let slot = t.slots.(core) in
  let rec loop remaining =
    if remaining > 0 then begin
      (* A slice acquired after waiting implies a context switch. *)
      let waited = not (Semaphore.try_acquire slot) in
      if waited then begin
        t.contended <- t.contended + 1;
        Semaphore.acquire slot
      end;
      let slice = min quantum remaining in
      let slice_with_switch =
        if waited then Time.add slice context_switch_cost else slice
      in
      Runtime.cpu_run t.runtime ~core ~work:slice_with_switch ~mem_intensity;
      Semaphore.release slot;
      let remaining = remaining - slice in
      if remaining > 0 then
        (* Quantum expired with work left: yield the core so a
           contending thread can run before we re-acquire. *)
        Sim.yield ();
      loop remaining
    end
  in
  loop work
