(** SysBench thread and memory micro-benchmarks (§5.5.1).

    {b Threads}: [threads] workers repeatedly acquire-yield-release 8
    mutexes. Oversubscription beyond the core count stretches on-CPU
    time; if the platform's host scheduler preempts a vCPU while its
    thread holds a mutex, every waiter stalls — the lock-holder
    preemption effect that costs KVM 68 % at 24 threads while BMcast
    (which traps almost nothing) stays within 6 %.

    {b Memory}: write [total] bytes in blocks of [block_bytes]. Larger
    blocks touch more fresh pages per operation, so the nested-paging
    tax weighs more heavily at 16 KB than at 1 KB — the trend in
    Figure 9. *)

type threads_result = { elapsed : Bmcast_engine.Time.span; lock_ops : int }

val run_threads :
  Bmcast_platform.Runtime.t ->
  threads:int ->
  ?iterations:int ->
  ?mutexes:int ->
  unit ->
  threads_result
(** Defaults: 1000 iterations per thread, 8 mutexes (process context). *)

type memory_result = { throughput_mib_s : float }

val run_memory :
  Bmcast_platform.Runtime.t ->
  block_bytes:int ->
  ?total_bytes:int ->
  ?rounds:int ->
  unit ->
  memory_result
(** Defaults: 1 MiB per round, 64 rounds (process context). *)

val memory_intensity : block_bytes:int -> float
(** The modelled memory-boundedness of a block size (exposed for
    tests). *)
