(** ioping-style storage latency probe (§5.5.2): timed small random
    reads, one at a time. The paper issued 100 requests with a 4 KB
    block size; during deployment the I/O-multiplexing blocking time
    shows up directly in this latency. *)

type result = {
  latencies : Bmcast_engine.Stats.Histogram.t;
  avg_ms : float;
}

val run :
  Bmcast_platform.Runtime.t ->
  ?requests:int ->
  ?block_bytes:int ->
  ?span_bytes:int ->
  ?think_time:Bmcast_engine.Time.span ->
  unit ->
  result
(** Defaults: 100 requests, 4 KB blocks, over a 1 MB working set (the paper's setup), 100 ms
    between probes (process context). *)
