(** Flexible-IO-Tester-style storage throughput benchmark (§5.5.2).

    Sequential direct I/O in large blocks through the runtime's block
    driver, reported in MB/s — the paper's fio configuration (200 MB in
    1 MB blocks). *)

type result = { throughput_mb_s : float; ops : int; elapsed : Bmcast_engine.Time.span }

val seq_read :
  Bmcast_platform.Runtime.t ->
  ?total_bytes:int ->
  ?block_bytes:int ->
  ?start_lba:int ->
  unit ->
  result
(** Defaults: 200 MB, 1 MB blocks, LBA 0 (process context). *)

val seq_write :
  Bmcast_platform.Runtime.t ->
  ?total_bytes:int ->
  ?block_bytes:int ->
  ?start_lba:int ->
  unit ->
  result
