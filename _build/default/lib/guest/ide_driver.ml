module Sim = Bmcast_engine.Sim
module Semaphore = Bmcast_engine.Semaphore
module Signal = Bmcast_engine.Signal
module Pio = Bmcast_hw.Pio
module Irq = Bmcast_hw.Irq
module Content = Bmcast_storage.Content
module Dma = Bmcast_storage.Dma
module Ide = Bmcast_storage.Ide
module Machine = Bmcast_platform.Machine

type t = {
  machine : Machine.t;
  ide : Ide.t;
  lock : Semaphore.t;
  mutable completion : Signal.Latch.t option;
  mutable ios : int;
}

let inp t port = Pio.inp t.machine.Machine.pio port
let outp t port v = Pio.outp t.machine.Machine.pio port v

let isr t () =
  (* Read status (required to de-assert INTRQ), ack the bus-master IRQ
     bit, wake the requester. *)
  let status = inp t (Machine.ide_cmd_base + Ide.Regs.command) in
  if status land Ide.status_bsy = 0 then begin
    outp t (Machine.ide_bm_base + Ide.Bm.status) 0x04;
    match t.completion with
    | Some latch ->
      t.completion <- None;
      Signal.Latch.set latch
    | None -> ()
  end

let attach machine =
  let ide =
    match machine.Machine.controller with
    | Machine.Ide i -> i
    | Machine.Ahci _ -> invalid_arg "Ide_driver.attach: machine has AHCI disk"
  in
  let t =
    { machine; ide; lock = Semaphore.create 1; completion = None; ios = 0 }
  in
  Irq.register machine.Machine.irq ~vec:Machine.disk_irq_vec (isr t);
  t

let one_command t op ~lba ~count buf =
  let latch = Signal.Latch.create () in
  t.completion <- Some latch;
  let prdt_addr =
    Ide.register_prdt t.ide
      [ { Ide.buf_addr = buf.Dma.addr; sectors = Array.length buf.Dma.data } ]
  in
  outp t (Machine.ide_bm_base + Ide.Bm.prdt) prdt_addr;
  outp t (Machine.ide_cmd_base + Ide.Regs.seccount) (count land 0xFF);
  outp t (Machine.ide_cmd_base + Ide.Regs.lba0) (lba land 0xFF);
  outp t (Machine.ide_cmd_base + Ide.Regs.lba1) ((lba lsr 8) land 0xFF);
  outp t (Machine.ide_cmd_base + Ide.Regs.lba2) ((lba lsr 16) land 0xFF);
  outp t (Machine.ide_cmd_base + Ide.Regs.device)
    (0xE0 lor ((lba lsr 24) land 0x0F));
  outp t
    (Machine.ide_cmd_base + Ide.Regs.command)
    (match op with `Read -> Ide.cmd_read_dma | `Write -> Ide.cmd_write_dma);
  outp t (Machine.ide_bm_base + Ide.Bm.command)
    (0x01 lor match op with `Read -> 0x08 | `Write -> 0x00);
  Signal.Latch.wait latch;
  t.ios <- t.ios + 1

(* The task file carries an 8-bit sector count (0 means 256). *)
let max_per_command = 256

let read t ~lba ~count =
  let out = Array.make count Content.Zero in
  let dma = t.machine.Machine.dma in
  Semaphore.with_permit t.lock (fun () ->
      let rec go off =
        if off < count then begin
          let n = min max_per_command (count - off) in
          let buf = Dma.alloc dma ~sectors:n in
          one_command t `Read ~lba:(lba + off) ~count:(n land 0xFF) buf;
          Array.blit buf.Dma.data 0 out off n;
          Dma.free dma buf;
          go (off + n)
        end
      in
      go 0);
  out

let write t ~lba ~count data =
  if Array.length data <> count then
    invalid_arg "Ide_driver.write: data length mismatch";
  let dma = t.machine.Machine.dma in
  Semaphore.with_permit t.lock (fun () ->
      let rec go off =
        if off < count then begin
          let n = min max_per_command (count - off) in
          let buf = Dma.alloc dma ~sectors:n in
          Dma.write buf ~off:0 (Array.sub data off n);
          one_command t `Write ~lba:(lba + off) ~count:(n land 0xFF) buf;
          Dma.free dma buf;
          go (off + n)
        end
      in
      go 0)

let ios_completed t = t.ios
