lib/guest/os.mli: Bmcast_engine Bmcast_platform
