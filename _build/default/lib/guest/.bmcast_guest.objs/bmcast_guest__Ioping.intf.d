lib/guest/ioping.mli: Bmcast_engine Bmcast_platform
