lib/guest/kernbench.mli: Bmcast_engine Bmcast_platform
