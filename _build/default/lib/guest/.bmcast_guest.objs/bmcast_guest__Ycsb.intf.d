lib/guest/ycsb.mli: Bmcast_engine Bmcast_platform
