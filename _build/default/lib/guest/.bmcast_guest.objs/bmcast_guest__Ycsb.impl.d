lib/guest/ycsb.ml: Bmcast_engine Bmcast_net Bmcast_platform Bmcast_storage Float List
