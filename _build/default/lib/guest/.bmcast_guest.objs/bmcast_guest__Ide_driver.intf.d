lib/guest/ide_driver.mli: Bmcast_platform Bmcast_storage
