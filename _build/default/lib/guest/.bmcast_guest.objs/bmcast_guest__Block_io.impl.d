lib/guest/block_io.ml: Ahci_driver Bmcast_hw Bmcast_platform Ide_driver List
