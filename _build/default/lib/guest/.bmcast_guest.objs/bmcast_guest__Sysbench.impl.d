lib/guest/sysbench.ml: Array Bmcast_engine Bmcast_hw Bmcast_platform Float Printf Sched
