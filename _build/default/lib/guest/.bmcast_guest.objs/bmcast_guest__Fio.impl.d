lib/guest/fio.ml: Bmcast_engine Bmcast_platform Bmcast_storage
