lib/guest/fio.mli: Bmcast_engine Bmcast_platform
