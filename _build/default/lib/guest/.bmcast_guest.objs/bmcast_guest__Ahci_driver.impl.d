lib/guest/ahci_driver.ml: Array Bmcast_engine Bmcast_hw Bmcast_platform Bmcast_storage Int64
