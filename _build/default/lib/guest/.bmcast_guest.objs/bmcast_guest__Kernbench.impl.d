lib/guest/kernbench.ml: Bmcast_engine Bmcast_platform Bmcast_storage Printf
