lib/guest/ahci_driver.mli: Bmcast_platform Bmcast_storage
