lib/guest/block_io.mli: Bmcast_platform Bmcast_storage
