lib/guest/sched.ml: Array Bmcast_engine Bmcast_hw Bmcast_platform
