lib/guest/sysbench.mli: Bmcast_engine Bmcast_platform
