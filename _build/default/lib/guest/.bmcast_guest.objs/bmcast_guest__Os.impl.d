lib/guest/os.ml: Bmcast_engine Bmcast_platform Bmcast_storage List
