lib/guest/sched.mli: Bmcast_engine Bmcast_platform
