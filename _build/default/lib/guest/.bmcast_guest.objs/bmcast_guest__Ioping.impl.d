lib/guest/ioping.ml: Bmcast_engine Bmcast_platform Bmcast_storage
