module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Signal = Bmcast_engine.Signal
module Content = Bmcast_storage.Content
module Runtime = Bmcast_platform.Runtime

type result = { elapsed : Time.span; tasks : int }

(* Per compile unit: ~60 KB of source plus a handful of header reads
   scattered through the source tree, ~450 ms of compiler CPU, ~30 KB
   object written.  384 units x 0.45 s ~= 173 core-seconds, i.e. ~15 s
   elapsed on 12 cores plus I/O. *)
let src_sectors = 120
let obj_sectors = 60
let header_reads = 2
let header_sectors = 8
let header_span_sectors = 200 * 2048  (* headers live in a 200 MB region *)
let cpu_per_task = Time.ms 450
let compile_mem_intensity = 0.03

let run runtime ?(jobs = 12) ?(tasks = 384) ?(src_lba = 8 * 1024 * 1024) () =
  if jobs <= 0 then invalid_arg "Kernbench.run: jobs";
  let machine = runtime.Runtime.machine in
  let prng =
    Bmcast_engine.Prng.split
      (Sim.rand machine.Bmcast_platform.Machine.sim)
  in
  let next = ref 0 in
  let done_jobs = ref 0 in
  let all_done = Signal.Latch.create () in
  let t0 = Sim.clock () in
  let hdr_base = src_lba - header_span_sectors in
  let obj_base = src_lba + (tasks * src_sectors) in
  for j = 0 to jobs - 1 do
    Sim.spawn ~name:(Printf.sprintf "cc-job%d" j) (fun () ->
        let rec loop () =
          let i = !next in
          if i < tasks then begin
            next := i + 1;
            ignore
              (runtime.Runtime.block_read ~lba:(src_lba + (i * src_sectors))
                 ~count:src_sectors
                : Content.t array);
            for _ = 1 to header_reads do
              let lba =
                hdr_base
                + Bmcast_engine.Prng.int prng (header_span_sectors - header_sectors)
              in
              ignore
                (runtime.Runtime.block_read ~lba ~count:header_sectors
                  : Content.t array)
            done;
            Runtime.cpu_run runtime ~core:(j mod 12) ~work:cpu_per_task
              ~mem_intensity:compile_mem_intensity;
            runtime.Runtime.block_write
              ~lba:(obj_base + (i * obj_sectors))
              ~count:obj_sectors
              (Content.data_sectors ~count:obj_sectors);
            loop ()
          end
        in
        loop ();
        incr done_jobs;
        if !done_jobs = jobs then Signal.Latch.set all_done)
  done;
  Signal.Latch.wait all_done;
  { elapsed = Time.diff (Sim.clock ()) t0; tasks }
