module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Stats = Bmcast_engine.Stats
module Content = Bmcast_storage.Content
module Runtime = Bmcast_platform.Runtime
module Machine = Bmcast_platform.Machine

type result = { latencies : Stats.Histogram.t; avg_ms : float }

let run runtime ?(requests = 100) ?(block_bytes = 4096)
    ?(span_bytes = 1024 * 1024) ?(think_time = Time.ms 100) () =
  let machine = runtime.Runtime.machine in
  let prng = Prng.split (Sim.rand machine.Machine.sim) in
  let sectors = max 1 (block_bytes / 512) in
  let span_sectors = span_bytes / 512 in
  let latencies = Stats.Histogram.create () in
  for _ = 1 to requests do
    let lba = Prng.int prng (span_sectors - sectors) in
    let t0 = Sim.clock () in
    ignore (runtime.Runtime.block_read ~lba ~count:sectors : Content.t array);
    Stats.Histogram.add latencies
      (Time.to_float_ms (Time.diff (Sim.clock ()) t0));
    Sim.sleep think_time
  done;
  { latencies; avg_ms = Stats.Histogram.mean latencies }
