module Machine = Bmcast_platform.Machine
module Pci = Bmcast_hw.Pci

type t = A of Ahci_driver.t | I of Ide_driver.t

(* The guest OS discovers its storage controller the way a real kernel
   does: scan PCI config space and bind the driver matching the class
   code (0x0106xx = SATA/AHCI, 0x0101xx = IDE). *)
let attach machine =
  let storage_class =
    List.find_map
      (fun d ->
        let cls = d.Pci.class_code lsr 8 in
        if cls = 0x0106 || cls = 0x0101 then Some cls else None)
      (Pci.scan machine.Machine.pci)
  in
  match storage_class with
  | Some 0x0106 -> A (Ahci_driver.attach machine)
  | Some 0x0101 -> I (Ide_driver.attach machine)
  | Some _ | None ->
    invalid_arg "Block_io.attach: no storage controller found on PCI"

let read t ~lba ~count =
  match t with
  | A d -> Ahci_driver.read d ~lba ~count
  | I d -> Ide_driver.read d ~lba ~count

let write t ~lba ~count data =
  match t with
  | A d -> Ahci_driver.write d ~lba ~count data
  | I d -> Ide_driver.write d ~lba ~count data

let ios_completed = function
  | A d -> Ahci_driver.ios_completed d
  | I d -> Ide_driver.ios_completed d
