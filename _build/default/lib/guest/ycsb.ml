module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Content = Bmcast_storage.Content
module Ib = Bmcast_net.Ib
module Runtime = Bmcast_platform.Runtime
module Machine = Bmcast_platform.Machine
module Cpu_model = Bmcast_platform.Cpu_model

type db_profile = {
  db_name : string;
  concurrency : int;
  base_service : Time.span;
  service_mem_intensity : float;
  base_rtt : Time.span;
  commitlog_bytes_per_s : int;
  flush_bytes : int;
  flush_interval : Time.span;
  disk_share : float;
      (** fraction of request latency gated on commit-log durability;
          couples the measured disk-write slowdown into the series *)
}

(* Calibration (§5.2): memcached bare metal = 36.4 kT/s at 281 us;
   Cassandra bare metal = ~56-60 kT/s at 2443 us. *)
let memcached =
  { db_name = "memcached";
    concurrency = 10;
    base_service = Time.us 140;
    service_mem_intensity = 0.7;
    base_rtt = Time.us 140;
    commitlog_bytes_per_s = 0;
    flush_bytes = 0;
    flush_interval = 0;
    disk_share = 0.0 }

let cassandra =
  { db_name = "cassandra";
    concurrency = 146;
    base_service = Time.us 150;
    service_mem_intensity = 0.6;
    base_rtt = Time.us 2300;
    commitlog_bytes_per_s = 12 * 1024 * 1024;
    flush_bytes = 48 * 1024 * 1024;
    flush_interval = Time.s 30;
    disk_share = 0.08 }

type sample = { at : Time.t; kops_per_s : float; latency_us : float }

(* Disk region the database writes into: beyond the 32-GB OS image (the
   dataset lives in a separate data partition), so commit-log traffic
   contends with the deployment for the spindle without shrinking the
   amount of image left to copy. *)
let db_write_base = 40 * 1024 * 1024 * 2  (* sector of the 40 GB mark *)

(* EWMA of (measured / unloaded) commit-log write time: >1 when the
   disk is contended (background copy, virtio, NFS backend...). *)
type disk_gauge = { mutable slowdown : float }

let commitlog_writer runtime profile gauge stop =
  let chunk = 1024 * 1024 in
  let chunk_sectors = chunk / 512 in
  let interval =
    Time.of_float_s (float_of_int chunk /. float_of_int profile.commitlog_bytes_per_s)
  in
  (* Unloaded expectation: streaming 1 MB to a ~125 MB/s spindle. *)
  let expected_s = float_of_int chunk /. 125e6 in
  let lba = ref db_write_base in
  let rec loop () =
    if not !stop then begin
      Sim.sleep interval;
      let t0 = Sim.clock () in
      runtime.Runtime.block_write ~lba:!lba ~count:chunk_sectors
        (Content.data_sectors ~count:chunk_sectors);
      let took = Time.to_float_s (Time.diff (Sim.clock ()) t0) in
      gauge.slowdown <-
        (0.8 *. gauge.slowdown) +. (0.2 *. Float.max 1.0 (took /. expected_s));
      lba := !lba + chunk_sectors;
      loop ()
    end
  in
  loop ()

let flush_writer runtime profile stop =
  let sectors = profile.flush_bytes / 512 in
  let lba = ref (db_write_base + (8 * 1024 * 1024 * 2)) in
  let rec loop () =
    if not !stop then begin
      Sim.sleep profile.flush_interval;
      (* Flush in 1 MB commands like a real SSTable writer. *)
      let rec go off =
        if off < sectors && not !stop then begin
          let n = min 2048 (sectors - off) in
          runtime.Runtime.block_write ~lba:(!lba + off) ~count:n
            (Content.data_sectors ~count:n);
          go (off + n)
        end
      in
      go 0;
      lba := !lba + sectors;
      loop ()
    end
  in
  loop ()

let net_rtt runtime profile =
  (* The YCSB client reaches the DB over InfiniBand; virtualization adds
     its per-op overhead on each direction. *)
  let adder =
    match runtime.Runtime.machine.Machine.ib with
    | Some ep -> Time.mul (Ib.op_overhead ep) 2
    | None -> 0
  in
  Time.add profile.base_rtt adder

let run runtime profile ~duration ?(sample_every = Time.s 10) () =
  let machine = runtime.Runtime.machine in
  let prng = Prng.split (Sim.rand machine.Machine.sim) in
  let stop = ref false in
  let gauge = { slowdown = 1.0 } in
  if profile.commitlog_bytes_per_s > 0 then
    Sim.spawn ~name:"commitlog" (fun () ->
        commitlog_writer runtime profile gauge stop);
  if profile.flush_bytes > 0 then
    Sim.spawn ~name:"flush" (fun () -> flush_writer runtime profile stop);
  let samples = ref [] in
  let t0 = Sim.clock () in
  let rec sampler () =
    if Time.diff (Sim.clock ()) t0 < duration then begin
      Sim.sleep sample_every;
      let svc =
        Cpu_model.stretch runtime.Runtime.cpu ~work:profile.base_service
          ~mem_intensity:profile.service_mem_intensity
      in
      let rtt = net_rtt runtime profile in
      let disk_factor =
        1.0 +. (profile.disk_share *. (gauge.slowdown -. 1.0))
      in
      let latency = Time.to_float_us (Time.add svc rtt) *. disk_factor in
      (* Sampling noise ~2%. *)
      let noise () = Prng.gaussian prng ~mu:1.0 ~sigma:0.02 in
      let latency = latency *. noise () in
      let kops = float_of_int profile.concurrency /. latency *. 1000.0 in
      samples :=
        { at = Time.diff (Sim.clock ()) t0;
          kops_per_s = kops *. noise ();
          latency_us = latency }
        :: !samples;
      sampler ()
    end
  in
  sampler ();
  stop := true;
  List.rev !samples

let average samples ~between:(t0, t1) =
  let window =
    List.filter (fun s -> s.at >= t0 && s.at <= t1) samples
  in
  match window with
  | [] -> (0.0, 0.0)
  | _ ->
    let n = float_of_int (List.length window) in
    ( List.fold_left (fun acc s -> acc +. s.kops_per_s) 0.0 window /. n,
      List.fold_left (fun acc s -> acc +. s.latency_us) 0.0 window /. n )
