(** Guest AHCI driver.

    A faithful (if minimal) driver: builds command tables in guest
    memory, issues them through slot 0 of the machine's AHCI controller
    over MMIO, and completes on the controller's interrupt. All register
    accesses go through the machine's MMIO bus, so when BMcast is
    resident they are transparently mediated — the driver neither knows
    nor cares, which {e is} the paper's OS-transparency claim. *)

type t

val attach : Bmcast_platform.Machine.t -> t
(** Initialize the controller (command list, interrupt enable, port
    start) and hook the ISR. The machine must have an AHCI controller.

    @raise Invalid_argument on an IDE machine. *)

val read : t -> lba:int -> count:int -> Bmcast_storage.Content.t array
(** Blocking read (process context). One command per request. *)

val write : t -> lba:int -> count:int -> Bmcast_storage.Content.t array -> unit

val ios_completed : t -> int
