module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Semaphore = Bmcast_engine.Semaphore
module Signal = Bmcast_engine.Signal
module Cpu = Bmcast_hw.Cpu
module Runtime = Bmcast_platform.Runtime
module Machine = Bmcast_platform.Machine

type threads_result = { elapsed : Time.span; lock_ops : int }

(* Per-iteration CPU inside and outside the critical section. *)
let hold_work = Time.us 2
let gap_work = Time.us 3

let run_threads runtime ~threads ?(iterations = 1000) ?(mutexes = 8) () =
  if threads <= 0 then invalid_arg "Sysbench.run_threads: threads";
  let machine = runtime.Runtime.machine in
  let cores = Cpu.num_cores machine.Machine.cpu in
  (* Oversubscribed threads time-share the cores through the guest
     scheduler. *)
  let sched = Sched.create runtime in
  let prng =
    Bmcast_engine.Prng.split (Sim.rand machine.Machine.sim)
  in
  let locks = Array.init mutexes (fun _ -> Semaphore.create 1) in
  let ops = ref 0 in
  let done_count = ref 0 in
  let all_done = Signal.Latch.create () in
  let t0 = Sim.clock () in
  for k = 0 to threads - 1 do
    Sim.spawn ~name:(Printf.sprintf "sysbench-thread%d" k) (fun () ->
        let core = k mod cores in
        let work w = Sched.run sched ~tid:k ~work:w ~mem_intensity:0.15 in
        for _ = 0 to iterations - 1 do
          (* sysbench picks a mutex at random each iteration. *)
          let m = locks.(Bmcast_engine.Prng.int prng mutexes) in
          (* A contended acquire spins and yields; on a conventional VMM
             the spin triggers pause-loop/HLT exits (the per-yield cost
             in the CPU model), so the tax scales with contention. *)
          if not (Semaphore.try_acquire m) then begin
            Bmcast_platform.Cpu_model.yield machine.Machine.cpu
              runtime.Runtime.cpu ~core;
            Semaphore.acquire m
          end;
          (* acquire-yield-release: the yield keeps the lock held across
             a scheduling point — the LHP window. *)
          work hold_work;
          Sim.yield ();
          Semaphore.release m;
          incr ops;
          work gap_work
        done;
        incr done_count;
        if !done_count = threads then Signal.Latch.set all_done)
  done;
  Signal.Latch.wait all_done;
  { elapsed = Time.diff (Sim.clock ()) t0; lock_ops = !ops }

type memory_result = { throughput_mib_s : float }

(* Modelled memory rate ~6 GB/s per core and a fixed per-block cost
   (allocator + loop overhead) that dominates small blocks. *)
let mem_rate_bytes_per_s = 6e9
let per_block_cost = Time.ns 350

(* Small blocks spend their time in allocator logic (cache-resident);
   big blocks stream fresh pages, which is where nested paging hurts. *)
let memory_intensity ~block_bytes =
  let b = float_of_int block_bytes in
  Float.min 1.0 (0.4 +. (0.6 *. (b /. 16384.0)))

let run_memory runtime ~block_bytes ?(total_bytes = 1024 * 1024) ?(rounds = 64)
    () =
  if block_bytes <= 0 then invalid_arg "Sysbench.run_memory: block_bytes";
  let blocks = max 1 (total_bytes / block_bytes) in
  let per_round =
    Time.add
      (Time.of_float_s (float_of_int total_bytes /. mem_rate_bytes_per_s))
      (Time.mul per_block_cost blocks)
  in
  let mem = memory_intensity ~block_bytes in
  let t0 = Sim.clock () in
  for _ = 1 to rounds do
    Runtime.cpu_run runtime ~core:0 ~work:per_round ~mem_intensity:mem
  done;
  let elapsed = Time.to_float_s (Time.diff (Sim.clock ()) t0) in
  { throughput_mib_s =
      float_of_int (rounds * total_bytes) /. elapsed /. (1024.0 *. 1024.0) }
