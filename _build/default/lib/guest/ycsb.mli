(** YCSB-style database benchmark driver (§5.2).

    Closed-loop clients drive a database instance; throughput and
    latency per time bucket come from the runtime's {e current} CPU
    taxes (Little's law over the stretched service time plus the network
    round trip, with sampling noise), so the series shifts the moment
    BMcast de-virtualizes. The database's own disk traffic (Cassandra's
    commit log and SSTable flushes; memcached has none) is issued for
    real through the block driver — it is what stretches Cassandra's
    deployment phase relative to memcached's (17 vs 16 minutes).

    Presets: {!memcached} (95/5 read-heavy, in-memory) and {!cassandra}
    (30/70 update-heavy). *)

type db_profile = {
  db_name : string;
  concurrency : int;
  base_service : Bmcast_engine.Time.span;  (** per-request CPU on the DB *)
  service_mem_intensity : float;
  base_rtt : Bmcast_engine.Time.span;
      (** fixed client-visible pipeline latency (network + DB internals) *)
  commitlog_bytes_per_s : int;  (** streaming log writes; 0 = none *)
  flush_bytes : int;  (** periodic SSTable flush size; 0 = none *)
  flush_interval : Bmcast_engine.Time.span;
  disk_share : float;
      (** fraction of request latency gated on commit-log durability;
          couples the measured disk-write slowdown into the series *)
}

val memcached : db_profile
val cassandra : db_profile

type sample = {
  at : Bmcast_engine.Time.t;
  kops_per_s : float;
  latency_us : float;
}

val run :
  Bmcast_platform.Runtime.t ->
  db_profile ->
  duration:Bmcast_engine.Time.span ->
  ?sample_every:Bmcast_engine.Time.span ->
  unit ->
  sample list
(** Drive the workload for [duration] (process context), sampling every
    [sample_every] (default 10 s). *)

val average :
  sample list -> between:(Bmcast_engine.Time.t * Bmcast_engine.Time.t) ->
  float * float
(** Mean (kops/s, latency_us) over a time window. *)
