(** Controller-agnostic guest block I/O: the guest OS scans PCI config
    space at boot and binds the AHCI or IDE driver matching the storage
    controller's class code — exactly the transparent driver selection
    an unmodified kernel performs. *)

type t

val attach : Bmcast_platform.Machine.t -> t
(** Raises [Invalid_argument] if no storage controller is visible in
    PCI config space. *)

val read : t -> lba:int -> count:int -> Bmcast_storage.Content.t array
val write : t -> lba:int -> count:int -> Bmcast_storage.Content.t array -> unit
val ios_completed : t -> int
