module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Content = Bmcast_storage.Content
module Runtime = Bmcast_platform.Runtime

type result = { throughput_mb_s : float; ops : int; elapsed : Time.span }

let run op runtime ~total_bytes ~block_bytes ~start_lba =
  if block_bytes <= 0 || block_bytes mod 512 <> 0 then
    invalid_arg "Fio: block size must be a positive multiple of 512";
  let block_sectors = block_bytes / 512 in
  let ops = total_bytes / block_bytes in
  let t0 = Sim.clock () in
  for i = 0 to ops - 1 do
    let lba = start_lba + (i * block_sectors) in
    match op with
    | `Read ->
      ignore
        (runtime.Runtime.block_read ~lba ~count:block_sectors
          : Content.t array)
    | `Write ->
      runtime.Runtime.block_write ~lba ~count:block_sectors
        (Content.data_sectors ~count:block_sectors)
  done;
  let elapsed = Time.diff (Sim.clock ()) t0 in
  { throughput_mb_s =
      float_of_int (ops * block_bytes) /. Time.to_float_s elapsed /. 1e6;
    ops;
    elapsed }

let seq_read runtime ?(total_bytes = 200 * 1024 * 1024)
    ?(block_bytes = 1024 * 1024) ?(start_lba = 0) () =
  run `Read runtime ~total_bytes ~block_bytes ~start_lba

let seq_write runtime ?(total_bytes = 200 * 1024 * 1024)
    ?(block_bytes = 1024 * 1024) ?(start_lba = 0) () =
  run `Write runtime ~total_bytes ~block_bytes ~start_lba
