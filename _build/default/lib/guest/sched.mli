(** Time-sliced guest CPU scheduler.

    Workloads with more threads than cores share the machine's physical
    cores in quantum slices, with a small context-switch cost whenever a
    core changes hands under contention. Threads are pinned
    round-robin (tid mod cores), matching the paper's processor-pinning
    setup. All CPU consumption goes through the runtime's
    {!Bmcast_platform.Cpu_model}, so virtualization taxes apply to the
    sliced work exactly as to any other burst. *)

type t

val create : Bmcast_platform.Runtime.t -> t

val quantum : Bmcast_engine.Time.span
(** Scheduling quantum (500 us). *)

val context_switch_cost : Bmcast_engine.Time.span

val run :
  t -> tid:int -> work:Bmcast_engine.Time.span -> mem_intensity:float -> unit
(** Consume [work] of CPU time on thread [tid]'s core, yielding the core
    to contending threads at each quantum boundary (process context). *)

val contended_acquires : t -> int
(** How many slices started while another thread was waiting for the
    same core (a contention measure). *)
