lib/net/packet.mli:
