lib/net/fabric.mli: Bmcast_engine Packet
