lib/net/nic.mli: Bmcast_engine Bmcast_hw Fabric Packet
