lib/net/packet.ml:
