lib/net/ib.mli: Bmcast_engine
