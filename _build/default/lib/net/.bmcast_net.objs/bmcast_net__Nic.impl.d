lib/net/nic.ml: Array Bmcast_engine Bmcast_hw Fabric Hashtbl Int64 Option Packet Printf
