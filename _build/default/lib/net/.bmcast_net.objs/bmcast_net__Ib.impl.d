lib/net/ib.ml: Array Bmcast_engine Hashtbl
