lib/net/fabric.ml: Array Bmcast_engine Packet Printf
