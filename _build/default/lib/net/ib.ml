module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Mailbox = Bmcast_engine.Mailbox
module Signal = Bmcast_engine.Signal

type work = { bytes : int; dst : int; on_complete : unit -> unit }

type t = {
  sim : Sim.t;
  rate : float;
  base_latency : Time.span;
  mutable endpoints : endpoint array;
  mutable bytes_transferred : int;
}

and endpoint = {
  id : int;
  name : string;
  fabric : t;
  mutable op_overhead : Time.span;
  txq : work Mailbox.t;
  (* two-sided messaging: per-source queues of message sizes *)
  msgq : (int, int Mailbox.t) Hashtbl.t;
}

let create sim ?(rate_bytes_per_s = 3.2e9) ?(base_latency = Time.us 1 + 300)
    () =
  { sim;
    rate = rate_bytes_per_s;
    base_latency;
    endpoints = [||];
    bytes_transferred = 0 }

(* HCA transmit engine: serializes posted work requests onto the wire and
   fires completions after the wire latency. *)
let rec hca_loop t ep =
  let w = Mailbox.recv ep.txq in
  Sim.sleep (Time.of_float_s (float_of_int w.bytes /. t.rate));
  t.bytes_transferred <- t.bytes_transferred + w.bytes;
  let complete_at = Time.add (Sim.now t.sim) t.base_latency in
  Sim.schedule t.sim complete_at w.on_complete;
  hca_loop t ep

let attach t ~name =
  let ep =
    { id = Array.length t.endpoints;
      name;
      fabric = t;
      op_overhead = 0;
      txq = Mailbox.create ();
      msgq = Hashtbl.create 8 }
  in
  t.endpoints <- Array.append t.endpoints [| ep |];
  Sim.spawn_at t.sim ~name:(name ^ "-hca") (Sim.now t.sim) (fun () ->
      hca_loop t ep);
  ep

let endpoint_id ep = ep.id
let set_op_overhead ep ov = ep.op_overhead <- ov
let op_overhead ep = ep.op_overhead
let bytes_transferred t = t.bytes_transferred

let post ep ~dst ~bytes ~on_complete =
  if bytes <= 0 then invalid_arg "Ib.post: bytes must be positive";
  if ep.op_overhead > 0 then Sim.sleep ep.op_overhead;
  ignore
    (Mailbox.try_send ep.txq { bytes; dst = dst.id; on_complete } : bool)

let rdma ep ~dst ~bytes =
  let done_ = Signal.Latch.create () in
  post ep ~dst ~bytes ~on_complete:(fun () -> Signal.Latch.set done_);
  Signal.Latch.wait done_

let msg_queue ep ~src =
  match Hashtbl.find_opt ep.msgq src with
  | Some q -> q
  | None ->
    let q = Mailbox.create () in
    Hashtbl.replace ep.msgq src q;
    q

let send_msg ep ~dst ~bytes =
  let q = msg_queue dst ~src:ep.id in
  rdma ep ~dst ~bytes;
  Mailbox.send q bytes

let recv_msg ep ~src = Mailbox.recv (msg_queue ep ~src:src.id)
