module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Mailbox = Bmcast_engine.Mailbox

type t = {
  sim : Sim.t;
  rate : float;
  latency : Time.span;
  mtu : int;
  mutable loss_rate : float;
  prng : Prng.t;
  mutable ports : port array;
  mutable frames_sent : int;
  mutable frames_dropped : int;
  mutable bytes_delivered : int;
}

and port = {
  id : int;
  name : string;
  fab : t;
  rx : Packet.t -> unit;
  uplink : Packet.t Mailbox.t;  (* endpoint -> switch *)
  egress : Packet.t Mailbox.t;  (* switch -> endpoint *)
  tx_drain : Bmcast_engine.Signal.Pulse.t;
  mutable bytes_out : int;
}

let transmit_span t size = Time.of_float_s (float_of_int size /. t.rate)

let create sim ?(port_rate_bytes_per_s = 125e6) ?(latency = Time.us 20)
    ?(mtu = 9000) ?(loss_rate = 0.0) () =
  { sim;
    rate = port_rate_bytes_per_s;
    latency;
    mtu;
    loss_rate;
    prng = Prng.split (Sim.rand sim);
    ports = [||];
    frames_sent = 0;
    frames_dropped = 0;
    bytes_delivered = 0 }

let mtu t = t.mtu
let set_loss_rate t r = t.loss_rate <- r

let find_port t id =
  if id < 0 || id >= Array.length t.ports then
    invalid_arg (Printf.sprintf "Fabric: unknown port %d" id);
  t.ports.(id)

(* Uplink process: serialize the frame onto the wire, then hand it to the
   switch, which forwards to the destination port's egress queue. *)
let rec uplink_loop t port =
  let frame = Mailbox.recv port.uplink in
  Sim.sleep (transmit_span t frame.Packet.size_bytes);
  port.bytes_out <- port.bytes_out + frame.Packet.size_bytes;
  Bmcast_engine.Signal.Pulse.pulse port.tx_drain;
  (* Propagation + switch forwarding. *)
  Sim.sleep t.latency;
  (if t.loss_rate > 0.0 && Prng.bernoulli t.prng t.loss_rate then
     t.frames_dropped <- t.frames_dropped + 1
   else
     let dst = find_port t frame.Packet.dst in
     Mailbox.send dst.egress frame);
  uplink_loop t port

(* Egress process: serialize on the destination port, then deliver. *)
let rec egress_loop t port =
  let frame = Mailbox.recv port.egress in
  Sim.sleep (transmit_span t frame.Packet.size_bytes);
  t.bytes_delivered <- t.bytes_delivered + frame.Packet.size_bytes;
  Sim.spawn ~name:(port.name ^ "-rx") (fun () -> port.rx frame);
  egress_loop t port

let attach t ~name rx =
  let id = Array.length t.ports in
  let port =
    { id;
      name;
      fab = t;
      rx;
      uplink = Mailbox.create ();
      egress = Mailbox.create ();
      tx_drain = Bmcast_engine.Signal.Pulse.create ();
      bytes_out = 0 }
  in
  t.ports <- Array.append t.ports [| port |];
  Sim.spawn_at t.sim ~name:(name ^ "-uplink") (Sim.now t.sim) (fun () ->
      uplink_loop t port);
  Sim.spawn_at t.sim ~name:(name ^ "-egress") (Sim.now t.sim) (fun () ->
      egress_loop t port);
  port

let port_id p = p.id

let send p ~dst ~size_bytes payload =
  let t = p.fab in
  if size_bytes <= 0 then invalid_arg "Fabric.send: size must be positive";
  if size_bytes > Packet.max_frame ~mtu:t.mtu then
    invalid_arg
      (Printf.sprintf "Fabric.send: frame of %d bytes exceeds MTU %d"
         size_bytes t.mtu);
  t.frames_sent <- t.frames_sent + 1;
  let frame = { Packet.src = p.id; dst; size_bytes; payload } in
  ignore (Mailbox.try_send p.uplink frame : bool)

(* Like [send], but models a bounded socket buffer: blocks the calling
   process while more than [socket_frames] are already queued. *)
let socket_frames = 8

let send_wait p ~dst ~size_bytes payload =
  while Mailbox.length p.uplink >= socket_frames do
    Bmcast_engine.Signal.Pulse.wait p.tx_drain
  done;
  send p ~dst ~size_bytes payload

let frames_sent t = t.frames_sent
let frames_dropped t = t.frames_dropped
let bytes_delivered t = t.bytes_delivered
let port_bytes_out p = p.bytes_out
let port_queue_depth p = Mailbox.length p.uplink
