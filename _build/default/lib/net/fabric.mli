(** Switched Ethernet fabric.

    Endpoints attach to ports of a store-and-forward switch (the paper's
    FUJITSU SR-S348TC1 gigabit switch with 9000-byte MTU). A frame is
    serialized onto the sender's uplink at the port rate, forwarded, then
    serialized again on the destination port — so multiple senders
    targeting one destination (many instances hitting one storage server)
    naturally saturate that port. Optional uniform packet loss exercises
    the AoE retransmission extension. *)

type t

type port

val create :
  Bmcast_engine.Sim.t ->
  ?port_rate_bytes_per_s:float ->
  ?latency:Bmcast_engine.Time.span ->
  ?mtu:int ->
  ?loss_rate:float ->
  unit ->
  t
(** Defaults: 1 GbE (125e6 B/s), 20 us one-way latency, MTU 9000, no
    loss. *)

val attach : t -> name:string -> (Packet.t -> unit) -> port
(** Attach an endpoint; the callback receives delivered frames (called
    in a fresh simulation process). *)

val port_id : port -> int
val mtu : t -> int
val set_loss_rate : t -> float -> unit

val send : port -> dst:int -> size_bytes:int -> Packet.payload -> unit
(** Enqueue a frame for transmission (returns immediately; callable from
    any context). Raises [Invalid_argument] if the frame exceeds
    {!Packet.max_frame} for the fabric MTU or the destination is
    unknown at delivery time. *)

val send_wait : port -> dst:int -> size_bytes:int -> Packet.payload -> unit
(** Like [send] but models a bounded socket buffer: blocks the calling
    process while the transmit queue is full (process context). A
    single-threaded sender therefore serializes against the wire — the
    original vblade's bottleneck (§4.2). *)

(** {2 Statistics} *)

val frames_sent : t -> int
val frames_dropped : t -> int
val bytes_delivered : t -> int
val port_bytes_out : port -> int
val port_queue_depth : port -> int
