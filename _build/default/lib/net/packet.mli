(** Ethernet frames.

    Payloads are an extensible variant so higher layers (AoE, iSCSI, NFS
    models) can define their own without this library depending on them.
    [size_bytes] is the full on-wire frame size including all headers;
    link-time serialization is computed from it. *)

type payload = ..

type payload += Raw of string

type t = {
  src : int;  (** source port id *)
  dst : int;  (** destination port id *)
  size_bytes : int;
  payload : payload;
}

val header_bytes : int
(** Ethernet header + FCS + preamble/IFG accounted per frame (38). *)

val max_frame : mtu:int -> int
(** Largest legal frame for an MTU: [mtu + header_bytes]. *)
