(** InfiniBand fabric model (4X QDR, RDMA verbs).

    Calibrated to the paper's Mellanox MT26428 / Grid Director 4036E
    setup. Two properties matter for Figures 6, 12 and 13:

    - {e bandwidth} tests pipeline many outstanding work requests, so a
      per-operation posting overhead (IOMMU translation, VM exits, cache
      pollution under KVM) is hidden behind wire serialization — all
      configurations saturate equally (Fig 12);
    - {e latency} tests are synchronous, so the same per-op overhead
      lands directly on the measured latency (KVM +23.6 %, Fig 13).

    Per-endpoint [op_overhead] models that virtualization adder; it is
    zero on bare metal and under de-virtualized BMcast. *)

type t
type endpoint

val create :
  Bmcast_engine.Sim.t ->
  ?rate_bytes_per_s:float ->
  ?base_latency:Bmcast_engine.Time.span ->
  unit ->
  t
(** Defaults: 3.2e9 B/s effective (QDR 4X after 8b/10b), 1.3 us base
    RDMA latency. *)

val attach : t -> name:string -> endpoint
val endpoint_id : endpoint -> int

val set_op_overhead : endpoint -> Bmcast_engine.Time.span -> unit
(** Per-operation posting overhead charged at this endpoint (the
    virtualized side). *)

val op_overhead : endpoint -> Bmcast_engine.Time.span

val post :
  endpoint -> dst:endpoint -> bytes:int -> on_complete:(unit -> unit) -> unit
(** Post an RDMA work request (process context: blocks only for the
    posting overhead). Completions are delivered in posting order. *)

val rdma : endpoint -> dst:endpoint -> bytes:int -> unit
(** Synchronous RDMA: post and wait for completion. *)

(** {2 Two-sided messaging (MPI substrate)} *)

val send_msg : endpoint -> dst:endpoint -> bytes:int -> unit
(** Blocking send of a message (completes when delivered). *)

val recv_msg : endpoint -> src:endpoint -> int
(** Blocking receive of the next message from [src]; returns its size. *)

val bytes_transferred : t -> int
