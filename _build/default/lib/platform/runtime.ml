type phase = Bare | Deploying | Devirtualized | Kvm

let pp_phase fmt = function
  | Bare -> Format.pp_print_string fmt "bare-metal"
  | Deploying -> Format.pp_print_string fmt "deploying"
  | Devirtualized -> Format.pp_print_string fmt "de-virtualized"
  | Kvm -> Format.pp_print_string fmt "kvm"

type t = {
  label : string;
  machine : Machine.t;
  block_read : lba:int -> count:int -> Bmcast_storage.Content.t array;
  block_write : lba:int -> count:int -> Bmcast_storage.Content.t array -> unit;
  cpu : Cpu_model.t;
  phase : unit -> phase;
}

let cpu_run t ~core ~work ~mem_intensity =
  Cpu_model.run t.machine.Machine.cpu t.cpu ~core ~work ~mem_intensity
