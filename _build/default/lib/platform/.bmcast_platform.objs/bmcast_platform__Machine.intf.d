lib/platform/machine.mli: Bmcast_engine Bmcast_hw Bmcast_net Bmcast_storage
