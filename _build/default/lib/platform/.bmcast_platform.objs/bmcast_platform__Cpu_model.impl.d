lib/platform/cpu_model.ml: Bmcast_engine Bmcast_hw
