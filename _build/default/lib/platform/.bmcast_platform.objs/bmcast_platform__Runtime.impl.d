lib/platform/runtime.ml: Bmcast_storage Cpu_model Format Machine
