lib/platform/machine.ml: Bmcast_engine Bmcast_hw Bmcast_net Bmcast_storage Option
