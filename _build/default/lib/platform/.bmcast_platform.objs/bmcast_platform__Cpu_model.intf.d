lib/platform/cpu_model.mli: Bmcast_engine Bmcast_hw
