lib/platform/runtime.mli: Bmcast_engine Bmcast_storage Cpu_model Format Machine
