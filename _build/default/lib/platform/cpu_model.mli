(** Execution-time tax model for guest CPU work.

    A workload's CPU burst is stretched by the platform's current
    virtualization taxes before being charged to a physical core:

    - [tlb_mode] — nested-paging / cache-pollution slowdown as a function
      of the burst's memory intensity (see {!Bmcast_hw.Tlb});
    - [steal] — fraction of machine CPU consumed by hypervisor threads
      (BMcast's deployment threads cost ~6% in §5.2: 5% I/O-mediation
      polling + 1% VMM core);
    - [exit_overhead] — mean extra per-burst cost of VM exits not tied to
      device I/O (KVM's scheduler/APIC exits; ~0 for BMcast).

    Taxes are mutable: BMcast's de-virtualization drops them all to zero
    at runtime, which is what makes "zero overhead afterwards" a
    measurable outcome. *)

type t = {
  mutable tlb_mode : Bmcast_hw.Tlb.mode;
  mutable steal : float;
  mutable exit_overhead : float;  (** fractional, e.g. 0.01 for +1% *)
  mutable yield_cost : Bmcast_engine.Time.span;
      (** VM-exit cost of a guest [sched_yield] (PAUSE/HLT exiting).
          BMcast "traps only minimum events" (§5.5.1) so this is zero
          for it; conventional VMMs pay it on every yield, which is what
          blows up lock-heavy workloads. *)
}

val bare : unit -> t
(** No taxes (and never any: bare metal). *)

val create :
  tlb_mode:Bmcast_hw.Tlb.mode -> steal:float -> exit_overhead:float -> t

val set_yield_cost : t -> Bmcast_engine.Time.span -> unit

val clear : t -> unit
(** Drop every tax to zero — de-virtualization. *)

val stretch : t -> work:Bmcast_engine.Time.span -> mem_intensity:float ->
  Bmcast_engine.Time.span
(** Stretched duration of a burst under the current taxes. *)

val run :
  Bmcast_hw.Cpu.t -> t -> core:int -> work:Bmcast_engine.Time.span ->
  mem_intensity:float -> unit
(** Stretch and execute a burst on a physical core (process context). *)

val yield : Bmcast_hw.Cpu.t -> t -> core:int -> unit
(** A guest scheduling yield: free on bare metal and under BMcast,
    one VM exit under a conventional VMM (process context). *)
