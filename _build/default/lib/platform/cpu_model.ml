module Time = Bmcast_engine.Time
module Cpu = Bmcast_hw.Cpu
module Tlb = Bmcast_hw.Tlb

type t = {
  mutable tlb_mode : Tlb.mode;
  mutable steal : float;
  mutable exit_overhead : float;
  mutable yield_cost : Time.span;
}

let bare () =
  { tlb_mode = Tlb.Native; steal = 0.0; exit_overhead = 0.0; yield_cost = 0 }

let create ~tlb_mode ~steal ~exit_overhead =
  if steal < 0.0 || steal >= 1.0 then
    invalid_arg "Cpu_model.create: steal must be in [0,1)";
  { tlb_mode; steal; exit_overhead; yield_cost = 0 }

let set_yield_cost t c = t.yield_cost <- c

let clear t =
  t.tlb_mode <- Tlb.Native;
  t.steal <- 0.0;
  t.exit_overhead <- 0.0;
  t.yield_cost <- 0

let stretch t ~work ~mem_intensity =
  let f =
    Tlb.slowdown t.tlb_mode ~mem_intensity
    *. (1.0 +. t.exit_overhead)
    /. (1.0 -. t.steal)
  in
  Time.of_float_s (Time.to_float_s work *. f)

let run cpu t ~core ~work ~mem_intensity =
  Cpu.run (Cpu.core cpu core) (stretch t ~work ~mem_intensity)

let yield cpu t ~core =
  if t.yield_cost > 0 then begin
    Cpu.record_exit cpu Cpu.Other ~cost:t.yield_cost;
    Cpu.run (Cpu.core cpu core) t.yield_cost
  end
  else Bmcast_engine.Sim.yield ()
