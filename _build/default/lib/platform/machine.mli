(** Physical machine composition.

    Mirrors the paper's testbed node (FUJITSU PRIMERGY RX200 S6): 12
    cores, 96 GB RAM, one SATA disk behind an AHCI or IDE controller,
    two gigabit NICs (the second dedicated to the VMM), and an optional
    InfiniBand HCA. All device register traffic flows through the
    machine's {!Bmcast_hw.Mmio} / {!Bmcast_hw.Pio} buses so a VMM can
    interpose on any of it. *)

type disk_kind = Ahci_disk | Ide_disk

type controller = Ahci of Bmcast_storage.Ahci.t | Ide of Bmcast_storage.Ide.t

type t = {
  name : string;
  sim : Bmcast_engine.Sim.t;
  cpu : Bmcast_hw.Cpu.t;
  mmio : Bmcast_hw.Mmio.t;
  pio : Bmcast_hw.Pio.t;
  irq : Bmcast_hw.Irq.t;
  dma : Bmcast_storage.Dma.t;
  memmap : Bmcast_hw.Memmap.t;
  pci : Bmcast_hw.Pci.t;
  firmware : Bmcast_hw.Firmware.params;
  disk : Bmcast_storage.Disk.t;
  controller : controller;
  prod_nic : Bmcast_net.Nic.t;  (** production NIC (guest traffic) *)
  mgmt_nic : Bmcast_net.Nic.t;  (** dedicated management NIC (VMM) *)
  ib : Bmcast_net.Ib.endpoint option;
}

(** Well-known addresses and vectors. *)
val ahci_base : int
val ide_cmd_base : int
val ide_bm_base : int
val ide_ctrl_base : int
val prod_nic_base : int
val mgmt_nic_base : int
val disk_irq_vec : int
val prod_nic_irq_vec : int
val mgmt_nic_irq_vec : int

val create :
  Bmcast_engine.Sim.t ->
  name:string ->
  ?cores:int ->
  ?mem_bytes:int ->
  ?disk_profile:Bmcast_storage.Disk.profile ->
  ?disk_kind:disk_kind ->
  ?firmware:Bmcast_hw.Firmware.params ->
  fabric:Bmcast_net.Fabric.t ->
  ?ib:Bmcast_net.Ib.t ->
  unit ->
  t
(** Defaults: 12 cores, 96 GB, the paper's Constellation.2 HDD behind
    AHCI, default server firmware, no InfiniBand. *)

val controller_disk : t -> Bmcast_storage.Disk.t
