(** The environment a guest OS and its workloads see.

    Workloads are written once against this record and run unmodified on
    bare metal, on BMcast (through device mediators), or on KVM — the
    paper's OS-transparency property, as a typed interface. The stack
    assembler (experiment code) fills in the closures: block I/O goes
    through a guest device driver, CPU bursts through a {!Cpu_model},
    and the phase query reports the deployment state for time-series
    plots. *)

type phase =
  | Bare  (** no hypervisor *)
  | Deploying  (** BMcast streaming deployment in progress *)
  | Devirtualized  (** BMcast gone; raw hardware *)
  | Kvm  (** conventional hypervisor, always on *)

val pp_phase : Format.formatter -> phase -> unit

type t = {
  label : string;
  machine : Machine.t;
  block_read : lba:int -> count:int -> Bmcast_storage.Content.t array;
      (** blocking read through the guest's storage driver *)
  block_write : lba:int -> count:int -> Bmcast_storage.Content.t array -> unit;
  cpu : Cpu_model.t;
  phase : unit -> phase;
}

val cpu_run :
  t -> core:int -> work:Bmcast_engine.Time.span -> mem_intensity:float -> unit
(** Run a CPU burst under the runtime's current taxes. *)
