(** AoE target (vblade) with a worker thread pool.

    The original vblade is single-threaded and "becomes a performance
    bottleneck when the VMM sends a significant volume of read requests";
    the paper added a thread pool (§4.2). [workers = 1] reproduces the
    original; the ablation benchmark sweeps pool sizes.

    Each request costs per-request and per-sector CPU time on a worker,
    plus a disk access (the disk serializes across workers like a real
    spindle); response data is streamed back as MTU-sized fragments. *)

type t

val create :
  Bmcast_engine.Sim.t ->
  fabric:Bmcast_net.Fabric.t ->
  name:string ->
  disk:Bmcast_storage.Disk.t ->
  ?workers:int ->
  ?per_request_cpu:Bmcast_engine.Time.span ->
  ?per_sector_cpu:Bmcast_engine.Time.span ->
  ?ram_cache:bool ->
  unit ->
  t
(** Defaults: 8 workers, 1.5 ms per request (a userspace daemon doing
    filesystem I/O per command), 400 ns per sector, no RAM cache (reads
    hit the server disk). *)

val port : t -> Bmcast_net.Fabric.port
val port_id : t -> int

val requests_served : t -> int
val bytes_served : t -> int
