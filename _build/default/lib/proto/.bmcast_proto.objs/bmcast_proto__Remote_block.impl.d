lib/proto/remote_block.ml: Array Bmcast_engine Bmcast_net Bmcast_storage Hashtbl List Option Printf
