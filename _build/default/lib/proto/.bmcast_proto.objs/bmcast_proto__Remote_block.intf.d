lib/proto/remote_block.mli: Bmcast_engine Bmcast_net Bmcast_storage
