lib/proto/aoe_client.ml: Aoe Array Bmcast_engine Bmcast_storage Hashtbl Option Printf
