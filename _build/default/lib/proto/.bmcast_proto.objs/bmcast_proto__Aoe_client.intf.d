lib/proto/aoe_client.mli: Aoe Bmcast_engine Bmcast_storage
