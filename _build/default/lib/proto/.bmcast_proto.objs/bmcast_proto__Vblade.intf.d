lib/proto/vblade.mli: Bmcast_engine Bmcast_net Bmcast_storage
