lib/proto/aoe.mli: Bmcast_net Bmcast_storage Bytes
