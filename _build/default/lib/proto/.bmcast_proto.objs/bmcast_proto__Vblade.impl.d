lib/proto/vblade.ml: Aoe Array Bmcast_engine Bmcast_net Bmcast_storage Option Printf
