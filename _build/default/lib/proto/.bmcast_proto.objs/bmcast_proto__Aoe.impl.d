lib/proto/aoe.ml: Array Bmcast_net Bmcast_storage Bytes Int32 Printf
