(** Remote block access over iSCSI-like and NFS-like protocols.

    Baseline transports for the comparisons in §5.1/§5.5: image copying
    over iSCSI, NFS-root network boot, and KVM guests with NFS/iSCSI
    image backends. Both are modelled as reliable (TCP-like) RPC streams
    over the Ethernet fabric: per-operation client and server CPU
    overheads differ by protocol, and bulk data is chunked into MTU-sized
    frames on the wire.

    iSCSI is a block protocol with moderate per-op cost; the NFS model is
    file-level — higher per-op cost but client-side read-ahead/caching
    absorbs part of it for sequential access. *)

type protocol = Iscsi | Nfs

type params = {
  label : string;
  client_op_overhead : Bmcast_engine.Time.span;
  server_op_overhead : Bmcast_engine.Time.span;
  max_op_sectors : int;
  readahead_sectors : int;  (** 0 disables client read-ahead *)
}

val params_of : protocol -> params

type server

val create_server :
  Bmcast_engine.Sim.t ->
  fabric:Bmcast_net.Fabric.t ->
  name:string ->
  disk:Bmcast_storage.Disk.t ->
  protocol ->
  server

val server_port_id : server -> int

type client

val connect :
  Bmcast_engine.Sim.t ->
  fabric:Bmcast_net.Fabric.t ->
  name:string ->
  server ->
  client

val read : client -> lba:int -> count:int -> Bmcast_storage.Content.t array
(** Blocking read (process context); splits into protocol-sized ops and
    serves from the read-ahead cache when possible. *)

val write : client -> lba:int -> count:int -> Bmcast_storage.Content.t array -> unit

val ops_issued : client -> int
val cache_hits : client -> int
