module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Mailbox = Bmcast_engine.Mailbox
module Semaphore = Bmcast_engine.Semaphore
module Signal = Bmcast_engine.Signal
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Packet = Bmcast_net.Packet

type protocol = Iscsi | Nfs

type params = {
  label : string;
  client_op_overhead : Time.span;
  server_op_overhead : Time.span;
  max_op_sectors : int;
  readahead_sectors : int;
}

(* Calibration targets (§5.1): a KVM guest booting over NFS starts in
   42 s vs 55 s over iSCSI — NFS's file-level read-ahead absorbs round
   trips for the boot's mostly-sequential reads, despite its higher
   per-op cost. *)
let params_of = function
  | Iscsi ->
    { label = "iscsi";
      client_op_overhead = Time.us 1200;
      server_op_overhead = Time.ms 2;
      max_op_sectors = 8192;
      readahead_sectors = 0 }
  | Nfs ->
    { label = "nfs";
      client_op_overhead = Time.us 600;
      server_op_overhead = Time.us 900;
      max_op_sectors = 2048;
      readahead_sectors = 128
      (* initial read-ahead window (64 KB); ramps up to max_op_sectors
         on detected sequential access, Linux-style *) }

type req = { tag : int; op : [ `Read | `Write ]; lba : int; count : int;
             data : Content.t array }

type resp = { rtag : int; roff : int; rdata : Content.t array; final : bool }

type Packet.payload += Block_req of req | Block_resp of resp

type server = {
  s_sim : Sim.t;
  s_disk : Disk.t;
  s_params : params;
  mutable s_port : Fabric.port option;
  s_work : (int * req) Mailbox.t;
  s_disk_lock : Semaphore.t;
}

type client = {
  c_sim : Sim.t;
  c_params : params;
  mutable c_port : Fabric.port option;
  c_server : int;  (* server port id *)
  mutable c_next_tag : int;
  c_pending : (int, resp -> unit) Hashtbl.t;
  c_lock : Semaphore.t;  (* one op stream at a time, TCP-like *)
  (* read-ahead cache: one window, adaptive size *)
  mutable ra_lba : int;
  mutable ra_data : Content.t array;
  mutable ra_size : int;  (* current window; doubles on sequential *)
  (* asynchronous prefetch of the next window (issued once streaming is
     detected) and bounded write-behind *)
  mutable prefetches : prefetch list;  (* oldest first, up to 2 deep *)
  wb_slots : Semaphore.t;
  mutable ops : int;
  mutable hits : int;
}

and prefetch = {
  pf_lba : int;
  pf_count : int;
  mutable pf_data : Content.t array;
  pf_done : Signal.Latch.t;
}

(* Send [total_bytes] as MTU-sized raw frames, the last one carrying the
   marker payload (TCP-stream abstraction: FIFO, no loss). *)
let send_bulk port ~dst ~total_bytes payload =
  let mtu = 8962 in
  let rec go remaining =
    if remaining > mtu then begin
      Fabric.send port ~dst ~size_bytes:(mtu + 76) (Packet.Raw "seg");
      go (remaining - mtu)
    end
    else Fabric.send port ~dst ~size_bytes:(remaining + 76) payload
  in
  go (max 1 total_bytes)

(* --- server --- *)

let server_port s = Option.get s.s_port
let server_port_id s = Fabric.port_id (server_port s)

let serve s (src, r) =
  Sim.sleep s.s_params.server_op_overhead;
  match r.op with
  | `Read ->
    (* Stream the read back in chunks so disk and wire pipeline. *)
    let chunk = 512 in
    let rec go off =
      let n = min chunk (r.count - off) in
      let data =
        Semaphore.with_permit s.s_disk_lock (fun () ->
            Disk.read s.s_disk ~lba:(r.lba + off) ~count:n)
      in
      let final = off + n >= r.count in
      send_bulk (server_port s) ~dst:src ~total_bytes:(n * 512)
        (Block_resp { rtag = r.tag; roff = off; rdata = data; final });
      if not final then go (off + n)
    in
    go 0
  | `Write ->
    Semaphore.with_permit s.s_disk_lock (fun () ->
        Disk.write s.s_disk ~lba:r.lba ~count:r.count r.data);
    send_bulk (server_port s) ~dst:src ~total_bytes:64
      (Block_resp { rtag = r.tag; roff = 0; rdata = [||]; final = true })

let rec server_loop s =
  let job = Mailbox.recv s.s_work in
  serve s job;
  server_loop s

let create_server sim ~fabric ~name ~disk protocol =
  let s =
    { s_sim = sim;
      s_disk = disk;
      s_params = params_of protocol;
      s_port = None;
      s_work = Mailbox.create ();
      s_disk_lock = Semaphore.create 1 }
  in
  let rx (pkt : Packet.t) =
    match pkt.Packet.payload with
    | Block_req r -> ignore (Mailbox.try_send s.s_work (pkt.Packet.src, r) : bool)
    | Block_resp _ | _ -> ()
  in
  s.s_port <- Some (Fabric.attach fabric ~name rx);
  (* A handful of service threads: enough to overlap CPU and disk. *)
  for i = 1 to 4 do
    Sim.spawn_at sim ~name:(Printf.sprintf "%s-srv%d" name i) (Sim.now sim)
      (fun () -> server_loop s)
  done;
  s

(* --- client --- *)

let ops_issued c = c.ops
let cache_hits c = c.hits

let connect sim ~fabric ~name server =
  let c =
    { c_sim = sim;
      c_params = (params_of Iscsi) (* replaced below *);
      c_port = None;
      c_server = server_port_id server;
      c_next_tag = 1;
      c_pending = Hashtbl.create 8;
      c_lock = Semaphore.create 1;
      ra_lba = -1;
      ra_data = [||];
      ra_size = (params_of Iscsi).readahead_sectors;
      prefetches = [];
      wb_slots = Semaphore.create 4;
      ops = 0;
      hits = 0 }
  in
  let c =
    { c with
      c_params = server.s_params;
      ra_size = server.s_params.readahead_sectors }
  in
  let rx (pkt : Packet.t) =
    match pkt.Packet.payload with
    | Block_resp r -> (
      match Hashtbl.find_opt c.c_pending r.rtag with
      | Some k ->
        if r.final then Hashtbl.remove c.c_pending r.rtag;
        k r
      | None -> ())
    | Block_req _ | _ -> ()
  in
  c.c_port <- Some (Fabric.attach fabric ~name rx);
  c

let rpc c op ~lba ~count data =
  Sim.sleep c.c_params.client_op_overhead;
  let tag = c.c_next_tag in
  c.c_next_tag <- tag + 1;
  c.ops <- c.ops + 1;
  let result = Array.make (match op with `Read -> count | `Write -> 0) Content.Zero in
  let done_ = Signal.Latch.create () in
  Hashtbl.replace c.c_pending tag (fun r ->
      Array.blit r.rdata 0 result r.roff (Array.length r.rdata);
      if r.final then Signal.Latch.set done_);
  let req_bytes =
    match op with `Read -> 128 | `Write -> 128 + (count * 512)
  in
  send_bulk (Option.get c.c_port) ~dst:c.c_server ~total_bytes:req_bytes
    (Block_req { tag; op; lba; count; data });
  Signal.Latch.wait done_;
  result

let in_readahead c ~lba ~count =
  c.ra_lba >= 0 && lba >= c.ra_lba
  && lba + count <= c.ra_lba + Array.length c.ra_data

(* Once streaming is detected (window at maximum), keep up to two
   next-window fetches in flight so wire, disk and consumer overlap. *)
let rec maybe_start_prefetch c =
  if
    c.c_params.readahead_sectors > 0
    && c.ra_size >= c.c_params.max_op_sectors
    && List.length c.prefetches < 2 && c.ra_lba >= 0
  then begin
    let next_lba =
      match List.rev c.prefetches with
      | last :: _ -> last.pf_lba + last.pf_count
      | [] -> c.ra_lba + Array.length c.ra_data
    in
    let pf =
      { pf_lba = next_lba;
        pf_count = c.ra_size;
        pf_data = [||];
        pf_done = Signal.Latch.create () }
    in
    c.prefetches <- c.prefetches @ [ pf ];
    Sim.spawn ~name:"nfs-prefetch" (fun () ->
        pf.pf_data <- rpc c `Read ~lba:pf.pf_lba ~count:pf.pf_count [||];
        Signal.Latch.set pf.pf_done);
    maybe_start_prefetch c
  end

let read c ~lba ~count =
  Semaphore.with_permit c.c_lock (fun () ->
      let out = Array.make count Content.Zero in
      let rec go off =
        if off < count then begin
          let l = lba + off in
          if in_readahead c ~lba:l ~count:1 then begin
            (* Serve as much as possible from the cached window. *)
            let avail = c.ra_lba + Array.length c.ra_data - l in
            let n = min avail (count - off) in
            Array.blit c.ra_data (l - c.ra_lba) out off n;
            c.hits <- c.hits + 1;
            go (off + n)
          end
          else begin
            let want = count - off in
            (* An in-flight prefetch covering this miss: wait for it. *)
            match c.prefetches with
            | pf :: rest when pf.pf_lba = l ->
              Signal.Latch.wait pf.pf_done;
              c.prefetches <- rest;
              c.ra_lba <- pf.pf_lba;
              c.ra_data <- pf.pf_data;
              maybe_start_prefetch c;
              go off
            | _ ->
              (* Random miss: discard stale prefetches (their processes
                 finish harmlessly in the background). *)
              c.prefetches <- [];
              (* Adaptive read-ahead: a miss continuing the previous
                 window doubles it (sequential stream detected); a
                 random miss resets it. *)
              (if c.c_params.readahead_sectors > 0 then
                 if c.ra_lba >= 0 && l = c.ra_lba + Array.length c.ra_data
                 then
                   c.ra_size <-
                     min c.c_params.max_op_sectors (c.ra_size * 2)
                 else c.ra_size <- c.c_params.readahead_sectors);
              let fetch =
                if c.c_params.readahead_sectors > 0 then max want c.ra_size
                else want
              in
              let fetch = min fetch c.c_params.max_op_sectors in
              let data = rpc c `Read ~lba:l ~count:fetch [||] in
              if c.c_params.readahead_sectors > 0 then begin
                c.ra_lba <- l;
                c.ra_data <- data
              end;
              maybe_start_prefetch c;
              let n = min fetch want in
              Array.blit data 0 out off n;
              go (off + n)
          end
        end
      in
      go 0;
      out)

let write c ~lba ~count data =
  if Array.length data <> count then
    invalid_arg "Remote_block.write: data length mismatch";
  (* Invalidate read-ahead overlapping the write. *)
  if c.ra_lba >= 0 && lba < c.ra_lba + Array.length c.ra_data
     && c.ra_lba < lba + count
  then c.ra_lba <- -1;
  (* Write-behind: up to 4 dirty windows in flight (NFS async writes /
     iSCSI command queuing); the caller only blocks when all slots are
     busy. *)
  let rec go off =
    if off < count then begin
      let n = min c.c_params.max_op_sectors (count - off) in
      Semaphore.acquire c.wb_slots;
      let sub = Array.sub data off n in
      let wlba = lba + off in
      Sim.spawn ~name:"write-behind" (fun () ->
          ignore (rpc c `Write ~lba:wlba ~count:n sub : Content.t array);
          Semaphore.release c.wb_slots);
      go (off + n)
    end
  in
  Semaphore.with_permit c.c_lock (fun () -> go 0)
