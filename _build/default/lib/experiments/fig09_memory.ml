module Sysbench = Bmcast_guest.Sysbench

type point = {
  block_kb : int;
  bare_mib_s : float;
  deploy_mib_s : float;
  kvm_mib_s : float;
}

let default_blocks = [ 1; 2; 4; 8; 16 ]

let sweep_on make_stack blocks =
  let env = Stacks.make_env ~image_gb:4 () in
  let m = Stacks.machine env ~name:"node" () in
  let out = ref [] in
  Stacks.run env (fun () ->
      let rt = make_stack env m in
      out :=
        List.map
          (fun kb ->
            let r = Sysbench.run_memory rt ~block_bytes:(kb * 1024) () in
            (kb, r.Sysbench.throughput_mib_s))
          blocks);
  !out

let measure ?(block_kbs = default_blocks) () =
  let bare = sweep_on (fun env m -> Stacks.bare env m) block_kbs in
  let deploy = sweep_on (fun env m -> fst (Stacks.bmcast env m ())) block_kbs in
  let kvm = sweep_on (fun env m -> fst (Stacks.kvm_local env m)) block_kbs in
  List.map
    (fun (kb, bare_mib_s) ->
      { block_kb = kb;
        bare_mib_s;
        deploy_mib_s = List.assoc kb deploy;
        kvm_mib_s = List.assoc kb kvm })
    bare

let run ?block_kbs () =
  Report.section "Figure 9: SysBench memory (block-size sweep)";
  let points = measure ?block_kbs () in
  (* The paper quotes overhead as extra execution time (bare/virt - 1),
     not throughput loss. *)
  let overhead bare v = ((bare /. v) -. 1.0) *. 100.0 in
  Report.series_header
    [ "bare(MiB/s)"; "deploy"; "kvm"; "dep ovh %"; "kvm ovh %" ];
  List.iter
    (fun p ->
      Report.series_row
        (Printf.sprintf "%d KB blocks" p.block_kb)
        [ p.bare_mib_s;
          p.deploy_mib_s;
          p.kvm_mib_s;
          overhead p.bare_mib_s p.deploy_mib_s;
          overhead p.bare_mib_s p.kvm_mib_s ])
    points;
  (match List.rev points with
  | last :: _ when last.block_kb = 16 ->
    Report.row ~label:"BMcast overhead at 16 KB" ~paper:6.0 ~units:"%"
      (overhead last.bare_mib_s last.deploy_mib_s);
    Report.row ~label:"KVM overhead at 16 KB" ~paper:35.0 ~units:"%"
      (overhead last.bare_mib_s last.kvm_mib_s)
  | _ -> ())
