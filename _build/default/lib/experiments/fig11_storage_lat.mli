(** Figure 11 — storage latency (ioping-style probes; §5.5.2).

    Average latency of small random reads. During deployment, guest
    requests arriving while a background-copy command occupies the
    device are queued — the paper measured +4.3 ms of blocking; after
    de-virtualization the latency returns to bare metal. *)

type result = { label : string; avg_ms : float; p99_ms : float }

val measure : unit -> result list
val run : unit -> unit
