(** Figure 6 — MPI collective latency on a 10-node InfiniBand cluster
    (§5.3, OSU micro-benchmarks).

    Three cluster configurations: all nodes bare-metal, all on BMcast
    during streaming deployment (pass-through InfiniBand: no per-op
    adder), and all on KVM with direct device assignment (per-op IOMMU
    adder). The headline shape: KVM's Allgather at 235 % of bare metal,
    BMcast at ~100 %. *)

type result = {
  collective : string;
  bare_us : float;
  bmcast_us : float;
  kvm_us : float;
}

val measure : ?nodes:int -> ?bytes:int -> unit -> result list
(** Defaults: 10 nodes, 8 KB messages. *)

val run : ?nodes:int -> ?bytes:int -> unit -> unit
