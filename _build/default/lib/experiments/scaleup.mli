(** Simultaneous multi-instance provisioning (§5.1's scale-up claim).

    "BMcast transferred only 72 MB of the disk image while booting the
    OS [...] there is more room to scale-up the number of instances
    booted simultaneously." This experiment provisions N instances at
    once against one storage server and measures each instance's
    time-to-OS-ready, for BMcast streaming deployment vs. full image
    copying. Image copying saturates the server's egress port with N
    full-image streams; BMcast only moves each instance's boot working
    set up front. *)

type result = {
  instances : int;
  strategy : string;
  mean_ready_s : float;
  max_ready_s : float;
}

val measure :
  ?image_gb:int -> ?counts:int list -> unit -> result list
(** Defaults: 8-GB images, N in 1, 2, 4, 8. *)

val run : ?image_gb:int -> ?counts:int list -> unit -> unit
