module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Ib = Bmcast_net.Ib
module Kvm = Bmcast_baselines.Kvm

type result = { label : string; bw_gb_s : float; lat_us : float }

let one ~label ~overhead ~bytes ~iterations =
  let sim = Sim.create () in
  let ib = Ib.create sim () in
  let a = Ib.attach ib ~name:"sender" and b = Ib.attach ib ~name:"receiver" in
  Ib.set_op_overhead a overhead;
  let bw = ref 0.0 and lat = ref 0.0 in
  Sim.spawn_at sim Time.zero (fun () ->
      (* ib_rdma_bw: pipelined posts. *)
      let remaining = ref iterations in
      let t0 = Sim.clock () in
      let done_ = Bmcast_engine.Signal.Latch.create () in
      for _ = 1 to iterations do
        Ib.post a ~dst:b ~bytes ~on_complete:(fun () ->
            decr remaining;
            if !remaining = 0 then Bmcast_engine.Signal.Latch.set done_)
      done;
      Bmcast_engine.Signal.Latch.wait done_;
      bw :=
        float_of_int (iterations * bytes)
        /. Time.to_float_s (Time.diff (Sim.clock ()) t0)
        /. 1e9;
      (* ib_rdma_lat: synchronous ping. *)
      let t1 = Sim.clock () in
      for _ = 1 to iterations do
        Ib.rdma a ~dst:b ~bytes
      done;
      lat :=
        Time.to_float_us (Time.diff (Sim.clock ()) t1)
        /. float_of_int iterations);
  Sim.run sim;
  { label; bw_gb_s = !bw; lat_us = !lat }

let measure ?(bytes = 65536) ?(iterations = 1000) () =
  [ one ~label:"Baremetal" ~overhead:0 ~bytes ~iterations;
    one ~label:"BMcast deploy" ~overhead:(Time.ns 80) ~bytes ~iterations;
    one ~label:"BMcast devirt" ~overhead:0 ~bytes ~iterations;
    one ~label:"KVM/Direct" ~overhead:Kvm.ib_op_overhead ~bytes ~iterations ]

let run () =
  Report.section "Figures 12-13: InfiniBand RDMA (64 KB x 1000)";
  let results = measure () in
  let bare = List.hd results in
  List.iter
    (fun r ->
      Report.row ~label:(r.label ^ " throughput") ~units:"GB/s" r.bw_gb_s;
      Report.row ~label:(r.label ^ " latency") ~units:"us" r.lat_us)
    results;
  let find l = List.find (fun r -> r.label = l) results in
  Report.row ~label:"KVM latency overhead" ~paper:23.6 ~units:"%"
    (((find "KVM/Direct").lat_us /. bare.lat_us -. 1.0) *. 100.0);
  Report.row ~label:"BMcast deploy latency overhead" ~paper:1.0 ~units:"%"
    (((find "BMcast deploy").lat_us /. bare.lat_us -. 1.0) *. 100.0);
  Report.row ~label:"throughput spread (max-min)" ~paper:0.0 ~units:"GB/s"
    (List.fold_left (fun acc r -> Float.max acc r.bw_gb_s) 0.0 results
    -. List.fold_left (fun acc r -> Float.min acc r.bw_gb_s) infinity results)
