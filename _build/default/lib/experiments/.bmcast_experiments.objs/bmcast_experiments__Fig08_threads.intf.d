lib/experiments/fig08_threads.mli:
