lib/experiments/scaleup.ml: Bmcast_baselines Bmcast_engine Bmcast_guest Bmcast_platform Float List Printf Report Stacks
