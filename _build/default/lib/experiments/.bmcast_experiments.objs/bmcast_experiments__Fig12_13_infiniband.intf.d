lib/experiments/fig12_13_infiniband.mli:
