lib/experiments/fig09_memory.ml: Bmcast_guest List Printf Report Stacks
