lib/experiments/fig12_13_infiniband.ml: Bmcast_baselines Bmcast_engine Bmcast_net Float List Report
