lib/experiments/fig07_kernbench.mli:
