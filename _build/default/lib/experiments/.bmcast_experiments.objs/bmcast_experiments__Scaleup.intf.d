lib/experiments/scaleup.mli:
