lib/experiments/fig11_storage_lat.ml: Bmcast_core Bmcast_engine Bmcast_guest Bmcast_platform Bmcast_storage List Option Report Stacks
