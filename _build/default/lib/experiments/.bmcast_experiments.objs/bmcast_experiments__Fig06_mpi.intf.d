lib/experiments/fig06_mpi.mli:
