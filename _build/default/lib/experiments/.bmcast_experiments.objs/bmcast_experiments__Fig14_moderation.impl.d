lib/experiments/fig14_moderation.ml: Bmcast_core Bmcast_engine Bmcast_guest Bmcast_platform Bmcast_storage List Report Stacks
