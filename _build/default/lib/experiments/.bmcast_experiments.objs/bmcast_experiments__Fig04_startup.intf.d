lib/experiments/fig04_startup.mli:
