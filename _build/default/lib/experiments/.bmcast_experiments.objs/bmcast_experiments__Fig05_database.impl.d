lib/experiments/fig05_database.ml: Bmcast_core Bmcast_engine Bmcast_guest List Option Printf Report Stacks
