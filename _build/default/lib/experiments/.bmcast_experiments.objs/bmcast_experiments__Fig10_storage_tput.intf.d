lib/experiments/fig10_storage_tput.mli:
