lib/experiments/fig04_startup.ml: Bmcast_baselines Bmcast_engine Bmcast_guest Bmcast_hw Bmcast_platform List Option Report Stacks
