lib/experiments/fig14_moderation.mli:
