lib/experiments/ablations.mli:
