lib/experiments/fig08_threads.ml: Bmcast_engine Bmcast_guest List Printf Report Stacks
