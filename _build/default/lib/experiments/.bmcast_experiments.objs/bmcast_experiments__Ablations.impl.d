lib/experiments/ablations.ml: Bmcast_baselines Bmcast_core Bmcast_engine Bmcast_guest Bmcast_hw Bmcast_net Bmcast_platform Bmcast_proto Bmcast_storage Int64 List Option Printf Report Stacks
