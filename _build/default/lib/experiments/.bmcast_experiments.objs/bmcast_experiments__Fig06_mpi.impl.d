lib/experiments/fig06_mpi.ml: Array Bmcast_baselines Bmcast_cluster Bmcast_engine Bmcast_net List Printf Report
