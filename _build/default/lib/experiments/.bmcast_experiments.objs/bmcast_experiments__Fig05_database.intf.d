lib/experiments/fig05_database.mli:
