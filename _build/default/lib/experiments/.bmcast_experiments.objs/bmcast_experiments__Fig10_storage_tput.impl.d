lib/experiments/fig10_storage_tput.ml: Bmcast_core Bmcast_engine Bmcast_guest Bmcast_platform Bmcast_storage List Option Report Stacks
