lib/experiments/fig11_storage_lat.mli:
