lib/experiments/fig09_memory.mli:
