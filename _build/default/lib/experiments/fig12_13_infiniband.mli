(** Figures 12 & 13 — InfiniBand RDMA throughput and latency
    (ib_rdma_bw / ib_rdma_lat, 64 KB x 1000; §5.5.3).

    Throughput is identical everywhere — the RDMA hardware's command
    queuing hides per-op virtualization overhead behind wire
    serialization. Latency is synchronous, so KVM's IOMMU adder lands
    in full (+23.6 %) while BMcast stays under 1 %. *)

type result = {
  label : string;
  bw_gb_s : float;
  lat_us : float;
}

val measure : ?bytes:int -> ?iterations:int -> unit -> result list
val run : unit -> unit
