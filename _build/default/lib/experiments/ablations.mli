(** Ablations of BMcast's design choices (regenerates the claims the
    paper makes in prose rather than figures).

    - {b vblade thread pool} (§4.2): single-threaded target vs. worker
      pool under concurrent read streams.
    - {b jumbo frames} (§4.2): AoE bulk throughput at MTU 9000 vs 1500.
    - {b retransmission} (§4.2): goodput under packet loss.
    - {b boot prefetch} (§3.3): eagerly copying the boot working set
      ahead of the guest.
    - {b shared vs dedicated NIC} (§6): deployment over the production
      NIC while the guest uses it.
    - {b SSD local disks} (§2/§5.1): image copying stays network-bound,
      so SSDs barely help it.
    - {b OS transparency} (§4.3): a Windows-profile guest deploys
      through the same unmodified stack as the Ubuntu one. *)

val run_vblade_pool : unit -> unit
val run_jumbo_frames : unit -> unit
val run_retransmission : unit -> unit
val run_boot_prefetch : unit -> unit
val run_shared_nic : unit -> unit
val run_ssd : unit -> unit
val run_os_transparency : unit -> unit

val run : unit -> unit
(** All of the above. *)
