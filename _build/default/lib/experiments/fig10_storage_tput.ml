module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Fio = Bmcast_guest.Fio
module Vmm = Bmcast_core.Vmm

type result = { label : string; read_mb_s : float; write_mb_s : float }

let fio_pair rt ~read_lba ~write_lba =
  let r = Fio.seq_read rt ~start_lba:read_lba () in
  let w = Fio.seq_write rt ~start_lba:write_lba () in
  (r.Fio.throughput_mb_s, w.Fio.throughput_mb_s)

let mb = 2048 (* sectors *)

let on_static label make_stack =
  let env = Stacks.make_env ~image_gb:4 () in
  let m = Stacks.machine env ~name:label () in
  let out = ref (0.0, 0.0) in
  Stacks.run env (fun () ->
      let rt = make_stack env m in
      out := fio_pair rt ~read_lba:0 ~write_lba:(1024 * mb));
  let read_mb_s, write_mb_s = !out in
  { label; read_mb_s; write_mb_s }

let measure () =
  let bare = on_static "Baremetal" (fun env m -> Stacks.bare env m) in
  let deploy =
    let env = Stacks.make_env ~image_gb:8 () in
    let m = Stacks.machine env ~name:"Deploy" () in
    let out = ref (0.0, 0.0) in
    Stacks.run env (fun () ->
        let rt, vmm = Stacks.bmcast env m () in
        (* Touch the disk to start deployment, then let the background
           copy run past the measurement region so reads are local. *)
        ignore (rt.Bmcast_platform.Runtime.block_read ~lba:0 ~count:8
                : Bmcast_storage.Content.t array);
        let copied () =
          Vmm.progress vmm *. 8192.0 (* MB *)
        in
        while copied () < 500.0 do
          Sim.sleep (Time.s 1)
        done;
        out := fio_pair rt ~read_lba:0 ~write_lba:(6144 * mb));
    let read_mb_s, write_mb_s = !out in
    { label = "BMcast deploy"; read_mb_s; write_mb_s }
  in
  let devirt =
    let env = Stacks.make_env ~image_gb:1 () in
    let m = Stacks.machine env ~name:"Devirt" () in
    let out = ref (0.0, 0.0) in
    Stacks.run env (fun () ->
        let rt, vmm = Stacks.bmcast env m () in
        ignore (rt.Bmcast_platform.Runtime.block_read ~lba:0 ~count:8
                : Bmcast_storage.Content.t array);
        Vmm.wait_devirtualized vmm;
        out := fio_pair rt ~read_lba:0 ~write_lba:(1024 * mb));
    let read_mb_s, write_mb_s = !out in
    { label = "BMcast devirt"; read_mb_s; write_mb_s }
  in
  let netboot = on_static "Netboot" (fun env m -> fst (Stacks.netboot env m)) in
  let kvm_local = on_static "KVM/Local" (fun env m -> fst (Stacks.kvm_local env m)) in
  let kvm_nfs =
    on_static "KVM/NFS" (fun env m -> fst (Stacks.kvm_remote env m `Nfs))
  in
  [ bare; deploy; devirt; netboot; kvm_local; kvm_nfs ]

let paper = function
  | "Baremetal" -> Some (116.6, 111.9)
  | "BMcast deploy" -> Some (111.8, 111.9)
  | "BMcast devirt" -> Some (114.6, 111.9)
  | "KVM/Local" -> Some (104.4, 96.7)
  | "KVM/NFS" -> Some (102.3, 94.8)
  | _ -> None

let run () =
  Report.section "Figure 10: storage throughput (fio 200 MB, 1 MB blocks)";
  let results = measure () in
  List.iter
    (fun r ->
      let p = paper r.label in
      Report.row ~label:(r.label ^ " read")
        ?paper:(Option.map fst p) ~units:"MB/s" r.read_mb_s;
      Report.row ~label:(r.label ^ " write")
        ?paper:(Option.map snd p) ~units:"MB/s" r.write_mb_s)
    results
