(** Console reporting for experiment results: aligned rows with the
    paper's expected values next to the measured ones, so every figure
    regeneration doubles as a sanity check. *)

val section : string -> unit
(** Print a figure banner. *)

val note : ('a, Format.formatter, unit, unit) format4 -> 'a
(** Free-form annotation line. *)

val row : label:string -> ?paper:float -> units:string -> float -> unit
(** One measurement row; [paper] prints the reference value and the
    deviation. *)

val series_header : string list -> unit
val series_row : string -> float list -> unit

val ratio_row : label:string -> ?paper:float -> baseline:float -> float -> unit
(** Print a value as a percentage of [baseline] (and the paper's
    percentage if given). *)
