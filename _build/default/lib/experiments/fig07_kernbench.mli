(** Figure 7 — kernel-compile elapsed time (§5.4).

    kernbench (`make -j12`, minimal config) on bare metal, on BMcast
    while deployment is in progress (paper: +8 %), on BMcast after
    de-virtualization (identical to bare), and on KVM (+3 %). *)

type result = {
  bare_s : float;
  deploy_s : float;
  devirt_s : float;
  kvm_s : float;
}

val measure : ?image_gb:int -> unit -> result
val run : ?image_gb:int -> unit -> unit
