module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Sysbench = Bmcast_guest.Sysbench

type point = {
  threads : int;
  bare_ms : float;
  deploy_ms : float;
  kvm_ms : float;
}

let default_counts = [ 1; 2; 4; 8; 12; 16; 20; 24 ]

(* One stack, many thread counts: the sweep itself is milliseconds of
   simulated time, so a single deploying VMM covers it. *)
let sweep_on make_stack counts =
  let env = Stacks.make_env ~image_gb:4 () in
  let m = Stacks.machine env ~name:"node" () in
  let out = ref [] in
  Stacks.run env (fun () ->
      let rt = make_stack env m in
      out :=
        List.map
          (fun threads ->
            let r = Sysbench.run_threads rt ~threads () in
            (threads, Time.to_float_ms r.Sysbench.elapsed))
          counts);
  !out

let measure ?(thread_counts = default_counts) () =
  let bare = sweep_on (fun env m -> Stacks.bare env m) thread_counts in
  let deploy =
    sweep_on (fun env m -> fst (Stacks.bmcast env m ())) thread_counts
  in
  let kvm = sweep_on (fun env m -> fst (Stacks.kvm_local env m)) thread_counts in
  List.map
    (fun (threads, bare_ms) ->
      { threads;
        bare_ms;
        deploy_ms = List.assoc threads deploy;
        kvm_ms = List.assoc threads kvm })
    bare

let run ?thread_counts () =
  Report.section "Figure 8: SysBench threads (mutex acquire-yield-release)";
  let points = measure ?thread_counts () in
  Report.series_header [ "bare(ms)"; "deploy(ms)"; "kvm(ms)"; "dep %"; "kvm %" ];
  List.iter
    (fun p ->
      Report.series_row
        (Printf.sprintf "%d threads" p.threads)
        [ p.bare_ms;
          p.deploy_ms;
          p.kvm_ms;
          (p.deploy_ms /. p.bare_ms -. 1.0) *. 100.0;
          (p.kvm_ms /. p.bare_ms -. 1.0) *. 100.0 ])
    points;
  (match List.rev points with
  | last :: _ when last.threads = 24 ->
    Report.row ~label:"BMcast overhead at 24 threads" ~paper:6.0 ~units:"%"
      ((last.deploy_ms /. last.bare_ms -. 1.0) *. 100.0);
    Report.row ~label:"KVM overhead at 24 threads" ~paper:68.0 ~units:"%"
      ((last.kvm_ms /. last.bare_ms -. 1.0) *. 100.0)
  | _ -> ())
