(** Figure 5 — memcached and Cassandra under YCSB across the
    deployment → de-virtualization timeline (§5.2).

    For each database: a bare-metal baseline, a KVM run, and a BMcast
    run that launches YCSB right after the streaming-deployed instance
    boots. Reports the deployment-phase averages, the post-
    de-virtualization averages (which must converge to bare metal) and
    the deployment duration (memcached ~16 min; Cassandra ~17 min —
    longer because its commit log keeps the moderation backing off). *)

type result = {
  db : string;
  bare_kops : float;
  bare_lat_us : float;
  deploy_kops : float;
  deploy_lat_us : float;
  after_kops : float;
  after_lat_us : float;
  kvm_kops : float;
  kvm_lat_us : float;
  deploy_minutes : float;
  series : (float * float * float) list;
      (** (t seconds, kops, latency us) for the BMcast run *)
}

val measure : ?image_gb:int -> db:[ `Memcached | `Cassandra ] -> unit -> result
val run : ?image_gb:int -> unit -> unit
