module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Stats = Bmcast_engine.Stats
module Ioping = Bmcast_guest.Ioping
module Vmm = Bmcast_core.Vmm

type result = { label : string; avg_ms : float; p99_ms : float }

let probe label rt =
  let r = Ioping.run rt () in
  { label;
    avg_ms = r.Ioping.avg_ms;
    p99_ms = Stats.Histogram.percentile r.Ioping.latencies 99.0 }

let on_static label make_stack =
  let env = Stacks.make_env ~image_gb:4 () in
  let m = Stacks.machine env ~name:label () in
  let out = ref None in
  Stacks.run env (fun () ->
      let rt = make_stack env m in
      out := Some (probe label rt));
  Option.get !out

let measure () =
  let bare = on_static "Baremetal" (fun env m -> Stacks.bare env m) in
  let deploy =
    let env = Stacks.make_env ~image_gb:8 () in
    let m = Stacks.machine env ~name:"Deploy" () in
    let out = ref None in
    Stacks.run env (fun () ->
        let rt, vmm = Stacks.bmcast env m () in
        ignore (rt.Bmcast_platform.Runtime.block_read ~lba:0 ~count:8
                : Bmcast_storage.Content.t array);
        (* Let the copy cover the probe span (1 GB) so probes measure
           multiplexing delay, not copy-on-read fetches. *)
        while Vmm.progress vmm *. 8.0 < 1.1 do
          Sim.sleep (Time.s 1)
        done;
        out := Some (probe "BMcast deploy" rt));
    Option.get !out
  in
  let devirt =
    let env = Stacks.make_env ~image_gb:1 () in
    let m = Stacks.machine env ~name:"Devirt" () in
    let out = ref None in
    Stacks.run env (fun () ->
        let rt, vmm = Stacks.bmcast env m () in
        ignore (rt.Bmcast_platform.Runtime.block_read ~lba:0 ~count:8
                : Bmcast_storage.Content.t array);
        Vmm.wait_devirtualized vmm;
        out := Some (probe "BMcast devirt" rt));
    Option.get !out
  in
  let kvm = on_static "KVM/Local" (fun env m -> fst (Stacks.kvm_local env m)) in
  [ bare; deploy; devirt; kvm ]

let run () =
  Report.section "Figure 11: storage latency (ioping, 4 KB random reads)";
  let results = measure () in
  List.iter
    (fun r ->
      Report.row ~label:(r.label ^ " avg") ~units:"ms" r.avg_ms;
      Report.row ~label:(r.label ^ " p99") ~units:"ms" r.p99_ms)
    results;
  let find l = List.find (fun r -> r.label = l) results in
  Report.row ~label:"deploy blocking overhead" ~paper:4.3 ~units:"ms"
    ((find "BMcast deploy").avg_ms -. (find "Baremetal").avg_ms);
  Report.row ~label:"devirt overhead" ~paper:0.0 ~units:"ms"
    ((find "BMcast devirt").avg_ms -. (find "Baremetal").avg_ms)
