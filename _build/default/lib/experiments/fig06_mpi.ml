module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Ib = Bmcast_net.Ib
module Mpi = Bmcast_cluster.Mpi
module Kvm = Bmcast_baselines.Kvm

type result = {
  collective : string;
  bare_us : float;
  bmcast_us : float;
  kvm_us : float;
}

(* One isolated IB cluster per configuration; [overhead] is the per-op
   posting adder every node's HCA pays and [compute_factor] the
   virtualization stretch on the reduction operator (MPI stack +
   summation, ~2 ns/byte bare). *)
let cluster_latencies ~nodes ~bytes ~overhead ~compute_factor =
  let sim = Sim.create () in
  let ib = Ib.create sim () in
  let eps =
    Array.init nodes (fun i ->
        let ep = Ib.attach ib ~name:(Printf.sprintf "node%d" i) in
        Ib.set_op_overhead ep overhead;
        ep)
  in
  let compute ~bytes =
    Sim.sleep
      (Time.of_float_s (float_of_int bytes *. 2e-9 *. compute_factor))
  in
  let comm = Mpi.create ~compute eps in
  let out = ref [] in
  Sim.spawn_at sim Time.zero (fun () ->
      out :=
        List.map
          (fun coll -> (Mpi.name coll, Mpi.latency comm coll ~bytes ()))
          Mpi.all_collectives);
  Sim.run sim;
  !out

let measure ?(nodes = 10) ?(bytes = 8192) () =
  let bare = cluster_latencies ~nodes ~bytes ~overhead:0 ~compute_factor:1.0 in
  (* BMcast leaves the assigned InfiniBand HCA untouched; deployment
     adds CPU taxes to the reduction compute and a sub-us posting
     effect. *)
  let bmcast =
    cluster_latencies ~nodes ~bytes ~overhead:(Time.ns 80) ~compute_factor:1.06
  in
  let kvm =
    cluster_latencies ~nodes ~bytes ~overhead:Kvm.ib_op_overhead
      ~compute_factor:1.3
  in
  List.map
    (fun (name, bare_us) ->
      { collective = name;
        bare_us;
        bmcast_us = List.assoc name bmcast;
        kvm_us = List.assoc name kvm })
    bare

let paper_kvm_pct = function
  | "Allgather" -> Some 235.0
  | "Allreduce" -> Some 135.0
  | _ -> None

let paper_bmcast_pct = function
  | "Allgather" -> Some 100.0
  | "Allreduce" -> Some 122.0
  | _ -> None

let run ?nodes ?bytes () =
  Report.section "Figure 6: MPI collective latency (10-node InfiniBand cluster)";
  let results = measure ?nodes ?bytes () in
  Report.series_header [ "bare(us)"; "BMcast(us)"; "KVM(us)"; "BM %"; "KVM %" ];
  List.iter
    (fun r ->
      Report.series_row r.collective
        [ r.bare_us;
          r.bmcast_us;
          r.kvm_us;
          r.bmcast_us /. r.bare_us *. 100.0;
          r.kvm_us /. r.bare_us *. 100.0 ])
    results;
  List.iter
    (fun r ->
      (match paper_bmcast_pct r.collective with
      | Some p ->
        Report.row
          ~label:(r.collective ^ " BMcast vs bare")
          ~paper:p ~units:"%"
          (r.bmcast_us /. r.bare_us *. 100.0)
      | None -> ());
      match paper_kvm_pct r.collective with
      | Some p ->
        Report.row
          ~label:(r.collective ^ " KVM vs bare")
          ~paper:p ~units:"%"
          (r.kvm_us /. r.bare_us *. 100.0)
      | None -> ())
    results
