let section title =
  Printf.printf "\n=== %s ===\n%!" title

let note fmt =
  Format.kasprintf (fun s -> Printf.printf "  %s\n%!" s) fmt

let row ~label ?paper ~units value =
  match paper with
  | Some p when p <> 0.0 ->
    Printf.printf "  %-38s %10.2f %-8s (paper: %8.2f, %+.1f%%)\n%!" label value
      units p
      ((value -. p) /. p *. 100.0)
  | Some p ->
    Printf.printf "  %-38s %10.2f %-8s (paper: %8.2f)\n%!" label value units p
  | None -> Printf.printf "  %-38s %10.2f %-8s\n%!" label value units

let series_header cols =
  Printf.printf "  %-22s" "";
  List.iter (fun c -> Printf.printf " %12s" c) cols;
  Printf.printf "\n%!"

let series_row label values =
  Printf.printf "  %-22s" label;
  List.iter (fun v -> Printf.printf " %12.2f" v) values;
  Printf.printf "\n%!"

let ratio_row ~label ?paper ~baseline value =
  let pct = if baseline = 0.0 then 0.0 else value /. baseline *. 100.0 in
  match paper with
  | Some p ->
    Printf.printf "  %-38s %9.1f%% of baseline (paper: %6.1f%%)\n%!" label pct p
  | None -> Printf.printf "  %-38s %9.1f%% of baseline\n%!" label pct
