module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Signal = Bmcast_engine.Signal
module Os = Bmcast_guest.Os
module Image_copy = Bmcast_baselines.Image_copy

type result = {
  instances : int;
  strategy : string;
  mean_ready_s : float;
  max_ready_s : float;
}

let stats instances strategy ready_times =
  let n = float_of_int (List.length ready_times) in
  { instances;
    strategy;
    mean_ready_s = List.fold_left ( +. ) 0.0 ready_times /. n;
    max_ready_s = List.fold_left Float.max 0.0 ready_times }

(* Provision [n] machines concurrently; [provision_one] runs in each
   instance's own process and returns at OS-ready. *)
let fleet env n provision_one =
  let ready = ref [] in
  let done_count = ref 0 in
  Stacks.run env (fun () ->
      let all_done = Signal.Latch.create () in
      for i = 0 to n - 1 do
        let m = Stacks.machine env ~name:(Printf.sprintf "node%d" i) () in
        Sim.spawn (fun () ->
            let t0 = Sim.clock () in
            provision_one env m;
            ready := Time.to_float_s (Time.diff (Sim.clock ()) t0) :: !ready;
            incr done_count;
            if !done_count = n then Signal.Latch.set all_done)
      done;
      Signal.Latch.wait all_done);
  !ready

let bmcast_one env m =
  let rt, _vmm = Stacks.bmcast env m () in
  Os.boot rt ()

let copy_one env m =
  let clients =
    [ Stacks.iscsi_client env ~name:(m.Bmcast_platform.Machine.name ^ "-c0");
      Stacks.iscsi_client env ~name:(m.Bmcast_platform.Machine.name ^ "-c1") ]
  in
  ignore
    (Image_copy.deploy m ~servers:clients
       ~image_sectors:env.Stacks.image_sectors
      : Image_copy.breakdown);
  let rt = Stacks.bare env m in
  Os.boot rt ()

let measure ?(image_gb = 8) ?(counts = [ 1; 2; 4; 8 ]) () =
  List.concat_map
    (fun n ->
      let bmcast =
        stats n "BMcast"
          (fleet (Stacks.make_env ~image_gb ~vblade_ram_cache:true ()) n
             bmcast_one)
      in
      let copy =
        stats n "Image Copy"
          (fleet (Stacks.make_env ~image_gb ()) n copy_one)
      in
      [ bmcast; copy ])
    counts

let run ?image_gb ?counts () =
  Report.section "Scale-up: N instances provisioned simultaneously (8 GB images)";
  let results = measure ?image_gb ?counts () in
  Report.series_header [ "mean ready(s)"; "max ready(s)" ];
  List.iter
    (fun r ->
      Report.series_row
        (Printf.sprintf "N=%d %s" r.instances r.strategy)
        [ r.mean_ready_s; r.max_ready_s ])
    results;
  (* The claim: BMcast's ready time barely grows with N, image copy's
     grows ~linearly once the server port saturates. *)
  let find n s =
    List.find (fun r -> r.instances = n && r.strategy = s) results
  in
  let last = List.fold_left (fun acc r -> max acc r.instances) 1 results in
  Report.row ~label:"BMcast slowdown N=1 -> max" ~units:"x"
    ((find last "BMcast").mean_ready_s /. (find 1 "BMcast").mean_ready_s);
  Report.row ~label:"Image-copy slowdown N=1 -> max" ~units:"x"
    ((find last "Image Copy").mean_ready_s /. (find 1 "Image Copy").mean_ready_s)
