module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Os = Bmcast_guest.Os
module Ycsb = Bmcast_guest.Ycsb
module Vmm = Bmcast_core.Vmm

type result = {
  db : string;
  bare_kops : float;
  bare_lat_us : float;
  deploy_kops : float;
  deploy_lat_us : float;
  after_kops : float;
  after_lat_us : float;
  kvm_kops : float;
  kvm_lat_us : float;
  deploy_minutes : float;
  series : (float * float * float) list;
}

let profile_of = function
  | `Memcached -> Ycsb.memcached
  | `Cassandra -> Ycsb.cassandra

(* Steady-state run on a static stack (bare metal / KVM). *)
let steady_run env runtime profile =
  let out = ref (0.0, 0.0) in
  Stacks.run env (fun () ->
      Os.boot runtime ();
      let samples = Ycsb.run runtime profile ~duration:(Time.s 120) () in
      out := Ycsb.average samples ~between:(Time.s 10, Time.s 120));
  !out

let measure ?(image_gb = 32) ~db () =
  let profile = profile_of db in
  let bare_kops, bare_lat_us =
    let env = Stacks.make_env ~image_gb () in
    let m = Stacks.machine env ~name:"bare" () in
    let rt = Stacks.bare env m in
    steady_run env rt profile
  in
  let kvm_kops, kvm_lat_us =
    let env = Stacks.make_env ~image_gb () in
    let m = Stacks.machine env ~name:"kvm" () in
    let rt, _ = Stacks.kvm_local env m in
    steady_run env rt profile
  in
  (* BMcast: YCSB starts right after the streamed instance boots and
     keeps running across de-virtualization. *)
  let env = Stacks.make_env ~image_gb () in
  let m = Stacks.machine env ~name:"bmcast" () in
  let samples = ref [] in
  let devirt_at = ref None in
  Stacks.run env (fun () ->
      let rt, vmm = Stacks.bmcast env m () in
      Os.boot rt ();
      let t0 = Sim.clock () in
      Sim.spawn (fun () ->
          Vmm.wait_devirtualized vmm;
          devirt_at :=
            Option.map
              (fun t -> Time.to_float_s (Time.diff t t0))
              (Vmm.devirtualized_at vmm));
      let duration =
        (* enough to cover deployment plus a post-devirt window *)
        Time.add (Time.minutes (22 * image_gb / 32)) (Time.s 240)
      in
      samples := Ycsb.run rt profile ~duration ());
  let devirt_s =
    Option.value !devirt_at ~default:(22.0 *. 60.0 *. float_of_int image_gb /. 32.0)
  in
  let avg ~from ~until =
    Ycsb.average !samples ~between:(Time.of_float_s from, Time.of_float_s until)
  in
  let deploy_kops, deploy_lat_us = avg ~from:10.0 ~until:(devirt_s -. 5.0) in
  let after_kops, after_lat_us =
    avg ~from:(devirt_s +. 10.0) ~until:(devirt_s +. 230.0)
  in
  { db = profile.Ycsb.db_name;
    bare_kops;
    bare_lat_us;
    deploy_kops;
    deploy_lat_us;
    after_kops;
    after_lat_us;
    kvm_kops;
    kvm_lat_us;
    deploy_minutes = devirt_s /. 60.0;
    series =
      List.map
        (fun s ->
          ( Time.to_float_s s.Ycsb.at,
            s.Ycsb.kops_per_s,
            s.Ycsb.latency_us ))
        !samples }

let paper = function
  | "memcached" ->
    (* bare kops, bare lat, deploy kops, deploy lat, kvm kops, kvm lat,
       after kops, after lat, deploy minutes *)
    (36.4, 281.0, 34.6, 291.0, 33.9, 334.0, 36.4, 281.0, 16.0)
  | "cassandra" -> (58.0, 2443.0, 51.4, 2609.0, 52.1, 2533.0, 60.0, 2443.0, 17.0)
  | _ -> (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

let report r =
  let p_bare_k, p_bare_l, p_dep_k, p_dep_l, p_kvm_k, p_kvm_l, p_aft_k, p_aft_l,
      p_min =
    paper r.db
  in
  Report.note "--- %s ---" r.db;
  Report.row ~label:"bare-metal throughput" ~paper:p_bare_k ~units:"kT/s" r.bare_kops;
  Report.row ~label:"bare-metal latency" ~paper:p_bare_l ~units:"us" r.bare_lat_us;
  Report.row ~label:"BMcast deploy throughput" ~paper:p_dep_k ~units:"kT/s" r.deploy_kops;
  Report.row ~label:"BMcast deploy latency" ~paper:p_dep_l ~units:"us" r.deploy_lat_us;
  Report.row ~label:"BMcast after devirt throughput" ~paper:p_aft_k ~units:"kT/s" r.after_kops;
  Report.row ~label:"BMcast after devirt latency" ~paper:p_aft_l ~units:"us" r.after_lat_us;
  Report.row ~label:"KVM throughput" ~paper:p_kvm_k ~units:"kT/s" r.kvm_kops;
  Report.row ~label:"KVM latency" ~paper:p_kvm_l ~units:"us" r.kvm_lat_us;
  Report.row ~label:"deployment duration" ~paper:p_min ~units:"min" r.deploy_minutes;
  (* A condensed time series: one row per 2 minutes. *)
  Report.series_header [ "t(s)"; "kT/s"; "lat(us)" ];
  List.iteri
    (fun i (t, k, l) ->
      if i mod 12 = 0 then Report.series_row (Printf.sprintf "t=%.0fs" t) [ t; k; l ])
    r.series

let run ?image_gb () =
  Report.section "Figure 5: database benchmarks (YCSB) across deployment";
  report (measure ?image_gb ~db:`Memcached ());
  report (measure ?image_gb ~db:`Cassandra ())
