(** Figure 9 — SysBench memory benchmark, 1-16 KB blocks (§5.5.1).

    Throughput of repeated allocate-and-write rounds. Nested paging
    costs grow with block size (more fresh pages touched per
    operation): KVM loses 35 % at 16 KB, BMcast during deployment only
    6 %. *)

type point = {
  block_kb : int;
  bare_mib_s : float;
  deploy_mib_s : float;
  kvm_mib_s : float;
}

val measure : ?block_kbs:int list -> unit -> point list
(** Default sweep: 1, 2, 4, 8, 16 KB. *)

val run : ?block_kbs:int list -> unit -> unit
