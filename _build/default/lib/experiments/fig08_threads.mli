(** Figure 8 — SysBench thread benchmark, 1-24 threads (§5.5.1).

    Mutex acquire-yield-release loops. KVM's per-yield VM exits and
    host-scheduler steals compound with lock contention (lock-holder
    preemption): +68 % at 24 threads. BMcast during deployment traps
    almost nothing: +6 %. *)

type point = {
  threads : int;
  bare_ms : float;
  deploy_ms : float;
  kvm_ms : float;
}

val measure : ?thread_counts:int list -> unit -> point list
(** Default sweep: 1, 2, 4, 8, 12, 16, 20, 24. *)

val run : ?thread_counts:int list -> unit -> unit
