module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Kernbench = Bmcast_guest.Kernbench
module Vmm = Bmcast_core.Vmm

type result = {
  bare_s : float;
  deploy_s : float;
  devirt_s : float;
  kvm_s : float;
}

let secs = Time.to_float_s

let on_static make_stack =
  let env = Stacks.make_env ~image_gb:8 () in
  let m = Stacks.machine env ~name:"node" () in
  let rt = make_stack env m in
  let out = ref 0.0 in
  Stacks.run env (fun () ->
      let r = Kernbench.run rt () in
      out := secs r.Kernbench.elapsed);
  !out

let measure ?(image_gb = 8) () =
  let bare_s = on_static (fun env m -> Stacks.bare env m) in
  let kvm_s = on_static (fun env m -> fst (Stacks.kvm_local env m)) in
  (* During deployment: the image is large enough that the copy is still
     running for the whole compile. *)
  let deploy_s =
    let env = Stacks.make_env ~image_gb () in
    let m = Stacks.machine env ~name:"deploy" () in
    let out = ref 0.0 in
    Stacks.run env (fun () ->
        let rt, _vmm = Stacks.bmcast env m () in
        let r = Kernbench.run rt () in
        out := secs r.Kernbench.elapsed);
    !out
  in
  (* After de-virtualization: deploy a small image to completion
     first. *)
  let devirt_s =
    let env = Stacks.make_env ~image_gb:1 () in
    let m = Stacks.machine env ~name:"devirt" () in
    let out = ref 0.0 in
    Stacks.run env (fun () ->
        let rt, vmm = Stacks.bmcast env m () in
        (* Touch the disk so deployment starts, then wait it out. *)
        ignore (rt.Bmcast_platform.Runtime.block_read ~lba:0 ~count:8
                : Bmcast_storage.Content.t array);
        Vmm.wait_devirtualized vmm;
        let r = Kernbench.run rt () in
        out := secs r.Kernbench.elapsed);
    !out
  in
  { bare_s; deploy_s; devirt_s; kvm_s }

let run ?image_gb () =
  Report.section "Figure 7: kernel compile (kernbench, make -j12)";
  let r = measure ?image_gb () in
  Report.row ~label:"Baremetal" ~paper:16.0 ~units:"s" r.bare_s;
  Report.row ~label:"BMcast (deploying)" ~paper:17.3 ~units:"s" r.deploy_s;
  Report.row ~label:"BMcast (devirtualized)" ~paper:16.0 ~units:"s" r.devirt_s;
  Report.row ~label:"KVM" ~paper:16.5 ~units:"s" r.kvm_s;
  Report.row ~label:"deploy overhead" ~paper:8.0 ~units:"%"
    ((r.deploy_s /. r.bare_s -. 1.0) *. 100.0);
  Report.row ~label:"devirt overhead" ~paper:0.0 ~units:"%"
    ((r.devirt_s /. r.bare_s -. 1.0) *. 100.0);
  Report.row ~label:"KVM overhead" ~paper:3.0 ~units:"%"
    ((r.kvm_s /. r.bare_s -. 1.0) *. 100.0)
