(** Figure 10 — storage throughput (fio, 200 MB sequential, 1 MB
    blocks, direct I/O; §5.5.2).

    Read and write throughput on: bare metal (116.6 / 111.9 MB/s in the
    paper), BMcast during deployment (read −4.1 %), BMcast after
    de-virtualization (read −1.7 %), network boot (continuous NFS
    overhead), KVM with local virtio disk (−10.5 % / −13.6 %) and KVM
    over NFS (−12.3 % / −15.3 %). *)

type result = { label : string; read_mb_s : float; write_mb_s : float }

val measure : unit -> result list
val run : unit -> unit
