lib/core/nic_mediator.mli: Bmcast_engine Bmcast_net Bmcast_platform
