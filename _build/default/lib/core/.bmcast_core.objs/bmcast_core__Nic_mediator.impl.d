lib/core/nic_mediator.ml: Bmcast_engine Bmcast_hw Bmcast_net Bmcast_platform Int64
