lib/core/vmm_netdrv.mli: Bmcast_engine Bmcast_net Bmcast_platform
