lib/core/bitmap.ml: Array Bmcast_storage Bytes Char List Printf
