lib/core/ahci_mediator.mli: Bitmap Bmcast_platform Bmcast_proto Bmcast_storage Params
