lib/core/background_copy.mli: Bitmap Bmcast_engine Bmcast_storage Params
