lib/core/ide_mediator.ml: Array Bitmap Bmcast_engine Bmcast_hw Bmcast_platform Bmcast_proto Bmcast_storage List Params Queue
