lib/core/params.ml: Bmcast_engine
