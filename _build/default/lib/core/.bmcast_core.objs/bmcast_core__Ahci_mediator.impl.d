lib/core/ahci_mediator.ml: Array Bitmap Bmcast_engine Bmcast_hw Bmcast_platform Bmcast_proto Bmcast_storage Int64 List Params Queue
