lib/core/bitmap.mli: Bmcast_storage Bytes
