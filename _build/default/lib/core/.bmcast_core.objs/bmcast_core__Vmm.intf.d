lib/core/vmm.mli: Bitmap Bmcast_engine Bmcast_platform Bmcast_proto Nic_mediator Params Vmm_netdrv
