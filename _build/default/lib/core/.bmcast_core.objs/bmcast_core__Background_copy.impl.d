lib/core/background_copy.ml: Array Bitmap Bmcast_engine Bmcast_proto Bmcast_storage Float List Params
