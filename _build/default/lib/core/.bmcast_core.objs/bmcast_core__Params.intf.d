lib/core/params.mli: Bmcast_engine
