(** NIC device mediator with shadow ring buffers (§6).

    The paper's shared-NIC design, prototyped there for Intel PRO/1000
    and Realtek RTL8169: "we create a shadow version of ring buffers
    [...] maintained by the VMM and the pointer to the buffers set to
    the physical NIC. The guest ring buffers are maintained by the
    device driver of the guest OS and their contents are copied to and
    from the shadow ring buffers by the VMM. [...] The VMM interleaves
    its own network requests with the requests from the guest OS into
    the shadow ring buffers."

    Mechanically: the mediator owns the rings the device actually uses.
    Guest TDT writes are trapped; the descriptors the guest driver wrote
    into {e its} ring are copied into the shadow ring (interleaved with
    the VMM's own frames) and the head/tail registers the guest reads
    are emulated. Inbound frames land in the shadow RX ring, are polled
    by the mediator, claimed by the VMM's filter (AoE traffic) or
    relayed into the guest's RX ring with an injected interrupt.

    The paper ultimately prefers a dedicated NIC because this mediation
    adds latency/jitter and the two streams contend for bandwidth — the
    ablation benchmark quantifies exactly that. *)

type t

val attach :
  Bmcast_platform.Machine.t ->
  poll_interval:Bmcast_engine.Time.span ->
  t
(** Interpose on the production NIC: allocate shadow rings, retarget the
    device at them, start the mediator's polling thread. *)

val set_vmm_rx : t -> (Bmcast_net.Packet.t -> bool) -> unit
(** The VMM's inbound filter: return [true] to consume a frame (e.g. an
    AoE response); [false] frames are relayed to the guest. *)

val vmm_send : t -> dst:int -> size_bytes:int -> Bmcast_net.Packet.payload -> unit
(** Transmit a VMM frame, interleaved into the shadow TX ring. *)

val port_id : t -> int
(** Fabric port of the shared NIC. *)

val devirtualize : t -> unit
(** Wait for the guest to go quiet, point the device back at the
    guest's own rings and remove the interposer (process context). The
    guest driver is expected to reprogram TDBA/RDBA afterwards, as real
    drivers do across a device reset. *)

(** {2 Statistics} *)

val guest_tx_frames : t -> int
val guest_rx_relayed : t -> int
val guest_rx_dropped : t -> int
val vmm_tx_frames : t -> int
