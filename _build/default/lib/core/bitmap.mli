(** Per-sector fill bitmap (§3.3).

    Tracks which local-disk sectors already hold valid data (copied from
    the server or written by the guest). The check-and-set operations
    are the consistency mechanism: a background-copy fill must
    atomically skip any sector the guest has written in the meantime.
    [to_bytes]/[of_bytes] serialize the map for the on-disk save across
    reboots the paper describes. *)

type t

val create : sectors:int -> t
val sectors : t -> int

val is_filled : t -> int -> bool

val set_filled : t -> int -> bool
(** Mark one sector filled; returns [true] if it was previously empty
    (i.e. the caller "won" the fill). *)

val fill_range : t -> lba:int -> count:int -> int
(** Mark a range filled; returns how many sectors were newly filled. *)

val empty_subranges : t -> lba:int -> count:int -> (int * int) list
(** Maximal empty [(lba, count)] sub-ranges within a range, ascending. *)

val filled_count : t -> int
val is_complete : t -> bool

val find_empty_run : t -> from:int -> max:int -> (int * int) option
(** First empty run at-or-after [from] (wrapping once), clipped to
    [max] sectors. [None] iff the map is complete. *)

val to_bytes : t -> Bytes.t
val of_bytes : sectors:int -> Bytes.t -> t
(** Raises [Invalid_argument] if the buffer is the wrong size. *)

val save_sectors : sectors:int -> int
(** Disk sectors needed to persist a map covering [sectors]. *)

val to_blob_sectors : t -> Bmcast_storage.Content.t array
(** Serialize into 512-byte {!Bmcast_storage.Content.Blob} sectors for
    the on-disk save across reboots (§3.3). *)

val load_blob_sectors : t -> Bmcast_storage.Content.t array -> unit
(** Restore in place from a saved region. Raises [Invalid_argument] on
    size mismatch or non-bitmap content. *)
