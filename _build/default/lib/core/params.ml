module Time = Bmcast_engine.Time

type t = {
  image_sectors : int;
  chunk_sectors : int;
  guest_io_threshold : float;
  write_interval : Time.span;
  suspend_interval : Time.span;
  poll_interval : Time.span;
  vmm_mem_bytes : int;
  exit_cost : Time.span;
  deploy_steal : float;
  vmm_boot_time : Time.span;
}

let image_32gb_sectors = 32 * 1024 * 1024 * 2

let default ~image_sectors =
  { image_sectors;
    chunk_sectors = 6144;  (* 3 MB per background write *)
    guest_io_threshold = 30.0;
    write_interval = Time.ms 62;
    suspend_interval = Time.ms 200;
    poll_interval = Time.us 30;
    vmm_mem_bytes = 128 * 1024 * 1024;
    exit_cost = Time.ns 1200;
    (* §5.2 reports 6% total CPU cost of deployment; per-core impact on
       a 12-core machine is smaller since polling threads gravitate to
       idle cores. *)
    deploy_steal = 0.03;
    vmm_boot_time = Time.of_float_s 3.5 }
