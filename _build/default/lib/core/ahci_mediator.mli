(** AHCI device mediator (§3.2).

    Interposes on the machine's AHCI register region and performs the
    paper's three mediation tasks:

    {b I/O interpretation} — snoops PxCI writes and walks the in-memory
    command list / command tables to learn each command's operation,
    LBA, sector count and DMA scatter list; detects controller
    initialization (PxCMD.ST) so the VMM knows when the device is usable.

    {b I/O redirection} (copy-on-read) — a guest read touching empty
    blocks is withheld from the device; the data is fetched from the
    storage server over AoE, written back to the local disk, copied into
    the guest's DMA buffers by the mediator acting as a virtual DMA
    controller, and then the {e device itself} is made to raise the
    completion interrupt by rewriting the command into a 1-sector dummy
    read that hits the disk cache.

    {b I/O multiplexing} — the VMM's own disk accesses
    ([vmm_read]/[vmm_write]) wait for the device to go idle, mask the
    port interrupt, run in command slot 31 with completion detected by
    polling, and present an emulated idle status to the guest; guest
    commands issued meanwhile are queued and replayed afterwards.

    [devirtualize] removes the interposer: all register traffic then
    flows directly to the hardware and the trap counter stops moving. *)

type stats = {
  mutable redirects : int;
  mutable redirected_sectors : int;
  mutable multiplexed_ops : int;
  mutable queued_commands : int;
  mutable passthrough_commands : int;
}

type t

val attach :
  Bmcast_platform.Machine.t ->
  aoe:Bmcast_proto.Aoe_client.t ->
  bitmap:Bitmap.t ->
  params:Params.t ->
  t
(** Install the interposer. The machine must have an AHCI controller. *)

val wait_device_ready : t -> unit
(** Block until the guest driver has started the port (process
    context) — before that the VMM cannot multiplex commands because
    there is no command list. *)

val set_protected_region : t -> lba:int -> count:int -> unit
(** Guest commands touching this range are converted into dummy-sector
    reads — how the VMM shields its on-disk bitmap save (§3.3). *)

val vmm_read : t -> lba:int -> count:int -> Bmcast_storage.Content.t array
(** Multiplexed VMM read of the local disk (process context). *)

val vmm_write : t -> lba:int -> count:int -> Bmcast_storage.Content.t array -> unit

val vmm_write_empty :
  t -> lba:int -> count:int -> Bmcast_storage.Content.t array -> int
(** Write only sectors still unfilled, with the emptiness check made
    {e while holding the device} — the atomic check-and-write of §3.3
    that prevents a stale server block from clobbering a fresher guest
    write. Marks written sectors in the bitmap; returns how many
    sectors were written (process context). The [data] array is indexed
    by [sector - lba]. *)

val guest_io_rate : t -> float
(** Guest commands per second over the trailing window (moderation
    input). *)

val guest_last_lba : t -> int option
(** End LBA of the guest's most recent read (background-copy locality
    hint). *)

val redirect_active : t -> bool
(** Whether any copy-on-read redirection is in flight — the guest is
    actively faulting cold blocks (a stronger "busy" signal than the
    I/O rate, which collapses when fetches are slow). *)

val devirtualize : t -> unit
(** Quiesce (waits for in-flight mediation to drain) and remove the
    interposer (process context). *)

val is_devirtualized : t -> bool
val stats : t -> stats
