(** IDE device mediator (§3.2; 1,472 LoC in the paper's prototype).

    The IDE twin of {!Ahci_mediator}. Because the task file carries the
    command context one port-write at a time, I/O interpretation keeps a
    {e shadow task file}: every guest write is recorded (and forwarded —
    harmless, since the mediator can replay a snapshot later). The
    decision point is the bus-master start bit, when the whole command
    is known. Redirection and multiplexing follow the same protocol as
    AHCI: withheld guest commands show an emulated BSY status; the VMM's
    own commands run with nIEN set and completion detected by polling
    the status register; the completion interrupt for redirected guest
    reads comes from the device itself via the rewritten dummy-sector
    command. *)

type stats = {
  mutable redirects : int;
  mutable redirected_sectors : int;
  mutable multiplexed_ops : int;
  mutable queued_commands : int;
  mutable passthrough_commands : int;
}

type t

val attach :
  Bmcast_platform.Machine.t ->
  aoe:Bmcast_proto.Aoe_client.t ->
  bitmap:Bitmap.t ->
  params:Params.t ->
  t
(** Install interposers on the task-file, bus-master and control port
    ranges. The machine must have an IDE controller. *)

val wait_device_ready : t -> unit
(** No-op: IDE ports are usable without guest initialization (present
    for interface symmetry with {!Ahci_mediator}). *)

val set_protected_region : t -> lba:int -> count:int -> unit
(** See {!Ahci_mediator.set_protected_region}. *)

val vmm_read : t -> lba:int -> count:int -> Bmcast_storage.Content.t array
val vmm_write : t -> lba:int -> count:int -> Bmcast_storage.Content.t array -> unit

val vmm_write_empty :
  t -> lba:int -> count:int -> Bmcast_storage.Content.t array -> int
(** Atomic still-empty write; see {!Ahci_mediator.vmm_write_empty}. *)

val guest_io_rate : t -> float
val guest_last_lba : t -> int option

val redirect_active : t -> bool
(** Whether any copy-on-read redirection is in flight; see
    {!Ahci_mediator.redirect_active}. *)

val devirtualize : t -> unit
val is_devirtualized : t -> bool
val stats : t -> stats
