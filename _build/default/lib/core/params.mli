(** BMcast deployment configuration.

    The three moderation knobs are the paper's (§3.3): the VMM suspends
    background-copy writes while the guest's recent I/O rate exceeds
    [guest_io_threshold]; otherwise it writes one chunk every
    [write_interval]. §5.6 sweeps [write_interval] from 1 s down to
    full speed. *)

type t = {
  image_sectors : int;  (** OS image size (identical address space) *)
  chunk_sectors : int;  (** background-copy block (paper: 1024 KB) *)
  guest_io_threshold : float;  (** guest IOs per second *)
  write_interval : Bmcast_engine.Time.span;  (** VMM-write interval *)
  suspend_interval : Bmcast_engine.Time.span;  (** VMM-write suspend interval *)
  poll_interval : Bmcast_engine.Time.span;
      (** preemption-timer polling granularity for I/O multiplexing *)
  vmm_mem_bytes : int;  (** memory reserved for the VMM (128 MB) *)
  exit_cost : Bmcast_engine.Time.span;  (** one VM exit + handler *)
  deploy_steal : float;
      (** CPU stolen by deployment threads (§5.2 measured 6%) *)
  vmm_boot_time : Bmcast_engine.Time.span;
      (** VMM initialization after PXE load (total boot ~5 s) *)
}

val default : image_sectors:int -> t

val image_32gb_sectors : int
(** The paper's 32-GB OS image, in sectors. *)
