module Content = Bmcast_storage.Content

type t = { sectors : int; bits : Bytes.t; mutable filled : int }

let bytes_for sectors = (sectors + 7) / 8

let create ~sectors =
  if sectors <= 0 then invalid_arg "Bitmap.create: sectors must be positive";
  { sectors; bits = Bytes.make (bytes_for sectors) '\000'; filled = 0 }

let sectors t = t.sectors

let check t i =
  if i < 0 || i >= t.sectors then
    invalid_arg (Printf.sprintf "Bitmap: sector %d out of range" i)

let is_filled t i =
  check t i;
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_filled t i =
  check t i;
  let byte = Char.code (Bytes.get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask = 0 then begin
    Bytes.set t.bits (i lsr 3) (Char.chr (byte lor mask));
    t.filled <- t.filled + 1;
    true
  end
  else false

let fill_range t ~lba ~count =
  let newly = ref 0 in
  for i = lba to lba + count - 1 do
    if set_filled t i then incr newly
  done;
  !newly

let empty_subranges t ~lba ~count =
  let acc = ref [] in
  let run_start = ref (-1) in
  for i = lba to lba + count - 1 do
    if not (is_filled t i) then begin
      if !run_start < 0 then run_start := i
    end
    else if !run_start >= 0 then begin
      acc := (!run_start, i - !run_start) :: !acc;
      run_start := -1
    end
  done;
  if !run_start >= 0 then acc := (!run_start, lba + count - !run_start) :: !acc;
  List.rev !acc

let filled_count t = t.filled
let is_complete t = t.filled = t.sectors

let find_empty_run t ~from ~max =
  if is_complete t then None
  else begin
    let from = if from < 0 || from >= t.sectors then 0 else from in
    (* Find the first empty sector at or after [pos], scanning by bytes
       for speed. *)
    let first_empty_at pos limit =
      let i = ref pos in
      let found = ref (-1) in
      while !found < 0 && !i < limit do
        if !i land 7 = 0 && Bytes.get t.bits (!i lsr 3) = '\xff' then
          i := !i + 8
        else begin
          if not (is_filled t !i) then found := !i;
          incr i
        end
      done;
      !found
    in
    let start =
      match first_empty_at from t.sectors with
      | -1 -> first_empty_at 0 from
      | s -> s
    in
    assert (start >= 0);
    let len = ref 1 in
    while
      !len < max
      && start + !len < t.sectors
      && not (is_filled t (start + !len))
    do
      incr len
    done;
    Some (start, !len)
  end

let to_bytes t = Bytes.copy t.bits

let of_bytes ~sectors b =
  if Bytes.length b <> bytes_for sectors then
    invalid_arg "Bitmap.of_bytes: size mismatch";
  let t = { sectors; bits = Bytes.copy b; filled = 0 } in
  let filled = ref 0 in
  for i = 0 to sectors - 1 do
    if is_filled t i then incr filled
  done;
  t.filled <- !filled;
  t

(* --- persistence (3.3): serialize to 512-byte Blob sectors --- *)

let save_sectors ~sectors = (bytes_for sectors + 511) / 512

let to_blob_sectors t =
  let b = to_bytes t in
  let n = save_sectors ~sectors:t.sectors in
  Array.init n (fun i ->
      let off = i * 512 in
      let len = min 512 (Bytes.length b - off) in
      let chunk = Bytes.make 512 '\000' in
      Bytes.blit b off chunk 0 len;
      Content.Blob (Bytes.to_string chunk))

let load_blob_sectors t data =
  let expect = save_sectors ~sectors:t.sectors in
  if Array.length data <> expect then
    invalid_arg "Bitmap.load_blob_sectors: wrong sector count";
  let b = Bytes.create (bytes_for t.sectors) in
  Array.iteri
    (fun i c ->
      match c with
      | Content.Blob s ->
        let off = i * 512 in
        let len = min 512 (Bytes.length b - off) in
        Bytes.blit_string s 0 b off len
      | Content.Zero | Content.Image _ | Content.Data _ ->
        invalid_arg "Bitmap.load_blob_sectors: sector is not a saved bitmap")
    data;
  Bytes.blit b 0 t.bits 0 (Bytes.length b);
  let filled = ref 0 in
  for i = 0 to t.sectors - 1 do
    if is_filled t i then incr filled
  done;
  t.filled <- !filled
