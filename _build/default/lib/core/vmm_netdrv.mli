(** The VMM's polling NIC driver (§4.3).

    BMcast ships tiny drivers (PRO/1000: 718 LoC; X540: 614; RTL816x:
    757; NetXtreme: 620) that only need to "send and receive packets
    with polling" on the dedicated management NIC. This is that driver
    against the e1000-style ring model: interrupts stay off, a poll
    thread drains the RX ring on the preemption-timer cadence, and TX
    descriptors are pushed straight through the tail register. *)

type t

val attach :
  Bmcast_platform.Machine.t ->
  ?which:[ `Mgmt | `Prod ] ->
  poll_interval:Bmcast_engine.Time.span ->
  on_frame:(Bmcast_net.Packet.t -> unit) ->
  unit ->
  t
(** Start polling a NIC (default: the dedicated management NIC;
    [`Prod] models the shared-NIC configuration of §6). *)

val send : t -> dst:int -> size_bytes:int -> Bmcast_net.Packet.payload -> unit
val port_id : t -> int
val frames_received : t -> int
val stop : t -> unit
