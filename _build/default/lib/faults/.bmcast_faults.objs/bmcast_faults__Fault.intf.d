lib/faults/fault.mli: Bmcast_core Bmcast_engine Bmcast_net Bmcast_proto Bmcast_storage
