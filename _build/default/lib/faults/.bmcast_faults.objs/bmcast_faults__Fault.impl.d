lib/faults/fault.ml: Bmcast_core Bmcast_engine Bmcast_net Bmcast_proto Bmcast_storage List Printf String
