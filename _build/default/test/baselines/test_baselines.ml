(* Tests for the comparison stacks: KVM, image copying, network boot,
   kickstart. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Cpu = Bmcast_hw.Cpu
module Tlb = Bmcast_hw.Tlb
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Ib = Bmcast_net.Ib
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Cpu_model = Bmcast_platform.Cpu_model
module Kvm = Bmcast_baselines.Kvm
module Image_copy = Bmcast_baselines.Image_copy
module Net_boot = Bmcast_baselines.Net_boot
module Kickstart = Bmcast_baselines.Kickstart
module Stacks = Bmcast_experiments.Stacks

let check_bool = Alcotest.(check bool)

let in_env ?(image_gb = 2) f =
  let env = Stacks.make_env ~image_gb () in
  let out = ref None in
  Stacks.run env (fun () -> out := Some (f env));
  Option.get !out

(* --- KVM --- *)

let test_kvm_taxes_installed () =
  ignore
    (in_env (fun env ->
         let m = Stacks.machine env ~name:"kvm" () in
         let rt, kvm = Stacks.kvm_local env m in
         let cm = Kvm.cpu_model kvm in
         check_bool "nested+host tlb" true
           (cm.Cpu_model.tlb_mode = Tlb.Nested_paging_host);
         check_bool "yield cost" true (cm.Cpu_model.yield_cost > 0);
         check_bool "phase" true (rt.Runtime.phase () = Runtime.Kvm)))

let test_kvm_virtio_slower_than_bare () =
  let bare, kvm =
    in_env (fun env ->
        let mb = Stacks.machine env ~name:"bare" () in
        let bare_rt = Stacks.bare env mb in
        let mk = Stacks.machine env ~name:"kvm" () in
        let kvm_rt, _ = Stacks.kvm_local env mk in
        let time rt =
          let t0 = Sim.clock () in
          for i = 0 to 19 do
            ignore (rt.Runtime.block_read ~lba:(i * 2048) ~count:2048
                    : Content.t array)
          done;
          Time.diff (Sim.clock ()) t0
        in
        (time bare_rt, time kvm_rt))
  in
  check_bool "virtio adds per-op cost" true (kvm > bare)

let test_kvm_remote_backend_reads_server () =
  ignore
    (in_env (fun env ->
         let m = Stacks.machine env ~name:"kvm" () in
         let rt, _ = Stacks.kvm_remote env m `Iscsi in
         let data = rt.Runtime.block_read ~lba:777 ~count:8 in
         check_bool "image data over iscsi" true
           (Array.for_all2 Content.equal data
              (Content.image_sectors ~lba:777 ~count:8));
         (* The local disk stays untouched: no deployment happened. *)
         check_bool "local disk empty" true
           (Content.equal (Disk.sector m.Machine.disk 777) Content.Zero)))

let test_kvm_host_steals_cores () =
  ignore
    (in_env (fun env ->
         let m = Stacks.machine env ~name:"kvm" () in
         let _rt, _kvm = Stacks.kvm_local env m in
         (* Host scheduler interference stalls long CPU runs. *)
         let t0 = Sim.clock () in
         Cpu.run (Cpu.core m.Machine.cpu 0) (Time.s 1);
         let elapsed = Time.diff (Sim.clock ()) t0 in
         check_bool
           (Printf.sprintf "stall > 0 (elapsed %s)" (Time.to_string elapsed))
           true
           (elapsed > Time.s 1)))

let test_kvm_ib_overhead_set () =
  ignore
    (in_env (fun env ->
         let m = Stacks.machine env ~name:"kvm" () in
         let _ = Stacks.kvm_local env m in
         match m.Machine.ib with
         | Some ep ->
           check_bool "iommu adder" true (Ib.op_overhead ep = Kvm.ib_op_overhead)
         | None -> Alcotest.fail "machine has no IB"))

(* --- Image copy --- *)

let test_image_copy_deploys_full_image () =
  let breakdown, m, env =
    let env = Stacks.make_env ~image_gb:1 () in
    let m = Stacks.machine env ~name:"node" () in
    let out = ref None in
    Stacks.run env (fun () ->
        let clients =
          [ Stacks.iscsi_client env ~name:"c0";
            Stacks.iscsi_client env ~name:"c1" ]
        in
        out :=
          Some
            (Image_copy.deploy m ~servers:clients
               ~image_sectors:env.Stacks.image_sectors));
    (Option.get !out, m, env)
  in
  check_bool "installer boot 50s" true
    (breakdown.Image_copy.installer_boot = Image_copy.installer_boot_time);
  check_bool "transfer positive" true (breakdown.Image_copy.transfer > 0);
  check_bool "reboot is warm firmware" true (breakdown.Image_copy.reboot > Time.s 60);
  (* Every sector of the image landed on the local disk. *)
  let ok = ref true in
  for lba = 0 to env.Stacks.image_sectors - 1 do
    if not (Content.equal (Disk.sector m.Machine.disk lba) (Content.Image lba))
    then ok := false
  done;
  check_bool "disk equals image" true !ok

let test_image_copy_rate_wire_bound () =
  let env = Stacks.make_env ~image_gb:2 () in
  let m = Stacks.machine env ~name:"node" () in
  let out = ref None in
  Stacks.run env (fun () ->
      let clients =
        [ Stacks.iscsi_client env ~name:"c0"; Stacks.iscsi_client env ~name:"c1" ]
      in
      out :=
        Some
          (Image_copy.deploy m ~servers:clients
             ~image_sectors:env.Stacks.image_sectors));
  let b = Option.get !out in
  let rate = 2048.0 /. Time.to_float_s b.Image_copy.transfer in
  check_bool
    (Printf.sprintf "transfer %.1f MB/s in [85, 124]" rate)
    true
    (rate > 85.0 && rate < 124.0)

let test_image_copy_requires_servers () =
  ignore
    (in_env (fun env ->
         let m = Stacks.machine env ~name:"node" () in
         check_bool "raises" true
           (try
              ignore
                (Image_copy.deploy m ~servers:[] ~image_sectors:1024
                  : Image_copy.breakdown);
              false
            with Invalid_argument _ -> true)))

(* --- Net boot --- *)

let test_netboot_serves_without_local_disk () =
  ignore
    (in_env (fun env ->
         let m = Stacks.machine env ~name:"nb" () in
         let rt, _nb = Stacks.netboot env m in
         let data = rt.Runtime.block_read ~lba:123 ~count:8 in
         check_bool "image over nfs" true
           (Array.for_all2 Content.equal data
              (Content.image_sectors ~lba:123 ~count:8));
         check_bool "local disk untouched" true
           (Content.equal (Disk.sector m.Machine.disk 123) Content.Zero)))

let test_netboot_slower_than_local () =
  let local, net =
    in_env (fun env ->
        let mb = Stacks.machine env ~name:"bare" () in
        let bare_rt = Stacks.bare env mb in
        let mn = Stacks.machine env ~name:"nb" () in
        let nb_rt, _ = Stacks.netboot env mn in
        let time rt =
          let t0 = Sim.clock () in
          ignore (rt.Runtime.block_read ~lba:0 ~count:2048 : Content.t array);
          Time.diff (Sim.clock ()) t0
        in
        (time bare_rt, time nb_rt))
  in
  check_bool "network path slower" true (net > local)

(* --- Kickstart --- *)

let test_kickstart_takes_tens_of_minutes () =
  let b =
    in_env (fun env ->
        let m = Stacks.machine env ~name:"ks" () in
        Kickstart.run m ())
  in
  let total = Time.to_float_s (b.Kickstart.fetch + b.Kickstart.install) in
  check_bool
    (Printf.sprintf "%.0f s in [600, 3600]" total)
    true
    (total > 600.0 && total < 3600.0)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "baselines"
    [ ( "kvm",
        [ tc "taxes installed" `Quick test_kvm_taxes_installed;
          tc "virtio slower than bare" `Quick test_kvm_virtio_slower_than_bare;
          tc "remote backend reads server" `Quick test_kvm_remote_backend_reads_server;
          tc "host steals cores" `Quick test_kvm_host_steals_cores;
          tc "ib overhead set" `Quick test_kvm_ib_overhead_set ] );
      ( "image-copy",
        [ tc "deploys full image" `Slow test_image_copy_deploys_full_image;
          tc "rate wire bound" `Slow test_image_copy_rate_wire_bound;
          tc "requires servers" `Quick test_image_copy_requires_servers ] );
      ( "net-boot",
        [ tc "serves without local disk" `Quick test_netboot_serves_without_local_disk;
          tc "slower than local" `Quick test_netboot_slower_than_local ] );
      ( "kickstart",
        [ tc "tens of minutes" `Quick test_kickstart_takes_tens_of_minutes ] ) ]
