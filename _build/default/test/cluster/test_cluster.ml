(* Tests for MPI collectives over the InfiniBand model. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Ib = Bmcast_net.Ib
module Mpi = Bmcast_cluster.Mpi

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_comm ?compute ?(nodes = 10) ?(overhead = 0) f =
  let sim = Sim.create () in
  let ib = Ib.create sim () in
  let eps =
    Array.init nodes (fun i ->
        let ep = Ib.attach ib ~name:(Printf.sprintf "n%d" i) in
        Ib.set_op_overhead ep overhead;
        ep)
  in
  let comm = Mpi.create ?compute eps in
  let out = ref None in
  Sim.spawn_at sim Time.zero (fun () -> out := Some (f comm));
  Sim.run sim;
  Option.get !out

let test_all_collectives_terminate () =
  (* Every collective completes (no rendezvous deadlock) for several
     cluster sizes, including non-powers of two. *)
  List.iter
    (fun nodes ->
      ignore
        (with_comm ~nodes (fun comm ->
             List.iter
               (fun coll -> ignore (Mpi.run comm coll ~bytes:4096 : Time.span))
               Mpi.all_collectives)))
    [ 2; 3; 5; 8; 10 ]

let test_latency_positive_and_scales () =
  let small, large =
    with_comm (fun comm ->
        ( Mpi.latency comm Mpi.Allgather ~bytes:1024 ~iterations:5 (),
          Mpi.latency comm Mpi.Allgather ~bytes:65536 ~iterations:5 () ))
  in
  check_bool "positive" true (small > 0.0);
  check_bool "bigger messages slower" true (large > small)

let test_overhead_raises_latency () =
  let base =
    with_comm ~overhead:0 (fun comm ->
        Mpi.latency comm Mpi.Allgather ~bytes:8192 ~iterations:5 ())
  in
  let virt =
    with_comm ~overhead:(Time.us 5) (fun comm ->
        Mpi.latency comm Mpi.Allgather ~bytes:8192 ~iterations:5 ())
  in
  check_bool
    (Printf.sprintf "virt %.1f > base %.1f" virt base)
    true (virt > base *. 1.5)

let test_allgather_scales_with_nodes () =
  (* Ring allgather does p-1 rounds: latency grows with cluster size. *)
  let l4 =
    with_comm ~nodes:4 (fun c -> Mpi.latency c Mpi.Allgather ~bytes:8192 ~iterations:5 ())
  in
  let l10 =
    with_comm ~nodes:10 (fun c -> Mpi.latency c Mpi.Allgather ~bytes:8192 ~iterations:5 ())
  in
  check_bool "more nodes slower" true (l10 > l4 *. 2.0)

let test_bcast_cheaper_than_allgather () =
  (* Binomial bcast is O(log p) rounds vs the ring's O(p). *)
  let b, a =
    with_comm (fun c ->
        ( Mpi.latency c Mpi.Bcast ~bytes:8192 ~iterations:5 (),
          Mpi.latency c Mpi.Allgather ~bytes:8192 ~iterations:5 () ))
  in
  check_bool "bcast cheaper" true (b < a)

let test_compute_hook_called () =
  let calls = ref 0 in
  ignore
    (with_comm
       ~compute:(fun ~bytes ->
         check_int "bytes" 4096 bytes;
         incr calls)
       (fun c -> Mpi.run c Mpi.Allreduce ~bytes:4096));
  check_bool "reduction compute ran" true (!calls > 0)

let test_create_requires_two_ranks () =
  let sim = Sim.create () in
  let ib = Ib.create sim () in
  let ep = Ib.attach ib ~name:"solo" in
  check_bool "raises" true
    (try
       ignore (Mpi.create [| ep |] : Mpi.comm);
       false
     with Invalid_argument _ -> true)

let test_names () =
  check_int "eight collectives" 8 (List.length Mpi.all_collectives);
  Alcotest.(check string) "name" "Allreduce" (Mpi.name Mpi.Allreduce)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "cluster"
    [ ( "mpi",
        [ tc "all collectives terminate" `Quick test_all_collectives_terminate;
          tc "latency positive and scales" `Quick test_latency_positive_and_scales;
          tc "overhead raises latency" `Quick test_overhead_raises_latency;
          tc "allgather scales with nodes" `Quick test_allgather_scales_with_nodes;
          tc "bcast cheaper than allgather" `Quick test_bcast_cheaper_than_allgather;
          tc "compute hook called" `Quick test_compute_hook_called;
          tc "requires two ranks" `Quick test_create_requires_two_ranks;
          tc "names" `Quick test_names ] ) ]
