(* Tests for the guest OS model and workload generators, run against the
   bare-metal stack. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Content = Bmcast_storage.Content
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Os = Bmcast_guest.Os
module Fio = Bmcast_guest.Fio
module Ioping = Bmcast_guest.Ioping
module Sysbench = Bmcast_guest.Sysbench
module Kernbench = Bmcast_guest.Kernbench
module Ycsb = Bmcast_guest.Ycsb
module Block_io = Bmcast_guest.Block_io
module Stacks = Bmcast_experiments.Stacks

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A bare-metal runtime on a small testbed. *)
let on_bare ?(image_gb = 4) ?disk_kind f =
  let env = Stacks.make_env ~image_gb () in
  let m = Stacks.machine env ~name:"bare" ?disk_kind () in
  let out = ref None in
  Stacks.run env (fun () -> out := Some (f env (Stacks.bare env m)));
  Option.get !out

(* --- Block_io / drivers --- *)

let test_block_io_roundtrip_ahci () =
  on_bare (fun _ rt ->
      let data = Content.data_sectors ~count:32 in
      rt.Runtime.block_write ~lba:1000 ~count:32 data;
      let got = rt.Runtime.block_read ~lba:1000 ~count:32 in
      check_bool "roundtrip" true (Array.for_all2 Content.equal data got))

let test_block_io_roundtrip_ide () =
  on_bare ~disk_kind:Machine.Ide_disk (fun _ rt ->
      let data = Content.data_sectors ~count:300 (* > 256: two commands *) in
      rt.Runtime.block_write ~lba:5000 ~count:300 data;
      let got = rt.Runtime.block_read ~lba:5000 ~count:300 in
      check_bool "roundtrip across command split" true
        (Array.for_all2 Content.equal data got))

let test_block_io_discovers_via_pci () =
  (* Hiding the storage controller's config space makes driver binding
     fail - proof the guest finds its device by PCI scan. *)
  let env = Stacks.make_env ~image_gb:1 () in
  let m = Stacks.machine env ~name:"bare" () in
  Bmcast_hw.Pci.hide m.Machine.pci { Bmcast_hw.Pci.bus = 0; dev = 2; fn = 0 };
  Stacks.run env (fun () ->
      Alcotest.(check bool) "no controller visible" true
        (try
           ignore (Block_io.attach m : Block_io.t);
           false
         with Invalid_argument _ -> true))

(* --- Os boot model --- *)

let test_boot_trace_deterministic () =
  let p1 = Prng.create 5 and p2 = Prng.create 5 in
  let t1 = Os.trace p1 Os.default_profile in
  let t2 = Os.trace p2 Os.default_profile in
  check_bool "same trace for same seed" true (t1 = t2)

let test_boot_trace_totals () =
  let p = Prng.create 5 in
  let trace = Os.trace p Os.default_profile in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 trace in
  let expect = Os.default_profile.Os.total_read_bytes / 512 in
  check_bool
    (Printf.sprintf "read volume %d ~ %d" total expect)
    true
    (abs (total - expect) < expect / 10);
  List.iter
    (fun (lba, count) ->
      check_bool "within span" true
        (lba >= 0
        && (lba + count) * 512 <= Os.default_profile.Os.span_bytes))
    trace

let test_bare_boot_time_calibration () =
  (* The paper's testbed boots Ubuntu 14.04 in 29 s from local disk. *)
  let elapsed =
    on_bare ~image_gb:8 (fun _ rt ->
        let t0 = Sim.clock () in
        Os.boot rt ();
        Time.to_float_s (Time.diff (Sim.clock ()) t0))
  in
  check_bool
    (Printf.sprintf "boot %.1f s in [24, 34]" elapsed)
    true
    (elapsed > 24.0 && elapsed < 34.0)

(* --- fio --- *)

let test_fio_read_rate () =
  let r = on_bare (fun _ rt -> Fio.seq_read rt ()) in
  check_bool
    (Printf.sprintf "read %.1f MB/s" r.Fio.throughput_mb_s)
    true
    (r.Fio.throughput_mb_s > 110.0 && r.Fio.throughput_mb_s < 125.0);
  check_int "ops" 200 r.Fio.ops

let test_fio_write_slower_than_read () =
  let r, w =
    on_bare (fun _ rt ->
        (Fio.seq_read rt (), Fio.seq_write rt ~start_lba:(2048 * 1024) ()))
  in
  check_bool "write <= read" true
    (w.Fio.throughput_mb_s <= r.Fio.throughput_mb_s)

let test_fio_rejects_bad_block () =
  on_bare (fun _ rt ->
      check_bool "raises" true
        (try
           ignore (Fio.seq_read rt ~block_bytes:100 () : Fio.result);
           false
         with Invalid_argument _ -> true))

(* --- ioping --- *)

let test_ioping_latency_positive () =
  let r = on_bare (fun _ rt -> Ioping.run rt ~requests:50 ()) in
  check_bool "avg in HDD range" true (r.Ioping.avg_ms > 1.0 && r.Ioping.avg_ms < 15.0)

(* --- sysbench --- *)

let test_sysbench_threads_monotone () =
  let t1, t24 =
    on_bare (fun _ rt ->
        ( Sysbench.run_threads rt ~threads:1 (),
          Sysbench.run_threads rt ~threads:24 () ))
  in
  check_bool "oversubscription costs time" true
    (t24.Sysbench.elapsed > t1.Sysbench.elapsed);
  check_int "ops" (24 * 1000) t24.Sysbench.lock_ops

let test_sysbench_memory_block_scaling () =
  let small, large =
    on_bare (fun _ rt ->
        ( Sysbench.run_memory rt ~block_bytes:1024 (),
          Sysbench.run_memory rt ~block_bytes:16384 () ))
  in
  (* Bigger blocks amortize per-block overhead: higher throughput. *)
  check_bool "16K faster than 1K" true
    (large.Sysbench.throughput_mib_s > small.Sysbench.throughput_mib_s)

let test_memory_intensity_model () =
  check_bool "monotone" true
    (Sysbench.memory_intensity ~block_bytes:1024
    < Sysbench.memory_intensity ~block_bytes:16384);
  check_bool "capped at 1" true
    (Sysbench.memory_intensity ~block_bytes:(1 lsl 20) <= 1.0)

(* --- sched --- *)

module Sched = Bmcast_guest.Sched

let test_sched_single_thread_no_overhead () =
  let elapsed =
    on_bare (fun _ rt ->
        let sched = Sched.create rt in
        let t0 = Sim.clock () in
        Sched.run sched ~tid:0 ~work:(Time.ms 5) ~mem_intensity:0.0;
        Time.diff (Sim.clock ()) t0)
  in
  check_int "uncontended = exact" (Time.ms 5) elapsed

let test_sched_two_threads_one_core_timeshare () =
  (* Two threads pinned to the same core: each runs half the time, so
     both finish around 2x their work. *)
  let finish_times =
    on_bare (fun _ rt ->
        let sched = Sched.create rt in
        let done_at = ref [] in
        let cores =
          Bmcast_hw.Cpu.num_cores rt.Runtime.machine.Machine.cpu
        in
        let n = 2 in
        let latch = Bmcast_engine.Signal.Latch.create () in
        let finished = ref 0 in
        for k = 0 to n - 1 do
          Sim.spawn (fun () ->
              (* same core: tids k*cores land on core 0 *)
              Sched.run sched ~tid:(k * cores) ~work:(Time.ms 10)
                ~mem_intensity:0.0;
              done_at := Sim.clock () :: !done_at;
              incr finished;
              if !finished = n then Bmcast_engine.Signal.Latch.set latch)
        done;
        Bmcast_engine.Signal.Latch.wait latch;
        !done_at)
  in
  List.iter
    (fun t ->
      check_bool
        (Printf.sprintf "finish %s ~ 2x work" (Time.to_string t))
        true
        (t >= Time.ms 19 && t <= Time.ms 22))
    finish_times

let test_sched_threads_on_distinct_cores_parallel () =
  let finish =
    on_bare (fun _ rt ->
        let sched = Sched.create rt in
        let latch = Bmcast_engine.Signal.Latch.create () in
        let finished = ref 0 in
        let t0 = Sim.clock () in
        for k = 0 to 3 do
          Sim.spawn (fun () ->
              Sched.run sched ~tid:k ~work:(Time.ms 10) ~mem_intensity:0.0;
              incr finished;
              if !finished = 4 then Bmcast_engine.Signal.Latch.set latch)
        done;
        Bmcast_engine.Signal.Latch.wait latch;
        Time.diff (Sim.clock ()) t0)
  in
  check_int "fully parallel" (Time.ms 10) finish

let test_sched_contention_counted () =
  let contended =
    on_bare (fun _ rt ->
        let sched = Sched.create rt in
        let latch = Bmcast_engine.Signal.Latch.create () in
        let finished = ref 0 in
        let cores =
          Bmcast_hw.Cpu.num_cores rt.Runtime.machine.Machine.cpu
        in
        for k = 0 to 1 do
          Sim.spawn (fun () ->
              Sched.run sched ~tid:(k * cores) ~work:(Time.ms 5)
                ~mem_intensity:0.0;
              incr finished;
              if !finished = 2 then Bmcast_engine.Signal.Latch.set latch)
        done;
        Bmcast_engine.Signal.Latch.wait latch;
        Sched.contended_acquires sched)
  in
  check_bool "contention observed" true (contended > 0)

(* --- kernbench --- *)

let test_kernbench_calibration () =
  let r = on_bare ~image_gb:8 (fun _ rt -> Kernbench.run rt ()) in
  let s = Time.to_float_s r.Kernbench.elapsed in
  check_bool (Printf.sprintf "elapsed %.1f s in [14, 18]" s) true
    (s > 14.0 && s < 18.0)

let test_kernbench_jobs_scale () =
  let j1, j12 =
    on_bare ~image_gb:8 (fun _ rt ->
        ( Kernbench.run rt ~jobs:1 ~tasks:48 (),
          Kernbench.run rt ~jobs:12 ~tasks:48 () ))
  in
  check_bool "parallel speedup" true
    (Time.to_float_s j12.Kernbench.elapsed
    < Time.to_float_s j1.Kernbench.elapsed /. 4.0)

(* --- ycsb --- *)

let test_ycsb_memcached_calibration () =
  let samples =
    on_bare (fun _ rt ->
        Ycsb.run rt Ycsb.memcached ~duration:(Time.s 60) ())
  in
  let kops, lat = Ycsb.average samples ~between:(Time.s 5, Time.s 60) in
  check_bool (Printf.sprintf "tput %.1f" kops) true (kops > 33.0 && kops < 38.0);
  check_bool (Printf.sprintf "lat %.0f" lat) true (lat > 260.0 && lat < 300.0)

let test_ycsb_cassandra_writes_disk () =
  let ios =
    on_bare (fun _ rt ->
        let before = Bmcast_storage.Disk.bytes_written rt.Runtime.machine.Machine.disk in
        ignore (Ycsb.run rt Ycsb.cassandra ~duration:(Time.s 30) () : Ycsb.sample list);
        Bmcast_storage.Disk.bytes_written rt.Runtime.machine.Machine.disk - before)
  in
  (* ~12 MB/s commit log for 30 s, plus a flush. *)
  check_bool (Printf.sprintf "wrote %d MB" (ios / 1000000)) true
    (ios > 200_000_000)

let test_ycsb_average_window () =
  let samples =
    [ { Ycsb.at = Time.s 1; kops_per_s = 10.0; latency_us = 100.0 };
      { Ycsb.at = Time.s 2; kops_per_s = 20.0; latency_us = 200.0 };
      { Ycsb.at = Time.s 10; kops_per_s = 99.0; latency_us = 999.0 } ]
  in
  let k, l = Ycsb.average samples ~between:(Time.zero, Time.s 5) in
  Alcotest.(check (float 1e-6)) "kops" 15.0 k;
  Alcotest.(check (float 1e-6)) "lat" 150.0 l

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "guest"
    [ ( "block-io",
        [ tc "ahci roundtrip" `Quick test_block_io_roundtrip_ahci;
          tc "ide roundtrip splits commands" `Quick test_block_io_roundtrip_ide;
          tc "discovers controller via pci" `Quick test_block_io_discovers_via_pci ] );
      ( "os-boot",
        [ tc "trace deterministic" `Quick test_boot_trace_deterministic;
          tc "trace totals" `Quick test_boot_trace_totals;
          tc "bare boot ~29s" `Slow test_bare_boot_time_calibration ] );
      ( "fio",
        [ tc "read rate calibration" `Quick test_fio_read_rate;
          tc "write slower than read" `Quick test_fio_write_slower_than_read;
          tc "rejects bad block size" `Quick test_fio_rejects_bad_block ] );
      ("ioping", [ tc "latency positive" `Quick test_ioping_latency_positive ]);
      ( "sysbench",
        [ tc "threads monotone" `Quick test_sysbench_threads_monotone;
          tc "memory block scaling" `Quick test_sysbench_memory_block_scaling;
          tc "memory intensity model" `Quick test_memory_intensity_model ] );
      ( "sched",
        [ tc "single thread exact" `Quick test_sched_single_thread_no_overhead;
          tc "two threads timeshare" `Quick test_sched_two_threads_one_core_timeshare;
          tc "distinct cores parallel" `Quick test_sched_threads_on_distinct_cores_parallel;
          tc "contention counted" `Quick test_sched_contention_counted ] );
      ( "kernbench",
        [ tc "calibration ~16s" `Slow test_kernbench_calibration;
          tc "jobs scale" `Slow test_kernbench_jobs_scale ] );
      ( "ycsb",
        [ tc "memcached calibration" `Quick test_ycsb_memcached_calibration;
          tc "cassandra writes disk" `Quick test_ycsb_cassandra_writes_disk;
          tc "average window" `Quick test_ycsb_average_window ] ) ]
