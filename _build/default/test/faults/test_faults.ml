(* Chaos and property tests for the copy-on-read pipeline under
   injected faults: every scenario must end with the local disk
   byte-identical to the golden image, the background copy converged,
   exactly one de-virtualization, and no AoE request lost. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Aoe = Bmcast_proto.Aoe
module Aoe_client = Bmcast_proto.Aoe_client
module Vblade = Bmcast_proto.Vblade
module Machine = Bmcast_platform.Machine
module Block_io = Bmcast_guest.Block_io
module Params = Bmcast_core.Params
module Vmm = Bmcast_core.Vmm
module Fault = Bmcast_faults.Fault

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Deployment rig with an injectable fault surface --- *)

type rig = {
  sim : Sim.t;
  machine : Machine.t;
  fabric : Fabric.t;
  server_disk : Disk.t;
  vblade : Vblade.t;
  params : Params.t;
}

let make_rig ~image_sectors ~capacity_sectors ~tweak () =
  let sim = Sim.create () in
  let fabric = Fabric.create sim () in
  let profile = { Disk.hdd_constellation2 with Disk.capacity_sectors } in
  let server_disk = Disk.create sim profile in
  Disk.fill_with_image server_disk;
  let vblade =
    Vblade.create sim ~fabric ~name:"server" ~disk:server_disk ()
  in
  let machine =
    Machine.create sim ~name:"node0" ~disk_profile:profile
      ~disk_kind:Machine.Ahci_disk ~fabric ()
  in
  let params = tweak (Params.default ~image_sectors) in
  { sim; machine; fabric; server_disk; vblade; params }

let fault_rig rig =
  { Fault.sim = rig.sim;
    fabric = rig.fabric;
    server = rig.vblade;
    server_disk = rig.server_disk }

(* Boot, deploy to de-virtualization under a fault plan; [guest] runs
   after the controller-initializing first read. *)
let deploy_under ?(guest = fun _vmm _blk -> ()) ~image_sectors
    ~capacity_sectors ~tweak plan =
  let rig = make_rig ~image_sectors ~capacity_sectors ~tweak () in
  let inj = Fault.inject (fault_rig rig) plan in
  let vmm_ref = ref None in
  Sim.spawn_at rig.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot rig.machine ~params:rig.params
          ~server_port:(Vblade.port_id rig.vblade) ()
      in
      vmm_ref := Some vmm;
      let blk = Block_io.attach rig.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      guest vmm blk;
      Vmm.wait_devirtualized vmm);
  Sim.run ~until:(Time.minutes 30) rig.sim;
  (rig, Option.get !vmm_ref, inj)

let assert_invariants ?overrides ~image_sectors rig vmm =
  let checks =
    Fault.Invariants.all ?overrides ~image_sectors
      ~disk:rig.machine.Machine.disk vmm
  in
  match Fault.Invariants.failures checks with
  | [] -> ()
  | bad -> Alcotest.fail (Fault.Invariants.report bad)

let scenario_plan ~image_sectors name =
  match Fault.scenario ~image_sectors name with
  | Some p -> p
  | None -> Alcotest.failf "unknown scenario %s" name

(* Default-timing image sizes. The acceptance scenario needs the
   background copy still running at t=5 s, so it uses a 256 MB image
   (copy spans roughly 3.5 s to 9 s at the default write interval);
   the other chaos scenarios run on 64 MB. *)
let accept_sectors = 256 * 2048
let small_sectors = 64 * 2048

(* --- Acceptance: server crash at t=5 s during the background copy,
   restart at t=8 s --- *)

(* With the stock 3.5 s VMM init the copy only starts at ~5.05 s
   (PXE load adds ~1.55 s), which would put the t=5 s crash just
   before it; a 2 s init starts the copy at ~3.6 s so the crash lands
   squarely mid-copy. *)
let accept_tweak p = { p with Params.vmm_boot_time = Time.s 2 }

let copy_started_at vmm =
  List.assoc_opt "deployment phase: background copy started"
    (List.map (fun (at, what) -> (what, at)) (Vmm.events vmm))

let test_crash_mid_copy () =
  let image_sectors = accept_sectors in
  let rig, vmm, inj =
    deploy_under ~image_sectors ~capacity_sectors:(512 * 2048)
      ~tweak:accept_tweak
      (scenario_plan ~image_sectors "crash-mid-copy")
  in
  assert_invariants ~image_sectors rig vmm;
  (* The crash interrupted a copy already in flight. *)
  (match copy_started_at vmm with
  | None -> Alcotest.fail "background copy never started"
  | Some at -> check_bool "copy started before the crash" true (at < Time.s 5));
  check_int "exactly one crash" 1 (Vblade.crashes rig.vblade);
  check_bool "server back up" true (Vblade.is_up rig.vblade);
  (* The copy could not have finished before the restart. *)
  (match Vmm.devirtualized_at vmm with
  | None -> Alcotest.fail "not devirtualized"
  | Some at ->
    check_bool "devirtualized after the restart" true (at > Time.s 8));
  (* Both fault events fired, in order. *)
  Alcotest.(check (list string))
    "fault trace" [ "server: crash"; "server: restart" ]
    (List.map snd (Fault.trace inj))

let test_crash_mid_copy_deterministic () =
  (* Same seed (all rigs use the simulator's default seed): two runs
     produce the identical event trace and timings. *)
  let image_sectors = accept_sectors in
  let run () =
    let rig, vmm, inj =
      deploy_under ~image_sectors ~capacity_sectors:(512 * 2048)
        ~tweak:accept_tweak
        (scenario_plan ~image_sectors "crash-mid-copy")
    in
    let t = Vmm.totals vmm in
    ( Fault.trace inj,
      Vmm.events vmm,
      Vmm.devirtualized_at vmm,
      (t.Vmm.redirected_bytes, t.Vmm.background_bytes, t.Vmm.aoe_retransmits),
      Sim.events_executed rig.sim )
  in
  let tr1, ev1, at1, totals1, n1 = run () in
  let tr2, ev2, at2, totals2, n2 = run () in
  check_bool "identical fault trace" true (tr1 = tr2);
  check_bool "identical lifecycle events" true (ev1 = ev2);
  check_bool "identical devirt time" true (at1 = at2);
  check_bool "identical totals" true (totals1 = totals2);
  check_int "identical event count" n1 n2

(* --- Chaos scenarios on the small image --- *)

let test_burst_loss () =
  let image_sectors = small_sectors in
  let rig, vmm, _ =
    deploy_under ~image_sectors ~capacity_sectors:(256 * 2048)
      ~tweak:(fun p -> p)
      (scenario_plan ~image_sectors "burst-loss")
  in
  assert_invariants ~image_sectors rig vmm;
  check_bool "bursty loss dropped frames" true (Fabric.frames_dropped rig.fabric > 0);
  check_bool "client retransmitted" true
    ((Vmm.totals vmm).Vmm.aoe_retransmits > 0)

let test_server_crash_during_boot () =
  (* The server dies 100 ms after deployment starts and returns 800 ms
     later; a cold guest read issued during the outage must simply run
     slow, never fail. *)
  let image_sectors = small_sectors in
  let got = ref [||] in
  let read_lba = image_sectors - 4096 in
  let rig, vmm, _ =
    deploy_under ~image_sectors ~capacity_sectors:(256 * 2048)
      ~tweak:(fun p -> p)
      ~guest:(fun _vmm blk ->
        Sim.sleep (Time.ms 300);
        (* t ~= 3.8 s: mid-outage. *)
        got := Block_io.read blk ~lba:read_lba ~count:64)
      (scenario_plan ~image_sectors "server-crash-boot")
  in
  assert_invariants ~image_sectors rig vmm;
  check_int "one crash" 1 (Vblade.crashes rig.vblade);
  check_bool "guest read survived the outage" true
    (Array.for_all2 Content.equal !got
       (Content.image_sectors ~lba:read_lba ~count:64))

let test_disk_read_errors () =
  (* Transient media errors on the server disk: absorbed by the
     server-side retry, invisible end to end. The slow write interval
     keeps the copy running long enough that the armed ranges are hit
     after arming. *)
  let image_sectors = small_sectors in
  let rig, vmm, _ =
    deploy_under ~image_sectors ~capacity_sectors:(256 * 2048)
      ~tweak:(fun p -> { p with Params.write_interval = Time.ms 150 })
      (scenario_plan ~image_sectors "disk-errors")
  in
  assert_invariants ~image_sectors rig vmm;
  check_bool "injected errors fired" true (Disk.read_errors rig.server_disk >= 3);
  check_bool "server retried" true (Vblade.disk_error_retries rig.vblade >= 3)

let test_link_flap () =
  let image_sectors = small_sectors in
  let rig, vmm, _ =
    deploy_under ~image_sectors ~capacity_sectors:(256 * 2048)
      ~tweak:(fun p -> { p with Params.write_interval = Time.ms 150 })
      (scenario_plan ~image_sectors "link-flap")
  in
  assert_invariants ~image_sectors rig vmm;
  check_bool "flaps dropped frames at the link" true
    (Fabric.link_drops rig.fabric > 0);
  check_bool "server link restored" true
    (Fabric.link_up (Vblade.port rig.vblade))

let test_guest_write_never_clobbered () =
  (* A guest write during the outage must survive the background copy's
     late fills: its sectors hold guest data at the end, everything
     else is image data. *)
  let image_sectors = small_sectors in
  let write_lba = image_sectors - 1024 in
  let payload = Content.data_sectors ~count:32 in
  let rig, vmm, _ =
    deploy_under ~image_sectors ~capacity_sectors:(256 * 2048)
      ~tweak:(fun p -> p)
      ~guest:(fun _vmm blk ->
        Sim.sleep (Time.ms 1600);
        (* t ~= 5.1 s: inside the 4.2–5.5 s server outage. The write
           path is local, so it must land despite the dead server, and
           the copy's late fill of that range must then skip it. *)
        Block_io.write blk ~lba:write_lba ~count:32 payload)
      [ { Fault.after = Time.ms 4200; action = Fault.Server_crash };
        { Fault.after = Time.ms 5500; action = Fault.Server_restart } ]
  in
  let overrides =
    List.init 32 (fun i -> (write_lba + i, payload.(i)))
  in
  assert_invariants ~overrides ~image_sectors rig vmm

(* --- Property: random fault plans over random seeds --- *)

(* Fast parameter set so each randomized deployment is cheap: tiny
   boot, aggressive copy, 32 MB image. All faults recover within 2 s,
   so every run must converge. *)
let prop_sectors = 32 * 2048

let prop_tweak p =
  { p with
    Params.vmm_boot_time = Time.ms 200;
    Params.write_interval = Time.ms 10 }

let test_random_plans_converge () =
  List.iter
    (fun seed ->
      let plan =
        Fault.random_plan ~seed ~active:(Time.s 2) ~image_sectors:prop_sectors
      in
      check_bool
        (Printf.sprintf "seed %d: plan non-empty" seed)
        true (plan <> []);
      let rig, vmm, inj =
        deploy_under ~image_sectors:prop_sectors
          ~capacity_sectors:(128 * 2048) ~tweak:prop_tweak plan
      in
      let checks =
        Fault.Invariants.all ~image_sectors:prop_sectors
          ~disk:rig.machine.Machine.disk vmm
      in
      (match Fault.Invariants.failures checks with
      | [] -> ()
      | bad ->
        Alcotest.failf "seed %d violated invariants under plan:\n%s\n%s" seed
          (Fault.trace_to_string (Fault.trace inj))
          (Fault.Invariants.report bad));
      (* The injector must have drained the whole plan. *)
      check_int
        (Printf.sprintf "seed %d: all events applied" seed)
        (List.length plan)
        (List.length (Fault.trace inj)))
    [ 1; 7; 23; 42; 101; 271; 577; 1009 ]

let test_random_plan_deterministic () =
  (* Same seed, same plan — and the same plan replayed on a fresh rig
     yields the identical applied-event trace. *)
  let plan seed =
    Fault.random_plan ~seed ~active:(Time.s 2) ~image_sectors:prop_sectors
  in
  check_bool "same seed, same plan" true (plan 271 = plan 271);
  check_bool "different seed, different plan" true (plan 271 <> plan 577);
  let run () =
    let _, vmm, inj =
      deploy_under ~image_sectors:prop_sectors ~capacity_sectors:(128 * 2048)
        ~tweak:prop_tweak (plan 271)
    in
    (Fault.trace inj, Vmm.events vmm, Vmm.devirtualized_at vmm)
  in
  check_bool "replay identical" true (run () = run ())

(* --- AoE client escalation (regression + recovery) --- *)

type client_rig = {
  csim : Sim.t;
  cfab : Fabric.t;
  cserver_disk : Disk.t;
  cvblade : Vblade.t;
  client : Aoe_client.t;
}

let small_profile =
  { Disk.hdd_constellation2 with Disk.capacity_sectors = 1 lsl 22 }

let make_client_rig ?timeout () =
  let csim = Sim.create () in
  let cfab = Fabric.create csim () in
  let cserver_disk = Disk.create csim small_profile in
  Disk.fill_with_image cserver_disk;
  let cvblade =
    Vblade.create csim ~fabric:cfab ~name:"vblade" ~disk:cserver_disk ()
  in
  let client_ref = ref None in
  let port =
    Fabric.attach cfab ~name:"client" (fun pkt ->
        match pkt.Bmcast_net.Packet.payload with
        | Aoe.Frame f ->
          Option.iter (fun c -> Aoe_client.on_frame c f) !client_ref
        | _ -> ())
  in
  let send hdr data = Aoe.send port ~dst:(Vblade.port_id cvblade) hdr data in
  let client = Aoe_client.create csim ~send ?timeout () in
  client_ref := Some client;
  { csim; cfab; cserver_disk; cvblade; client }

let run_in rig f =
  let out = ref None in
  Sim.spawn_at rig.csim (Sim.now rig.csim) (fun () -> out := Some (f ()));
  Sim.run rig.csim;
  Option.get !out

let test_client_timeout_without_hook () =
  (* Regression pin: with no escalation hook installed, a command to a
     dead server still raises [Timeout] once retries are exhausted, and
     leaves nothing pending. *)
  let rig = make_client_rig ~timeout:(Time.ms 1) () in
  Vblade.crash rig.cvblade;
  let raised =
    run_in rig (fun () ->
        try
          ignore (Aoe_client.read rig.client ~lba:0 ~count:8 : Content.t array);
          false
        with Aoe_client.Timeout _ -> true)
  in
  check_bool "timeout raised" true raised;
  check_int "nothing pending" 0 (Aoe_client.pending_count rig.client);
  check_int "no completion" 0 (Aoe_client.completions rig.client)

let test_client_escalation_outlives_crash () =
  (* With the escalation hook, a server outage longer than the whole
     retry budget no longer kills the request: the client keeps
     retrying and completes once the server returns. *)
  let rig = make_client_rig ~timeout:(Time.ms 1) () in
  Aoe_client.set_escalation rig.client (fun ~attempts:_ _hdr -> `Retry);
  Vblade.crash rig.cvblade;
  Sim.spawn_at rig.csim (Time.ms 600) (fun () -> Vblade.restart rig.cvblade);
  let data =
    run_in rig (fun () -> Aoe_client.read rig.client ~lba:100 ~count:8)
  in
  check_bool "image data after recovery" true
    (Array.for_all2 Content.equal data (Content.image_sectors ~lba:100 ~count:8));
  check_bool "escalation engaged" true (Aoe_client.escalations rig.client > 0);
  check_int "exactly one completion" 1 (Aoe_client.completions rig.client);
  check_int "nothing pending" 0 (Aoe_client.pending_count rig.client)

let test_client_escalation_can_fail () =
  (* An escalation hook may also give up explicitly: [`Fail] restores
     the original Timeout behaviour. *)
  let rig = make_client_rig ~timeout:(Time.ms 1) () in
  Aoe_client.set_escalation rig.client (fun ~attempts:_ _hdr -> `Fail);
  Vblade.crash rig.cvblade;
  let raised =
    run_in rig (fun () ->
        try
          ignore (Aoe_client.read rig.client ~lba:0 ~count:8 : Content.t array);
          false
        with Aoe_client.Timeout _ -> true)
  in
  check_bool "fail decision raises" true raised;
  check_int "no escalation counted" 0 (Aoe_client.escalations rig.client)

(* --- Fault-plan plumbing unit tests --- *)

let test_injector_orders_and_traces () =
  let sim = Sim.create () in
  let fabric = Fabric.create sim () in
  let disk = Disk.create sim small_profile in
  Disk.fill_with_image disk;
  let vblade = Vblade.create sim ~fabric ~name:"server" ~disk () in
  let rig = { Fault.sim; fabric; server = vblade; server_disk = disk } in
  (* Deliberately unsorted plan. *)
  let inj =
    Fault.inject rig
      [ { Fault.after = Time.ms 20; action = Fault.Server_restart };
        { Fault.after = Time.ms 5; action = Fault.Server_crash };
        { Fault.after = Time.ms 10;
          action = Fault.Set_loss (Fabric.Uniform 0.25) } ]
  in
  Sim.spawn_at sim ~name:"probe" (Time.ms 7) (fun () ->
      check_bool "server down at 7 ms" false (Vblade.is_up vblade);
      Fault.wait_done inj;
      check_bool "server up after plan" true (Vblade.is_up vblade));
  Sim.run sim;
  let tr = Fault.trace inj in
  Alcotest.(check (list string))
    "events applied in time order"
    [ "server: crash"; "loss: uniform p=0.250"; "server: restart" ]
    (List.map snd tr);
  Alcotest.(check (list int))
    "at the scheduled times"
    [ 5_000_000; 10_000_000; 20_000_000 ]
    (List.map fst tr);
  check_bool "loss model applied" true
    (Fabric.loss_model fabric = Fabric.Uniform 0.25)

let test_scenarios_resolve () =
  List.iter
    (fun name ->
      match Fault.scenario ~image_sectors:small_sectors name with
      | Some plan -> check_bool (name ^ " non-empty") true (plan <> [])
      | None -> Alcotest.failf "scenario %s missing" name)
    Fault.scenario_names;
  check_bool "unknown scenario rejected" true
    (Fault.scenario ~image_sectors:small_sectors "no-such-thing" = None)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "faults"
    [ ( "plan",
        [ tc "injector orders and traces" `Quick test_injector_orders_and_traces;
          tc "named scenarios resolve" `Quick test_scenarios_resolve ] );
      ( "acceptance",
        [ tc "crash mid-copy converges byte-identical" `Slow test_crash_mid_copy;
          tc "crash mid-copy deterministic" `Slow
            test_crash_mid_copy_deterministic ] );
      ( "chaos",
        [ tc "burst loss" `Slow test_burst_loss;
          tc "server crash during boot" `Slow test_server_crash_during_boot;
          tc "disk read errors" `Slow test_disk_read_errors;
          tc "link flap" `Slow test_link_flap;
          tc "guest write never clobbered" `Slow
            test_guest_write_never_clobbered ] );
      ( "property",
        [ tc "random plans converge" `Slow test_random_plans_converge;
          tc "random plans deterministic" `Slow test_random_plan_deterministic
        ] );
      ( "aoe-escalation",
        [ tc "timeout without hook (regression)" `Quick
            test_client_timeout_without_hook;
          tc "escalation outlives crash" `Quick
            test_client_escalation_outlives_crash;
          tc "escalation can fail" `Quick test_client_escalation_can_fail ] )
    ]
