(* Smoke tests for the experiment harness: each cheap figure runs end to
   end and honours its headline shape property on a reduced scale. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Content = Bmcast_storage.Content
module Runtime = Bmcast_platform.Runtime
module Os = Bmcast_guest.Os
module Vmm = Bmcast_core.Vmm
open Bmcast_experiments

let check_bool = Alcotest.(check bool)

let test_stacks_every_builder () =
  let env = Stacks.make_env ~image_gb:1 () in
  Stacks.run env (fun () ->
      let mk name = Stacks.machine env ~name () in
      let bare = Stacks.bare env (mk "bare") in
      ignore (bare.Runtime.block_read ~lba:0 ~count:8 : Content.t array);
      let kvm_rt, _ = Stacks.kvm_local env (mk "kvml") in
      ignore (kvm_rt.Runtime.block_read ~lba:0 ~count:8 : Content.t array);
      let kvmr_rt, _ = Stacks.kvm_remote env (mk "kvmr") `Nfs in
      ignore (kvmr_rt.Runtime.block_read ~lba:0 ~count:8 : Content.t array);
      let nb_rt, _ = Stacks.netboot env (mk "nb") in
      ignore (nb_rt.Runtime.block_read ~lba:0 ~count:8 : Content.t array);
      let bm_rt, vmm = Stacks.bmcast env (mk "bm") () in
      ignore (bm_rt.Runtime.block_read ~lba:0 ~count:8 : Content.t array);
      check_bool "deploying" true (Vmm.phase vmm = Runtime.Deploying))

let test_fig4_shape_small_image () =
  (* On a 1 GB image the ordering must already hold: BMcast beats image
     copying by a wide margin post-firmware. *)
  let results = Fig04_startup.measure ~image_gb:1 () in
  let find l =
    (List.find (fun r -> r.Fig04_startup.label = l) results)
      .Fig04_startup.total_post_firmware
  in
  check_bool "bmcast < image copy / 2" true
    (find "BMcast" < find "Image Copy" /. 2.0);
  check_bool "bare fastest" true (find "Baremetal" <= find "BMcast")

let test_fig6_shape () =
  let results = Fig06_mpi.measure ~nodes:6 ~bytes:8192 () in
  List.iter
    (fun r ->
      check_bool
        (r.Fig06_mpi.collective ^ ": kvm worst")
        true
        (r.Fig06_mpi.kvm_us > r.Fig06_mpi.bare_us);
      check_bool
        (r.Fig06_mpi.collective ^ ": bmcast near bare")
        true
        (r.Fig06_mpi.bmcast_us < r.Fig06_mpi.bare_us *. 1.15))
    results

let test_fig9_shape () =
  let points = Fig09_memory.measure ~block_kbs:[ 1; 16 ] () in
  List.iter
    (fun p ->
      check_bool "kvm slowest" true
        (p.Fig09_memory.kvm_mib_s < p.Fig09_memory.deploy_mib_s);
      check_bool "deploy below bare" true
        (p.Fig09_memory.deploy_mib_s < p.Fig09_memory.bare_mib_s))
    points

let test_fig12_13_shape () =
  let results = Fig12_13_infiniband.measure ~iterations:200 () in
  let find l = List.find (fun r -> r.Fig12_13_infiniband.label = l) results in
  let bare = find "Baremetal" and kvm = find "KVM/Direct" in
  let devirt = find "BMcast devirt" in
  (* Bandwidth identical, latency split. *)
  check_bool "bw equal" true
    (abs_float (bare.Fig12_13_infiniband.bw_gb_s -. kvm.Fig12_13_infiniband.bw_gb_s)
     /. bare.Fig12_13_infiniband.bw_gb_s
    < 0.02);
  check_bool "kvm latency worse" true
    (kvm.Fig12_13_infiniband.lat_us > bare.Fig12_13_infiniband.lat_us *. 1.15);
  check_bool "devirt == bare" true
    (abs_float (devirt.Fig12_13_infiniband.lat_us -. bare.Fig12_13_infiniband.lat_us)
    < 0.01)

let test_fig8_shape_quick () =
  let points = Fig08_threads.measure ~thread_counts:[ 1; 12 ] () in
  let find n = List.find (fun p -> p.Fig08_threads.threads = n) points in
  let p1 = find 1 and p12 = find 12 in
  (* KVM's overhead grows with contention. *)
  let ovh p = (p.Fig08_threads.kvm_ms /. p.Fig08_threads.bare_ms -. 1.0) *. 100.0 in
  check_bool
    (Printf.sprintf "kvm overhead grows (%.0f%% -> %.0f%%)" (ovh p1) (ovh p12))
    true
    (ovh p12 > ovh p1 +. 10.0);
  (* BMcast stays moderate. *)
  check_bool "bmcast moderate" true
    (p12.Fig08_threads.deploy_ms < p12.Fig08_threads.bare_ms *. 1.1)

let test_deployment_end_to_end_via_stacks () =
  (* The canonical flow the examples use: boot, run, devirtualize. *)
  let env = Stacks.make_env ~image_gb:1 () in
  let m = Stacks.machine env ~name:"node" () in
  Stacks.run env (fun () ->
      let rt, vmm = Stacks.bmcast env m () in
      Os.boot rt ();
      Vmm.wait_devirtualized vmm;
      check_bool "devirtualized" true (rt.Runtime.phase () = Runtime.Devirtualized);
      let t = Vmm.totals vmm in
      check_bool "copy-on-read happened" true (t.Vmm.redirects > 0);
      check_bool "background copy happened" true (t.Vmm.background_bytes > 0))

let test_scaleup_smoke () =
  let results = Scaleup.measure ~image_gb:1 ~counts:[ 1; 2 ] () in
  let find n s =
    (List.find
       (fun r -> r.Scaleup.instances = n && r.Scaleup.strategy = s)
       results)
      .Scaleup.mean_ready_s
  in
  check_bool "bmcast beats copy at N=1" true
    (find 1 "BMcast" < find 1 "Image Copy");
  check_bool "bmcast beats copy at N=2" true
    (find 2 "BMcast" < find 2 "Image Copy");
  (* BMcast barely degrades from 1 to 2 instances. *)
  check_bool "bmcast stays flat" true
    (find 2 "BMcast" < find 1 "BMcast" *. 1.3)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "experiments"
    [ ( "stacks",
        [ tc "every builder works" `Quick test_stacks_every_builder;
          tc "deployment end to end" `Slow test_deployment_end_to_end_via_stacks ] );
      ( "figures",
        [ tc "fig4 shape (small image)" `Slow test_fig4_shape_small_image;
          tc "fig6 shape" `Quick test_fig6_shape;
          tc "fig8 shape" `Slow test_fig8_shape_quick;
          tc "fig9 shape" `Quick test_fig9_shape;
          tc "fig12/13 shape" `Quick test_fig12_13_shape;
          tc "scaleup smoke" `Slow test_scaleup_smoke ] ) ]
