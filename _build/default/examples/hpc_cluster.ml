(* HPC cluster bring-up: the paper's 5.3 scenario. A batch job needs a
   fresh 4-node InfiniBand cluster; BMcast streams the OS onto all nodes
   at once and MPI collectives run at bare-metal latency from the start
   - and exactly at bare-metal latency once every node de-virtualizes.

     dune exec examples/hpc_cluster.exe *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Signal = Bmcast_engine.Signal
module Ib = Bmcast_net.Ib
module Mpi = Bmcast_cluster.Mpi
module Machine = Bmcast_platform.Machine
module Os = Bmcast_guest.Os
module Vmm = Bmcast_core.Vmm
module Stacks = Bmcast_experiments.Stacks

let nodes = 4
let image_gb = 2

let () =
  Printf.printf "== Bringing up a %d-node MPI cluster with BMcast ==\n\n" nodes;
  let env = Stacks.make_env ~image_gb ~vblade_ram_cache:true () in
  let machines =
    List.init nodes (fun i ->
        Stacks.machine env ~name:(Printf.sprintf "hpc%d" i) ())
  in
  Stacks.run env (fun () ->
      (* Deploy the whole fleet concurrently. *)
      let vmms = ref [] in
      let booted = ref 0 in
      let all_up = Signal.Latch.create () in
      List.iter
        (fun m ->
          Sim.spawn (fun () ->
              let rt, vmm = Stacks.bmcast env m () in
              vmms := vmm :: !vmms;
              Os.boot rt ();
              incr booted;
              if !booted = nodes then Signal.Latch.set all_up))
        machines;
      Signal.Latch.wait all_up;
      Printf.printf "all %d nodes serving at t=%.1f s (deployments ongoing)\n"
        nodes
        (Time.to_float_s (Sim.clock ()));

      let comm =
        Mpi.create
          (Array.of_list
             (List.map (fun m -> Option.get m.Machine.ib) machines))
      in
      let lat label =
        let us = Mpi.latency comm Mpi.Allreduce ~bytes:8192 () in
        Printf.printf "  %-28s Allreduce(8KB) = %.2f us\n%!" label us;
        us
      in
      let during = lat "during deployment:" in

      (* Wait for every node to de-virtualize. *)
      List.iter Vmm.wait_devirtualized !vmms;
      Printf.printf "all nodes de-virtualized at t=%.1f s\n"
        (Time.to_float_s (Sim.clock ()));
      let after = lat "after de-virtualization:" in
      Printf.printf
        "\ncollective latency changed by %+.1f%% across de-virtualization\n"
        ((after -. during) /. during *. 100.0))
