examples/devirt_inspect.mli:
