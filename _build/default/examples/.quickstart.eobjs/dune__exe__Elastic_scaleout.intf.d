examples/elastic_scaleout.mli:
