examples/chaos_deploy.mli:
