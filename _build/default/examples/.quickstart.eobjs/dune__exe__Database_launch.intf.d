examples/database_launch.mli:
