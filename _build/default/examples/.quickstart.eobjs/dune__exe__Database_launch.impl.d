examples/database_launch.ml: Bmcast_core Bmcast_engine Bmcast_experiments Bmcast_guest List Option Printf
