examples/quickstart.mli:
