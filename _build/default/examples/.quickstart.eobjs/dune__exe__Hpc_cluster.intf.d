examples/hpc_cluster.mli:
