(* Elastic scale-out: the cloud provider's view. Demand spikes and four
   fresh bare-metal instances must join the pool NOW. Compare streaming
   deployment against copying the image first (2's baseline).

     dune exec examples/elastic_scaleout.exe *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Signal = Bmcast_engine.Signal
module Os = Bmcast_guest.Os
module Image_copy = Bmcast_baselines.Image_copy
module Stacks = Bmcast_experiments.Stacks

let instances = 4
let image_gb = 4

let provision_fleet label env provision_one =
  let ready = ref [] in
  Stacks.run env (fun () ->
      let done_count = ref 0 in
      let all_done = Signal.Latch.create () in
      for i = 0 to instances - 1 do
        let m = Stacks.machine env ~name:(Printf.sprintf "%s%d" label i) () in
        Sim.spawn (fun () ->
            provision_one env m;
            let t = Time.to_float_s (Sim.clock ()) in
            ready := (m.Bmcast_platform.Machine.name, t) :: !ready;
            Printf.printf "  %-12s serving at t=%7.1f s\n%!"
              m.Bmcast_platform.Machine.name t;
            incr done_count;
            if !done_count = instances then Signal.Latch.set all_done)
      done;
      Signal.Latch.wait all_done);
  List.fold_left (fun acc (_, t) -> Float.max acc t) 0.0 !ready

let () =
  Printf.printf
    "== Scale-out: %d instances, %d GB image, one storage server ==\n\n"
    instances image_gb;

  Printf.printf "BMcast streaming deployment:\n";
  let bmcast_done =
    provision_fleet "stream"
      (Stacks.make_env ~image_gb ~vblade_ram_cache:true ())
      (fun env m ->
        let rt, _vmm = Stacks.bmcast env m () in
        Os.boot rt ())
  in

  Printf.printf "\nImage copying (installer + full copy + reboot):\n";
  let copy_done =
    provision_fleet "copy"
      (Stacks.make_env ~image_gb ())
      (fun env m ->
        let clients =
          [ Stacks.iscsi_client env ~name:(m.Bmcast_platform.Machine.name ^ "c0");
            Stacks.iscsi_client env ~name:(m.Bmcast_platform.Machine.name ^ "c1") ]
        in
        ignore
          (Image_copy.deploy m ~servers:clients
             ~image_sectors:env.Stacks.image_sectors
            : Image_copy.breakdown);
        let rt = Stacks.bare env m in
        Os.boot rt ())
  in

  Printf.printf
    "\nfleet serving after %.1f s with BMcast vs %.1f s with image copying \
     (%.1fx)\n"
    bmcast_done copy_done (copy_done /. bmcast_done)
