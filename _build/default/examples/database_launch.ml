(* Database launch: the paper's motivating scenario (5.2) - a customer
   spins up a memcached instance and it serves clients at near-bare-metal
   speed from the first minute, then at exactly bare-metal speed once the
   VMM de-virtualizes.

     dune exec examples/database_launch.exe *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Os = Bmcast_guest.Os
module Ycsb = Bmcast_guest.Ycsb
module Vmm = Bmcast_core.Vmm
module Stacks = Bmcast_experiments.Stacks

let image_gb = 4

let () =
  Printf.printf
    "== Launching a memcached instance on BMcast (%d GB image) ==\n\n" image_gb;
  let env = Stacks.make_env ~image_gb () in
  let machine = Stacks.machine env ~name:"db0" () in
  Stacks.run env (fun () ->
      let runtime, vmm = Stacks.bmcast env machine () in
      Os.boot runtime ();
      let ycsb_start = Sim.clock () in
      Printf.printf "instance up after %.1f s; YCSB clients connect now\n\n%!"
        (Time.to_float_s ycsb_start);
      let devirt_rel = ref None in
      Sim.spawn (fun () ->
          Vmm.wait_devirtualized vmm;
          devirt_rel :=
            Option.map
              (fun d -> Time.to_float_s (Time.diff d ycsb_start))
              (Vmm.devirtualized_at vmm));
      let samples =
        Ycsb.run runtime Ycsb.memcached
          ~duration:(Time.minutes 4)
          ~sample_every:(Time.s 15) ()
      in
      Printf.printf "%-10s %-14s %-12s %s\n" "t (s)" "kops/s" "lat (us)" "phase";
      List.iter
        (fun s ->
          let t = Time.to_float_s s.Ycsb.at in
          let phase =
            match !devirt_rel with
            | Some d when t >= d -> "bare-metal"
            | Some _ | None -> "deploying"
          in
          Printf.printf "%-10.0f %-14.2f %-12.1f %s\n" t s.Ycsb.kops_per_s
            s.Ycsb.latency_us phase)
        samples;
      match !devirt_rel with
      | Some d ->
        Printf.printf
          "\nde-virtualization completed %.1f s into the benchmark - zero \
           overhead from then on.\n"
          d
      | None ->
        Printf.printf
          "\ndeployment still running when the benchmark ended (expected \
           for large images).\n")
