(* Chaos deployment: everything that can go wrong, goes wrong.

     dune exec examples/chaos_deploy.exe

   A 128 MB image streams onto a node while
     - the management network drops 2% of all frames, and
     - the node loses power halfway through deployment.

   BMcast's two resilience mechanisms carry the deployment through:
   AoE-level retransmission with exponential backoff hides the frame
   loss, and the persisted copy bitmap (paper section 3.3) lets the
   rebooted VMM resume exactly where the first one stopped — including
   the guest's own writes, which must never be refetched from the
   server. The example exits non-zero if the final disk deviates from
   the golden image anywhere the guest did not write. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Vblade = Bmcast_proto.Vblade
module Machine = Bmcast_platform.Machine
module Block_io = Bmcast_guest.Block_io
module Params = Bmcast_core.Params
module Bitmap = Bmcast_core.Bitmap
module Vmm = Bmcast_core.Vmm

let image_sectors = 128 * 2048 (* 128 MB *)
let loss_rate = 0.02
let guest_lba = 30_000
let guest_count = 256

let () =
  Printf.printf
    "== Chaos deployment: %d MB image, %.0f%% frame loss, mid-flight power \
     cut ==\n\n"
    (image_sectors / 2048) (loss_rate *. 100.0);
  let sim = Sim.create () in
  let fabric = Fabric.create sim ~loss_rate () in
  let profile =
    { Disk.hdd_constellation2 with Disk.capacity_sectors = 512 * 2048 }
  in
  let server_disk = Disk.create sim profile in
  Disk.fill_with_image server_disk;
  let vblade = Vblade.create sim ~fabric ~name:"server" ~disk:server_disk () in
  let machine =
    Machine.create sim ~name:"victim" ~disk_profile:profile ~fabric ()
  in
  let params =
    { (Params.default ~image_sectors) with Params.write_interval = Time.ms 4 }
  in
  let guest_data = Content.data_sectors ~count:guest_count in
  let failed = ref false in
  Sim.spawn_at sim ~name:"chaos" Time.zero (fun () ->
      let t0 = Sim.clock () in
      let say fmt =
        Printf.ksprintf
          (fun s ->
            Printf.printf "[%7.2fs] %s\n%!"
              (Time.to_float_s (Time.diff (Sim.clock ()) t0))
              s)
          fmt
      in
      let vmm1 =
        Vmm.boot machine ~params ~server_port:(Vblade.port_id vblade) ()
      in
      say "VMM up; streaming over a lossy link";
      let blk = Block_io.attach machine in
      ignore (Block_io.read blk ~lba:0 ~count:64 : Content.t array);
      Block_io.write blk ~lba:guest_lba ~count:guest_count guest_data;
      say "guest wrote %d KB of its own data at LBA %d" (guest_count / 2)
        guest_lba;
      while Vmm.progress vmm1 < 0.5 do
        Sim.sleep (Time.ms 100)
      done;
      let fetched_before = Disk.bytes_read server_disk in
      say "power cut at %.0f%% copied (%d MB fetched, %d AoE retransmits \
           so far)"
        (Vmm.progress vmm1 *. 100.0)
        (fetched_before / (1024 * 1024))
        (Vmm.totals vmm1).Vmm.aoe_retransmits;
      Vmm.shutdown vmm1;

      (* Power restored: the fresh VMM finds the persisted bitmap. *)
      let vmm2 =
        Vmm.boot machine ~params ~server_port:(Vblade.port_id vblade)
          ~resume:true ()
      in
      let blk2 = Block_io.attach machine in
      ignore (Block_io.read blk2 ~lba:0 ~count:64 : Content.t array);
      (* The deployment thread restores the bitmap once the guest driver
         has initialized the controller; give it a beat, then report. *)
      Sim.sleep (Time.ms 100);
      say "rebooted; resumed at %.0f%% (bitmap restored from disk)"
        (Vmm.progress vmm2 *. 100.0);
      Vmm.wait_devirtualized vmm2;
      let t = Vmm.totals vmm2 in
      say "deployment complete: copied %d MB after reboot (image is %d MB); \
           %d retransmits in resumed run"
        (t.Vmm.background_bytes / (1024 * 1024))
        (image_sectors / 2048)
        t.Vmm.aoe_retransmits;

      (* Verify: guest data intact, everything else equals the image. *)
      let sector_ok i =
        let got = (Disk.peek machine.Machine.disk ~lba:i ~count:1).(0) in
        let want =
          if i >= guest_lba && i < guest_lba + guest_count then
            guest_data.(i - guest_lba)
          else (Content.image_sectors ~lba:i ~count:1).(0)
        in
        Content.equal got want
      in
      let bad = ref 0 in
      for i = 0 to image_sectors - 1 do
        if not (sector_ok i) then incr bad
      done;
      if !bad = 0 then
        say "verified all %d sectors: guest writes intact, rest matches the \
             golden image"
          image_sectors
      else begin
        say "CONSISTENCY FAILURE: %d sectors wrong" !bad;
        failed := true
      end;
      (* The resumed run must only copy what the first run left behind
         (we cut power at ~50%), not the whole image again. Server-side
         bytes_read is inflated by retransmission, so judge by what the
         resumed VMM actually wrote locally. *)
      if t.Vmm.background_bytes > image_sectors * 512 * 3 / 4 then begin
        say "RESUME FAILURE: recopied most of the image after reboot";
        failed := true
      end);
  Sim.run ~until:(Time.minutes 30) sim;
  if !failed then exit 1;
  Printf.printf
    "\nsurvived %.0f%% frame loss and a mid-deployment power cut with zero \
     data loss\n"
    (loss_rate *. 100.0)
