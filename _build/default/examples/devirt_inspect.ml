(* De-virtualization under the microscope: watch the trap and VM-exit
   counters during each phase, on both controller families the paper's
   mediators support (AHCI and IDE). OS transparency means the same
   workload code runs on both without modification.

     dune exec examples/devirt_inspect.exe *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Mmio = Bmcast_hw.Mmio
module Pio = Bmcast_hw.Pio
module Cpu = Bmcast_hw.Cpu
module Memmap = Bmcast_hw.Memmap
module Content = Bmcast_storage.Content
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Vmm = Bmcast_core.Vmm
module Stacks = Bmcast_experiments.Stacks

let traps m =
  Mmio.trapped_accesses m.Machine.mmio + Pio.trapped_accesses m.Machine.pio

let inspect disk_kind label =
  Printf.printf "--- %s controller ---\n" label;
  let env = Stacks.make_env ~image_gb:1 () in
  let m = Stacks.machine env ~name:label ~disk_kind () in
  Stacks.run env (fun () ->
      let rt, vmm = Stacks.bmcast env m () in
      let io () =
        for i = 0 to 19 do
          ignore (rt.Runtime.block_read ~lba:(i * 512) ~count:16
                  : Content.t array)
        done;
        rt.Runtime.block_write ~lba:123 ~count:8 (Content.data_sectors ~count:8)
      in
      let t0 = traps m and e0 = Cpu.total_exits m.Machine.cpu in
      io ();
      Printf.printf
        "  deployment phase: %6d traps, %6d VM exits for 21 guest commands\n"
        (traps m - t0)
        (Cpu.total_exits m.Machine.cpu - e0);
      Printf.printf "  VMM memory reserved: %d MB\n"
        (Memmap.vmm_reserved_bytes m.Machine.memmap / 1024 / 1024);
      Vmm.wait_devirtualized vmm;
      Printf.printf "  de-virtualized at t=%.1f s\n"
        (Time.to_float_s (Sim.clock ()));
      let t1 = traps m and e1 = Cpu.total_exits m.Machine.cpu in
      io ();
      Printf.printf
        "  bare-metal phase: %6d traps, %6d VM exits for the same workload\n"
        (traps m - t1)
        (Cpu.total_exits m.Machine.cpu - e1));
  Printf.printf "\n"

let () =
  Printf.printf "== Zero overhead after de-virtualization, measured ==\n\n";
  inspect Machine.Ahci_disk "AHCI";
  inspect Machine.Ide_disk "IDE";
  Printf.printf
    "The same guest driver-level workload ran unmodified on both \
     controllers:\nthe mediators, not the OS, absorbed the difference (OS \
     transparency).\n"
