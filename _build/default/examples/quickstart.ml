(* Quickstart: stream-deploy one bare-metal instance and watch it become
   raw hardware.

     dune exec examples/quickstart.exe

   The example builds a simulated testbed (gigabit fabric + AoE storage
   server holding a golden image), powers a machine through the four
   deployment phases of the paper's Figure 1, and verifies at the end
   that the local disk is byte-identical to the server image wherever
   the guest did not write. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Os = Bmcast_guest.Os
module Vmm = Bmcast_core.Vmm
module Stacks = Bmcast_experiments.Stacks

let image_gb = 2

let () =
  Printf.printf "== BMcast quickstart: deploying a %d GB image ==\n\n" image_gb;
  let env = Stacks.make_env ~image_gb () in
  let machine = Stacks.machine env ~name:"node0" () in
  Stacks.run env (fun () ->
      let t0 = Sim.clock () in
      let say fmt =
        Printf.ksprintf
          (fun s ->
            Printf.printf "[%7.2fs] %s\n%!"
              (Time.to_float_s (Time.diff (Sim.clock ()) t0))
              s)
          fmt
      in
      (* Phase 1: initialization - network-boot the tiny VMM. *)
      let runtime, vmm = Stacks.bmcast env machine () in
      say "VMM booted over PXE; phase = %s"
        (Format.asprintf "%a" Runtime.pp_phase (runtime.Runtime.phase ()));

      (* Phase 2: deployment - the unmodified guest OS boots right away;
         cold reads are served from the server by copy-on-read. *)
      Os.boot runtime ();
      say "guest OS is up and serving (image %.0f%% local so far)"
        (Vmm.progress vmm *. 100.0);

      (* The guest works normally while the background copy fills the
         disk: write some application data... *)
      let app_data = Content.data_sectors ~count:128 in
      runtime.Runtime.block_write ~lba:4096 ~count:128 app_data;
      say "guest wrote 64 KB of application data at LBA 4096";

      (* Phase 3: de-virtualization - wait for the copy to finish. *)
      Vmm.wait_devirtualized vmm;
      say "image fully local; VMM de-virtualized itself; phase = %s"
        (Format.asprintf "%a" Runtime.pp_phase (runtime.Runtime.phase ()));

      (* Phase 4: bare metal - I/O no longer traps. *)
      let traps_before =
        Bmcast_hw.Mmio.trapped_accesses machine.Machine.mmio
      in
      ignore (runtime.Runtime.block_read ~lba:0 ~count:64 : Content.t array);
      let traps_after = Bmcast_hw.Mmio.trapped_accesses machine.Machine.mmio in
      say "a post-devirt read caused %d traps (zero overhead)"
        (traps_after - traps_before);

      (* Verify: disk == image everywhere except the guest's write. *)
      let sectors = env.Stacks.image_sectors in
      let mismatches = ref 0 in
      for lba = 0 to sectors - 1 do
        let expected =
          if lba >= 4096 && lba < 4096 + 128 then app_data.(lba - 4096)
          else Content.Image lba
        in
        if not (Content.equal (Disk.sector machine.Machine.disk lba) expected)
        then incr mismatches
      done;
      say "verified %d sectors: %d mismatches" sectors !mismatches;
      let t = Vmm.totals vmm in
      say "copy-on-read moved %.1f MB; background copy moved %.1f MB"
        (float_of_int t.Vmm.redirected_bytes /. 1e6)
        (float_of_int t.Vmm.background_bytes /. 1e6);
      if !mismatches > 0 then exit 1);
  Printf.printf "\nquickstart finished.\n"
