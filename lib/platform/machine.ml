module Sim = Bmcast_engine.Sim
module Cpu = Bmcast_hw.Cpu
module Mmio = Bmcast_hw.Mmio
module Pio = Bmcast_hw.Pio
module Irq = Bmcast_hw.Irq
module Memmap = Bmcast_hw.Memmap
module Pci = Bmcast_hw.Pci
module Firmware = Bmcast_hw.Firmware
module Dma = Bmcast_storage.Dma
module Disk = Bmcast_storage.Disk
module Ahci = Bmcast_storage.Ahci
module Ide = Bmcast_storage.Ide
module Nic = Bmcast_net.Nic
module Fabric = Bmcast_net.Fabric
module Ib = Bmcast_net.Ib

type disk_kind = Ahci_disk | Ide_disk

type controller = Ahci of Ahci.t | Ide of Ide.t

type t = {
  name : string;
  sim : Sim.t;
  cpu : Cpu.t;
  mmio : Mmio.t;
  pio : Pio.t;
  irq : Irq.t;
  dma : Dma.t;
  memmap : Memmap.t;
  pci : Pci.t;
  firmware : Firmware.params;
  disk : Disk.t;
  controller : controller;
  prod_nic : Nic.t;
  mgmt_nic : Nic.t;
  ib : Ib.endpoint option;
}

let ahci_base = 0xF000_0000
let ide_cmd_base = 0x1F0
let ide_bm_base = 0xC000
let ide_ctrl_base = 0x3F6
let prod_nic_base = 0xE000_0000
let mgmt_nic_base = 0xE001_0000
let disk_irq_vec = 14
let prod_nic_irq_vec = 10
let mgmt_nic_irq_vec = 9

let create sim ~name ?(cores = 12) ?(mem_bytes = 96 * 1024 * 1024 * 1024)
    ?(disk_profile = Disk.hdd_constellation2) ?(disk_kind = Ahci_disk)
    ?(firmware = Firmware.default) ~fabric ?ib () =
  let mmio = Mmio.create () in
  Mmio.set_profile mmio (Sim.profile sim);
  let pio = Pio.create () in
  let irq = Irq.create sim in
  let dma = Dma.create () in
  let disk = Disk.create sim disk_profile in
  let controller =
    match disk_kind with
    | Ahci_disk ->
      Ahci
        (Ahci.create sim ~mmio ~base:ahci_base ~dma ~disk ~irq
           ~irq_vec:disk_irq_vec)
    | Ide_disk ->
      Ide
        (Ide.create sim ~pio ~cmd_base:ide_cmd_base ~bm_base:ide_bm_base
           ~ctrl_base:ide_ctrl_base ~dma ~disk ~irq ~irq_vec:disk_irq_vec)
  in
  let prod_nic =
    Nic.create sim ~mmio ~base:prod_nic_base ~fabric ~name:(name ^ "-nic0")
      ~irq ~irq_vec:prod_nic_irq_vec
  in
  let mgmt_nic =
    Nic.create sim ~mmio ~base:mgmt_nic_base ~fabric ~name:(name ^ "-nic1")
      ~irq ~irq_vec:mgmt_nic_irq_vec
  in
  let pci = Pci.create () in
  let add_pci ~dev ~vendor_id ~device_id ~class_code ~bars =
    Pci.add pci { Pci.bdf = { Pci.bus = 0; dev; fn = 0 }; vendor_id; device_id;
                  class_code; bars }
  in
  (match disk_kind with
  | Ahci_disk ->
    add_pci ~dev:2 ~vendor_id:0x8086 ~device_id:0x2922 ~class_code:0x010601
      ~bars:[ (ahci_base, 0x200) ]
  | Ide_disk ->
    add_pci ~dev:2 ~vendor_id:0x8086 ~device_id:0x7010 ~class_code:0x010180
      ~bars:[]);
  add_pci ~dev:3 ~vendor_id:0x8086 ~device_id:0x10D3 ~class_code:0x020000
    ~bars:[ (prod_nic_base, 0x40) ];
  add_pci ~dev:4 ~vendor_id:0x8086 ~device_id:0x10D3 ~class_code:0x020000
    ~bars:[ (mgmt_nic_base, 0x40) ];
  (match ib with
  | Some _ ->
    add_pci ~dev:5 ~vendor_id:0x15B3 ~device_id:0x673C ~class_code:0x0C0600
      ~bars:[ (0xD000_0000, 0x100000) ]
  | None -> ());
  { name;
    sim;
    cpu = Cpu.create sim ~cores;
    mmio;
    pio;
    irq;
    dma;
    memmap = Memmap.create ~total_bytes:mem_bytes;
    pci;
    firmware;
    disk;
    controller;
    prod_nic;
    mgmt_nic;
    ib = Option.map (fun fab -> Ib.attach fab ~name:(name ^ "-ib")) ib }

let controller_disk t = t.disk
