type buf = { addr : int; data : Content.t array }

type t = { mutable next_addr : int; bufs : (int, buf) Hashtbl.t }

let create () = { next_addr = 0x1000_0000; bufs = Hashtbl.create 64 }

let alloc t ~sectors =
  if sectors <= 0 then invalid_arg "Dma.alloc: sectors must be positive";
  let addr = t.next_addr in
  (* Keep addresses sector-aligned and non-overlapping. *)
  t.next_addr <- t.next_addr + (sectors * 512);
  let buf = { addr; data = Array.make sectors Content.Zero } in
  Hashtbl.replace t.bufs addr buf;
  buf

let find t ~addr =
  match Hashtbl.find_opt t.bufs addr with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Dma.find: unknown buffer 0x%x" addr)

let free t buf = Hashtbl.remove t.bufs buf.addr

let write buf ~off src =
  if off < 0 || off + Array.length src > Array.length buf.data then
    invalid_arg "Dma.write: out of bounds";
  Array.blit src 0 buf.data off (Array.length src)

let read buf ~off ~count =
  if off < 0 || count < 0 || off + count > Array.length buf.data then
    invalid_arg "Dma.read: out of bounds";
  Array.sub buf.data off count

(* Slice-aware copies so hot paths need not materialize a sub-array per
   PRD entry. *)
let blit_to buf ~off src ~src_off ~count =
  if off < 0 || count < 0 || off + count > Array.length buf.data
     || src_off < 0 || src_off + count > Array.length src
  then invalid_arg "Dma.blit_to: out of bounds";
  Array.blit src src_off buf.data off count

let blit_from buf ~off dst ~dst_off ~count =
  if off < 0 || count < 0 || off + count > Array.length buf.data
     || dst_off < 0 || dst_off + count > Array.length dst
  then invalid_arg "Dma.blit_from: out of bounds";
  Array.blit buf.data off dst dst_off count
