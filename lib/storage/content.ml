type t = Zero | Image of int | Data of int | Blob of string

let equal a b =
  match (a, b) with
  | Zero, Zero -> true
  | Image x, Image y -> x = y
  | Data x, Data y -> x = y
  | Blob x, Blob y -> String.equal x y
  | (Zero | Image _ | Data _ | Blob _), _ -> false

let pp fmt = function
  | Zero -> Format.pp_print_string fmt "zero"
  | Image lba -> Format.fprintf fmt "image[%d]" lba
  | Data tag -> Format.fprintf fmt "data#%d" tag
  | Blob s -> Format.fprintf fmt "blob[%d bytes]" (String.length s)

(* Interned constructors. A fleet-scale run materializes the same golden
   image sectors over and over (every replica serves the same image, and
   every client reads it), so a direct-mapped cache of recently-built
   [Image]/[Data] boxes turns the per-sector allocation in [Disk.peek]
   into a lookup. Sharing is invisible to callers: contents are compared
   structurally everywhere. *)
let intern_slots = 65536

let image_cache : t array = Array.make intern_slots Zero
let data_cache : t array = Array.make intern_slots Zero

let image lba =
  let slot = lba land (intern_slots - 1) in
  match Array.unsafe_get image_cache slot with
  | Image l as c when l = lba -> c
  | _ ->
    let c = Image lba in
    Array.unsafe_set image_cache slot c;
    c

let data tag =
  let slot = tag land (intern_slots - 1) in
  match Array.unsafe_get data_cache slot with
  | Data t as c when t = tag -> c
  | _ ->
    let c = Data tag in
    Array.unsafe_set data_cache slot c;
    c

(* Size-bucketed free lists of sector-content scratch arrays, shared
   process-wide (pool state never influences simulated values — arrays
   are cleared to [Zero] on release, exactly what [Array.make] would
   yield — so determinism across runs and sims is untouched). AoE read
   streaming allocates and frees one fragment-sized array per frame;
   without reuse that is a dominant allocation site at fleet scale. *)
module Scratch = struct
  type bucket = { mutable stack : t array array; mutable n : int }

  let buckets : (int, bucket) Hashtbl.t = Hashtbl.create 16
  let empty : t array = [||]

  (* One-entry memo: steady-state traffic uses very few distinct sizes
     (fragment size and max command size), so skip the table lookup. *)
  let mutable_len = ref (-1)
  let mutable_bucket = ref { stack = [||]; n = 0 }

  let bucket len =
    if !mutable_len = len then !mutable_bucket
    else begin
      let b =
        match Hashtbl.find_opt buckets len with
        | Some b -> b
        | None ->
          let b = { stack = [||]; n = 0 } in
          Hashtbl.add buckets len b;
          b
      in
      mutable_len := len;
      mutable_bucket := b;
      b
    end

  let alloc len =
    if len < 0 then invalid_arg "Content.Scratch.alloc: negative length";
    if len = 0 then empty
    else begin
      let b = bucket len in
      if b.n > 0 then begin
        let n = b.n - 1 in
        b.n <- n;
        let a = b.stack.(n) in
        b.stack.(n) <- empty;
        a
      end
      else Array.make len Zero
    end

  let release a =
    let len = Array.length a in
    if len > 0 then begin
      Array.fill a 0 len Zero;
      let b = bucket len in
      if b.n = Array.length b.stack then begin
        let grown = Array.make (max 8 (2 * b.n)) empty in
        Array.blit b.stack 0 grown 0 b.n;
        b.stack <- grown
      end;
      b.stack.(b.n) <- a;
      b.n <- b.n + 1
    end

  let free_count len =
    match Hashtbl.find_opt buckets len with Some b -> b.n | None -> 0
end

let tag_counter = ref 0

let fresh_tag () =
  incr tag_counter;
  !tag_counter

let image_sectors ~lba ~count = Array.init count (fun i -> Image (lba + i))

let data_sectors ~count =
  let tag = fresh_tag () in
  Array.make count (Data tag)

let zeroes ~count = Array.make count Zero
