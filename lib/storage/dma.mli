(** Guest-memory DMA buffers.

    Models the RAM buffers that disk controllers transfer into/out of.
    Buffers live in a flat address space so device command structures can
    reference them by address, the way real PRDs/PRDTs do; BMcast's
    mediators exploit this to act as a "virtual DMA controller" (§3.2),
    copying server data directly into guest buffers, and to retarget a
    device at a VMM-owned dummy buffer. *)

type t

type buf = { addr : int; data : Content.t array }
(** [data] holds one element per sector. *)

val create : unit -> t

val alloc : t -> sectors:int -> buf
(** Fresh zeroed buffer at a unique address. *)

val find : t -> addr:int -> buf
(** Raises [Invalid_argument] for an unknown address. *)

val free : t -> buf -> unit

val write : buf -> off:int -> Content.t array -> unit
(** Copy sectors into the buffer at sector offset [off].
    Raises [Invalid_argument] on overflow. *)

val read : buf -> off:int -> count:int -> Content.t array

val blit_to : buf -> off:int -> Content.t array -> src_off:int -> count:int -> unit
(** Copy [count] sectors from [src.(src_off..)] into the buffer at
    [off], without the intermediate array {!write} of an [Array.sub]
    slice would need. *)

val blit_from : buf -> off:int -> Content.t array -> dst_off:int -> count:int -> unit
(** Copy [count] sectors out of the buffer at [off] into
    [dst.(dst_off..)]; the in-place counterpart of {!read}. *)
