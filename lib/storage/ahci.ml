module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Mailbox = Bmcast_engine.Mailbox
module Mmio = Bmcast_hw.Mmio
module Irq = Bmcast_hw.Irq

module Fis = struct
  type op = Read | Write

  type t = { op : op; lba : int; count : int }
end

type prd = { buf_addr : int; sectors : int }

type cmd_table = { mutable fis : Fis.t; mutable prdt : prd list }

module Regs = struct
  let px_clb = 0x100
  let px_is = 0x110
  let px_ie = 0x114
  let px_cmd = 0x118
  let px_tfd = 0x120
  let px_ci = 0x138
end

let tfd_bsy = 0x80

(* Per-command controller processing overhead (command fetch, FIS
   handling); the disk model charges the rest. *)
let command_overhead = Time.us 20

type t = {
  sim : Sim.t;
  base : int;
  dma : Dma.t;
  disk : Disk.t;
  irq : Irq.t;
  irq_vec : int;
  (* registers *)
  mutable clb : int;
  mutable is_reg : int;
  mutable ie : int;
  mutable cmd : int;
  mutable ci : int;
  (* guest-memory structures *)
  mutable next_addr : int;
  cmd_lists : (int, int option array) Hashtbl.t;  (* addr -> slot table addrs *)
  cmd_tables : (int, cmd_table) Hashtbl.t;
  (* service *)
  work : int Mailbox.t;  (* slots awaiting service, FIFO *)
  mutable serving : bool;
  mutable commands_processed : int;
  mutable irqs_raised : int;
}

let base t = t.base
let irq_vec t = t.irq_vec
let dma t = t.dma
let disk t = t.disk
let commands_processed t = t.commands_processed
let irqs_raised t = t.irqs_raised

(* --- guest-memory structures --- *)

let fresh_addr t =
  let a = t.next_addr in
  t.next_addr <- a + 0x1000;
  a

let alloc_cmd_list t =
  let addr = fresh_addr t in
  Hashtbl.replace t.cmd_lists addr (Array.make 32 None);
  addr

let find_cmd_list t addr =
  match Hashtbl.find_opt t.cmd_lists addr with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Ahci: no command list at 0x%x" addr)

let alloc_cmd_table t fis prdt =
  let addr = fresh_addr t in
  Hashtbl.replace t.cmd_tables addr { fis; prdt };
  addr

let cmd_table t ~addr =
  match Hashtbl.find_opt t.cmd_tables addr with
  | Some ct -> ct
  | None -> invalid_arg (Printf.sprintf "Ahci: no command table at 0x%x" addr)

let check_slot slot =
  if slot < 0 || slot > 31 then invalid_arg "Ahci: slot out of range"

let set_slot t ~clb ~slot ~table_addr =
  check_slot slot;
  (find_cmd_list t clb).(slot) <- Some table_addr

let slot_table_addr t ~clb ~slot =
  check_slot slot;
  match (find_cmd_list t clb).(slot) with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ahci: slot %d is empty" slot)

(* --- command execution --- *)

let execute t slot =
  let table_addr = slot_table_addr t ~clb:t.clb ~slot in
  let ct = cmd_table t ~addr:table_addr in
  Sim.sleep command_overhead;
  let { Fis.op; lba; count } = ct.fis in
  let prd_total = List.fold_left (fun acc p -> acc + p.sectors) 0 ct.prdt in
  if prd_total < count then
    invalid_arg
      (Printf.sprintf "Ahci: PRDT covers %d sectors but command needs %d"
         prd_total count);
  (* Sector staging between disk and PRD buffers goes through a pooled
     scratch array; both directions copy, so the buffer is dead again by
     the end of the command. *)
  (match op with
  | Fis.Read ->
    let data = Content.Scratch.alloc count in
    Disk.read_into t.disk ~lba ~count data;
    let off = ref 0 in
    List.iter
      (fun prd ->
        if !off < count then begin
          let n = min prd.sectors (count - !off) in
          let buf = Dma.find t.dma ~addr:prd.buf_addr in
          Dma.blit_to buf ~off:0 data ~src_off:!off ~count:n;
          off := !off + n
        end)
      ct.prdt;
    Content.Scratch.release data
  | Fis.Write ->
    let data = Content.Scratch.alloc count in
    let off = ref 0 in
    List.iter
      (fun prd ->
        if !off < count then begin
          let n = min prd.sectors (count - !off) in
          let buf = Dma.find t.dma ~addr:prd.buf_addr in
          Dma.blit_from buf ~off:0 data ~dst_off:!off ~count:n;
          off := !off + n
        end)
      ct.prdt;
    Disk.write t.disk ~lba ~count data;
    Content.Scratch.release data);
  t.commands_processed <- t.commands_processed + 1;
  (* Completion: clear CI bit, set interrupt status, raise IRQ. *)
  t.ci <- t.ci land lnot (1 lsl slot);
  t.is_reg <- t.is_reg lor 1;
  if t.ie land 1 <> 0 then begin
    t.irqs_raised <- t.irqs_raised + 1;
    Irq.raise_irq t.irq ~vec:t.irq_vec
  end

let rec service_loop t =
  let slot = Mailbox.recv t.work in
  t.serving <- true;
  execute t slot;
  t.serving <- not (Mailbox.is_empty t.work);
  service_loop t

(* --- registers --- *)

let reg_read t off =
  if off = Regs.px_clb then t.clb
  else if off = Regs.px_is then t.is_reg
  else if off = Regs.px_ie then t.ie
  else if off = Regs.px_cmd then t.cmd
  else if off = Regs.px_tfd then
    if t.serving || not (Mailbox.is_empty t.work) then tfd_bsy else 0
  else if off = Regs.px_ci then t.ci
  else invalid_arg (Printf.sprintf "Ahci: read of unknown register 0x%x" off)

let reg_write t off v =
  if off = Regs.px_clb then t.clb <- v
  else if off = Regs.px_is then t.is_reg <- t.is_reg land lnot v
  else if off = Regs.px_ie then t.ie <- v
  else if off = Regs.px_cmd then t.cmd <- v
  else if off = Regs.px_ci then begin
    if t.cmd land 1 = 0 then
      invalid_arg "Ahci: command issued while port stopped (PxCMD.ST=0)";
    (* Issue slots newly set in v. *)
    for slot = 0 to 31 do
      let bit = 1 lsl slot in
      if v land bit <> 0 && t.ci land bit = 0 then begin
        t.ci <- t.ci lor bit;
        ignore (Mailbox.try_send t.work slot : bool)
      end
    done
  end
  else invalid_arg (Printf.sprintf "Ahci: write of unknown register 0x%x" off)

let raw_handler t =
  { Mmio.read = reg_read t; write = reg_write t }

let create sim ~mmio ~base ~dma ~disk ~irq ~irq_vec =
  let t =
    { sim;
      base;
      dma;
      disk;
      irq;
      irq_vec;
      clb = 0;
      is_reg = 0;
      ie = 0;
      cmd = 0;
      ci = 0;
      next_addr = 0x8000_0000;
      cmd_lists = Hashtbl.create 4;
      cmd_tables = Hashtbl.create 64;
      work = Mailbox.create ();
      serving = false;
      commands_processed = 0;
      irqs_raised = 0 }
  in
  Mmio.map mmio ~base ~size:0x200 (raw_handler t);
  Sim.spawn_at sim ~name:"ahci-service" (Sim.now sim) (fun () -> service_loop t);
  t

let raw = raw_handler
