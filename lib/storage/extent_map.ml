module M = Map.Make (Int)

(* start-lba -> (sector count, value); extents never overlap. *)
type 'a t = { mutable m : (int * 'a) M.t }

let create () = { m = M.empty }

let check_range ~lba ~count =
  if lba < 0 then invalid_arg "Extent_map: negative lba";
  if count <= 0 then invalid_arg "Extent_map: count must be positive"

(* All extents intersecting [lba, lba+count). *)
let overlapping t ~lba ~count =
  let finish = lba + count in
  let init =
    match M.find_last_opt (fun s -> s < lba) t.m with
    | Some (s, (n, v)) when s + n > lba -> [ (s, n, v) ]
    | Some _ | None -> []
  in
  let rest =
    M.to_seq_from lba t.m
    |> Seq.take_while (fun (s, _) -> s < finish)
    |> Seq.map (fun (s, (n, v)) -> (s, n, v))
    |> List.of_seq
  in
  init @ rest

let clear_range t ~lba ~count =
  check_range ~lba ~count;
  let finish = lba + count in
  List.iter
    (fun (s, n, v) ->
      t.m <- M.remove s t.m;
      if s < lba then t.m <- M.add s (lba - s, v) t.m;
      if s + n > finish then t.m <- M.add finish (s + n - finish, v) t.m)
    (overlapping t ~lba ~count)

let set t ~lba ~count v =
  check_range ~lba ~count;
  clear_range t ~lba ~count;
  (* Merge with an adjacent equal-valued predecessor and successor. *)
  let lba, count =
    match M.find_last_opt (fun s -> s < lba) t.m with
    | Some (s, (n, pv)) when s + n = lba && pv = v ->
      t.m <- M.remove s t.m;
      (s, count + n)
    | Some _ | None -> (lba, count)
  in
  let count =
    match M.find_opt (lba + count) t.m with
    | Some (n, sv) when sv = v ->
      t.m <- M.remove (lba + count) t.m;
      count + n
    | Some _ | None -> count
  in
  t.m <- M.add lba (count, v) t.m

let get t lba =
  match M.find_last_opt (fun s -> s <= lba) t.m with
  | Some (s, (n, v)) when lba < s + n -> Some v
  | Some _ | None -> None

let fold_range t ~lba ~count ~init ~f =
  check_range ~lba ~count;
  let finish = lba + count in
  let emit acc ~from ~until v =
    if until > from then f acc ~lba:from ~count:(until - from) v else acc
  in
  let rec go acc pos = function
    | [] -> emit acc ~from:pos ~until:finish None
    | (s, n, v) :: rest ->
      let ext_start = max s pos and ext_end = min (s + n) finish in
      let acc = emit acc ~from:pos ~until:ext_start None in
      let acc = emit acc ~from:ext_start ~until:ext_end (Some v) in
      go acc ext_end rest
  in
  go init lba (overlapping t ~lba ~count)

let extent_count t = M.cardinal t.m
let covered t = M.fold (fun _ (n, _) acc -> acc + n) t.m 0

let covered_range t ~lba ~count =
  fold_range t ~lba ~count ~init:0 ~f:(fun acc ~lba:_ ~count v ->
      match v with Some _ -> acc + count | None -> acc)
