module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Trace = Bmcast_obs.Trace

type profile = {
  name : string;
  capacity_sectors : int;
  media_rate_bytes_per_s : float;
  write_factor : float;  (* writes stream slightly slower than reads *)
  track_to_track_seek : Time.span;
  full_stroke_seek : Time.span;
  rotation_period : Time.span;
  cache_hit_time : Time.span;
  fixed_overhead : Time.span;
}

let hdd_constellation2 =
  { name = "Seagate Constellation.2 500GB 7200rpm";
    capacity_sectors = 976_773_168;  (* 500 GB in 512-byte sectors *)
    media_rate_bytes_per_s = 119.5e6;
    write_factor = 1.045;
    track_to_track_seek = Time.us 800;
    full_stroke_seek = Time.ms 16;
    rotation_period = Time.us 8333;  (* 7200 rpm *)
    cache_hit_time = Time.us 120;
    fixed_overhead = Time.us 150 }

let ssd_sata =
  { name = "SATA SSD";
    capacity_sectors = 976_773_168;
    media_rate_bytes_per_s = 500e6;
    write_factor = 1.2;
    track_to_track_seek = 0;
    full_stroke_seek = 0;
    rotation_period = 0;
    cache_hit_time = Time.us 40;
    fixed_overhead = Time.us 60 }

(* Extent values.  [Img delta] means sector [l] holds image sector
   [l + delta]; BMcast's identical-address-space deployment always has
   delta = 0, but copies of image data elsewhere stay representable. *)
type run = Img of int | Tag of int | Zeros | Blob1 of string

exception Read_error of int

(* An injected transient media fault: reads overlapping [lba, lba+count)
   fail [remaining] more times before the sectors read clean again. *)
type read_fault = {
  f_lba : int;
  f_count : int;
  mutable f_remaining : int;
}

type t = {
  sim : Sim.t;
  profile : profile;
  extents : run Extent_map.t;
  prng : Prng.t;
  mutable head_pos : int;  (* LBA after the last media access *)
  mutable cache_start : int;  (* last-read window, for cache hits *)
  mutable cache_len : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable seeks : int;
  mutable busy_time : Time.span;
  mutable read_faults : read_fault list;
  mutable spike_extra : Time.span;
  mutable spike_until : Time.t;
  mutable read_errors : int;
}

let create sim profile =
  { sim;
    profile;
    extents = Extent_map.create ();
    prng = Prng.split (Sim.rand sim);
    head_pos = 0;
    cache_start = 0;
    cache_len = 0;
    bytes_read = 0;
    bytes_written = 0;
    seeks = 0;
    busy_time = 0;
    read_faults = [];
    spike_extra = 0;
    spike_until = 0;
    read_errors = 0 }

let profile t = t.profile
let capacity_sectors t = t.profile.capacity_sectors

(* --- fault injection hook points --- *)

let inject_read_errors t ~lba ~count ~times =
  if count <= 0 || times <= 0 then
    invalid_arg "Disk.inject_read_errors: count and times must be positive";
  t.read_faults <-
    { f_lba = lba; f_count = count; f_remaining = times } :: t.read_faults

let set_latency_spike t ~extra ~until =
  t.spike_extra <- extra;
  t.spike_until <- until

let read_errors t = t.read_errors

(* A timed read overlapping a live fault window burns one of the
   fault's remaining failures and errors out (after the mechanical
   service time — the head did travel). *)
let take_read_fault t ~lba ~count =
  let hit =
    List.find_opt
      (fun f -> f.f_remaining > 0 && f.f_lba < lba + count && lba < f.f_lba + f.f_count)
      t.read_faults
  in
  match hit with
  | None -> None
  | Some f ->
    f.f_remaining <- f.f_remaining - 1;
    if f.f_remaining = 0 then
      t.read_faults <- List.filter (fun g -> g != f) t.read_faults;
    t.read_errors <- t.read_errors + 1;
    Some (max lba f.f_lba)

let check_span t ~lba ~count =
  if lba < 0 || count <= 0 || lba + count > t.profile.capacity_sectors then
    invalid_arg
      (Printf.sprintf "Disk: bad span lba=%d count=%d (capacity %d)" lba count
         t.profile.capacity_sectors)

(* --- content --- *)

(* Materialize into a caller-owned buffer (often a [Content.Scratch]
   array): the hot read paths stage sectors through here without a fresh
   array per call, and the interned constructors keep the per-sector
   boxes shared. The buffer region must be all-[Zero] on entry (scratch
   arrays and fresh arrays both are); unmapped runs are skipped, not
   stored. *)
let peek_into t ~lba ~count out =
  check_span t ~lba ~count;
  if count > Array.length out then invalid_arg "Disk.peek_into: buffer too short";
  ignore
    (Extent_map.fold_range t.extents ~lba ~count ~init:()
       ~f:(fun () ~lba:sub ~count:n v ->
         match v with
         | None | Some Zeros -> ()
         | Some (Img delta) ->
           for i = 0 to n - 1 do
             out.(sub - lba + i) <- Content.image (sub + i + delta)
           done
         | Some (Tag tag) ->
           let c = Content.data tag in
           for i = 0 to n - 1 do
             out.(sub - lba + i) <- c
           done
         | Some (Blob1 s) ->
           let c = Content.Blob s in
           for i = 0 to n - 1 do
             out.(sub - lba + i) <- c
           done)
      : unit)

let peek t ~lba ~count =
  check_span t ~lba ~count;
  let out = Array.make count Content.Zero in
  peek_into t ~lba ~count out;
  out

(* Split written data into uniform runs so extents stay compact. *)
let poke t ~lba ~count data =
  check_span t ~lba ~count;
  if Array.length data <> count then
    invalid_arg "Disk.poke: data length mismatch";
  let run_of i =
    match data.(i) with
    | Content.Zero -> Zeros
    | Content.Image img_lba -> Img (img_lba - (lba + i))
    | Content.Data tag -> Tag tag
    | Content.Blob s -> Blob1 s
  in
  let rec go start =
    if start < count then begin
      let v = run_of start in
      let finish = ref (start + 1) in
      while !finish < count && run_of !finish = v do
        incr finish
      done;
      Extent_map.set t.extents ~lba:(lba + start) ~count:(!finish - start) v;
      go !finish
    end
  in
  go 0

let sector t lba = (peek t ~lba ~count:1).(0)

let mapped_sectors_in t ~lba ~count =
  Extent_map.covered_range t.extents ~lba ~count

let fill_with_image t =
  Extent_map.set t.extents ~lba:0 ~count:t.profile.capacity_sectors (Img 0)

(* --- timing --- *)

let in_cache t ~lba ~count =
  count <= t.cache_len && lba >= t.cache_start
  && lba + count <= t.cache_start + t.cache_len

let seek_time t distance =
  if distance = 0 then 0
  else begin
    let p = t.profile in
    let frac = float_of_int distance /. float_of_int p.capacity_sectors in
    let extra =
      Time.of_float_s (Time.to_float_s (p.full_stroke_seek - p.track_to_track_seek) *. sqrt frac)
    in
    p.track_to_track_seek + extra
  end

let rotation t distance =
  if distance = 0 || t.profile.rotation_period = 0 then 0
  else Prng.int t.prng t.profile.rotation_period

let transfer_time t op count =
  let rate =
    match op with
    | `Read -> t.profile.media_rate_bytes_per_s
    | `Write -> t.profile.media_rate_bytes_per_s /. t.profile.write_factor
  in
  Time.of_float_s (float_of_int (count * 512) /. rate)

let spike t =
  if Sim.now t.sim < t.spike_until then t.spike_extra else 0

let service_time t op ~lba ~count =
  check_span t ~lba ~count;
  match op with
  | `Read when in_cache t ~lba ~count -> t.profile.cache_hit_time + spike t
  | `Read | `Write ->
    let distance = abs (lba - t.head_pos) in
    t.profile.fixed_overhead + seek_time t distance + rotation t distance
    + transfer_time t op count + spike t

let serve t op ~lba ~count =
  let span = service_time t op ~lba ~count in
  let cache_hit = op = `Read && in_cache t ~lba ~count in
  if not cache_hit then begin
    if lba <> t.head_pos then t.seeks <- t.seeks + 1;
    t.head_pos <- lba + count;
    if op = `Read then begin
      t.cache_start <- lba;
      t.cache_len <- count
    end
  end;
  t.busy_time <- t.busy_time + span;
  let tr = Sim.trace t.sim in
  if Trace.on tr ~cat:"storage" then begin
    let ts = Sim.now t.sim in
    Sim.sleep span;
    Trace.complete tr ~cat:"storage"
      ~args:
        [ ("lba", Trace.Int lba);
          ("count", Trace.Int count);
          ("cache-hit", Trace.Bool cache_hit) ]
      (match op with `Read -> "disk-read" | `Write -> "disk-write")
      ~ts
  end
  else Sim.sleep span

let read_service t ~lba ~count =
  serve t `Read ~lba ~count;
  (match take_read_fault t ~lba ~count with
  | Some bad_lba -> raise (Read_error bad_lba)
  | None -> ());
  t.bytes_read <- t.bytes_read + (count * 512)

let read t ~lba ~count =
  read_service t ~lba ~count;
  peek t ~lba ~count

let read_into t ~lba ~count out =
  read_service t ~lba ~count;
  peek_into t ~lba ~count out

let write t ~lba ~count data =
  serve t `Write ~lba ~count;
  t.bytes_written <- t.bytes_written + (count * 512);
  poke t ~lba ~count data

let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let seeks t = t.seeks
let busy_time t = t.busy_time
