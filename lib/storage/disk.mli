(** Rotating / solid-state disk model: content plus service timing.

    Content is stored compactly as extents (see {!Extent_map}); timing
    follows classic disk mechanics — seek distance, rotational latency,
    media transfer rate, and an on-disk track cache. The track cache is
    load-bearing for BMcast: the mediator's interrupt-generation trick
    re-reads "a single dummy sector that hits the disk cache" (§3.2), so
    cached re-reads must be fast.

    [read]/[write] block the calling process for the service time; the
    caller (a controller) is responsible for serializing requests. *)

type profile = {
  name : string;
  capacity_sectors : int;
  media_rate_bytes_per_s : float;
  write_factor : float;  (** write streaming runs this much slower *)
  track_to_track_seek : Bmcast_engine.Time.span;
  full_stroke_seek : Bmcast_engine.Time.span;
  rotation_period : Bmcast_engine.Time.span;  (** 0 for SSDs *)
  cache_hit_time : Bmcast_engine.Time.span;
  fixed_overhead : Bmcast_engine.Time.span;  (** per-command overhead *)
}

val hdd_constellation2 : profile
(** Calibrated to the paper's Seagate Constellation.2 ST9500620NS
    (500 GB, 7200 rpm, ~117 MB/s sequential with 1 MB requests). *)

val ssd_sata : profile
(** A SATA SSD profile for the "would SSDs help?" discussions in §2/§5.1. *)

type t

val create : Bmcast_engine.Sim.t -> profile -> t
val profile : t -> profile
val capacity_sectors : t -> int

(** {2 Timed operations (process context)} *)

exception Read_error of int
(** Raised by {!read} when the span overlaps an injected transient
    fault; carries the first failing LBA. The mechanical service time
    has already elapsed when this is raised. *)

val read : t -> lba:int -> count:int -> Content.t array
val write : t -> lba:int -> count:int -> Content.t array -> unit

val read_into : t -> lba:int -> count:int -> Content.t array -> unit
(** {!read}, staged into a caller-owned buffer (typically a
    [Content.Scratch] array) instead of a fresh allocation. The first
    [count] slots must be [Zero] on entry; unmapped sectors are left
    untouched. *)

(** {2 Fault injection (hook points for {!Bmcast_faults.Fault})} *)

val inject_read_errors : t -> lba:int -> count:int -> times:int -> unit
(** Arm a transient media fault: the next [times] timed reads touching
    [\[lba, lba+count)] raise {!Read_error}, after which the sectors
    read clean again (a real disk's recoverable-sector behaviour).
    Instant {!peek} access is unaffected. *)

val set_latency_spike : t -> extra:Bmcast_engine.Time.span -> until:Bmcast_engine.Time.t -> unit
(** Until the given absolute time, every timed operation takes [extra]
    longer (firmware garbage collection, thermal recalibration, a
    shared-spindle neighbour). Replaces any previous spike. *)

val read_errors : t -> int
(** Number of injected read errors actually delivered so far. *)

val service_time :
  t -> [ `Read | `Write ] -> lba:int -> count:int -> Bmcast_engine.Time.span
(** Time the next such operation would take (also advances no state). *)

(** {2 Instant access (tests, image preloading, assertions)} *)

val peek : t -> lba:int -> count:int -> Content.t array
val poke : t -> lba:int -> count:int -> Content.t array -> unit

(** [peek_into t ~lba ~count buf] is {!peek} into a caller-owned
    all-[Zero] buffer; see {!read_into}. *)
val peek_into : t -> lba:int -> count:int -> Content.t array -> unit
val sector : t -> int -> Content.t

val mapped_sectors_in : t -> lba:int -> count:int -> int
(** Sectors of [\[lba, lba+count)] with stored (written) content —
    instant extent accounting. A result of [count] means the disk fully
    holds the range; the peer-serve path uses this as its "do I really
    have these bytes" guard alongside the fill bitmap. *)

val fill_with_image : t -> unit
(** Instantly set every sector to its image content (a pre-deployed
    disk, or the storage server's copy). *)

(** {2 Statistics} *)

val bytes_read : t -> int
val bytes_written : t -> int
val seeks : t -> int
val busy_time : t -> Bmcast_engine.Time.span
