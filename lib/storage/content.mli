(** Sector content identity.

    The simulator tracks {e what} a sector holds rather than its bytes:
    whether it is untouched, carries sector [lba] of the golden OS image,
    or carries data from a specific guest write. This makes end-to-end
    correctness properties checkable — e.g. "after deployment every
    sector equals the server image except where the guest wrote"
    (§3.1/Figure 1d) and "a late background-copy fill must never clobber
    a newer guest write" (§3.3's bitmap consistency argument). *)

type t =
  | Zero  (** never written; a fresh local disk *)
  | Image of int  (** sector [lba] of the golden image *)
  | Data of int  (** guest-written data, identified by a unique tag *)
  | Blob of string
      (** actual bytes, for the rare data whose contents matter to the
          simulation itself (e.g. the VMM's persisted fill bitmap) *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val fresh_tag : unit -> int
(** Allocate a unique tag for a guest write. *)

val image : int -> t
(** Interned [Image lba]: hot constructors come from a process-wide
    cache so repeated materialization of the same sector (every replica
    serving the golden image) allocates nothing. Structurally identical
    to [Image lba]. *)

val data : int -> t
(** Interned [Data tag]; see {!image}. *)

(** Pooled sector-content scratch arrays for request-scoped buffers
    (AoE fragments, whole-command reads, DMA staging). [alloc n] yields
    an all-[Zero] array of length [n] exactly like [Array.make]; the
    owner hands it back with [release] once no live reference remains —
    the array is cleared and reused. Dropping a scratch array to the GC
    instead of releasing is always safe, merely unpooled. *)
module Scratch : sig
  val alloc : int -> t array
  val release : t array -> unit

  val free_count : int -> int
  (** Arrays of length [n] currently pooled (for tests). *)
end

val image_sectors : lba:int -> count:int -> t array
(** [count] consecutive image sectors starting at [lba]. *)

val data_sectors : count:int -> t array
(** [count] sectors of a single fresh guest write (same tag). *)

val zeroes : count:int -> t array
