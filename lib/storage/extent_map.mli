(** Range map from LBA extents to values.

    Stores disk contents compactly: a 67-million-sector disk filled
    mostly by large sequential background-copy writes stays a handful of
    extents. Values are uniform per extent ("all Image", "all Data tag
    17"); positional content like [Image lba] is reconstructed by the
    caller from the extent's position (see {!Disk}). *)

type 'a t

val create : unit -> 'a t

val set : 'a t -> lba:int -> count:int -> 'a -> unit
(** Assign value to [\[lba, lba+count)], overwriting and splitting any
    overlapped extents. Adjacent extents with equal values merge. *)

val clear_range : 'a t -> lba:int -> count:int -> unit
(** Remove any mapping in the range. *)

val get : 'a t -> int -> 'a option
(** Value at a single LBA. *)

val fold_range :
  'a t -> lba:int -> count:int -> init:'b ->
  f:('b -> lba:int -> count:int -> 'a option -> 'b) -> 'b
(** Fold over maximal sub-ranges of [\[lba, lba+count)] with a uniform
    mapping status ([Some v] or unmapped). Sub-ranges are visited in
    ascending LBA order and exactly cover the query range. *)

val extent_count : 'a t -> int
(** Number of stored extents (a compactness measure). *)

val covered : 'a t -> int
(** Total number of mapped LBAs. *)

val covered_range : 'a t -> lba:int -> count:int -> int
(** Mapped LBAs within [\[lba, lba+count)] — [count] means the whole
    range is mapped. The extent-accounting query behind the peer-serve
    guard: a peer only serves ranges its local disk fully holds. *)
