(** AHCI host bus adapter model (single port, 32 command slots).

    The guest driver programs the controller the way a real AHCI driver
    does: it builds a command table (command FIS + PRDT scatter list) in
    guest memory, points a command-list slot at it, and writes the slot's
    bit to PxCI. The controller fetches the structures, performs the disk
    transfer via DMA, clears the PxCI bit, sets PxIS and raises its
    interrupt if PxIE is enabled.

    All register traffic goes through an {!Bmcast_hw.Mmio} region, so a
    VMM can interpose on it; command tables are plain guest memory and
    can be read {e and rewritten} by a mediator before the device sees
    them — the paper's command-manipulation trick (§3.2). *)

module Fis : sig
  type op = Read | Write

  type t = { op : op; lba : int; count : int }
  (** Command FIS essentials: operation, LBA, sector count. *)
end

type prd = { buf_addr : int; sectors : int }
(** One physical-region-descriptor entry. *)

type cmd_table = { mutable fis : Fis.t; mutable prdt : prd list }

(** Register byte offsets within the controller's MMIO region:
    [px_clb] command list base, [px_is] interrupt status (RW1C), [px_ie]
    interrupt enable, [px_cmd] port command (bit 0 = ST), [px_tfd] task
    file data (bit 7 = BSY), [px_ci] command issue bitmask. *)
module Regs : sig
  val px_clb : int
  val px_is : int
  val px_ie : int
  val px_cmd : int
  val px_tfd : int
  val px_ci : int
end

val tfd_bsy : int
(** BSY bit within PxTFD. *)

type t

val create :
  Bmcast_engine.Sim.t ->
  mmio:Bmcast_hw.Mmio.t ->
  base:int ->
  dma:Dma.t ->
  disk:Disk.t ->
  irq:Bmcast_hw.Irq.t ->
  irq_vec:int ->
  t
(** Create the controller and map its register region at [base]. *)

val base : t -> int
val irq_vec : t -> int
val dma : t -> Dma.t
val disk : t -> Disk.t

val raw : t -> Bmcast_hw.Mmio.handler
(** Direct register access that bypasses any interposer — how a VMM that
    owns the platform reaches the device underneath its own traps. *)

(** {2 Guest-memory command structures}

    Owned here because both the guest driver and a mediator dereference
    them by address. *)

val alloc_cmd_list : t -> int
(** Allocate a 32-slot command list, returning its address (the value a
    driver writes to PxCLB). *)

val alloc_cmd_table : t -> Fis.t -> prd list -> int
(** Build a command table in guest memory; returns its address. *)

val cmd_table : t -> addr:int -> cmd_table
(** Dereference a command table (driver or mediator). *)

val set_slot : t -> clb:int -> slot:int -> table_addr:int -> unit
(** Point command-list slot [slot] at a table. *)

val slot_table_addr : t -> clb:int -> slot:int -> int
(** Read back a slot's table address. Raises if the slot is empty. *)

(** {2 Statistics} *)

val commands_processed : t -> int
val irqs_raised : t -> int
