include Bmcast_obs.Stats
