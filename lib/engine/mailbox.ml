(* Values always travel through [items]; a waker is only a hint that the
   queue may have changed. A woken process re-checks the queue and parks
   again if a sibling consumed the item first — this keeps the park/wake
   cycle on [Sim.park]'s payload-free path (no boxed hand-off per wake).
   Items and waiters live in array-backed rings ([Ring]), so in the
   steady state a send/recv hand-off allocates nothing at all: at fleet
   scale the simulator forwards millions of frames through mailboxes,
   and a [Queue.t] cell per hop was a top allocation site. *)
type 'a t = {
  capacity : int option;
  items : 'a Ring.t;
  recv_waiters : (unit -> bool) Ring.t;
  send_waiters : (unit -> bool) Ring.t;
  (* Preallocated [Sim.park] register closures: parking is the hot path,
     so it must not conjure a fresh closure per blocked recv/send. *)
  mutable reg_recv : (unit -> bool) -> unit;
  mutable reg_send : (unit -> bool) -> unit;
}

let no_reg (_ : unit -> bool) = ()

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Mailbox.create: capacity must be positive"
  | _ -> ());
  let t =
    { capacity;
      items = Ring.create ();
      recv_waiters = Ring.create ();
      send_waiters = Ring.create ();
      reg_recv = no_reg;
      reg_send = no_reg }
  in
  t.reg_recv <- (fun w -> Ring.push t.recv_waiters w);
  t.reg_send <- (fun w -> Ring.push t.send_waiters w);
  t

let is_full t =
  match t.capacity with
  | None -> false
  | Some c -> Ring.length t.items >= c

(* Pop waiters until one accepts (a waker returns false if its process
   was already resumed by a racing source, e.g. a timeout). *)
let rec wake_one q =
  if Ring.is_empty q then false
  else if (Ring.pop q) () then true
  else wake_one q

let try_send t v =
  if is_full t then false
  else begin
    Ring.push t.items v;
    ignore (wake_one t.recv_waiters : bool);
    true
  end

let rec send t v =
  if not (try_send t v) then begin
    Sim.park t.reg_send;
    send t v
  end

let take_item t =
  let v = Ring.pop t.items in
  (* Space freed: resume one blocked sender, if any. *)
  ignore (wake_one t.send_waiters : bool);
  v

let try_recv t =
  if Ring.is_empty t.items then None else Some (take_item t)

let rec recv t =
  if Ring.is_empty t.items then begin
    Sim.park t.reg_recv;
    recv t
  end
  else take_item t

let recv_timeout t timeout =
  match try_recv t with
  | Some v -> Some v
  | None ->
    let sim = Sim.self () in
    let deadline = Time.add (Sim.now sim) timeout in
    let rec wait () =
      let woke =
        Sim.suspend (fun waker ->
            Ring.push t.recv_waiters (fun () -> waker true);
            Sim.schedule sim deadline (fun () -> ignore (waker false : bool)))
      in
      (* Either way the queue may hold an item now (a racing sender can
         deliver at the very deadline); only give up when it doesn't and
         the deadline passed. *)
      match try_recv t with
      | Some v -> Some v
      | None -> if woke && Sim.now sim < deadline then wait () else None
    in
    wait ()

let length t = Ring.length t.items
let is_empty t = Ring.is_empty t.items
