module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics
module Profile = Bmcast_obs.Profile

(* Queued work, represented without wrapping everything in a closure:
   resuming a sleeping or suspended process stores its one-shot
   continuation (and wake value) directly in the event record, so the
   sleep/wake hot path allocates nothing beyond the continuation the
   effect handler already holds. [Job_fn] remains for external callbacks
   ([schedule]) and traced slow paths. *)
type job =
  | Job_none
  | Job_fn of (unit -> unit)
  | Job_k : (unit, unit) Effect.Deep.continuation -> job
  | Job_kv : ('a, unit) Effect.Deep.continuation * 'a -> job
  | Job_proc of string option * (unit -> unit)
  | Job_daemon of (unit -> unit)

type t = {
  mutable clock : Time.t;
  events : job Timer_wheel.t;
  prng : Prng.t;
  mutable executed : int;
  mutable failure : (string * exn) option;
  mutable stop_requested : bool;
  mutable daemons : int; (* queued Job_daemon events; see [run] *)
  trace_ : Trace.t;
  metrics_ : Metrics.t;
  profile_ : Profile.t;
  mutable effs_ : effs option;
}

(* Hoisted effect handlers. A naive [effc] conjures a fresh closure (and
   its [Some] box) for every perform — ~10 minor words per [Sleep] on
   the hottest path in the simulator. These handlers are allocated once
   per simulator; effect payloads ride in the mutable cells, written by
   [effc] immediately before the runtime invokes the matching handler.
   That hand-off is safe because effects are handled synchronously on a
   single domain: nothing runs between [effc] returning and the handler
   consuming the cell. *)
and effs = {
  h_sleep : ((unit, unit) Effect.Deep.continuation -> unit) option;
  h_clock : ((Time.t, unit) Effect.Deep.continuation -> unit) option;
  h_park : ((unit, unit) Effect.Deep.continuation -> unit) option;
  mutable spawn_name : string option;
  mutable spawn_body : unit -> unit;
  h_spawn : ((unit, unit) Effect.Deep.continuation -> unit) option;
  h_self : ((t, unit) Effect.Deep.continuation -> unit) option;
}

exception Process_failure of string * exn

(* The two hottest effects are constant constructors: performing one
   allocates nothing for the effect value itself. Their payloads ride in
   the module-level cells below, written immediately before [perform] and
   read inside the (synchronously invoked) handler — safe on a single
   domain because nothing runs in between, even across nested sims. *)
type _ Effect.t +=
  | Sleep : unit Effect.t
  | Clock : Time.t Effect.t
  | Suspend : (('a -> bool) -> unit) -> 'a Effect.t
  | Park : unit Effect.t
  | Spawn : string option * (unit -> unit) -> unit Effect.t
  | Self : t Effect.t

let no_park (_ : unit -> bool) = ()
let sleep_cell : Time.span ref = ref 0
let park_cell : ((unit -> bool) -> unit) ref = ref no_park

let create_base ?(seed = 42) ?(trace = Trace.null) ?(metrics = Metrics.null)
    ?(profile = Profile.null) () =
  let sim =
    { clock = Time.zero;
      events = Timer_wheel.create ~dummy:Job_none ();
      prng = Prng.create seed;
      executed = 0;
      failure = None;
      stop_requested = false;
      daemons = 0;
      trace_ = trace;
      metrics_ = metrics;
      profile_ = profile;
      effs_ = None }
  in
  Trace.set_clock trace (fun () -> sim.clock);
  Metrics.derived metrics "sim.events" (fun () -> float_of_int sim.executed);
  Metrics.derived metrics "sim.pending" (fun () ->
      float_of_int (Timer_wheel.size sim.events));
  sim

let now sim = sim.clock
let rand sim = sim.prng
let events_executed sim = sim.executed
let pending sim = Timer_wheel.size sim.events
let trace sim = sim.trace_
let metrics sim = sim.metrics_
let profile sim = sim.profile_

(* Internal schedule: [at] is >= clock by construction at every call
   site (clock + nonnegative delay), so skip the past-time check. *)
let push_job sim at job = ignore (Timer_wheel.push sim.events at job : Timer_wheel.token)

let schedule sim at fn =
  if at < sim.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule: time %s is in the past (now %s)"
         (Time.to_string at) (Time.to_string sim.clock));
  push_job sim at (Job_fn fn)

let push_daemon sim at fn =
  sim.daemons <- sim.daemons + 1;
  push_job sim at (Job_daemon fn)

(* Recurring callback every [span] of virtual time. Daemon jobs (the
   default) never keep the simulation alive: [run] stops once only
   daemon events remain, so a periodic sampler doesn't turn an
   open-ended [run] into an infinite loop. The returned thunk cancels
   the recurrence (the already-queued occurrence becomes a no-op). *)
let every sim ?(daemon = true) ?start span fn =
  if span <= 0 then invalid_arg "Sim.every: period must be positive";
  let cancelled = ref false in
  let push = if daemon then push_daemon else fun sim at fn -> push_job sim at (Job_fn fn) in
  let rec arm at =
    push sim at (fun () ->
        if not !cancelled then begin
          fn ();
          arm (Time.add at span)
        end)
  in
  arm (match start with Some at -> at | None -> Time.add sim.clock span);
  fun () -> cancelled := true

let create ?seed ?trace ?metrics ?profile ?timeseries () =
  let sim = create_base ?seed ?trace ?metrics ?profile () in
  (match timeseries with
  | None -> ()
  | Some ts ->
    let interval = Bmcast_obs.Timeseries.interval_ns ts in
    ignore
      (every sim interval (fun () ->
           Bmcast_obs.Timeseries.sample ts ~now:sim.clock)
        : unit -> unit));
  sim

let no_body () = ()

let make_effs sim =
  let open Effect.Deep in
  let rec e =
    { h_sleep =
        Some
          (fun k ->
            let at = Time.add sim.clock (max !sleep_cell 0) in
            if Trace.sample sim.trace_ ~cat:"sim" then begin
              let ts = sim.clock in
              push_job sim at
                (Job_fn
                   (fun () ->
                     Trace.complete sim.trace_ ~cat:"sim" "sleep" ~ts;
                     continue k ()))
            end
            else push_job sim at (Job_k k));
      h_clock = Some (fun k -> continue k sim.clock);
      h_park =
        Some
          (fun k ->
            let register = !park_cell in
            park_cell := no_park;
            (* The waker is single-shot {e by construction} of every
               registrar (park waiters are dequeued exactly once), so it
               carries no fired-guard — resuming a continuation twice
               would crash loudly anyway. *)
            register
              (fun () ->
                if Trace.sample sim.trace_ ~cat:"sim" then
                  Trace.instant sim.trace_ ~cat:"sim" "wake";
                push_job sim sim.clock (Job_k k);
                true));
      spawn_name = None;
      spawn_body = no_body;
      h_spawn =
        Some
          (fun k ->
            let child_name = e.spawn_name and body = e.spawn_body in
            e.spawn_name <- None;
            e.spawn_body <- no_body;
            if Trace.sample sim.trace_ ~cat:"sim" then
              Trace.instant sim.trace_ ~cat:"sim"
                ~args:
                  [ ("proc", Trace.Str (Option.value child_name ~default:"?")) ]
                "spawn";
            push_job sim sim.clock (Job_proc (child_name, body));
            continue k ());
      h_self = Some (fun k -> continue k sim) }
  in
  e

let effs sim =
  match sim.effs_ with
  | Some e -> e
  | None ->
    let e = make_effs sim in
    sim.effs_ <- Some e;
    e

(* Run [f] as a process: execute under a deep handler that maps blocking
   effects onto event-queue operations.  Continuations are one-shot; the
   [Suspend] waker guards against double resume so that racing wake-up
   sources are safe. *)
let rec exec_process sim name f =
  let open Effect.Deep in
  match_with f ()
    { retc = (fun () -> ());
      exnc =
        (fun e ->
          if sim.failure = None then
            sim.failure <- Some (Option.value name ~default:"<anonymous>", e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep -> ((effs sim).h_sleep : ((a, unit) continuation -> unit) option)
          | Clock -> (effs sim).h_clock
          | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let fired = ref false in
                let waker v =
                  if !fired then false
                  else begin
                    fired := true;
                    if Trace.sample sim.trace_ ~cat:"sim" then
                      Trace.instant sim.trace_ ~cat:"sim" "wake";
                    push_job sim sim.clock (Job_kv (k, v));
                    true
                  end
                in
                register waker)
          | Park -> ((effs sim).h_park : ((a, unit) continuation -> unit) option)
          | Spawn (child_name, body) ->
            let e = effs sim in
            e.spawn_name <- child_name;
            e.spawn_body <- body;
            e.h_spawn
          | Self -> (effs sim).h_self
          | _ -> None) }

and run_job sim job =
  match job with
  | Job_fn f -> f ()
  | Job_k k -> Effect.Deep.continue k ()
  | Job_kv (k, v) -> Effect.Deep.continue k v
  | Job_proc (name, body) -> exec_process sim name body
  | Job_daemon f ->
    sim.daemons <- sim.daemons - 1;
    f ()
  | Job_none -> assert false

let spawn_at sim ?name at f =
  if at < sim.clock then
    invalid_arg
      (Printf.sprintf "Sim.spawn_at: time %s is in the past (now %s)"
         (Time.to_string at) (Time.to_string sim.clock));
  push_job sim at (Job_proc (name, f))

let request_stop sim = sim.stop_requested <- true

let run ?until sim =
  sim.stop_requested <- false;
  let continue_run () =
    match sim.failure with
    | Some (pname, e) ->
      sim.failure <- None;
      raise (Process_failure (pname, e))
    | None -> true
  in
  let rec loop () =
    if continue_run () && not sim.stop_requested then begin
      let t = Timer_wheel.next_time sim.events in
      (* Daemon events (recurring samplers) never keep the run alive:
         once every queued event is a daemon, the simulation's real
         work is done and the run returns. *)
      if t <> Timer_wheel.no_time && Timer_wheel.size sim.events > sim.daemons
      then
        if match until with Some u -> t > u | None -> false then
          (* Do not execute past the horizon; park the clock at it. *)
          sim.clock <- Option.get until
        else begin
          sim.clock <- t;
          sim.executed <- sim.executed + 1;
          if sim.executed land 8191 = 0 && Trace.on sim.trace_ ~cat:"sim" then begin
            Trace.counter sim.trace_ ~cat:"sim" "events_executed"
              (float_of_int sim.executed);
            Trace.counter sim.trace_ ~cat:"sim" "event_queue_depth"
              (float_of_int (Timer_wheel.size sim.events))
          end;
          run_job sim (Timer_wheel.pop_exn sim.events);
          loop ()
        end
    end
  in
  loop ()

(* Process-context operations. *)

let sleep d =
  sleep_cell := d;
  Effect.perform Sleep

let clock () = Effect.perform Clock

let yield () =
  sleep_cell := 0;
  Effect.perform Sleep

let suspend register = Effect.perform (Suspend register)

let park register =
  park_cell := register;
  Effect.perform Park
let spawn ?name f = Effect.perform (Spawn (name, f))
let self () = Effect.perform Self

let wait_until at =
  let t = clock () in
  if at > t then sleep (Time.diff at t)
