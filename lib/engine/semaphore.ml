type t = {
  mutable permits : int;
  waiters : (unit -> bool) Ring.t;
  (* Preallocated [Sim.park] register closure — blocking on a contended
     semaphore must not allocate per wait. *)
  mutable reg : (unit -> bool) -> unit;
}

let no_reg (_ : unit -> bool) = ()

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative permits";
  let t = { permits = n; waiters = Ring.create (); reg = no_reg } in
  t.reg <- (fun w -> Ring.push t.waiters w);
  t

let try_acquire t =
  if t.permits > 0 then begin
    t.permits <- t.permits - 1;
    true
  end
  else false

let rec acquire t =
  if not (try_acquire t) then begin
    Sim.park t.reg;
    acquire t
  end

let rec release t =
  if Ring.is_empty t.waiters then t.permits <- t.permits + 1
  else begin
    let waker = Ring.pop t.waiters in
    (* Hand the permit back by incrementing then waking; the woken
       process re-runs [try_acquire] (the wake is only a hint). If the
       waiter is dead (raced with a timeout), try the next one. *)
    if waker () then t.permits <- t.permits + 1 else release t
  end

let available t = t.permits

let with_permit t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e
