(** Discrete-event simulation scheduler with effect-based processes.

    A simulation owns a virtual clock and an event queue. Code running
    "inside" the simulation is an ordinary OCaml function executed under an
    effect handler; it can block on virtual time ([sleep]), on external
    wake-ups ([suspend]), and spawn concurrent processes. Determinism is
    guaranteed: events at equal timestamps fire in scheduling order and all
    randomness comes from the simulation's seeded PRNG.

    {1 Driving a simulation (outside process context)} *)

type t

exception Process_failure of string * exn
(** Raised by [run] when a spawned process raises: carries the process name
    and the original exception. *)

val create :
  ?seed:int ->
  ?trace:Bmcast_obs.Trace.t ->
  ?metrics:Bmcast_obs.Metrics.t ->
  ?profile:Bmcast_obs.Profile.t ->
  ?timeseries:Bmcast_obs.Timeseries.t ->
  unit ->
  t
(** Fresh simulation with clock at {!Time.zero}. Default seed is 42.
    [trace] (default {!Bmcast_obs.Trace.null}) receives spans/events
    from instrumented subsystems with virtual-time stamps; the
    simulation installs its clock into it. [metrics] (default
    {!Bmcast_obs.Metrics.null}) is the registry subsystems register
    instruments into at attach time. [profile] (default
    {!Bmcast_obs.Profile.null}) is the allocation profiler subsystems
    scope non-blocking hot paths with. [timeseries] installs a
    recurring daemon job (see {!every}) that sweeps the sampler at its
    configured interval on the virtual clock, starting one interval in
    — sampling is part of the deterministic event order. *)

val now : t -> Time.t
val rand : t -> Prng.t

val trace : t -> Bmcast_obs.Trace.t
(** The tracer passed at {!create} ([Trace.null] otherwise). With a
    live tracer the scheduler records sleep spans, spawn/wake instants
    and periodic event-loop counters under category ["sim"]. *)

val metrics : t -> Bmcast_obs.Metrics.t

val profile : t -> Bmcast_obs.Profile.t
(** The allocation profiler passed at {!create} ([Profile.null]
    otherwise). Scopes must not cross a scheduling point — see
    {!Bmcast_obs.Profile}. *)

val schedule : t -> Time.t -> (unit -> unit) -> unit
(** [schedule sim at fn] runs callback [fn] at absolute time [at] (which
    must not be in the past). *)

val every : t -> ?daemon:bool -> ?start:Time.t -> Time.span -> (unit -> unit) -> unit -> unit
(** [every sim span fn] runs callback [fn] every [span] of virtual
    time, first at [start] (default: one [span] from now). Returns a
    cancel thunk; cancelling turns the already-queued occurrence into a
    no-op. With [daemon] (the default) the recurrence never keeps
    {!run} alive — the run returns once only daemon events remain —
    so periodic samplers are safe in open-ended runs. [~daemon:false]
    gives an ordinary recurring event (with no [until], cancel it or
    the run never terminates).
    @raise Invalid_argument if [span <= 0]. *)

val spawn_at : t -> ?name:string -> Time.t -> (unit -> unit) -> unit
(** Start an effectful process at the given absolute time. *)

val run : ?until:Time.t -> t -> unit
(** Execute events until no non-daemon events remain or the clock
    passes [until]. Re-raises process failures as {!Process_failure}. *)

val events_executed : t -> int

val pending : t -> int
(** Events currently queued (the scheduler's live-event count). *)

val request_stop : t -> unit
(** Make the current (or next) [run] return after the event in progress;
    pending events stay queued. Callable from anywhere, including inside
    a process. *)

(** {1 Inside a process}

    The following must be called from within a process spawned on the
    running simulation; calling them elsewhere raises
    [Effect.Unhandled]. *)

val sleep : Time.span -> unit
(** Block the current process for a duration of virtual time. *)

val clock : unit -> Time.t
(** Current virtual time. *)

val yield : unit -> unit
(** Re-schedule at the current time behind already-queued events. *)

val suspend : (('a -> bool) -> unit) -> 'a
(** [suspend register] parks the current process. [register] receives a
    {e waker}: calling [waker v] resumes the process with value [v] and
    returns [true]; subsequent calls return [false] and do nothing. This
    makes racing wake-ups (e.g. completion vs. timeout) safe: first caller
    wins. *)

val park : ((unit -> bool) -> unit) -> unit
(** Value-free [suspend], tuned for the mailbox/signal hot path: the
    waker carries no payload (the sleeper re-checks its queue on resume,
    treating the wake as a hint), which lets the engine resume it
    through the same zero-alloc [Job_k] path as a sleep instead of a
    boxed value hand-off. Same first-caller-wins waker contract as
    [suspend]. *)

val spawn : ?name:string -> (unit -> unit) -> unit
(** Start a sibling process at the current time. *)

val self : unit -> t
(** Ambient simulation handle (for [schedule], [rand], ...). *)

val wait_until : Time.t -> unit
(** Sleep until an absolute time (no-op if already past). *)
