(* Hierarchical timer wheel over a preallocated event pool.

   Layout: [levels] wheels of 256 slots each; level k indexes byte k of
   the absolute timestamp. An event at time [t] lives at the highest
   level where [t] still differs from the cursor [cur]
   (level = byte index of the top nonzero byte of [t lxor cur]), so
   level 0 slots hold exactly one timestamp and higher-level slots hold
   up to 256^k of them. When the cursor enters a higher-level slot its
   chain cascades down one or more levels; a slot being entered is
   always empty before the cascade, so chains never need merging and
   FIFO order for equal timestamps is preserved structurally (chains
   only ever append, and every redistribution keeps relative order).

   Events outside the wheel horizon — more than 256^levels ns ahead of
   the cursor, or behind it (the peek-then-park pattern in
   [Sim.run ~until] advances the cursor without popping) — ride the
   binary [Heap] and are compared head-to-head at pop time; forward
   overflow is promoted in bulk once the wheel drains.

   The pool is a set of parallel arrays threaded by a free list, so a
   schedule/fire cycle allocates nothing once the pool has grown to the
   peak pending-event count. *)

type token = int

let slots = 256 (* per level: 8 bits of the timestamp *)
let words = 8 (* occupancy bitmap words per level, 32 slots each *)
let token_bits = 24 (* pool index bits in a token; the rest is gen *)
let max_pool = 1 lsl token_bits

type 'a t = {
  levels : int;
  horizon : int; (* 256^levels *)
  dummy : 'a;
  (* event pool: parallel arrays + free list through [nexts] *)
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable nexts : int array; (* slot chain link / free-list link; -1 end *)
  mutable gens : int array; (* bumped on reclaim; stale-token guard *)
  mutable canceled : Bytes.t;
  mutable cap : int;
  mutable free : int; (* free-list head, -1 when pool exhausted *)
  mutable next_seq : int;
  (* wheel *)
  heads : int array; (* levels*slots chain heads, -1 empty *)
  tails : int array;
  bits : int array; (* levels*words occupancy words *)
  mutable cur : int; (* cursor: time of the last event served *)
  mutable live : int;
  far : int Heap.t; (* overflow + behind-cursor tier; payload = pool idx *)
  (* cached minimum, invalidated by any potentially-earlier mutation *)
  mutable min_valid : bool;
  mutable min_src : int; (* 0 = level-0 slot [min_slot], 1 = far heap *)
  mutable min_slot : int;
  mutable min_time : int;
  (* stats *)
  mutable n_cascaded : int;
  mutable n_far : int;
  mutable n_promoted : int;
}

type stats = { cascaded : int; far_pushed : int; promoted : int }

let no_time = max_int

(* de Bruijn count-trailing-zeros for 32-bit words *)
let ctz_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz32 x = Array.unsafe_get ctz_table (((x land -x) * 0x077CB531) lsr 27 land 31)

let create ?(levels = 6) ~dummy () =
  let levels = max 1 (min 7 levels) in
  let cap = 1024 in
  let nexts = Array.init cap (fun i -> if i = cap - 1 then -1 else i + 1) in
  {
    levels;
    horizon = 1 lsl (8 * levels);
    dummy;
    times = Array.make cap 0;
    seqs = Array.make cap 0;
    payloads = Array.make cap dummy;
    nexts;
    gens = Array.make cap 0;
    canceled = Bytes.make cap '\000';
    cap;
    free = 0;
    next_seq = 0;
    heads = Array.make (levels * slots) (-1);
    tails = Array.make (levels * slots) (-1);
    bits = Array.make (levels * words) 0;
    cur = 0;
    live = 0;
    far = Heap.create ();
    min_valid = false;
    min_src = -1;
    min_slot = 0;
    min_time = 0;
    n_cascaded = 0;
    n_far = 0;
    n_promoted = 0;
  }

let size t = t.live
let is_empty t = t.live = 0
let stats t = { cascaded = t.n_cascaded; far_pushed = t.n_far; promoted = t.n_promoted }

let grow t =
  let cap' = min (t.cap * 2) max_pool in
  if cap' = t.cap then invalid_arg "Timer_wheel: event pool exhausted";
  let extend a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 t.cap;
    a'
  in
  t.times <- extend t.times 0;
  t.seqs <- extend t.seqs 0;
  t.payloads <- extend t.payloads t.dummy;
  t.gens <- extend t.gens 0;
  let nexts' = Array.make cap' (-1) in
  Array.blit t.nexts 0 nexts' 0 t.cap;
  for i = t.cap to cap' - 1 do
    nexts'.(i) <- (if i = cap' - 1 then -1 else i + 1)
  done;
  t.nexts <- nexts';
  let c = Bytes.make cap' '\000' in
  Bytes.blit t.canceled 0 c 0 t.cap;
  t.canceled <- c;
  t.free <- t.cap;
  t.cap <- cap'

let alloc t =
  if t.free = -1 then grow t;
  let idx = t.free in
  t.free <- t.nexts.(idx);
  idx

(* Return a fired/cancelled pool entry to the free list; its generation
   bump is what invalidates outstanding tokens. *)
let reclaim t idx =
  t.gens.(idx) <- t.gens.(idx) + 1;
  Bytes.unsafe_set t.canceled idx '\000';
  t.payloads.(idx) <- t.dummy;
  t.nexts.(idx) <- t.free;
  t.free <- idx

let is_canceled t idx = Bytes.unsafe_get t.canceled idx = '\001'

(* Level of an event [d] = time lxor cur ahead of the cursor
   (precondition: 0 <= d < horizon). Top-level recursion: nested
   [let rec] closures capturing locals would allocate on every call,
   and this sits on the pop/push hot path. *)
let rec level_go d last k =
  if d < 1 lsl (8 * (k + 1)) || k = last then k else level_go d last (k + 1)

let level_of t d = level_go d (t.levels - 1) 0

let set_bit t level slot =
  let w = (level * words) + (slot lsr 5) in
  t.bits.(w) <- t.bits.(w) lor (1 lsl (slot land 31))

let clear_bit t level slot =
  let w = (level * words) + (slot lsr 5) in
  t.bits.(w) <- t.bits.(w) land lnot (1 lsl (slot land 31))

(* First occupied slot index >= [from] at [level], or -1. *)
let rec scan_go bits base from w first =
  if w = words then -1
  else begin
    let x = Array.unsafe_get bits (base + w) in
    let x = if first then x land (-1 lsl (from land 31)) else x in
    if x <> 0 then (w lsl 5) + ctz32 x else scan_go bits base from (w + 1) false
  end

let scan t level from =
  if from > slots - 1 then -1
  else scan_go t.bits (level * words) from (from lsr 5) true

let append_chain t level slot idx =
  let s = (level * slots) + slot in
  t.nexts.(idx) <- -1;
  let tl = t.tails.(s) in
  if tl = -1 then begin
    t.heads.(s) <- idx;
    t.tails.(s) <- idx;
    set_bit t level slot
  end
  else begin
    t.nexts.(tl) <- idx;
    t.tails.(s) <- idx
  end

(* Insert into the wheel proper.
   Precondition: times.(idx) >= cur && times.(idx) lxor cur < horizon. *)
let insert_wheel t idx =
  let d = t.times.(idx) lxor t.cur in
  let k = level_of t d in
  append_chain t k ((t.times.(idx) lsr (8 * k)) land (slots - 1)) idx

(* Cursor enters block [slot] of [level]: detach the chain and
   redistribute each entry one or more levels down. The destination
   slots are empty (lower levels are exhausted before the cursor moves
   up a block), and redistribution preserves chain order, so equal-time
   FIFO order survives structurally. *)
let rec cascade_chain t idx =
  if idx <> -1 then begin
    let nxt = t.nexts.(idx) in
    if is_canceled t idx then reclaim t idx
    else begin
      insert_wheel t idx;
      t.n_cascaded <- t.n_cascaded + 1
    end;
    cascade_chain t nxt
  end

let cascade t level slot =
  let s = (level * slots) + slot in
  let chain = t.heads.(s) in
  t.heads.(s) <- -1;
  t.tails.(s) <- -1;
  clear_bit t level slot;
  let mask_high = -1 lsl (8 * (level + 1)) in
  t.cur <- (t.cur land mask_high) lor (slot lsl (8 * level));
  cascade_chain t chain

(* Peek the far tier's live minimum, lazily reclaiming cancelled
   entries on the way (popping the top is fine for those, but a live top
   must stay put: re-pushing would give it a fresh heap sequence number
   and lose the FIFO tie against equal-time siblings). Returns the pool
   idx, or -1. *)
let rec far_top t =
  match Heap.peek t.far with
  | None -> -1
  | Some (_, idx) ->
    if is_canceled t idx then begin
      ignore (Heap.pop t.far);
      reclaim t idx;
      far_top t
    end
    else idx

(* Drain the far tier into the wheel: everything at or ahead of the new
   cursor and inside the horizon. Called with the wheel empty. *)
let rec promote t =
  match Heap.peek_time t.far with
  | Some tm when tm >= t.cur && tm lxor t.cur < t.horizon ->
    let _, idx = match Heap.pop t.far with Some e -> e | None -> assert false in
    if is_canceled t idx then reclaim t idx
    else begin
      insert_wheel t idx;
      t.n_promoted <- t.n_promoted + 1
    end;
    promote t
  | _ -> ()

(* Find the wheel's earliest live event, cascading as needed, and
   return its chain head's pool idx (-1 when the wheel tier is empty).
   Top-level mutual recursion, same allocation argument as [level_go]. *)
let rec wheel_min t =
  let s = scan t 0 (t.cur land (slots - 1)) in
  if s >= 0 then norm t s else wheel_up t 1

(* Normalize level-0 slot [s]: drop cancelled entries off the chain
   head. *)
and norm t s =
  let h = t.heads.(s) in
  if h = -1 then begin
    t.tails.(s) <- -1;
    clear_bit t 0 s;
    wheel_min t
  end
  else if is_canceled t h then begin
    t.heads.(s) <- t.nexts.(h);
    reclaim t h;
    norm t s
  end
  else h

and wheel_up t k =
  if k = t.levels then -1
  else begin
    let s = scan t k ((t.cur lsr (8 * k)) land (slots - 1)) in
    if s >= 0 then begin
      cascade t k s;
      wheel_min t
    end
    else wheel_up t (k + 1)
  end

(* Pick the overall minimum between the wheel tier and the far tier
   (a behind-cursor far entry wins; an equal-time one loses the FIFO
   tie on sequence number). Precondition: live > 0. *)
let rec settle t =
  let h = wheel_min t in
  if h >= 0 then begin
    let f = far_top t in
    if
      f >= 0
      && (t.times.(f) < t.times.(h)
         || (t.times.(f) = t.times.(h) && t.seqs.(f) < t.seqs.(h)))
    then begin
      t.min_src <- 1;
      t.min_time <- t.times.(f)
    end
    else begin
      t.min_src <- 0;
      t.min_slot <- t.times.(h) land (slots - 1);
      t.min_time <- t.times.(h)
    end
  end
  else begin
    let f = far_top t in
    if f < 0 then assert false (* live > 0 guarantees an event *)
    else if t.times.(f) < t.cur then begin
      (* behind-cursor backlog: serve straight from the heap *)
      t.min_src <- 1;
      t.min_time <- t.times.(f)
    end
    else begin
      t.cur <- t.times.(f);
      promote t;
      settle t
    end
  end

(* Establish the cached minimum. Precondition: live > 0. *)
let ensure_min t =
  if not t.min_valid then begin
    settle t;
    t.min_valid <- true
  end

(* Remove the minimum event from the structure and return its pool idx
   (not yet reclaimed — caller reads the fields first). *)
let take_min t =
  ensure_min t;
  t.min_valid <- false;
  if t.min_src = 1 then
    match Heap.pop t.far with
    | Some (_, idx) -> idx
    | None -> assert false
  else begin
    let s = t.min_slot in
    let h = t.heads.(s) in
    let nxt = t.nexts.(h) in
    t.heads.(s) <- nxt;
    if nxt = -1 then begin
      t.tails.(s) <- -1;
      clear_bit t 0 s
    end;
    t.cur <- t.times.(h);
    h
  end

let push t time v =
  if time < 0 then invalid_arg "Timer_wheel.push: negative time";
  let idx = alloc t in
  t.times.(idx) <- time;
  t.seqs.(idx) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.payloads.(idx) <- v;
  if time >= t.cur && time lxor t.cur < t.horizon then insert_wheel t idx
  else begin
    Heap.push t.far time idx;
    t.n_far <- t.n_far + 1
  end;
  t.live <- t.live + 1;
  (* a later-or-equal event can never displace the cached minimum
     (equal time loses the FIFO tie), so keep the cache warm *)
  if t.min_valid && not (t.min_src >= 0 && time >= t.min_time) then t.min_valid <- false;
  (t.gens.(idx) lsl token_bits) lor idx

let cancel t tok =
  let idx = tok land (max_pool - 1) in
  let gen = tok lsr token_bits in
  if idx >= t.cap || t.gens.(idx) <> gen || is_canceled t idx then false
  else begin
    (* unlinking a singly-linked chain is O(n); mark instead and let the
       scan/cascade/promotion paths reclaim lazily *)
    Bytes.unsafe_set t.canceled idx '\001';
    t.live <- t.live - 1;
    t.min_valid <- false;
    true
  end

let next_time t =
  if t.live = 0 then no_time
  else begin
    ensure_min t;
    t.min_time
  end

let peek_time t = if t.live = 0 then None else Some (next_time t)

let pop_exn t =
  if t.live = 0 then invalid_arg "Timer_wheel.pop_exn: empty";
  let idx = take_min t in
  let v = t.payloads.(idx) in
  reclaim t idx;
  t.live <- t.live - 1;
  v

let pop t =
  if t.live = 0 then None
  else begin
    let idx = take_min t in
    let tm = t.times.(idx) in
    let v = t.payloads.(idx) in
    reclaim t idx;
    t.live <- t.live - 1;
    Some (tm, v)
  end

let clear t =
  Array.fill t.heads 0 (Array.length t.heads) (-1);
  Array.fill t.tails 0 (Array.length t.tails) (-1);
  Array.fill t.bits 0 (Array.length t.bits) 0;
  Bytes.fill t.canceled 0 t.cap '\000';
  Array.fill t.payloads 0 t.cap t.dummy;
  for i = 0 to t.cap - 1 do
    t.gens.(i) <- t.gens.(i) + 1;
    t.nexts.(i) <- (if i = t.cap - 1 then -1 else i + 1)
  done;
  t.free <- 0;
  Heap.clear t.far;
  t.cur <- 0;
  t.live <- 0;
  t.next_seq <- 0;
  t.min_valid <- false;
  t.n_cascaded <- 0;
  t.n_far <- 0;
  t.n_promoted <- 0
