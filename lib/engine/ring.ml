(* Array-backed FIFO with power-of-two capacity, used for mailbox items
   and parked-waiter queues: pushing allocates nothing in the steady
   state, unlike [Queue.t]'s cell per element, which at millions of
   frame hand-offs per run is real money. Popped slots keep their stale
   reference until overwritten — callers for whom that retention matters
   (none today: frames are pooled, wakers are transient) can store an
   explicit dummy. *)
type 'a t = { mutable arr : 'a array; mutable head : int; mutable tail : int }

let create () = { arr = [||]; head = 0; tail = 0 }
let length t = t.tail - t.head
let is_empty t = t.head = t.tail

let push t v =
  let n = Array.length t.arr in
  if t.tail - t.head = n then begin
    (* Full (or empty [||]): regrow, compacting to the front. The pushed
       value doubles as the [Array.make] filler so no dummy is needed. *)
    let n' = max 8 (2 * n) in
    let a = Array.make n' v in
    for i = 0 to n - 1 do
      a.(i) <- t.arr.((t.head + i) land (n - 1))
    done;
    t.arr <- a;
    t.head <- 0;
    t.tail <- n
  end;
  t.arr.(t.tail land (Array.length t.arr - 1)) <- v;
  t.tail <- t.tail + 1

exception Empty

let pop t =
  if t.head = t.tail then raise Empty;
  let v = t.arr.(t.head land (Array.length t.arr - 1)) in
  t.head <- t.head + 1;
  v

let peek t =
  if t.head = t.tail then raise Empty;
  t.arr.(t.head land (Array.length t.arr - 1))
