(* Splitmix64, with the 64-bit state held as two untagged 32-bit
   halves. A [mutable state : int64] field re-boxes the state on every
   draw (plus one box for the mixed result), which at one-plus draw per
   simulator event is a top allocation site; splitting the state into
   two immediate ints and keeping every [Int64] value let-bound inside
   a single function body lets the native compiler unbox the whole
   advance+mix pipeline, so [int]/[bool]/[float] draws allocate nothing
   (beyond [float]'s boxed result). The advance+mix code is deliberately
   duplicated in each draw function: routing it through a shared helper
   would re-box the int64 at the call boundary. The generated sequence
   is bit-identical to the boxed implementation. *)
type t = { mutable hi : int; mutable lo : int }
(* invariant: 0 <= hi < 2^32, 0 <= lo < 2^32; state = hi << 32 | lo *)

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let of_state s =
  { hi = Int64.to_int (Int64.shift_right_logical s 32);
    lo = Int64.to_int (Int64.logand s 0xFFFFFFFFL) }

let state t =
  Int64.logor (Int64.shift_left (Int64.of_int t.hi) 32) (Int64.of_int t.lo)

let create seed = of_state (mix64 (Int64.of_int seed))

let bits64 t =
  let s = Int64.add (state t) golden_gamma in
  t.hi <- Int64.to_int (Int64.shift_right_logical s 32);
  t.lo <- Int64.to_int (Int64.logand s 0xFFFFFFFFL);
  mix64 s

let split t =
  let seed = bits64 t in
  of_state (mix64 seed)

let copy t = { hi = t.hi; lo = t.lo }

(* Advance + mix + truncate in one body (see module comment). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let s =
    Int64.add
      (Int64.logor (Int64.shift_left (Int64.of_int t.hi) 32) (Int64.of_int t.lo))
      golden_gamma
  in
  t.hi <- Int64.to_int (Int64.shift_right_logical s 32);
  t.lo <- Int64.to_int (Int64.logand s 0xFFFFFFFFL);
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  (* Use the top bits to avoid modulo bias in common small-bound cases;
     for simulation purposes modulo of a mixed 62-bit value is fine. *)
  let v = Int64.to_int (Int64.shift_right_logical z 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let s =
    Int64.add
      (Int64.logor (Int64.shift_left (Int64.of_int t.hi) 32) (Int64.of_int t.lo))
      golden_gamma
  in
  t.hi <- Int64.to_int (Int64.shift_right_logical s 32);
  t.lo <- Int64.to_int (Int64.logand s 0xFFFFFFFFL);
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  (* 53 random bits -> [0,1) *)
  let v = Int64.to_int (Int64.shift_right_logical z 11) in
  bound *. (float_of_int v /. 9007199254740992.0)

let bool t =
  let s =
    Int64.add
      (Int64.logor (Int64.shift_left (Int64.of_int t.hi) 32) (Int64.of_int t.lo))
      golden_gamma
  in
  t.hi <- Int64.to_int (Int64.shift_right_logical s 32);
  t.lo <- Int64.to_int (Int64.logand s 0xFFFFFFFFL);
  let z = Int64.(mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land 1 = 1

let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(* YCSB-style Zipfian generator (Gray et al., "Quickly generating
   billion-record synthetic databases").  Constants are recomputed per
   call only when [n] or [theta] change, cached in a small memo. *)
type zipf_consts = { zn : int; ztheta : float; zetan : float; zeta2 : float }

let zipf_cache : zipf_consts option ref = ref None

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !sum

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  let consts =
    match !zipf_cache with
    | Some c when c.zn = n && c.ztheta = theta -> c
    | _ ->
      let c = { zn = n; ztheta = theta; zetan = zeta n theta; zeta2 = zeta 2 theta } in
      zipf_cache := Some c;
      c
  in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (consts.zeta2 /. consts.zetan))
  in
  let u = float t 1.0 in
  let uz = u *. consts.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 theta then 1
  else
    let r =
      float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha
    in
    Stdlib.min (n - 1) (int_of_float r)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
