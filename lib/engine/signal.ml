module Latch = struct
  type t = {
    mutable set : bool;
    waiters : (unit -> bool) Ring.t;
    mutable reg : (unit -> bool) -> unit;
  }

  let no_reg (_ : unit -> bool) = ()

  let create () =
    let t = { set = false; waiters = Ring.create (); reg = no_reg } in
    t.reg <- (fun w -> Ring.push t.waiters w);
    t

  let set t =
    if not t.set then begin
      t.set <- true;
      while not (Ring.is_empty t.waiters) do
        ignore ((Ring.pop t.waiters) () : bool)
      done
    end

  let is_set t = t.set

  let wait t = if not t.set then Sim.park t.reg

  let on_set t f =
    if t.set then f ()
    else
      Ring.push t.waiters (fun () ->
          f ();
          true)
end

module Pulse = struct
  type t = {
    waiters : (unit -> bool) Ring.t;
    mutable reg : (unit -> bool) -> unit;
  }

  let no_reg (_ : unit -> bool) = ()

  let create () =
    let t = { waiters = Ring.create (); reg = no_reg } in
    t.reg <- (fun w -> Ring.push t.waiters w);
    t

  let pulse t =
    (* Snapshot the count first: a woken process may park on the pulse
       again immediately, and it must then wait for the NEXT pulse. *)
    let n = Ring.length t.waiters in
    for _ = 1 to n do
      ignore ((Ring.pop t.waiters) () : bool)
    done

  let wait t = Sim.park t.reg

  let wait_timeout t timeout =
    let sim = Sim.self () in
    Sim.suspend (fun waker ->
        Ring.push t.waiters (fun () -> waker true);
        Sim.schedule sim
          (Time.add (Sim.now sim) timeout)
          (fun () -> ignore (waker false : bool)))
end
