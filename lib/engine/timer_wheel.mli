(** Hierarchical timer wheel: the O(1) hot-path event scheduler.

    A drop-in replacement for the binary {!Heap} on the simulation hot
    path. Events live in a hierarchy of 256-slot wheels (8 bits of the
    timestamp per level); scheduling, cancelling and firing are O(1)
    amortized, with no allocation per event once the preallocated pool
    has warmed up (event records are recycled through a free list).

    Two auxiliary tiers keep the structure fully general:

    - events beyond the wheel horizon ([256^levels] ns ahead of the
      wheel cursor) go to an overflow {!Heap} and are promoted into the
      wheel in bulk when the wheel drains down to them;
    - events behind the wheel cursor (possible when a caller peeks the
      next deadline, parks, and later schedules an earlier event — the
      [Sim.run ~until] pattern) also ride the heap and win the
      head-to-head comparison at pop time.

    Ordering contract (identical to {!Heap}): events pop in
    nondecreasing time order, and events with equal timestamps pop in
    insertion (FIFO) order — across tiers, cascades and promotions.
    [test/engine] pins this with a randomized equivalence suite against
    the reference heap. *)

type 'a t

type token
(** Handle for cancelling a scheduled event. Tokens are invalidated
    when their event fires (or is cancelled); a stale token is
    recognized and rejected. *)

val create : ?levels:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty wheel. [levels] (default 6,
    clamped to \[1, 7\]) sets the horizon: events more than
    [256^levels] ns past the cursor overflow to the far-future heap
    tier. [dummy] fills empty pool slots (it is never returned). *)

val push : 'a t -> Time.t -> 'a -> token
(** [push w time v] schedules [v] at absolute time [time] (≥ 0) and
    returns a cancellation token. *)

val cancel : 'a t -> token -> bool
(** [cancel w tok] removes the event if it has not fired yet; returns
    [false] (and does nothing) when the event already fired, was
    already cancelled, or the token is stale. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event, or [None] if empty. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest event without removing it. *)

val no_time : Time.t
(** Sentinel returned by {!next_time} on an empty wheel ([max_int]). *)

val next_time : 'a t -> Time.t
(** Allocation-free peek: earliest timestamp, or {!no_time} when
    empty. *)

val pop_exn : 'a t -> 'a
(** Allocation-free pop of the earliest event's payload (its time is
    what {!next_time} just returned). Raises [Invalid_argument] when
    empty. *)

val size : 'a t -> int
(** Live (scheduled, not yet fired or cancelled) events. *)

val is_empty : 'a t -> bool
val clear : 'a t -> unit

(** {1 Introspection} *)

type stats = {
  cascaded : int;  (** events redistributed to a lower level *)
  far_pushed : int;  (** events that entered the heap tier *)
  promoted : int;  (** heap-tier events bulk-moved into the wheel *)
}

val stats : 'a t -> stats
(** Cumulative structural counters (monotonic since [create]/[clear]);
    used by the engine bench and the edge-case tests. *)
