(** Binary min-heap of timestamped events.

    Events with equal timestamps pop in insertion (FIFO) order, which keeps
    the simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> Time.t -> 'a -> unit
(** [push h time v] inserts [v] with priority [time]. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest event, or [None] if empty. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest event without removing it. *)

val peek : 'a t -> (Time.t * 'a) option
(** Earliest event without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
