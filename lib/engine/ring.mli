(** Array-backed FIFO (power-of-two ring) that allocates only on
    growth — the zero-steady-state-allocation replacement for [Queue.t]
    on the mailbox/waiter hot paths. Not thread-safe; single-domain use
    only, like the rest of the engine. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail; amortized allocation-free. *)

exception Empty

val pop : 'a t -> 'a
(** Remove and return the head. Raises {!Empty} when empty. Popped
    slots retain their reference until overwritten by later pushes. *)

val peek : 'a t -> 'a
(** Head without removing it. Raises {!Empty} when empty. *)
