type 'a entry = { time : Time.t; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { arr = Array.make 64 None; len = 0; next_seq = 0 }

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get h i =
  match h.arr.(i) with
  | Some e -> e
  | None -> assert false

let grow h =
  let arr = Array.make (2 * Array.length h.arr) None in
  Array.blit h.arr 0 arr 0 h.len;
  h.arr <- arr

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get h i) (get h parent) then begin
      let tmp = h.arr.(i) in
      h.arr.(i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && entry_lt (get h l) (get h !smallest) then smallest := l;
  if r < h.len && entry_lt (get h r) (get h !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(!smallest);
    h.arr.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h time value =
  if h.len = Array.length h.arr then grow h;
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.arr.(h.len) <- Some { time; seq; value };
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = get h 0 in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    h.arr.(h.len) <- None;
    if h.len > 0 then sift_down h 0;
    Some (top.time, top.value)
  end

let peek_time h = if h.len = 0 then None else Some (get h 0).time

let peek h =
  if h.len = 0 then None
  else begin
    let top = get h 0 in
    Some (top.time, top.value)
  end
let size h = h.len
let is_empty h = h.len = 0

let clear h =
  Array.fill h.arr 0 h.len None;
  h.len <- 0
