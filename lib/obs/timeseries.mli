(** Deterministic in-run time series over the {!Metrics} registry.

    A sampler sweep scrapes every (filtered) metric key into a bounded
    per-key ring plus multi-resolution rollup tiers: tier 0 holds raw
    samples, tier [k] holds buckets aggregating [10^k] samples as
    {count, min, mean, max}. Memory is capped — O(keys × tiers ×
    capacity) — so the sampler is safe at fleet scale and for
    arbitrarily long runs; when a ring wraps, fine-grained history is
    evicted first while coarser tiers keep a proportionally longer
    horizon.

    {b Determinism contract.} Sampling is driven by the virtual clock
    (a recurring [Sim] job installed via [Sim.create ?timeseries]), and
    every sweep and export visits keys in sorted order. A fixed seed
    plus a fixed [interval_ns] therefore produces byte-identical
    {!to_csv} and {!to_openmetrics} output across runs — tests pin
    this. Timestamps are integer nanoseconds of virtual time; this
    module sits below the engine and never reads wall-clock time. *)

type t

val rollup_factor : int
(** Buckets of tier [k+1] each aggregate this many tier-[k] buckets
    (10). *)

val create :
  ?interval_ns:int ->
  ?capacity:int ->
  ?tiers:int ->
  ?max_keys:int ->
  ?filter:(string -> bool) ->
  Metrics.t ->
  t
(** [create metrics] makes an idle sampler over [metrics].

    - [interval_ns] — intended sampling period (default 1s). The
      sampler does not schedule itself; the engine reads this via
      {!interval_ns} when installing the recurring job.
    - [capacity] — ring size per tier per key (default 360).
    - [tiers] — raw tier + rollup tiers (default 3: raw, ×10, ×100).
    - [max_keys] — cap on distinct keys tracked; keys first seen after
      the cap are counted in {!dropped_keys} but not stored, so one
      per-machine label explosion cannot evict fleet-level series.
    - [filter] — key predicate applied before sampling (and before
      derived gauges are evaluated).

    @raise Invalid_argument on non-positive [interval_ns]/[tiers]/
    [max_keys] or [capacity < 10]. *)

val sample : t -> now:int -> unit
(** Run one sweep at virtual time [now]: scrape the registry, append
    to every tracked series, then invoke {!on_sample} subscribers in
    registration order. Instruments are collapsed to one float per key
    by {!Metrics.scalar} (counter/gauge value, histogram count, rate
    total). *)

val on_sample : t -> (now:int -> unit) -> unit
(** Subscribe to sweep completion (watchdog evaluation, dashboard
    refresh). Subscribers run in registration order. *)

val interval_ns : t -> int

val sweeps : t -> int
(** Number of sweeps run so far. *)

val last_sweep_at : t -> int
(** Virtual time of the most recent sweep; [0] before the first. *)

val nkeys : t -> int
(** Distinct keys currently tracked. *)

val dropped_keys : t -> int
(** Distinct keys refused because of [max_keys]. *)

val keys : t -> string list
(** Tracked keys in ascending order. *)

(** Latest state of one series, as the watchdog engine reads it. *)
type status = {
  s_count : int;  (** samples recorded ever *)
  s_last : int * float;  (** most recent (time, value) *)
  s_prev : (int * float) option;  (** previous sample, when any *)
  s_same_run : int;
      (** length of the trailing run of equal values (≥ 1) *)
  s_first_sweep : int;  (** sweep number that first saw this key *)
}

val status : t -> string -> status option
(** [None] for untracked keys. *)

val raw : ?n:int -> t -> string -> (int * float) list
(** Most recent raw samples (tier 0) oldest-first, at most [n]
    (default: whole ring). *)

val to_csv : t -> string
(** All buckets of all tiers, sorted by key then tier then time:
    [key,tier,t_ns,count,min,mean,max] rows under a [#] metadata line
    and a header row. Partially-filled rollup accumulators are not
    exported. *)

val to_openmetrics : t -> string
(** OpenMetrics text exposition: the latest sample of each key as a
    gauge, names prefixed [bmcast_] and sanitized to [[a-zA-Z0-9_:]],
    labels recovered from [|k=v] key suffixes, timestamps in seconds,
    terminated by [# EOF]. *)

val timeline_json : ?max_points:int -> t -> string
(** Compact JSON object for embedding in benchmark files:
    [{"interval_ns":..,"sweeps":..,"series":{key:{"tier":k,"points":
    [[t_ns,mean],..]},..}}]. Per key, uses the finest tier that still
    covers the whole run within [max_points] (default 120) buckets. *)

val write_csv : t -> string -> unit
val write_openmetrics : t -> string -> unit

val fmt_float : float -> string
(** The byte-stable float formatting used by the exports (integers
    without a fraction, otherwise [%.9g]); shared with the watchdog's
    alert messages. *)
