(* Provisioning analytics: folds a trace stream into per-machine
   boot-stage breakdowns, fleet-wide percentile tables, critical-path
   attribution and SLO evaluation.

   Input convention (see DESIGN.md §10): instrumented subsystems emit
   complete spans in category "boot" whose [name] is a pipeline stage
   and whose args carry [("m", Str machine)]. The stages tile each
   machine's boot timeline sequentially (queue → vmm_init → discover →
   copy → devirt), so per machine the stage durations sum to the boot
   total — the invariant the test suite checks. Spans in other
   categories tagged with both "m" and "stage" args are folded into a
   per-operation table (AoE commands, copy-on-read redirects, chunk
   fetches) without entering the stage pipeline.

   Everything here derives from virtual-time trace events only, so the
   outputs — including [to_json] — are byte-identical across same-seed
   runs. *)

let stage_order = [ "queue"; "vmm_init"; "discover"; "copy"; "devirt" ]

let stage_rank s =
  let rec idx i = function
    | [] -> List.length stage_order
    | x :: _ when String.equal x s -> i
    | _ :: tl -> idx (i + 1) tl
  in
  idx 0 stage_order

let compare_stages a b =
  match compare (stage_rank a) (stage_rank b) with
  | 0 -> String.compare a b
  | c -> c

type machine = {
  mname : string;
  mutable stages : (string * int) list;  (* stage -> total ns, unordered *)
}

type op = {
  okey : string;  (* "cat.name" *)
  hist : Stats.Histogram.t;  (* durations, ms *)
  mutable ototal_ns : int;
}

type t = {
  slo_s : float;
  machines : (string, machine) Hashtbl.t;
  stage_hists : (string, Stats.Histogram.t) Hashtbl.t;  (* ms *)
  ops : (string, op) Hashtbl.t;
}

let create ?(slo_s = 120.0) () =
  { slo_s;
    machines = Hashtbl.create 64;
    stage_hists = Hashtbl.create 8;
    ops = Hashtbl.create 16 }

let ns_to_ms ns = float_of_int ns /. 1e6

let machine t name =
  match Hashtbl.find_opt t.machines name with
  | Some m -> m
  | None ->
    let m = { mname = name; stages = [] } in
    Hashtbl.add t.machines name m;
    m

let stage_hist t stage =
  match Hashtbl.find_opt t.stage_hists stage with
  | Some h -> h
  | None ->
    let h = Stats.Histogram.create () in
    Hashtbl.add t.stage_hists stage h;
    h

let op t key =
  match Hashtbl.find_opt t.ops key with
  | Some o -> o
  | None ->
    let o = { okey = key; hist = Stats.Histogram.create (); ototal_ns = 0 } in
    Hashtbl.add t.ops key o;
    o

let arg_str args k =
  match List.assoc_opt k args with
  | Some (Trace.Str s) -> Some s
  | _ -> None

let add_event t (ev : Trace.event) =
  match ev.Trace.phase with
  | Trace.P_instant | Trace.P_counter -> ()
  | Trace.P_span -> (
    match arg_str ev.Trace.args "m" with
    | None -> ()
    | Some mname ->
      if String.equal ev.Trace.cat "boot" then begin
        let m = machine t mname in
        let stage = ev.Trace.name in
        let prior =
          match List.assoc_opt stage m.stages with Some d -> d | None -> 0
        in
        m.stages <-
          (stage, prior + ev.Trace.dur) :: List.remove_assoc stage m.stages;
        Stats.Histogram.add (stage_hist t stage) (ns_to_ms ev.Trace.dur)
      end
      else
        match arg_str ev.Trace.args "stage" with
        | None -> ()
        | Some _ ->
          let o = op t (ev.Trace.cat ^ "." ^ ev.Trace.name) in
          Stats.Histogram.add o.hist (ns_to_ms ev.Trace.dur);
          o.ototal_ns <- o.ototal_ns + ev.Trace.dur)

let feed t trace = Trace.iter trace (add_event t)

let of_trace ?slo_s trace =
  let t = create ?slo_s () in
  feed t trace;
  t

let machine_count t = Hashtbl.length t.machines

let machine_names t =
  Hashtbl.fold (fun n _ l -> n :: l) t.machines []
  |> List.sort String.compare

let stage_ms t mname =
  match Hashtbl.find_opt t.machines mname with
  | None -> []
  | Some m ->
    List.map (fun (s, ns) -> (s, ns_to_ms ns)) m.stages
    |> List.sort (fun (a, _) (b, _) -> compare_stages a b)

let boot_total_ms t mname =
  match Hashtbl.find_opt t.machines mname with
  | None -> None
  | Some m ->
    Some (ns_to_ms (List.fold_left (fun acc (_, ns) -> acc + ns) 0 m.stages))

(* --- stage percentile table --- *)

type stage_row = {
  stage : string;
  count : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

let stage_rows t =
  Hashtbl.fold
    (fun stage h l ->
      { stage;
        count = Stats.Histogram.count h;
        p50_ms = Stats.Histogram.percentile h 50.0;
        p90_ms = Stats.Histogram.percentile h 90.0;
        p99_ms = Stats.Histogram.percentile h 99.0;
        max_ms = Stats.Histogram.max h }
      :: l)
    t.stage_hists []
  |> List.sort (fun a b -> compare_stages a.stage b.stage)

(* --- critical path: which stage dominated each boot --- *)

let dominant m =
  match
    List.sort
      (fun (sa, da) (sb, db) ->
        match compare db da with 0 -> compare_stages sa sb | c -> c)
      m.stages
  with
  | [] -> None
  | (s, _) :: _ -> Some s

let critical_path t =
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ m ->
      match dominant m with
      | None -> ()
      | Some s ->
        Hashtbl.replace counts s
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
    t.machines;
  Hashtbl.fold (fun s n l -> (s, n) :: l) counts []
  |> List.sort (fun (sa, na) (sb, nb) ->
         match compare nb na with 0 -> compare_stages sa sb | c -> c)

(* --- SLO evaluation --- *)

type slo = {
  target_s : float;
  boots : int;
  violations : int;
  wasted_ms : float;
      (* provisioning time spent beyond the target, summed over
         violating boots: server-ms the fleet burned past its budget *)
}

let slo t =
  let target_ms = t.slo_s *. 1000.0 in
  let boots = ref 0 and violations = ref 0 and wasted = ref 0.0 in
  Hashtbl.iter
    (fun _ m ->
      incr boots;
      let total =
        ns_to_ms (List.fold_left (fun acc (_, ns) -> acc + ns) 0 m.stages)
      in
      if total > target_ms then begin
        incr violations;
        wasted := !wasted +. (total -. target_ms)
      end)
    t.machines;
  { target_s = t.slo_s;
    boots = !boots;
    violations = !violations;
    wasted_ms = !wasted }

(* --- per-operation table --- *)

type op_row = {
  opname : string;
  ocount : int;
  op50_ms : float;
  op99_ms : float;
  ototal_ms : float;
}

let op_rows t =
  Hashtbl.fold
    (fun _ o l ->
      { opname = o.okey;
        ocount = Stats.Histogram.count o.hist;
        op50_ms = Stats.Histogram.percentile o.hist 50.0;
        op99_ms = Stats.Histogram.percentile o.hist 99.0;
        ototal_ms = ns_to_ms o.ototal_ns }
      :: l)
    t.ops []
  |> List.sort (fun a b -> String.compare a.opname b.opname)

(* --- rendering --- *)

(* Fixed-width decimal rendering: derived from integer virtual time, so
   deterministic (no %g rounding surprises across float paths). *)
let ms b v = Buffer.add_string b (Printf.sprintf "%.3f" v)

let to_text t =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "boot-stage breakdown (%d machines)\n" (machine_count t));
  Buffer.add_string b
    (Printf.sprintf "  %-10s %8s %12s %12s %12s %12s\n" "stage" "boots"
       "p50_ms" "p90_ms" "p99_ms" "max_ms");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-10s %8d %12.3f %12.3f %12.3f %12.3f\n" r.stage
           r.count r.p50_ms r.p90_ms r.p99_ms r.max_ms))
    (stage_rows t);
  Buffer.add_string b "critical path (stage dominating each boot)\n";
  List.iter
    (fun (stage, n) ->
      Buffer.add_string b (Printf.sprintf "  %-10s %8d boots\n" stage n))
    (critical_path t);
  let s = slo t in
  Buffer.add_string b
    (Printf.sprintf
       "slo: target %.1fs, %d/%d boots in violation, wasted %.3f server-ms\n"
       s.target_s s.violations s.boots s.wasted_ms);
  (match op_rows t with
  | [] -> ()
  | ops ->
    Buffer.add_string b "per-operation latency\n";
    Buffer.add_string b
      (Printf.sprintf "  %-24s %10s %12s %12s %14s\n" "op" "count" "p50_ms"
         "p99_ms" "total_ms");
    List.iter
      (fun r ->
        Buffer.add_string b
          (Printf.sprintf "  %-24s %10d %12.3f %12.3f %14.3f\n" r.opname
             r.ocount r.op50_ms r.op99_ms r.ototal_ms))
      ops);
  Buffer.contents b

let to_json t =
  let b = Buffer.create 2048 in
  Buffer.add_string b (Printf.sprintf "{\"machines\":%d" (machine_count t));
  Buffer.add_string b ",\"stages\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"stage\":\"%s\",\"count\":%d,\"p50_ms\":" r.stage
           r.count);
      ms b r.p50_ms;
      Buffer.add_string b ",\"p90_ms\":";
      ms b r.p90_ms;
      Buffer.add_string b ",\"p99_ms\":";
      ms b r.p99_ms;
      Buffer.add_string b ",\"max_ms\":";
      ms b r.max_ms;
      Buffer.add_char b '}')
    (stage_rows t);
  Buffer.add_string b "],\"critical_path\":[";
  List.iteri
    (fun i (stage, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"stage\":\"%s\",\"boots\":%d}" stage n))
    (critical_path t);
  let s = slo t in
  Buffer.add_string b
    (Printf.sprintf
       "],\"slo\":{\"target_s\":%.1f,\"boots\":%d,\"violations\":%d,\"wasted_ms\":"
       s.target_s s.boots s.violations);
  ms b s.wasted_ms;
  Buffer.add_string b "},\"ops\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"op\":\"%s\",\"count\":%d,\"p50_ms\":" r.opname
           r.ocount);
      ms b r.op50_ms;
      Buffer.add_string b ",\"p99_ms\":";
      ms b r.op99_ms;
      Buffer.add_string b ",\"total_ms\":";
      ms b r.ototal_ms;
      Buffer.add_char b '}')
    (op_rows t);
  Buffer.add_string b "]}";
  Buffer.contents b
