(* Deterministic in-memory tracer.

   Events carry virtual-time timestamps supplied by a clock callback the
   simulation installs ([set_clock]); the tracer itself never reads wall
   clocks, hashes addresses, or otherwise depends on allocation order,
   so identical seeds produce byte-identical exports. Recording is a
   store into a bounded ring (oldest events are overwritten once
   [capacity] is reached — deterministically, since the event stream
   itself is deterministic). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type args = (string * value) list

type phase = P_span | P_instant | P_counter

type event = {
  phase : phase;
  cat : string;
  name : string;
  ts : int;  (* virtual ns *)
  dur : int;  (* spans only *)
  value : float;  (* counters only *)
  args : args;
}

type t = {
  enabled : bool;
  capacity : int;
  mutable events : event array;
  mutable len : int;  (* live events (<= capacity) *)
  mutable head : int;  (* oldest slot once the ring is full *)
  mutable dropped : int;
  cats : (string, unit) Hashtbl.t option;  (* [None] = every category *)
  mutable now : unit -> int;
  mutable sample_every : int;  (* record 1 in N sampled hot-path events *)
  mutable sample_tick : int;
}

let no_clock () = 0

let make_tracer ~enabled ~capacity ~cats ~sample_every =
  { enabled;
    capacity;
    events = [||];
    len = 0;
    head = 0;
    dropped = 0;
    cats;
    now = no_clock;
    sample_every;
    sample_tick = 0 }

let null = make_tracer ~enabled:false ~capacity:0 ~cats:None ~sample_every:1

let create ?(capacity = 1 lsl 20) ?categories ?(sample_every = 1) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if sample_every < 1 then
    invalid_arg "Trace.create: sample_every must be >= 1";
  let cats =
    Option.map
      (fun names ->
        let tbl = Hashtbl.create 8 in
        List.iter (fun c -> Hashtbl.replace tbl c ()) names;
        tbl)
      categories
  in
  make_tracer ~enabled:true ~capacity ~cats ~sample_every

let enabled t = t.enabled

let set_clock t now = if t.enabled then t.now <- now

let cat_enabled t cat =
  match t.cats with None -> true | Some tbl -> Hashtbl.mem tbl cat

let on t ~cat = t.enabled && cat_enabled t cat

let sample_every t = t.sample_every

let set_sample_every t n =
  if n < 1 then invalid_arg "Trace.set_sample_every: must be >= 1";
  if t.enabled then begin
    t.sample_every <- n;
    t.sample_tick <- 0
  end

(* Counter-based (hence deterministic) downsampling for hot-path call
   sites: every [sample_every]-th sampled event of an enabled category
   is recorded. The tick only advances on category hits so that
   changing the category filter never re-phases unrelated streams. *)
let sample t ~cat =
  t.enabled && cat_enabled t cat
  && begin
       let hit = t.sample_tick = 0 in
       t.sample_tick <- (t.sample_tick + 1) mod t.sample_every;
       hit
     end

let record t ev =
  if t.len < t.capacity then begin
    if t.len = Array.length t.events then begin
      let grown = Array.make (min t.capacity (max 64 (2 * t.len))) ev in
      Array.blit t.events 0 grown 0 t.len;
      t.events <- grown
    end;
    t.events.(t.len) <- ev;
    t.len <- t.len + 1
  end
  else begin
    t.events.(t.head) <- ev;
    t.head <- (t.head + 1) mod t.capacity;
    t.dropped <- t.dropped + 1
  end

let event_count t = t.len
let dropped t = t.dropped

(* Oldest-to-newest iteration over the ring. *)
let iter t f =
  for i = 0 to t.len - 1 do
    f t.events.((t.head + i) mod max 1 (Array.length t.events))
  done

let no_args = []

let complete t ~cat ?(args = no_args) name ~ts =
  if on t ~cat then
    record t
      { phase = P_span; cat; name; ts; dur = t.now () - ts; value = 0.0; args }

let span t ~cat ?args name f =
  if not (on t ~cat) then f ()
  else begin
    let ts = t.now () in
    Fun.protect
      ~finally:(fun () ->
        let args = match args with None -> no_args | Some g -> g () in
        complete t ~cat ~args name ~ts)
      f
  end

let instant t ~cat ?(args = no_args) name =
  if on t ~cat then
    record t
      { phase = P_instant; cat; name; ts = t.now (); dur = 0; value = 0.0; args }

let counter t ~cat name v =
  if on t ~cat then
    record t
      { phase = P_counter;
        cat;
        name;
        ts = t.now ();
        dur = 0;
        value = v;
        args = no_args }

(* --- export --- *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_float b v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else Buffer.add_string b (Printf.sprintf "%.9g" v)

let buf_add_value b = function
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> buf_add_float b f
  | Str s -> buf_add_json_string b s
  | Bool x -> Buffer.add_string b (if x then "true" else "false")

let buf_add_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      buf_add_json_string b k;
      Buffer.add_char b ':';
      buf_add_value b v)
    args;
  Buffer.add_char b '}'

(* Chrome's [ts]/[dur] are microseconds; keep full ns precision with a
   fixed-point fraction so the rendering is deterministic. *)
let buf_add_us b ns =
  Buffer.add_string b (Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000))

(* One track (Perfetto "thread") per category, numbered in order of
   first appearance in the event stream — stable across runs because the
   stream itself is deterministic. *)
let category_tracks t =
  let order = ref [] and n = ref 0 in
  iter t (fun ev ->
      if not (List.mem_assoc ev.cat !order) then begin
        order := (ev.cat, !n) :: !order;
        incr n
      end);
  List.rev !order

let tid_of tracks cat = List.assoc cat tracks

let buf_add_event b ~tracks ev =
  Buffer.add_string b "{\"ph\":";
  (match ev.phase with
  | P_span -> Buffer.add_string b "\"X\""
  | P_instant -> Buffer.add_string b "\"i\",\"s\":\"t\""
  | P_counter -> Buffer.add_string b "\"C\"");
  Buffer.add_string b ",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int (tid_of tracks ev.cat));
  Buffer.add_string b ",\"cat\":";
  buf_add_json_string b ev.cat;
  Buffer.add_string b ",\"name\":";
  buf_add_json_string b ev.name;
  Buffer.add_string b ",\"ts\":";
  buf_add_us b ev.ts;
  (match ev.phase with
  | P_span ->
    Buffer.add_string b ",\"dur\":";
    buf_add_us b ev.dur
  | P_instant | P_counter -> ());
  (match ev.phase with
  | P_counter ->
    Buffer.add_string b ",\"args\":{\"value\":";
    buf_add_float b ev.value;
    Buffer.add_char b '}'
  | P_span | P_instant ->
    if ev.args <> [] then begin
      Buffer.add_string b ",\"args\":";
      buf_add_args b ev.args
    end);
  Buffer.add_char b '}'

let to_chrome t =
  let b = Buffer.create (4096 + (96 * t.len)) in
  let tracks = category_tracks t in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"bmcast\"}}";
  List.iter
    (fun (cat, tid) ->
      Buffer.add_string b
        (Printf.sprintf
           ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":"
           tid);
      buf_add_json_string b cat;
      Buffer.add_string b "}}")
    tracks;
  iter t (fun ev ->
      Buffer.add_string b ",\n";
      buf_add_event b ~tracks ev);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let to_jsonl t =
  let b = Buffer.create (4096 + (96 * t.len)) in
  let tracks = category_tracks t in
  iter t (fun ev ->
      buf_add_event b ~tracks ev;
      Buffer.add_char b '\n');
  Buffer.contents b

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_chrome t path = write_file path (to_chrome t)
let write_jsonl t path = write_file path (to_jsonl t)
