(** Declarative fleet-health watchdogs over sampled metrics.

    A watchdog holds a set of rules evaluated after every
    {!Timeseries} sweep ({!attach} subscribes it). Each rule matches
    every tracked key that starts with its key prefix and fires an
    {!alert} once per breach episode — on the sample that completes
    the breach, re-arming only after the condition clears. Evaluation
    reads only sampled virtual-time state, so under a fixed seed every
    alert fires at the same virtual time on every run.

    Detection latency: fault injectors arm ground truth with
    {!expect}; the next alert resolves all armed expectations into
    {!detection}s carrying [alert time - fault time]. [lib/faults]
    wires this automatically, making "server crash → watchdog alert"
    a measured quantity bounded by the sampling interval. *)

type t

type cmp = Above | Below

type rule

val threshold : ?hold:int -> name:string -> key:string -> cmp -> float -> rule
(** Fire when the sampled value is above/below the bound for [hold]
    consecutive samples (default 1). [key] matches its exact metric
    name with or without labels ([vblade.up] matches
    [vblade.up|server=x] but not [vblade.uplink_bytes]); a key ending
    in ['.'] or ['|'] is a free prefix. The rule applies to every
    matching series independently.
    @raise Invalid_argument when [hold < 1]. *)

val rate_of_change : name:string -> key:string -> cmp -> float -> rule
(** Fire when the per-second derivative between the two most recent
    samples is above/below the bound. *)

val absent : ?after:int -> name:string -> key:string -> unit -> rule
(** Fire when {e no} tracked key matches the prefix for [after]
    consecutive sweeps (default 3) — the "metric never showed up /
    vanished" detector. @raise Invalid_argument when [after < 1]. *)

val stale : ?after:int -> name:string -> key:string -> unit -> rule
(** Fire when a matching series' value has not changed for [after]
    consecutive samples (default 3) — progress-stall detection for
    monotone counters. @raise Invalid_argument when [after < 2]. *)

val rule_of_string : string -> rule
(** Parse a [--rule] spec. Grammar ([NAME:] optional, defaults to the
    spec itself):
    - [NAME:KEY>VAL] / [NAME:KEY<VAL] — threshold; append [@H] to
      require [H] consecutive breaching samples.
    - [NAME:rate(KEY)>VAL] / [NAME:rate(KEY)<VAL] — rate of change
      per second.
    - [NAME:absent(KEY)@N] — no matching key for [N] sweeps.
    - [NAME:stale(KEY)@N] — value unchanged for [N] samples.
    @raise Invalid_argument on malformed specs. *)

val rule_name : rule -> string

val create : rule list -> t

val attach : t -> Timeseries.t -> unit
(** Subscribe evaluation to every sweep of the given timeseries. *)

val evaluate : t -> Timeseries.t -> now:int -> unit
(** Evaluate all rules once against the current series state (what
    {!attach} runs per sweep; exposed for direct-drive tests). *)

val set_trace : t -> Trace.t -> unit
(** Mirror every alert into the trace as an instant event
    (category ["watchdog"], args rule/key/value/msg). *)

type alert = {
  a_rule : string;
  a_key : string;
  a_at : int;  (** virtual ns of the sweep that fired *)
  a_value : float;  (** offending value (derivative for rate rules) *)
  a_msg : string;
}

type detection = {
  d_label : string;  (** expectation label, e.g. ["server_crash"] *)
  d_rule : string;
  d_key : string;
  d_fault_at : int;
  d_alert_at : int;
}

val expect : t -> label:string -> now:int -> unit
(** Arm a ground-truth incident at virtual time [now]; the next alert
    at [t >= now] resolves it into a {!detection}. *)

val alerts : t -> alert list
(** Chronological. *)

val alert_count : t -> int

val detections : t -> detection list
(** Chronological by alert time. *)

val detection_latency_ns : detection -> int

val pending_expectations : t -> int
(** Armed incidents not yet resolved by any alert. *)

val firing : t -> (string * string) list
(** Currently-breaching (rule name, key) pairs, sorted. *)

val alerts_json : t -> string
(** [{"alerts":[...],"detections":[...]}] — embedded in
    [BENCH_fleet.json] and [bmcastctl] outputs. *)
