(* Span-scoped GC allocation profiler.

   Snapshots the GC allocation counters at scope entry and exit and
   attributes the delta (minor words, promoted words) to a category,
   self-time style: a parent's figure excludes everything attributed to
   its children. The profiler itself allocates (frames, the boxed
   counter reads), so [create] runs a calibration loop of empty scopes and
   measures both the allocation that lands {e inside} a scope's own
   snapshots and the allocation that lands {e outside} (and would
   otherwise pollute the parent); both are subtracted during
   attribution.

   Scopes must not cross a simulation scheduling point: the engine's
   effect handlers suspend the current fiber, and a scope left open
   across a suspension would charge every interleaved fiber's
   allocation to it. Call sites therefore scope only non-blocking
   stretches (codec work, frame dispatch, MMIO register access).
   Mismatched exits are tolerated — the stack is scanned and
   force-closed down to the matching frame — and counted in
   [mismatches] so tests can assert the discipline held. *)

type frame = {
  cat : string;
  m0 : float;  (* minor words at entry *)
  p0 : float;  (* promoted words at entry *)
  mutable child_minor : float;
  mutable child_promoted : float;
}

type acc = {
  mutable calls : int;
  mutable minor : float;
  mutable promoted : float;
}

type t = {
  enabled : bool;
  mutable stack : frame list;
  cats : (string, acc) Hashtbl.t;
  mutable mismatches : int;
  mutable cal_inside : float;  (* per-scope overhead inside the snapshots *)
  mutable cal_outside : float;  (* full per-scope overhead seen by a parent *)
}

let make ~enabled =
  { enabled;
    stack = [];
    cats = Hashtbl.create 16;
    mismatches = 0;
    cal_inside = 0.0;
    cal_outside = 0.0 }

let null = make ~enabled:false

let enabled t = t.enabled

(* [Gc.minor_words] reads the allocation pointer and is precise in
   native code; the minor-words field of [Gc.counters] is refreshed
   only at minor collections and can lag by a whole minor heap.
   Promoted words advance only during a minor collection, so for them
   the counters value is always current. *)
let minor_now () = Gc.minor_words ()

let promoted_now () =
  let _, p, _ = Gc.counters () in
  p

let acc t cat =
  match Hashtbl.find_opt t.cats cat with
  | Some a -> a
  | None ->
    let a = { calls = 0; minor = 0.0; promoted = 0.0 } in
    Hashtbl.add t.cats cat a;
    a

let enter t cat =
  if t.enabled then begin
    let m0 = minor_now () and p0 = promoted_now () in
    t.stack <- { cat; m0; p0; child_minor = 0.0; child_promoted = 0.0 } :: t.stack
  end

(* [t.stack] must already have been popped past [f]. *)
let close t f =
  let m1 = minor_now () and p1 = promoted_now () in
  let total_minor = m1 -. f.m0 in
  let total_promoted = p1 -. f.p0 in
  let a = acc t f.cat in
  a.calls <- a.calls + 1;
  a.minor <-
    a.minor +. Float.max 0.0 (total_minor -. f.child_minor -. t.cal_inside);
  a.promoted <-
    a.promoted +. Float.max 0.0 (total_promoted -. f.child_promoted);
  match t.stack with
  | parent :: _ ->
    parent.child_minor <-
      parent.child_minor +. total_minor +. (t.cal_outside -. t.cal_inside);
    parent.child_promoted <- parent.child_promoted +. total_promoted
  | [] -> ()

let rec exit t cat =
  if t.enabled then
    match t.stack with
    | f :: rest when String.equal f.cat cat ->
      t.stack <- rest;
      close t f
    | f :: rest when List.exists (fun g -> String.equal g.cat cat) rest ->
      (* Unbalanced inner scope (e.g. an exception path skipped an
         exit): force-close down to the matching frame. *)
      t.mismatches <- t.mismatches + 1;
      t.stack <- rest;
      close t f;
      exit t cat
    | _ -> t.mismatches <- t.mismatches + 1

let span t cat f =
  if not t.enabled then f ()
  else begin
    enter t cat;
    Fun.protect ~finally:(fun () -> exit t cat) f
  end

let mismatches t = t.mismatches

let clear t =
  t.stack <- [];
  Hashtbl.reset t.cats;
  t.mismatches <- 0

let create () =
  let t = make ~enabled:true in
  (* Calibrate: empty scopes, so everything measured is profiler
     overhead. [cal_outside] is the external per-scope cost (what a
     parent frame would see beyond the child's own window);
     [cal_inside] is what an empty scope attributes to itself. *)
  let rounds = 512 in
  let m0 = minor_now () in
  for _ = 1 to rounds do
    enter t "__calibrate__";
    exit t "__calibrate__"
  done;
  let m1 = minor_now () in
  let inside =
    match Hashtbl.find_opt t.cats "__calibrate__" with
    | Some a -> a.minor /. float_of_int rounds
    | None -> 0.0
  in
  t.cal_outside <- Float.max 0.0 ((m1 -. m0) /. float_of_int rounds);
  t.cal_inside <- Float.max 0.0 (Float.min inside t.cal_outside);
  clear t;
  t

type row = {
  row_cat : string;
  calls : int;
  minor_words : float;
  promoted_words : float;
}

let rows t =
  Hashtbl.fold
    (fun cat (a : acc) l ->
      { row_cat = cat; calls = a.calls; minor_words = a.minor;
        promoted_words = a.promoted }
      :: l)
    t.cats []
  |> List.sort (fun a b ->
         match Float.compare b.minor_words a.minor_words with
         | 0 -> String.compare a.row_cat b.row_cat
         | c -> c)

let per_call r =
  if r.calls = 0 then 0.0 else r.minor_words /. float_of_int r.calls

let to_text t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "top allocators (minor words, self; non-deterministic)\n";
  Buffer.add_string b
    (Printf.sprintf "  %-24s %10s %14s %12s %14s\n" "category" "calls"
       "minor_words" "minor/call" "promoted");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-24s %10d %14.0f %12.1f %14.0f\n" r.row_cat r.calls
           r.minor_words (per_call r) r.promoted_words))
    (rows t);
  if t.mismatches > 0 then
    Buffer.add_string b
      (Printf.sprintf "  (%d mismatched scope exits)\n" t.mismatches);
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"categories\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"cat\":\"%s\",\"calls\":%d,\"minor_words\":%.0f,\"minor_per_call\":%.1f,\"promoted_words\":%.0f}"
           r.row_cat r.calls r.minor_words (per_call r) r.promoted_words))
    (rows t);
  Buffer.add_string b
    (Printf.sprintf
       "],\"mismatches\":%d,\"calibration\":{\"inside_words_per_scope\":%.1f,\"outside_words_per_scope\":%.1f}}"
       t.mismatches t.cal_inside t.cal_outside);
  Buffer.contents b
