(* Measurement collectors. Timestamps are integer nanoseconds of
   virtual time (the representation of [Bmcast_engine.Time.t]); this
   module lives below the engine so the observability layer can build
   on it without a dependency cycle. *)

let ns_to_s x = float_of_int x /. 1e9

(* Window attribution is half-open: timestamp [ts] belongs to window
   [floor(ts / width)], i.e. [k*width, (k+1)*width). An event landing
   exactly on a window edge [k*width] opens window [k] — it is never
   counted in window [k-1]. Floor (not truncating) division keeps that
   contract for timestamps before the epoch too. *)
let window_index ts ~width =
  if ts >= 0 then ts / width else ((ts + 1) / width) - 1

module Dynarray = struct
  type t = { mutable arr : float array; mutable len : int }

  let create () = { arr = Array.make 64 0.0; len = 0 }

  let push t v =
    if t.len = Array.length t.arr then begin
      let arr = Array.make (2 * t.len) 0.0 in
      Array.blit t.arr 0 arr 0 t.len;
      t.arr <- arr
    end;
    t.arr.(t.len) <- v;
    t.len <- t.len + 1

  let sorted_copy t =
    let a = Array.sub t.arr 0 t.len in
    Array.sort Float.compare a;
    a
end

(* Log-bucketed bounded histogram (HDR-style). Buckets grow
   geometrically by [gamma]; a bucket's representative value is its
   geometric midpoint, so any sample inside the covered range
   [range_lo, range_hi) is reported with relative error at most
   [sqrt gamma - 1] (~1% for gamma = 1.02). Memory is a fixed array of
   [nbuckets] counts regardless of sample count — the collector for
   hot-path metrics at 10k-machine scale, where storing every sample is
   unbounded. Zero/negative/tiny samples land in a dedicated underflow
   bucket represented by the exact tracked minimum (overflow likewise
   by the maximum), so boot-latency distributions that touch 0 keep
   exact edges. *)
module Bounded = struct
  let gamma = 1.02
  let log_gamma = Stdlib.log gamma
  let range_lo = 1e-9
  let interior = 2800 (* covers range_lo * gamma^2800 ~ 1.2e15 *)
  let nbuckets = interior + 2 (* + underflow and overflow *)
  let range_hi = range_lo *. Stdlib.exp (float_of_int interior *. log_gamma)
  let max_relative_error = sqrt gamma -. 1.0

  type t = {
    counts : int array;
    mutable n : int;
    mutable sum : float;
    mutable sumsq : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create () =
    { counts = Array.make nbuckets 0;
      n = 0;
      sum = 0.0;
      sumsq = 0.0;
      minv = infinity;
      maxv = neg_infinity }

  let index v =
    if not (v >= range_lo) then 0 (* underflow; also catches NaN *)
    else if v >= range_hi then nbuckets - 1
    else
      let i = 1 + int_of_float (Stdlib.log (v /. range_lo) /. log_gamma) in
      Stdlib.min (nbuckets - 2) (Stdlib.max 1 i)

  (* Geometric midpoint of an interior bucket. *)
  let representative t i =
    if i = 0 then t.minv
    else if i = nbuckets - 1 then t.maxv
    else
      let v =
        range_lo *. Stdlib.exp ((float_of_int (i - 1) +. 0.5) *. log_gamma)
      in
      Stdlib.min t.maxv (Stdlib.max t.minv v)

  let add t v =
    t.counts.(index v) <- t.counts.(index v) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum +. v;
    t.sumsq <- t.sumsq +. (v *. v);
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

  let stddev t =
    if t.n < 2 then 0.0
    else
      let m = mean t in
      sqrt (Float.max 0.0 ((t.sumsq /. float_of_int t.n) -. (m *. m)))

  let min t = t.minv
  let max t = t.maxv

  (* Value of the 0-based order statistic [k] (bucket representative). *)
  let value_at t k =
    let rec walk i seen =
      if i >= nbuckets then t.maxv
      else
        let seen = seen + t.counts.(i) in
        if k < seen then representative t i else walk (i + 1) seen
    in
    walk 0 0

  (* Same rank convention as the exact histogram: linear interpolation
     between adjacent order statistics, so p=0 is the (exact) minimum
     and p=100 the (exact) maximum. *)
  let percentile t p =
    if t.n = 0 then invalid_arg "Bounded.percentile: empty";
    if p <= 0.0 then t.minv
    else if p >= 100.0 then t.maxv
    else
      let rank = p /. 100.0 *. float_of_int (t.n - 1) in
      let lo = int_of_float rank in
      let hi = Stdlib.min (t.n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      let vlo = value_at t lo in
      let vhi = if hi = lo then vlo else value_at t hi in
      vlo +. (frac *. (vhi -. vlo))

  let percentile_opt t p = if t.n = 0 then None else Some (percentile t p)
  let median t = percentile t 50.0

  let clear t =
    Array.fill t.counts 0 nbuckets 0;
    t.n <- 0;
    t.sum <- 0.0;
    t.sumsq <- 0.0;
    t.minv <- infinity;
    t.maxv <- neg_infinity
end

module Histogram = struct
  type t = {
    samples : Dynarray.t;
    mutable sorted : float array option; (* invalidated on add *)
    mutable sum : float;
    mutable sumsq : float;
    mutable minv : float;
    mutable maxv : float;
    exact_limit : int;
    mutable bucketed : Bounded.t option; (* Some once spilled *)
  }

  let default_exact_limit = 8192

  let create ?(exact_limit = default_exact_limit) () =
    if exact_limit < 1 then
      invalid_arg "Histogram.create: exact_limit must be >= 1";
    { samples = Dynarray.create ();
      sorted = None;
      sum = 0.0;
      sumsq = 0.0;
      minv = infinity;
      maxv = neg_infinity;
      exact_limit;
      bucketed = None }

  let is_exact t = t.bucketed = None

  (* Past the exact limit, fold the stored samples (in insertion order,
     so the scalar accumulators replay bit-identically) into bounded
     buckets and drop the sample array: memory stops growing with the
     sample count at the cost of ~1% percentile error. *)
  let spill t =
    let b = Bounded.create () in
    for i = 0 to t.samples.Dynarray.len - 1 do
      Bounded.add b t.samples.Dynarray.arr.(i)
    done;
    t.samples.Dynarray.arr <- Array.make 64 0.0;
    t.samples.Dynarray.len <- 0;
    t.sorted <- None;
    t.bucketed <- Some b

  let add_bucketed t b v =
    Bounded.add b v;
    t.minv <- b.Bounded.minv;
    t.maxv <- b.Bounded.maxv

  let add t v =
    match t.bucketed with
    | Some b -> add_bucketed t b v
    | None ->
      if t.samples.Dynarray.len >= t.exact_limit then begin
        spill t;
        match t.bucketed with
        | Some b -> add_bucketed t b v
        | None -> assert false
      end
      else begin
        Dynarray.push t.samples v;
        t.sorted <- None;
        t.sum <- t.sum +. v;
        t.sumsq <- t.sumsq +. (v *. v);
        if v < t.minv then t.minv <- v;
        if v > t.maxv then t.maxv <- v
      end

  let count t =
    match t.bucketed with
    | Some b -> Bounded.count b
    | None -> t.samples.Dynarray.len

  let mean t =
    match t.bucketed with
    | Some b -> Bounded.mean b
    | None ->
      let n = count t in
      if n = 0 then 0.0 else t.sum /. float_of_int n

  let stddev t =
    match t.bucketed with
    | Some b -> Bounded.stddev b
    | None ->
      let n = count t in
      if n < 2 then 0.0
      else
        let m = mean t in
        sqrt (Float.max 0.0 ((t.sumsq /. float_of_int n) -. (m *. m)))

  let min t = t.minv
  let max t = t.maxv

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
      let a = Dynarray.sorted_copy t.samples in
      t.sorted <- Some a;
      a

  let percentile t p =
    match t.bucketed with
    | Some b -> Bounded.percentile b p
    | None ->
      let a = sorted t in
      let n = Array.length a in
      if n = 0 then invalid_arg "Histogram.percentile: empty";
      if p <= 0.0 then a.(0)
      else if p >= 100.0 then a.(n - 1)
      else
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (Float.of_int (int_of_float rank)) in
        let hi = Stdlib.min (n - 1) (lo + 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

  let percentile_opt t p = if count t = 0 then None else Some (percentile t p)

  let median t = percentile t 50.0

  let clear t =
    t.samples.Dynarray.len <- 0;
    t.sorted <- None;
    t.sum <- 0.0;
    t.sumsq <- 0.0;
    t.minv <- infinity;
    t.maxv <- neg_infinity;
    t.bucketed <- None
end

module Series = struct
  type t = {
    mutable times : int array;
    mutable values : float array;
    mutable len : int;
  }

  let create () = { times = Array.make 64 0; values = Array.make 64 0.0; len = 0 }

  let add t time v =
    if t.len = Array.length t.times then begin
      let times = Array.make (2 * t.len) 0 in
      let values = Array.make (2 * t.len) 0.0 in
      Array.blit t.times 0 times 0 t.len;
      Array.blit t.values 0 values 0 t.len;
      t.times <- times;
      t.values <- values
    end;
    t.times.(t.len) <- time;
    t.values.(t.len) <- v;
    t.len <- t.len + 1

  let length t = t.len

  let to_list t =
    let rec build i acc =
      if i < 0 then acc else build (i - 1) ((t.times.(i), t.values.(i)) :: acc)
    in
    build (t.len - 1) []

  let bucket_mean t ~width =
    if width <= 0 then invalid_arg "Series.bucket_mean: width must be positive";
    let tbl = Hashtbl.create 64 in
    for i = 0 to t.len - 1 do
      let b = window_index t.times.(i) ~width in
      let sum, n = Option.value (Hashtbl.find_opt tbl b) ~default:(0.0, 0) in
      Hashtbl.replace tbl b (sum +. t.values.(i), n + 1)
    done;
    Hashtbl.fold (fun b (sum, n) acc -> (b * width, sum /. float_of_int n) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

module Rate = struct
  type t = {
    events : Series.t;
    mutable total : float;
  }

  let create () = { events = Series.create (); total = 0.0 }

  let add t time w =
    Series.add t.events time w;
    t.total <- t.total +. w

  let tick t time = add t time 1.0
  let total t = t.total
  let count t = Series.length t.events

  let rate_between t t0 t1 =
    if t1 <= t0 then 0.0
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.events.Series.len - 1 do
        let ts = t.events.Series.times.(i) in
        if ts >= t0 && ts < t1 then sum := !sum +. t.events.Series.values.(i)
      done;
      !sum /. ns_to_s (t1 - t0)
    end

  let per_window t ~width =
    if width <= 0 then invalid_arg "Rate.per_window: width must be positive";
    if t.events.Series.len = 0 then []
    else begin
      let tbl = Hashtbl.create 64 in
      let first = ref max_int and last = ref min_int in
      for i = 0 to t.events.Series.len - 1 do
        let b = window_index t.events.Series.times.(i) ~width in
        if b < !first then first := b;
        if b > !last then last := b;
        let sum = Option.value (Hashtbl.find_opt tbl b) ~default:0.0 in
        Hashtbl.replace tbl b (sum +. t.events.Series.values.(i))
      done;
      let w_s = ns_to_s width in
      let rec build b acc =
        if b < !first then acc
        else
          let sum = Option.value (Hashtbl.find_opt tbl b) ~default:0.0 in
          build (b - 1) ((b * width, sum /. w_s) :: acc)
      in
      build !last []
    end
end

module Mean = struct
  type t = { mutable n : int; mutable mu : float; mutable m2 : float }

  let create () = { n = 0; mu = 0.0; m2 = 0.0 }

  let add t v =
    t.n <- t.n + 1;
    let delta = v -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (v -. t.mu))

  let count t = t.n
  let mean t = t.mu

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
end
