(* Measurement collectors. Timestamps are integer nanoseconds of
   virtual time (the representation of [Bmcast_engine.Time.t]); this
   module lives below the engine so the observability layer can build
   on it without a dependency cycle. *)

let ns_to_s x = float_of_int x /. 1e9

module Dynarray = struct
  type t = { mutable arr : float array; mutable len : int }

  let create () = { arr = Array.make 64 0.0; len = 0 }

  let push t v =
    if t.len = Array.length t.arr then begin
      let arr = Array.make (2 * t.len) 0.0 in
      Array.blit t.arr 0 arr 0 t.len;
      t.arr <- arr
    end;
    t.arr.(t.len) <- v;
    t.len <- t.len + 1

  let sorted_copy t =
    let a = Array.sub t.arr 0 t.len in
    Array.sort Float.compare a;
    a
end

module Histogram = struct
  type t = {
    samples : Dynarray.t;
    mutable sorted : float array option; (* invalidated on add *)
    mutable sum : float;
    mutable sumsq : float;
    mutable minv : float;
    mutable maxv : float;
  }

  let create () =
    { samples = Dynarray.create ();
      sorted = None;
      sum = 0.0;
      sumsq = 0.0;
      minv = infinity;
      maxv = neg_infinity }

  let add t v =
    Dynarray.push t.samples v;
    t.sorted <- None;
    t.sum <- t.sum +. v;
    t.sumsq <- t.sumsq +. (v *. v);
    if v < t.minv then t.minv <- v;
    if v > t.maxv then t.maxv <- v

  let count t = t.samples.Dynarray.len

  let mean t =
    let n = count t in
    if n = 0 then 0.0 else t.sum /. float_of_int n

  let stddev t =
    let n = count t in
    if n < 2 then 0.0
    else
      let m = mean t in
      sqrt (Float.max 0.0 ((t.sumsq /. float_of_int n) -. (m *. m)))

  let min t = t.minv
  let max t = t.maxv

  let sorted t =
    match t.sorted with
    | Some a -> a
    | None ->
      let a = Dynarray.sorted_copy t.samples in
      t.sorted <- Some a;
      a

  let percentile t p =
    let a = sorted t in
    let n = Array.length a in
    if n = 0 then invalid_arg "Histogram.percentile: empty";
    if p <= 0.0 then a.(0)
    else if p >= 100.0 then a.(n - 1)
    else
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.of_int (int_of_float rank)) in
      let hi = Stdlib.min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

  let percentile_opt t p = if count t = 0 then None else Some (percentile t p)

  let median t = percentile t 50.0

  let clear t =
    t.samples.Dynarray.len <- 0;
    t.sorted <- None;
    t.sum <- 0.0;
    t.sumsq <- 0.0;
    t.minv <- infinity;
    t.maxv <- neg_infinity
end

module Series = struct
  type t = {
    mutable times : int array;
    mutable values : float array;
    mutable len : int;
  }

  let create () = { times = Array.make 64 0; values = Array.make 64 0.0; len = 0 }

  let add t time v =
    if t.len = Array.length t.times then begin
      let times = Array.make (2 * t.len) 0 in
      let values = Array.make (2 * t.len) 0.0 in
      Array.blit t.times 0 times 0 t.len;
      Array.blit t.values 0 values 0 t.len;
      t.times <- times;
      t.values <- values
    end;
    t.times.(t.len) <- time;
    t.values.(t.len) <- v;
    t.len <- t.len + 1

  let length t = t.len

  let to_list t =
    let rec build i acc =
      if i < 0 then acc else build (i - 1) ((t.times.(i), t.values.(i)) :: acc)
    in
    build (t.len - 1) []

  let bucket_mean t ~width =
    if width <= 0 then invalid_arg "Series.bucket_mean: width must be positive";
    let tbl = Hashtbl.create 64 in
    for i = 0 to t.len - 1 do
      let b = t.times.(i) / width in
      let sum, n = Option.value (Hashtbl.find_opt tbl b) ~default:(0.0, 0) in
      Hashtbl.replace tbl b (sum +. t.values.(i), n + 1)
    done;
    Hashtbl.fold (fun b (sum, n) acc -> (b * width, sum /. float_of_int n) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
end

module Rate = struct
  type t = {
    events : Series.t;
    mutable total : float;
  }

  let create () = { events = Series.create (); total = 0.0 }

  let add t time w =
    Series.add t.events time w;
    t.total <- t.total +. w

  let tick t time = add t time 1.0
  let total t = t.total
  let count t = Series.length t.events

  let rate_between t t0 t1 =
    if t1 <= t0 then 0.0
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.events.Series.len - 1 do
        let ts = t.events.Series.times.(i) in
        if ts >= t0 && ts < t1 then sum := !sum +. t.events.Series.values.(i)
      done;
      !sum /. ns_to_s (t1 - t0)
    end

  let per_window t ~width =
    if width <= 0 then invalid_arg "Rate.per_window: width must be positive";
    if t.events.Series.len = 0 then []
    else begin
      let tbl = Hashtbl.create 64 in
      let first = ref max_int and last = ref 0 in
      for i = 0 to t.events.Series.len - 1 do
        let b = t.events.Series.times.(i) / width in
        if b < !first then first := b;
        if b > !last then last := b;
        let sum = Option.value (Hashtbl.find_opt tbl b) ~default:0.0 in
        Hashtbl.replace tbl b (sum +. t.events.Series.values.(i))
      done;
      let w_s = ns_to_s width in
      let rec build b acc =
        if b < !first then acc
        else
          let sum = Option.value (Hashtbl.find_opt tbl b) ~default:0.0 in
          build (b - 1) ((b * width, sum /. w_s) :: acc)
      in
      build !last []
    end
end

module Mean = struct
  type t = { mutable n : int; mutable mu : float; mutable m2 : float }

  let create () = { n = 0; mu = 0.0; m2 = 0.0 }

  let add t v =
    t.n <- t.n + 1;
    let delta = v -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (v -. t.mu))

  let count t = t.n
  let mean t = t.mu

  let stddev t =
    if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
end
