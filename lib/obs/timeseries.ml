(* Deterministic in-run time series over the metrics registry.

   A sampler sweep ([sample ~now]) walks [Metrics.iter] in sorted key
   order, collapses every instrument to one float ([Metrics.scalar]),
   and appends (now, value) to that key's series. Storage per key is a
   bounded raw ring plus [tiers - 1] rollup tiers: tier k holds buckets
   that each aggregate [rollup_factor] buckets of tier k-1 (so
   [rollup_factor ** k] raw samples) as {start-time, count, min, sum,
   max}. Memory is O(keys * tiers * capacity) regardless of run length;
   when a ring wraps, the oldest buckets fall off the raw tier first
   while coarser tiers keep a proportionally longer horizon.

   Everything here is driven by the virtual clock and visits keys in
   sorted order, so a fixed seed plus a fixed interval yields
   byte-identical CSV/OpenMetrics exports — the determinism contract
   the tests pin. This module lives below the engine: timestamps are
   raw integer nanoseconds and the recurring sampling job is installed
   by [Sim.create ?timeseries]. *)

let default_interval_ns = 1_000_000_000
let default_capacity = 360
let default_tiers = 3
let default_max_keys = 512
let rollup_factor = 10

type bucket = { bt : int; n : int; lo : float; sum : float; hi : float }

let dummy_bucket = { bt = 0; n = 0; lo = 0.0; sum = 0.0; hi = 0.0 }

type tier = {
  ring : bucket array;
  mutable start : int; (* index of oldest bucket *)
  mutable len : int;
  mutable evicted : int; (* completed buckets dropped off this ring *)
  (* accumulator for the bucket under construction *)
  mutable acc_children : int; (* tier-(k-1) buckets absorbed so far *)
  mutable acc_t : int;
  mutable acc_n : int;
  mutable acc_lo : float;
  mutable acc_sum : float;
  mutable acc_hi : float;
}

type series = {
  skey : string;
  tiers : tier array; (* tier 0 = raw samples *)
  mutable nsamples : int; (* total samples ever recorded *)
  mutable last_t : int;
  mutable last_v : float;
  mutable prev_t : int;
  mutable prev_v : float;
  mutable same_run : int; (* consecutive trailing samples with equal value *)
  mutable first_sweep : int; (* sweep number that created this series *)
}

type t = {
  metrics : Metrics.t;
  interval_ns : int;
  capacity : int;
  ntiers : int;
  max_keys : int;
  filter : string -> bool;
  tbl : (string, series) Hashtbl.t;
  mutable sorted : series array; (* by key; rebuilt when dirty *)
  mutable dirty : bool;
  mutable sweeps : int;
  mutable last_sweep_at : int;
  dropped : (string, unit) Hashtbl.t; (* keys refused by max_keys *)
  mutable subscribers : (now:int -> unit) list; (* reversed *)
}

let create ?(interval_ns = default_interval_ns) ?(capacity = default_capacity)
    ?(tiers = default_tiers) ?(max_keys = default_max_keys)
    ?(filter = fun _ -> true) metrics =
  if interval_ns <= 0 then
    invalid_arg "Timeseries.create: interval_ns must be positive";
  if capacity < rollup_factor then
    invalid_arg "Timeseries.create: capacity must be >= 10";
  if tiers < 1 then invalid_arg "Timeseries.create: tiers must be >= 1";
  if max_keys < 1 then invalid_arg "Timeseries.create: max_keys must be >= 1";
  { metrics;
    interval_ns;
    capacity;
    ntiers = tiers;
    max_keys;
    filter;
    tbl = Hashtbl.create 64;
    sorted = [||];
    dirty = false;
    sweeps = 0;
    last_sweep_at = 0;
    dropped = Hashtbl.create 8;
    subscribers = [] }

let interval_ns t = t.interval_ns
let sweeps t = t.sweeps
let last_sweep_at t = t.last_sweep_at
let nkeys t = Hashtbl.length t.tbl
let dropped_keys t = Hashtbl.length t.dropped
let on_sample t f = t.subscribers <- f :: t.subscribers

let new_tier capacity =
  { ring = Array.make capacity dummy_bucket;
    start = 0;
    len = 0;
    evicted = 0;
    acc_children = 0;
    acc_t = 0;
    acc_n = 0;
    acc_lo = 0.0;
    acc_sum = 0.0;
    acc_hi = 0.0 }

let ring_push t tier b =
  if tier.len < t.capacity then begin
    tier.ring.((tier.start + tier.len) mod t.capacity) <- b;
    tier.len <- tier.len + 1
  end
  else begin
    tier.ring.(tier.start) <- b;
    tier.start <- (tier.start + 1) mod t.capacity;
    tier.evicted <- tier.evicted + 1
  end

(* Push a completed bucket into tier [k]'s ring and absorb it into the
   tier-[k+1] accumulator; every [rollup_factor] children the
   accumulator completes and cascades one level up. *)
let rec feed t s k b =
  ring_push t s.tiers.(k) b;
  if k + 1 < t.ntiers then begin
    let up = s.tiers.(k + 1) in
    if up.acc_children = 0 then begin
      up.acc_t <- b.bt;
      up.acc_lo <- b.lo;
      up.acc_hi <- b.hi
    end
    else begin
      if b.lo < up.acc_lo then up.acc_lo <- b.lo;
      if b.hi > up.acc_hi then up.acc_hi <- b.hi
    end;
    up.acc_children <- up.acc_children + 1;
    up.acc_n <- up.acc_n + b.n;
    up.acc_sum <- up.acc_sum +. b.sum;
    if up.acc_children = rollup_factor then begin
      let done_b =
        { bt = up.acc_t;
          n = up.acc_n;
          lo = up.acc_lo;
          sum = up.acc_sum;
          hi = up.acc_hi }
      in
      up.acc_children <- 0;
      up.acc_n <- 0;
      up.acc_sum <- 0.0;
      feed t s (k + 1) done_b
    end
  end

let push t s ~now v =
  if s.nsamples > 0 && v = s.last_v then s.same_run <- s.same_run + 1
  else s.same_run <- 1;
  s.prev_t <- s.last_t;
  s.prev_v <- s.last_v;
  s.last_t <- now;
  s.last_v <- v;
  s.nsamples <- s.nsamples + 1;
  feed t s 0 { bt = now; n = 1; lo = v; sum = v; hi = v }

let new_series t key ~sweep =
  { skey = key;
    tiers = Array.init t.ntiers (fun _ -> new_tier t.capacity);
    nsamples = 0;
    last_t = 0;
    last_v = 0.0;
    prev_t = 0;
    prev_v = 0.0;
    same_run = 0;
    first_sweep = sweep }

let sample t ~now =
  t.sweeps <- t.sweeps + 1;
  t.last_sweep_at <- now;
  Metrics.iter ~filter:t.filter t.metrics (fun key view ->
      let v = Metrics.scalar view in
      match Hashtbl.find_opt t.tbl key with
      | Some s -> push t s ~now v
      | None ->
        if Hashtbl.length t.tbl >= t.max_keys then
          Hashtbl.replace t.dropped key ()
        else begin
          let s = new_series t key ~sweep:t.sweeps in
          Hashtbl.replace t.tbl key s;
          t.dirty <- true;
          push t s ~now v
        end);
  List.iter (fun f -> f ~now) (List.rev t.subscribers)

let sorted_series t =
  if t.dirty then begin
    let a =
      Array.of_list (Hashtbl.fold (fun _ s acc -> s :: acc) t.tbl [])
    in
    Array.sort (fun a b -> compare a.skey b.skey) a;
    t.sorted <- a;
    t.dirty <- false
  end;
  t.sorted

let keys t =
  Array.to_list (Array.map (fun s -> s.skey) (sorted_series t))

(* --- reads (watchdog / dashboard) --- *)

type status = {
  s_count : int;
  s_last : int * float;
  s_prev : (int * float) option;
  s_same_run : int;
  s_first_sweep : int;
}

let status t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some s when s.nsamples = 0 -> None
  | Some s ->
    Some
      { s_count = s.nsamples;
        s_last = (s.last_t, s.last_v);
        s_prev = (if s.nsamples >= 2 then Some (s.prev_t, s.prev_v) else None);
        s_same_run = s.same_run;
        s_first_sweep = s.first_sweep }

let iter_tier f tier =
  for i = 0 to tier.len - 1 do
    f tier.ring.((tier.start + i) mod Array.length tier.ring)
  done

let raw ?n t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> []
  | Some s ->
    let tier = s.tiers.(0) in
    let want = match n with None -> tier.len | Some n -> min n tier.len in
    let cap = Array.length tier.ring in
    let rec build i acc =
      if i < tier.len - want then acc
      else
        let b = tier.ring.((tier.start + i) mod cap) in
        build (i - 1) ((b.bt, b.sum) :: acc)
    in
    build (tier.len - 1) []

(* --- exports --- *)

let fmt_float v =
  if Float.is_nan v then "nan"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let csv_header = "key,tier,t_ns,count,min,mean,max\n"

let to_csv t =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf "# bmcast-timeseries v1 interval_ns=%d sweeps=%d keys=%d\n"
       t.interval_ns t.sweeps (Hashtbl.length t.tbl));
  Buffer.add_string b csv_header;
  Array.iter
    (fun s ->
      Array.iteri
        (fun k tier ->
          iter_tier
            (fun bk ->
              Buffer.add_string b s.skey;
              Buffer.add_char b ',';
              Buffer.add_string b (string_of_int k);
              Buffer.add_char b ',';
              Buffer.add_string b (string_of_int bk.bt);
              Buffer.add_char b ',';
              Buffer.add_string b (string_of_int bk.n);
              Buffer.add_char b ',';
              Buffer.add_string b (fmt_float bk.lo);
              Buffer.add_char b ',';
              Buffer.add_string b (fmt_float (bk.sum /. float_of_int bk.n));
              Buffer.add_char b ',';
              Buffer.add_string b (fmt_float bk.hi);
              Buffer.add_char b '\n')
            tier)
        s.tiers)
    (sorted_series t);
  Buffer.contents b

(* OpenMetrics text exposition: one gauge sample per key (the latest
   sweep's value), metric names sanitized to [a-zA-Z0-9_:], labels
   recovered from the [|k=v] key suffixes. Everything is exported as a
   gauge — the registry snapshot is a point-in-time scrape, and
   OpenMetrics counters would force a [_total] suffix rename. *)

let sanitize_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let split_key key =
  match String.index_opt key '|' with
  | None -> (key, [])
  | Some i ->
    let name = String.sub key 0 i in
    let rest = String.sub key (i + 1) (String.length key - i - 1) in
    let labels =
      List.filter_map
        (fun part ->
          match String.index_opt part '=' with
          | None -> None
          | Some j ->
            Some
              ( String.sub part 0 j,
                String.sub part (j + 1) (String.length part - j - 1) ))
        (String.split_on_char '|' rest)
    in
    (name, labels)

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let to_openmetrics t =
  let b = Buffer.create 4096 in
  let last_name = ref "" in
  Array.iter
    (fun s ->
      if s.nsamples > 0 then begin
        let name, labels = split_key s.skey in
        let om_name = "bmcast_" ^ sanitize_name name in
        if om_name <> !last_name then begin
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" om_name);
          last_name := om_name
        end;
        Buffer.add_string b om_name;
        (match labels with
        | [] -> ()
        | labels ->
          Buffer.add_char b '{';
          List.iteri
            (fun i (k, v) ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b (sanitize_name k);
              Buffer.add_string b "=\"";
              Buffer.add_string b (escape_label_value v);
              Buffer.add_char b '"')
            labels;
          Buffer.add_char b '}');
        Buffer.add_char b ' ';
        Buffer.add_string b (fmt_float s.last_v);
        Buffer.add_char b ' ';
        Buffer.add_string b
          (Printf.sprintf "%.9f" (float_of_int s.last_t /. 1e9));
        Buffer.add_char b '\n'
      end)
    (sorted_series t);
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* Compact timeline for embedding in benchmark JSON: per key, the
   finest tier that still covers the whole run (nothing evicted) within
   [max_points] buckets — mean values as [[t_ns, v], ...]. *)
let timeline_json ?(max_points = 120) t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"interval_ns\":%d,\"sweeps\":%d,\"series\":{"
       t.interval_ns t.sweeps);
  let first = ref true in
  Array.iter
    (fun s ->
      let pick =
        let rec go k =
          if k >= t.ntiers - 1 then t.ntiers - 1
          else if s.tiers.(k).evicted = 0 && s.tiers.(k).len <= max_points then
            k
          else go (k + 1)
        in
        go 0
      in
      let tier = s.tiers.(pick) in
      if tier.len > 0 then begin
        if not !first then Buffer.add_char b ',';
        first := false;
        Buffer.add_string b "\n";
        Metrics.buf_add_json_string b s.skey;
        Buffer.add_string b (Printf.sprintf ":{\"tier\":%d,\"points\":[" pick);
        let fst_pt = ref true in
        iter_tier
          (fun bk ->
            if not !fst_pt then Buffer.add_char b ',';
            fst_pt := false;
            Buffer.add_char b '[';
            Buffer.add_string b (string_of_int bk.bt);
            Buffer.add_char b ',';
            Metrics.buf_add_float b (bk.sum /. float_of_int bk.n);
            Buffer.add_char b ']')
          tier;
        Buffer.add_string b "]}"
      end)
    (sorted_series t);
  Buffer.add_string b "\n}}";
  Buffer.contents b

let write_csv t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))

let write_openmetrics t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_openmetrics t))
