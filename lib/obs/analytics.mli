(** Provisioning analytics over the trace stream.

    Folds {!Trace.event}s into per-machine boot-stage breakdowns,
    fleet-wide per-stage percentile tables, critical-path attribution
    (which stage dominated each boot) and SLO evaluation.

    Input convention: complete spans in category ["boot"] whose name is
    a pipeline stage and whose args carry [("m", Str machine)]. Stages
    tile each machine's boot timeline sequentially
    ([queue → vmm_init → discover → copy → devirt]), so per machine the
    stage durations sum to the boot total. Spans in {e other}
    categories tagged with both ["m"] and ["stage"] args feed a
    per-operation latency table instead (AoE commands, copy-on-read
    redirects, background-copy chunks).

    All outputs derive from virtual-time trace events only:
    {!to_json}/{!to_text} are byte-identical across same-seed runs. *)

type t

val stage_order : string list
(** Canonical pipeline order, ["queue"] through ["devirt"]; unknown
    stages sort after these, alphabetically. *)

val create : ?slo_s:float -> unit -> t
(** [slo_s] is the provisioning-time target in seconds (default
    [120.0]). *)

val add_event : t -> Trace.event -> unit
val feed : t -> Trace.t -> unit

val of_trace : ?slo_s:float -> Trace.t -> t
(** [create] + [feed]. *)

val machine_count : t -> int

val machine_names : t -> string list
(** Sorted. *)

val stage_ms : t -> string -> (string * float) list
(** Per-stage durations (ms) of one machine, in pipeline order; [[]]
    for unknown machines. *)

val boot_total_ms : t -> string -> float option
(** Sum of the machine's stage durations. *)

type stage_row = {
  stage : string;
  count : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val stage_rows : t -> stage_row list
(** Fleet-wide per-stage latency table, in pipeline order. *)

val critical_path : t -> (string * int) list
(** [(stage, boots)] — how many boots each stage dominated; sorted by
    count descending. *)

type slo = {
  target_s : float;
  boots : int;
  violations : int;  (** boots whose total exceeded the target *)
  wasted_ms : float;
      (** provisioning time beyond the target, summed over violating
          boots (server-ms burned past budget) *)
}

val slo : t -> slo

type op_row = {
  opname : string;  (** ["cat.name"] *)
  ocount : int;
  op50_ms : float;
  op99_ms : float;
  ototal_ms : float;
}

val op_rows : t -> op_row list
(** Sorted by name. *)

val to_text : t -> string
val to_json : t -> string
