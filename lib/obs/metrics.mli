(** Named-metric registry for the observability layer.

    Subsystems register an instrument once (at attach/boot time) and
    keep the returned handle; updates through the handle are plain
    mutations with no lookup cost. Instruments are keyed by name plus
    sorted [label=value] pairs, so [histogram m ~labels:["disk","ahci"]
    "redirect_latency_ms"] and the same call again return the {e same}
    histogram. JSON export is sorted by key — never by hash-table
    iteration order — so snapshots of a seeded run are byte-stable. *)

type t

val null : t
(** Disabled registry: registrations return fresh throwaway handles
    that still work (so instrumented code needs no branching) but are
    never stored — {!to_json} on [null] is always empty and no state is
    shared between simulations. *)

val create : unit -> t
val enabled : t -> bool

val counter : ?labels:(string * string) list -> t -> string -> float ref
(** Monotonic counter; bump with {!incr}. *)

val gauge : ?labels:(string * string) list -> t -> string -> float ref
(** Last-value gauge; write with {!set}. *)

val histogram : ?labels:(string * string) list -> t -> string -> Stats.Histogram.t

val rate : ?labels:(string * string) list -> t -> string -> Stats.Rate.t
(** Time-weighted rate; feed with [Stats.Rate.add r now weight]. *)

val incr : ?by:float -> float ref -> unit
val set : float ref -> float -> unit

val size : t -> int
(** Number of registered instruments. *)

val key : string -> (string * string) list -> string
(** The registry key for a name + labels ([name|k=v|...], labels
    sorted). Exposed for tests and snapshot consumers. *)

val to_json : t -> string
(** Snapshot of every instrument as a JSON object keyed by metric key:
    counters/gauges as numbers, histograms as
    [{count,mean,stddev,min,max,p50,p90,p99}] (just [{count:0}] when
    empty), rates as [{total,events,windows}] where [windows] is
    [[seconds, weight-per-second], ...] over consecutive 1-second
    windows. Safe to call mid-run. *)

val write : t -> string -> unit
(** [write t path] dumps {!to_json} to [path]. *)
