(** Named-metric registry for the observability layer.

    Subsystems register an instrument once (at attach/boot time) and
    keep the returned handle; updates through the handle are plain
    mutations with no lookup cost. Instruments are keyed by name plus
    sorted [label=value] pairs, so [histogram m ~labels:["disk","ahci"]
    "redirect_latency_ms"] and the same call again return the {e same}
    histogram. JSON export is sorted by key — never by hash-table
    iteration order — so snapshots of a seeded run are byte-stable. *)

type t

val null : t
(** Disabled registry: registrations return fresh throwaway handles
    that still work (so instrumented code needs no branching) but are
    never stored — {!to_json} on [null] is always empty and no state is
    shared between simulations. *)

val create : unit -> t
val enabled : t -> bool

val counter : ?labels:(string * string) list -> t -> string -> float ref
(** Monotonic counter; bump with {!incr}. *)

val gauge : ?labels:(string * string) list -> t -> string -> float ref
(** Last-value gauge; write with {!set}. *)

val histogram : ?labels:(string * string) list -> t -> string -> Stats.Histogram.t

val rate : ?labels:(string * string) list -> t -> string -> Stats.Rate.t
(** Time-weighted rate; feed with [Stats.Rate.add r now weight]. *)

val derived : ?labels:(string * string) list -> t -> string -> (unit -> float) -> unit
(** Pull-only gauge: [f] is evaluated each time a snapshot consumer
    ({!iter}, {!to_json}, the timeseries sampler) visits the key, and
    never otherwise — zero hot-path cost. First registration of a key
    wins; re-registering an existing derived key is a no-op, and
    registering over a different instrument kind raises
    [Invalid_argument]. No-op on {!null}. *)

val incr : ?by:float -> float ref -> unit
val set : float ref -> float -> unit

val size : t -> int
(** Number of registered instruments. *)

val key : string -> (string * string) list -> string
(** The registry key for a name + labels ([name|k=v|...], labels
    sorted). Exposed for tests and snapshot consumers. *)

(** Typed snapshot of one instrument. Counters/gauges surface their
    current value (derived gauges are evaluated at snapshot time);
    histograms and rates expose the live instrument for richer reads. *)
type view =
  | V_counter of float
  | V_gauge of float
  | V_histogram of Stats.Histogram.t
  | V_rate of Stats.Rate.t

val scalar : view -> float
(** Collapse a view to one number: counter/gauge value, histogram
    observation count, rate running total. This is what the timeseries
    sampler records per key. *)

val iter : ?filter:(string -> bool) -> t -> (string -> view -> unit) -> unit
(** Visit instruments in ascending key order (byte-stable across runs).
    [filter] prunes by key {e before} derived closures are evaluated. *)

val fold : ?filter:(string -> bool) -> t -> (string -> view -> 'a -> 'a) -> 'a -> 'a
(** {!iter} with an accumulator; same ordering and filter contract. *)

val find : t -> string -> view option
(** Look up one instrument by its full registry key. *)

val to_json : ?filter:(string -> bool) -> t -> string
(** Snapshot of every instrument as a JSON object keyed by metric key:
    counters/gauges as numbers, histograms as
    [{count,mean,stddev,min,max,p50,p90,p99}] (just [{count:0}] when
    empty), rates as [{total,events,windows}] where [windows] is
    [[seconds, weight-per-second], ...] over consecutive 1-second
    windows. Built on {!iter}, so [filter] restricts the snapshot to
    matching keys. Safe to call mid-run. *)

val write : ?filter:(string -> bool) -> t -> string -> unit
(** [write t path] dumps {!to_json} to [path]. *)

(**/**)

(* Export plumbing shared with the rest of lib/obs so every JSON writer
   formats strings and floats identically (byte-stable exports). *)
val buf_add_json_string : Buffer.t -> string -> unit
val buf_add_float : Buffer.t -> float -> unit
