(** Measurement collectors for experiments.

    All collectors are cheap to update from the simulation hot path and
    compute summaries lazily. Timestamps are integer nanoseconds of
    virtual time — the representation of [Bmcast_engine.Time.t], which
    re-exports this module as [Bmcast_engine.Stats]. *)

(** Log-bucketed bounded histogram (HDR-style).

    Fixed memory regardless of sample count: samples are counted in
    geometrically-spaced buckets (ratio {!gamma}) and percentile queries
    report a bucket's geometric midpoint, so values inside
    [\[range_lo, range_hi)] carry relative error at most
    {!max_relative_error} (~1% for the default [gamma = 1.02]). The
    tracked minimum and maximum stay exact, and [percentile h 0.] /
    [percentile h 100.] return them, matching {!Histogram}'s contract.
    Values below [range_lo] (including zero and negatives) and at or
    above [range_hi] fall into underflow/overflow buckets represented by
    the exact min/max. *)
module Bounded : sig
  type t

  val gamma : float
  (** Bucket growth ratio. *)

  val max_relative_error : float
  (** Worst-case relative error for in-range samples:
      [sqrt gamma - 1.]. *)

  val range_lo : float

  val range_hi : float
  (** In-range values are [\[range_lo, range_hi)] (roughly
      [1e-9 .. 1e15]). *)

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float

  val min : t -> float
  (** Exact; [infinity] when empty. *)

  val max : t -> float
  (** Exact; [neg_infinity] when empty. *)

  val percentile : t -> float -> float
  (** Same rank convention as {!Histogram.percentile}.
      @raise Invalid_argument if empty. *)

  val percentile_opt : t -> float -> float option
  val median : t -> float
  val clear : t -> unit
end

(** Sample accumulator with exact percentiles for small collections.

    Stores samples verbatim up to [exact_limit]; past that it spills
    into a {!Bounded} log-bucketed histogram (one-time fold of the
    stored samples, sample array freed) so hot-path metrics stay
    memory-bounded at 10k-machine scale. Mean/stddev/min/max remain
    exact after spilling; percentiles carry the {!Bounded} ~1% relative
    error. *)
module Histogram : sig
  type t

  val create : ?exact_limit:int -> unit -> t
  (** [exact_limit] defaults to [8192].
      @raise Invalid_argument if [exact_limit < 1]. *)

  val add : t -> float -> unit
  val count : t -> int

  val is_exact : t -> bool
  (** [true] until the collector spills into bucketed mode. *)

  val mean : t -> float
  (** [0.0] when empty. *)

  val stddev : t -> float
  (** Population standard deviation; [0.0] with fewer than two
      samples. *)

  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val percentile : t -> float -> float
  (** [percentile h p] with [p] in [\[0,100\]]; linear interpolation
      between adjacent order statistics, so [percentile h 0.] is the
      minimum and [percentile h 100.] the maximum.

      @raise Invalid_argument if the histogram is empty — callers that
      may observe an empty histogram must use {!percentile_opt} or
      check {!count} first. *)

  val percentile_opt : t -> float -> float option
  (** Like {!percentile} but [None] when the histogram is empty. *)

  val median : t -> float
  (** [percentile t 50.]; raises like {!percentile} when empty. *)

  val clear : t -> unit
end

(** Append-only (time, value) series. *)
module Series : sig
  type t

  val create : unit -> t
  val add : t -> int -> float -> unit
  val length : t -> int
  val to_list : t -> (int * float) list

  val bucket_mean : t -> width:int -> (int * float) list
  (** Average value per time bucket of the given width; buckets with no
      samples are {e skipped} (no zero-filling — contrast with
      {!Rate.per_window}). Bucket timestamps are bucket start times.
      Buckets are half-open [\[k*width, (k+1)*width)]: a sample exactly
      on a bucket edge opens bucket [k], never closes bucket [k-1].

      @raise Invalid_argument if [width <= 0]. *)
end

(** Event-rate meter: record occurrences (optionally weighted) and read
    rates per window. *)
module Rate : sig
  type t

  val create : unit -> t

  val tick : t -> int -> unit
  (** Record one event at the given time. *)

  val add : t -> int -> float -> unit
  (** Record a weighted event (e.g. bytes transferred). *)

  val total : t -> float

  val count : t -> int
  (** Number of recorded events. *)

  val rate_between : t -> int -> int -> float
  (** Sum of weights in [\[t0, t1)] divided by the window in seconds.
      [0.0] when [t1 <= t0]. *)

  val per_window : t -> width:int -> (int * float) list
  (** Rate (weight per second) for each {e consecutive} window from the
      one holding the first recorded event through the one holding the
      last: windows with no events in between are present with rate
      [0.0], so the result has no time gaps. [\[\]] when no events were
      recorded.

      Windows are half-open [\[k*width, (k+1)*width)] under floor
      division: an event at exactly [k*width] is attributed to window
      [k] (the one it opens), deterministically, including for negative
      timestamps.

      @raise Invalid_argument if [width <= 0]. *)
end

(** Running mean without storing samples (Welford). *)
module Mean : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float

  val stddev : t -> float
  (** Sample standard deviation (Bessel-corrected); [0.0] with fewer
      than two samples. *)
end
