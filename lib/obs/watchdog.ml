(* Declarative fleet-health watchdogs over sampled metrics.

   Rules are evaluated after every Timeseries sweep (the watchdog
   subscribes via [attach]) against the latest per-key status — never
   against wall-clock time — so alerts fire at deterministic virtual
   times under a fixed seed. A rule matches every tracked key sharing
   its prefix, holds per-(rule, key) state, and fires once per breach
   episode: the alert is emitted on the sample that completes the
   breach condition and re-arms only after the condition clears.

   Detection latency is measured by pairing alerts with ground-truth
   incidents: fault injectors call [expect] when they apply a
   disruptive action, and the next alert resolves every pending
   expectation into a [detection] carrying (alert time - fault time).
   That makes "server crash -> watchdog alert" a first-class measured
   quantity instead of something read off a trace by hand. *)

type cmp = Above | Below

type kind =
  | Threshold of { cmp : cmp; bound : float; hold : int }
  | Rate_of_change of { cmp : cmp; per_s : float }
  | Absent of { after : int }
  | Stale of { after : int }

type rule = { r_name : string; r_prefix : string; r_kind : kind }

let threshold ?(hold = 1) ~name ~key cmp bound =
  if hold < 1 then invalid_arg "Watchdog.threshold: hold must be >= 1";
  { r_name = name; r_prefix = key; r_kind = Threshold { cmp; bound; hold } }

let rate_of_change ~name ~key cmp per_s =
  { r_name = name; r_prefix = key; r_kind = Rate_of_change { cmp; per_s } }

let absent ?(after = 3) ~name ~key () =
  if after < 1 then invalid_arg "Watchdog.absent: after must be >= 1";
  { r_name = name; r_prefix = key; r_kind = Absent { after } }

let stale ?(after = 3) ~name ~key () =
  if after < 2 then invalid_arg "Watchdog.stale: after must be >= 2";
  { r_name = name; r_prefix = key; r_kind = Stale { after } }

let rule_name r = r.r_name

type alert = {
  a_rule : string;
  a_key : string;
  a_at : int;
  a_value : float;
  a_msg : string;
}

type detection = {
  d_label : string;
  d_rule : string;
  d_key : string;
  d_fault_at : int;
  d_alert_at : int;
}

let detection_latency_ns d = d.d_alert_at - d.d_fault_at

type state = { mutable run : int; mutable firing : bool }

type t = {
  rules : rule array;
  states : (string * string, state) Hashtbl.t; (* (rule name, key) *)
  mutable alerts_rev : alert list;
  mutable nalerts : int;
  mutable pending_rev : (string * int) list; (* expectations: label, at *)
  mutable detections_rev : detection list;
  mutable trace : Trace.t;
}

let create rules =
  { rules = Array.of_list rules;
    states = Hashtbl.create 64;
    alerts_rev = [];
    nalerts = 0;
    pending_rev = [];
    detections_rev = [];
    trace = Trace.null }

let set_trace t tr = t.trace <- tr

let alerts t = List.rev t.alerts_rev
let alert_count t = t.nalerts
let detections t = List.rev t.detections_rev
let pending_expectations t = List.length t.pending_rev

let firing t =
  let acc = ref [] in
  Hashtbl.iter
    (fun (rule, key) st -> if st.firing then acc := (rule, key) :: !acc)
    t.states;
  List.sort compare !acc

let expect t ~label ~now = t.pending_rev <- (label, now) :: t.pending_rev

let state_of t rule key =
  let k = (rule.r_name, key) in
  match Hashtbl.find_opt t.states k with
  | Some st -> st
  | None ->
    let st = { run = 0; firing = false } in
    Hashtbl.replace t.states k st;
    st

let fire t rule key ~now ~value msg =
  let a =
    { a_rule = rule.r_name; a_key = key; a_at = now; a_value = value;
      a_msg = msg }
  in
  t.alerts_rev <- a :: t.alerts_rev;
  t.nalerts <- t.nalerts + 1;
  if Trace.on t.trace ~cat:"watchdog" then
    Trace.instant t.trace ~cat:"watchdog"
      ~args:
        [ ("rule", Trace.Str rule.r_name);
          ("key", Trace.Str key);
          ("value", Trace.Float value);
          ("msg", Trace.Str msg) ]
      "alert";
  (* Resolve every armed expectation whose incident precedes this
     alert: the watchdog detected *something* after the incident, and
     the pairing is deterministic because expectations and alerts both
     live on the virtual clock. *)
  let resolved, still =
    List.partition (fun (_, at) -> at <= now) t.pending_rev
  in
  List.iter
    (fun (label, at) ->
      t.detections_rev <-
        { d_label = label;
          d_rule = rule.r_name;
          d_key = key;
          d_fault_at = at;
          d_alert_at = now }
        :: t.detections_rev)
    (List.rev resolved);
  t.pending_rev <- still

let cmp_ok cmp bound v =
  match cmp with Above -> v > bound | Below -> v < bound

let cmp_str = function Above -> ">" | Below -> "<"

(* A rule key matches its exact metric name and that name under any
   labels ([name|k=v]); it is a free prefix only when it ends with '.'
   or '|' — so ["vblade.up"] matches [vblade.up|server=x] but not
   [vblade.uplink_bytes|server=x], while ["vblade."] matches both. *)
let key_matches ~pat k =
  String.starts_with ~prefix:pat k
  &&
  let n = String.length pat in
  n = String.length k
  || k.[n] = '|'
  || (n > 0 && (pat.[n - 1] = '.' || pat.[n - 1] = '|'))

let matching_keys ts pat =
  List.filter (fun k -> key_matches ~pat k) (Timeseries.keys ts)

let eval_rule t ts rule ~now =
  let keys = matching_keys ts rule.r_prefix in
  (match rule.r_kind with
  | Absent { after } ->
    (* Key-space rule: fires when no tracked key matches the prefix
       for [after] consecutive sweeps. *)
    let st = state_of t rule "" in
    if keys = [] then begin
      st.run <- st.run + 1;
      if st.run >= after && not st.firing then begin
        st.firing <- true;
        fire t rule rule.r_prefix ~now ~value:Float.nan
          (Printf.sprintf "no metric matching %S for %d samples"
             rule.r_prefix st.run)
      end
    end
    else begin
      st.run <- 0;
      st.firing <- false
    end
  | _ -> ());
  List.iter
    (fun key ->
      match Timeseries.status ts key with
      | None -> ()
      | Some s -> (
        let _, v = s.Timeseries.s_last in
        match rule.r_kind with
        | Absent _ -> ()
        | Threshold { cmp; bound; hold } ->
          let st = state_of t rule key in
          if cmp_ok cmp bound v then begin
            st.run <- st.run + 1;
            if st.run >= hold && not st.firing then begin
              st.firing <- true;
              fire t rule key ~now ~value:v
                (Printf.sprintf "%s = %s %s %s for %d sample%s" key
                   (Timeseries.fmt_float v) (cmp_str cmp)
                   (Timeseries.fmt_float bound) st.run
                   (if st.run > 1 then "s" else ""))
            end
          end
          else begin
            st.run <- 0;
            st.firing <- false
          end
        | Rate_of_change { cmp; per_s } -> (
          match s.Timeseries.s_prev with
          | None -> ()
          | Some (pt, pv) ->
            let lt, _ = s.Timeseries.s_last in
            let dt_s = float_of_int (lt - pt) /. 1e9 in
            if dt_s > 0.0 then begin
              let dv = (v -. pv) /. dt_s in
              let st = state_of t rule key in
              if cmp_ok cmp per_s dv then begin
                if not st.firing then begin
                  st.firing <- true;
                  fire t rule key ~now ~value:dv
                    (Printf.sprintf "d(%s)/dt = %s/s %s %s/s" key
                       (Timeseries.fmt_float dv) (cmp_str cmp)
                       (Timeseries.fmt_float per_s))
                end
              end
              else st.firing <- false
            end)
        | Stale { after } ->
          let st = state_of t rule key in
          if s.Timeseries.s_count >= after
             && s.Timeseries.s_same_run >= after
          then begin
            if not st.firing then begin
              st.firing <- true;
              fire t rule key ~now ~value:v
                (Printf.sprintf "%s stuck at %s for %d samples" key
                   (Timeseries.fmt_float v) s.Timeseries.s_same_run)
            end
          end
          else st.firing <- false))
    keys

let evaluate t ts ~now =
  Array.iter (fun rule -> eval_rule t ts rule ~now) t.rules

let attach t ts = Timeseries.on_sample ts (fun ~now -> evaluate t ts ~now)

(* --- rule parsing (bmcastctl --rule) --- *)

let strip s = String.trim s

let parse_error spec reason =
  invalid_arg (Printf.sprintf "Watchdog.rule_of_string: %S: %s" spec reason)

let float_of spec s =
  match float_of_string_opt (strip s) with
  | Some v -> v
  | None -> parse_error spec "expected a number"

let int_of spec s =
  match int_of_string_opt (strip s) with
  | Some v -> v
  | None -> parse_error spec "expected an integer"

(* Grammar (see the .mli):
     [NAME:]KEY<VAL | [NAME:]KEY>VAL        threshold (@H holds H samples)
     [NAME:]rate(KEY)<VAL | ...>VAL         rate-of-change per second
     [NAME:]absent(KEY)@N                   no matching key for N sweeps
     [NAME:]stale(KEY)@N                    value unchanged for N sweeps *)
let rule_of_string spec =
  let body, name =
    match String.index_opt spec ':' with
    | Some i
      when not (String.contains (String.sub spec 0 i) '(')
           && not (String.contains (String.sub spec 0 i) '<')
           && not (String.contains (String.sub spec 0 i) '>') ->
      ( strip (String.sub spec (i + 1) (String.length spec - i - 1)),
        strip (String.sub spec 0 i) )
    | _ -> (strip spec, strip spec)
  in
  let fn_arg prefix =
    (* "fn(KEY)REST" -> Some (KEY, REST) *)
    let plen = String.length prefix in
    if String.length body > plen && String.sub body 0 plen = prefix then
      match String.index_opt body ')' with
      | Some j when j > plen ->
        Some
          ( strip (String.sub body plen (j - plen)),
            strip (String.sub body (j + 1) (String.length body - j - 1)) )
      | _ -> parse_error spec "missing ')'"
    else None
  in
  let after rest =
    match String.index_opt rest '@' with
    | Some 0 -> int_of spec (String.sub rest 1 (String.length rest - 1))
    | _ -> parse_error spec "expected @N"
  in
  match fn_arg "absent(" with
  | Some (key, rest) -> absent ~after:(after rest) ~name ~key ()
  | None -> (
    match fn_arg "stale(" with
    | Some (key, rest) -> stale ~after:(after rest) ~name ~key ()
    | None ->
      let split_cmp s =
        match (String.index_opt s '<', String.index_opt s '>') with
        | Some i, None -> (Below, i)
        | None, Some i -> (Above, i)
        | Some i, Some j -> ((if i < j then Below else Above), min i j)
        | None, None -> parse_error spec "expected '<', '>', absent() or stale()"
      in
      (match fn_arg "rate(" with
      | Some (key, rest) ->
        let cmp, i = split_cmp rest in
        let v = float_of spec (String.sub rest (i + 1) (String.length rest - i - 1)) in
        rate_of_change ~name ~key cmp v
      | None ->
        let cmp, i = split_cmp body in
        let key = strip (String.sub body 0 i) in
        let rest = String.sub body (i + 1) (String.length body - i - 1) in
        let value, hold =
          match String.index_opt rest '@' with
          | None -> (float_of spec rest, 1)
          | Some j ->
            ( float_of spec (String.sub rest 0 j),
              int_of spec (String.sub rest (j + 1) (String.length rest - j - 1))
            )
        in
        if key = "" then parse_error spec "empty key";
        threshold ~hold ~name ~key cmp value))

(* --- export --- *)

let alerts_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"alerts\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n{\"rule\":";
      Metrics.buf_add_json_string b a.a_rule;
      Buffer.add_string b ",\"key\":";
      Metrics.buf_add_json_string b a.a_key;
      Buffer.add_string b (Printf.sprintf ",\"t_ns\":%d,\"value\":" a.a_at);
      Metrics.buf_add_float b a.a_value;
      Buffer.add_string b ",\"msg\":";
      Metrics.buf_add_json_string b a.a_msg;
      Buffer.add_char b '}')
    (alerts t);
  Buffer.add_string b "],\n\"detections\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n{\"label\":";
      Metrics.buf_add_json_string b d.d_label;
      Buffer.add_string b ",\"rule\":";
      Metrics.buf_add_json_string b d.d_rule;
      Buffer.add_string b ",\"key\":";
      Metrics.buf_add_json_string b d.d_key;
      Buffer.add_string b
        (Printf.sprintf ",\"fault_t_ns\":%d,\"alert_t_ns\":%d,\"latency_ns\":%d}"
           d.d_fault_at d.d_alert_at (detection_latency_ns d)))
    (detections t);
  Buffer.add_string b "]}";
  Buffer.contents b
