(** Span-scoped GC allocation profiler.

    Attributes minor words and promoted words to named categories by
    snapshotting [Gc.minor_words]/[Gc.counters] at scope entry and
    exit. Attribution is
    {e self}-style: a parent category's figures exclude everything
    attributed to scopes nested inside it, and the profiler's own
    allocation (frames, counter tuples) is subtracted using a
    calibration loop run by {!create}.

    {b Figures are wall-side, not virtual}: they depend on the host
    runtime and are {e not} covered by the simulator's determinism
    contract. Reports must place them in a clearly-separated
    non-deterministic section.

    {b Scopes must not cross a scheduling point.} The engine suspends
    fibers via effects; a scope held across [Sim.sleep]/suspension
    would absorb every interleaved fiber's allocation. Only scope
    non-blocking stretches (codecs, frame dispatch, register access).
    Unbalanced exits are tolerated (the stack is force-closed down to
    the matching frame) and counted in {!mismatches}. *)

type t

val null : t
(** Disabled profiler: every operation is a no-op, {!span} adds no
    overhead beyond one branch. *)

val create : unit -> t
(** Live profiler. Runs a short calibration loop (a few hundred empty
    scopes) to measure the profiler's own per-scope allocation. *)

val enabled : t -> bool

val enter : t -> string -> unit
(** Open a scope attributing to the given category. *)

val exit : t -> string -> unit
(** Close the innermost scope of the given category, force-closing any
    unbalanced scopes above it. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t cat f] runs [f] inside a scope (closed on exception
    too). *)

val mismatches : t -> int
(** Number of unbalanced scope exits observed — should be zero when
    the scoping discipline holds. *)

type row = {
  row_cat : string;
  calls : int;
  minor_words : float;  (** self-attributed, calibrated *)
  promoted_words : float;
}

val rows : t -> row list
(** Sorted by minor words, descending (name ascending on ties). *)

val to_text : t -> string
(** The top-allocators table. *)

val to_json : t -> string
(** [{"categories":[...],"mismatches":..,"calibration":{...}}] —
    values are non-deterministic (see module doc). *)

val clear : t -> unit
