(** Deterministic tracing of simulation runs.

    A tracer records spans, instant events and counter samples with
    {e virtual-time} timestamps (integer nanoseconds, compatible with
    [Bmcast_engine.Time.t]) into a bounded in-memory ring, and exports
    them as a Chrome [trace_event] JSON file (open in Perfetto /
    [chrome://tracing]) or as JSONL.

    Determinism contract: the tracer never reads wall clocks and its
    output depends only on the recorded event stream, so a seeded
    simulation produces byte-identical exports on every run. Recording
    takes zero virtual time and must never change simulation behaviour;
    the disabled tracer ({!null}) records nothing and allocates nothing
    when call sites guard with {!on}. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type args = (string * value) list

type phase = P_span | P_instant | P_counter

type event = {
  phase : phase;
  cat : string;
  name : string;
  ts : int;  (** virtual ns; for spans, the start time *)
  dur : int;  (** spans only; virtual ns *)
  value : float;  (** counters only *)
  args : args;
}

type t

val null : t
(** The disabled tracer: every operation is a no-op. This is the
    tracer a simulation carries unless one is attached explicitly. *)

val create :
  ?capacity:int -> ?categories:string list -> ?sample_every:int -> unit -> t
(** A live tracer. [capacity] bounds the ring (default [2^20] events;
    once full, the oldest events are overwritten and counted in
    {!dropped}). [categories] restricts recording to the listed
    categories; omitted means record everything. [sample_every]
    (default 1 = record everything) downsamples hot-path call sites
    that guard with {!sample}: only every Nth such event is recorded.
    Sampling is counter-based, so it is deterministic and exports stay
    byte-identical across same-seed runs. *)

val enabled : t -> bool

val set_clock : t -> (unit -> int) -> unit
(** Install the virtual clock (done by [Sim.create]). No-op on
    {!null}. *)

val on : t -> cat:string -> bool
(** [on t ~cat] is [true] when events of category [cat] would be
    recorded. Hot paths should guard with this before building
    argument lists — the guard itself allocates nothing. *)

val sample : t -> cat:string -> bool
(** Like {!on}, but additionally downsampled: at most one [true] per
    [sample_every] calls (for the enabled category). Use on per-event
    hot paths (scheduler sleeps, per-chunk I/O) so tracing at fleet
    scale records a deterministic 1-in-N subset instead of drowning
    the ring. With the default [sample_every = 1] this is exactly
    {!on}. Each [true] consumes a tick, so call it once per event and
    reuse the result. *)

val sample_every : t -> int

val set_sample_every : t -> int -> unit
(** Adjust the sampling factor (resets the phase). No-op on {!null};
    raises [Invalid_argument] when [n < 1]. *)

val span : t -> cat:string -> ?args:(unit -> args) -> string -> (unit -> 'a) -> 'a
(** [span t ~cat name f] runs [f] and records a complete span covering
    its virtual-time extent (also on exception). [args] is only
    evaluated when the event is recorded. *)

val complete : t -> cat:string -> ?args:args -> string -> ts:int -> unit
(** [complete t ~cat name ~ts] records a span that began at virtual
    time [ts] and ends now — for spans whose end is observed in a
    different process than their start. *)

val instant : t -> cat:string -> ?args:args -> string -> unit

val counter : t -> cat:string -> string -> float -> unit
(** Counter sample; rendered as a value track in Perfetto. *)

val event_count : t -> int
(** Events currently held in the ring. *)

val iter : t -> (event -> unit) -> unit
(** Oldest-to-newest iteration over the events currently in the ring —
    the read side for in-process analysis ({!Analytics}) as opposed to
    the file exports below. *)

val dropped : t -> int
(** Events overwritten after the ring filled. *)

val to_chrome : t -> string
(** Chrome [trace_event] JSON ([ts]/[dur] in microseconds, full ns
    precision preserved as a fixed-point fraction). One Perfetto track
    per category, numbered by first appearance. *)

val to_jsonl : t -> string
(** One JSON object per line, same fields as {!to_chrome}, no
    wrapper object. *)

val write_chrome : t -> string -> unit
val write_jsonl : t -> string -> unit
