(* Named-metric registry.

   Subsystems register counters/gauges/histograms/rates under a name
   plus optional labels and hold on to the returned handle; the
   registry owns nothing but the name -> instrument mapping, so
   snapshots are a pure read. Export is sorted by key, never by
   Hashtbl iteration order, to keep output byte-stable across runs. *)

type instrument =
  | Counter of float ref
  | Gauge of float ref
  | Derived of (unit -> float)
  | Histogram of Stats.Histogram.t
  | Rate of Stats.Rate.t

type t = {
  enabled : bool;
  tbl : (string, instrument) Hashtbl.t;
}

let null = { enabled = false; tbl = Hashtbl.create 1 }
let create () = { enabled = true; tbl = Hashtbl.create 64 }
let enabled t = t.enabled

let key name labels =
  match labels with
  | [] -> name
  | labels ->
    let labels = List.sort compare labels in
    name
    ^ String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf "|%s=%s" k v) labels)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Derived _ -> "derived"
  | Histogram _ -> "histogram"
  | Rate _ -> "rate"

(* Register-or-reuse: a second registration of the same key returns the
   existing instrument so independent subsystems can share a metric. The
   disabled registry hands out fresh throwaway instruments instead of
   storing them — [null] is a shared singleton and must stay stateless. *)
let register t ~labels name ~make ~extract =
  if not t.enabled then Option.get (extract (make ()))
  else
  let k = key name labels in
  match Hashtbl.find_opt t.tbl k with
  | Some existing -> (
    match extract existing with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered as a %s" k
           (kind_name existing)))
  | None ->
    let instr = make () in
    Hashtbl.replace t.tbl k instr;
    Option.get (extract instr)

let counter ?(labels = []) t name =
  register t ~labels name
    ~make:(fun () -> Counter (ref 0.0))
    ~extract:(function Counter r -> Some r | _ -> None)

let gauge ?(labels = []) t name =
  register t ~labels name
    ~make:(fun () -> Gauge (ref 0.0))
    ~extract:(function Gauge r -> Some r | _ -> None)

let histogram ?(labels = []) t name =
  register t ~labels name
    ~make:(fun () -> Histogram (Stats.Histogram.create ()))
    ~extract:(function Histogram h -> Some h | _ -> None)

let rate ?(labels = []) t name =
  register t ~labels name
    ~make:(fun () -> Rate (Stats.Rate.create ()))
    ~extract:(function Rate r -> Some r | _ -> None)

(* Derived gauges are pull-only: the closure is evaluated when a
   snapshot consumer visits the key, never on the hot path. First
   registration wins so shared subsystems can re-register the same key
   without clobbering an earlier closure. *)
let derived ?(labels = []) t name f =
  if t.enabled then begin
    let k = key name labels in
    match Hashtbl.find_opt t.tbl k with
    | Some (Derived _) -> ()
    | Some existing ->
      invalid_arg
        (Printf.sprintf "Metrics: %S already registered as a %s" k
           (kind_name existing))
    | None -> Hashtbl.replace t.tbl k (Derived f)
  end

let incr ?(by = 1.0) r = r := !r +. by
let set r v = r := v

let size t = Hashtbl.length t.tbl

(* --- typed snapshots --- *)

type view =
  | V_counter of float
  | V_gauge of float
  | V_histogram of Stats.Histogram.t
  | V_rate of Stats.Rate.t

let view_of_instrument = function
  | Counter r -> V_counter !r
  | Gauge r -> V_gauge !r
  | Derived f -> V_gauge (f ())
  | Histogram h -> V_histogram h
  | Rate r -> V_rate r

let scalar = function
  | V_counter v | V_gauge v -> v
  | V_histogram h -> float_of_int (Stats.Histogram.count h)
  | V_rate r -> Stats.Rate.total r

let sorted_keys ?filter t =
  let keep = match filter with None -> fun _ -> true | Some f -> f in
  let keys =
    Hashtbl.fold (fun k _ acc -> if keep k then k :: acc else acc) t.tbl []
  in
  List.sort compare keys

let iter ?filter t f =
  List.iter
    (fun k -> f k (view_of_instrument (Hashtbl.find t.tbl k)))
    (sorted_keys ?filter t)

let fold ?filter t f init =
  List.fold_left
    (fun acc k -> f k (view_of_instrument (Hashtbl.find t.tbl k)) acc)
    init
    (sorted_keys ?filter t)

let find t k =
  Option.map view_of_instrument (Hashtbl.find_opt t.tbl k)

(* --- export --- *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_add_float b v =
  if Float.is_nan v then Buffer.add_string b "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else Buffer.add_string b (Printf.sprintf "%.9g" v)

let buf_add_field b ~first k v =
  if not first then Buffer.add_char b ',';
  buf_add_json_string b k;
  Buffer.add_char b ':';
  buf_add_float b v

let one_second_ns = 1_000_000_000

let buf_add_view b = function
  | V_counter v | V_gauge v -> buf_add_float b v
  | V_histogram h ->
    let open Stats.Histogram in
    Buffer.add_char b '{';
    buf_add_field b ~first:true "count" (float_of_int (count h));
    if count h > 0 then begin
      buf_add_field b ~first:false "mean" (mean h);
      buf_add_field b ~first:false "stddev" (stddev h);
      buf_add_field b ~first:false "min" (min h);
      buf_add_field b ~first:false "max" (max h);
      buf_add_field b ~first:false "p50" (percentile h 50.0);
      buf_add_field b ~first:false "p90" (percentile h 90.0);
      buf_add_field b ~first:false "p99" (percentile h 99.0)
    end;
    Buffer.add_char b '}'
  | V_rate r ->
    Buffer.add_char b '{';
    buf_add_field b ~first:true "total" (Stats.Rate.total r);
    buf_add_field b ~first:false "events"
      (float_of_int (Stats.Rate.count r));
    Buffer.add_string b ",\"windows\":[";
    List.iteri
      (fun i (ts, rate) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "[";
        buf_add_float b (float_of_int ts /. 1e9);
        Buffer.add_char b ',';
        buf_add_float b rate;
        Buffer.add_char b ']')
      (Stats.Rate.per_window r ~width:one_second_ns);
    Buffer.add_string b "]}"

let to_json ?filter t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{";
  let first = ref true in
  iter ?filter t (fun k view ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_char b '\n';
      buf_add_json_string b k;
      Buffer.add_string b ": ";
      buf_add_view b view);
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let write ?filter t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?filter t))
