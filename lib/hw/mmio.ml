type handler = { read : int -> int; write : int -> int -> unit }

type interposer = {
  on_read : next:(int -> int) -> int -> int;
  on_write : next:(int -> int -> unit) -> int -> int -> unit;
}

type region = {
  base : int;
  size : int;
  device : handler;
  mutable interposer : interposer option;
}

type t = {
  mutable regions : region list;
  mutable trapped : int;
  mutable profile : Bmcast_obs.Profile.t;
}

let create () = { regions = []; trapped = 0; profile = Bmcast_obs.Profile.null }

let set_profile t p = t.profile <- p

let overlaps a_base a_size b_base b_size =
  a_base < b_base + b_size && b_base < a_base + a_size

let map t ~base ~size handler =
  if size <= 0 then invalid_arg "Mmio.map: size must be positive";
  List.iter
    (fun r ->
      if overlaps base size r.base r.size then
        invalid_arg
          (Printf.sprintf "Mmio.map: region 0x%x overlaps existing 0x%x" base
             r.base))
    t.regions;
  t.regions <- { base; size; device = handler; interposer = None } :: t.regions

let find_by_base t base =
  match List.find_opt (fun r -> r.base = base) t.regions with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Mmio: no region mapped at 0x%x" base)

let unmap t ~base =
  (* A silent no-op here would let a typo'd teardown leave a stale
     device mapped; insist the region exists, like [find_by_base]. *)
  ignore (find_by_base t base : region);
  t.regions <- List.filter (fun r -> r.base <> base) t.regions

let find_region t addr =
  match
    List.find_opt (fun r -> addr >= r.base && addr < r.base + r.size) t.regions
  with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Mmio: unmapped address 0x%x" addr)

let interpose t ~base ix =
  let r = find_by_base t base in
  if r.interposer <> None then
    invalid_arg "Mmio.interpose: region already interposed";
  r.interposer <- Some ix

let remove_interposer t ~base =
  let r = find_by_base t base in
  r.interposer <- None

(* Only the non-interposed branch is profiler-scoped: interposers
   dispatch into mediator handlers whose service paths can suspend the
   fiber, and a profiler scope must not cross a scheduling point. The
   direct register path is where the boxed-Int64 traffic the allocation
   diet targets lived (ROADMAP) — values now travel as untagged [int]. *)
let read t addr =
  let r = find_region t addr in
  let off = addr - r.base in
  match r.interposer with
  | None ->
    if Bmcast_obs.Profile.enabled t.profile then begin
      Bmcast_obs.Profile.enter t.profile "mmio.read";
      let v = r.device.read off in
      Bmcast_obs.Profile.exit t.profile "mmio.read";
      v
    end
    else r.device.read off
  | Some ix ->
    t.trapped <- t.trapped + 1;
    ix.on_read ~next:r.device.read off

let write t addr v =
  let r = find_region t addr in
  let off = addr - r.base in
  match r.interposer with
  | None ->
    if Bmcast_obs.Profile.enabled t.profile then begin
      Bmcast_obs.Profile.enter t.profile "mmio.write";
      r.device.write off v;
      Bmcast_obs.Profile.exit t.profile "mmio.write"
    end
    else r.device.write off v
  | Some ix ->
    t.trapped <- t.trapped + 1;
    ix.on_write ~next:r.device.write off v

let read64 t addr = Int64.of_int (read t addr)

let write64 t addr v =
  if Int64.of_int (Int64.to_int v) <> v then
    invalid_arg "Mmio.write64: value exceeds register representation";
  write t addr (Int64.to_int v)

let trapped_accesses t = t.trapped
