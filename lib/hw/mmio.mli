(** Memory-mapped I/O address space with VMM interposition.

    Devices map register regions; drivers access them with [read]/[write].
    A VMM can {e interpose} on a region: every access to it is then routed
    through the interposer, which may observe, forward, or answer the
    access itself. This models nested-paging-based MMIO trapping — the
    mechanism BMcast's device mediators use for I/O interpretation — and
    removing the interposition models de-virtualization.

    Register values travel as untagged [int]: every register this
    platform models is at most 32 bits wide, so an OCaml 63-bit [int]
    holds it without the boxed-[Int64] allocation that used to dominate
    the polling hot path. [read64]/[write64] keep an [int64] view at the
    device-facing boundary for callers that want real register width. *)

type t

type handler = {
  read : int -> int;  (** [read offset] within the region *)
  write : int -> int -> unit;  (** [write offset value] *)
}

(** An interposer sees region-relative offsets and the device handler. *)
type interposer = {
  on_read : next:(int -> int) -> int -> int;
  on_write : next:(int -> int -> unit) -> int -> int -> unit;
}

val create : unit -> t

val set_profile : t -> Bmcast_obs.Profile.t -> unit
(** Attach an allocation profiler (done by [Machine.create]). Only
    non-interposed register accesses are scoped (categories
    ["mmio.read"]/["mmio.write"]) — interposed accesses dispatch into
    mediator handlers that may suspend, and profiler scopes must not
    cross a scheduling point. *)

val map : t -> base:int -> size:int -> handler -> unit
(** Map a device region. Raises [Invalid_argument] on overlap. *)

val unmap : t -> base:int -> unit
(** Unmap the region mapped at exactly [base]. Raises
    [Invalid_argument] if no region is mapped there — a silent no-op
    would let a typo'd teardown leave a stale device mapped. *)

val interpose : t -> base:int -> interposer -> unit
(** Install an interposer on the region mapped at [base]. At most one
    interposer per region; raises [Invalid_argument] if the region is not
    mapped or already interposed. *)

val remove_interposer : t -> base:int -> unit
(** De-virtualize the region: subsequent accesses go directly to the
    device handler. No-op if none installed. *)

val read : t -> int -> int
(** [read addr]: absolute address. Raises [Invalid_argument] if unmapped. *)

val write : t -> int -> int -> unit

val read64 : t -> int -> int64
(** [int64] shim over {!read} for device-width callers. *)

val write64 : t -> int -> int64 -> unit
(** [int64] shim over {!write}. Raises [Invalid_argument] if the value
    does not fit the 63-bit register representation. *)

val trapped_accesses : t -> int
(** Number of accesses that went through any interposer (i.e. would have
    caused VM exits on real hardware). *)
