(** Ring-buffer NIC model (e1000-style).

    Transmit and receive descriptor rings live in guest memory and are
    located by base-address registers (TDBA/RDBA); the driver advances
    tail registers over MMIO and the device advances head registers as
    it consumes/fills descriptors. This is the interface the paper's
    small polling VMM drivers (PRO/1000, X540, RTL816x, NetXtreme;
    §4.3) program, and the register set the shared-NIC device mediator
    of §6 shadows: a mediator allocates its own {e shadow} rings, points
    TDBA/RDBA at them, and copies descriptors to and from the rings the
    guest driver maintains.

    Ring discipline (e1000 semantics, simplified):
    - TX: software writes descriptors at indices [\[TDH, TDT)] of the
      ring at TDBA and bumps TDT; hardware transmits from TDH and
      advances it to TDT.
    - RX: software pre-publishes free buffers and bumps RDT; hardware
      fills the descriptor at RDH for each arriving frame, advances RDH,
      and raises its interrupt (if enabled). If the ring is full
      ([RDH = RDT]), the frame is dropped. *)

val ring_size : int

(** Register byte offsets: [tdh]/[tdt] transmit head/tail, [rdh]/[rdt]
    receive head/tail, [ie] interrupt enable (1 = rx interrupts),
    [tdba]/[rdba] descriptor ring base addresses. *)
module Regs : sig
  val tdh : int
  val tdt : int
  val rdh : int
  val rdt : int
  val ie : int
  val tdba : int
  val rdba : int
end

type t

val create :
  Bmcast_engine.Sim.t ->
  mmio:Bmcast_hw.Mmio.t ->
  base:int ->
  fabric:Fabric.t ->
  name:string ->
  irq:Bmcast_hw.Irq.t ->
  irq_vec:int ->
  t
(** Attaches a fabric port, maps registers at [base], and allocates a
    default TX and RX ring (TDBA/RDBA point at them initially, so
    simple owners need not manage rings). *)

val port : t -> Fabric.port

(** [fabric t] is the fabric this NIC is attached to (for frame release
    by ring consumers). *)
val fabric : t -> Fabric.t
val base : t -> int
val irq_vec : t -> int
val raw : t -> Bmcast_hw.Mmio.handler

(** {2 Descriptor rings (guest memory)} *)

val alloc_tx_ring : t -> int
(** Allocate a TX descriptor ring; returns its address (a TDBA value). *)

val alloc_rx_ring : t -> int

val default_tx_ring : t -> int
(** Address of the ring allocated at creation. *)

val default_rx_ring : t -> int

val set_tx_desc :
  t -> ring:int -> idx:int -> dst:int -> size_bytes:int -> Packet.payload -> unit
(** Write a TX descriptor into a ring (plain memory write, untrapped). *)

val tx_desc : t -> ring:int -> idx:int -> (int * int * Packet.payload) option
(** Read back a TX descriptor: [(dst, size_bytes, payload)]. *)

val rx_desc : t -> ring:int -> idx:int -> Packet.t option
(** Frame placed at an RX descriptor, if any. *)

val put_rx_desc : t -> ring:int -> idx:int -> Packet.t -> unit
(** Store a frame into an RX ring slot (used by a mediator relaying
    frames into the guest's ring). *)

val clear_rx_desc : t -> ring:int -> idx:int -> unit

val rx_dropped : t -> int
(** Frames dropped because the RX ring was full. *)
