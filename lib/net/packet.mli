(** Ethernet frames.

    Payloads are an extensible variant so higher layers (AoE, iSCSI, NFS
    models) can define their own without this library depending on them.
    [size_bytes] is the full on-wire frame size including all headers;
    link-time serialization is computed from it. *)

type payload = ..

type payload += Raw of string

type t = {
  mutable src : int;  (** source port id *)
  mutable dst : int;  (** destination port id *)
  mutable size_bytes : int;
  mutable payload : payload;
}
(** Fields are mutable so {!Bmcast_net.Fabric} can recycle frame records
    through its pool instead of allocating one per forwarded frame; see
    the ownership rules on [Fabric.attach]. Code outside the fabric
    should treat a delivered frame as read-only. *)

val header_bytes : int
(** Ethernet header + FCS + preamble/IFG accounted per frame (38). *)

val max_frame : mtu:int -> int
(** Largest legal frame for an MTU: [mtu + header_bytes]. *)
