type payload = ..

type payload += Raw of string

type t = {
  mutable src : int;
  mutable dst : int;
  mutable size_bytes : int;
  mutable payload : payload;
}

(* 14 header + 4 FCS + 8 preamble + 12 inter-frame gap *)
let header_bytes = 38

let max_frame ~mtu = mtu + header_bytes
