(** Switched Ethernet fabric.

    Endpoints attach to ports of a store-and-forward switch (the paper's
    FUJITSU SR-S348TC1 gigabit switch with 9000-byte MTU). A frame is
    serialized onto the sender's uplink at the port rate, forwarded, then
    serialized again on the destination port — so multiple senders
    targeting one destination (many instances hitting one storage server)
    naturally saturate that port. Optional packet loss — uniform or
    bursty (Gilbert-Elliott) — exercises the AoE retransmission
    extension, and per-port link state / NIC stalls support the fault
    injection subsystem (see {!Bmcast_faults.Fault}). *)

type t

type port

(** Frame-loss process applied at the switch forwarding point. [Uniform]
    drops each frame independently; [Gilbert] is the classic two-state
    bursty-loss chain, stepped once per forwarded frame: in the good
    state frames drop with [loss_good], in the bad state with
    [loss_bad], and the state flips with the two transition
    probabilities. *)
type loss_model =
  | Uniform of float
  | Gilbert of {
      p_enter_bad : float;
      p_exit_bad : float;
      loss_good : float;
      loss_bad : float;
    }

val create :
  Bmcast_engine.Sim.t ->
  ?port_rate_bytes_per_s:float ->
  ?latency:Bmcast_engine.Time.span ->
  ?mtu:int ->
  ?loss_rate:float ->
  ?pool_frames:bool ->
  unit ->
  t
(** Defaults: 1 GbE (125e6 B/s), 20 us one-way latency, MTU 9000, no
    loss, frame pooling on ([pool_frames:false] allocates a fresh
    {!Packet.t} per frame instead — observationally identical, kept for
    differential testing). Registers fabric-wide derived gauges ([net.frames_sent],
    [net.frames_dropped], [net.link_drops], [net.bytes_delivered],
    [net.port_rate_bytes_per_s]) into the simulation's metrics
    registry — pull-only, evaluated at sample time. *)

val attach : t -> name:string -> (Packet.t -> unit) -> port
(** Attach an endpoint. The callback receives delivered frames, called
    directly from the fabric's per-port egress process — it must not
    block (no [Sim.sleep]/[recv]; spawn a process for deferred work),
    and an exception it raises fails that process.

    {b Frame ownership.} Frame records come from a fabric-keyed pool.
    When the callback returns, the fabric recycles the frame — its
    fields become meaningless (payload is set to a sentinel) — unless
    the callback called {!keep_frame} during delivery, in which case the
    holder owns the record and returns it with {!release_frame} when
    done (or simply drops it to the GC, which is always safe, merely
    unpooled). The frame's {e payload} is never recycled with the
    record: its lifetime is the holder's business. *)

val keep_frame : t -> unit
(** Called from inside an rx callback: take ownership of the frame
    being delivered, preventing the fabric from recycling it when the
    callback returns. *)

val release_frame : t -> Packet.t -> unit
(** Return a kept frame record to the pool. The caller must hold the
    only live reference; the record's fields are immediately dead. *)

val pool_free_count : t -> int
(** Frames currently sitting in the free list (for pool tests). *)

val port_id : port -> int

val port_of_id : t -> int -> port
(** Look a port up by its id (for fault injection on an endpoint known
    only by number). Raises [Invalid_argument] for unknown ids. *)

val mtu : t -> int

val set_loss_rate : t -> float -> unit
(** Shorthand for [set_loss_model t (Uniform r)]. *)

val set_loss_model : t -> loss_model -> unit
(** Replace the loss process; a Gilbert chain (re)starts in the good
    state. *)

val loss_model : t -> loss_model

val loss_in_bad : t -> bool
(** Whether the Gilbert-Elliott chain currently sits in its bad state.
    Always [false] under [Uniform] and immediately after any model
    switch ({!set_loss_model} or {!set_loss_rate}) — a diagnostic
    accessor that lets tests pin the channel-reset contract. *)

(** {2 Link faults (fault injection hook points)} *)

val set_link_up : port -> bool -> unit
(** Administratively take an endpoint's link down (or back up). While
    either end of a path is down, frames crossing the switch are
    dropped and counted in {!link_drops}; senders notice only through
    missing responses, as on real hardware. *)

val link_up : port -> bool

val stall : port -> Bmcast_engine.Time.span -> unit
(** Freeze the port's NIC for a duration starting now (a wedged DMA
    engine / PCIe hiccup): nothing serializes in or out until the stall
    expires, but queued frames survive and drain afterwards.
    Overlapping stalls extend to the latest deadline. *)

(** {2 Multicast groups}

    A multicast group is a switch-level fan-out set (IGMP-snooped
    replication): sending to a group id delivers a copy of the frame to
    every member whose link is up, with the loss model rolled
    independently per member. Group ids are negative and never collide
    with port ids; pass one as [~dst] to {!send}/{!send_wait}.

    {b Frame ownership under fan-out.} Each member receives its own
    pooled frame {e record} (the normal rx recycling rules apply), but
    all copies share the sender's {e payload}. Multicast payloads must
    therefore be GC-owned — never scratch-pooled — and no receiver may
    release or mutate them. *)

val mcast_group : t -> int
(** Allocate a fresh, empty multicast group; returns its (negative) id. *)

val mcast_join : port -> group:int -> unit
(** Add the port to the group (idempotent). Raises [Invalid_argument]
    for an unknown group id. *)

val mcast_leave : port -> group:int -> unit
(** Remove the port from the group (no-op if absent). Member order —
    and hence fan-out order — stays join order. *)

val mcast_members : t -> group:int -> int
(** Current member count of a group. *)

val is_mcast : int -> bool
(** Whether a [dst] value names a multicast group (i.e. is negative). *)

val send : port -> dst:int -> size_bytes:int -> Packet.payload -> unit
(** Enqueue a frame for transmission (returns immediately; callable from
    any context). Raises [Invalid_argument] if the frame exceeds
    {!Packet.max_frame} for the fabric MTU or the destination is
    unknown at delivery time. *)

val send_wait : port -> dst:int -> size_bytes:int -> Packet.payload -> unit
(** Like [send] but models a bounded socket buffer: blocks the calling
    process while the transmit queue is full (process context). A
    single-threaded sender therefore serializes against the wire — the
    original vblade's bottleneck (§4.2). *)

(** {2 Statistics} *)

val frames_sent : t -> int
val frames_dropped : t -> int

val link_drops : t -> int
(** Subset of {!frames_dropped} lost to a down link (vs. the loss
    model). *)

val bytes_delivered : t -> int

val mcast_sent : t -> int
(** Frames submitted to a multicast group (counted once per send). *)

val mcast_deliveries : t -> int
(** Per-member multicast frame copies enqueued for delivery (excludes
    per-member link/loss drops, which count in {!frames_dropped}). *)

val port_bytes_out : port -> int

val port_busy_ns : port -> int
(** Cumulative virtual time the port's uplink spent serializing frames.
    The derivative of this against wall (virtual) time is the uplink's
    utilization fraction: the timeseries layer samples it via
    [vblade.uplink_busy_s] and a rate-of-change watchdog rule on that
    key is a saturation detector. *)

val port_queue_depth : port -> int

val rate_bytes_per_s : t -> float
(** The configured per-port line rate. *)
