(** Switched Ethernet fabric.

    Endpoints attach to ports of a store-and-forward switch (the paper's
    FUJITSU SR-S348TC1 gigabit switch with 9000-byte MTU). A frame is
    serialized onto the sender's uplink at the port rate, forwarded, then
    serialized again on the destination port — so multiple senders
    targeting one destination (many instances hitting one storage server)
    naturally saturate that port. Optional packet loss — uniform or
    bursty (Gilbert-Elliott) — exercises the AoE retransmission
    extension, and per-port link state / NIC stalls support the fault
    injection subsystem (see {!Bmcast_faults.Fault}). *)

type t

type port

(** Frame-loss process applied at the switch forwarding point. [Uniform]
    drops each frame independently; [Gilbert] is the classic two-state
    bursty-loss chain, stepped once per forwarded frame: in the good
    state frames drop with [loss_good], in the bad state with
    [loss_bad], and the state flips with the two transition
    probabilities. *)
type loss_model =
  | Uniform of float
  | Gilbert of {
      p_enter_bad : float;
      p_exit_bad : float;
      loss_good : float;
      loss_bad : float;
    }

val create :
  Bmcast_engine.Sim.t ->
  ?port_rate_bytes_per_s:float ->
  ?latency:Bmcast_engine.Time.span ->
  ?mtu:int ->
  ?loss_rate:float ->
  unit ->
  t
(** Defaults: 1 GbE (125e6 B/s), 20 us one-way latency, MTU 9000, no
    loss. Registers fabric-wide derived gauges ([net.frames_sent],
    [net.frames_dropped], [net.link_drops], [net.bytes_delivered],
    [net.port_rate_bytes_per_s]) into the simulation's metrics
    registry — pull-only, evaluated at sample time. *)

val attach : t -> name:string -> (Packet.t -> unit) -> port
(** Attach an endpoint; the callback receives delivered frames (called
    in a fresh simulation process). *)

val port_id : port -> int

val port_of_id : t -> int -> port
(** Look a port up by its id (for fault injection on an endpoint known
    only by number). Raises [Invalid_argument] for unknown ids. *)

val mtu : t -> int

val set_loss_rate : t -> float -> unit
(** Shorthand for [set_loss_model t (Uniform r)]. *)

val set_loss_model : t -> loss_model -> unit
(** Replace the loss process; a Gilbert chain (re)starts in the good
    state. *)

val loss_model : t -> loss_model

(** {2 Link faults (fault injection hook points)} *)

val set_link_up : port -> bool -> unit
(** Administratively take an endpoint's link down (or back up). While
    either end of a path is down, frames crossing the switch are
    dropped and counted in {!link_drops}; senders notice only through
    missing responses, as on real hardware. *)

val link_up : port -> bool

val stall : port -> Bmcast_engine.Time.span -> unit
(** Freeze the port's NIC for a duration starting now (a wedged DMA
    engine / PCIe hiccup): nothing serializes in or out until the stall
    expires, but queued frames survive and drain afterwards.
    Overlapping stalls extend to the latest deadline. *)

val send : port -> dst:int -> size_bytes:int -> Packet.payload -> unit
(** Enqueue a frame for transmission (returns immediately; callable from
    any context). Raises [Invalid_argument] if the frame exceeds
    {!Packet.max_frame} for the fabric MTU or the destination is
    unknown at delivery time. *)

val send_wait : port -> dst:int -> size_bytes:int -> Packet.payload -> unit
(** Like [send] but models a bounded socket buffer: blocks the calling
    process while the transmit queue is full (process context). A
    single-threaded sender therefore serializes against the wire — the
    original vblade's bottleneck (§4.2). *)

(** {2 Statistics} *)

val frames_sent : t -> int
val frames_dropped : t -> int

val link_drops : t -> int
(** Subset of {!frames_dropped} lost to a down link (vs. the loss
    model). *)

val bytes_delivered : t -> int
val port_bytes_out : port -> int

val port_busy_ns : port -> int
(** Cumulative virtual time the port's uplink spent serializing frames.
    The derivative of this against wall (virtual) time is the uplink's
    utilization fraction: the timeseries layer samples it via
    [vblade.uplink_busy_s] and a rate-of-change watchdog rule on that
    key is a saturation detector. *)

val port_queue_depth : port -> int

val rate_bytes_per_s : t -> float
(** The configured per-port line rate. *)
