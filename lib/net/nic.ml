module Sim = Bmcast_engine.Sim
module Mmio = Bmcast_hw.Mmio
module Irq = Bmcast_hw.Irq

let ring_size = 256

module Regs = struct
  let tdh = 0x00
  let tdt = 0x08
  let rdh = 0x10
  let rdt = 0x18
  let ie = 0x20
  let tdba = 0x28
  let rdba = 0x30
end

type tx_desc = { dst : int; size_bytes : int; payload : Packet.payload }

type t = {
  sim : Sim.t;
  base : int;
  irq : Irq.t;
  irq_vec : int;
  mutable fabric_port : Fabric.port option;
  mutable fabric_ : Fabric.t option;
  (* descriptor rings, keyed by address (guest memory) *)
  mutable next_addr : int;
  tx_rings : (int, tx_desc option array) Hashtbl.t;
  rx_rings : (int, Packet.t option array) Hashtbl.t;
  default_tx : int;
  default_rx : int;
  (* registers *)
  mutable tdba : int;
  mutable rdba : int;
  mutable tdh : int;
  mutable tdt : int;
  mutable rdh : int;
  mutable rdt : int;
  mutable ie : int;
  mutable rx_dropped : int;
}

let port t = Option.get t.fabric_port
let base t = t.base
let irq_vec t = t.irq_vec
let rx_dropped t = t.rx_dropped
let default_tx_ring t = t.default_tx
let default_rx_ring t = t.default_rx

let fresh_addr t =
  let a = t.next_addr in
  t.next_addr <- a + 0x1000;
  a

let alloc_tx_ring t =
  let a = fresh_addr t in
  Hashtbl.replace t.tx_rings a (Array.make ring_size None);
  a

let alloc_rx_ring t =
  let a = fresh_addr t in
  Hashtbl.replace t.rx_rings a (Array.make ring_size None);
  a

let tx_ring t addr =
  match Hashtbl.find_opt t.tx_rings addr with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Nic: no TX ring at 0x%x" addr)

let rx_ring t addr =
  match Hashtbl.find_opt t.rx_rings addr with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Nic: no RX ring at 0x%x" addr)

let check_idx idx =
  if idx < 0 || idx >= ring_size then invalid_arg "Nic: ring index out of range"

let set_tx_desc t ~ring ~idx ~dst ~size_bytes payload =
  check_idx idx;
  (tx_ring t ring).(idx) <- Some { dst; size_bytes; payload }

let tx_desc t ~ring ~idx =
  check_idx idx;
  Option.map
    (fun d -> (d.dst, d.size_bytes, d.payload))
    (tx_ring t ring).(idx)

let rx_desc t ~ring ~idx =
  check_idx idx;
  (rx_ring t ring).(idx)

let put_rx_desc t ~ring ~idx frame =
  check_idx idx;
  (rx_ring t ring).(idx) <- Some frame

let clear_rx_desc t ~ring ~idx =
  check_idx idx;
  (rx_ring t ring).(idx) <- None

(* Device-side transmit: drain [TDH, TDT) of the ring at TDBA. *)
let kick_tx t =
  let ring = tx_ring t t.tdba in
  while t.tdh <> t.tdt do
    (match ring.(t.tdh) with
    | Some d ->
      Fabric.send (port t) ~dst:d.dst ~size_bytes:d.size_bytes d.payload;
      ring.(t.tdh) <- None
    | None -> invalid_arg "Nic: TX descriptor not populated");
    t.tdh <- (t.tdh + 1) mod ring_size
  done

let fabric t = Option.get t.fabric_

let on_rx t frame =
  if t.rdh = t.rdt then t.rx_dropped <- t.rx_dropped + 1
  else begin
    (* The ring retains the frame past this callback; the consumer that
       drains the descriptor releases it (see fabric.mli ownership). *)
    Fabric.keep_frame (fabric t);
    (rx_ring t t.rdba).(t.rdh) <- Some frame;
    t.rdh <- (t.rdh + 1) mod ring_size;
    if t.ie <> 0 then Irq.raise_irq t.irq ~vec:t.irq_vec
  end

let reg_read t off =
  if off = Regs.tdh then t.tdh
  else if off = Regs.tdt then t.tdt
  else if off = Regs.rdh then t.rdh
  else if off = Regs.rdt then t.rdt
  else if off = Regs.ie then t.ie
  else if off = Regs.tdba then t.tdba
  else if off = Regs.rdba then t.rdba
  else invalid_arg (Printf.sprintf "Nic: read of unknown register 0x%x" off)

let reg_write t off v =
  if off = Regs.tdt then begin
    if v < 0 || v >= ring_size then invalid_arg "Nic: TDT out of range";
    t.tdt <- v;
    kick_tx t
  end
  else if off = Regs.rdt then begin
    if v < 0 || v >= ring_size then invalid_arg "Nic: RDT out of range";
    t.rdt <- v
  end
  else if off = Regs.ie then t.ie <- v
  else if off = Regs.tdba then begin
    ignore (tx_ring t v : tx_desc option array);
    t.tdba <- v;
    t.tdh <- 0;
    t.tdt <- 0
  end
  else if off = Regs.rdba then begin
    ignore (rx_ring t v : Packet.t option array);
    t.rdba <- v;
    t.rdh <- 0;
    t.rdt <- 0
  end
  else invalid_arg (Printf.sprintf "Nic: write of unknown register 0x%x" off)

let raw t = { Mmio.read = reg_read t; write = reg_write t }

let create sim ~mmio ~base ~fabric ~name ~irq ~irq_vec =
  let t =
    { sim;
      base;
      irq;
      irq_vec;
      fabric_port = None;
      fabric_ = None;
      next_addr = 0xA000_0000 + (base land 0xFFFF);
      tx_rings = Hashtbl.create 4;
      rx_rings = Hashtbl.create 4;
      default_tx = 0;
      default_rx = 0;
      tdba = 0;
      rdba = 0;
      tdh = 0;
      tdt = 0;
      rdh = 0;
      rdt = 0;
      ie = 0;
      rx_dropped = 0 }
  in
  let tx = alloc_tx_ring t and rx = alloc_rx_ring t in
  let t = { t with default_tx = tx; default_rx = rx; tdba = tx; rdba = rx } in
  t.fabric_ <- Some fabric;
  t.fabric_port <- Some (Fabric.attach fabric ~name (on_rx t));
  Mmio.map mmio ~base ~size:0x40 (raw t);
  t
