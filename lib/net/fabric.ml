module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Mailbox = Bmcast_engine.Mailbox
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics

(* Frame loss is either memoryless or a two-state Gilbert-Elliott chain
   (good/bad), which produces the bursty losses real switches exhibit
   under congestion or a flaky cable. The chain is stepped once per
   forwarded frame. *)
type loss_model =
  | Uniform of float
  | Gilbert of {
      p_enter_bad : float;  (* per-frame P(good -> bad) *)
      p_exit_bad : float;  (* per-frame P(bad -> good) *)
      loss_good : float;
      loss_bad : float;
    }

type t = {
  sim : Sim.t;
  rate : float;
  latency : Time.span;
  mtu : int;
  mutable loss : loss_model;
  mutable loss_in_bad : bool;  (* Gilbert-Elliott channel state *)
  prng : Prng.t;
  mutable ports : port array;
  mutable n_ports : int;
  (* Multicast groups: a group id is a negative [dst] (-1, -2, ...);
     index [-dst - 1] into [groups]. Member order is join order, so a
     seeded run's fan-out sequence is deterministic. *)
  mutable groups : group array;
  mutable n_groups : int;
  (* Frame free-list (see the ownership rules in fabric.mli). [rx_keep]
     is a per-delivery flag: an rx handler that retains the frame sets
     it via [keep_frame] before returning. Safe as a single cell because
     rx handlers run synchronously in the egress process. *)
  pooling : bool;
  mutable free_frames : Packet.t array;
  mutable n_free : int;
  mutable rx_keep : bool;
  mutable frames_sent : int;
  mutable frames_dropped : int;
  mutable link_drops : int;
  mutable bytes_delivered : int;
  mutable mcast_sent : int;
  mutable mcast_deliveries : int;
}

and group = {
  mutable members : port array;
  mutable n_members : int;
}

and port = {
  id : int;
  name : string;
  fab : t;
  rx : Packet.t -> unit;
  uplink : Packet.t Mailbox.t;  (* endpoint -> switch *)
  egress : Packet.t Mailbox.t;  (* switch -> endpoint *)
  tx_drain : Bmcast_engine.Signal.Pulse.t;
  mutable bytes_out : int;
  mutable busy_ns : int;  (* cumulative uplink serialization time *)
  mutable link_up : bool;
  mutable stalled_until : Time.t;  (* NIC fault: DMA engine frozen *)
}

let transmit_span t size = Time.of_float_s (float_of_int size /. t.rate)

(* Sentinel payload installed on release: a holder that kept a stale
   reference past recycle sees [Recycled] instead of its old payload,
   turning an aliasing bug into a visible failure. *)
type Packet.payload += Recycled

let dummy_frame =
  { Packet.src = -1; dst = -1; size_bytes = 0; payload = Recycled }

let create sim ?(port_rate_bytes_per_s = 125e6) ?(latency = Time.us 20)
    ?(mtu = 9000) ?(loss_rate = 0.0) ?(pool_frames = true) () =
  let t =
    { sim;
      rate = port_rate_bytes_per_s;
      latency;
      mtu;
      loss = Uniform loss_rate;
      loss_in_bad = false;
      prng = Prng.split (Sim.rand sim);
      ports = [||];
      n_ports = 0;
      groups = [||];
      n_groups = 0;
      pooling = pool_frames;
      free_frames = [||];
      n_free = 0;
      rx_keep = false;
      frames_sent = 0;
      frames_dropped = 0;
      link_drops = 0;
      bytes_delivered = 0;
      mcast_sent = 0;
      mcast_deliveries = 0 }
  in
  (* Fabric-wide health for the sampler: pull-only derived gauges, so
     the forwarding hot path carries no metrics cost. *)
  let m = Sim.metrics sim in
  Metrics.derived m "net.frames_sent" (fun () -> float_of_int t.frames_sent);
  Metrics.derived m "net.frames_dropped" (fun () ->
      float_of_int t.frames_dropped);
  Metrics.derived m "net.link_drops" (fun () -> float_of_int t.link_drops);
  Metrics.derived m "net.bytes_delivered" (fun () ->
      float_of_int t.bytes_delivered);
  Metrics.derived m "net.port_rate_bytes_per_s" (fun () -> t.rate);
  Metrics.derived m "net.mcast_sent" (fun () -> float_of_int t.mcast_sent);
  Metrics.derived m "net.mcast_deliveries" (fun () ->
      float_of_int t.mcast_deliveries);
  t

let mtu t = t.mtu

let set_loss_model t m =
  t.loss <- m;
  (* A fresh model starts in the good state. *)
  t.loss_in_bad <- false

(* Routing through [set_loss_model] resets the Gilbert-Elliott channel
   state: switching models mid-run must not leave a stale bad-state bit
   that would skew the very next uniform-loss roll after a later switch
   back to a Gilbert chain. *)
let set_loss_rate t r = set_loss_model t (Uniform r)

let loss_model t = t.loss
let loss_in_bad t = t.loss_in_bad

(* One per-frame roll of the active loss model. Draw counts match the
   pre-existing behaviour for [Uniform 0.0] (no draw), keeping seeded
   runs that never touch the loss model bit-identical. *)
let loss_roll t =
  match t.loss with
  | Uniform p -> p > 0.0 && Prng.bernoulli t.prng p
  | Gilbert g ->
    (if t.loss_in_bad then begin
       if Prng.bernoulli t.prng g.p_exit_bad then t.loss_in_bad <- false
     end
     else if Prng.bernoulli t.prng g.p_enter_bad then t.loss_in_bad <- true);
    let p = if t.loss_in_bad then g.loss_bad else g.loss_good in
    p > 0.0 && Prng.bernoulli t.prng p

let find_port t id =
  if id < 0 || id >= t.n_ports then
    invalid_arg (Printf.sprintf "Fabric: unknown port %d" id);
  t.ports.(id)

let port_of_id = find_port

(* --- multicast groups --- *)

let is_mcast dst = dst < 0

let mcast_group t =
  let g = { members = [||]; n_members = 0 } in
  let n = t.n_groups in
  if n = Array.length t.groups then begin
    let grown = Array.make (max 4 (2 * n)) g in
    Array.blit t.groups 0 grown 0 n;
    t.groups <- grown
  end;
  t.groups.(n) <- g;
  t.n_groups <- n + 1;
  -(n + 1)

let group_index t dst =
  let g = -dst - 1 in
  if g < 0 || g >= t.n_groups then
    invalid_arg (Printf.sprintf "Fabric: unknown multicast group %d" dst);
  t.groups.(g)

let mcast_join p ~group =
  let t = p.fab in
  let g = group_index t group in
  let already = ref false in
  for i = 0 to g.n_members - 1 do
    if g.members.(i) == p then already := true
  done;
  if not !already then begin
    let n = g.n_members in
    if n = Array.length g.members then begin
      let grown = Array.make (max 4 (2 * n)) p in
      Array.blit g.members 0 grown 0 n;
      g.members <- grown
    end;
    g.members.(n) <- p;
    g.n_members <- n + 1
  end

let mcast_leave p ~group =
  let t = p.fab in
  let g = group_index t group in
  (* Shift-remove preserves join order, keeping fan-out deterministic. *)
  let j = ref 0 in
  for i = 0 to g.n_members - 1 do
    if g.members.(i) != p then begin
      g.members.(!j) <- g.members.(i);
      incr j
    end
  done;
  g.n_members <- !j

let mcast_members t ~group = (group_index t group).n_members

(* --- frame pool --- *)

let alloc_frame t ~src ~dst ~size_bytes payload =
  if t.n_free > 0 then begin
    let n = t.n_free - 1 in
    t.n_free <- n;
    let f = t.free_frames.(n) in
    t.free_frames.(n) <- dummy_frame;
    f.Packet.src <- src;
    f.Packet.dst <- dst;
    f.Packet.size_bytes <- size_bytes;
    f.Packet.payload <- payload;
    f
  end
  else { Packet.src; dst; size_bytes; payload }

let release_frame t f =
  if t.pooling then begin
    f.Packet.payload <- Recycled;
    let n = t.n_free in
    if n = Array.length t.free_frames then begin
      let grown = Array.make (max 16 (2 * n)) dummy_frame in
      Array.blit t.free_frames 0 grown 0 n;
      t.free_frames <- grown
    end;
    t.free_frames.(n) <- f;
    t.n_free <- n + 1
  end

let keep_frame t = t.rx_keep <- true
let pool_free_count t = t.n_free

(* A stalled NIC neither serializes nor accepts frames until the stall
   expires; queued frames survive and drain afterwards. *)
let rec stall_wait port =
  let now = Sim.now port.fab.sim in
  if now < port.stalled_until then begin
    Sim.sleep (Time.diff port.stalled_until now);
    stall_wait port
  end

(* Uplink process: serialize the frame onto the wire, then hand it to the
   switch, which forwards to the destination port's egress queue. *)
let rec uplink_loop t port =
  let frame = Mailbox.recv port.uplink in
  let tr = Sim.trace t.sim in
  let traced = Trace.on tr ~cat:"net" in
  let ts = Sim.now t.sim in
  stall_wait port;
  let span = transmit_span t frame.Packet.size_bytes in
  Sim.sleep span;
  port.bytes_out <- port.bytes_out + frame.Packet.size_bytes;
  port.busy_ns <- port.busy_ns + span;
  Bmcast_engine.Signal.Pulse.pulse port.tx_drain;
  (* Propagation + switch forwarding. *)
  Sim.sleep t.latency;
  if traced then
    Trace.complete tr ~cat:"net"
      ~args:
        [ ("port", Trace.Str port.name);
          ("dst", Trace.Int frame.Packet.dst);
          ("bytes", Trace.Int frame.Packet.size_bytes) ]
      "xmit" ~ts;
  if is_mcast frame.Packet.dst then begin
    (* Multicast fan-out: the switch replicates the frame to every group
       member on a live link, rolling link state and the loss model per
       member — each receiver sees an independent channel, as with real
       IGMP-snooped replication. The sender never hears its own frame.
       Frame {e records} are per-member pool allocations; the {e payload}
       is shared by every copy, so multicast payloads must be GC-owned
       (never scratch-pooled) and receivers must not release them. *)
    let g = group_index t frame.Packet.dst in
    t.mcast_sent <- t.mcast_sent + 1;
    for i = 0 to g.n_members - 1 do
      let m = g.members.(i) in
      if m != port then
        if not (port.link_up && m.link_up) then begin
          t.frames_dropped <- t.frames_dropped + 1;
          t.link_drops <- t.link_drops + 1;
          if traced then Trace.instant tr ~cat:"net" "link-drop"
        end
        else if loss_roll t then begin
          t.frames_dropped <- t.frames_dropped + 1;
          if traced then Trace.instant tr ~cat:"net" "drop"
        end
        else begin
          t.mcast_deliveries <- t.mcast_deliveries + 1;
          let copy =
            alloc_frame t ~src:frame.Packet.src ~dst:frame.Packet.dst
              ~size_bytes:frame.Packet.size_bytes frame.Packet.payload
          in
          Mailbox.send m.egress copy
        end
    done;
    release_frame t frame
  end
  else begin
    let dst = find_port t frame.Packet.dst in
    let dropped =
      if not (port.link_up && dst.link_up) then begin
        t.frames_dropped <- t.frames_dropped + 1;
        t.link_drops <- t.link_drops + 1;
        if traced then Trace.instant tr ~cat:"net" "link-drop";
        true
      end
      else if loss_roll t then begin
        t.frames_dropped <- t.frames_dropped + 1;
        if traced then Trace.instant tr ~cat:"net" "drop";
        true
      end
      else false
    in
    (* A recycled frame's fields are dead past this point. The payload
       itself is not recycled with the record — its last holder drops it
       to the GC (the pool only manages the frame record). *)
    if dropped then release_frame t frame else Mailbox.send dst.egress frame
  end;
  uplink_loop t port

(* Egress process: serialize on the destination port, then deliver. *)
let rec egress_loop t port =
  let frame = Mailbox.recv port.egress in
  let tr = Sim.trace t.sim in
  let traced = Trace.on tr ~cat:"net" in
  let ts = Sim.now t.sim in
  stall_wait port;
  Sim.sleep (transmit_span t frame.Packet.size_bytes);
  t.bytes_delivered <- t.bytes_delivered + frame.Packet.size_bytes;
  if traced then
    Trace.complete tr ~cat:"net"
      ~args:
        [ ("port", Trace.Str port.name);
          ("bytes", Trace.Int frame.Packet.size_bytes) ]
      "deliver" ~ts;
  (* Deliver by direct call, not [Sim.spawn]: every rx handler in the
     stack is non-blocking by contract (see fabric.mli), and a spawn per
     delivered frame — closure, job record, handler frame, process-name
     concatenation — was a top allocation site at fleet scale. The
     handler runs in the egress process; an exception it raises fails
     that process. *)
  t.rx_keep <- false;
  port.rx frame;
  if not t.rx_keep then release_frame t frame;
  egress_loop t port

let attach t ~name rx =
  let id = t.n_ports in
  let port =
    { id;
      name;
      fab = t;
      rx;
      uplink = Mailbox.create ();
      egress = Mailbox.create ();
      tx_drain = Bmcast_engine.Signal.Pulse.create ();
      bytes_out = 0;
      busy_ns = 0;
      link_up = true;
      stalled_until = Time.zero }
  in
  (* Geometric growth: [Array.append] per attach re-copies the whole
     table, which is O(n^2) across a 10k-client fleet bring-up. *)
  if id = Array.length t.ports then begin
    let grown = Array.make (max 16 (2 * id)) port in
    Array.blit t.ports 0 grown 0 id;
    t.ports <- grown
  end;
  t.ports.(id) <- port;
  t.n_ports <- id + 1;
  Sim.spawn_at t.sim ~name:(name ^ "-uplink") (Sim.now t.sim) (fun () ->
      uplink_loop t port);
  Sim.spawn_at t.sim ~name:(name ^ "-egress") (Sim.now t.sim) (fun () ->
      egress_loop t port);
  port

let port_id p = p.id

let send p ~dst ~size_bytes payload =
  let t = p.fab in
  (* Validate before opening the profiler scope: an [invalid_arg] after
     [Profile.enter] would leak the scope (enter without exit) and poison
     every later net.send attribution in the report. *)
  if size_bytes <= 0 then invalid_arg "Fabric.send: size must be positive";
  if size_bytes > Packet.max_frame ~mtu:t.mtu then
    invalid_arg
      (Printf.sprintf "Fabric.send: frame of %d bytes exceeds MTU %d"
         size_bytes t.mtu);
  (* Non-blocking enqueue (try_send never suspends), so the enqueue is
     safe to scope for the allocation profiler. *)
  let prof = Sim.profile t.sim in
  let profiled = Bmcast_obs.Profile.enabled prof in
  if profiled then Bmcast_obs.Profile.enter prof "net.send";
  t.frames_sent <- t.frames_sent + 1;
  let frame = alloc_frame t ~src:p.id ~dst ~size_bytes payload in
  ignore (Mailbox.try_send p.uplink frame : bool);
  if profiled then Bmcast_obs.Profile.exit prof "net.send"

(* Like [send], but models a bounded socket buffer: blocks the calling
   process while more than [socket_frames] are already queued. *)
let socket_frames = 8

let send_wait p ~dst ~size_bytes payload =
  while Mailbox.length p.uplink >= socket_frames do
    Bmcast_engine.Signal.Pulse.wait p.tx_drain
  done;
  send p ~dst ~size_bytes payload

let set_link_up p up = p.link_up <- up
let link_up p = p.link_up

let stall p span =
  let until = Time.add (Sim.now p.fab.sim) span in
  if until > p.stalled_until then p.stalled_until <- until

let frames_sent t = t.frames_sent
let frames_dropped t = t.frames_dropped
let mcast_sent t = t.mcast_sent
let mcast_deliveries t = t.mcast_deliveries
let link_drops t = t.link_drops
let bytes_delivered t = t.bytes_delivered
let port_bytes_out p = p.bytes_out
let port_busy_ns p = p.busy_ns
let port_queue_depth p = Mailbox.length p.uplink
let rate_bytes_per_s t = t.rate
