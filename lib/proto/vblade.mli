(** AoE target (vblade) with a worker thread pool.

    The original vblade is single-threaded and "becomes a performance
    bottleneck when the VMM sends a significant volume of read requests";
    the paper added a thread pool (§4.2). [workers = 1] reproduces the
    original; the ablation benchmark sweeps pool sizes.

    Each request costs per-request and per-sector CPU time on a worker,
    plus a disk access (the disk serializes across workers like a real
    spindle); response data is streamed back as MTU-sized fragments. *)

type t

val create :
  Bmcast_engine.Sim.t ->
  fabric:Bmcast_net.Fabric.t ->
  name:string ->
  disk:Bmcast_storage.Disk.t ->
  ?workers:int ->
  ?per_request_cpu:Bmcast_engine.Time.span ->
  ?per_sector_cpu:Bmcast_engine.Time.span ->
  ?ram_cache:bool ->
  unit ->
  t
(** Defaults: 8 workers, 1.5 ms per request (a userspace daemon doing
    filesystem I/O per command), 400 ns per sector, no RAM cache (reads
    hit the server disk). *)

val port : t -> Bmcast_net.Fabric.port
val port_id : t -> int

(** {2 Crash / restart (fault injection hook points)}

    A crash models the daemon (or its host) dying: queued requests are
    discarded, responses being assembled are suppressed, and incoming
    frames are ignored until {!restart}. The backing disk is
    non-volatile, so a restarted server resumes serving the same
    content; clients recover lost commands by retransmission. *)

val crash : t -> unit
val restart : t -> unit
val is_up : t -> bool
val crashes : t -> int

val disk_error_retries : t -> int
(** Transient {!Bmcast_storage.Disk.Read_error}s the server absorbed by
    retrying before answering. *)

val requests_served : t -> int
val bytes_served : t -> int

(** {2 Multicast carousel}

    The deployment-time answer to N clients all reading the same boot
    blocks: instead of N unicast streams, the server multicasts the hot
    range to a fabric group as unsolicited read responses (tag
    {!Aoe.mcast_tag}), looping for a bounded number of passes so
    late-joining clients catch blocks they missed; anything still
    missing afterwards arrives via the normal copy-on-read path.
    Fragment payloads are GC-owned (never scratch-pooled): the fabric's
    fan-out shares one payload array across all member deliveries. *)

val multicast :
  t ->
  group:int ->
  lba:int ->
  count:int ->
  ?passes:int ->
  ?gap:Bmcast_engine.Time.span ->
  unit ->
  unit
(** Start the carousel process over [\[lba, lba+count)] (defaults:
    4 passes, 50 ms between passes). Serves from page cache
    ({!Bmcast_storage.Disk.peek_into}); goes silent while the server is
    crashed and resumes on restart. Raises [Invalid_argument] for an
    out-of-bounds range. *)

val mcast_frames_sent : t -> int
val mcast_bytes_sent : t -> int
