module Content = Bmcast_storage.Content
module Packet = Bmcast_net.Packet
module Fabric = Bmcast_net.Fabric

type command = Ata_read | Ata_write | Query_config

type header = {
  major : int;
  minor : int;
  command : command;
  tag : int;
  frag : int;
  is_response : bool;
  error : bool;
  lba : int;
  count : int;
}

(* Layout (offsets):
   0  ver/flags        1  error
   2  major (be16)     4  minor
   5  command          6  tag (be32: high byte = fragment index, ext.)
   10 aflags           11 errfeat
   12 count            13 cmdstat
   14 lba (6 bytes le) 20..35 reserved/pad
   Data follows at 36. *)
let header_bytes = 36

(* Client tags start at 1 (see Aoe_client.fresh_tag), leaving tag 0 free
   as the unsolicited-multicast marker. *)
let mcast_tag = 0

let ver_flag_response = 0x08

let check_field name v max =
  if v < 0 || v > max then
    invalid_arg (Printf.sprintf "Aoe: %s %d out of range" name v)

let encode_header h =
  check_field "major" h.major 0xFFFF;
  check_field "minor" h.minor 0xFF;
  check_field "tag" h.tag 0xFF_FFFF;
  check_field "frag" h.frag 0xFF;
  check_field "count" h.count 0xFFFF;
  check_field "lba" h.lba 0xFFFF_FFFF_FFFF;
  let b = Bytes.make header_bytes '\000' in
  Bytes.set_uint8 b 0 (0x10 lor if h.is_response then ver_flag_response else 0);
  Bytes.set_uint8 b 1 (if h.error then 1 else 0);
  Bytes.set_uint16_be b 2 h.major;
  Bytes.set_uint8 b 4 h.minor;
  Bytes.set_uint8 b 5
    (match h.command with Ata_read -> 0 | Ata_write -> 1 | Query_config -> 2);
  Bytes.set_int32_be b 6
    (Int32.of_int ((h.frag lsl 24) lor h.tag));
  Bytes.set_uint16_be b 12 h.count;
  for i = 0 to 5 do
    Bytes.set_uint8 b (14 + i) ((h.lba lsr (8 * i)) land 0xFF)
  done;
  b

let decode_header b =
  if Bytes.length b < header_bytes then
    invalid_arg "Aoe.decode_header: buffer too short";
  let ver_flags = Bytes.get_uint8 b 0 in
  if ver_flags lsr 4 <> 1 then
    invalid_arg "Aoe.decode_header: unsupported AoE version";
  let tag32 = Int32.to_int (Bytes.get_int32_be b 6) land 0xFFFF_FFFF in
  let lba = ref 0 in
  for i = 5 downto 0 do
    lba := (!lba lsl 8) lor Bytes.get_uint8 b (14 + i)
  done;
  { major = Bytes.get_uint16_be b 2;
    minor = Bytes.get_uint8 b 4;
    command =
      (match Bytes.get_uint8 b 5 with
      | 0 -> Ata_read
      | 1 -> Ata_write
      | 2 -> Query_config
      | c -> invalid_arg (Printf.sprintf "Aoe.decode_header: command %d" c));
    tag = tag32 land 0xFF_FFFF;
    frag = (tag32 lsr 24) land 0xFF;
    is_response = ver_flags land ver_flag_response <> 0;
    error = Bytes.get_uint8 b 1 <> 0;
    lba = !lba;
    count = Bytes.get_uint16_be b 12 }

let wire_size ~sectors = header_bytes + (512 * sectors)

let max_sectors ~mtu =
  let s = (mtu - header_bytes) / 512 in
  if s < 1 then invalid_arg "Aoe.max_sectors: MTU too small for one sector";
  s

type frame = { hdr : header; data : Content.t array }

type Packet.payload += Frame of frame

let send port ~dst hdr data =
  Fabric.send port ~dst
    ~size_bytes:(wire_size ~sectors:(Array.length data))
    (Frame { hdr; data })

let send_wait port ~dst hdr data =
  Fabric.send_wait port ~dst
    ~size_bytes:(wire_size ~sectors:(Array.length data))
    (Frame { hdr; data })
