(* Chunk-bitmap gossip summaries and their canonical run-length wire
   codec. See gossip.mli for the contract. *)

type summary = {
  chunks : int;
  bits : Bytes.t;  (* one bit per chunk, LSB-first within a byte *)
  mutable held : int;
}

let create ~chunks =
  if chunks < 0 then invalid_arg "Gossip.create: negative chunk count";
  { chunks; bits = Bytes.make ((chunks + 7) / 8) '\000'; held = 0 }

let chunks s = s.chunks

let check_index s i name =
  if i < 0 || i >= s.chunks then
    invalid_arg (Printf.sprintf "Gossip.%s: chunk %d out of %d" name i s.chunks)

let mem_unsafe s i =
  Char.code (Bytes.unsafe_get s.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let mem s i =
  check_index s i "mem";
  mem_unsafe s i

let set s i =
  check_index s i "set";
  if not (mem_unsafe s i) then begin
    let b = i lsr 3 in
    Bytes.unsafe_set s.bits b
      (Char.chr (Char.code (Bytes.unsafe_get s.bits b) lor (1 lsl (i land 7))));
    s.held <- s.held + 1
  end

let cardinal s = s.held
let is_complete s = s.held = s.chunks

let copy s = { chunks = s.chunks; bits = Bytes.copy s.bits; held = s.held }

let equal a b = a.chunks = b.chunks && Bytes.equal a.bits b.bits

let merge_into ~into src =
  if into.chunks <> src.chunks then
    invalid_arg "Gossip.merge: mismatched chunk counts";
  let held = ref 0 in
  for b = 0 to Bytes.length into.bits - 1 do
    let v =
      Char.code (Bytes.unsafe_get into.bits b)
      lor Char.code (Bytes.unsafe_get src.bits b)
    in
    Bytes.unsafe_set into.bits b (Char.chr v);
    (* popcount of a byte; summaries are small and merges are rare. *)
    let v = ref v in
    while !v <> 0 do
      held := !held + (!v land 1);
      v := !v lsr 1
    done
  done;
  into.held <- !held

let merge a b =
  let r = copy a in
  merge_into ~into:r b;
  r

let runs s =
  let out = ref [] in
  let start = ref (-1) in
  for i = 0 to s.chunks - 1 do
    if mem_unsafe s i then begin
      if !start < 0 then start := i
    end
    else if !start >= 0 then begin
      out := (!start, i - !start) :: !out;
      start := -1
    end
  done;
  if !start >= 0 then out := (!start, s.chunks - !start) :: !out;
  List.rev !out

let of_runs ~chunks rs =
  let s = create ~chunks in
  List.iter
    (fun (start, len) ->
      if len < 0 then invalid_arg "Gossip.of_runs: negative run length";
      for i = start to start + len - 1 do
        set s i
      done)
    rs;
  s

(* --- wire codec --- *)

type msg = { origin : int; epoch : int; summary : summary }

let magic = 0xB7
let version = 1

(* magic, version, origin be32, epoch be32, chunks be32, n_runs be16,
   then (start be32, len be32) per run. *)
let header_len = 1 + 1 + 4 + 4 + 4 + 2

let wire_size m = header_len + (8 * List.length (runs m.summary))

let put32 b off v =
  Bytes.set_uint8 b off ((v lsr 24) land 0xFF);
  Bytes.set_uint8 b (off + 1) ((v lsr 16) land 0xFF);
  Bytes.set_uint8 b (off + 2) ((v lsr 8) land 0xFF);
  Bytes.set_uint8 b (off + 3) (v land 0xFF)

let get32 b off =
  (Bytes.get_uint8 b off lsl 24)
  lor (Bytes.get_uint8 b (off + 1) lsl 16)
  lor (Bytes.get_uint8 b (off + 2) lsl 8)
  lor Bytes.get_uint8 b (off + 3)

let encode m =
  let rs = runs m.summary in
  let n = List.length rs in
  if n > 0xFFFF then invalid_arg "Gossip.encode: too many runs";
  if m.origin < 0 || m.origin > 0xFFFF_FFFF then
    invalid_arg "Gossip.encode: origin out of range";
  if m.epoch < 0 || m.epoch > 0xFFFF_FFFF then
    invalid_arg "Gossip.encode: epoch out of range";
  let b = Bytes.make (header_len + (8 * n)) '\000' in
  Bytes.set_uint8 b 0 magic;
  Bytes.set_uint8 b 1 version;
  put32 b 2 m.origin;
  put32 b 6 m.epoch;
  put32 b 10 m.summary.chunks;
  Bytes.set_uint8 b 14 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 15 (n land 0xFF);
  List.iteri
    (fun i (start, len) ->
      put32 b (header_len + (8 * i)) start;
      put32 b (header_len + (8 * i) + 4) len)
    rs;
  b

let decode b =
  let fail fmt = Printf.ksprintf invalid_arg ("Gossip.decode: " ^^ fmt) in
  if Bytes.length b < header_len then fail "short buffer";
  if Bytes.get_uint8 b 0 <> magic then fail "bad magic";
  if Bytes.get_uint8 b 1 <> version then fail "bad version";
  let origin = get32 b 2 in
  let epoch = get32 b 6 in
  let chunks = get32 b 10 in
  let n = (Bytes.get_uint8 b 14 lsl 8) lor Bytes.get_uint8 b 15 in
  if Bytes.length b <> header_len + (8 * n) then fail "bad length";
  let summary = create ~chunks in
  let prev_end = ref (-1) in
  for i = 0 to n - 1 do
    let start = get32 b (header_len + (8 * i)) in
    let len = get32 b (header_len + (8 * i) + 4) in
    (* Canonical form only: non-empty, ascending, non-adjacent runs. *)
    if len < 1 then fail "empty run";
    if start <= !prev_end then fail "non-canonical run order";
    if start + len > chunks then fail "run past end";
    for c = start to start + len - 1 do
      set summary c
    done;
    prev_end := start + len
  done;
  { origin; epoch; summary }

type Bmcast_net.Packet.payload += Announce of msg

let send port ~dst m =
  Bmcast_net.Fabric.send port ~dst ~size_bytes:(wire_size m) (Announce m)
