(** ATA-over-Ethernet protocol, extended per §4.2.

    The base protocol (Brantley Coile/Sam Hopkins spec) carries an ATA
    register set in an Ethernet frame. BMcast's extensions, all
    implemented here:
    - {e jumbo frames}: more sectors per frame (17 at MTU 9000);
    - {e fragmentation}: a response larger than one frame is split into
      fragments whose offset rides in the tag field's upper bits;
    - {e retransmission}: requests carry client-chosen tags and are
      retried on timeout (see {!Client}).

    Headers have a real byte-level codec ({!encode_header} /
    {!decode_header}) used by the unit tests; simulation packets carry
    the decoded form plus sector contents. *)

type command = Ata_read | Ata_write | Query_config

type header = {
  major : int;  (** AoE shelf address (16 bit) *)
  minor : int;  (** AoE slot address (8 bit) *)
  command : command;
  tag : int;  (** request identifier (24 bits of the tag field) *)
  frag : int;  (** fragment index (8 bits of the tag field); extension *)
  is_response : bool;
  error : bool;
  lba : int;  (** 48-bit LBA *)
  count : int;  (** sector count for this frame/command *)
}

val header_bytes : int
(** Encoded header length (AoE + ATA section, 36 bytes). *)

val mcast_tag : int
(** Tag value (0) reserved for unsolicited multicast responses: client
    tags start at 1, so a response carrying [mcast_tag] can never match
    a pending command and is routed to the multicast subscription
    instead (see {!Aoe_client.subscribe_mcast}). *)

val encode_header : header -> Bytes.t
val decode_header : Bytes.t -> header
(** Raises [Invalid_argument] on a short or malformed buffer. *)

val wire_size : sectors:int -> int
(** On-wire Ethernet payload size of a frame carrying [sectors] of data:
    [header_bytes + 512 * sectors]. *)

val max_sectors : mtu:int -> int
(** Sectors that fit in one frame at the given MTU (17 at 9000; 2 at
    1500). *)

type frame = { hdr : header; data : Bmcast_storage.Content.t array }
(** A frame as carried through the simulated fabric: decoded header plus
    the content identities of the sectors on board. *)

type Bmcast_net.Packet.payload += Frame of frame

val send :
  Bmcast_net.Fabric.port -> dst:int -> header -> Bmcast_storage.Content.t array -> unit
(** Encode sizing and transmit a frame on a fabric port. *)

val send_wait :
  Bmcast_net.Fabric.port -> dst:int -> header -> Bmcast_storage.Content.t array -> unit
(** Like {!send} but with socket-buffer backpressure (process
    context). *)
