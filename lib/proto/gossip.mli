(** Chunk-bitmap gossip for peer-to-peer image distribution.

    Peers advertise which image chunks (fixed-size sector ranges, see
    [Params.chunk_sectors]) they hold by multicasting a compact summary
    over the AoE fabric. The summary is a bitset over chunk indexes with
    a canonical run-length wire encoding — two summaries covering the
    same set encode to byte-identical messages — and a commutative,
    idempotent merge, so receivers can fold announcements in any order
    and duplicates are free. The directory built from these
    announcements drives peer selection in [Bmcast_fleet.Peer]. *)

type summary
(** A set of held chunk indexes over a fixed chunk count. Mutable;
    grow-only via {!set} / {!merge_into}. *)

val create : chunks:int -> summary
(** Empty summary over [chunks] chunks. Raises [Invalid_argument] if
    [chunks < 0]. *)

val chunks : summary -> int

val set : summary -> int -> unit
(** Mark a chunk held (idempotent). Raises [Invalid_argument] out of
    range. *)

val mem : summary -> int -> bool
val cardinal : summary -> int
val is_complete : summary -> bool
val copy : summary -> summary

val equal : summary -> summary -> bool
(** Same chunk count and same held set. *)

val merge : summary -> summary -> summary
(** Set union into a fresh summary — commutative, associative,
    idempotent. Raises [Invalid_argument] on mismatched chunk counts. *)

val merge_into : into:summary -> summary -> unit
(** In-place union. *)

val runs : summary -> (int * int) list
(** Canonical run decomposition: maximal [(start, length)] runs of held
    chunks, ascending, coalesced — the form carried on the wire. *)

val of_runs : chunks:int -> (int * int) list -> summary
(** Rebuild a summary from runs (need not be canonical; overlaps are
    unioned). Raises [Invalid_argument] for out-of-range runs. *)

(** {2 Wire codec} *)

type msg = {
  origin : int;  (** fabric port id of the peer's serve endpoint *)
  epoch : int;  (** origin's crash epoch; stale-epoch guard *)
  summary : summary;
}

val encode : msg -> Bytes.t
(** Canonical byte encoding (magic, version, origin, epoch, chunk
    count, run list). Equal messages encode byte-identically. *)

val decode : Bytes.t -> msg
(** Raises [Invalid_argument] on a short, malformed, or non-canonical
    buffer. *)

val wire_size : msg -> int
(** Size in bytes of {!encode}'s output, without encoding — used to
    size the fabric frame. *)

type Bmcast_net.Packet.payload += Announce of msg
(** Announcement as carried through the simulated fabric (decoded form;
    the byte codec is exercised by the property suite). *)

val send : Bmcast_net.Fabric.port -> dst:int -> msg -> unit
(** Transmit an announcement (typically to the swarm's gossip multicast
    group), sized by {!wire_size}. *)
