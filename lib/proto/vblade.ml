module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Mailbox = Bmcast_engine.Mailbox
module Semaphore = Bmcast_engine.Semaphore
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Packet = Bmcast_net.Packet
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics

type job = { src : int; frame : Aoe.frame }

type t = {
  sim : Sim.t;
  disk : Disk.t;
  mutable fabric_port : Fabric.port option;
  mtu : int;
  per_request_cpu : Time.span;
  per_sector_cpu : Time.span;
  ram_cache : bool;
  work : job Mailbox.t;
  disk_lock : Semaphore.t;
  mutable in_service : int;  (* jobs currently held by workers *)
  mutable requests_served : int;
  mutable bytes_served : int;
  mutable up : bool;
  mutable epoch : int;  (* bumped on crash; orphans in-flight work *)
  mutable crashes : int;
  mutable disk_error_retries : int;
  mutable mcast_frames : int;
  mutable mcast_bytes : int;
}

let port t = Option.get t.fabric_port
let port_id t = Fabric.port_id (port t)
let requests_served t = t.requests_served
let bytes_served t = t.bytes_served
let is_up t = t.up
let crashes t = t.crashes
let disk_error_retries t = t.disk_error_retries

(* Power loss: the daemon dies mid-flight. Queued requests vanish and
   any response a worker was about to send is suppressed (its epoch no
   longer matches); clients recover by retransmitting. The disk itself
   is non-volatile, so [restart] needs no state beyond flipping the
   server back up. *)
let crash t =
  if t.up then begin
    t.up <- false;
    t.epoch <- t.epoch + 1;
    t.crashes <- t.crashes + 1;
    let dropped = ref 0 in
    while Mailbox.try_recv t.work <> None do
      incr dropped
    done;
    if Trace.on (Sim.trace t.sim) ~cat:"server" then
      Trace.instant (Sim.trace t.sim) ~cat:"server"
        ~args:[ ("queued-lost", Trace.Int !dropped) ]
        "crash"
  end

let restart t =
  t.up <- true;
  if Trace.on (Sim.trace t.sim) ~cat:"server" then
    Trace.instant (Sim.trace t.sim) ~cat:"server" "restart"

(* vblade's sendto blocks when the socket buffer fills — the root of the
   single-thread bottleneck the paper fixed with a worker pool. A
   response conceived before a crash (stale epoch) is lost with the
   process that was sending it. *)
let respond t ~epoch ~dst hdr data =
  if t.up && t.epoch = epoch then Aoe.send_wait (port t) ~dst hdr data

let bad_range t hdr =
  (hdr.Aoe.command = Aoe.Ata_read || hdr.Aoe.command = Aoe.Ata_write)
  && (hdr.Aoe.lba < 0 || hdr.Aoe.count <= 0
     || hdr.Aoe.lba + hdr.Aoe.count > Disk.capacity_sectors t.disk)

(* Transient media errors (injected by the fault subsystem) are the
   server's problem, not the client's: retry with a short settle delay,
   like a real target re-reading a recoverable sector. Only a fault that
   outlives every retry escalates to an AoE error response. *)
let disk_retry_limit = 8

let rec read_with_retry t ~lba ~count buf attempts =
  match
    Semaphore.with_permit t.disk_lock (fun () ->
        Disk.read_into t.disk ~lba ~count buf)
  with
  | () -> ()
  | exception Disk.Read_error _ when attempts < disk_retry_limit ->
    t.disk_error_retries <- t.disk_error_retries + 1;
    Sim.sleep (Time.ms 2);
    read_with_retry t ~lba ~count buf (attempts + 1)

let serve t job =
  let epoch = t.epoch in
  let hdr = job.frame.Aoe.hdr in
  Sim.sleep
    (t.per_request_cpu + Time.mul t.per_sector_cpu hdr.Aoe.count);
  if bad_range t hdr then
    (* A malformed request gets an error response, not a dead target. *)
    respond t ~epoch ~dst:job.src
      { hdr with Aoe.is_response = true; error = true; count = 0 }
      [||]
  else
  match hdr.Aoe.command with
  | Aoe.Ata_read ->
    (* Read the whole command off the disk (keeping the lock so chunks
       stay sequential), then stream fragments with socket
       backpressure. With one worker the next command's disk read waits
       for this command's wire time; a pool overlaps them. *)
    (* The whole-command staging buffer and each fragment's data array
       come from the [Content.Scratch] pool: the staging buffer returns
       here once streamed; a fragment array is owned by the wire and
       released by its final consumer (the client's reassembly path). *)
    let data = Content.Scratch.alloc hdr.Aoe.count in
    (match
       if t.ram_cache then
         Disk.peek_into t.disk ~lba:hdr.Aoe.lba ~count:hdr.Aoe.count data
       else read_with_retry t ~lba:hdr.Aoe.lba ~count:hdr.Aoe.count data 0
     with
    | exception Disk.Read_error _ ->
      Content.Scratch.release data;
      respond t ~epoch ~dst:job.src
        { hdr with Aoe.is_response = true; error = true; count = 0 }
        [||]
    | () ->
      let per_frame = Aoe.max_sectors ~mtu:t.mtu in
      let rec stream off frag =
        if off < hdr.Aoe.count then begin
          let n = min per_frame (hdr.Aoe.count - off) in
          let d = Content.Scratch.alloc n in
          Array.blit data off d 0 n;
          respond t ~epoch ~dst:job.src
            { hdr with
              Aoe.is_response = true;
              frag = frag land 0xFF;
              lba = hdr.Aoe.lba + off;
              count = n }
            d;
          stream (off + n) (frag + 1)
        end
      in
      stream 0 0;
      Content.Scratch.release data;
      t.requests_served <- t.requests_served + 1;
      t.bytes_served <- t.bytes_served + (hdr.Aoe.count * 512))
  | Aoe.Query_config ->
    (* Target discovery: capacity rides in the LBA field. *)
    t.requests_served <- t.requests_served + 1;
    respond t ~epoch ~dst:job.src
      { hdr with
        Aoe.is_response = true;
        lba = Disk.capacity_sectors t.disk;
        count = 0 }
      [||]
  | Aoe.Ata_write ->
    Semaphore.with_permit t.disk_lock (fun () ->
        Disk.write t.disk ~lba:hdr.Aoe.lba ~count:hdr.Aoe.count
          job.frame.Aoe.data);
    t.requests_served <- t.requests_served + 1;
    t.bytes_served <- t.bytes_served + (hdr.Aoe.count * 512);
    respond t ~epoch ~dst:job.src { hdr with Aoe.is_response = true } [||]

let rec worker_loop t =
  let job = Mailbox.recv t.work in
  t.in_service <- t.in_service + 1;
  let tr = Sim.trace t.sim in
  (if Trace.on tr ~cat:"server" then begin
     let hdr = job.frame.Aoe.hdr in
     let ts = Sim.now t.sim in
     serve t job;
     Trace.complete tr ~cat:"server"
       ~args:
         [ ("tag", Trace.Int hdr.Aoe.tag);
           ("lba", Trace.Int hdr.Aoe.lba);
           ("count", Trace.Int hdr.Aoe.count) ]
       "serve" ~ts
   end
   else serve t job);
  t.in_service <- t.in_service - 1;
  worker_loop t

(* Non-blocking dispatch (try_send never suspends), so the work-item
   allocation is safe to scope for the allocation profiler. *)
let on_rx t (pkt : Packet.t) =
  let prof = Sim.profile t.sim in
  let profiled = Bmcast_obs.Profile.enabled prof in
  if profiled then Bmcast_obs.Profile.enter prof "proto.vblade_rx";
  (match pkt.Packet.payload with
  | Aoe.Frame frame when not frame.Aoe.hdr.Aoe.is_response && t.up ->
    ignore (Mailbox.try_send t.work { src = pkt.Packet.src; frame } : bool)
  | Aoe.Frame _ | _ -> ());
  if profiled then Bmcast_obs.Profile.exit prof "proto.vblade_rx"

(* Multicast carousel: stream a hot sector range (the blocks every guest
   reads first during boot) to a fabric multicast group as unsolicited
   read responses tagged [Aoe.mcast_tag], repeating for a bounded number
   of passes so late joiners catch blocks they missed. Fragment data
   arrays are plain GC-owned allocations — NEVER scratch-pooled — because
   the fabric's fan-out shares one payload across every member's frame
   copy; no receiver may release it (see Fabric's multicast ownership
   note). Reads go through [Disk.peek_into] (page-cache semantics): the
   carousel serves from memory and never contends for the disk lock. *)
let multicast t ~group ~lba ~count ?(passes = 4) ?(gap = Time.ms 50) () =
  if lba < 0 || count <= 0 || lba + count > Disk.capacity_sectors t.disk then
    invalid_arg "Vblade.multicast: range out of bounds";
  if passes <= 0 then invalid_arg "Vblade.multicast: passes must be positive";
  let per_frame = Aoe.max_sectors ~mtu:t.mtu in
  let tr = Sim.trace t.sim in
  Sim.spawn_at t.sim ~name:"vblade-mcast" (Sim.now t.sim) (fun () ->
      for pass = 1 to passes do
        (* A crashed server's carousel stays silent until restart. *)
        while not t.up do
          Sim.sleep gap
        done;
        let epoch = t.epoch in
        let traced = Trace.on tr ~cat:"server" in
        let ts = Sim.now t.sim in
        let frames = ref 0 in
        let rec stream off frag =
          if off < count && t.up && t.epoch = epoch then begin
            let n = min per_frame (count - off) in
            let d = Array.make n Content.Zero in
            (match Disk.peek_into t.disk ~lba:(lba + off) ~count:n d with
            | exception Disk.Read_error _ -> ()
            | () ->
              Sim.sleep (Time.mul t.per_sector_cpu n);
              if t.up && t.epoch = epoch then begin
                Aoe.send_wait (port t) ~dst:group
                  { Aoe.major = 0;
                    minor = 0;
                    command = Aoe.Ata_read;
                    tag = Aoe.mcast_tag;
                    frag = frag land 0xFF;
                    is_response = true;
                    error = false;
                    lba = lba + off;
                    count = n }
                  d;
                incr frames;
                t.mcast_frames <- t.mcast_frames + 1;
                t.mcast_bytes <- t.mcast_bytes + (n * 512)
              end);
            stream (off + n) (frag + 1)
          end
        in
        stream 0 0;
        if traced then
          Trace.complete tr ~cat:"server"
            ~args:
              [ ("pass", Trace.Int pass);
                ("frames", Trace.Int !frames);
                ("lba", Trace.Int lba);
                ("count", Trace.Int count) ]
            "mcast.tx" ~ts;
        Sim.sleep gap
      done)

let mcast_frames_sent t = t.mcast_frames
let mcast_bytes_sent t = t.mcast_bytes

let create sim ~fabric ~name ~disk ?(workers = 8)
    ?(per_request_cpu = Time.us 1500) ?(per_sector_cpu = 400)
    ?(ram_cache = false) () =
  if workers <= 0 then invalid_arg "Vblade: workers must be positive";
  let t =
    { sim;
      disk;
      fabric_port = None;
      mtu = Fabric.mtu fabric;
      per_request_cpu;
      per_sector_cpu;
      ram_cache;
      work = Mailbox.create ();
      disk_lock = Semaphore.create 1;
      in_service = 0;
      requests_served = 0;
      bytes_served = 0;
      up = true;
      epoch = 0;
      crashes = 0;
      disk_error_retries = 0;
      mcast_frames = 0;
      mcast_bytes = 0 }
  in
  let fabric_port = Fabric.attach fabric ~name (on_rx t) in
  t.fabric_port <- Some fabric_port;
  (* Per-server health, pull-only: evaluated by the timeseries sampler
     (or a JSON snapshot), free on the request path. [vblade.up] is the
     signal the crash watchdog thresholds on; [vblade.uplink_busy_s]'s
     derivative is the uplink utilization fraction. *)
  let m = Sim.metrics sim in
  let labels = [ ("server", name) ] in
  Metrics.derived m ~labels "vblade.up" (fun () -> if t.up then 1.0 else 0.0);
  Metrics.derived m ~labels "vblade.queue" (fun () ->
      float_of_int (Mailbox.length t.work));
  Metrics.derived m ~labels "vblade.inflight" (fun () ->
      float_of_int (Mailbox.length t.work + t.in_service));
  Metrics.derived m ~labels "vblade.requests" (fun () ->
      float_of_int t.requests_served);
  Metrics.derived m ~labels "vblade.bytes" (fun () ->
      float_of_int t.bytes_served);
  Metrics.derived m ~labels "vblade.crashes" (fun () ->
      float_of_int t.crashes);
  Metrics.derived m ~labels "vblade.uplink_bytes" (fun () ->
      float_of_int (Fabric.port_bytes_out fabric_port));
  Metrics.derived m ~labels "vblade.uplink_busy_s" (fun () ->
      float_of_int (Fabric.port_busy_ns fabric_port) /. 1e9);
  Metrics.derived m ~labels "vblade.mcast_frames" (fun () ->
      float_of_int t.mcast_frames);
  Metrics.derived m ~labels "vblade.mcast_bytes" (fun () ->
      float_of_int t.mcast_bytes);
  for i = 1 to workers do
    Sim.spawn_at sim
      ~name:(Printf.sprintf "%s-worker%d" name i)
      (Sim.now sim)
      (fun () -> worker_loop t)
  done;
  t
