(** AoE initiator with retransmission and fragment reassembly.

    Transport-agnostic: the owner supplies a [send] function (the BMcast
    VMM sends through its polling NIC driver; tests send straight into a
    fabric port) and feeds received frames to {!on_frame}. Reads are
    issued as commands of up to [max_read_sectors]; the target streams
    the response back as MTU-sized fragments which are reassembled by
    the tag/fragment-offset extension. Lost frames are recovered by
    re-sending the whole command after [timeout], with exponential
    backoff across retries (commands are idempotent). *)

type t

val create :
  Bmcast_engine.Sim.t ->
  send:(Aoe.header -> Bmcast_storage.Content.t array -> unit) ->
  ?owner:string ->
  ?mtu:int ->
  ?timeout:Bmcast_engine.Time.span ->
  ?max_read_sectors:int ->
  ?max_retries:int ->
  ?major:int ->
  ?minor:int ->
  unit ->
  t
(** Defaults: MTU 9000, timeout 20 ms, 1024-sector read commands,
    10 retries, target 0.0. [owner] is the owning machine's name; when
    set, command spans carry ["m"]/["stage"] args so
    [Bmcast_obs.Analytics] folds them into its per-operation table. *)

val on_frame : t -> Aoe.frame -> unit
(** Feed a received frame (responses to other tags are ignored, so
    multiple clients can share a pipe). *)

exception Timeout of string
(** Raised when a command exhausts its retries (and the escalation hook,
    if any, declines to keep it alive). *)

val set_escalation :
  t -> (attempts:int -> Aoe.header -> [ `Retry | `Fail ]) -> unit
(** Install the retry-escalation policy consulted each time a command
    exceeds [max_retries]: [`Retry] re-sends at the capped exponential
    backoff (so a recovered or failed-over target completes the request
    instead of a {!Timeout} reaching the guest I/O path); [`Fail]
    surfaces {!Timeout} as before. [attempts] counts sends so far for
    this command. Without a hook the historical raise-on-exhaustion
    behaviour is preserved. *)

val escalations : t -> int
(** Times the escalation hook answered [`Retry]. *)

val completions : t -> int
(** Commands that completed (successfully or with a target error).
    Together with {!pending_count} this gives the no-lost /
    no-double-completed accounting the fault invariants check. *)

val pending_count : t -> int
(** Commands currently awaiting a response. *)

exception Target_error of string
(** Raised when the target answers with the AoE error flag (e.g. an
    out-of-range request). *)

val read : t -> lba:int -> count:int -> Bmcast_storage.Content.t array
(** Blocking read (process context). *)

val write : t -> lba:int -> count:int -> Bmcast_storage.Content.t array -> unit
(** Blocking write (process context). *)

val query_capacity : t -> int
(** AoE Query-Config: the target's capacity in sectors (blocking,
    process context). *)

val retransmits : t -> int
val requests_sent : t -> int

val subscribe_mcast :
  t -> (lba:int -> count:int -> Bmcast_storage.Content.t array -> unit) -> unit
(** Install the handler for unsolicited multicast read data (responses
    tagged {!Aoe.mcast_tag}, which can never match a pending command).
    The data array is {e borrowed}: it is shared with every other group
    member, so the handler must copy what it keeps and must never
    release it to the scratch pool. Error or non-read multicast frames
    are dropped before the handler. *)

val mcast_frames : t -> int
(** Multicast data frames delivered to the subscription handler. *)
