module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Signal = Bmcast_engine.Signal
module Content = Bmcast_storage.Content
module Trace = Bmcast_obs.Trace
module Profile = Bmcast_obs.Profile

exception Timeout of string

exception Target_error of string

type pending = {
  request : Aoe.header;
  write_data : Content.t array option;  (* resent on retry *)
  assembly : Content.t array;  (* read reassembly buffer *)
  got : bool array;  (* per-sector arrival, robust to duplicates *)
  mutable received : int;
  mutable response_lba : int;  (* Query_config answer *)
  mutable failed : bool;  (* target answered with the error flag *)
  done_ : Signal.Latch.t;
}

type t = {
  sim : Sim.t;
  send : Aoe.header -> Content.t array -> unit;
  owner : string option;  (* machine name, for analytics span tags *)
  mtu : int;
  timeout : Time.span;
  max_read_sectors : int;
  max_retries : int;
  major : int;
  minor : int;
  mutable next_tag : int;
  pending : (int, pending) Hashtbl.t;
  mutable retransmits : int;
  mutable requests_sent : int;
  mutable escalation : (attempts:int -> Aoe.header -> [ `Retry | `Fail ]) option;
  mutable escalations : int;
  mutable completions : int;
  mutable mcast_sub : (lba:int -> count:int -> Content.t array -> unit) option;
  mutable mcast_frames : int;
}

let create sim ~send ?owner ?(mtu = 9000) ?(timeout = Time.ms 20)
    ?(max_read_sectors = 1024) ?(max_retries = 10) ?(major = 0) ?(minor = 0)
    () =
  if max_read_sectors <= 0 then
    invalid_arg "Aoe_client: max_read_sectors must be positive";
  { sim;
    send;
    owner;
    mtu;
    timeout;
    max_read_sectors;
    max_retries;
    major;
    minor;
    next_tag = 1;
    pending = Hashtbl.create 32;
    retransmits = 0;
    requests_sent = 0;
    escalation = None;
    escalations = 0;
    completions = 0;
    mcast_sub = None;
    mcast_frames = 0 }

let retransmits t = t.retransmits
let requests_sent t = t.requests_sent
let subscribe_mcast t f = t.mcast_sub <- Some f
let mcast_frames t = t.mcast_frames
let set_escalation t f = t.escalation <- Some f
let escalations t = t.escalations
let completions t = t.completions
let pending_count t = Hashtbl.length t.pending

let fresh_tag t =
  let tag = t.next_tag in
  t.next_tag <- if tag >= 0xFF_FFFF then 1 else tag + 1;
  tag

(* This client is the final consumer of a read-response fragment's data
   array (vblade allocates it from [Content.Scratch] and the fabric only
   recycles frame records, not payloads): once the sectors are copied
   into the reassembly buffer — or the fragment is recognized as a stale
   duplicate — the array goes back to the pool. *)
let release_data frame =
  if Array.length frame.Aoe.data > 0 then
    Content.Scratch.release frame.Aoe.data

let on_frame_inner t frame =
  let hdr = frame.Aoe.hdr in
  if hdr.Aoe.is_response then
    if hdr.Aoe.tag = Aoe.mcast_tag then begin
      (* Unsolicited multicast data. The payload array is shared with
         every other group member (the fabric only copies frame
         records), so it is borrowed for the duration of the callback —
         never released to the scratch pool and never stored. Checked
         before the pending table: tag 0 can't match a command, and the
         stale-duplicate branch below would wrongly release the shared
         array. *)
      match t.mcast_sub with
      | Some f when (not hdr.Aoe.error) && hdr.Aoe.command = Aoe.Ata_read ->
        t.mcast_frames <- t.mcast_frames + 1;
        f ~lba:hdr.Aoe.lba ~count:(Array.length frame.Aoe.data) frame.Aoe.data
      | _ -> ()
    end
    else
    match Hashtbl.find_opt t.pending hdr.Aoe.tag with
    | None -> release_data frame  (* stale duplicate after completion *)
    | Some p when hdr.Aoe.error ->
      p.failed <- true;
      Hashtbl.remove t.pending hdr.Aoe.tag;
      t.completions <- t.completions + 1;
      Signal.Latch.set p.done_
    | Some p ->
      let base = p.request.Aoe.lba in
      (match p.request.Aoe.command with
      | Aoe.Ata_read ->
        let off = hdr.Aoe.lba - base in
        let n = Array.length frame.Aoe.data in
        (if off < 0 || off + n > Array.length p.assembly then ()
         else
           for i = 0 to n - 1 do
             if not p.got.(off + i) then begin
               p.got.(off + i) <- true;
               p.assembly.(off + i) <- frame.Aoe.data.(i);
               p.received <- p.received + 1
             end
           done);
        release_data frame
      | Aoe.Ata_write ->
        (* A write ack covers the whole command. *)
        if p.received = 0 then p.received <- p.request.Aoe.count
      | Aoe.Query_config ->
        p.response_lba <- hdr.Aoe.lba;
        if p.received = 0 then p.received <- p.request.Aoe.count);
      if p.received >= p.request.Aoe.count then begin
        Hashtbl.remove t.pending hdr.Aoe.tag;
        t.completions <- t.completions + 1;
        Signal.Latch.set p.done_
      end

(* Response reassembly never blocks (latch wake-ups only push jobs), so
   it is safe to scope for the allocation profiler. *)
let on_frame t frame =
  let prof = Sim.profile t.sim in
  if Profile.enabled prof then begin
    Profile.enter prof "proto.aoe_rx";
    on_frame_inner t frame;
    Profile.exit prof "proto.aoe_rx"
  end
  else on_frame_inner t frame

let command_name = function
  | Aoe.Ata_read -> "aoe-read"
  | Aoe.Ata_write -> "aoe-write"
  | Aoe.Query_config -> "query-config"

(* Issue one command and block until fully answered, retrying on
   timeout. *)
let run_command t request write_data =
  let tr = Sim.trace t.sim in
  let traced = Trace.on tr ~cat:"aoe" in
  let start = Sim.now t.sim in
  let tries = ref 0 in
  let p =
    { request;
      write_data;
      assembly = Array.make request.Aoe.count Content.Zero;
      got = Array.make request.Aoe.count false;
      received = 0;
      response_lba = 0;
      failed = false;
      done_ = Signal.Latch.create () }
  in
  Hashtbl.replace t.pending request.Aoe.tag p;
  let payload = Option.value write_data ~default:[||] in
  let give_up () =
    Hashtbl.remove t.pending request.Aoe.tag;
    raise
      (Timeout
         (Printf.sprintf "AoE command tag=%d lba=%d count=%d"
            request.Aoe.tag request.Aoe.lba request.Aoe.count))
  in
  let rec attempt n =
    (* Exhausted the normal retry budget: consult the escalation hook
       (installed by the VMM) before surfacing a timeout. [`Retry] keeps
       the command alive at the capped backoff so a target that comes
       back — failover, crash recovery — lets it complete instead of
       erroring into the guest's I/O path. Without a hook the historical
       behaviour stands: raise {!Timeout}. *)
    if n > t.max_retries then begin
      match t.escalation with
      | None -> give_up ()
      | Some f -> (
        match f ~attempts:n request with
        | `Fail -> give_up ()
        | `Retry ->
          t.escalations <- t.escalations + 1;
          if traced then
            Trace.instant tr ~cat:"aoe"
              ~args:[ ("tag", Trace.Int request.Aoe.tag) ]
              "escalate")
    end;
    if n > 0 then begin
      t.retransmits <- t.retransmits + 1;
      incr tries;
      if traced then
        Trace.instant tr ~cat:"aoe"
          ~args:[ ("tag", Trace.Int request.Aoe.tag) ]
          "retransmit"
    end;
    t.requests_sent <- t.requests_sent + 1;
    t.send request payload;
    (* Wait for completion or timeout; the timeout backs off
       exponentially across retries so a loaded target is not buried
       under retransmissions. *)
    let backoff = Time.mul t.timeout (1 lsl min n 6) in
    let deadline = Time.add (Sim.now t.sim) backoff in
    let woke =
      Sim.suspend (fun waker ->
          (* Completion wake-up racing the timeout; first caller wins. *)
          Signal.Latch.on_set p.done_ (fun () -> ignore (waker true : bool));
          Sim.schedule t.sim deadline (fun () -> ignore (waker false : bool)))
    in
    if not woke && not (Signal.Latch.is_set p.done_) then attempt (n + 1)
  in
  attempt 0;
  if traced then begin
    let args =
      [ ("tag", Trace.Int request.Aoe.tag);
        ("lba", Trace.Int request.Aoe.lba);
        ("count", Trace.Int request.Aoe.count);
        ("retries", Trace.Int !tries) ]
    in
    let args =
      (* Machine + stage tags route the span into the per-operation
         table of [Bmcast_obs.Analytics]. *)
      match t.owner with
      | Some m ->
        ("m", Trace.Str m) :: ("stage", Trace.Str "transport") :: args
      | None -> args
    in
    Trace.complete tr ~cat:"aoe" ~args
      (command_name request.Aoe.command)
      ~ts:start
  end;
  if p.failed then
    raise
      (Target_error
         (Printf.sprintf "AoE target rejected lba=%d count=%d"
            request.Aoe.lba request.Aoe.count));
  p

let query_capacity t =
  let request =
    { Aoe.major = t.major;
      minor = t.minor;
      command = Aoe.Query_config;
      tag = fresh_tag t;
      frag = 0;
      is_response = false;
      error = false;
      lba = 0;
      count = 1 }
  in
  (run_command t request None).response_lba

let read t ~lba ~count =
  if count <= 0 then invalid_arg "Aoe_client.read: count must be positive";
  let out = Array.make count Content.Zero in
  let rec go off =
    if off < count then begin
      let n = min t.max_read_sectors (count - off) in
      let request =
        { Aoe.major = t.major;
          minor = t.minor;
          command = Aoe.Ata_read;
          tag = fresh_tag t;
          frag = 0;
          is_response = false;
          error = false;
          lba = lba + off;
          count = n }
      in
      let data = (run_command t request None).assembly in
      Array.blit data 0 out off n;
      go (off + n)
    end
  in
  go 0;
  out

let write t ~lba ~count data =
  if count <= 0 then invalid_arg "Aoe_client.write: count must be positive";
  if Array.length data <> count then
    invalid_arg "Aoe_client.write: data length mismatch";
  let per_frame = Aoe.max_sectors ~mtu:t.mtu in
  let rec go off =
    if off < count then begin
      let n = min per_frame (count - off) in
      let request =
        { Aoe.major = t.major;
          minor = t.minor;
          command = Aoe.Ata_write;
          tag = fresh_tag t;
          frag = 0;
          is_response = false;
          error = false;
          lba = lba + off;
          count = n }
      in
      ignore (run_command t request (Some (Array.sub data off n)) : pending);
      go (off + n)
    end
  in
  go 0
