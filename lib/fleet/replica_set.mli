(** Replica groups for the storage tier.

    N vblade targets export the same golden image; a replica set gives
    one deployment client (the VMM's AoE initiator) a routing function
    over them, so copy-on-read redirects and background-copy fetches fan
    out across servers instead of funnelling through a single uplink.

    Routing is per {e attempt}: {!route} is consulted on every send,
    including retransmissions, so failover needs no extra machinery —
    when a replica stops answering, the AoE client's timeout fires, the
    retransmit re-routes, and the set steers it to a live replica
    (crashed targets drop out via {!Bmcast_proto.Vblade.is_up}, i.e. the
    same epoch-guarded crash model the fault-injection subsystem drives;
    a replica that merely stops answering is put on probation for a
    cooldown). Responses are fed back through {!observe} to maintain
    per-replica outstanding counts and RTT estimates. *)

type policy =
  | Static_shard of int
      (** Shard by LBA: replica index is [(lba / shard_sectors) mod n].
          Deterministic and cache-friendly (each replica serves a fixed
          stripe), but blind to load. *)
  | Least_outstanding
      (** Pick the live replica with the fewest outstanding commands
          (ties broken by lowest index, for determinism). *)
  | Weighted_rtt
      (** Weighted-random draw with weights inverse to the measured
          per-replica RTT (EWMA over unambiguous, first-attempt
          samples), from the simulation's seeded PRNG. *)

val policy_to_string : policy -> string

val policy_of_string : string -> policy option
(** ["shard"], ["shard:<sectors>"], ["least-outstanding"],
    ["weighted-rtt"]. *)

type t

val create :
  Bmcast_engine.Sim.t ->
  ?policy:policy ->
  ?cooldown:Bmcast_engine.Time.span ->
  Bmcast_proto.Vblade.t list ->
  t
(** One replica set per client. Defaults: [Least_outstanding], 500 ms
    probation cooldown after a retransmit implicates a replica. *)

val size : t -> int

val port_of : t -> int -> int
(** Fabric port id of replica [i]. *)

val route : t -> Bmcast_proto.Aoe.header -> int
(** Destination port for this send of a request. A tag seen before is a
    retransmission: the previously chosen replica is put on probation
    and the command re-routed. *)

val observe : t -> Bmcast_proto.Aoe.header -> unit
(** Feed a response frame back (the client's receive path calls this
    before completing the command): updates outstanding counts, clears
    probation and — for unambiguous first-attempt responses — the
    replica's RTT estimate. *)

(** {2 Introspection (tests, reports)} *)

val outstanding : t -> int -> int
val requests_routed : t -> int -> int
(** Commands first-routed to replica [i] (retransmits not re-counted). *)

val failovers : t -> int
(** Retransmissions that switched replica. *)

val rtt_estimate_ms : t -> int -> float
(** Current EWMA RTT of replica [i], in milliseconds. *)
