(** Peer-to-peer image distribution: clients serve extents they hold.

    Deploying N clients from R replicas funnels N copies of the image
    through R uplinks. But every client that has finished (or merely
    progressed) its copy-on-read already holds the hot extents — this
    module turns those clients into additional AoE targets, BitTorrent
    style, so aggregate serving capacity grows with the fleet itself.

    Three pieces:

    - A {e swarm}: per-deployment registry plus a tracker-style
      directory of who holds which chunks, fed by {!Bmcast_proto.Gossip}
      announcements that peers multicast over the AoE fabric (the
      tracker port is the group's subscriber, so gossip cost is O(1) per
      announcement, not O(fleet)).
    - An {e agent} per client machine: its own fabric port serving
      [Ata_read] requests for chunks the local disk fully holds
      (page-cache reads; the guard combines the VMM's fill bitmap with
      the disk's extent accounting). A request for bytes the peer turns
      out not to hold is dropped silently — the requester's AoE timeout
      fires and the router fails it over, exactly like a crashed vblade.
    - A {e router} wrapped around {!Replica_set}: a fresh read whose
      range some live peer advertises goes to the least-loaded such peer;
      everything else — and every retransmission of a peer-routed
      command — falls back to the replica set, with the implicated peer
      put on probation.

    {b Frame ownership.} Peer serves follow the vblade discipline: the
    whole-command staging buffer and each fragment's data array come
    from [Content.Scratch]; a fragment array is owned by the wire and
    released by its final consumer, the requester's reassembly path.
    Gossip announcements ride GC-owned payloads and are never pooled. *)

type t
(** A swarm: one per deployment. *)

val create :
  Bmcast_engine.Sim.t ->
  fabric:Bmcast_net.Fabric.t ->
  image_sectors:int ->
  chunk_sectors:int ->
  ?announce_interval:Bmcast_engine.Time.span ->
  ?cooldown:Bmcast_engine.Time.span ->
  ?per_request_cpu:Bmcast_engine.Time.span ->
  ?per_sector_cpu:Bmcast_engine.Time.span ->
  unit ->
  t
(** Defaults: 250 ms announce interval, 500 ms peer probation cooldown
    after a failover, 300 us per served request + 400 ns per sector
    (a peer is a lean in-kernel responder, but it is also busy booting
    a guest). Registers swarm-wide [p2p.*] / [gossip.*] counters in the
    simulation's metrics registry. *)

val gossip_group : t -> int
(** The fabric multicast group announcements are sent to. *)

type agent

val join :
  t ->
  name:string ->
  has_chunk:(int -> bool) ->
  peek:(lba:int -> count:int -> Bmcast_storage.Content.t array -> unit) ->
  unit ->
  agent
(** Attach a peer for machine [name] (port ["<name>-peer"]).
    [has_chunk c] must answer whether the local disk {e fully} holds
    chunk [c] — the VMM wires it to its fill bitmap combined with
    {!Bmcast_storage.Disk.mapped_sectors_in}; [peek] reads served
    sectors from the local page cache. A background announcer rescans
    unheld chunks every announce interval and multicasts a
    {!Bmcast_proto.Gossip} summary when coverage grew. *)

val agent_port : agent -> int

val crash : agent -> unit
(** The peer's host dies mid-serve: queued requests are discarded,
    in-flight responses are suppressed (epoch guard), the announcer goes
    silent, and the directory stops offering the peer. Requesters
    recover by AoE retransmission, which the router steers back to the
    replica set. *)

val restart : agent -> unit
val is_up : agent -> bool
val served_requests : agent -> int
val served_bytes : agent -> int

(** {2 Routing} *)

type router
(** Per-client routing state layered over a {!Replica_set.t}; plug
    {!route}/{!observe} into [Vmm.boot]'s [?route]/[?on_aoe_response]
    hooks in place of the bare replica-set functions. *)

val router : t -> ?self:agent -> Replica_set.t -> router
(** [self] is the machine's own agent, excluded from peer selection. *)

val route : router -> Bmcast_proto.Aoe.header -> int
val observe : router -> Bmcast_proto.Aoe.header -> unit

(** {2 Introspection (tests, reports)} *)

val known_peers : t -> int
(** Peers with a directory entry (i.e. heard from at least once). *)

val holders : t -> lba:int -> count:int -> int
(** Live peers whose advertised summary covers the whole range. *)

val announces_sent : t -> int
val announces_received : t -> int

val p2p_routed : router -> int
(** Commands this router first sent to a peer. *)

val p2p_failovers : router -> int
(** Peer-routed commands that timed out and fell back to the replica
    set. *)
