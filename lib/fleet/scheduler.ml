module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Semaphore = Bmcast_engine.Semaphore
module Signal = Bmcast_engine.Signal
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics

type wave_policy =
  | All_at_once
  | Waves of int
  | Stagger of Time.span

let wave_policy_to_string = function
  | All_at_once -> "all"
  | Waves k -> Printf.sprintf "waves:%d" k
  | Stagger d -> Printf.sprintf "stagger:%dms" (Time.to_float_ms d |> int_of_float)

let wave_policy_of_string = function
  | "all" -> Some All_at_once
  | s -> (
    match String.split_on_char ':' s with
    | [ "waves"; k ] -> (
      match int_of_string_opt k with
      | Some k when k > 0 -> Some (Waves k)
      | Some _ | None -> None)
    | [ "stagger"; ms ] -> (
      match int_of_string_opt ms with
      | Some ms when ms >= 0 -> Some (Stagger (Time.ms ms))
      | Some _ | None -> None)
    | _ -> None)

type job_stat = {
  name : string;
  server : int;
  submitted : Time.t;
  started : Time.t;
  finished : Time.t;
}

let queue_delay_s s = Time.to_float_s (Time.diff s.started s.submitted)
let service_s s = Time.to_float_s (Time.diff s.finished s.started)

type t = {
  sim : Sim.t;
  servers : int;
  limit_per_server : int;
  policy : wave_policy;
  slots : Semaphore.t;  (* pool-wide capacity *)
  load : int array;  (* in-service leases per server *)
  mutable waiting : int;
  mutable in_service : int;
  mutable peak_queue : int;
  mutable peak_in_service : int;
  admitted : int array;
  mutable ran : bool;
  m_queue : float ref;
  m_in_service : float ref;
  m_admitted : float ref;
}

let create sim ~servers ?(limit_per_server = 4) ?(policy = All_at_once) () =
  if servers <= 0 then invalid_arg "Scheduler.create: servers must be positive";
  if limit_per_server <= 0 then
    invalid_arg "Scheduler.create: limit_per_server must be positive";
  { sim;
    servers;
    limit_per_server;
    policy;
    slots = Semaphore.create (servers * limit_per_server);
    load = Array.make servers 0;
    waiting = 0;
    in_service = 0;
    peak_queue = 0;
    peak_in_service = 0;
    admitted = Array.make servers 0;
    ran = false;
    m_queue = Metrics.gauge (Sim.metrics sim) "fleet.sched.queue_depth";
    m_in_service = Metrics.gauge (Sim.metrics sim) "fleet.sched.in_service";
    m_admitted = Metrics.counter (Sim.metrics sim) "fleet.sched.admitted" }

let peak_queue t = t.peak_queue
let peak_in_service t = t.peak_in_service
let admitted_per_server t = Array.copy t.admitted

(* The pool semaphore guarantees sum(free per-server slots) > 0 here, so
   the least-loaded server always has room. *)
let lease t =
  let best = ref 0 in
  for i = 1 to t.servers - 1 do
    if t.load.(i) < t.load.(!best) then best := i
  done;
  assert (t.load.(!best) < t.limit_per_server);
  t.load.(!best) <- t.load.(!best) + 1;
  t.admitted.(!best) <- t.admitted.(!best) + 1;
  !best

let run_one t ~name body =
  let submitted = Sim.clock () in
  t.waiting <- t.waiting + 1;
  t.peak_queue <- max t.peak_queue t.waiting;
  Metrics.set t.m_queue (float_of_int t.waiting);
  Semaphore.acquire t.slots;
  t.waiting <- t.waiting - 1;
  Metrics.set t.m_queue (float_of_int t.waiting);
  let server = lease t in
  t.in_service <- t.in_service + 1;
  t.peak_in_service <- max t.peak_in_service t.in_service;
  Metrics.incr t.m_admitted;
  Metrics.set t.m_in_service (float_of_int t.in_service);
  let started = Sim.clock () in
  let tr = Sim.trace t.sim in
  let traced = Trace.on tr ~cat:"fleet" in
  (* Boot-pipeline "queue" stage: admission wait, from submission to
     release. Job names are machine names by convention (Scaleout
     deploys "node%d" jobs), which is what lets [Analytics] stitch this
     span onto the same machine's vmm_init/discover/copy/devirt. *)
  if Trace.on tr ~cat:"boot" then
    Trace.complete tr ~cat:"boot"
      ~args:[ ("m", Trace.Str name) ]
      "queue" ~ts:submitted;
  Fun.protect
    ~finally:(fun () ->
      t.load.(server) <- t.load.(server) - 1;
      t.in_service <- t.in_service - 1;
      Metrics.set t.m_in_service (float_of_int t.in_service);
      Semaphore.release t.slots)
    (fun () -> body server);
  let finished = Sim.clock () in
  if traced then
    Trace.complete tr ~cat:"fleet"
      ~args:[ ("server", Trace.Int server); ("job", Trace.Str name) ]
      "deploy" ~ts:started;
  { name; server; submitted; started; finished }

let run t jobs =
  if t.ran then invalid_arg "Scheduler.run: scheduler already used";
  t.ran <- true;
  let n = List.length jobs in
  let results = Array.make n None in
  let done_count = ref 0 in
  let all_done = Signal.Latch.create () in
  let spawn_job idx (name, body) ~release =
    Sim.spawn ~name:(Printf.sprintf "sched-%s" name) (fun () ->
        Signal.Latch.wait release;
        let stat = run_one t ~name body in
        results.(idx) <- Some stat;
        incr done_count;
        if !done_count = n then Signal.Latch.set all_done)
  in
  let releases =
    List.mapi
      (fun idx job ->
        let release = Signal.Latch.create () in
        spawn_job idx job ~release;
        release)
      jobs
  in
  (match t.policy with
  | All_at_once -> List.iter Signal.Latch.set releases
  | Stagger span ->
    List.iteri
      (fun i release ->
        Sim.schedule t.sim
          (Time.add (Sim.clock ()) (Time.mul span i))
          (fun () -> Signal.Latch.set release))
      releases
  | Waves k ->
    (* Release wave w when every job of wave w-1 has finished. We watch
       completion via [done_count] from a pacer process. *)
    let releases = Array.of_list releases in
    Sim.spawn ~name:"sched-waves" (fun () ->
        let rec wave start =
          if start < n then begin
            let stop = min n (start + k) in
            for i = start to stop - 1 do
              Signal.Latch.set releases.(i)
            done;
            (* Poll completion cheaply on the virtual clock. *)
            while !done_count < stop do
              Sim.sleep (Time.ms 50)
            done;
            wave stop
          end
        in
        wave 0));
  Signal.Latch.wait all_done;
  Array.to_list results |> List.map Option.get
