module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Aoe = Bmcast_proto.Aoe
module Vblade = Bmcast_proto.Vblade
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics

type policy =
  | Static_shard of int
  | Least_outstanding
  | Weighted_rtt

let default_shard_sectors = 64 * 2048 (* 64 MB stripes *)

let policy_to_string = function
  | Static_shard s -> Printf.sprintf "shard:%d" s
  | Least_outstanding -> "least-outstanding"
  | Weighted_rtt -> "weighted-rtt"

let policy_of_string = function
  | "shard" -> Some (Static_shard default_shard_sectors)
  | "least-outstanding" -> Some Least_outstanding
  | "weighted-rtt" -> Some Weighted_rtt
  | s -> (
    match String.split_on_char ':' s with
    | [ "shard"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Some (Static_shard n)
      | Some _ | None -> None)
    | _ -> None)

type replica = {
  vblade : Vblade.t;
  port : int;
  mutable outstanding : int;
  mutable routed : int;
  mutable ewma_rtt_ns : float;  (* 0.0 until the first sample *)
  mutable suspect_until : Time.t;
  m_routed : float ref;
  m_rtt : float ref;
}

(* One tracked command: enough state to re-route retransmissions and to
   recognize its completion from the response stream. *)
type flight = {
  mutable ridx : int;
  want : int;
  cmd : Aoe.command;
  mutable got : int;
  mutable attempts : int;
  mutable last_sent : Time.t;
}

type t = {
  sim : Sim.t;
  policy : policy;
  cooldown : Time.span;
  replicas : replica array;
  prng : Prng.t;
  flights : (int, flight) Hashtbl.t;
  mutable failovers : int;
  m_failovers : float ref;
}

let create sim ?(policy = Least_outstanding) ?(cooldown = Time.ms 500) vblades =
  if vblades = [] then invalid_arg "Replica_set.create: empty replica list";
  let metrics = Sim.metrics sim in
  let replicas =
    Array.of_list
      (List.mapi
         (fun i v ->
           let labels = [ ("replica", string_of_int i) ] in
           (* Health as the autoscaler will read it: liveness straight
              from the vblade (pull-only, evaluated at sample time) and
              the smoothed RTT the router steers by. *)
           Metrics.derived metrics ~labels "replica.up" (fun () ->
               if Vblade.is_up v then 1.0 else 0.0);
           { vblade = v;
             port = Vblade.port_id v;
             outstanding = 0;
             routed = 0;
             ewma_rtt_ns = 0.0;
             suspect_until = Time.zero;
             m_routed =
               Metrics.counter metrics ~labels "fleet.requests_routed";
             m_rtt = Metrics.gauge metrics ~labels "replica.rtt_ms" })
         vblades)
  in
  { sim;
    policy;
    cooldown;
    replicas;
    prng = Prng.split (Sim.rand sim);
    flights = Hashtbl.create 64;
    failovers = 0;
    m_failovers = Metrics.counter metrics "fleet.failovers" }

let size t = Array.length t.replicas
let port_of t i = t.replicas.(i).port
let outstanding t i = t.replicas.(i).outstanding
let requests_routed t i = t.replicas.(i).routed
let failovers t = t.failovers
let rtt_estimate_ms t i = t.replicas.(i).ewma_rtt_ns /. 1e6

let eligible t now i =
  let r = t.replicas.(i) in
  Vblade.is_up r.vblade && now >= r.suspect_until

(* Candidate indices, in preference order of degradation: live and off
   probation; else merely live; else everyone (the retransmission loop
   will sort it out once somebody comes back). *)
let candidates t =
  let n = Array.length t.replicas in
  let now = Sim.now t.sim in
  let pick f = List.filter f (List.init n Fun.id) in
  match pick (eligible t now) with
  | _ :: _ as l -> l
  | [] -> (
    match pick (fun i -> Vblade.is_up t.replicas.(i).vblade) with
    | _ :: _ as l -> l
    | [] -> List.init n Fun.id)

let select t ~lba =
  let n = Array.length t.replicas in
  let cands = candidates t in
  match t.policy with
  | Static_shard shard ->
    (* The home shard owner, or the next candidate after it (wrapping)
       when the owner is out. *)
    let home = lba / shard mod n in
    let rec probe k =
      if k = n then List.hd cands
      else
        let i = (home + k) mod n in
        if List.mem i cands then i else probe (k + 1)
    in
    probe 0
  | Least_outstanding ->
    List.fold_left
      (fun best i ->
        if t.replicas.(i).outstanding < t.replicas.(best).outstanding then i
        else best)
      (List.hd cands) (List.tl cands)
  | Weighted_rtt ->
    (* Inverse-RTT weights; an unmeasured replica gets the heaviest
       measured weight so it is probed early. *)
    let measured =
      List.filter_map
        (fun i ->
          let e = t.replicas.(i).ewma_rtt_ns in
          if e > 0.0 then Some (1.0 /. e) else None)
        cands
    in
    let wmax = List.fold_left Float.max 1e-9 measured in
    let weight i =
      let e = t.replicas.(i).ewma_rtt_ns in
      if e > 0.0 then 1.0 /. e else wmax
    in
    let total = List.fold_left (fun acc i -> acc +. weight i) 0.0 cands in
    let u = Prng.float t.prng total in
    let rec walk acc = function
      | [] -> List.hd (List.rev cands)
      | [ i ] -> i
      | i :: rest ->
        let acc = acc +. weight i in
        if u < acc then i else walk acc rest
    in
    walk 0.0 cands

let ewma_alpha = 0.2

let route t (hdr : Aoe.header) =
  let now = Sim.now t.sim in
  match Hashtbl.find_opt t.flights hdr.Aoe.tag with
  | None ->
    let i = select t ~lba:hdr.Aoe.lba in
    let r = t.replicas.(i) in
    r.outstanding <- r.outstanding + 1;
    r.routed <- r.routed + 1;
    Metrics.incr r.m_routed;
    Hashtbl.replace t.flights hdr.Aoe.tag
      { ridx = i;
        want = hdr.Aoe.count;
        cmd = hdr.Aoe.command;
        got = 0;
        attempts = 1;
        last_sent = now };
    r.port
  | Some f ->
    (* Retransmission: the replica we sent to did not answer in time.
       Put it on probation and re-select; a crashed replica (epoch
       bumped, [is_up] false) drops out of the candidate set entirely. *)
    let old = f.ridx in
    t.replicas.(old).suspect_until <- Time.add now t.cooldown;
    let i = select t ~lba:hdr.Aoe.lba in
    if i <> old then begin
      t.failovers <- t.failovers + 1;
      Metrics.incr t.m_failovers;
      t.replicas.(old).outstanding <- t.replicas.(old).outstanding - 1;
      t.replicas.(i).outstanding <- t.replicas.(i).outstanding + 1;
      let tr = Sim.trace t.sim in
      if Trace.on tr ~cat:"fleet" then
        Trace.instant tr ~cat:"fleet"
          ~args:
            [ ("tag", Trace.Int hdr.Aoe.tag);
              ("from", Trace.Int old);
              ("to", Trace.Int i) ]
          "failover"
    end;
    f.ridx <- i;
    f.attempts <- f.attempts + 1;
    f.last_sent <- now;
    t.replicas.(i).port

let complete t tag f =
  let r = t.replicas.(f.ridx) in
  r.outstanding <- max 0 (r.outstanding - 1);
  Hashtbl.remove t.flights tag

let observe t (hdr : Aoe.header) =
  if hdr.Aoe.is_response then
    match Hashtbl.find_opt t.flights hdr.Aoe.tag with
    | None -> ()  (* stale duplicate after completion *)
    | Some f ->
      let r = t.replicas.(f.ridx) in
      (* An answer is proof of life: lift the probation immediately. *)
      r.suspect_until <- Time.zero;
      (* RTT only from unambiguous samples (Karn's rule): first response
         frame of a never-retransmitted command. *)
      if f.got = 0 && f.attempts = 1 then begin
        let sample =
          Stdlib.max 0 (Time.diff (Sim.now t.sim) f.last_sent)
          |> float_of_int
        in
        r.ewma_rtt_ns <-
          (if r.ewma_rtt_ns <= 0.0 then sample
           else ((1.0 -. ewma_alpha) *. r.ewma_rtt_ns) +. (ewma_alpha *. sample));
        Metrics.set r.m_rtt (r.ewma_rtt_ns /. 1e6)
      end;
      if hdr.Aoe.error then complete t hdr.Aoe.tag f
      else (
        match f.cmd with
        | Aoe.Ata_read ->
          f.got <- f.got + hdr.Aoe.count;
          if f.got >= f.want then complete t hdr.Aoe.tag f
        | Aoe.Ata_write | Aoe.Query_config -> complete t hdr.Aoe.tag f)
