(** Deployment admission control for fleet provisioning.

    A scheduler admits concurrent machine deployments against a pool of
    storage servers. Capacity is [servers * limit_per_server] concurrent
    deployments; a submitted job past capacity queues (FIFO). On
    admission each job is leased to the least-loaded server — the pool
    only hands out a slot when some server has one free, so the lease
    never blocks a second time.

    On top of admission sit the start-time policies: release everything
    at once, in waves of [k] (the next wave starts when the previous one
    fully completes), or staggered by a fixed spacing. *)

type wave_policy =
  | All_at_once
  | Waves of int  (** batch size; next wave gated on the previous *)
  | Stagger of Bmcast_engine.Time.span  (** job [i] released at [i * span] *)

val wave_policy_to_string : wave_policy -> string

val wave_policy_of_string : string -> wave_policy option
(** ["all"], ["waves:<k>"], ["stagger:<ms>"]. *)

type job_stat = {
  name : string;
  server : int;  (** pool index of the admission lease *)
  submitted : Bmcast_engine.Time.t;
  started : Bmcast_engine.Time.t;  (** admission time *)
  finished : Bmcast_engine.Time.t;
}

val queue_delay_s : job_stat -> float
val service_s : job_stat -> float

type t

val create :
  Bmcast_engine.Sim.t ->
  servers:int ->
  ?limit_per_server:int ->
  ?policy:wave_policy ->
  unit ->
  t
(** Defaults: 4 concurrent deployments per server, [All_at_once]. *)

val run : t -> (string * (int -> unit)) list -> job_stat list
(** [run t jobs] provisions every job under admission control and
    blocks until all complete (process context). Each job body receives
    the index of the server it was leased to. Stats come back in
    submission order. Raises [Invalid_argument] if called twice. *)

val peak_queue : t -> int
(** High-water mark of jobs waiting for admission. *)

val peak_in_service : t -> int

val admitted_per_server : t -> int array
