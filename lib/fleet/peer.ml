module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Mailbox = Bmcast_engine.Mailbox
module Content = Bmcast_storage.Content
module Fabric = Bmcast_net.Fabric
module Packet = Bmcast_net.Packet
module Aoe = Bmcast_proto.Aoe
module Gossip = Bmcast_proto.Gossip
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics

type job = { src : int; hdr : Aoe.header }

type agent = {
  swarm : t;
  name : string;
  port : Fabric.port;
  has_chunk : int -> bool;
  peek : lba:int -> count:int -> Content.t array -> unit;
  local : Gossip.summary;  (* chunks known held, as of the last scan *)
  mutable announced : int;  (* cardinality at the last announce *)
  work : job Mailbox.t;
  mutable up : bool;
  mutable epoch : int;
  mutable outstanding : int;  (* commands routed here, fleet-wide *)
  mutable suspect_until : Time.t;
  mutable served_requests : int;
  mutable served_bytes : int;
}

(* What the tracker has heard about one peer. The advertised summary is
   deliberately allowed to go stale (lost announcements, crashed peers):
   routing on stale data costs a timeout + failover, exactly the
   behaviour the convergence tests pin. *)
and entry = { agent : agent; seen : Gossip.summary }

and t = {
  sim : Sim.t;
  fabric : Fabric.t;
  image_sectors : int;
  chunk_sectors : int;
  chunks : int;
  announce_interval : Time.span;
  cooldown : Time.span;
  per_request_cpu : Time.span;
  per_sector_cpu : Time.span;
  gossip_group : int;
  mutable agents : agent array;
  mutable n_agents : int;
  directory : (int, entry) Hashtbl.t;  (* origin port id -> entry *)
  mutable announces_sent : int;
  mutable announces_received : int;
  m_gossip_tx : float ref;
  m_gossip_rx : float ref;
  m_serves : float ref;
  m_serve_bytes : float ref;
  m_routed : float ref;
  m_failovers : float ref;
}

let gossip_group t = t.gossip_group
let announces_sent t = t.announces_sent
let announces_received t = t.announces_received
let known_peers t = Hashtbl.length t.directory
let agent_port a = Fabric.port_id a.port
let is_up a = a.up
let served_requests a = a.served_requests
let served_bytes a = a.served_bytes

(* Tracker rx: fold announcements into the directory. The [Announce]
   payload is GC-owned and the frame record is recycled on return — we
   copy nothing and keep nothing but the merged bits. *)
let tracker_rx t (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Gossip.Announce m -> (
    t.announces_received <- t.announces_received + 1;
    Metrics.incr t.m_gossip_rx;
    let tr = Sim.trace t.sim in
    if Trace.on tr ~cat:"fleet" then
      Trace.instant tr ~cat:"fleet"
        ~args:
          [ ("origin", Trace.Int m.Gossip.origin);
            ("held", Trace.Int (Gossip.cardinal m.Gossip.summary)) ]
        "gossip-rx";
    match Hashtbl.find_opt t.directory m.Gossip.origin with
    | Some e -> Gossip.merge_into ~into:e.seen m.Gossip.summary
    | None -> ())  (* unknown origin: agent not registered (yet) *)
  | _ -> ()

let create sim ~fabric ~image_sectors ~chunk_sectors
    ?(announce_interval = Time.ms 250) ?(cooldown = Time.ms 500)
    ?(per_request_cpu = Time.us 300) ?(per_sector_cpu = 400) () =
  if image_sectors <= 0 then invalid_arg "Peer.create: empty image";
  if chunk_sectors <= 0 then invalid_arg "Peer.create: bad chunk size";
  let m = Sim.metrics sim in
  let t =
    { sim;
      fabric;
      image_sectors;
      chunk_sectors;
      chunks = (image_sectors + chunk_sectors - 1) / chunk_sectors;
      announce_interval;
      cooldown;
      per_request_cpu;
      per_sector_cpu;
      gossip_group = Fabric.mcast_group fabric;
      agents = [||];
      n_agents = 0;
      directory = Hashtbl.create 64;
      announces_sent = 0;
      announces_received = 0;
      m_gossip_tx = Metrics.counter m "gossip.tx";
      m_gossip_rx = Metrics.counter m "gossip.rx";
      m_serves = Metrics.counter m "p2p.serves";
      m_serve_bytes = Metrics.counter m "p2p.served_bytes";
      m_routed = Metrics.counter m "p2p.routed";
      m_failovers = Metrics.counter m "p2p.failovers" }
  in
  let tracker = Fabric.attach fabric ~name:"p2p-tracker" (tracker_rx t) in
  Fabric.mcast_join tracker ~group:t.gossip_group;
  t

(* --- serving --- *)

(* One serve, vblade-style: stage the whole command from page cache,
   then stream scratch-pooled fragments with socket backpressure; the
   requester's reassembly path releases each fragment array. Any guard
   failure — crashed, stale epoch, range not (or no longer) fully held —
   drops the request silently; the requester's timeout recovers. *)
let serve t a job =
  let epoch = a.epoch in
  let hdr = job.hdr in
  Sim.sleep (t.per_request_cpu + Time.mul t.per_sector_cpu hdr.Aoe.count);
  let lba = hdr.Aoe.lba and count = hdr.Aoe.count in
  let holds () =
    lba >= 0 && count > 0
    && lba + count <= t.image_sectors
    &&
    let c0 = lba / t.chunk_sectors and c1 = (lba + count - 1) / t.chunk_sectors in
    let ok = ref true in
    for c = c0 to c1 do
      if not (a.has_chunk c) then ok := false
    done;
    !ok
  in
  if a.up && a.epoch = epoch && holds () then begin
    let tr = Sim.trace t.sim in
    let traced = Trace.on tr ~cat:"fleet" in
    let ts = Sim.now t.sim in
    let data = Content.Scratch.alloc count in
    a.peek ~lba ~count data;
    let per_frame = Aoe.max_sectors ~mtu:(Fabric.mtu t.fabric) in
    let rec stream off frag =
      if off < count && a.up && a.epoch = epoch then begin
        let n = min per_frame (count - off) in
        let d = Content.Scratch.alloc n in
        Array.blit data off d 0 n;
        if a.up && a.epoch = epoch then
          Aoe.send_wait a.port ~dst:job.src
            { hdr with
              Aoe.is_response = true;
              frag = frag land 0xFF;
              lba = lba + off;
              count = n }
            d
        else Content.Scratch.release d;
        stream (off + n) (frag + 1)
      end
    in
    stream 0 0;
    Content.Scratch.release data;
    if a.up && a.epoch = epoch then begin
      a.served_requests <- a.served_requests + 1;
      a.served_bytes <- a.served_bytes + (count * 512);
      Metrics.incr t.m_serves;
      Metrics.incr ~by:(float_of_int (count * 512)) t.m_serve_bytes;
      if traced then
        Trace.complete tr ~cat:"fleet"
          ~args:
            [ ("peer", Trace.Str a.name);
              ("tag", Trace.Int hdr.Aoe.tag);
              ("lba", Trace.Int lba);
              ("count", Trace.Int count) ]
          "p2p.serve" ~ts
    end
  end

let rec worker_loop t a =
  let job = Mailbox.recv a.work in
  serve t a job;
  worker_loop t a

(* Peer rx: only read requests; anything else is not ours to answer. *)
let peer_rx a (pkt : Packet.t) =
  match pkt.Packet.payload with
  | Aoe.Frame frame
    when (not frame.Aoe.hdr.Aoe.is_response)
         && frame.Aoe.hdr.Aoe.command = Aoe.Ata_read
         && a.up ->
    ignore (Mailbox.try_send a.work { src = pkt.Packet.src; hdr = frame.Aoe.hdr } : bool)
  | _ -> ()

(* Announcer tick: rescan unheld chunks against the local guard; if
   coverage grew since the last announcement, multicast a fresh summary
   to the tracker. A complete, fully-announced peer's tick is a cheap
   no-op for the rest of the run. *)
let announce_tick t a () =
  if a.up && a.announced < t.chunks then begin
    for c = 0 to t.chunks - 1 do
      if (not (Gossip.mem a.local c)) && a.has_chunk c then Gossip.set a.local c
    done;
    let held = Gossip.cardinal a.local in
    if held > a.announced then begin
      a.announced <- held;
      t.announces_sent <- t.announces_sent + 1;
      Metrics.incr t.m_gossip_tx;
      Gossip.send a.port ~dst:t.gossip_group
        { Gossip.origin = agent_port a;
          epoch = a.epoch;
          summary = Gossip.copy a.local }
    end
  end

let join t ~name ~has_chunk ~peek () =
  let rec a =
    lazy
      { swarm = t;
        name;
        port = Fabric.attach t.fabric ~name:(name ^ "-peer") (fun pkt ->
            peer_rx (Lazy.force a) pkt);
        has_chunk;
        peek;
        local = Gossip.create ~chunks:t.chunks;
        announced = 0;
        work = Mailbox.create ();
        up = true;
        epoch = 0;
        outstanding = 0;
        suspect_until = Time.zero;
        served_requests = 0;
        served_bytes = 0 }
  in
  let a = Lazy.force a in
  let n = t.n_agents in
  if n = Array.length t.agents then begin
    let grown = Array.make (max 16 (2 * n)) a in
    Array.blit t.agents 0 grown 0 n;
    t.agents <- grown
  end;
  t.agents.(n) <- a;
  t.n_agents <- n + 1;
  Hashtbl.replace t.directory (agent_port a)
    { agent = a; seen = Gossip.create ~chunks:t.chunks };
  Sim.spawn_at t.sim ~name:(name ^ "-peer-worker") (Sim.now t.sim) (fun () ->
      worker_loop t a);
  ignore
    (Sim.every t.sim ~daemon:true t.announce_interval (announce_tick t a)
      : unit -> unit);
  a

let crash a =
  if a.up then begin
    a.up <- false;
    a.epoch <- a.epoch + 1;
    while Mailbox.try_recv a.work <> None do
      ()
    done;
    let tr = Sim.trace a.swarm.sim in
    if Trace.on tr ~cat:"fleet" then
      Trace.instant tr ~cat:"fleet"
        ~args:[ ("peer", Trace.Str a.name) ]
        "peer-crash"
  end

let restart a = a.up <- true

(* --- directory queries --- *)

let covers t (s : Gossip.summary) ~lba ~count =
  lba >= 0 && count > 0
  && lba + count <= t.image_sectors
  &&
  let c0 = lba / t.chunk_sectors and c1 = (lba + count - 1) / t.chunk_sectors in
  let ok = ref true in
  for c = c0 to c1 do
    if not (Gossip.mem s c) then ok := false
  done;
  !ok

let holders t ~lba ~count =
  let n = ref 0 in
  for i = 0 to t.n_agents - 1 do
    let a = t.agents.(i) in
    let e = Hashtbl.find t.directory (agent_port a) in
    if a.up && covers t e.seen ~lba ~count then incr n
  done;
  !n

(* --- routing --- *)

type flight = { agent : agent; want : int; mutable got : int }

type router = {
  rt : t;
  self : agent option;
  rset : Replica_set.t;
  flights : (int, flight) Hashtbl.t;  (* peer-routed commands only *)
  mutable routed : int;
  mutable failovers : int;
}

let router t ?self rset =
  { rt = t; self; rset; flights = Hashtbl.create 16; routed = 0; failovers = 0 }

let p2p_routed r = r.routed
let p2p_failovers r = r.failovers

(* Least-outstanding live, off-probation peer advertising the range;
   ties break to earliest join, keeping seeded runs deterministic. *)
let select_peer r ~lba ~count =
  let t = r.rt in
  let now = Sim.now t.sim in
  let best = ref None in
  for i = 0 to t.n_agents - 1 do
    let a = t.agents.(i) in
    let is_self = match r.self with Some s -> s == a | None -> false in
    if (not is_self) && a.up && now >= a.suspect_until then begin
      let e = Hashtbl.find t.directory (agent_port a) in
      if covers t e.seen ~lba ~count then
        match !best with
        | Some b when b.outstanding <= a.outstanding -> ()
        | _ -> best := Some a
    end
  done;
  !best

let route r (hdr : Aoe.header) =
  match Hashtbl.find_opt r.flights hdr.Aoe.tag with
  | Some f ->
    (* A peer-routed command timed out: put the peer on probation, hand
       the command to the replica set as a fresh flight, and never try
       peers again for this tag. *)
    let t = r.rt in
    f.agent.suspect_until <- Time.add (Sim.now t.sim) t.cooldown;
    f.agent.outstanding <- max 0 (f.agent.outstanding - 1);
    Hashtbl.remove r.flights hdr.Aoe.tag;
    r.failovers <- r.failovers + 1;
    Metrics.incr t.m_failovers;
    let tr = Sim.trace t.sim in
    if Trace.on tr ~cat:"fleet" then
      Trace.instant tr ~cat:"fleet"
        ~args:
          [ ("tag", Trace.Int hdr.Aoe.tag);
            ("peer", Trace.Str f.agent.name) ]
        "p2p-failover";
    Replica_set.route r.rset hdr
  | None -> (
    if hdr.Aoe.command <> Aoe.Ata_read then Replica_set.route r.rset hdr
    else
      match select_peer r ~lba:hdr.Aoe.lba ~count:hdr.Aoe.count with
      | None -> Replica_set.route r.rset hdr
      | Some a ->
        a.outstanding <- a.outstanding + 1;
        Hashtbl.replace r.flights hdr.Aoe.tag
          { agent = a; want = hdr.Aoe.count; got = 0 };
        r.routed <- r.routed + 1;
        Metrics.incr r.rt.m_routed;
        agent_port a)

let observe r (hdr : Aoe.header) =
  if hdr.Aoe.is_response then
    match Hashtbl.find_opt r.flights hdr.Aoe.tag with
    | None -> Replica_set.observe r.rset hdr
    | Some f ->
      (* Answers lift probation immediately, like replica proof-of-life. *)
      f.agent.suspect_until <- Time.zero;
      if hdr.Aoe.error then begin
        f.agent.outstanding <- max 0 (f.agent.outstanding - 1);
        Hashtbl.remove r.flights hdr.Aoe.tag
      end
      else begin
        f.got <- f.got + hdr.Aoe.count;
        if f.got >= f.want then begin
          f.agent.outstanding <- max 0 (f.agent.outstanding - 1);
          Hashtbl.remove r.flights hdr.Aoe.tag
        end
      end
