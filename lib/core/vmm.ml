module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Signal = Bmcast_engine.Signal
module Cpu = Bmcast_hw.Cpu
module Tlb = Bmcast_hw.Tlb
module Firmware = Bmcast_hw.Firmware
module Memmap = Bmcast_hw.Memmap
module Pci = Bmcast_hw.Pci
module Content = Bmcast_storage.Content
module Packet = Bmcast_net.Packet
module Fabric = Bmcast_net.Fabric
module Nic = Bmcast_net.Nic
module Mailbox = Bmcast_engine.Mailbox
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Cpu_model = Bmcast_platform.Cpu_model
module Aoe = Bmcast_proto.Aoe
module Aoe_client = Bmcast_proto.Aoe_client
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics

(* The VMM binary fetched over PXE ("we minimize the VMM size as much as
   possible", §3.1; BitVisor-based prototype is ~27 KLoC). *)
let vmm_image_bytes = 2 * 1024 * 1024

type mediator = A of Ahci_mediator.t | I of Ide_mediator.t

type transport =
  | Dedicated of Vmm_netdrv.t  (* own NIC, polling driver *)
  | Shared of Nic_mediator.t  (* one NIC shared with the guest (6) *)

(* 4.3 residual CPUID exits of a resident (no-VMXOFF) VMM, accounted
   lazily: keeping a ~90 s exponential timer alive per idle machine
   forever means a 10,000-guest fleet pays 10,000 eternal scheduler
   events for accounting nobody reads between samples. Instead the
   devirtualized VMM remembers the private interarrival PRNG and the
   next exit time, and catches the exit counters up on demand
   ([totals]/[shutdown]). The stream comes from the same [Prng.split]
   draw the eager timer used, so the counts are identical. *)
type residual = { r_prng : Prng.t; mutable r_next : Time.t }

type t = {
  machine : Machine.t;
  params : Params.t;
  mediator : mediator;
  aoe : Aoe_client.t;
  transport : transport;
  cpu_model : Cpu_model.t;
  bitmap : Bitmap.t;
  mutable background : Background_copy.t option;
  mutable phase : Runtime.phase;
  mutable devirtualized_at : Time.t option;
  deployed : Signal.Latch.t;
  devirt_done : Signal.Latch.t;
  release_memory : bool;
  hide_mgmt_nic : bool;
  boot_prefetch : (int * int) list;
  resume : bool;
  vmxoff : [ `Resident | `Guest_module ];
  mutable residual : residual option;
  mutable shut_down : bool;
  mutable mcast_filled_bytes : int;  (* filled from multicast frames *)
  mutable mcast_dups : int;  (* multicast frames carrying nothing new *)
  mutable last_mcast_at : Time.t option;  (* carousel liveness signal *)
  mutable events : (Time.t * string) list;  (* phase log, newest first *)
}

let phase t = t.phase
let cpu_model t = t.cpu_model

let log_event t what =
  t.events <- (Sim.now t.machine.Machine.sim, what) :: t.events;
  let tr = Sim.trace t.machine.Machine.sim in
  if Trace.on tr ~cat:"vmm" then Trace.instant tr ~cat:"vmm" what

(* Boot-stage pipeline spans (category "boot", tagged with the machine
   name) — the input of [Bmcast_obs.Analytics]. The stages tile the
   boot timeline sequentially, so per machine they sum to the boot
   total; see DESIGN.md §10. *)

let stage_gauge m stage =
  Metrics.gauge m ~labels:[ ("stage", stage) ] "fleet.stage"

let stage_next = function
  | "vmm_init" -> Some "discover"
  | "discover" -> Some "copy"
  | "copy" -> Some "devirt"
  | _ -> None

(* Stage-occupancy accounting rides the same transition points as the
   spans: ending stage S moves the machine into the next stage's gauge
   (occupancy is how many machines currently sit in each stage), and
   ending "devirt" counts the machine as fully provisioned. [boot]
   seeds the pipeline by bumping the "vmm_init" gauge. *)
let stage_span sim ~machine stage ~ts =
  let tr = Sim.trace sim in
  if Trace.on tr ~cat:"boot" then
    Trace.complete tr ~cat:"boot"
      ~args:[ ("m", Trace.Str machine.Machine.name) ]
      stage ~ts;
  let m = Sim.metrics sim in
  if Metrics.enabled m then begin
    Metrics.incr ~by:(-1.0) (stage_gauge m stage);
    match stage_next stage with
    | Some next -> Metrics.incr (stage_gauge m next)
    | None -> Metrics.incr (Metrics.counter m "fleet.devirtualized")
  end

let stage_enter sim stage =
  let m = Sim.metrics sim in
  if Metrics.enabled m then Metrics.incr (stage_gauge m stage)

let events t = List.rev t.events

let netdrv t =
  match t.transport with
  | Dedicated d -> d
  | Shared _ -> invalid_arg "Vmm.netdrv: shared-NIC mode has no own driver"

let nic_mediator t =
  match t.transport with Shared m -> Some m | Dedicated _ -> None
let bitmap t = t.bitmap
let aoe_client t = t.aoe
let wait_deployed t = Signal.Latch.wait t.deployed
let wait_devirtualized t = Signal.Latch.wait t.devirt_done
let devirtualized_at t = t.devirtualized_at

let progress t =
  float_of_int (Bitmap.filled_count t.bitmap)
  /. float_of_int t.params.Params.image_sectors

let med_vmm_write_empty t = match t.mediator with
  | A m -> Ahci_mediator.vmm_write_empty m
  | I m -> Ide_mediator.vmm_write_empty m

let med_vmm_read t = match t.mediator with
  | A m -> Ahci_mediator.vmm_read m
  | I m -> Ide_mediator.vmm_read m

let med_vmm_write t = match t.mediator with
  | A m -> Ahci_mediator.vmm_write m
  | I m -> Ide_mediator.vmm_write m

let guest_io_rate t = match t.mediator with
  | A m -> Ahci_mediator.guest_io_rate m
  | I m -> Ide_mediator.guest_io_rate m

let med_redirect_active t = match t.mediator with
  | A m -> Ahci_mediator.redirect_active m
  | I m -> Ide_mediator.redirect_active m

let med_guest_last_lba t = match t.mediator with
  | A m -> Ahci_mediator.guest_last_lba m
  | I m -> Ide_mediator.guest_last_lba m

let med_wait_ready t = match t.mediator with
  | A m -> Ahci_mediator.wait_device_ready m
  | I m -> Ide_mediator.wait_device_ready m

let med_devirtualize t = match t.mediator with
  | A m -> Ahci_mediator.devirtualize m
  | I m -> Ide_mediator.devirtualize m

(* §3.4: nested paging is turned off per-CPU; no TLB-shootdown IPIs are
   needed because the identity mapping never changed. *)
let nested_paging_off_per_cpu = Time.us 8

let devirtualize t =
  let devirt_started = Sim.now t.machine.Machine.sim in
  let cores = Cpu.num_cores t.machine.Machine.cpu in
  for core = 0 to cores - 1 do
    ignore core;
    Sim.sleep nested_paging_off_per_cpu;
    Cpu.record_exit t.machine.Machine.cpu Cpu.Control_reg
      ~cost:t.params.Params.exit_cost
  done;
  med_devirtualize t;
  (match t.transport with
  | Shared m -> Nic_mediator.devirtualize m
  | Dedicated d ->
    (* Drain in-flight AoE commands (e.g. a boot prefetch racing the
       end of the background copy) before parking the polling driver —
       stopping it with a response outstanding would strand the
       requester in retransmission. Then stop the poll loop: an idle
       devirtualized machine must cost the scheduler nothing. *)
    let rec drain () =
      if Aoe_client.pending_count t.aoe > 0 then begin
        Sim.sleep t.params.Params.poll_interval;
        drain ()
      end
    in
    drain ();
    Vmm_netdrv.stop d);
  Cpu_model.clear t.cpu_model;
  if t.release_memory then Memmap.release_vmm t.machine.Machine.memmap;
  (if t.hide_mgmt_nic then
     (* §4.3: keep the management NIC invisible; the VMM stays resident
        as a config-space filter (negligible cost), so we do not model a
        full VMXOFF in this mode. *)
     Pci.hide t.machine.Machine.pci { Pci.bus = 0; dev = 4; fn = 0 });
  t.phase <- Runtime.Devirtualized;
  t.devirtualized_at <- Some (Sim.now t.machine.Machine.sim);
  log_event t "de-virtualized";
  (* 4.3: without full VMXOFF support the VMM stays resident in VMX
     root mode and the CPUID instruction still unconditionally exits -
     "the intervals of the CPUID exits ranged from a couple of seconds
     to minutes, and their overhead was negligible" (5.5.2). With the
     guest-kernel-module VMXOFF, even those stop. *)
  (match t.vmxoff with
  | `Guest_module -> log_event t "VMXOFF executed (guest module)"
  | `Resident ->
    let prng = Prng.split (Sim.rand t.machine.Machine.sim) in
    t.residual <-
      Some
        { r_prng = prng;
          r_next =
            Time.add
              (Sim.now t.machine.Machine.sim)
              (Time.of_float_s (Prng.exponential prng 90.0)) });
  (let tr = Sim.trace t.machine.Machine.sim in
   if Trace.on tr ~cat:"vmm" then
     Trace.complete tr ~cat:"vmm" "devirtualize" ~ts:devirt_started);
  stage_span t.machine.Machine.sim ~machine:t.machine "devirt"
    ~ts:devirt_started;
  Signal.Latch.set t.devirt_done

(* The bitmap is persisted just past the image, in space no partition
   uses (3.3). *)
let save_region t =
  ( t.params.Params.image_sectors,
    Bitmap.save_sectors ~sectors:t.params.Params.image_sectors )

let deployment t =
  let discover_started = Sim.now t.machine.Machine.sim in
  (* Discover the target and sanity-check the image fits (AoE
     Query-Config). *)
  let capacity = Aoe_client.query_capacity t.aoe in
  if capacity < t.params.Params.image_sectors then
    failwith
      (Printf.sprintf
         "BMcast: target holds %d sectors but the image needs %d" capacity
         t.params.Params.image_sectors);
  log_event t "AoE target discovered";
  (* The VMM cannot multiplex commands until the guest driver has
     initialized the controller. *)
  med_wait_ready t;
  (* Resuming an interrupted deployment: restore the fill bitmap saved
     at shutdown. The read holds the device, so any early guest command
     queues behind it and still sees a correct bitmap. *)
  (if t.resume then begin
     let lba, count = save_region t in
     let data = med_vmm_read t ~lba ~count in
     match Bitmap.load_blob_sectors t.bitmap data with
     | () -> ()
     | exception Invalid_argument _ ->
       (* No (or corrupt) save: deploy from scratch. *)
       ()
   end);
  (* §3.3's optional optimization: eagerly copy the boot working set,
     bypassing moderation (the guest is about to read it anyway). *)
  if t.boot_prefetch <> [] then
    Sim.spawn ~name:"boot-prefetch" (fun () ->
        List.iter
          (fun (lba, count) ->
            let lba = min lba (t.params.Params.image_sectors - 1) in
            let count = min count (t.params.Params.image_sectors - lba) in
            if Bitmap.empty_subranges t.bitmap ~lba ~count <> [] then begin
              let data = Aoe_client.read t.aoe ~lba ~count in
              ignore (med_vmm_write_empty t ~lba ~count data : int)
            end)
          t.boot_prefetch);
  let ops =
    { Background_copy.fetch =
        (fun ~lba ~count -> Aoe_client.read t.aoe ~lba ~count);
      write_empty =
        (fun ~lba ~count data -> med_vmm_write_empty t ~lba ~count data);
      guest_io_rate = (fun () -> guest_io_rate t);
      redirect_active = (fun () -> med_redirect_active t);
      guest_last_lba = (fun () -> med_guest_last_lba t) }
  in
  stage_span t.machine.Machine.sim ~machine:t.machine "discover"
    ~ts:discover_started;
  log_event t "deployment phase: background copy started";
  let copy_started = Sim.now t.machine.Machine.sim in
  let bg =
    Background_copy.start t.machine.Machine.sim ~params:t.params
      ~bitmap:t.bitmap ~ops ~owner:t.machine.Machine.name ()
  in
  t.background <- Some bg;
  Background_copy.wait_complete bg;
  log_event t "image fully deployed";
  stage_span t.machine.Machine.sim ~machine:t.machine "copy" ~ts:copy_started;
  Signal.Latch.set t.deployed;
  devirtualize t

let boot machine ~params ~server_port ?route ?on_aoe_response ?mcast_group
    ?(release_memory = false) ?(hide_mgmt_nic = false) ?(nic = `Mgmt)
    ?(boot_prefetch = []) ?(resume = false) ?(vmxoff = `Resident) () =
  let boot_started = Sim.now machine.Machine.sim in
  stage_enter machine.Machine.sim "vmm_init";
  (* PXE-load the VMM over the management NIC, then initialize. *)
  Firmware.pxe_load machine.Machine.firmware ~bytes_len:vmm_image_bytes;
  Sim.sleep params.Params.vmm_boot_time;
  Memmap.reserve_vmm machine.Machine.memmap ~size:params.Params.vmm_mem_bytes
  |> ignore;
  let bitmap = Bitmap.create ~sectors:params.Params.image_sectors in
  (* Wire the AoE initiator through a NIC transport: a polling driver on
     a NIC the VMM owns, or the shadow-ring mediator when sharing the
     production NIC with the guest (6). *)
  let client_ref = ref None in
  let deliver pkt =
    match pkt.Packet.payload with
    | Aoe.Frame f ->
      Option.iter (fun g -> g f.Aoe.hdr) on_aoe_response;
      Option.iter (fun c -> Aoe_client.on_frame c f) !client_ref;
      true
    | _ -> false
  in
  let transport =
    match nic with
    | (`Mgmt | `Prod) as which ->
      Dedicated
        (Vmm_netdrv.attach machine ~which
           ~poll_interval:params.Params.poll_interval
           ~on_frame:(fun pkt -> ignore (deliver pkt : bool))
           ())
    | `Shared ->
      let m =
        Nic_mediator.attach machine
          ~poll_interval:params.Params.poll_interval
      in
      Nic_mediator.set_vmm_rx m deliver;
      Shared m
  in
  let transport_send ~dst ~size_bytes payload =
    match transport with
    | Dedicated d -> Vmm_netdrv.send d ~dst ~size_bytes payload
    | Shared m -> Nic_mediator.vmm_send m ~dst ~size_bytes payload
  in
  (* Replicated storage tier: [route] picks the target per send (and per
     retransmission, which is what makes replica failover work). *)
  let route = Option.value route ~default:(fun _hdr -> server_port) in
  let aoe =
    Aoe_client.create machine.Machine.sim
      ~send:(fun hdr data ->
        transport_send ~dst:(route hdr)
          ~size_bytes:(Aoe.wire_size ~sectors:(Array.length data))
          (Aoe.Frame { Aoe.hdr; data }))
      ~owner:machine.Machine.name ()
  in
  client_ref := Some aoe;
  let mediator =
    match machine.Machine.controller with
    | Machine.Ahci _ -> A (Ahci_mediator.attach machine ~aoe ~bitmap ~params)
    | Machine.Ide _ -> I (Ide_mediator.attach machine ~aoe ~bitmap ~params)
  in
  (* Shield the bitmap-save region from the guest (3.3). *)
  let save_lba = params.Params.image_sectors in
  let save_count = Bitmap.save_sectors ~sectors:params.Params.image_sectors in
  (match mediator with
  | A m -> Ahci_mediator.set_protected_region m ~lba:save_lba ~count:save_count
  | I m -> Ide_mediator.set_protected_region m ~lba:save_lba ~count:save_count);
  let cpu_model =
    Cpu_model.create ~tlb_mode:Tlb.Nested_paging
      ~steal:params.Params.deploy_steal ~exit_overhead:0.0
  in
  let t =
    { machine;
      params;
      mediator;
      aoe;
      transport;
      cpu_model;
      bitmap;
      background = None;
      phase = Runtime.Deploying;
      devirtualized_at = None;
      deployed = Signal.Latch.create ();
      devirt_done = Signal.Latch.create ();
      release_memory;
      hide_mgmt_nic;
      boot_prefetch;
      resume;
      vmxoff;
      residual = None;
      shut_down = false;
      mcast_filled_bytes = 0;
      mcast_dups = 0;
      last_mcast_at = None;
      events = [] }
  in
  log_event t (if resume then "VMM booted (resuming)" else "VMM booted");
  (* Resilience policy: a deployment must survive storage-server crashes
     and sustained network faults, so an exhausted AoE retry budget
     escalates to keep-trying (capped backoff) rather than raising a
     timeout into the guest's I/O path — the guest just sees a slow
     disk until the target answers again. The first escalation is
     logged so operators can spot the outage in the event trace. *)
  let escalation_logged = ref false in
  Aoe_client.set_escalation aoe (fun ~attempts:_ _hdr ->
      if not !escalation_logged then begin
        escalation_logged := true;
        log_event t "AoE target unresponsive: escalating retries"
      end;
      `Retry);
  (* Multicast deployment path: join the fabric group the storage tier's
     carousel streams hot boot blocks to, and turn unsolicited frames
     into copy-on-read fills. The subscription handler runs in the NIC
     rx path, so it only classifies and copies: frames covering nothing
     empty count as duplicates; the rest are copied off the shared
     (GC-owned, never-released) payload into a scratch buffer and queued
     for the fill process, which writes still-empty sectors through the
     mediator — the same atomic emptiness re-check the background
     writer uses, so a racing guest write always wins. *)
  (match mcast_group with
  | None -> ()
  | Some group ->
    let nic_port =
      match nic with
      | `Mgmt -> Nic.port machine.Machine.mgmt_nic
      | `Prod | `Shared -> Nic.port machine.Machine.prod_nic
    in
    Fabric.mcast_join nic_port ~group;
    let fifo = Mailbox.create () in
    Aoe_client.subscribe_mcast aoe (fun ~lba ~count data ->
        if lba >= 0 && count > 0 && lba + count <= params.Params.image_sectors
        then begin
          t.last_mcast_at <- Some (Sim.now machine.Machine.sim);
          if Bitmap.empty_subranges bitmap ~lba ~count = [] then
            t.mcast_dups <- t.mcast_dups + 1
          else begin
            let copy = Content.Scratch.alloc count in
            Array.blit data 0 copy 0 count;
            ignore (Mailbox.try_send fifo (lba, count, copy) : bool)
          end
        end);
    Sim.spawn ~name:"bmcast-mcast-fill" (fun () ->
        let rec loop () =
          let lba, count, data = Mailbox.recv fifo in
          if (not t.shut_down) && not (Bitmap.is_complete t.bitmap) then begin
            let wrote = med_vmm_write_empty t ~lba ~count data in
            t.mcast_filled_bytes <- t.mcast_filled_bytes + (wrote * 512)
          end;
          Content.Scratch.release data;
          loop ()
        in
        loop ());
    (* While the carousel is live — a frame within the last [quiet]
       window — the background copy defers to it: one multicast stream
       is filling every subscriber, so unicast fetches of the same
       blocks would only congest the storage tier. When the carousel
       goes quiet (passes exhausted, or its vblade crashed) the copy
       resumes and mops up whatever multicast missed; if frames return,
       it pauses again. Copy-on-read is untouched either way — sectors
       the guest demands right now still arrive over unicast. *)
    let quiet = Time.ms 600 in
    ignore
      (Sim.every machine.Machine.sim ~daemon:true (Time.ms 200) (fun () ->
           match t.background with
           | None -> ()
           | Some bg ->
             let live =
               (not (Bitmap.is_complete t.bitmap))
               &&
               match t.last_mcast_at with
               | Some ts -> Sim.now machine.Machine.sim - ts < quiet
               | None -> false
             in
             if live then begin
               if not (Background_copy.is_paused bg) then
                 Background_copy.pause bg
             end
             else if Background_copy.is_paused bg then
               Background_copy.resume bg)
        : unit -> unit));
  stage_span machine.Machine.sim ~machine "vmm_init" ~ts:boot_started;
  Sim.spawn ~name:"bmcast-deployment" (fun () -> deployment t);
  t

(* 3.3: "In case of shutdown and reboot, the VMM saves the bitmap on
   the local disk" - stop the copy threads, persist the bitmap into the
   protected region, and tear the VMM down cleanly so a later
   [boot ~resume:true] on the same machine picks up where we left. *)
let sync_residual t =
  match t.residual with
  | None -> ()
  | Some r ->
    let now = Sim.now t.machine.Machine.sim in
    while r.r_next <= now do
      Cpu.record_exit t.machine.Machine.cpu Cpu.Cpuid
        ~cost:t.params.Params.exit_cost;
      r.r_next <-
        Time.add r.r_next (Time.of_float_s (Prng.exponential r.r_prng 90.0))
    done

let shutdown t =
  if t.shut_down then invalid_arg "Vmm.shutdown: already shut down";
  sync_residual t;
  t.residual <- None;
  (match t.background with
  | Some bg -> Background_copy.stop bg
  | None -> ());
  let lba, count = save_region t in
  med_vmm_write t ~lba ~count (Bitmap.to_blob_sectors t.bitmap);
  med_devirtualize t;
  (match t.transport with
  | Dedicated d -> Vmm_netdrv.stop d
  | Shared m -> Nic_mediator.devirtualize m);
  (* Power-cycle semantics: the memory reservation does not survive. *)
  Memmap.release_vmm t.machine.Machine.memmap;
  log_event t "VMM shut down (bitmap saved)";
  t.shut_down <- true

type totals = {
  redirects : int;
  redirected_bytes : int;
  multiplexed_ops : int;
  queued_commands : int;
  background_bytes : int;
  moderation_suspensions : int;
  vm_exits : int;
  aoe_retransmits : int;
  aoe_escalations : int;
  fetch_failures : int;
  mcast_bytes : int;
  mcast_dups : int;
}

let totals t =
  sync_residual t;
  let redirects, redirected_sectors, multiplexed, queued =
    match t.mediator with
    | A m ->
      let s = Ahci_mediator.stats m in
      ( s.Ahci_mediator.redirects,
        s.Ahci_mediator.redirected_sectors,
        s.Ahci_mediator.multiplexed_ops,
        s.Ahci_mediator.queued_commands )
    | I m ->
      let s = Ide_mediator.stats m in
      ( s.Ide_mediator.redirects,
        s.Ide_mediator.redirected_sectors,
        s.Ide_mediator.multiplexed_ops,
        s.Ide_mediator.queued_commands )
  in
  { redirects;
    redirected_bytes = redirected_sectors * 512;
    multiplexed_ops = multiplexed;
    queued_commands = queued;
    background_bytes =
      (match t.background with
      | Some bg -> Background_copy.bytes_written bg
      | None -> 0);
    moderation_suspensions =
      (match t.background with
      | Some bg -> Background_copy.chunks_suspended bg
      | None -> 0);
    vm_exits = Cpu.total_exits t.machine.Machine.cpu;
    aoe_retransmits = Aoe_client.retransmits t.aoe;
    aoe_escalations = Aoe_client.escalations t.aoe;
    fetch_failures =
      (match t.background with
      | Some bg -> Background_copy.fetch_failures bg
      | None -> 0);
    mcast_bytes = t.mcast_filled_bytes;
    mcast_dups = t.mcast_dups }
