module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Mailbox = Bmcast_engine.Mailbox
module Signal = Bmcast_engine.Signal
module Content = Bmcast_storage.Content
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics

type ops = {
  fetch : lba:int -> count:int -> Content.t array;
  write_empty : lba:int -> count:int -> Content.t array -> int;
  guest_io_rate : unit -> float;
  redirect_active : unit -> bool;
  guest_last_lba : unit -> int option;
}

type chunk = { lba : int; data : Content.t array }

type t = {
  sim : Sim.t;
  params : Params.t;
  owner : string option;  (* machine name, for analytics span tags *)
  bitmap : Bitmap.t;
  ops : ops;
  fifo : chunk Mailbox.t;
  complete : Signal.Latch.t;
  mutable cursor : int;
  mutable last_seen_guest : int option;
  prng : Prng.t;
  mutable in_flight : (int * int) list;
      (** fetched but not yet written; the retriever must not re-fetch
          these after a locality cursor jump *)
  mutable bytes_written : int;
  mutable suspended : int;
  mutable stopped : bool;
  mutable paused : bool;
  mutable fetch_failures : int;
  mutable consecutive_fetch_failures : int;
  mutable completed_at : Time.t option;
  copy_rate : Bmcast_obs.Stats.Rate.t;
  m_active : float ref;
  m_done : float ref;
}

(* The bitmap covers exactly the image region. *)
let image_complete t = Bitmap.is_complete t.bitmap

let overlaps_in_flight t ~lba ~count =
  List.find_opt
    (fun (fl, fc) -> fl < lba + count && lba < fl + fc)
    t.in_flight

(* Next empty run that is not already sitting in the FIFO. *)
let rec find_fetchable t ~from ~attempts =
  if attempts = 0 then None
  else
    match
      Bitmap.find_empty_run t.bitmap ~from ~max:t.params.Params.chunk_sectors
    with
    | None -> None
    | Some (lba, count) -> (
      match overlaps_in_flight t ~lba ~count with
      | None -> Some (lba, count)
      | Some (fl, fc) -> find_fetchable t ~from:(fl + fc) ~attempts:(attempts - 1))

(* Transport faults the retriever must absorb rather than crash on: a
   timed-out fetch (server down, sustained loss) or a target-side error.
   Anything else is a programming error and still propagates. *)
let transient_fetch_error = function
  | Bmcast_proto.Aoe_client.Timeout _ | Bmcast_proto.Aoe_client.Target_error _
    ->
    true
  | _ -> false

(* Exponential backoff for fetch retries, capped at 1 s of virtual time
   so recovery after a long outage is prompt. *)
let fetch_backoff t =
  let base = max t.params.Params.write_interval (Time.ms 1) in
  let span = Time.mul base (1 lsl min t.consecutive_fetch_failures 6) in
  min span (Time.s 1)

(* Machine + stage tags route chunk spans into the per-operation table
   of [Bmcast_obs.Analytics]. *)
let tagged t args =
  match t.owner with
  | Some m -> ("m", Trace.Str m) :: ("stage", Trace.Str "copy") :: args
  | None -> args

let rec retriever t =
  (* The completion check inside the pause loop matters: something else
     (multicast fill, the guest itself) can finish the image while we
     are paused, and [wait_complete] must still fire. *)
  while t.paused && (not t.stopped) && not (image_complete t) do
    Sim.sleep t.params.Params.suspend_interval
  done;
  if t.stopped then ()
  else if not (image_complete t) then begin
    (* Locality: if the guest touched the disk since we last looked,
       resume next to its access to minimize seeking. *)
    (match t.ops.guest_last_lba () with
    | Some lba
      when Some lba <> t.last_seen_guest && lba < t.params.Params.image_sectors
      ->
      t.last_seen_guest <- Some lba;
      t.cursor <- lba
    | Some _ | None -> ());
    match find_fetchable t ~from:t.cursor ~attempts:16 with
    | None ->
      if image_complete t then finish t
      else begin
        (* Everything empty is already in flight; let the writer
           drain. *)
        Sim.sleep t.params.Params.write_interval;
        retriever t
      end
    | Some (lba, count) when lba < t.params.Params.image_sectors ->
      let count = min count (t.params.Params.image_sectors - lba) in
      t.in_flight <- (lba, count) :: t.in_flight;
      let tr = Sim.trace t.sim in
      let traced = Trace.on tr ~cat:"bgcopy" in
      let fetch_started = Sim.now t.sim in
      (match t.ops.fetch ~lba ~count with
      | data ->
        if traced then
          Trace.complete tr ~cat:"bgcopy"
            ~args:(tagged t [ ("lba", Trace.Int lba); ("count", Trace.Int count) ])
            "fetch" ~ts:fetch_started;
        t.consecutive_fetch_failures <- 0;
        t.cursor <- lba + count;
        Mailbox.send t.fifo { lba; data };
        retriever t
      | exception e ->
        (* A VMM shutdown tears the transport down under us; a transport
           timeout or target error is a fault to ride out — back off
           (exponentially, so sustained target loss quiesces the
           retriever) and retry the same range; progress so far (bitmap,
           cursor) is preserved. Anything else is a real failure. *)
        t.in_flight <-
          List.filter (fun (fl, fc) -> not (fl = lba && fc = count)) t.in_flight;
        if t.stopped then ()
        else if transient_fetch_error e then begin
          t.fetch_failures <- t.fetch_failures + 1;
          t.consecutive_fetch_failures <- t.consecutive_fetch_failures + 1;
          if traced then
            Trace.instant tr ~cat:"bgcopy"
              ~args:
                [ ("lba", Trace.Int lba);
                  ("consecutive",
                   Trace.Int t.consecutive_fetch_failures) ]
              "fetch-error";
          Sim.sleep (fetch_backoff t);
          retriever t
        end
        else raise e)
    | Some _ ->
      (* Wrapped past the image: restart from the beginning. *)
      t.cursor <- 0;
      retriever t
  end
  else finish t

and finish t =
  if t.completed_at = None then begin
    t.completed_at <- Some (Sim.now t.sim);
    Metrics.incr ~by:(-1.0) t.m_active;
    Metrics.incr t.m_done;
    Signal.Latch.set t.complete
  end

let rec writer t =
  if t.stopped then ()
  else if not (image_complete t) then begin
    let chunk = Mailbox.recv t.fifo in
    (* Moderation: back off while the guest is busy with the disk, with
       hysteresis — once suspended, stay suspended until the rate drops
       well below the threshold, so a bursty guest stream does not let
       writes slip into its short gaps. *)
    let busy () =
      t.ops.guest_io_rate () > t.params.Params.guest_io_threshold
      || t.ops.redirect_active ()
    in
    let still_busy () =
      t.ops.guest_io_rate () > t.params.Params.guest_io_threshold /. 2.0
      || t.ops.redirect_active ()
    in
    let tr = Sim.trace t.sim in
    let traced = Trace.on tr ~cat:"bgcopy" in
    if busy () then begin
      t.suspended <- t.suspended + 1;
      if traced then
        Trace.instant tr ~cat:"bgcopy"
          ~args:[ ("guest-io-rate", Trace.Float (t.ops.guest_io_rate ())) ]
          "moderation-suspend";
      while still_busy () do
        Sim.sleep t.params.Params.suspend_interval
      done;
      if traced then
        Trace.instant tr ~cat:"bgcopy"
          ~args:[ ("guest-io-rate", Trace.Float (t.ops.guest_io_rate ())) ]
          "moderation-resume"
    end;
    (* Timer jitter (+-12%) keeps the writer from phase-locking with
       periodic guest I/O. *)
    let interval = t.params.Params.write_interval in
    let jitter =
      if interval > 0 then
        Prng.int_in t.prng (-interval / 8) (interval / 8)
      else 0
    in
    Sim.sleep (max 0 (interval + jitter));
    (* The mediator re-checks emptiness while holding the device, so
       anything the guest filled since the fetch is skipped
       atomically. *)
    let write_started = Sim.now t.sim in
    let written =
      t.ops.write_empty ~lba:chunk.lba ~count:(Array.length chunk.data)
        chunk.data
    in
    t.bytes_written <- t.bytes_written + (written * 512);
    Bmcast_obs.Stats.Rate.add t.copy_rate (Sim.now t.sim)
      (float_of_int (written * 512));
    if traced then
      Trace.complete tr ~cat:"bgcopy"
        ~args:
          (tagged t
             [ ("lba", Trace.Int chunk.lba);
               ("written-sectors", Trace.Int written) ])
        "write-chunk" ~ts:write_started;
    t.in_flight <-
      List.filter
        (fun (fl, fc) ->
          not (fl = chunk.lba && fc = Array.length chunk.data))
        t.in_flight;
    if image_complete t then finish t else writer t
  end
  else finish t

let progress t =
  Float.min 1.0
    (float_of_int (Bitmap.filled_count t.bitmap)
    /. float_of_int t.params.Params.image_sectors)

let start sim ~params ~bitmap ~ops ?owner () =
  let t =
    { sim;
      params;
      owner;
      bitmap;
      ops;
      fifo = Mailbox.create ~capacity:8 ();
      complete = Signal.Latch.create ();
      cursor = 0;
      last_seen_guest = None;
      prng = Prng.split (Sim.rand sim);
      in_flight = [];
      bytes_written = 0;
      suspended = 0;
      stopped = false;
      paused = false;
      fetch_failures = 0;
      consecutive_fetch_failures = 0;
      completed_at = None;
      copy_rate = Metrics.rate (Sim.metrics sim) "copy.bytes";
      m_active = Metrics.gauge (Sim.metrics sim) "copy.active";
      m_done = Metrics.counter (Sim.metrics sim) "copy.done" }
  in
  Metrics.incr t.m_active;
  (* Per-machine progress fraction for the dashboard/autoscaler, named
     by owner so fleet runs get one series per deploying machine. *)
  (match owner with
  | Some m ->
    Metrics.derived (Sim.metrics sim)
      ~labels:[ ("m", m) ]
      "copy.progress"
      (fun () -> progress t)
  | None -> ());
  Sim.spawn_at sim ~name:"bgcopy-retriever" (Sim.now sim) (fun () -> retriever t);
  Sim.spawn_at sim ~name:"bgcopy-writer" (Sim.now sim) (fun () -> writer t);
  t

let stop t = t.stopped <- true

(* Operator pause: the retriever stops fetching after its current chunk;
   the writer drains what is already in the FIFO, then idles on it. *)
let pause t = t.paused <- true
let resume t = t.paused <- false
let is_paused t = t.paused
let fetch_failures t = t.fetch_failures

let wait_complete t = Signal.Latch.wait t.complete
let is_complete t = Signal.Latch.is_set t.complete
let bytes_written t = t.bytes_written
let chunks_suspended t = t.suspended
let completed_at t = t.completed_at
