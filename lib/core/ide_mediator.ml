module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Semaphore = Bmcast_engine.Semaphore
module Pio = Bmcast_hw.Pio
module Cpu = Bmcast_hw.Cpu
module Content = Bmcast_storage.Content
module Dma = Bmcast_storage.Dma
module Ide = Bmcast_storage.Ide
module Machine = Bmcast_platform.Machine
module Aoe_client = Bmcast_proto.Aoe_client
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics

type stats = {
  mutable redirects : int;
  mutable redirected_sectors : int;
  mutable multiplexed_ops : int;
  mutable queued_commands : int;
  mutable passthrough_commands : int;
}

(* A fully-interpreted guest command, snapshotted from the shadow task
   file at bus-master start. *)
type command = {
  cmd : int;
  lba : int;
  count : int;
  prdt_addr : int;
  bm_cmd : int;
}

type t = {
  machine : Machine.t;
  ide : Ide.t;
  raw_cmd : Pio.handler;
  raw_bm : Pio.handler;
  raw_ctrl : Pio.handler;
  aoe : Aoe_client.t;
  bitmap : Bitmap.t;
  params : Params.t;
  dummy_prdt : int;
  (* shadow task file (I/O interpretation) *)
  mutable sh_seccount : int;
  mutable sh_lba0 : int;
  mutable sh_lba1 : int;
  mutable sh_lba2 : int;
  mutable sh_device : int;
  mutable sh_prdt : int;
  mutable sh_ctrl : int;
  mutable armed : int option;  (* command register written, DMA not started *)
  (* guest-view emulation *)
  mutable ghost_busy : bool;  (* a withheld guest command "occupies" the device *)
  mutable emulate_idle : bool;  (* a VMM command occupies the device *)
  queued : command Queue.t;
  vmm_lock : Semaphore.t;
  mutable cached_lba : int;
  mutable last_guest_lba : int option;
  mutable protected_region : (int * int) option;
  io_times : Time.t Queue.t;
  mutable inflight_redirects : int;
  mutable devirtualized : bool;
  (* §4.1: polling intervals estimated from recent I/O latencies. *)
  mutable cmd_time_ewma : Time.span;
  stats : stats;
  redirect_latency : Bmcast_obs.Stats.Histogram.t;
}

let stats t = t.stats
let is_devirtualized t = t.devirtualized

let charge_exit t =
  Cpu.record_exit t.machine.Machine.cpu Cpu.Pio ~cost:t.params.Params.exit_cost;
  Sim.sleep t.params.Params.exit_cost

(* Guest I/O rate uses a short (250 ms) trailing window so moderation
   reacts quickly when a storage burst begins. *)
let rate_window = Time.ms 250

let note_guest_io t =
  Queue.add (Sim.now t.machine.Machine.sim) t.io_times;
  let horizon = Time.diff (Sim.now t.machine.Machine.sim) rate_window in
  let rec trim () =
    match Queue.peek_opt t.io_times with
    | Some ts when ts < horizon ->
      ignore (Queue.pop t.io_times : Time.t);
      trim ()
    | Some _ | None -> ()
  in
  trim ()

let guest_io_rate t =
  let now = Sim.now t.machine.Machine.sim in
  let horizon = Time.diff now rate_window in
  let in_window =
    Queue.fold (fun acc ts -> if ts >= horizon then acc +. 1.0 else acc) 0.0
      t.io_times
  in
  in_window /. Time.to_float_s rate_window

let guest_last_lba t = t.last_guest_lba

let redirect_active t = t.inflight_redirects > 0

let shadow_lba t =
  t.sh_lba0 lor (t.sh_lba1 lsl 8) lor (t.sh_lba2 lsl 16)
  lor ((t.sh_device land 0x0F) lsl 24)

let shadow_count t = if t.sh_seccount = 0 then 256 else t.sh_seccount

(* Program the physical device with a command, bypassing interposers. *)
let program_device t c =
  t.raw_bm.Pio.outp Ide.Bm.prdt c.prdt_addr;
  t.raw_cmd.Pio.outp Ide.Regs.seccount (c.count land 0xFF);
  t.raw_cmd.Pio.outp Ide.Regs.lba0 (c.lba land 0xFF);
  t.raw_cmd.Pio.outp Ide.Regs.lba1 ((c.lba lsr 8) land 0xFF);
  t.raw_cmd.Pio.outp Ide.Regs.lba2 ((c.lba lsr 16) land 0xFF);
  t.raw_cmd.Pio.outp Ide.Regs.device (0xE0 lor ((c.lba lsr 24) land 0x0F));
  t.raw_cmd.Pio.outp Ide.Regs.command c.cmd;
  t.raw_bm.Pio.outp Ide.Bm.command c.bm_cmd

let device_busy t = t.raw_cmd.Pio.inp Ide.Regs.command land Ide.status_bsy <> 0

(* The bitmap covers only the deployed image; guest I/O beyond it needs
   no mediation. *)
let empty_in_image t ~lba ~count =
  let limit = t.params.Params.image_sectors in
  if lba >= limit then []
  else Bitmap.empty_subranges t.bitmap ~lba ~count:(min count (limit - lba))

let fill_in_image t ~lba ~count =
  let limit = t.params.Params.image_sectors in
  if lba < limit then
    ignore (Bitmap.fill_range t.bitmap ~lba ~count:(min count (limit - lba)) : int)

let overlaps_protected t ~lba ~count =
  match t.protected_region with
  | Some (pl, pc) -> pl < lba + count && lba < pl + pc
  | None -> false

(* --- multiplexed VMM commands --- *)

let rec drain_queue t =
  match Queue.take_opt t.queued with
  | None -> ()
  | Some c ->
    issue_guest t c;
    drain_queue t

(* Hold the device for a sequence of VMM commands (see
   Ahci_mediator.with_device for the protocol and consistency
   rationale). nIEN replaces the AHCI PxIE mask. *)
and with_device t f =
  Semaphore.with_permit t.vmm_lock (fun () ->
        (* Wait until the device is idle, no guest command is armed
           mid-sequence, and the previous completion was consumed. *)
        while
          device_busy t || t.armed <> None
          || t.raw_bm.Pio.inp Ide.Bm.status land 0x04 <> 0
        do
          Sim.sleep t.params.Params.poll_interval
        done;
      t.emulate_idle <- true;
      t.raw_ctrl.Pio.outp 0 Ide.ctrl_nien;
      f ();
      t.raw_ctrl.Pio.outp 0 t.sh_ctrl;
      t.emulate_idle <- false);
  drain_queue t

(* Issue one VMM command and poll the bus-master IRQ bit; the device
   must be held. *)
and issue_vmm t c =
  let issued_at = Sim.now t.machine.Machine.sim in
  program_device t c;
  (* Adaptive polling: sleep most of the expected service time first,
     then fine-grained polls. *)
  if t.cmd_time_ewma > t.params.Params.poll_interval then
    Sim.sleep (Time.mul (Time.div t.cmd_time_ewma 10) 8);
  while device_busy t || t.raw_bm.Pio.inp Ide.Bm.status land 0x04 = 0 do
    Sim.sleep t.params.Params.poll_interval
  done;
  let took = Time.diff (Sim.now t.machine.Machine.sim) issued_at in
  t.cmd_time_ewma <-
    (if t.cmd_time_ewma = 0 then took
     else Time.div (Time.add (Time.mul t.cmd_time_ewma 7) took) 8);
  t.raw_bm.Pio.outp Ide.Bm.status 0x04;
  t.stats.multiplexed_ops <- t.stats.multiplexed_ops + 1;
  let tr = Sim.trace t.machine.Machine.sim in
  if Trace.on tr ~cat:"mediator" then
    Trace.complete tr ~cat:"mediator"
      ~args:[ ("lba", Trace.Int c.lba); ("count", Trace.Int c.count) ]
      "multiplexed-cmd" ~ts:issued_at

and run_vmm_command t c = with_device t (fun () -> issue_vmm t c)

(* One VMM command per 256 sectors (the task file's 8-bit count). *)
and vmm_chunk t cmd ~lba ~count buf =
  let dir = if cmd = Ide.cmd_read_dma then 0x08 else 0x00 in
  let prdt_addr =
    Ide.register_prdt t.ide [ { Ide.buf_addr = buf.Dma.addr; sectors = count } ]
  in
  run_vmm_command t
    { cmd; lba; count = count land 0xFF; prdt_addr; bm_cmd = 0x01 lor dir }

and vmm_read t ~lba ~count =
  let dma = t.machine.Machine.dma in
  let out = Array.make count Content.Zero in
  let rec go off =
    if off < count then begin
      let n = min 256 (count - off) in
      let buf = Dma.alloc dma ~sectors:n in
      vmm_chunk t Ide.cmd_read_dma ~lba:(lba + off) ~count:n buf;
      Array.blit buf.Dma.data 0 out off n;
      Dma.free dma buf;
      go (off + n)
    end
  in
  go 0;
  t.cached_lba <- lba + count - min 256 count;
  out

and vmm_write t ~lba ~count data =
  let dma = t.machine.Machine.dma in
  let rec go off =
    if off < count then begin
      let n = min 256 (count - off) in
      let buf = Dma.alloc dma ~sectors:n in
      Dma.write buf ~off:0 (Array.sub data off n);
      vmm_chunk t Ide.cmd_write_dma ~lba:(lba + off) ~count:n buf;
      Dma.free dma buf;
      go (off + n)
    end
  in
  go 0

(* Atomic still-empty write: emptiness re-checked while holding the
   device (see Ahci_mediator.vmm_write_empty). *)
and vmm_write_empty t ~lba ~count data =
  let dma = t.machine.Machine.dma in
  let written = ref 0 in
  with_device t (fun () ->
      List.iter
        (fun (sub_lba, sub_count) ->
          let rec go off =
            if off < sub_count then begin
              let n = min 256 (sub_count - off) in
              let buf = Dma.alloc dma ~sectors:n in
              Dma.write buf ~off:0
                (Array.sub data (sub_lba - lba + off) n);
              let dir = 0x00 in
              let prdt_addr =
                Ide.register_prdt t.ide
                  [ { Ide.buf_addr = buf.Dma.addr; sectors = n } ]
              in
              issue_vmm t
                { cmd = Ide.cmd_write_dma;
                  lba = sub_lba + off;
                  count = n land 0xFF;
                  prdt_addr;
                  bm_cmd = 0x01 lor dir };
              Dma.free dma buf;
              go (off + n)
            end
          in
          go 0;
          ignore (Bitmap.fill_range t.bitmap ~lba:sub_lba ~count:sub_count : int);
          written := !written + sub_count)
        (empty_in_image t ~lba ~count));
  !written

(* --- copy-on-read --- *)

and redirect t c =
  t.stats.redirects <- t.stats.redirects + 1;
  t.inflight_redirects <- t.inflight_redirects + 1;
  let started = Sim.now t.machine.Machine.sim in
  let { lba; count; _ } = c in
  let data = Array.make count Content.Zero in
  let empty = empty_in_image t ~lba ~count in
  List.iter
    (fun (sub_lba, sub_count) ->
      let fetched = Aoe_client.read t.aoe ~lba:sub_lba ~count:sub_count in
      Array.blit fetched 0 data (sub_lba - lba) sub_count;
      t.stats.redirected_sectors <- t.stats.redirected_sectors + sub_count;
      (* Asynchronous write-back with the atomic empty-sector re-check
         (see Ahci_mediator.redirect). *)
      t.inflight_redirects <- t.inflight_redirects + 1;
      Sim.spawn ~name:"ide-writeback" (fun () ->
          ignore (vmm_write_empty t ~lba:sub_lba ~count:sub_count fetched : int);
          t.inflight_redirects <- t.inflight_redirects - 1))
    empty;
  let filled =
    let acc = ref [] and pos = ref lba in
    List.iter
      (fun (e_lba, e_count) ->
        if e_lba > !pos then acc := (!pos, e_lba - !pos) :: !acc;
        pos := e_lba + e_count)
      empty;
    if !pos < lba + count then acc := (!pos, lba + count - !pos) :: !acc;
    List.rev !acc
  in
  List.iter
    (fun (f_lba, f_count) ->
      let local = vmm_read t ~lba:f_lba ~count:f_count in
      Array.blit local 0 data (f_lba - lba) f_count)
    filled;
  (* Virtual DMA into the guest's PRD buffers. *)
  let off = ref 0 in
  List.iter
    (fun prd ->
      if !off < count then begin
        let n = min prd.Ide.sectors (count - !off) in
        let buf = Dma.find t.machine.Machine.dma ~addr:prd.Ide.buf_addr in
        Dma.write buf ~off:0 (Array.sub data !off n);
        off := !off + n
      end)
    (Ide.prdt t.ide ~addr:c.prdt_addr);
  (* Dummy-sector restart: the device itself raises the completion
     interrupt. Serialize with VMM commands so the dummy is not
     programmed over a background-copy command (and its interrupt is not
     suppressed by the VMM's nIEN window). *)
  Semaphore.with_permit t.vmm_lock (fun () ->
      while
        device_busy t || t.armed <> None
        || t.raw_bm.Pio.inp Ide.Bm.status land 0x04 <> 0
      do
        Sim.sleep t.params.Params.poll_interval
      done;
      t.ghost_busy <- false;
      t.inflight_redirects <- t.inflight_redirects - 1;
      program_device t
        { cmd = Ide.cmd_read_dma;
          lba = t.cached_lba;
          count = 1;
          prdt_addr = t.dummy_prdt;
          bm_cmd = 0x01 lor 0x08 });
  let sim = t.machine.Machine.sim in
  Bmcast_obs.Stats.Histogram.add t.redirect_latency
    (Time.to_float_ms (Time.diff (Sim.now sim) started));
  let tr = Sim.trace sim in
  if Trace.on tr ~cat:"mediator" then
    Trace.complete tr ~cat:"mediator"
      ~args:
        [ ("m", Trace.Str t.machine.Machine.name);
          ("stage", Trace.Str "copy_on_read");
          ("lba", Trace.Int lba);
          ("count", Trace.Int count) ]
      "redirect" ~ts:started

(* --- command dispatch --- *)

and issue_guest t c =
  (* Follow guest reads only; see Ahci_mediator.dispatch. *)
  if c.cmd = Ide.cmd_read_dma then t.last_guest_lba <- Some (c.lba + c.count);
  if t.emulate_idle then begin
    Queue.add c t.queued;
    t.stats.queued_commands <- t.stats.queued_commands + 1;
    let tr = Sim.trace t.machine.Machine.sim in
    if Trace.on tr ~cat:"mediator" then
      Trace.counter tr ~cat:"mediator" "ide-queue-depth"
        (float_of_int (Queue.length t.queued))
  end
  else if
    (c.cmd = Ide.cmd_write_dma || c.cmd = Ide.cmd_read_dma)
    && overlaps_protected t ~lba:c.lba ~count:c.count
  then begin
    (* Shield the saved-bitmap region: dummy-sector read instead. *)
    t.stats.passthrough_commands <- t.stats.passthrough_commands + 1;
    program_device t
      { cmd = Ide.cmd_read_dma;
        lba = t.cached_lba;
        count = 1;
        prdt_addr = t.dummy_prdt;
        bm_cmd = 0x01 lor 0x08 }
  end
  else if c.cmd = Ide.cmd_write_dma then begin
    fill_in_image t ~lba:c.lba ~count:c.count;
    t.stats.passthrough_commands <- t.stats.passthrough_commands + 1;
    program_device t c
  end
  else if c.cmd = Ide.cmd_read_dma then begin
    if empty_in_image t ~lba:c.lba ~count:c.count = [] then begin
      t.stats.passthrough_commands <- t.stats.passthrough_commands + 1;
      t.cached_lba <- c.lba;
      program_device t c
    end
    else begin
      t.ghost_busy <- true;
      Sim.spawn ~name:"ide-redirect" (fun () -> redirect t c)
    end
  end
  else begin
    (* Non-DMA commands (flush, ...) pass straight through. *)
    t.stats.passthrough_commands <- t.stats.passthrough_commands + 1;
    program_device t c
  end

(* --- interposers --- *)

let on_cmd_out t ~next off v =
  charge_exit t;
  if off = Ide.Regs.seccount then t.sh_seccount <- v land 0xFF
  else if off = Ide.Regs.lba0 then t.sh_lba0 <- v land 0xFF
  else if off = Ide.Regs.lba1 then t.sh_lba1 <- v land 0xFF
  else if off = Ide.Regs.lba2 then t.sh_lba2 <- v land 0xFF
  else if off = Ide.Regs.device then t.sh_device <- v land 0xFF
  else if off = Ide.Regs.command then begin
    if v = Ide.cmd_flush then begin
      (* No bus-master phase: dispatch at command write. *)
      note_guest_io t;
      issue_guest t
        { cmd = v; lba = 0; count = 1; prdt_addr = t.dummy_prdt; bm_cmd = 0 }
    end
    else t.armed <- Some v
  end
  else next off v

let on_cmd_in t ~next off =
  charge_exit t;
  if off = Ide.Regs.command then begin
    if t.ghost_busy then Ide.status_bsy
    else if t.emulate_idle then Ide.status_drdy
    else next off
  end
  else next off

let on_bm_out t ~next off v =
  charge_exit t;
  if off = Ide.Bm.prdt then t.sh_prdt <- v
  else if off = Ide.Bm.command then begin
    if v land 0x01 <> 0 then begin
      match t.armed with
      | Some cmd ->
        t.armed <- None;
        note_guest_io t;
        issue_guest t
          { cmd;
            lba = shadow_lba t;
            count = shadow_count t;
            prdt_addr = t.sh_prdt;
            bm_cmd = v }
      | None ->
        (* Start with nothing armed: forward and let the device complain. *)
        next off v
    end
    else next off v
  end
  else next off v

let on_bm_in t ~next off =
  charge_exit t;
  if off = Ide.Bm.status && (t.ghost_busy || t.emulate_idle) then
    if t.ghost_busy then 0x01 (* active *) else 0x00
  else next off

let on_ctrl_out t ~next off v =
  charge_exit t;
  t.sh_ctrl <- v;
  if not t.emulate_idle then next off v

let on_ctrl_in t ~next off =
  charge_exit t;
  if t.ghost_busy then Ide.status_bsy
  else if t.emulate_idle then Ide.status_drdy
  else next off

let attach machine ~aoe ~bitmap ~params =
  let ide =
    match machine.Machine.controller with
    | Machine.Ide i -> i
    | Machine.Ahci _ -> invalid_arg "Ide_mediator.attach: machine has AHCI disk"
  in
  let dummy_buf = Dma.alloc machine.Machine.dma ~sectors:1 in
  let t =
    { machine;
      ide;
      raw_cmd = Ide.raw_cmd ide;
      raw_bm = Ide.raw_bm ide;
      raw_ctrl = Ide.raw_ctrl ide;
      aoe;
      bitmap;
      params;
      dummy_prdt =
        Ide.register_prdt ide [ { Ide.buf_addr = dummy_buf.Dma.addr; sectors = 1 } ];
      sh_seccount = 0;
      sh_lba0 = 0;
      sh_lba1 = 0;
      sh_lba2 = 0;
      sh_device = 0;
      sh_prdt = 0;
      sh_ctrl = 0;
      armed = None;
      ghost_busy = false;
      emulate_idle = false;
      queued = Queue.create ();
      vmm_lock = Semaphore.create 1;
      cached_lba = 0;
      last_guest_lba = None;
      protected_region = None;
      io_times = Queue.create ();
      inflight_redirects = 0;
      devirtualized = false;
      cmd_time_ewma = 0;
      stats =
        { redirects = 0;
          redirected_sectors = 0;
          multiplexed_ops = 0;
          queued_commands = 0;
          passthrough_commands = 0 };
      redirect_latency =
        Metrics.histogram
          (Sim.metrics machine.Machine.sim)
          ~labels:[ ("disk", "ide") ]
          "redirect_latency_ms" }
  in
  let pio = machine.Machine.pio in
  Pio.interpose pio ~base:Machine.ide_cmd_base
    { Pio.on_in = (fun ~next off -> on_cmd_in t ~next off);
      on_out = (fun ~next off v -> on_cmd_out t ~next off v) };
  Pio.interpose pio ~base:Machine.ide_bm_base
    { Pio.on_in = (fun ~next off -> on_bm_in t ~next off);
      on_out = (fun ~next off v -> on_bm_out t ~next off v) };
  Pio.interpose pio ~base:Machine.ide_ctrl_base
    { Pio.on_in = (fun ~next off -> on_ctrl_in t ~next off);
      on_out = (fun ~next off v -> on_ctrl_out t ~next off v) };
  t

(* IDE ports need no guest-side initialization before the VMM can use
   them (unlike AHCI's command list). *)
let wait_device_ready (_ : t) = ()

let set_protected_region t ~lba ~count = t.protected_region <- Some (lba, count)

let devirtualize t =
  let quiet () =
    t.inflight_redirects = 0 && Queue.is_empty t.queued && not t.emulate_idle
    && (not t.ghost_busy) && t.armed = None
  in
  while not (quiet ()) do
    Sim.sleep t.params.Params.poll_interval
  done;
  Semaphore.with_permit t.vmm_lock (fun () ->
      let pio = t.machine.Machine.pio in
      Pio.remove_interposer pio ~base:Machine.ide_cmd_base;
      Pio.remove_interposer pio ~base:Machine.ide_bm_base;
      Pio.remove_interposer pio ~base:Machine.ide_ctrl_base;
      t.devirtualized <- true);
  let tr = Sim.trace t.machine.Machine.sim in
  if Trace.on tr ~cat:"mediator" then
    Trace.instant tr ~cat:"mediator" "devirtualized"
