module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Semaphore = Bmcast_engine.Semaphore
module Signal = Bmcast_engine.Signal
module Mmio = Bmcast_hw.Mmio
module Cpu = Bmcast_hw.Cpu
module Content = Bmcast_storage.Content
module Dma = Bmcast_storage.Dma
module Ahci = Bmcast_storage.Ahci
module Machine = Bmcast_platform.Machine
module Aoe_client = Bmcast_proto.Aoe_client
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics

type stats = {
  mutable redirects : int;
  mutable redirected_sectors : int;
  mutable multiplexed_ops : int;
  mutable queued_commands : int;
  mutable passthrough_commands : int;
}

(* The slot the VMM uses for its own multiplexed commands; guest drivers
   allocate upward from 0, so the top slot stays free. *)
let vmm_slot = 31

let vmm_slot_bit = 1 lsl vmm_slot

type t = {
  machine : Machine.t;
  ahci : Ahci.t;
  raw : Mmio.handler;
  aoe : Aoe_client.t;
  bitmap : Bitmap.t;
  params : Params.t;
  dummy_buf : Dma.buf;
  (* guest-view emulation *)
  mutable ghost_ci : int;  (* bits the guest believes are on the device *)
  mutable guest_ie : int;
  mutable emulate_idle : bool;  (* a VMM command occupies the device *)
  queued : int Queue.t;
  vmm_lock : Semaphore.t;
  device_ready : Signal.Latch.t;
  (* interpretation state *)
  mutable cached_lba : int;  (* a sector known to be in the disk cache *)
  mutable last_guest_lba : int option;  (* background-copy locality hint *)
  mutable protected_region : (int * int) option;
      (* guest access here is converted to a dummy-sector read (the
         saved-bitmap region, 3.3) *)
  (* moderation input: timestamps of recent guest commands *)
  io_times : Time.t Queue.t;
  mutable inflight_redirects : int;
  mutable devirtualized : bool;
  (* §4.1: polling intervals are estimated from recent I/O latencies;
     EWMA of VMM command service times. *)
  mutable cmd_time_ewma : Time.span;
  stats : stats;
  redirect_latency : Bmcast_obs.Stats.Histogram.t;
}

let stats t = t.stats
let is_devirtualized t = t.devirtualized

(* Every trapped access costs one VM exit. *)
let charge_exit t =
  Cpu.record_exit t.machine.Machine.cpu Cpu.Mmio ~cost:t.params.Params.exit_cost;
  Sim.sleep t.params.Params.exit_cost

(* Guest I/O rate uses a short (250 ms) trailing window so moderation
   reacts quickly when a storage burst begins. *)
let rate_window = Time.ms 250

let note_guest_io t =
  Queue.add (Sim.now t.machine.Machine.sim) t.io_times;
  let horizon = Time.diff (Sim.now t.machine.Machine.sim) rate_window in
  let rec trim () =
    match Queue.peek_opt t.io_times with
    | Some ts when ts < horizon ->
      ignore (Queue.pop t.io_times : Time.t);
      trim ()
    | Some _ | None -> ()
  in
  trim ()

let guest_io_rate t =
  let now = Sim.now t.machine.Machine.sim in
  let horizon = Time.diff now rate_window in
  let in_window =
    Queue.fold (fun acc ts -> if ts >= horizon then acc +. 1.0 else acc) 0.0
      t.io_times
  in
  in_window /. Time.to_float_s rate_window

let current_clb t = t.raw.Mmio.read Ahci.Regs.px_clb

(* The bitmap covers only the deployed image; guest I/O beyond it (fresh
   data regions) needs no mediation. *)
let empty_in_image t ~lba ~count =
  let limit = t.params.Params.image_sectors in
  if lba >= limit then []
  else Bitmap.empty_subranges t.bitmap ~lba ~count:(min count (limit - lba))

let overlaps_protected t ~lba ~count =
  match t.protected_region with
  | Some (pl, pc) -> pl < lba + count && lba < pl + pc
  | None -> false

let fill_in_image t ~lba ~count =
  let limit = t.params.Params.image_sectors in
  if lba < limit then
    ignore (Bitmap.fill_range t.bitmap ~lba ~count:(min count (limit - lba)) : int)

let forward_issue t slot =
  t.ghost_ci <- t.ghost_ci land lnot (1 lsl slot);
  t.raw.Mmio.write Ahci.Regs.px_ci (1 lsl slot)

(* --- multiplexed VMM commands (§3.2 I/O multiplexing) --- *)

let rec drain_queue t =
  match Queue.take_opt t.queued with
  | None -> ()
  | Some slot ->
    dispatch t slot;
    drain_queue t

(* Hold the device for a sequence of VMM commands: wait until it is
   idle AND the guest has acknowledged all its completions (otherwise
   our own PxIS acknowledge would swallow a guest interrupt status bit
   and hang its driver), present an idle device to the guest, mask the
   port interrupt, run [f], then restore. Guest commands issued while
   the device is held are queued and replayed afterwards — and because
   they execute strictly after ours, anything the guest writes still
   lands last (the consistency rule of Section 3.3). *)
and with_device t f =
  Semaphore.with_permit t.vmm_lock (fun () ->
        (* The check-then-claim is atomic: no simulation time passes
           between the last poll and setting [emulate_idle]. *)
        while
          t.raw.Mmio.read Ahci.Regs.px_ci land lnot vmm_slot_bit <> 0
          || t.raw.Mmio.read Ahci.Regs.px_is <> 0
        do
          Sim.sleep t.params.Params.poll_interval
        done;
        t.emulate_idle <- true;
        t.raw.Mmio.write Ahci.Regs.px_ie 0;
      f ();
      t.raw.Mmio.write Ahci.Regs.px_ie t.guest_ie;
      t.emulate_idle <- false);
  (* Replay guest commands intercepted during the VMM commands. *)
  drain_queue t

(* Issue one VMM command in slot 31 and poll for completion; the device
   must be held (inside [with_device]). *)
and issue_vmm t fis prdt =
  let table = Ahci.alloc_cmd_table t.ahci fis prdt in
  Ahci.set_slot t.ahci ~clb:(current_clb t) ~slot:vmm_slot ~table_addr:table;
  let issued_at = Sim.now t.machine.Machine.sim in
  t.raw.Mmio.write Ahci.Regs.px_ci vmm_slot_bit;
  (* Adaptive polling: sleep most of the expected service time first,
     then fall back to fine-grained polls. *)
  if t.cmd_time_ewma > t.params.Params.poll_interval then
    Sim.sleep (Time.mul (Time.div t.cmd_time_ewma 10) 8);
  while t.raw.Mmio.read Ahci.Regs.px_ci land vmm_slot_bit <> 0 do
    Sim.sleep t.params.Params.poll_interval
  done;
  let took = Time.diff (Sim.now t.machine.Machine.sim) issued_at in
  t.cmd_time_ewma <-
    (if t.cmd_time_ewma = 0 then took
     else Time.div (Time.add (Time.mul t.cmd_time_ewma 7) took) 8);
  (* Acknowledge our completion. *)
  t.raw.Mmio.write Ahci.Regs.px_is 1;
  t.stats.multiplexed_ops <- t.stats.multiplexed_ops + 1;
  let tr = Sim.trace t.machine.Machine.sim in
  if Trace.on tr ~cat:"mediator" then
    Trace.complete tr ~cat:"mediator"
      ~args:
        [ ("lba", Trace.Int fis.Ahci.Fis.lba);
          ("count", Trace.Int fis.Ahci.Fis.count) ]
      "multiplexed-cmd" ~ts:issued_at

and run_vmm_command t fis prdt = with_device t (fun () -> issue_vmm t fis prdt)

and vmm_read t ~lba ~count =
  let buf = Dma.alloc t.machine.Machine.dma ~sectors:count in
  run_vmm_command t
    { Ahci.Fis.op = Ahci.Fis.Read; lba; count }
    [ { Ahci.buf_addr = buf.Dma.addr; sectors = count } ];
  t.cached_lba <- lba;
  let data = Array.copy buf.Dma.data in
  Dma.free t.machine.Machine.dma buf;
  data

and vmm_write t ~lba ~count data =
  let buf = Dma.alloc t.machine.Machine.dma ~sectors:count in
  Dma.write buf ~off:0 data;
  run_vmm_command t
    { Ahci.Fis.op = Ahci.Fis.Write; lba; count }
    [ { Ahci.buf_addr = buf.Dma.addr; sectors = count } ];
  Dma.free t.machine.Machine.dma buf

(* Write only sectors still empty, with the emptiness check made while
   holding the device — atomic with respect to guest writes, which are
   either already in the bitmap (checked here) or queued behind us (and
   then overwrite us, which is the correct final state). Marks written
   sectors filled. Returns the number of sectors written. *)
and vmm_write_empty t ~lba ~count data =
  let written = ref 0 in
  with_device t (fun () ->
      List.iter
        (fun (sub_lba, sub_count) ->
          let buf = Dma.alloc t.machine.Machine.dma ~sectors:sub_count in
          Dma.write buf ~off:0 (Array.sub data (sub_lba - lba) sub_count);
          issue_vmm t
            { Ahci.Fis.op = Ahci.Fis.Write; lba = sub_lba; count = sub_count }
            [ { Ahci.buf_addr = buf.Dma.addr; sectors = sub_count } ];
          Dma.free t.machine.Machine.dma buf;
          ignore (Bitmap.fill_range t.bitmap ~lba:sub_lba ~count:sub_count : int);
          written := !written + sub_count)
        (empty_in_image t ~lba ~count));
  !written

(* --- copy-on-read (§3.2 I/O redirection) --- *)

and redirect t slot ct =
  t.stats.redirects <- t.stats.redirects + 1;
  t.inflight_redirects <- t.inflight_redirects + 1;
  let started = Sim.now t.machine.Machine.sim in
  let { Ahci.Fis.lba; count; _ } = ct.Ahci.fis in
  let data = Array.make count Content.Zero in
  (* Assemble the request: empty sub-ranges from the server (2.
     Retrieve), filled sub-ranges from the local disk via multiplexed
     reads. *)
  let empty = empty_in_image t ~lba ~count in
  List.iter
    (fun (sub_lba, sub_count) ->
      let fetched = Aoe_client.read t.aoe ~lba:sub_lba ~count:sub_count in
      Array.blit fetched 0 data (sub_lba - lba) sub_count;
      t.stats.redirected_sectors <- t.stats.redirected_sectors + sub_count;
      (* Write back to the local disk for future use — asynchronously,
         so the guest's read does not also pay the local write. The
         write-back re-checks the bitmap and skips any sector the guest
         wrote in the meantime (same consistency rule as the background
         copy). *)
      t.inflight_redirects <- t.inflight_redirects + 1;
      Sim.spawn ~name:"ahci-writeback" (fun () ->
          ignore
            (vmm_write_empty t ~lba:sub_lba ~count:sub_count fetched : int);
          t.inflight_redirects <- t.inflight_redirects - 1))
    empty;
  (* Filled parts (current local-disk contents). *)
  List.iter
    (fun (f_lba, f_count) ->
      let local = vmm_read t ~lba:f_lba ~count:f_count in
      Array.blit local 0 data (f_lba - lba) f_count)
    (let filled = ref [] in
     let pos = ref lba in
     List.iter
       (fun (e_lba, e_count) ->
         if e_lba > !pos then filled := (!pos, e_lba - !pos) :: !filled;
         pos := e_lba + e_count)
       empty;
     if !pos < lba + count then filled := (!pos, lba + count - !pos) :: !filled;
     List.rev !filled);
  (* 3. Copy: act as a virtual DMA controller into the guest buffers. *)
  let off = ref 0 in
  List.iter
    (fun prd ->
      if !off < count then begin
        let n = min prd.Ahci.sectors (count - !off) in
        let buf = Dma.find t.machine.Machine.dma ~addr:prd.Ahci.buf_addr in
        Dma.write buf ~off:0 (Array.sub data !off n);
        off := !off + n
      end)
    ct.Ahci.prdt;
  (let tr = Sim.trace t.machine.Machine.sim in
   if Trace.on tr ~cat:"mediator" then
     Trace.instant tr ~cat:"mediator"
       ~args:[ ("sectors", Trace.Int count) ]
       "virtual-dma");
  (* 4. Restart: rewrite the command into a single dummy-sector read
     that hits the disk cache and let the device generate the
     interrupt. Serialize with VMM commands so the dummy does not
     complete inside a masked-interrupt window. *)
  ct.Ahci.fis <- { Ahci.Fis.op = Ahci.Fis.Read; lba = t.cached_lba; count = 1 };
  ct.Ahci.prdt <- [ { Ahci.buf_addr = t.dummy_buf.Dma.addr; sectors = 1 } ];
  Semaphore.with_permit t.vmm_lock (fun () ->
      while t.raw.Mmio.read Ahci.Regs.px_is <> 0 do
        Sim.sleep t.params.Params.poll_interval
      done;
      t.inflight_redirects <- t.inflight_redirects - 1;
      forward_issue t slot);
  let sim = t.machine.Machine.sim in
  Bmcast_obs.Stats.Histogram.add t.redirect_latency
    (Time.to_float_ms (Time.diff (Sim.now sim) started));
  let tr = Sim.trace sim in
  if Trace.on tr ~cat:"mediator" then
    Trace.complete tr ~cat:"mediator"
      ~args:
        [ ("m", Trace.Str t.machine.Machine.name);
          ("stage", Trace.Str "copy_on_read");
          ("lba", Trace.Int lba);
          ("count", Trace.Int count) ]
      "redirect" ~ts:started

(* --- command dispatch (I/O interpretation) --- *)

and dispatch t slot =
  let ct = Ahci.cmd_table t.ahci ~addr:(Ahci.slot_table_addr t.ahci ~clb:(current_clb t) ~slot) in
  let { Ahci.Fis.op; lba; count } = ct.Ahci.fis in
  (* Locality hint for the background copy: follow guest READS (data
     the OS will want nearby soon); following writes would make the
     copy chase regions the guest is populating itself. *)
  if op = Ahci.Fis.Read then t.last_guest_lba <- Some (lba + count);
  if t.emulate_idle then begin
    (* A VMM command occupies the device: intercept and queue. *)
    t.ghost_ci <- t.ghost_ci lor (1 lsl slot);
    Queue.add slot t.queued;
    t.stats.queued_commands <- t.stats.queued_commands + 1;
    let tr = Sim.trace t.machine.Machine.sim in
    if Trace.on tr ~cat:"mediator" then
      Trace.counter tr ~cat:"mediator" "ahci-queue-depth"
        (float_of_int (Queue.length t.queued))
  end
  else if overlaps_protected t ~lba ~count then begin
    (* 3.3: the guest must not touch the saved-bitmap region; convert
       the access into a harmless dummy-sector read. *)
    let ct2 = ct in
    ct2.Ahci.fis <- { Ahci.Fis.op = Ahci.Fis.Read; lba = t.cached_lba; count = 1 };
    ct2.Ahci.prdt <- [ { Ahci.buf_addr = t.dummy_buf.Dma.addr; sectors = 1 } ];
    t.stats.passthrough_commands <- t.stats.passthrough_commands + 1;
    forward_issue t slot
  end
  else
    match op with
    | Ahci.Fis.Write ->
      (* Mark written blocks filled before the device sees the command,
         so no background fill can clobber them afterwards. *)
      fill_in_image t ~lba ~count;
      t.stats.passthrough_commands <- t.stats.passthrough_commands + 1;
      forward_issue t slot
    | Ahci.Fis.Read ->
      if empty_in_image t ~lba ~count = [] then begin
        t.stats.passthrough_commands <- t.stats.passthrough_commands + 1;
        t.cached_lba <- lba;
        forward_issue t slot
      end
      else begin
        t.ghost_ci <- t.ghost_ci lor (1 lsl slot);
        Sim.spawn ~name:"ahci-redirect" (fun () -> redirect t slot ct)
      end

(* --- the interposer --- *)

let on_write t ~next off v =
  charge_exit t;
  if off = Ahci.Regs.px_ci then begin
    let known = t.raw.Mmio.read Ahci.Regs.px_ci lor t.ghost_ci in
    for slot = 0 to 31 do
      let bit = 1 lsl slot in
      if v land bit <> 0 && known land bit = 0 then begin
        note_guest_io t;
        dispatch t slot
      end
    done
  end
  else if off = Ahci.Regs.px_ie then begin
    t.guest_ie <- v;
    if not t.emulate_idle then next off v
  end
  else begin
    (if off = Ahci.Regs.px_cmd && v land 1 <> 0 then
       Signal.Latch.set t.device_ready);
    next off v
  end

let on_read t ~next off =
  charge_exit t;
  if off = Ahci.Regs.px_ci then
    if t.emulate_idle then t.ghost_ci
    else next off lor t.ghost_ci
  else if off = Ahci.Regs.px_tfd then begin
    if t.emulate_idle then if t.ghost_ci <> 0 then Ahci.tfd_bsy else 0
    else if t.ghost_ci <> 0 then next off lor Ahci.tfd_bsy
    else next off
  end
  else if off = Ahci.Regs.px_is && t.emulate_idle then 0
  else if off = Ahci.Regs.px_ie then t.guest_ie
  else next off

let attach machine ~aoe ~bitmap ~params =
  let ahci =
    match machine.Machine.controller with
    | Machine.Ahci a -> a
    | Machine.Ide _ -> invalid_arg "Ahci_mediator.attach: machine has IDE disk"
  in
  let t =
    { machine;
      ahci;
      raw = Ahci.raw ahci;
      aoe;
      bitmap;
      params;
      dummy_buf = Dma.alloc machine.Machine.dma ~sectors:1;
      ghost_ci = 0;
      guest_ie = 0;
      emulate_idle = false;
      queued = Queue.create ();
      vmm_lock = Semaphore.create 1;
      device_ready = Signal.Latch.create ();
      cached_lba = 0;
      last_guest_lba = None;
      protected_region = None;
      io_times = Queue.create ();
      inflight_redirects = 0;
      devirtualized = false;
      cmd_time_ewma = 0;
      stats =
        { redirects = 0;
          redirected_sectors = 0;
          multiplexed_ops = 0;
          queued_commands = 0;
          passthrough_commands = 0 };
      redirect_latency =
        Metrics.histogram
          (Sim.metrics machine.Machine.sim)
          ~labels:[ ("disk", "ahci") ]
          "redirect_latency_ms" }
  in
  Mmio.interpose machine.Machine.mmio ~base:Machine.ahci_base
    { Mmio.on_read = (fun ~next off -> on_read t ~next off);
      on_write = (fun ~next off v -> on_write t ~next off v) };
  t

let wait_device_ready t = Signal.Latch.wait t.device_ready

let set_protected_region t ~lba ~count = t.protected_region <- Some (lba, count)

let guest_last_lba t = t.last_guest_lba

let redirect_active t = t.inflight_redirects > 0

let devirtualize t =
  (* Quiesce: no redirect in flight, no queued guest command, and the
     VMM not holding the device. *)
  let quiet () =
    t.inflight_redirects = 0 && Queue.is_empty t.queued && not t.emulate_idle
    && t.ghost_ci = 0
  in
  while not (quiet ()) do
    Sim.sleep t.params.Params.poll_interval
  done;
  Semaphore.with_permit t.vmm_lock (fun () ->
      Mmio.remove_interposer t.machine.Machine.mmio ~base:Machine.ahci_base;
      t.devirtualized <- true);
  let tr = Sim.trace t.machine.Machine.sim in
  if Trace.on tr ~cat:"mediator" then
    Trace.instant tr ~cat:"mediator" "devirtualized"
