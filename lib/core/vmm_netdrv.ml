module Sim = Bmcast_engine.Sim
module Mmio = Bmcast_hw.Mmio
module Nic = Bmcast_net.Nic
module Fabric = Bmcast_net.Fabric
module Machine = Bmcast_platform.Machine

type t = {
  machine : Machine.t;
  base : int;
  nic : Nic.t;
  tx_ring : int;
  rx_ring : int;
  poll_interval : Bmcast_engine.Time.span;
  on_frame : Bmcast_net.Packet.t -> unit;
  mutable tx_idx : int;
  mutable rx_idx : int;  (* next descriptor to consume *)
  mutable rdt : int;
  mutable frames_received : int;
  mutable running : bool;
}

let reg t off = Mmio.read t.machine.Machine.mmio (t.base + off)
let wreg t off v = Mmio.write t.machine.Machine.mmio (t.base + off) v

(* When the ring stays empty the poll interval backs off exponentially
   (up to 64x) and snaps back on traffic — the paper's "polling
   intervals are estimated from recent round trip times" (§4.1), which
   keeps idle deployment phases cheap. *)
let max_backoff = 64

let rec poll_loop t backoff =
  if t.running then begin
    let rdh = reg t Nic.Regs.rdh in
    let saw_traffic = t.rx_idx <> rdh in
    while t.rx_idx <> rdh do
      (match Nic.rx_desc t.nic ~ring:t.rx_ring ~idx:t.rx_idx with
      | Some frame ->
        Nic.clear_rx_desc t.nic ~ring:t.rx_ring ~idx:t.rx_idx;
        t.frames_received <- t.frames_received + 1;
        t.on_frame frame;
        (* [on_frame] consumes synchronously (reassembly copies what it
           needs); hand the record back to the fabric pool. *)
        Fabric.release_frame (Nic.fabric t.nic) frame
      | None -> ());
      t.rx_idx <- (t.rx_idx + 1) mod Nic.ring_size;
      (* Recycle the buffer: advance RDT to keep the ring stocked. *)
      t.rdt <- (t.rdt + 1) mod Nic.ring_size;
      wreg t Nic.Regs.rdt t.rdt
    done;
    let backoff = if saw_traffic then 1 else min max_backoff (backoff * 2) in
    Sim.sleep (t.poll_interval * backoff);
    poll_loop t backoff
  end

let attach machine ?(which = `Mgmt) ~poll_interval ~on_frame () =
  let nic =
    match which with
    | `Mgmt -> machine.Machine.mgmt_nic
    | `Prod -> machine.Machine.prod_nic
  in
  let t =
    { machine;
      base =
        (match which with
        | `Mgmt -> Machine.mgmt_nic_base
        | `Prod -> Machine.prod_nic_base);
      nic;
      (* Fresh rings: attaching is a device (re)initialization, so we
         never inherit a previous owner's ring state. *)
      tx_ring = Nic.alloc_tx_ring nic;
      rx_ring = Nic.alloc_rx_ring nic;
      poll_interval;
      on_frame;
      tx_idx = 0;
      rx_idx = 0;
      rdt = Nic.ring_size - 1;
      frames_received = 0;
      running = true }
  in
  (* Program our rings (resets head/tail), polling mode: interrupts
     off, publish all but one RX buffer. *)
  wreg t Nic.Regs.tdba t.tx_ring;
  wreg t Nic.Regs.rdba t.rx_ring;
  wreg t Nic.Regs.ie 0;
  wreg t Nic.Regs.rdt t.rdt;
  Sim.spawn_at machine.Machine.sim ~name:"vmm-netdrv-poll"
    (Sim.now machine.Machine.sim) (fun () -> poll_loop t 1);
  t

let send t ~dst ~size_bytes payload =
  Nic.set_tx_desc t.nic ~ring:t.tx_ring ~idx:t.tx_idx ~dst ~size_bytes payload;
  t.tx_idx <- (t.tx_idx + 1) mod Nic.ring_size;
  wreg t Nic.Regs.tdt t.tx_idx

let port_id t = Fabric.port_id (Nic.port t.nic)
let frames_received t = t.frames_received
let stop t = t.running <- false
