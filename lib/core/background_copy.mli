(** Background copy engine (§3.3).

    A {e retriever} thread pulls empty-block chunks from the storage
    server and pushes them into a bounded FIFO; a {e writer} thread pops
    chunks and writes them to the local disk through the mediator's
    multiplexed path. The writer moderates itself: while the guest's
    recent I/O rate exceeds the threshold it sleeps for the suspend
    interval, otherwise it writes one chunk per write interval. Chunks
    follow ascending LBA but restart next to the guest's last access to
    minimize seeking; every write atomically skips sectors the guest has
    filled in the meantime (the bitmap consistency rule). *)

type ops = {
  fetch : lba:int -> count:int -> Bmcast_storage.Content.t array;
      (** retrieve from the storage server *)
  write_empty : lba:int -> count:int -> Bmcast_storage.Content.t array -> int;
      (** multiplexed write of the still-empty sectors only (the
          mediator's atomic check-and-write); returns sectors written *)
  guest_io_rate : unit -> float;
  redirect_active : unit -> bool;
      (** copy-on-read in flight: the guest is faulting cold blocks *)
  guest_last_lba : unit -> int option;
      (** where the guest last read the disk, for locality *)
}

type t

val start :
  Bmcast_engine.Sim.t ->
  params:Params.t ->
  bitmap:Bitmap.t ->
  ops:ops ->
  ?owner:string ->
  unit ->
  t
(** Spawn the retriever and writer threads. [owner] is the owning
    machine's name; when set, fetch/write-chunk spans carry
    ["m"]/["stage"] args for [Bmcast_obs.Analytics]. *)

val stop : t -> unit
(** Ask both threads to exit after their current operation (used by a
    VMM shutdown). *)

val pause : t -> unit
(** Suspend retrieval after the current chunk: no new fetches are
    issued until {!resume}. The writer drains chunks already fetched,
    then idles. Progress (bitmap, cursor, in-flight accounting) is
    preserved, so a resumed copy continues exactly where it paused. *)

val resume : t -> unit
val is_paused : t -> bool

val fetch_failures : t -> int
(** Transient fetch errors (transport timeout / target error) the
    retriever absorbed. Each failure backs off exponentially — capped
    at 1 s — so sustained target loss quiesces the retriever instead of
    flooding a dead server, and the failed range is retried once the
    fault clears. *)

val wait_complete : t -> unit
(** Block until every image sector is filled (process context). *)

val is_complete : t -> bool
val progress : t -> float
(** Filled fraction of the image, in [0,1]. *)

val bytes_written : t -> int
val chunks_suspended : t -> int
(** Times the writer found the guest busy and backed off. *)

val completed_at : t -> Bmcast_engine.Time.t option
