(** The BMcast VMM: boot, streaming deployment, de-virtualization.

    Lifecycle (§3.1):
    + {e initialization} — [boot] network-loads the tiny VMM over PXE
      (~2 MB payload), reserves its 128 MB of memory off the top of the
      map, starts the polling driver on the dedicated management NIC and
      installs the device mediator; total ~5 s;
    + {e deployment} — copy-on-read serves the guest while the
      background copy fills the local disk under moderation;
    + {e de-virtualization} — once every image sector is filled the VMM
      waits for the mediator to quiesce, turns nested paging off core by
      core (no IPI needed: identity mapping is constant, §3.4), removes
      the interposers and clears every CPU tax;
    + {e bare-metal} — the guest owns the hardware; the trap and exit
      counters stop advancing (asserted by the test suite).

    The prototype paper leaves the VMM memory reserved after
    de-virtualization; [release_memory:true] enables the memory-hot-plug
    mitigation of §4.3 as an extension. *)

type t

val boot :
  Bmcast_platform.Machine.t ->
  params:Params.t ->
  server_port:int ->
  ?route:(Bmcast_proto.Aoe.header -> int) ->
  ?on_aoe_response:(Bmcast_proto.Aoe.header -> unit) ->
  ?mcast_group:int ->
  ?release_memory:bool ->
  ?hide_mgmt_nic:bool ->
  ?nic:[ `Mgmt | `Prod | `Shared ] ->
  ?boot_prefetch:(int * int) list ->
  ?resume:bool ->
  ?vmxoff:[ `Resident | `Guest_module ] ->
  unit ->
  t
(** Perform the timed VMM boot (process context): PXE load + VMM init,
    then deployment begins. [server_port] is the AoE target's fabric
    port. [route], when given, overrides the destination per request
    {e send} (it is consulted again on every retransmission) — the hook
    a {!Bmcast_fleet.Replica_set} uses to fan copy-on-read and
    background-copy traffic out across replicated storage servers and
    to fail over when one crashes; [on_aoe_response] observes every AoE
    response frame the initiator receives (called before the client
    processes it, e.g. to maintain per-replica RTT / outstanding
    accounting). [hide_mgmt_nic] keeps the management NIC's PCI config
    space hidden from the guest (the §4.3 security option; the VMM then
    stays resident as a config-space filter, at negligible cost). [nic]
    selects the dedicated management NIC (default), exclusive use of
    the production NIC ([`Prod]), or true sharing of the production NIC
    with the guest through the shadow-ring mediator ([`Shared], §6).
    [boot_prefetch] enables §3.3's optional boot-working-set prefetch,
    given as [(lba, sectors)] ranges. [mcast_group], when given, joins
    the VMM's NIC to that fabric multicast group and subscribes to the
    storage tier's carousel of hot boot blocks
    ({!Bmcast_proto.Vblade.multicast}): frames covering still-empty
    sectors are copied off the shared payload and written through the
    mediator's atomic write-if-empty path; the rest count as
    duplicates (see [totals.mcast_bytes]/[totals.mcast_dups]). While
    carousel frames keep arriving the background copy is paused — the
    stream is already filling every subscriber — and it resumes as the
    unicast mop-up backstop once the carousel goes quiet (~600 ms with
    no frame). Copy-on-read is never deferred. *)

val shutdown : t -> unit
(** Stop the copy threads, persist the fill bitmap to its protected
    on-disk region (§3.3) and tear the VMM down (process context). A
    subsequent [boot ~resume:true] on the same machine resumes the
    deployment instead of restarting it. *)

val phase : t -> Bmcast_platform.Runtime.phase
val cpu_model : t -> Bmcast_platform.Cpu_model.t

val wait_deployed : t -> unit
(** Block until the background copy has filled the image (process
    context). *)

val wait_devirtualized : t -> unit

val devirtualized_at : t -> Bmcast_engine.Time.t option

val progress : t -> float
(** Deployed fraction of the image. *)

val guest_io_rate : t -> float

(** {2 Introspection for experiments} *)

type totals = {
  redirects : int;
  redirected_bytes : int;
  multiplexed_ops : int;
  queued_commands : int;
  background_bytes : int;
  moderation_suspensions : int;
  vm_exits : int;
  aoe_retransmits : int;
  aoe_escalations : int;
      (** AoE commands kept alive past the normal retry budget (storage
          server down longer than the retransmission window) *)
  fetch_failures : int;
      (** background-copy fetches that timed out and were retried *)
  mcast_bytes : int;
      (** bytes filled from the multicast carousel (written sectors
          only, not frames that lost the write-if-empty race) *)
  mcast_dups : int;
      (** multicast frames that carried no still-empty sector *)
}

val totals : t -> totals
val bitmap : t -> Bitmap.t
val aoe_client : t -> Bmcast_proto.Aoe_client.t

val netdrv : t -> Vmm_netdrv.t
(** The VMM's own NIC driver (raises [Invalid_argument] in [`Shared]
    mode, which uses {!Nic_mediator} instead). *)

val nic_mediator : t -> Nic_mediator.t option
(** The shadow-ring NIC mediator when running in [`Shared] mode. *)

val events : t -> (Bmcast_engine.Time.t * string) list
(** Timestamped lifecycle log (boot, deployment, de-virtualization,
    shutdown), oldest first. *)
