module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Mmio = Bmcast_hw.Mmio
module Irq = Bmcast_hw.Irq
module Nic = Bmcast_net.Nic
module Fabric = Bmcast_net.Fabric
module Packet = Bmcast_net.Packet
module Machine = Bmcast_platform.Machine

type t = {
  machine : Machine.t;
  nic : Nic.t;
  raw : Mmio.handler;
  poll_interval : Time.span;
  (* shadow rings the device actually uses *)
  shadow_tx : int;
  shadow_rx : int;
  mutable shadow_tx_tail : int;
  mutable shadow_rx_head : int;  (* next shadow RX slot to consume *)
  mutable shadow_rdt : int;
  (* guest view (emulated registers) *)
  mutable g_tx_ring : int;  (* guest's TDBA value *)
  mutable g_rx_ring : int;
  mutable g_tdh : int;
  mutable g_tdt : int;
  mutable g_rdh : int;
  mutable g_rdt : int;
  mutable g_ie : int;
  (* VMM inbound filter *)
  mutable vmm_rx : Packet.t -> bool;
  mutable devirtualized : bool;
  mutable running : bool;
  (* stats *)
  mutable guest_tx_frames : int;
  mutable guest_rx_relayed : int;
  mutable guest_rx_dropped : int;
  mutable vmm_tx_frames : int;
}

let port_id t = Fabric.port_id (Nic.port t.nic)
let guest_tx_frames t = t.guest_tx_frames
let guest_rx_relayed t = t.guest_rx_relayed
let guest_rx_dropped t = t.guest_rx_dropped
let vmm_tx_frames t = t.vmm_tx_frames

let set_vmm_rx t f = t.vmm_rx <- f

(* Push one descriptor into the shadow TX ring and kick the device. *)
let shadow_transmit t ~dst ~size_bytes payload =
  Nic.set_tx_desc t.nic ~ring:t.shadow_tx ~idx:t.shadow_tx_tail ~dst
    ~size_bytes payload;
  t.shadow_tx_tail <- (t.shadow_tx_tail + 1) mod Nic.ring_size;
  t.raw.Mmio.write Nic.Regs.tdt t.shadow_tx_tail

let vmm_send t ~dst ~size_bytes payload =
  t.vmm_tx_frames <- t.vmm_tx_frames + 1;
  shadow_transmit t ~dst ~size_bytes payload

(* Guest wrote TDT: copy its fresh descriptors from its own ring into
   the shadow ring, interleaved after anything already there. *)
let on_guest_tdt t v =
  while t.g_tdt <> v do
    (match Nic.tx_desc t.nic ~ring:t.g_tx_ring ~idx:t.g_tdt with
    | Some (dst, size_bytes, payload) ->
      t.guest_tx_frames <- t.guest_tx_frames + 1;
      shadow_transmit t ~dst ~size_bytes payload
    | None -> invalid_arg "Nic_mediator: guest TX descriptor not populated");
    t.g_tdt <- (t.g_tdt + 1) mod Nic.ring_size
  done;
  (* The device drains synchronously; the guest's view completes. *)
  t.g_tdh <- v

(* Relay one inbound frame into the guest's RX ring. *)
let relay_to_guest t frame =
  let next = (t.g_rdh + 1) mod Nic.ring_size in
  if t.g_rdh = t.g_rdt then
    t.guest_rx_dropped <- t.guest_rx_dropped + 1
  else begin
    Nic.put_rx_desc t.nic ~ring:t.g_rx_ring ~idx:t.g_rdh frame;
    t.g_rdh <- next;
    t.guest_rx_relayed <- t.guest_rx_relayed + 1;
    if t.g_ie <> 0 then
      Irq.raise_irq t.machine.Machine.irq ~vec:Machine.prod_nic_irq_vec
  end

let rec poll_loop t backoff =
  if t.running then begin
    let rdh = t.raw.Mmio.read Nic.Regs.rdh in
    let saw = t.shadow_rx_head <> rdh in
    while t.shadow_rx_head <> rdh do
      (match Nic.rx_desc t.nic ~ring:t.shadow_rx ~idx:t.shadow_rx_head with
      | Some frame ->
        Nic.clear_rx_desc t.nic ~ring:t.shadow_rx ~idx:t.shadow_rx_head;
        if t.vmm_rx frame then
          (* Consumed by the VMM here and now: recycle the record. A
             relayed frame instead stays live in the guest's RX ring. *)
          Fabric.release_frame (Nic.fabric t.nic) frame
        else relay_to_guest t frame
      | None -> ());
      t.shadow_rx_head <- (t.shadow_rx_head + 1) mod Nic.ring_size;
      t.shadow_rdt <- (t.shadow_rdt + 1) mod Nic.ring_size;
      t.raw.Mmio.write Nic.Regs.rdt t.shadow_rdt
    done;
    let backoff = if saw then 1 else min 64 (backoff * 2) in
    Sim.sleep (t.poll_interval * backoff);
    poll_loop t backoff
  end

(* The interposer: virtualize head/tail/enable; ring bases are recorded
   but never forwarded (the device keeps pointing at the shadows). *)
let on_read t ~next off =
  if off = Nic.Regs.tdh then t.g_tdh
  else if off = Nic.Regs.tdt then t.g_tdt
  else if off = Nic.Regs.rdh then t.g_rdh
  else if off = Nic.Regs.rdt then t.g_rdt
  else if off = Nic.Regs.ie then t.g_ie
  else if off = Nic.Regs.tdba then t.g_tx_ring
  else if off = Nic.Regs.rdba then t.g_rx_ring
  else next off

let on_write t ~next off vi =
  ignore next;
  if off = Nic.Regs.tdt then on_guest_tdt t vi
  else if off = Nic.Regs.rdt then t.g_rdt <- vi
  else if off = Nic.Regs.ie then t.g_ie <- vi
  else if off = Nic.Regs.tdba then begin
    t.g_tx_ring <- vi;
    t.g_tdh <- 0;
    t.g_tdt <- 0
  end
  else if off = Nic.Regs.rdba then begin
    t.g_rx_ring <- vi;
    t.g_rdh <- 0;
    t.g_rdt <- 0
  end
  else ()

let attach machine ~poll_interval =
  let nic = machine.Machine.prod_nic in
  let raw = Nic.raw nic in
  let shadow_tx = Nic.alloc_tx_ring nic in
  let shadow_rx = Nic.alloc_rx_ring nic in
  let t =
    { machine;
      nic;
      raw;
      poll_interval;
      shadow_tx;
      shadow_rx;
      shadow_tx_tail = 0;
      shadow_rx_head = 0;
      shadow_rdt = Nic.ring_size - 1;
      g_tx_ring = Nic.default_tx_ring nic;
      g_rx_ring = Nic.default_rx_ring nic;
      g_tdh = 0;
      g_tdt = 0;
      g_rdh = 0;
      g_rdt = 0;
      g_ie = 0;
      vmm_rx = (fun _ -> false);
      devirtualized = false;
      running = true;
      guest_tx_frames = 0;
      guest_rx_relayed = 0;
      guest_rx_dropped = 0;
      vmm_tx_frames = 0 }
  in
  (* Retarget the device at the shadows, keep its interrupts off (the
     mediator polls), publish all shadow RX buffers. *)
  raw.Mmio.write Nic.Regs.ie 0;
  raw.Mmio.write Nic.Regs.tdba shadow_tx;
  raw.Mmio.write Nic.Regs.rdba shadow_rx;
  raw.Mmio.write Nic.Regs.rdt t.shadow_rdt;
  Mmio.interpose machine.Machine.mmio ~base:Machine.prod_nic_base
    { Mmio.on_read = (fun ~next off -> on_read t ~next off);
      on_write = (fun ~next off v -> on_write t ~next off v) };
  Sim.spawn_at machine.Machine.sim ~name:"nic-mediator-poll"
    (Sim.now machine.Machine.sim) (fun () -> poll_loop t 1);
  t

let devirtualize t =
  (* Wait for the guest's TX stream to go quiet and the shadow RX ring
     to drain. *)
  while
    t.g_tdh <> t.g_tdt
    || t.shadow_rx_head <> t.raw.Mmio.read Nic.Regs.rdh
  do
    Sim.sleep t.poll_interval
  done;
  t.running <- false;
  (* Hand the hardware back: device uses the guest's rings directly.
     Base writes reset head/tail on both sides, like a device reset; the
     guest driver reinitializes its indices the same way. *)
  t.raw.Mmio.write Nic.Regs.tdba t.g_tx_ring;
  t.raw.Mmio.write Nic.Regs.rdba t.g_rx_ring;
  t.raw.Mmio.write Nic.Regs.ie t.g_ie;
  Mmio.remove_interposer t.machine.Machine.mmio ~base:Machine.prod_nic_base;
  t.devirtualized <- true
