module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Signal = Bmcast_engine.Signal
module Fabric = Bmcast_net.Fabric
module Disk = Bmcast_storage.Disk
module Content = Bmcast_storage.Content
module Vblade = Bmcast_proto.Vblade
module Aoe_client = Bmcast_proto.Aoe_client
module Vmm = Bmcast_core.Vmm
module Bitmap = Bmcast_core.Bitmap
module Obs_trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics

type rig = {
  sim : Sim.t;
  fabric : Fabric.t;
  server : Vblade.t;
  server_disk : Disk.t;
}

type action =
  | Set_loss of Fabric.loss_model
  | Clear_loss
  | Server_crash
  | Server_restart
  | Server_link_down
  | Server_link_up
  | Server_nic_stall of Time.span
  | Link_down of int
  | Link_up of int
  | Nic_stall of int * Time.span
  | Disk_read_errors of { lba : int; count : int; times : int }
  | Disk_latency_spike of { extra : Time.span; duration : Time.span }

type event = { after : Time.span; action : action }
type plan = event list

let describe = function
  | Set_loss (Fabric.Uniform p) -> Printf.sprintf "loss: uniform p=%.3f" p
  | Set_loss (Fabric.Gilbert { p_enter_bad; p_exit_bad; loss_good; loss_bad })
    ->
    Printf.sprintf "loss: gilbert enter=%.3f exit=%.3f good=%.3f bad=%.3f"
      p_enter_bad p_exit_bad loss_good loss_bad
  | Clear_loss -> "loss: cleared"
  | Server_crash -> "server: crash"
  | Server_restart -> "server: restart"
  | Server_link_down -> "server link: down"
  | Server_link_up -> "server link: up"
  | Server_nic_stall d ->
    Printf.sprintf "server nic: stalled %s" (Time.to_string d)
  | Link_down p -> Printf.sprintf "port %d link: down" p
  | Link_up p -> Printf.sprintf "port %d link: up" p
  | Nic_stall (p, d) ->
    Printf.sprintf "port %d nic: stalled %s" p (Time.to_string d)
  | Disk_read_errors { lba; count; times } ->
    Printf.sprintf "server disk: %d transient read errors armed on [%d,%d)"
      times lba (lba + count)
  | Disk_latency_spike { extra; duration } ->
    Printf.sprintf "server disk: +%s latency for %s" (Time.to_string extra)
      (Time.to_string duration)

let apply rig = function
  | Set_loss m -> Fabric.set_loss_model rig.fabric m
  | Clear_loss -> Fabric.set_loss_model rig.fabric (Fabric.Uniform 0.0)
  | Server_crash -> Vblade.crash rig.server
  | Server_restart -> Vblade.restart rig.server
  | Server_link_down -> Fabric.set_link_up (Vblade.port rig.server) false
  | Server_link_up -> Fabric.set_link_up (Vblade.port rig.server) true
  | Server_nic_stall d -> Fabric.stall (Vblade.port rig.server) d
  | Link_down p -> Fabric.set_link_up (Fabric.port_of_id rig.fabric p) false
  | Link_up p -> Fabric.set_link_up (Fabric.port_of_id rig.fabric p) true
  | Nic_stall (p, d) -> Fabric.stall (Fabric.port_of_id rig.fabric p) d
  | Disk_read_errors { lba; count; times } ->
    Disk.inject_read_errors rig.server_disk ~lba ~count ~times
  | Disk_latency_spike { extra; duration } ->
    Disk.set_latency_spike rig.server_disk ~extra
      ~until:(Time.add (Sim.now rig.sim) duration)

type injector = {
  rig : rig;
  mutable trace_rev : (Time.t * string) list;
  finished : Signal.Latch.t;
}

(* Outages a health watchdog is expected to notice — the actions that
   take capacity away, as opposed to restoring it (restarts, link-up)
   or merely degrading it probabilistically (loss models, latency). *)
let is_outage = function
  | Server_crash | Server_link_down | Link_down _ -> true
  | Set_loss _ | Clear_loss | Server_restart | Server_link_up | Link_up _
  | Server_nic_stall _ | Nic_stall _ | Disk_read_errors _
  | Disk_latency_spike _ ->
    false

let inject ?watchdog rig (plan : plan) =
  let inj = { rig; trace_rev = []; finished = Signal.Latch.create () } in
  let events =
    List.stable_sort (fun a b -> compare a.after b.after) plan
  in
  let t0 = Sim.now rig.sim in
  let injected = Metrics.counter (Sim.metrics rig.sim) "faults.injected" in
  Sim.spawn_at rig.sim ~name:"fault-injector" t0 (fun () ->
      List.iter
        (fun ev ->
          Sim.wait_until (Time.add t0 ev.after);
          apply rig ev.action;
          Metrics.incr injected;
          (* Arm the detection-latency clock at the instant the outage
             lands: the next watchdog alert resolves it. *)
          (match watchdog with
          | Some w when is_outage ev.action ->
            Bmcast_obs.Watchdog.expect w ~label:(describe ev.action)
              ~now:(Sim.now rig.sim)
          | Some _ | None -> ());
          let tr = Sim.trace rig.sim in
          if Obs_trace.on tr ~cat:"faults" then
            Obs_trace.complete tr ~cat:"faults" (describe ev.action)
              ~ts:(Sim.now rig.sim);
          inj.trace_rev <- (Sim.now rig.sim, describe ev.action) :: inj.trace_rev)
        events;
      Signal.Latch.set inj.finished);
  inj

let trace inj = List.rev inj.trace_rev
let wait_done inj = Signal.Latch.wait inj.finished

let trace_to_string tr =
  String.concat "\n"
    (List.map (fun (at, what) -> Time.to_string at ^ " " ^ what) tr)

(* {2 Named scenarios} *)

(* Timings assume the default parameter set (VMM boot at 3.5 s, so
   deployment — and the background copy — runs from ~3.5 s onwards). *)
let scenario ~image_sectors name : plan option =
  let at s action = { after = Time.ms (int_of_float (s *. 1000.)); action } in
  match name with
  | "burst-loss" ->
    Some
      [ at 4.0
          (Set_loss
             (Fabric.Gilbert
                { p_enter_bad = 0.02;
                  p_exit_bad = 0.2;
                  loss_good = 0.001;
                  loss_bad = 0.7 }));
        at 7.0 Clear_loss ]
  | "server-crash-boot" ->
    (* Dies just as deployment starts: the guest's very first
       copy-on-read requests find no server. *)
    Some [ at 3.6 Server_crash; at 4.4 Server_restart ]
  | "crash-mid-copy" ->
    (* The acceptance scenario: crash at t=5 s in the middle of the
       background copy, restart at t=8 s. *)
    Some [ at 5.0 Server_crash; at 8.0 Server_restart ]
  | "disk-errors" ->
    (* Target the tail of the image: the retriever prefetches several
       chunks ahead of the writer, so early LBAs may already be read
       before the faults are armed. *)
    Some
      [ at 4.0
          (Disk_read_errors
             { lba = image_sectors * 4 / 5; count = 128; times = 3 });
        at 4.5
          (Disk_read_errors
             { lba = image_sectors * 9 / 10; count = 64; times = 2 })
      ]
  | "link-flap" ->
    Some
      [ at 4.5 Server_link_down;
        at 5.0 Server_link_up;
        at 5.5 Server_link_down;
        at 6.0 Server_link_up ]
  | "nic-stall" ->
    Some
      [ at 4.2 (Server_nic_stall (Time.ms 300));
        at 5.0 (Server_nic_stall (Time.ms 500)) ]
  | "latency-spike" ->
    Some
      [ at 4.0 (Disk_latency_spike { extra = Time.ms 40; duration = Time.s 2 })
      ]
  | _ -> None

let scenario_names =
  [ "burst-loss";
    "server-crash-boot";
    "crash-mid-copy";
    "disk-errors";
    "link-flap";
    "nic-stall";
    "latency-spike" ]

(* {2 Random plans}

   Every fault is recoverable and every recovery lands inside the
   [active] window, so a run that keeps going past [active] faces a
   fault-free system and must converge. *)
let random_plan ~seed ~active ~image_sectors : plan =
  let prng = Prng.create seed in
  let episodes = 2 + Prng.int prng 3 in
  let plan = ref [] in
  let push after action = plan := { after; action } :: !plan in
  for _ = 1 to episodes do
    (* Faults start in the first 3/4 of the window; each recovery fires
       within the window. *)
    let start = Prng.int prng (max 1 (active * 3 / 4)) in
    let dur = (active / 20) + Prng.int prng (max 1 (active / 4)) in
    let stop = min (start + dur) active in
    match Prng.int prng 7 with
    | 0 ->
      push start (Set_loss (Fabric.Uniform (0.05 +. Prng.float prng 0.3)));
      push stop Clear_loss
    | 1 ->
      push start
        (Set_loss
           (Fabric.Gilbert
              { p_enter_bad = 0.01 +. Prng.float prng 0.05;
                p_exit_bad = 0.1 +. Prng.float prng 0.3;
                loss_good = Prng.float prng 0.01;
                loss_bad = 0.4 +. Prng.float prng 0.5 }));
      push stop Clear_loss
    | 2 ->
      push start Server_crash;
      push stop Server_restart
    | 3 ->
      push start Server_link_down;
      push stop Server_link_up
    | 4 ->
      let lba = Prng.int prng (max 1 image_sectors) in
      let count = 1 + Prng.int prng 128 in
      let times = 1 + Prng.int prng 3 in
      push start (Disk_read_errors { lba; count; times })
    | 5 -> push start (Server_nic_stall (min dur (active / 4)))
    | _ ->
      push start
        (Disk_latency_spike
           { extra = Time.ms (5 + Prng.int prng 45);
             duration = min dur (active / 2) })
  done;
  List.rev !plan

(* {2 Invariants} *)

module Invariants = struct
  type check = { name : string; ok : bool; detail : string }

  let make name ok detail = { name; ok; detail }

  let disk_matches_image ?(overrides = []) ~image_sectors disk =
    let expected lba =
      match List.assoc_opt lba overrides with
      | Some c -> c
      | None -> Content.Image lba
    in
    let bad = ref 0 in
    let first_bad = ref (-1) in
    for lba = 0 to image_sectors - 1 do
      if not (Content.equal (Disk.sector disk lba) (expected lba)) then begin
        incr bad;
        if !first_bad < 0 then first_bad := lba
      end
    done;
    make "disk-matches-image" (!bad = 0)
      (if !bad = 0 then
         Printf.sprintf "all %d image sectors byte-identical" image_sectors
       else Printf.sprintf "%d sectors differ (first: lba %d)" !bad !first_bad)

  let copy_converged vmm =
    let bm = Vmm.bitmap vmm in
    make "background-copy-converged"
      (Bitmap.is_complete bm)
      (Printf.sprintf "%d/%d sectors filled" (Bitmap.filled_count bm)
         (Bitmap.sectors bm))

  let devirtualized_once vmm =
    let n =
      List.length
        (List.filter (fun (_, what) -> what = "de-virtualized") (Vmm.events vmm))
    in
    make "devirtualized-exactly-once"
      (n = 1 && Vmm.devirtualized_at vmm <> None)
      (Printf.sprintf "%d de-virtualization event(s)" n)

  let no_requests_outstanding vmm =
    let c = Vmm.aoe_client vmm in
    let pending = Aoe_client.pending_count c in
    let sent = Aoe_client.requests_sent c in
    let completed = Aoe_client.completions c in
    make "no-request-lost-or-double-completed"
      (pending = 0 && completed <= sent)
      (Printf.sprintf "%d pending, %d completed of %d sent" pending completed
         sent)

  let all ?overrides ~image_sectors ~disk vmm =
    [ disk_matches_image ?overrides ~image_sectors disk;
      copy_converged vmm;
      devirtualized_once vmm;
      no_requests_outstanding vmm ]

  let failures checks = List.filter (fun c -> not c.ok) checks

  let report checks =
    String.concat "\n"
      (List.map
         (fun c ->
           Printf.sprintf "[%s] %s: %s"
             (if c.ok then "ok" else "FAIL")
             c.name c.detail)
         checks)
end
