(** Deterministic fault injection for the copy-on-read pipeline.

    A {e fault plan} is a declarative list of timed events scheduled on
    the simulation clock by {!inject}. Because the DES is deterministic
    and every random choice (loss rolls, {!random_plan} generation)
    draws from a seeded PRNG, the same seed and plan always reproduce
    the same event trace — chaos runs are replayable bug reports.

    The hook points live in the subsystems themselves:
    {!Bmcast_net.Fabric} (loss models, link state, NIC stalls),
    {!Bmcast_proto.Vblade} (crash / restart with epoch-guarded
    responses), {!Bmcast_storage.Disk} (transient read errors, latency
    spikes), {!Bmcast_proto.Aoe_client} (retry escalation) and
    {!Bmcast_core.Background_copy} (fetch backoff, pause / resume).
    This module only sequences them and checks the end-to-end
    {!Invariants}. *)

(** The injectable surface of a deployment set-up. *)
type rig = {
  sim : Bmcast_engine.Sim.t;
  fabric : Bmcast_net.Fabric.t;
  server : Bmcast_proto.Vblade.t;
  server_disk : Bmcast_storage.Disk.t;
}

type action =
  | Set_loss of Bmcast_net.Fabric.loss_model
  | Clear_loss
  | Server_crash
  | Server_restart
  | Server_link_down
  | Server_link_up
  | Server_nic_stall of Bmcast_engine.Time.span
  | Link_down of int  (** by fabric port id *)
  | Link_up of int
  | Nic_stall of int * Bmcast_engine.Time.span
  | Disk_read_errors of { lba : int; count : int; times : int }
  | Disk_latency_spike of {
      extra : Bmcast_engine.Time.span;
      duration : Bmcast_engine.Time.span;
    }

type event = { after : Bmcast_engine.Time.span; action : action }
(** [after] is relative to the time {!inject} is called. *)

type plan = event list

val describe : action -> string

(** A running injector: applies a plan's events in time order and
    records what it did. *)
type injector

val inject : ?watchdog:Bmcast_obs.Watchdog.t -> rig -> plan -> injector
(** Spawn the injector process; events fire at [inject-time + after] in
    ascending order (stable for equal times). Callable from outside or
    inside process context. With [watchdog], every applied outage
    (crash, link down) arms a detection-latency expectation
    ({!Bmcast_obs.Watchdog.expect}) at its injection time, so "fault →
    alert" latency is measured automatically. *)

val is_outage : action -> bool
(** Actions that remove capacity (crash, link down) — the ones a health
    watchdog is expected to detect and {!inject} arms expectations
    for. *)

val trace : injector -> (Bmcast_engine.Time.t * string) list
(** Applied events, oldest first: the deterministic signature of a
    chaos run. *)

val wait_done : injector -> unit
(** Block until every event of the plan has been applied (process
    context). *)

val trace_to_string : (Bmcast_engine.Time.t * string) list -> string

(** {2 Named scenarios}

    Timings assume the default {!Bmcast_core.Params.t} (VMM boot takes
    3.5 s, so deployment traffic runs from ~3.5 s on). *)

val scenario : image_sectors:int -> string -> plan option
(** ["burst-loss"], ["server-crash-boot"], ["crash-mid-copy"] (the
    acceptance scenario: server dies at t=5 s during the background
    copy, returns at t=8 s), ["disk-errors"], ["link-flap"],
    ["nic-stall"], ["latency-spike"]. [None] for unknown names. *)

val scenario_names : string list

val random_plan :
  seed:int -> active:Bmcast_engine.Time.span -> image_sectors:int -> plan
(** Seeded random plan of 2–4 fault episodes. Every fault is
    recoverable and every recovery (restart, link-up, loss cleared)
    fires within [active], so any run continuing past [active] faces a
    fault-free system and must converge. Same seed, same plan. *)

(** {2 End-to-end invariants}

    The properties BMcast's correctness story rests on (§3.1/§3.3),
    checked after a deployment ran to de-virtualization under faults. *)

module Invariants : sig
  type check = { name : string; ok : bool; detail : string }

  val disk_matches_image :
    ?overrides:(int * Bmcast_storage.Content.t) list ->
    image_sectors:int ->
    Bmcast_storage.Disk.t ->
    check
  (** Every image sector of the local disk equals the golden image —
      except [overrides], the sectors the guest wrote (which must hold
      exactly the guest's data, never a late background-copy fill). *)

  val copy_converged : Bmcast_core.Vmm.t -> check
  (** The fill bitmap is complete: the background copy converged once
      faults cleared. *)

  val devirtualized_once : Bmcast_core.Vmm.t -> check
  (** Exactly one "de-virtualized" lifecycle event was logged. *)

  val no_requests_outstanding : Bmcast_core.Vmm.t -> check
  (** The AoE client's pending table is empty (no request lost) and
      completions never exceed sends (no request double-completed). *)

  val all :
    ?overrides:(int * Bmcast_storage.Content.t) list ->
    image_sectors:int ->
    disk:Bmcast_storage.Disk.t ->
    Bmcast_core.Vmm.t ->
    check list

  val failures : check list -> check list
  val report : check list -> string
end
