module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Fio = Bmcast_guest.Fio
module Params = Bmcast_core.Params
module Vmm = Bmcast_core.Vmm

type point = { interval_label : string; guest_mb_s : float; vmm_mb_s : float }

let default_intervals =
  [ ("1s", Time.s 1);
    ("100ms", Time.ms 100);
    ("10ms", Time.ms 10);
    ("1ms", Time.ms 1);
    ("100us", Time.us 100);
    ("10us", Time.us 10);
    ("1us", Time.us 1);
    ("full-speed", 0) ]

let mb = 2048

let one ~guest_op (interval_label, interval) =
  let env = Stacks.make_env ~image_gb:8 () in
  let m = Stacks.machine env ~name:"node" () in
  let params =
    { (Stacks.bmcast_params env) with
      Params.write_interval = interval;
      (* isolate the interval knob: never suspend on guest activity *)
      guest_io_threshold = infinity }
  in
  let out = ref (0.0, 0.0) in
  Stacks.run env (fun () ->
      let rt, vmm = Stacks.bmcast env m ~params () in
      (* Warm the guest's measurement region through copy-on-read so
         guest reads hit the local disk. *)
      (match guest_op with
      | `Read ->
        let rec warm lba =
          if lba < 320 * mb then begin
            ignore (rt.Bmcast_platform.Runtime.block_read ~lba ~count:2048
                    : Bmcast_storage.Content.t array);
            warm (lba + 2048)
          end
        in
        warm 0
      | `Write ->
        ignore (rt.Bmcast_platform.Runtime.block_read ~lba:0 ~count:8
                : Bmcast_storage.Content.t array));
      (* Give the redirect write-backs a moment to drain. *)
      Sim.sleep (Time.s 2);
      let bg0 = (Vmm.totals vmm).Vmm.background_bytes in
      let t0 = Sim.clock () in
      let r =
        match guest_op with
        | `Read -> Fio.seq_read rt ~total_bytes:(300 * 1024 * 1024) ()
        | `Write ->
          Fio.seq_write rt ~total_bytes:(300 * 1024 * 1024)
            ~start_lba:(5120 * mb) ()
      in
      let elapsed = Time.to_float_s (Time.diff (Sim.clock ()) t0) in
      let bg1 = (Vmm.totals vmm).Vmm.background_bytes in
      out :=
        ( r.Fio.throughput_mb_s,
          float_of_int (bg1 - bg0) /. elapsed /. 1e6 ));
  let guest_mb_s, vmm_mb_s = !out in
  { interval_label; guest_mb_s; vmm_mb_s }

let measure ?(intervals = default_intervals) ~guest_op () =
  List.map (one ~guest_op) intervals

let run () =
  Report.section "Figure 14: background-copy moderation (VMM write interval)";
  Report.note "(a) guest sequential READ vs VMM writes";
  Report.series_header [ "guest MB/s"; "VMM MB/s"; "sum" ];
  let reads = measure ~guest_op:`Read () in
  List.iter
    (fun p ->
      Report.series_row p.interval_label
        [ p.guest_mb_s; p.vmm_mb_s; p.guest_mb_s +. p.vmm_mb_s ])
    reads;
  Report.note "(b) guest sequential WRITE vs VMM writes";
  Report.series_header [ "guest MB/s"; "VMM MB/s"; "sum" ];
  let writes = measure ~guest_op:`Write () in
  List.iter
    (fun p ->
      Report.series_row p.interval_label
        [ p.guest_mb_s; p.vmm_mb_s; p.guest_mb_s +. p.vmm_mb_s ])
    writes;
  (* Shape assertions the paper makes in prose. *)
  let first = List.hd reads and last = List.nth reads (List.length reads - 1) in
  Report.row ~label:"guest read loss 1s -> full-speed" ~units:"MB/s"
    (first.guest_mb_s -. last.guest_mb_s);
  Report.row ~label:"VMM gain 1s -> full-speed" ~units:"MB/s"
    (last.vmm_mb_s -. first.vmm_mb_s)
