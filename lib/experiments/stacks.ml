module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Ib = Bmcast_net.Ib
module Vblade = Bmcast_proto.Vblade
module Remote_block = Bmcast_proto.Remote_block
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Cpu_model = Bmcast_platform.Cpu_model
module Block_io = Bmcast_guest.Block_io
module Params = Bmcast_core.Params
module Vmm = Bmcast_core.Vmm
module Kvm = Bmcast_baselines.Kvm
module Net_boot = Bmcast_baselines.Net_boot

type env = {
  sim : Sim.t;
  fabric : Fabric.t;
  ib : Ib.t;
  vblade : Vblade.t;
  iscsi : Remote_block.server;
  nfs : Remote_block.server;
  image_sectors : int;
  disk_profile : Disk.profile;
}

let make_env ?(seed = 42) ?(image_gb = 32)
    ?(disk_profile = Disk.hdd_constellation2) ?(vblade_ram_cache = false)
    ?trace ?metrics () =
  let sim = Sim.create ~seed ?trace ?metrics () in
  let fabric = Fabric.create sim () in
  let ib = Ib.create sim () in
  let image_sectors = image_gb * 1024 * 1024 * 2 in
  let server_disk name =
    let d = Disk.create sim disk_profile in
    Disk.fill_with_image d;
    ignore name;
    d
  in
  let vblade =
    Vblade.create sim ~fabric ~name:"vblade" ~disk:(server_disk "vblade")
      ~ram_cache:vblade_ram_cache ()
  in
  let iscsi =
    Remote_block.create_server sim ~fabric ~name:"iscsi-server"
      ~disk:(server_disk "iscsi") Remote_block.Iscsi
  in
  let nfs =
    Remote_block.create_server sim ~fabric ~name:"nfs-server"
      ~disk:(server_disk "nfs") Remote_block.Nfs
  in
  { sim; fabric; ib; vblade; iscsi; nfs; image_sectors; disk_profile }

let machine env ~name ?(disk_kind = Machine.Ahci_disk) ?(with_ib = true) () =
  Machine.create env.sim ~name ~disk_profile:env.disk_profile ~disk_kind
    ~fabric:env.fabric
    ?ib:(if with_ib then Some env.ib else None)
    ()

let bare env m =
  Disk.fill_with_image m.Machine.disk;
  ignore env;
  let blk = Block_io.attach m in
  { Runtime.label = "bare-metal";
    machine = m;
    block_read = (fun ~lba ~count -> Block_io.read blk ~lba ~count);
    block_write = (fun ~lba ~count data -> Block_io.write blk ~lba ~count data);
    cpu = Cpu_model.bare ();
    phase = (fun () -> Runtime.Bare) }

let bmcast_params env = Params.default ~image_sectors:env.image_sectors

let bmcast env m ?params ?(release_memory = false) () =
  let params = Option.value params ~default:(bmcast_params env) in
  let vmm =
    Vmm.boot m ~params ~server_port:(Vblade.port_id env.vblade)
      ~release_memory ()
  in
  let blk = Block_io.attach m in
  let runtime =
    { Runtime.label = "bmcast";
      machine = m;
      block_read = (fun ~lba ~count -> Block_io.read blk ~lba ~count);
      block_write = (fun ~lba ~count data -> Block_io.write blk ~lba ~count data);
      cpu = Vmm.cpu_model vmm;
      phase = (fun () -> Vmm.phase vmm) }
  in
  (runtime, vmm)

let iscsi_client env ~name = Remote_block.connect env.sim ~fabric:env.fabric ~name env.iscsi
let nfs_client env ~name = Remote_block.connect env.sim ~fabric:env.fabric ~name env.nfs

let kvm_local env m =
  Disk.fill_with_image m.Machine.disk;
  ignore env;
  let kvm = Kvm.create m ~backend:Kvm.Local in
  (Kvm.runtime kvm, kvm)

let kvm_remote env m which =
  let client =
    match which with
    | `Nfs -> nfs_client env ~name:(m.Machine.name ^ "-nfsc")
    | `Iscsi -> iscsi_client env ~name:(m.Machine.name ^ "-iscsic")
  in
  let kvm = Kvm.create m ~backend:(Kvm.Remote client) in
  (Kvm.runtime kvm, kvm)

let netboot env m =
  let client = nfs_client env ~name:(m.Machine.name ^ "-nfsroot") in
  let nb = Net_boot.create m ~server:client in
  (Net_boot.runtime nb, nb)

let run env ?until scenario =
  Sim.spawn_at env.sim ~name:"experiment" (Sim.now env.sim) (fun () ->
      scenario ();
      (* Background machinery (deployment threads, servers) would keep
         the event queue alive forever; the scenario's return defines
         the end of the experiment. *)
      Sim.request_stop env.sim);
  Sim.run ?until env.sim
