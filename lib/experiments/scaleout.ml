module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Vblade = Bmcast_proto.Vblade
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Block_io = Bmcast_guest.Block_io
module Os = Bmcast_guest.Os
module Params = Bmcast_core.Params
module Vmm = Bmcast_core.Vmm
module Metrics = Bmcast_obs.Metrics
module Stats = Bmcast_obs.Stats
module Replica_set = Bmcast_fleet.Replica_set
module Scheduler = Bmcast_fleet.Scheduler
module Trace = Bmcast_obs.Trace
module Analytics = Bmcast_obs.Analytics

type summary = {
  p50 : float;
  p90 : float;
  p99 : float;
  mean : float;
  max : float;
}

type result = {
  machines : int;
  replicas : int;
  image_mb : int;
  policy : string;
  sched : string;
  ttfb : summary;
  ttdv : summary;
  failovers : int;
  peak_queue : int;
  peak_in_service : int;
  admitted_per_server : int array;
  server_bytes : int;
  sim_events : int;
  analytics : Analytics.t;
  alert_count : int;
  timeline : string;
  watch : string;
}

(* Per-machine series ([|m=...] labels) grow with fleet size; the
   bench-embedded timeline keeps fleet-level keys plus the small
   per-replica health series so its size is bounded by the replica
   count, not the client count. *)
let bench_ts_filter k =
  match String.index_opt k '|' with
  | None -> true
  | Some i ->
    let p = String.sub k 0 i in
    p = "vblade.up" || p = "replica.up" || p = "fleet.stage"

let default_rules =
  [ Bmcast_obs.Watchdog.threshold ~name:"server-down" ~key:"vblade.up"
      Bmcast_obs.Watchdog.Below 0.5 ]

let summarize h =
  { p50 = Stats.Histogram.percentile h 50.0;
    p90 = Stats.Histogram.percentile h 90.0;
    p99 = Stats.Histogram.percentile h 99.0;
    mean = Stats.Histogram.mean h;
    max = Stats.Histogram.max h }

let deploy_fleet ?(seed = 42) ?(image_mb = 256)
    ?(policy = Replica_set.Least_outstanding)
    ?(sched = Scheduler.All_at_once) ?(limit_per_server = 4)
    ?(ram_cache = true) ?(crashes = []) ?(restarts = []) ?tweak ?trace
    ?metrics ?timeseries ?watchdog ?profile ?boot_profile ?(slo_s = 120.0)
    ~machines ~replicas () =
  if machines <= 0 then invalid_arg "Scaleout.deploy_fleet: machines";
  if replicas <= 0 then invalid_arg "Scaleout.deploy_fleet: replicas";
  (* The stage analytics need the boot-pipeline spans. With a
     caller-supplied tracer they ride along in it; otherwise attach a
     small boot-category-only ring (~5 spans per machine, and tracing
     is inert by contract, so attaching it changes nothing else). *)
  let trace =
    match trace with
    | Some tr -> tr
    | None ->
      Trace.create ~capacity:((machines * 6) + 64) ~categories:[ "boot" ] ()
  in
  (* Fleet runs always carry telemetry: a live registry, a sampler over
     it (bench-filtered unless the caller brings one) and a watchdog, so
     every deployment's timeline and alert record lands in [result]. *)
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  (* When the caller supplies BOTH the sampler and the watchdog they own
     the wiring (subscriber order matters for dashboards); otherwise we
     attach here. *)
  let caller_wired = timeseries <> None && watchdog <> None in
  let timeseries =
    match timeseries with
    | Some ts -> ts
    | None -> Bmcast_obs.Timeseries.create ~filter:bench_ts_filter metrics
  in
  let watchdog =
    match watchdog with
    | Some w -> w
    | None -> Bmcast_obs.Watchdog.create default_rules
  in
  if not caller_wired then Bmcast_obs.Watchdog.attach watchdog timeseries;
  Bmcast_obs.Watchdog.set_trace watchdog trace;
  let sim = Sim.create ~seed ~trace ~metrics ~timeseries ?profile () in
  let fabric = Fabric.create sim () in
  let image_sectors = image_mb * 2048 in
  let disk_profile = Disk.hdd_constellation2 in
  let vblades =
    List.init replicas (fun i ->
        let disk = Disk.create sim disk_profile in
        Disk.fill_with_image disk;
        Vblade.create sim ~fabric
          ~name:(Printf.sprintf "vblade%d" i)
          ~disk ~ram_cache ())
  in
  let params =
    let p = Params.default ~image_sectors in
    match tweak with None -> p | Some f -> f p
  in
  let h_ttfb = Metrics.histogram (Sim.metrics sim) "fleet_time_to_first_boot_s" in
  let h_ttdv = Metrics.histogram (Sim.metrics sim) "fleet_time_to_devirt_s" in
  let scheduler =
    Scheduler.create sim ~servers:replicas ~limit_per_server ~policy:sched ()
  in
  let rsets = ref [] in
  (* Crashes/restarts are relative to fleet start (t=0 of the fresh
     simulation). *)
  let at span f =
    Sim.schedule sim (Time.add (Sim.now sim) span) f
  in
  List.iter
    (fun (span, i) ->
      at span (fun () ->
          Vblade.crash (List.nth vblades i);
          (* Ground truth for detection latency: the watchdog's next
             alert resolves this into a measured fault→alert span. *)
          Bmcast_obs.Watchdog.expect watchdog
            ~label:(Printf.sprintf "crash vblade%d" i)
            ~now:(Sim.now sim)))
    crashes;
  List.iter
    (fun (span, i) -> at span (fun () -> Vblade.restart (List.nth vblades i)))
    restarts;
  Sim.spawn_at sim ~name:"fleet" (Sim.now sim) (fun () ->
      let start = Sim.clock () in
      let nodes =
        List.init machines (fun i ->
            Machine.create sim
              ~name:(Printf.sprintf "node%d" i)
              ~disk_profile ~disk_kind:Machine.Ahci_disk ~fabric ())
      in
      let jobs =
        List.map
          (fun m ->
            ( m.Machine.name,
              fun (_server : int) ->
                let rset = Replica_set.create sim ~policy vblades in
                rsets := rset :: !rsets;
                let vmm =
                  Vmm.boot m ~params
                    ~server_port:(Replica_set.port_of rset 0)
                    ~route:(Replica_set.route rset)
                    ~on_aoe_response:(Replica_set.observe rset)
                    ()
                in
                let blk = Block_io.attach m in
                let rt =
                  { Runtime.label = "bmcast";
                    machine = m;
                    block_read =
                      (fun ~lba ~count -> Block_io.read blk ~lba ~count);
                    block_write =
                      (fun ~lba ~count data ->
                        Block_io.write blk ~lba ~count data);
                    cpu = Vmm.cpu_model vmm;
                    phase = (fun () -> Vmm.phase vmm) }
                in
                Os.boot rt ?profile:boot_profile ();
                Stats.Histogram.add h_ttfb
                  (Time.to_float_s (Time.diff (Sim.clock ()) start));
                Vmm.wait_devirtualized vmm;
                Stats.Histogram.add h_ttdv
                  (Time.to_float_s (Time.diff (Sim.clock ()) start)) ))
          nodes
      in
      ignore (Scheduler.run scheduler jobs : Scheduler.job_stat list);
      Sim.request_stop sim);
  Sim.run sim;
  (* Every machine must have reached de-virtualization; a deployment
     stuck behind a dead replica would leave its sample missing (and the
     scheduler's latch unset, ending the run early). *)
  if Stats.Histogram.count h_ttdv <> machines then
    failwith
      (Printf.sprintf
         "Scaleout.deploy_fleet: %d of %d machines de-virtualized"
         (Stats.Histogram.count h_ttdv) machines);
  { machines;
    replicas;
    image_mb;
    policy = Replica_set.policy_to_string policy;
    sched = Scheduler.wave_policy_to_string sched;
    ttfb = summarize h_ttfb;
    ttdv = summarize h_ttdv;
    failovers = List.fold_left (fun a r -> a + Replica_set.failovers r) 0 !rsets;
    peak_queue = Scheduler.peak_queue scheduler;
    peak_in_service = Scheduler.peak_in_service scheduler;
    admitted_per_server = Scheduler.admitted_per_server scheduler;
    server_bytes =
      List.fold_left (fun a v -> a + Vblade.bytes_served v) 0 vblades;
    sim_events = Sim.events_executed sim;
    analytics = Analytics.of_trace ~slo_s trace;
    alert_count = Bmcast_obs.Watchdog.alert_count watchdog;
    timeline = Bmcast_obs.Timeseries.timeline_json ~max_points:60 timeseries;
    watch = Bmcast_obs.Watchdog.alerts_json watchdog }

let summary_json s =
  Printf.sprintf
    {|{"p50":%.6f,"p90":%.6f,"p99":%.6f,"mean":%.6f,"max":%.6f}|} s.p50 s.p90
    s.p99 s.mean s.max

let result_json r =
  Printf.sprintf
    {|    {"machines":%d,"replicas":%d,"image_mb":%d,"policy":%S,"sched":%S,
     "time_to_first_boot_s":%s,
     "time_to_devirt_s":%s,
     "failovers":%d,"peak_queue":%d,"peak_in_service":%d,
     "admitted_per_server":[%s],"server_bytes":%d,"sim_events":%d,
     "boot":%s,
     "timeline":%s,
     "watch":%s}|}
    r.machines r.replicas r.image_mb r.policy r.sched (summary_json r.ttfb)
    (summary_json r.ttdv) r.failovers r.peak_queue r.peak_in_service
    (Array.to_list r.admitted_per_server
    |> List.map string_of_int
    |> String.concat ",")
    r.server_bytes r.sim_events
    (Analytics.to_json r.analytics)
    r.timeline r.watch

let write_metrics path results =
  let oc = open_out path in
  Printf.fprintf oc
    {|{"experiment":"fleet-scaleout",
  "configs":[
%s
  ]}
|}
    (String.concat ",\n" (List.map result_json results));
  close_out oc

let run ?(machine_counts = [ 1; 4; 16 ]) ?(replica_counts = [ 1; 2; 4 ])
    ?(image_mb = 256) ?policy ?sched ?metrics_out () =
  Report.section
    (Printf.sprintf
       "Fleet scale-out: machines x storage replicas (%d MB images)" image_mb);
  let results =
    List.concat_map
      (fun machines ->
        List.map
          (fun replicas ->
            deploy_fleet ?policy ?sched ~image_mb ~machines ~replicas ())
          replica_counts)
      machine_counts
  in
  Report.series_header
    [ "ttfb p50(s)"; "ttfb max(s)"; "ttdv p50(s)"; "ttdv max(s)" ];
  List.iter
    (fun r ->
      Report.series_row
        (Printf.sprintf "%dx%d (%d srv, q<=%d)" r.machines r.replicas
           r.replicas r.peak_queue)
        [ r.ttfb.p50; r.ttfb.max; r.ttdv.p50; r.ttdv.max ])
    results;
  (* The claim: adding storage replicas restores per-machine deployment
     speed at fleet scale — the replicated tier removes the single-uplink
     bottleneck exactly as adding vblade workers removed the CPU one. *)
  let find m r =
    List.find_opt (fun x -> x.machines = m && x.replicas = r) results
  in
  (match (find 16 1, find 16 4) with
  | Some one, Some four ->
    Report.row ~label:"16-machine ttdv p50, 1 -> 4 replicas" ~units:"x speedup"
      (one.ttdv.p50 /. four.ttdv.p50)
  | _ -> ());
  (match metrics_out with
  | Some path ->
    write_metrics path results;
    Report.note "wrote %s" path
  | None -> ());
  results

(* The elasticity regime the paper argues for (and López García et al.
   evaluate at hundreds of clients): ~1,000 concurrent provisioning
   requests against a modest replicated tier. Uses a small image and the
   [Os.cloud_minimal] guest so the run measures deployment physics, and
   relies on the engine's lazy idle guests — each machine stops costing
   scheduler events the moment it de-virtualizes. *)
let run_scale ?(client_counts = [ 250; 1000 ]) ?(replicas = 16)
    ?(image_mb = 8) ?metrics_out () =
  Report.section
    (Printf.sprintf
       "Fleet scale-out, cloud-burst regime: clients x %d replicas (%d MB \
        images, minimal guests)"
       replicas image_mb);
  let results =
    List.map
      (fun machines ->
        deploy_fleet ~image_mb ~boot_profile:Os.cloud_minimal ~machines
          ~replicas ())
      client_counts
  in
  Report.series_header
    [ "ttfb p50(s)"; "ttdv p50(s)"; "ttdv max(s)"; "sim Mevents" ];
  List.iter
    (fun r ->
      Report.series_row
        (Printf.sprintf "%dx%d (q<=%d)" r.machines r.replicas r.peak_queue)
        [ r.ttfb.p50;
          r.ttdv.p50;
          r.ttdv.max;
          float_of_int r.sim_events /. 1e6 ])
    results;
  (match metrics_out with
  | Some path ->
    write_metrics path results;
    Report.note "wrote %s" path
  | None -> ());
  results
