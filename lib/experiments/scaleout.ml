module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Vblade = Bmcast_proto.Vblade
module Machine = Bmcast_platform.Machine
module Runtime = Bmcast_platform.Runtime
module Block_io = Bmcast_guest.Block_io
module Os = Bmcast_guest.Os
module Bitmap = Bmcast_core.Bitmap
module Params = Bmcast_core.Params
module Vmm = Bmcast_core.Vmm
module Metrics = Bmcast_obs.Metrics
module Stats = Bmcast_obs.Stats
module Peer = Bmcast_fleet.Peer
module Replica_set = Bmcast_fleet.Replica_set
module Scheduler = Bmcast_fleet.Scheduler
module Trace = Bmcast_obs.Trace
module Analytics = Bmcast_obs.Analytics

type distribution = [ `Unicast | `P2p | `Mcast ]

let distribution_to_string = function
  | `Unicast -> "unicast"
  | `P2p -> "p2p"
  | `Mcast -> "mcast"

let distribution_of_string = function
  | "unicast" -> Some `Unicast
  | "p2p" -> Some `P2p
  | "mcast" -> Some `Mcast
  | _ -> None

type summary = {
  p50 : float;
  p90 : float;
  p99 : float;
  mean : float;
  max : float;
}

type result = {
  machines : int;
  replicas : int;
  image_mb : int;
  policy : string;
  sched : string;
  distribution : string;
  ttfb : summary;
  ttdv : summary;
  failovers : int;
  peak_queue : int;
  peak_in_service : int;
  admitted_per_server : int array;
  server_bytes : int;
  p2p_routed : int;
  p2p_failovers : int;
  p2p_served_bytes : int;
  gossip_announces : int;
  mcast_tx_bytes : int;
  mcast_fill_bytes : int;
  mcast_dups : int;
  sim_events : int;
  analytics : Analytics.t;
  alert_count : int;
  timeline : string;
  watch : string;
  images_ok : bool option;
  image_digest : string option;
}

(* Per-machine series ([|m=...] labels) grow with fleet size; the
   bench-embedded timeline keeps fleet-level keys plus the small
   per-replica health series so its size is bounded by the replica
   count, not the client count. *)
let bench_ts_filter k =
  match String.index_opt k '|' with
  | None -> true
  | Some i ->
    let p = String.sub k 0 i in
    p = "vblade.up" || p = "replica.up" || p = "fleet.stage"

let default_rules =
  [ Bmcast_obs.Watchdog.threshold ~name:"server-down" ~key:"vblade.up"
      Bmcast_obs.Watchdog.Below 0.5 ]

let summarize h =
  { p50 = Stats.Histogram.percentile h 50.0;
    p90 = Stats.Histogram.percentile h 90.0;
    p99 = Stats.Histogram.percentile h 99.0;
    mean = Stats.Histogram.mean h;
    max = Stats.Histogram.max h }

let deploy_fleet ?(seed = 42) ?(image_mb = 256)
    ?(policy = Replica_set.Least_outstanding)
    ?(sched = Scheduler.All_at_once) ?(limit_per_server = 4)
    ?(ram_cache = true) ?(crashes = []) ?(restarts = [])
    ?(distribution = `Unicast) ?uplink_mbps ?(mcast_passes = 16)
    ?(mcast_gap = Time.ms 200) ?(peer_crashes = []) ?chaos
    ?(digest_images = false) ?tweak ?trace ?metrics ?timeseries ?watchdog
    ?profile ?boot_profile ?(slo_s = 120.0) ~machines ~replicas () =
  if machines <= 0 then invalid_arg "Scaleout.deploy_fleet: machines";
  if replicas <= 0 then invalid_arg "Scaleout.deploy_fleet: replicas";
  (* The stage analytics need the boot-pipeline spans. With a
     caller-supplied tracer they ride along in it; otherwise attach a
     small boot-category-only ring (~5 spans per machine, and tracing
     is inert by contract, so attaching it changes nothing else). *)
  let trace =
    match trace with
    | Some tr -> tr
    | None ->
      Trace.create ~capacity:((machines * 6) + 64) ~categories:[ "boot" ] ()
  in
  (* Fleet runs always carry telemetry: a live registry, a sampler over
     it (bench-filtered unless the caller brings one) and a watchdog, so
     every deployment's timeline and alert record lands in [result]. *)
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  (* When the caller supplies BOTH the sampler and the watchdog they own
     the wiring (subscriber order matters for dashboards); otherwise we
     attach here. *)
  let caller_wired = timeseries <> None && watchdog <> None in
  let timeseries =
    match timeseries with
    | Some ts -> ts
    | None -> Bmcast_obs.Timeseries.create ~filter:bench_ts_filter metrics
  in
  let watchdog =
    match watchdog with
    | Some w -> w
    | None -> Bmcast_obs.Watchdog.create default_rules
  in
  if not caller_wired then Bmcast_obs.Watchdog.attach watchdog timeseries;
  Bmcast_obs.Watchdog.set_trace watchdog trace;
  let sim = Sim.create ~seed ~trace ~metrics ~timeseries ?profile () in
  let fabric =
    match uplink_mbps with
    | None -> Fabric.create sim ()
    | Some mb -> Fabric.create sim ~port_rate_bytes_per_s:(mb *. 1e6 /. 8.) ()
  in
  let image_sectors = image_mb * 2048 in
  let disk_profile = Disk.hdd_constellation2 in
  let server_disks =
    List.init replicas (fun _ ->
        let disk = Disk.create sim disk_profile in
        Disk.fill_with_image disk;
        disk)
  in
  let vblades =
    List.mapi
      (fun i disk ->
        Vblade.create sim ~fabric
          ~name:(Printf.sprintf "vblade%d" i)
          ~disk ~ram_cache ())
      server_disks
  in
  let params =
    let p = Params.default ~image_sectors in
    match tweak with None -> p | Some f -> f p
  in
  let h_ttfb = Metrics.histogram (Sim.metrics sim) "fleet_time_to_first_boot_s" in
  let h_ttdv = Metrics.histogram (Sim.metrics sim) "fleet_time_to_devirt_s" in
  let scheduler =
    Scheduler.create sim ~servers:replicas ~limit_per_server ~policy:sched ()
  in
  let rsets = ref [] in
  (* Crashes/restarts are relative to fleet start (t=0 of the fresh
     simulation). *)
  let at span f =
    Sim.schedule sim (Time.add (Sim.now sim) span) f
  in
  List.iter
    (fun (span, i) ->
      at span (fun () ->
          Vblade.crash (List.nth vblades i);
          (* Ground truth for detection latency: the watchdog's next
             alert resolves this into a measured fault→alert span. *)
          Bmcast_obs.Watchdog.expect watchdog
            ~label:(Printf.sprintf "crash vblade%d" i)
            ~now:(Sim.now sim)))
    crashes;
  List.iter
    (fun (span, i) -> at span (fun () -> Vblade.restart (List.nth vblades i)))
    restarts;
  (* Distribution mode: a P2P swarm (gossip-fed peer serving, routed in
     front of the replica set) or a multicast carousel on the first
     replica, started once the first wave of VMMs has booted far enough
     to be subscribed. [`Unicast] is the PR-8 baseline, untouched. *)
  let swarm =
    match distribution with
    | `P2p ->
      Some
        (Peer.create sim ~fabric ~image_sectors
           ~chunk_sectors:params.Params.chunk_sectors ())
    | `Unicast | `Mcast -> None
  in
  let mcast_group =
    match distribution with
    | `Mcast -> Some (Fabric.mcast_group fabric)
    | `Unicast | `P2p -> None
  in
  (match mcast_group with
  | Some group ->
    at
      (Time.add params.Params.vmm_boot_time (Time.ms 500))
      (fun () ->
        Vblade.multicast (List.hd vblades) ~group ~lba:0 ~count:image_sectors
          ~passes:mcast_passes ~gap:mcast_gap ())
  | None -> ());
  let agents : (int, Peer.agent) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (span, i) ->
      at span (fun () ->
          match Hashtbl.find_opt agents i with
          | Some a -> Peer.crash a
          | None -> ()))
    peer_crashes;
  (match chaos with Some f -> f sim fabric vblades | None -> ());
  let routers = ref [] in
  let nodes_ref = ref [] in
  let mcast_fill_bytes = ref 0 in
  let mcast_dups = ref 0 in
  Sim.spawn_at sim ~name:"fleet" (Sim.now sim) (fun () ->
      let start = Sim.clock () in
      let nodes =
        List.init machines (fun i ->
            Machine.create sim
              ~name:(Printf.sprintf "node%d" i)
              ~disk_profile ~disk_kind:Machine.Ahci_disk ~fabric ())
      in
      nodes_ref := nodes;
      let jobs =
        List.mapi
          (fun idx m ->
            ( m.Machine.name,
              fun (_server : int) ->
                let rset = Replica_set.create sim ~policy vblades in
                rsets := rset :: !rsets;
                (* In P2P mode the machine is both a peer (serving chunks
                   its disk fully holds — the guard closes over the fill
                   bitmap, late-bound after boot, and the disk's extent
                   accounting) and a router client preferring advertised
                   peers over replicas. *)
                let bm = ref None in
                let route, observe =
                  match swarm with
                  | None ->
                    (Replica_set.route rset, Replica_set.observe rset)
                  | Some sw ->
                    let disk = m.Machine.disk in
                    let cs = params.Params.chunk_sectors in
                    let has_chunk c =
                      match !bm with
                      | None -> false
                      | Some b ->
                        let lba = c * cs in
                        let count = min cs (image_sectors - lba) in
                        count > 0
                        && Bitmap.empty_subranges b ~lba ~count = []
                        && Disk.mapped_sectors_in disk ~lba ~count = count
                    in
                    let agent =
                      Peer.join sw ~name:m.Machine.name ~has_chunk
                        ~peek:(fun ~lba ~count buf ->
                          Disk.peek_into disk ~lba ~count buf)
                        ()
                    in
                    Hashtbl.replace agents idx agent;
                    let router = Peer.router sw ~self:agent rset in
                    routers := router :: !routers;
                    (Peer.route router, Peer.observe router)
                in
                let vmm =
                  Vmm.boot m ~params
                    ~server_port:(Replica_set.port_of rset 0)
                    ~route ~on_aoe_response:observe ?mcast_group ()
                in
                bm := Some (Vmm.bitmap vmm);
                let blk = Block_io.attach m in
                let rt =
                  { Runtime.label = "bmcast";
                    machine = m;
                    block_read =
                      (fun ~lba ~count -> Block_io.read blk ~lba ~count);
                    block_write =
                      (fun ~lba ~count data ->
                        Block_io.write blk ~lba ~count data);
                    cpu = Vmm.cpu_model vmm;
                    phase = (fun () -> Vmm.phase vmm) }
                in
                Os.boot rt ?profile:boot_profile ();
                Stats.Histogram.add h_ttfb
                  (Time.to_float_s (Time.diff (Sim.clock ()) start));
                Vmm.wait_devirtualized vmm;
                (let tot = Vmm.totals vmm in
                 mcast_fill_bytes := !mcast_fill_bytes + tot.Vmm.mcast_bytes;
                 mcast_dups := !mcast_dups + tot.Vmm.mcast_dups);
                Stats.Histogram.add h_ttdv
                  (Time.to_float_s (Time.diff (Sim.clock ()) start)) ))
          nodes
      in
      ignore (Scheduler.run scheduler jobs : Scheduler.job_stat list);
      Sim.request_stop sim);
  Sim.run sim;
  (* Every machine must have reached de-virtualization; a deployment
     stuck behind a dead replica would leave its sample missing (and the
     scheduler's latch unset, ending the run early). *)
  if Stats.Histogram.count h_ttdv <> machines then
    failwith
      (Printf.sprintf
         "Scaleout.deploy_fleet: %d of %d machines de-virtualized"
         (Stats.Histogram.count h_ttdv) machines);
  (* Cross-mode equivalence evidence: after full deployment every client
     disk must hold the golden image byte-for-byte regardless of which
     path (replica unicast, peer serve, multicast carousel) delivered
     each sector. The digest is over the canonical per-sector content of
     every client disk in fleet order, so two runs — or two distribution
     modes — produce equal hex strings iff their images are identical. *)
  let images_ok, image_digest =
    if not digest_images then (None, None)
    else begin
      let golden = List.hd server_disks in
      let buf = Buffer.create (image_sectors * 2) in
      let ok = ref true in
      List.iter
        (fun m ->
          let disk = m.Machine.disk in
          for lba = 0 to image_sectors - 1 do
            let c = Disk.sector disk lba in
            if not (Content.equal c (Disk.sector golden lba)) then ok := false;
            (match c with
            | Content.Zero -> Buffer.add_char buf 'Z'
            | Content.Image i -> Buffer.add_string buf (Printf.sprintf "I%d;" i)
            | Content.Data d -> Buffer.add_string buf (Printf.sprintf "D%d;" d)
            | Content.Blob s -> Buffer.add_string buf (Printf.sprintf "B%s;" s))
          done)
        !nodes_ref;
      (Some !ok, Some (Digest.to_hex (Digest.string (Buffer.contents buf))))
    end
  in
  { machines;
    replicas;
    image_mb;
    policy = Replica_set.policy_to_string policy;
    sched = Scheduler.wave_policy_to_string sched;
    distribution = distribution_to_string distribution;
    ttfb = summarize h_ttfb;
    ttdv = summarize h_ttdv;
    failovers = List.fold_left (fun a r -> a + Replica_set.failovers r) 0 !rsets;
    peak_queue = Scheduler.peak_queue scheduler;
    peak_in_service = Scheduler.peak_in_service scheduler;
    admitted_per_server = Scheduler.admitted_per_server scheduler;
    server_bytes =
      List.fold_left (fun a v -> a + Vblade.bytes_served v) 0 vblades;
    p2p_routed = List.fold_left (fun a r -> a + Peer.p2p_routed r) 0 !routers;
    p2p_failovers =
      List.fold_left (fun a r -> a + Peer.p2p_failovers r) 0 !routers;
    p2p_served_bytes =
      Hashtbl.fold (fun _ a acc -> acc + Peer.served_bytes a) agents 0;
    gossip_announces =
      (match swarm with Some sw -> Peer.announces_received sw | None -> 0);
    mcast_tx_bytes =
      List.fold_left (fun a v -> a + Vblade.mcast_bytes_sent v) 0 vblades;
    mcast_fill_bytes = !mcast_fill_bytes;
    mcast_dups = !mcast_dups;
    sim_events = Sim.events_executed sim;
    analytics = Analytics.of_trace ~slo_s trace;
    alert_count = Bmcast_obs.Watchdog.alert_count watchdog;
    timeline = Bmcast_obs.Timeseries.timeline_json ~max_points:60 timeseries;
    watch = Bmcast_obs.Watchdog.alerts_json watchdog;
    images_ok;
    image_digest }

let summary_json s =
  Printf.sprintf
    {|{"p50":%.6f,"p90":%.6f,"p99":%.6f,"mean":%.6f,"max":%.6f}|} s.p50 s.p90
    s.p99 s.mean s.max

let result_json r =
  Printf.sprintf
    {|    {"machines":%d,"replicas":%d,"image_mb":%d,"policy":%S,"sched":%S,
     "distribution":%S,
     "time_to_first_boot_s":%s,
     "time_to_devirt_s":%s,
     "failovers":%d,"peak_queue":%d,"peak_in_service":%d,
     "admitted_per_server":[%s],"server_bytes":%d,
     "p2p_routed":%d,"p2p_failovers":%d,"p2p_served_bytes":%d,
     "gossip_announces":%d,
     "mcast_tx_bytes":%d,"mcast_fill_bytes":%d,"mcast_dups":%d,
     "sim_events":%d,
     "images_ok":%s,"image_digest":%s,
     "boot":%s,
     "timeline":%s,
     "watch":%s}|}
    r.machines r.replicas r.image_mb r.policy r.sched r.distribution
    (summary_json r.ttfb) (summary_json r.ttdv) r.failovers r.peak_queue
    r.peak_in_service
    (Array.to_list r.admitted_per_server
    |> List.map string_of_int
    |> String.concat ",")
    r.server_bytes r.p2p_routed r.p2p_failovers r.p2p_served_bytes
    r.gossip_announces r.mcast_tx_bytes r.mcast_fill_bytes r.mcast_dups
    r.sim_events
    (match r.images_ok with
    | None -> "null"
    | Some b -> if b then "true" else "false")
    (match r.image_digest with
    | None -> "null"
    | Some d -> Printf.sprintf "%S" d)
    (Analytics.to_json r.analytics)
    r.timeline r.watch

let write_metrics path results =
  let oc = open_out path in
  Printf.fprintf oc
    {|{"experiment":"fleet-scaleout",
  "configs":[
%s
  ]}
|}
    (String.concat ",\n" (List.map result_json results));
  close_out oc

let run ?(machine_counts = [ 1; 4; 16 ]) ?(replica_counts = [ 1; 2; 4 ])
    ?(image_mb = 256) ?policy ?sched ?metrics_out () =
  Report.section
    (Printf.sprintf
       "Fleet scale-out: machines x storage replicas (%d MB images)" image_mb);
  let results =
    List.concat_map
      (fun machines ->
        List.map
          (fun replicas ->
            deploy_fleet ?policy ?sched ~image_mb ~machines ~replicas ())
          replica_counts)
      machine_counts
  in
  Report.series_header
    [ "ttfb p50(s)"; "ttfb max(s)"; "ttdv p50(s)"; "ttdv max(s)" ];
  List.iter
    (fun r ->
      Report.series_row
        (Printf.sprintf "%dx%d (%d srv, q<=%d)" r.machines r.replicas
           r.replicas r.peak_queue)
        [ r.ttfb.p50; r.ttfb.max; r.ttdv.p50; r.ttdv.max ])
    results;
  (* The claim: adding storage replicas restores per-machine deployment
     speed at fleet scale — the replicated tier removes the single-uplink
     bottleneck exactly as adding vblade workers removed the CPU one. *)
  let find m r =
    List.find_opt (fun x -> x.machines = m && x.replicas = r) results
  in
  (match (find 16 1, find 16 4) with
  | Some one, Some four ->
    Report.row ~label:"16-machine ttdv p50, 1 -> 4 replicas" ~units:"x speedup"
      (one.ttdv.p50 /. four.ttdv.p50)
  | _ -> ());
  (match metrics_out with
  | Some path ->
    write_metrics path results;
    Report.note "wrote %s" path
  | None -> ());
  results

(* The headline question for peer/multicast distribution: at what fleet
   size does each strategy win, when the storage tier's uplinks are the
   bottleneck? Replica fan-out spends uplink bytes linearly in N; P2P
   shifts serving onto already-deployed clients so the tier's share
   shrinks as the swarm warms; the multicast carousel spends a constant
   number of uplink bytes regardless of N. Constrained uplinks (the
   [uplink_mbps] knob) make the contest visible at simulable scale. *)
let run_crossover ?(client_counts = [ 25; 100; 250; 1000 ]) ?(image_mb = 64)
    ?(uplink_mbps = 100.) ?metrics_out () =
  Report.section
    (Printf.sprintf
       "Distribution crossover: replica fan-out vs P2P vs multicast (%d MB \
        images, %.0f Mb/s uplinks, minimal guests)"
       image_mb uplink_mbps);
  (* Every strategy gets the same admitted concurrency — 16 boots in
     flight — because the protective limit is load-bearing for all of
     them: the AoE initiator has no congestion control, so admitting
     the burst at once melts any tier under retransmission storms
     (tried: ~33x overdelivery). The contest is about where a wave's
     bytes come from. Fan-out drags every byte through 4 server
     uplinks, so its wave time stretches as uplinks get scarce; the
     alternatives run a *half-size* tier (2 replicas) and absorb the
     same waves with peer serving (each admitted client pulls from a
     distinct already-deployed peer's uplink) or the carousel (one
     port's bandwidth fills the whole wave at once). The carousel gets
     one pass per client so it keeps cycling for the whole deployment;
     surplus passes are free because [Sim.request_stop] ends the run
     when the last machine de-virtualizes. *)
  let strategies =
    [ ("replica-fanout", `Unicast, 4, 4);
      ("p2p", `P2p, 2, 8);
      ("mcast", `Mcast, 2, 8) ]
  in
  let results =
    List.concat_map
      (fun machines ->
        List.map
          (fun (_, distribution, replicas, limit_per_server) ->
            deploy_fleet ~image_mb ~boot_profile:Os.cloud_minimal ~uplink_mbps
              ~distribution ~machines ~replicas ~limit_per_server
              ~mcast_passes:(max 16 machines) ())
          strategies)
      client_counts
  in
  Report.series_header
    [ "ttdv p50(s)"; "ttdv max(s)"; "server GB"; "offload GB" ];
  List.iter
    (fun r ->
      let offload = r.p2p_served_bytes + r.mcast_fill_bytes in
      Report.series_row
        (Printf.sprintf "%s %dx%d" r.distribution r.machines r.replicas)
        [ r.ttdv.p50;
          r.ttdv.max;
          float_of_int r.server_bytes /. 1e9;
          float_of_int offload /. 1e9 ])
    results;
  (* The crossover: the client count past which each alternative beats
     replica fan-out on p50 time-to-devirtualization. *)
  let find d m =
    List.find_opt (fun x -> x.distribution = d && x.machines = m) results
  in
  List.iter
    (fun alt ->
      let wins =
        List.filter
          (fun m ->
            match (find "unicast" m, find alt m) with
            | Some u, Some a -> a.ttdv.p50 < u.ttdv.p50
            | _ -> false)
          client_counts
      in
      match wins with
      | m :: _ ->
        Report.note "%s beats replica fan-out from %d clients up" alt m
      | [] -> Report.note "%s never beats replica fan-out in this sweep" alt)
    [ "p2p"; "mcast" ];
  (match metrics_out with
  | Some path ->
    write_metrics path results;
    Report.note "wrote %s" path
  | None -> ());
  results

(* The elasticity regime the paper argues for (and López García et al.
   evaluate at hundreds of clients): ~1,000 concurrent provisioning
   requests against a modest replicated tier. Uses a small image and the
   [Os.cloud_minimal] guest so the run measures deployment physics, and
   relies on the engine's lazy idle guests — each machine stops costing
   scheduler events the moment it de-virtualizes. *)
let run_scale ?(client_counts = [ 250; 1000 ]) ?(replicas = 16)
    ?(image_mb = 8) ?metrics_out () =
  Report.section
    (Printf.sprintf
       "Fleet scale-out, cloud-burst regime: clients x %d replicas (%d MB \
        images, minimal guests)"
       replicas image_mb);
  let results =
    List.map
      (fun machines ->
        deploy_fleet ~image_mb ~boot_profile:Os.cloud_minimal ~machines
          ~replicas ())
      client_counts
  in
  Report.series_header
    [ "ttfb p50(s)"; "ttdv p50(s)"; "ttdv max(s)"; "sim Mevents" ];
  List.iter
    (fun r ->
      Report.series_row
        (Printf.sprintf "%dx%d (q<=%d)" r.machines r.replicas r.peak_queue)
        [ r.ttfb.p50;
          r.ttdv.p50;
          r.ttdv.max;
          float_of_int r.sim_events /. 1e6 ])
    results;
  (match metrics_out with
  | Some path ->
    write_metrics path results;
    Report.note "wrote %s" path
  | None -> ());
  results
