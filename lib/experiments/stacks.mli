(** Experiment environments and deployment-stack assembly.

    An {!env} is one simulated testbed: the Ethernet fabric and switch,
    the InfiniBand fabric, and the storage servers (an AoE vblade for
    BMcast, an iSCSI and an NFS server for the baselines), each with its
    own image-filled disk. Stack builders wire a fresh machine into one
    of the paper's configurations and hand back the guest-visible
    {!Bmcast_platform.Runtime.t}. *)

type env = {
  sim : Bmcast_engine.Sim.t;
  fabric : Bmcast_net.Fabric.t;
  ib : Bmcast_net.Ib.t;
  vblade : Bmcast_proto.Vblade.t;
  iscsi : Bmcast_proto.Remote_block.server;
  nfs : Bmcast_proto.Remote_block.server;
  image_sectors : int;
  disk_profile : Bmcast_storage.Disk.profile;
}

val make_env :
  ?seed:int ->
  ?image_gb:int ->
  ?disk_profile:Bmcast_storage.Disk.profile ->
  ?vblade_ram_cache:bool ->
  ?trace:Bmcast_obs.Trace.t ->
  ?metrics:Bmcast_obs.Metrics.t ->
  unit ->
  env
(** Defaults: seed 42, the paper's 32-GB image, the Constellation.2
    disk, disk-backed AoE server. [vblade_ram_cache] serves the image
    from the server's page cache — how a provider would run a popular
    image at scale. [trace]/[metrics] attach an observability tracer
    and metrics registry to the simulation (default: disabled). *)

val machine :
  env -> name:string ->
  ?disk_kind:Bmcast_platform.Machine.disk_kind ->
  ?with_ib:bool ->
  unit ->
  Bmcast_platform.Machine.t

(** {2 Stacks}

    All builders must run in process context except where noted. *)

val bare : env -> Bmcast_platform.Machine.t -> Bmcast_platform.Runtime.t
(** Pre-deployed bare metal: fills the local disk with the image
    instantly and attaches the native driver. *)

val bmcast :
  env ->
  Bmcast_platform.Machine.t ->
  ?params:Bmcast_core.Params.t ->
  ?release_memory:bool ->
  unit ->
  Bmcast_platform.Runtime.t * Bmcast_core.Vmm.t
(** Boot the BMcast VMM (timed) and attach the guest driver under it. *)

val bmcast_params : env -> Bmcast_core.Params.t
(** Default deployment parameters for this env's image size. *)

val kvm_local :
  env -> Bmcast_platform.Machine.t ->
  Bmcast_platform.Runtime.t * Bmcast_baselines.Kvm.t
(** KVM with a local pre-filled disk (no timed host boot; call
    {!Bmcast_baselines.Kvm.boot_host} for startup experiments). *)

val kvm_remote :
  env -> Bmcast_platform.Machine.t -> [ `Nfs | `Iscsi ] ->
  Bmcast_platform.Runtime.t * Bmcast_baselines.Kvm.t

val netboot :
  env -> Bmcast_platform.Machine.t ->
  Bmcast_platform.Runtime.t * Bmcast_baselines.Net_boot.t

val iscsi_client :
  env -> name:string -> Bmcast_proto.Remote_block.client
val nfs_client :
  env -> name:string -> Bmcast_proto.Remote_block.client

val run : env -> ?until:Bmcast_engine.Time.t -> (unit -> unit) -> unit
(** Spawn the scenario as a process at the current time and run the
    simulation (outside process context). *)
