(** Fleet-scale deployment experiment: machines × storage replicas.

    The paper's elasticity argument is about provisioning {e fleets};
    this experiment provisions [machines] concurrent BMcast deployments
    against a replicated storage tier of [replicas] vblade targets (all
    exporting the same golden image) and measures, per machine:

    - {e time-to-first-boot} — fleet start to guest-OS-up (the instance
      is serving, the paper's agility number), and
    - {e time-to-devirt} — fleet start to de-virtualization (the image
      is fully local, the VMM is gone).

    Traffic fans out across replicas through a per-client
    {!Bmcast_fleet.Replica_set}; admission and start pacing go through
    the {!Bmcast_fleet.Scheduler}. Both distributions land in
    [Bmcast_obs.Metrics] histograms, and {!run} writes the sweep as
    [BENCH_fleet.json]. *)

module Replica_set = Bmcast_fleet.Replica_set
module Scheduler = Bmcast_fleet.Scheduler

type distribution = [ `Unicast | `P2p | `Mcast ]
(** How image bytes reach the fleet: per-client replica fan-out (the
    PR-8 baseline), peer-to-peer serving through a {!Bmcast_fleet.Peer}
    swarm, or the first replica's {!Bmcast_proto.Vblade.multicast}
    carousel of hot boot blocks. *)

val distribution_to_string : distribution -> string
val distribution_of_string : string -> distribution option

type summary = {
  p50 : float;
  p90 : float;
  p99 : float;
  mean : float;
  max : float;
}

type result = {
  machines : int;
  replicas : int;
  image_mb : int;
  policy : string;
  sched : string;
  distribution : string;  (** {!distribution_to_string} of the mode *)
  ttfb : summary;  (** time-to-first-boot, seconds since fleet start *)
  ttdv : summary;  (** time-to-devirt, seconds since fleet start *)
  failovers : int;
  peak_queue : int;
  peak_in_service : int;
  admitted_per_server : int array;
  server_bytes : int;  (** aggregate bytes served by the storage tier *)
  p2p_routed : int;  (** commands first routed to a peer (P2P mode) *)
  p2p_failovers : int;
      (** peer-routed commands that timed out back to the replicas *)
  p2p_served_bytes : int;  (** aggregate bytes served peer-to-peer *)
  gossip_announces : int;
      (** gossip announcements the swarm tracker folded in *)
  mcast_tx_bytes : int;  (** carousel bytes the storage tier multicast *)
  mcast_fill_bytes : int;
      (** image bytes clients filled from the carousel (multicast mode) *)
  mcast_dups : int;
      (** carousel frames that carried no still-empty sector *)
  sim_events : int;  (** scheduler events the whole run executed *)
  analytics : Bmcast_obs.Analytics.t;
      (** boot-stage breakdown, critical-path attribution and SLO
          evaluation folded from the run's boot-pipeline spans *)
  alert_count : int;  (** watchdog alerts fired during the run *)
  timeline : string;
      (** {!Bmcast_obs.Timeseries.timeline_json} of the run's sampler —
          fleet-level series (plus per-replica health) over virtual
          time, embedded verbatim in [BENCH_fleet.json] *)
  watch : string;
      (** {!Bmcast_obs.Watchdog.alerts_json}: alerts and
          fault→alert detection latencies *)
  images_ok : bool option;
      (** with [digest_images]: every client disk equals the golden
          image sector-for-sector after deployment *)
  image_digest : string option;
      (** with [digest_images]: hex digest over the canonical content of
          every client disk in fleet order — equal digests across runs
          or distribution modes mean byte-identical images *)
}

val deploy_fleet :
  ?seed:int ->
  ?image_mb:int ->
  ?policy:Replica_set.policy ->
  ?sched:Scheduler.wave_policy ->
  ?limit_per_server:int ->
  ?ram_cache:bool ->
  ?crashes:(Bmcast_engine.Time.span * int) list ->
  ?restarts:(Bmcast_engine.Time.span * int) list ->
  ?distribution:distribution ->
  ?uplink_mbps:float ->
  ?mcast_passes:int ->
  ?mcast_gap:Bmcast_engine.Time.span ->
  ?peer_crashes:(Bmcast_engine.Time.span * int) list ->
  ?chaos:
    (Bmcast_engine.Sim.t ->
    Bmcast_net.Fabric.t ->
    Bmcast_proto.Vblade.t list ->
    unit) ->
  ?digest_images:bool ->
  ?tweak:(Bmcast_core.Params.t -> Bmcast_core.Params.t) ->
  ?trace:Bmcast_obs.Trace.t ->
  ?metrics:Bmcast_obs.Metrics.t ->
  ?timeseries:Bmcast_obs.Timeseries.t ->
  ?watchdog:Bmcast_obs.Watchdog.t ->
  ?profile:Bmcast_obs.Profile.t ->
  ?boot_profile:Bmcast_guest.Os.profile ->
  ?slo_s:float ->
  machines:int ->
  replicas:int ->
  unit ->
  result
(** Build a fresh simulated testbed (fabric + [replicas] image-filled
    vblade servers + [machines] machines), deploy the whole fleet, and
    run to completion. [crashes]/[restarts] schedule
    {!Bmcast_proto.Vblade.crash}/[restart] of replica [i] at a span
    after fleet start (a crash with no restart leaves the tier degraded
    for good — deployments must converge on the survivors). Defaults:
    seed 42, 256 MB image, least-outstanding routing, all-at-once
    admission, 4 deployments per server, RAM-cached servers,
    [Os.default_profile] guests ([boot_profile] overrides).

    Without a caller [trace], a small boot-category-only tracer is
    attached so [analytics] is always populated; with one, the boot
    spans ride along in it. Every run carries live telemetry: a
    {!Bmcast_obs.Metrics} registry (fresh unless [metrics] is given), a
    {!Bmcast_obs.Timeseries} sampler over it (default: 1 s virtual
    interval, bench-filtered to fleet-level plus per-replica series)
    and a {!Bmcast_obs.Watchdog} (default rule:
    [server-down: vblade.up < 0.5]). deploy_fleet attaches the watchdog
    to the sampler unless the caller supplied {e both} — then the
    caller owns the wiring (subscriber order matters for dashboards).
    Each scheduled crash arms a watchdog expectation, so [watch]
    reports measured detection latencies. [profile] attaches a
    {!Bmcast_obs.Profile} allocation profiler to the run (its figures
    are non-deterministic and live outside [result]). [slo_s] (default
    [120.0]) is the provisioning-time target the [analytics] SLO
    section evaluates.

    Distribution modes. [distribution] (default [`Unicast]) selects how
    image bytes reach the fleet: [`P2p] stands up a
    {!Bmcast_fleet.Peer} swarm — every machine joins as a serving agent
    and routes reads through {!Bmcast_fleet.Peer.route} — and [`Mcast]
    starts the first replica's carousel
    ({!Bmcast_proto.Vblade.multicast}, [mcast_passes] passes spaced
    [mcast_gap] apart, starting 500 ms after the VMMs boot) with every
    VMM subscribed via [Vmm.boot ?mcast_group]. [uplink_mbps]
    constrains every fabric port's serialization rate, in megabits per
    second — the knob that makes the distribution strategies diverge
    at simulable scale.
    [peer_crashes] schedules {!Bmcast_fleet.Peer.crash} of machine
    [i]'s agent at a span after fleet start (requests it was serving
    time out and fail over to the replica set). [chaos] runs arbitrary
    fault scheduling against the testbed before the fleet starts —
    the equivalence suite uses it to inject seeded loss/crash/flap
    plans. [digest_images] fills [images_ok]/[image_digest] by
    checking every client disk against the golden image after the run
    (O(machines × image) — keep images small). *)

val write_metrics : string -> result list -> unit
(** Write the sweep snapshot as a JSON document (one entry per config,
    each carrying its own [image_mb]). *)

val run :
  ?machine_counts:int list ->
  ?replica_counts:int list ->
  ?image_mb:int ->
  ?policy:Replica_set.policy ->
  ?sched:Scheduler.wave_policy ->
  ?metrics_out:string ->
  unit ->
  result list
(** The bench sweep (default fleet sizes {1,4,16} × replicas {1,2,4}):
    prints the report table and, with [metrics_out], writes
    [BENCH_fleet.json]. *)

val run_crossover :
  ?client_counts:int list ->
  ?image_mb:int ->
  ?uplink_mbps:float ->
  ?metrics_out:string ->
  unit ->
  result list
(** The distribution-crossover sweep (the headline result): at each
    fleet size (default {25, 100, 250, 1000}) deploy a 64 MB image
    with replica fan-out (4 replicas), P2P (2 replicas + swarm) and
    multicast (2 replicas + carousel) under constrained uplinks
    (default 100 Mb/s) and identical admitted concurrency (16 boots in
    flight), and report the client count where each alternative starts
    beating replica fan-out on p50 time-to-devirt. The image is big
    enough that the pipelined background copy — the part peer serving
    and the carousel can actually accelerate — dominates each boot. *)

val run_scale :
  ?client_counts:int list ->
  ?replicas:int ->
  ?image_mb:int ->
  ?metrics_out:string ->
  unit ->
  result list
(** The cloud-burst sweep: [client_counts] (default {250, 1000})
    concurrent deployments against [replicas] (default 16) servers with
    small images (default 8 MB) and {!Bmcast_guest.Os.cloud_minimal}
    guests. Exists to exercise the fleet-scale engine path — 250
    clients complete in seconds, 1,000 in ~half a minute (the cost is
    the simulated AoE copy traffic, not the scheduler), and 10,000 is
    feasible (see [bench fleet10k]). *)
