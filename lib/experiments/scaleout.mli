(** Fleet-scale deployment experiment: machines × storage replicas.

    The paper's elasticity argument is about provisioning {e fleets};
    this experiment provisions [machines] concurrent BMcast deployments
    against a replicated storage tier of [replicas] vblade targets (all
    exporting the same golden image) and measures, per machine:

    - {e time-to-first-boot} — fleet start to guest-OS-up (the instance
      is serving, the paper's agility number), and
    - {e time-to-devirt} — fleet start to de-virtualization (the image
      is fully local, the VMM is gone).

    Traffic fans out across replicas through a per-client
    {!Bmcast_fleet.Replica_set}; admission and start pacing go through
    the {!Bmcast_fleet.Scheduler}. Both distributions land in
    [Bmcast_obs.Metrics] histograms, and {!run} writes the sweep as
    [BENCH_fleet.json]. *)

module Replica_set = Bmcast_fleet.Replica_set
module Scheduler = Bmcast_fleet.Scheduler

type summary = {
  p50 : float;
  p90 : float;
  p99 : float;
  mean : float;
  max : float;
}

type result = {
  machines : int;
  replicas : int;
  image_mb : int;
  policy : string;
  sched : string;
  ttfb : summary;  (** time-to-first-boot, seconds since fleet start *)
  ttdv : summary;  (** time-to-devirt, seconds since fleet start *)
  failovers : int;
  peak_queue : int;
  peak_in_service : int;
  admitted_per_server : int array;
  server_bytes : int;  (** aggregate bytes served by the storage tier *)
  sim_events : int;  (** scheduler events the whole run executed *)
  analytics : Bmcast_obs.Analytics.t;
      (** boot-stage breakdown, critical-path attribution and SLO
          evaluation folded from the run's boot-pipeline spans *)
  alert_count : int;  (** watchdog alerts fired during the run *)
  timeline : string;
      (** {!Bmcast_obs.Timeseries.timeline_json} of the run's sampler —
          fleet-level series (plus per-replica health) over virtual
          time, embedded verbatim in [BENCH_fleet.json] *)
  watch : string;
      (** {!Bmcast_obs.Watchdog.alerts_json}: alerts and
          fault→alert detection latencies *)
}

val deploy_fleet :
  ?seed:int ->
  ?image_mb:int ->
  ?policy:Replica_set.policy ->
  ?sched:Scheduler.wave_policy ->
  ?limit_per_server:int ->
  ?ram_cache:bool ->
  ?crashes:(Bmcast_engine.Time.span * int) list ->
  ?restarts:(Bmcast_engine.Time.span * int) list ->
  ?tweak:(Bmcast_core.Params.t -> Bmcast_core.Params.t) ->
  ?trace:Bmcast_obs.Trace.t ->
  ?metrics:Bmcast_obs.Metrics.t ->
  ?timeseries:Bmcast_obs.Timeseries.t ->
  ?watchdog:Bmcast_obs.Watchdog.t ->
  ?profile:Bmcast_obs.Profile.t ->
  ?boot_profile:Bmcast_guest.Os.profile ->
  ?slo_s:float ->
  machines:int ->
  replicas:int ->
  unit ->
  result
(** Build a fresh simulated testbed (fabric + [replicas] image-filled
    vblade servers + [machines] machines), deploy the whole fleet, and
    run to completion. [crashes]/[restarts] schedule
    {!Bmcast_proto.Vblade.crash}/[restart] of replica [i] at a span
    after fleet start (a crash with no restart leaves the tier degraded
    for good — deployments must converge on the survivors). Defaults:
    seed 42, 256 MB image, least-outstanding routing, all-at-once
    admission, 4 deployments per server, RAM-cached servers,
    [Os.default_profile] guests ([boot_profile] overrides).

    Without a caller [trace], a small boot-category-only tracer is
    attached so [analytics] is always populated; with one, the boot
    spans ride along in it. Every run carries live telemetry: a
    {!Bmcast_obs.Metrics} registry (fresh unless [metrics] is given), a
    {!Bmcast_obs.Timeseries} sampler over it (default: 1 s virtual
    interval, bench-filtered to fleet-level plus per-replica series)
    and a {!Bmcast_obs.Watchdog} (default rule:
    [server-down: vblade.up < 0.5]). deploy_fleet attaches the watchdog
    to the sampler unless the caller supplied {e both} — then the
    caller owns the wiring (subscriber order matters for dashboards).
    Each scheduled crash arms a watchdog expectation, so [watch]
    reports measured detection latencies. [profile] attaches a
    {!Bmcast_obs.Profile} allocation profiler to the run (its figures
    are non-deterministic and live outside [result]). [slo_s] (default
    [120.0]) is the provisioning-time target the [analytics] SLO
    section evaluates. *)

val write_metrics : string -> result list -> unit
(** Write the sweep snapshot as a JSON document (one entry per config,
    each carrying its own [image_mb]). *)

val run :
  ?machine_counts:int list ->
  ?replica_counts:int list ->
  ?image_mb:int ->
  ?policy:Replica_set.policy ->
  ?sched:Scheduler.wave_policy ->
  ?metrics_out:string ->
  unit ->
  result list
(** The bench sweep (default fleet sizes {1,4,16} × replicas {1,2,4}):
    prints the report table and, with [metrics_out], writes
    [BENCH_fleet.json]. *)

val run_scale :
  ?client_counts:int list ->
  ?replicas:int ->
  ?image_mb:int ->
  ?metrics_out:string ->
  unit ->
  result list
(** The cloud-burst sweep: [client_counts] (default {250, 1000})
    concurrent deployments against [replicas] (default 16) servers with
    small images (default 8 MB) and {!Bmcast_guest.Os.cloud_minimal}
    guests. Exists to exercise the fleet-scale engine path — 250
    clients complete in seconds, 1,000 in ~half a minute (the cost is
    the simulated AoE copy traffic, not the scheduler), and 10,000 is
    feasible (see [bench fleet10k]). *)
