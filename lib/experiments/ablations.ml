module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Signal = Bmcast_engine.Signal
module Prng = Bmcast_engine.Prng
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Packet = Bmcast_net.Packet
module Aoe = Bmcast_proto.Aoe
module Aoe_client = Bmcast_proto.Aoe_client
module Vblade = Bmcast_proto.Vblade
module Machine = Bmcast_platform.Machine
module Os = Bmcast_guest.Os
module Image_copy = Bmcast_baselines.Image_copy
module Vmm = Bmcast_core.Vmm

(* A fabric-attached AoE client reading bulk data from a vblade. *)
let aoe_rig ?(mtu = 9000) ?(loss = 0.0) ?(workers = 8) ?timeout
    ?max_read_sectors () =
  let sim = Sim.create () in
  let fabric = Fabric.create sim ~mtu ~loss_rate:loss () in
  let disk = Disk.create sim Disk.hdd_constellation2 in
  Disk.fill_with_image disk;
  let vblade = Vblade.create sim ~fabric ~name:"vblade" ~disk ~workers () in
  let client_ref = ref None in
  let port =
    Fabric.attach fabric ~name:"client" (fun pkt ->
        match pkt.Packet.payload with
        | Aoe.Frame f -> Option.iter (fun c -> Aoe_client.on_frame c f) !client_ref
        | _ -> ())
  in
  let client =
    Aoe_client.create sim
      ~send:(fun hdr data -> Aoe.send port ~dst:(Vblade.port_id vblade) hdr data)
      ~mtu ?timeout ?max_read_sectors ()
  in
  client_ref := Some client;
  (sim, fabric, client)

(* Aggregate read throughput of [streams] concurrent 512 KB streams. *)
let bulk_read_rate ?mtu ?loss ?workers ?(timeout = Time.ms 500)
    ?max_read_sectors ~total_mb () =
  let sim, _, client =
    aoe_rig ?mtu ?loss ?workers ~timeout ?max_read_sectors ()
  in
  let elapsed = ref 0.0 in
  Sim.spawn_at sim Time.zero (fun () ->
      let streams = 4 in
      let per_stream = total_mb / streams in
      let done_count = ref 0 in
      let all_done = Signal.Latch.create () in
      let t0 = Sim.clock () in
      for s = 0 to streams - 1 do
        Sim.spawn (fun () ->
            for i = 0 to per_stream - 1 do
              ignore
                (Aoe_client.read client
                   ~lba:(((s * per_stream) + i) * 2048)
                   ~count:2048
                  : Content.t array)
            done;
            incr done_count;
            if !done_count = streams then Signal.Latch.set all_done)
      done;
      Signal.Latch.wait all_done;
      elapsed := Time.to_float_s (Time.diff (Sim.clock ()) t0));
  Sim.run sim;
  (float_of_int total_mb /. !elapsed, Aoe_client.retransmits client)

let run_vblade_pool () =
  Report.section "Ablation: vblade thread pool (4.2)";
  List.iter
    (fun workers ->
      let rate, _ = bulk_read_rate ~workers ~total_mb:128 () in
      Report.row
        ~label:(Printf.sprintf "%d worker(s)" workers)
        ~units:"MB/s" rate)
    [ 1; 2; 4; 8 ]

let run_jumbo_frames () =
  Report.section "Ablation: jumbo frames (4.2)";
  let jumbo, _ = bulk_read_rate ~mtu:9000 ~total_mb:128 () in
  let standard, _ = bulk_read_rate ~mtu:1500 ~total_mb:128 () in
  Report.row ~label:"MTU 9000" ~units:"MB/s" jumbo;
  Report.row ~label:"MTU 1500" ~units:"MB/s" standard;
  Report.row ~label:"jumbo gain" ~units:"x" (jumbo /. standard)

let run_retransmission () =
  Report.section "Ablation: retransmission under packet loss (4.2)";
  List.iter
    (fun loss ->
      let rate, retrans =
        bulk_read_rate ~loss ~timeout:(Time.ms 50) ~max_read_sectors:128
          ~total_mb:64 ()
      in
      Report.note "loss %.1f%%: goodput %.1f MB/s, %d retransmissions"
        (loss *. 100.0) rate retrans)
    [ 0.0; 0.001; 0.01; 0.05 ]

let run_boot_prefetch () =
  Report.section "Ablation: boot working-set prefetch (3.3 optimization)";
  let boot_time ?disk_profile ~prefetch () =
    let env = Stacks.make_env ~image_gb:32 ?disk_profile () in
    let m = Stacks.machine env ~name:"node" () in
    let out = ref 0.0 in
    Stacks.run env (fun () ->
        let boot_prefetch =
          if prefetch then begin
            (* The provider profiles the image's boot trace offline and
               ships it sorted and coalesced, so the prefetcher streams
               large sequential ranges instead of replaying the guest's
               seek pattern. *)
            let prng = Prng.split (Sim.rand env.Stacks.sim) in
            let ranges =
              List.sort compare (Os.trace prng Os.default_profile)
            in
            let rec coalesce = function
              | (l1, c1) :: (l2, c2) :: rest when l2 <= l1 + c1 + 2048 ->
                coalesce ((l1, max c1 (l2 + c2 - l1)) :: rest)
              | r :: rest -> r :: coalesce rest
              | [] -> []
            in
            coalesce ranges
          end
          else []
        in
        let params = Stacks.bmcast_params env in
        let vmm =
          Vmm.boot m ~params ~server_port:(Vblade.port_id env.Stacks.vblade)
            ~boot_prefetch ()
        in
        ignore vmm;
        let blk = Bmcast_guest.Block_io.attach m in
        let rt =
          { Bmcast_platform.Runtime.label = "bmcast";
            machine = m;
            block_read = (fun ~lba ~count -> Bmcast_guest.Block_io.read blk ~lba ~count);
            block_write =
              (fun ~lba ~count data ->
                Bmcast_guest.Block_io.write blk ~lba ~count data);
            cpu = Vmm.cpu_model vmm;
            phase = (fun () -> Vmm.phase vmm) }
        in
        let t0 = Sim.clock () in
        Os.boot rt ();
        out := Time.to_float_s (Time.diff (Sim.clock ()) t0));
    !out
  in
  let without = boot_time ~prefetch:false () in
  let with_pf = boot_time ~prefetch:true () in
  Report.row ~label:"OS boot without prefetch (HDD)" ~units:"s" without;
  Report.row ~label:"OS boot with prefetch (HDD)" ~units:"s" with_pf;
  Report.note
    "On the HDD the prefetch LOSES: its writes occupy the spindle the guest's";
  Report.note
    "reads need, and a scattered boot working set is rotation-bound either way";
  Report.note
    "- evidence for the paper's caution in making this optimization optional.";
  let ssd_without = boot_time ~disk_profile:Disk.ssd_sata ~prefetch:false () in
  let ssd_with = boot_time ~disk_profile:Disk.ssd_sata ~prefetch:true () in
  Report.row ~label:"OS boot without prefetch (SSD)" ~units:"s" ssd_without;
  Report.row ~label:"OS boot with prefetch (SSD)" ~units:"s" ssd_with

let run_shared_nic () =
  Report.section "Ablation: dedicated vs shared NIC (6)";
  (* A peer streams ~108 MB/s of inbound guest traffic while the
     deployment fetches the image. Dedicated: the streams arrive on
     different ports. Shared: both squeeze through one GbE port via the
     shadow-ring NIC mediator, so the deployment and the guest contend -
     the reason the paper prefers a dedicated NIC. *)
  let contended ~nic =
    let env = Stacks.make_env ~image_gb:4 ~vblade_ram_cache:true () in
    let m = Stacks.machine env ~name:"node" () in
    let deploy_rate = ref 0.0 and guest_goodput = ref 0.0 in
    Stacks.run env (fun () ->
        let params = Stacks.bmcast_params env in
        let vmm =
          Vmm.boot m ~params ~server_port:(Vblade.port_id env.Stacks.vblade)
            ~nic ()
        in
        let _blk = Bmcast_guest.Block_io.attach m in
        let pn = m.Machine.prod_nic in
        let nic_port_id = Fabric.port_id (Bmcast_net.Nic.port pn) in
        (* The guest's NIC driver: publish RX buffers and recycle them.
           In shared mode every register access below is mediated. *)
        let mm = m.Machine.mmio in
        let reg off = Bmcast_hw.Mmio.read mm (Machine.prod_nic_base + off) in
        let wreg off v = Bmcast_hw.Mmio.write mm (Machine.prod_nic_base + off) v in
        let guest_rx = ref 0 in
        wreg Bmcast_net.Nic.Regs.rdt 255;
        Sim.spawn ~name:"guest-rx" (fun () ->
            let ring = Bmcast_net.Nic.default_rx_ring pn in
            let idx = ref 0 and rdt = ref 255 in
            let rec poll () =
              let rdh = reg Bmcast_net.Nic.Regs.rdh in
              while !idx <> rdh do
                (match Bmcast_net.Nic.rx_desc pn ~ring ~idx:!idx with
                | Some f -> guest_rx := !guest_rx + f.Packet.size_bytes
                | None -> ());
                Bmcast_net.Nic.clear_rx_desc pn ~ring ~idx:!idx;
                idx := (!idx + 1) mod 256;
                rdt := (!rdt + 1) mod 256;
                wreg Bmcast_net.Nic.Regs.rdt !rdt
              done;
              Sim.sleep (Time.us 50);
              poll ()
            in
            poll ());
        (* Peer flooding inbound guest traffic at ~108 MB/s. *)
        let peer = Fabric.attach env.Stacks.fabric ~name:"peer" (fun _ -> ()) in
        Sim.spawn ~name:"peer-flood" (fun () ->
            let rec flood () =
              Fabric.send peer ~dst:nic_port_id ~size_bytes:9038
                (Packet.Raw "g");
              Sim.sleep (Time.us 83);
              flood ()
            in
            flood ());
        let t0 = Sim.clock () in
        Vmm.wait_deployed vmm;
        let elapsed = Time.to_float_s (Time.diff (Sim.clock ()) t0) in
        deploy_rate := 4.0 *. 1024.0 /. elapsed;
        guest_goodput := float_of_int !guest_rx /. elapsed /. 1e6);
    (!deploy_rate, !guest_goodput)
  in
  let ded_rate, ded_guest = contended ~nic:`Mgmt in
  let sh_rate, sh_guest = contended ~nic:`Shared in
  Report.row ~label:"deployment rate, dedicated NIC" ~units:"MB/s" ded_rate;
  Report.row ~label:"guest inbound goodput, dedicated" ~units:"MB/s" ded_guest;
  Report.row ~label:"deployment rate, shared NIC" ~units:"MB/s" sh_rate;
  Report.row ~label:"guest inbound goodput, shared" ~units:"MB/s" sh_guest

let run_ssd () =
  Report.section "Ablation: SSD local disks (2: 'using SSDs may reduce copy time')";
  let copy_time profile =
    let env = Stacks.make_env ~image_gb:32 ~disk_profile:profile () in
    let m = Stacks.machine env ~name:"node" () in
    let out = ref 0.0 in
    Stacks.run env (fun () ->
        let clients =
          [ Stacks.iscsi_client env ~name:"c0"; Stacks.iscsi_client env ~name:"c1" ]
        in
        let b =
          Image_copy.deploy m ~servers:clients
            ~image_sectors:env.Stacks.image_sectors
        in
        out := Time.to_float_s b.Image_copy.transfer);
    !out
  in
  let hdd = copy_time Disk.hdd_constellation2 in
  let ssd = copy_time Disk.ssd_sata in
  Report.row ~label:"image-copy transfer, HDD" ~units:"s" hdd;
  Report.row ~label:"image-copy transfer, SSD" ~units:"s" ssd;
  Report.note
    "SSD saves only %.0f%%: the GbE wire, not the disk, bounds image copying."
    ((hdd -. ssd) /. hdd *. 100.0)

let run_os_transparency () =
  Report.section
    "Ablation: OS transparency - Windows deploys unmodified (4.3)";
  let boot ~profile ~image_gb =
    let env = Stacks.make_env ~image_gb () in
    let m = Stacks.machine env ~name:"node" () in
    let out = ref 0.0 in
    Stacks.run env (fun () ->
        let rt, _vmm = Stacks.bmcast env m () in
        let t0 = Sim.clock () in
        Os.boot rt ~profile ();
        out := Time.to_float_s (Time.diff (Sim.clock ()) t0));
    !out
  in
  let ubuntu = boot ~profile:Os.ubuntu_1404 ~image_gb:32 in
  (* The paper's Windows reference image is EC2's 30 GB default (2). *)
  let windows = boot ~profile:Os.windows_server_2008 ~image_gb:30 in
  Report.row ~label:"Ubuntu 14.04 boot on BMcast (32 GB)" ~units:"s" ubuntu;
  Report.row ~label:"Windows Server 2008 boot on BMcast (30 GB)" ~units:"s"
    windows;
  Report.note
    "Both guests ran the same unmodified driver stack; only their boot";
  Report.note "I/O profiles differ - the mediators absorbed everything else."

let run () =
  run_vblade_pool ();
  run_jumbo_frames ();
  run_retransmission ();
  run_boot_prefetch ();
  run_shared_nic ();
  run_ssd ();
  run_os_transparency ()
