module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Firmware = Bmcast_hw.Firmware
module Machine = Bmcast_platform.Machine
module Os = Bmcast_guest.Os
module Kvm = Bmcast_baselines.Kvm
module Image_copy = Bmcast_baselines.Image_copy
module Net_boot = Bmcast_baselines.Net_boot

type result = {
  label : string;
  firmware : float;
  pre_os : float;
  os_boot : float;
  total_post_firmware : float;
  metrics_json : string;
}

let secs = Time.to_float_s

(* Each configuration runs in its own fresh simulated testbed, with its
   own metrics registry so the snapshot reflects just that config. *)
let with_env image_gb label f =
  let metrics = Bmcast_obs.Metrics.create () in
  let env = Stacks.make_env ?image_gb:(Some image_gb) ~metrics () in
  let m = Stacks.machine env ~name:label () in
  let out = ref None in
  Stacks.run env (fun () ->
      let t0 = Sim.clock () in
      Firmware.post m.Machine.firmware;
      let t_fw = Sim.clock () in
      let t_os_start, t_end = f env m in
      out :=
        Some
          { label;
            firmware = secs (Time.diff t_fw t0);
            pre_os = secs (Time.diff t_os_start t_fw);
            os_boot = secs (Time.diff t_end t_os_start);
            total_post_firmware = secs (Time.diff t_end t_fw);
            metrics_json = Bmcast_obs.Metrics.to_json metrics });
  Option.get !out

let measure ?(image_gb = 32) () =
  let bare =
    with_env image_gb "Baremetal" (fun env m ->
        let rt = Stacks.bare env m in
        let t_os = Sim.clock () in
        Os.boot rt ();
        (t_os, Sim.clock ()))
  in
  let bmcast =
    with_env image_gb "BMcast" (fun env m ->
        let rt, _vmm = Stacks.bmcast env m () in
        let t_os = Sim.clock () in
        Os.boot rt ();
        (t_os, Sim.clock ()))
  in
  let image_copy =
    with_env image_gb "Image Copy" (fun env m ->
        let clients =
          [ Stacks.iscsi_client env ~name:"installer-0";
            Stacks.iscsi_client env ~name:"installer-1" ]
        in
        ignore
          (Image_copy.deploy m ~servers:clients
             ~image_sectors:env.Stacks.image_sectors
            : Image_copy.breakdown);
        let rt = Stacks.bare env m in
        let t_os = Sim.clock () in
        Os.boot rt ();
        (t_os, Sim.clock ()))
  in
  let nfs_root =
    with_env image_gb "NFS Root" (fun env m ->
        let rt, nb = Stacks.netboot env m in
        Net_boot.pxe_boot_loader nb;
        let t_os = Sim.clock () in
        Os.boot rt ();
        (t_os, Sim.clock ()))
  in
  let kvm which label =
    with_env image_gb label (fun env m ->
        let rt, kvm = Stacks.kvm_remote env m which in
        Kvm.boot_host kvm;
        Sim.sleep Kvm.guest_boot_extra;
        let t_os = Sim.clock () in
        Os.boot rt ();
        (t_os, Sim.clock ()))
  in
  [ bare;
    bmcast;
    image_copy;
    nfs_root;
    kvm `Nfs "KVM/NFS";
    kvm `Iscsi "KVM/iSCSI" ]

let paper_post_firmware = function
  | "Baremetal" -> Some 29.0
  | "BMcast" -> Some 63.0
  | "Image Copy" -> Some 544.0
  | "NFS Root" -> Some 49.0
  | "KVM/NFS" -> Some 72.0
  | "KVM/iSCSI" -> Some 85.0
  | _ -> None

(* Machine-readable companion to the printed figure: the same timing
   breakdown plus each config's metrics snapshot, for offline analysis. *)
let write_metrics path ?(image_gb = 32) results =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"experiment\":\"fig4-startup\",\"image_gb\":";
  Buffer.add_string b (string_of_int image_gb);
  Buffer.add_string b ",\"configs\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n{\"label\":%S,\"firmware\":%.6f,\"pre_os\":%.6f,\"os_boot\":%.6f,\
            \"total_post_firmware\":%.6f,\"metrics\":%s}"
           r.label r.firmware r.pre_os r.os_boot r.total_post_firmware
           (String.trim r.metrics_json)))
    results;
  Buffer.add_string b "\n]}\n";
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b)

let run ?image_gb ?metrics_out () =
  Report.section "Figure 4: OS startup time";
  let results = measure ?image_gb () in
  Option.iter (fun path -> write_metrics path ?image_gb results) metrics_out;
  Report.series_header [ "firmware"; "pre-OS"; "OS boot"; "post-fw total" ];
  List.iter
    (fun r ->
      Report.series_row r.label
        [ r.firmware; r.pre_os; r.os_boot; r.total_post_firmware ])
    results;
  let find l = List.find (fun r -> r.label = l) results in
  List.iter
    (fun r ->
      Report.row ~label:(r.label ^ " (post-firmware)")
        ?paper:(paper_post_firmware r.label) ~units:"s" r.total_post_firmware)
    results;
  let bmcast = find "BMcast" and copy = find "Image Copy" in
  Report.row ~label:"speedup vs image copy (post-fw)" ~paper:8.6 ~units:"x"
    (copy.total_post_firmware /. bmcast.total_post_firmware);
  Report.row ~label:"speedup vs image copy (incl fw)" ~paper:3.5 ~units:"x"
    ((copy.firmware +. copy.total_post_firmware)
    /. (bmcast.firmware +. bmcast.total_post_firmware))
