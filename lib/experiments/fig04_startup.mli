(** Figure 4 — OS startup time.

    Regenerates the six bars: Baremetal, BMcast, Image Copy, NFS Root,
    KVM/NFS and KVM/iSCSI, reporting firmware, pre-OS and OS-boot
    components and the paper's headline ratios (BMcast 8.6x faster than
    image copying post-firmware; 3.5x including firmware). *)

type result = {
  label : string;
  firmware : float;  (** seconds *)
  pre_os : float;  (** VMM boot / installer+copy+reboot / hypervisor boot *)
  os_boot : float;
  total_post_firmware : float;
  metrics_json : string;
      (** Per-config {!Bmcast_obs.Metrics.to_json} snapshot, taken when
          the config's simulation ends. *)
}

val measure : ?image_gb:int -> unit -> result list
(** Run all six configurations (fresh simulation each). *)

val run : ?image_gb:int -> ?metrics_out:string -> unit -> unit
(** Measure and print the figure. [metrics_out] additionally writes a
    JSON file with the per-config timing breakdown and metrics
    snapshots. *)
