(** Figure 14 — moderating background copy via the VMM-write interval
    (§5.6).

    Sweeps the interval between background-copy writes from 1 s down to
    1 us and then full speed (no interval), measuring the guest's
    sequential read (a) and write (b) throughput alongside the VMM's own
    write throughput. The guest-I/O-frequency suspension is disabled for
    this experiment (the sweep isolates the interval knob). As the
    interval shrinks the guest loses throughput and the VMM gains it;
    their sum stays below bare metal because the two streams seek
    against each other — both paper observations. *)

type point = {
  interval_label : string;
  guest_mb_s : float;
  vmm_mb_s : float;
}

val default_intervals : (string * Bmcast_engine.Time.span) list
(** The paper's full sweep: 1 s down to 1 us, then full speed. *)

val measure :
  ?intervals:(string * Bmcast_engine.Time.span) list ->
  guest_op:[ `Read | `Write ] ->
  unit ->
  point list
(** One point per interval (defaults to {!default_intervals}; the golden
    regression test runs a 3-point subset). *)

val run : unit -> unit
