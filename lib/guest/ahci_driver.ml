module Sim = Bmcast_engine.Sim
module Semaphore = Bmcast_engine.Semaphore
module Signal = Bmcast_engine.Signal
module Mmio = Bmcast_hw.Mmio
module Irq = Bmcast_hw.Irq
module Content = Bmcast_storage.Content
module Dma = Bmcast_storage.Dma
module Ahci = Bmcast_storage.Ahci
module Machine = Bmcast_platform.Machine

type t = {
  machine : Machine.t;
  ahci : Ahci.t;
  clb : int;
  lock : Semaphore.t;  (* one command in flight (queue depth 1) *)
  mutable completion : Signal.Latch.t option;
  mutable ios : int;
}

let reg t off = Mmio.read t.machine.Machine.mmio (Machine.ahci_base + off)
let wreg t off v = Mmio.write t.machine.Machine.mmio (Machine.ahci_base + off) v

let isr t () =
  (* Acknowledge interrupt status; wake the waiting requester if its
     command left the issue register. *)
  let is = reg t Ahci.Regs.px_is in
  if is land 1 <> 0 then begin
    wreg t Ahci.Regs.px_is 1;
    if reg t Ahci.Regs.px_ci land 1 = 0 then
      match t.completion with
      | Some latch ->
        t.completion <- None;
        Signal.Latch.set latch
      | None -> ()
  end

let attach machine =
  let ahci =
    match machine.Machine.controller with
    | Machine.Ahci a -> a
    | Machine.Ide _ -> invalid_arg "Ahci_driver.attach: machine has IDE disk"
  in
  let clb = Ahci.alloc_cmd_list ahci in
  let t =
    { machine; ahci; clb; lock = Semaphore.create 1; completion = None; ios = 0 }
  in
  Irq.register machine.Machine.irq ~vec:Machine.disk_irq_vec (isr t);
  wreg t Ahci.Regs.px_clb clb;
  wreg t Ahci.Regs.px_ie 1;
  wreg t Ahci.Regs.px_cmd 1;
  t

let submit t fis buf =
  Semaphore.with_permit t.lock (fun () ->
      let table =
        Ahci.alloc_cmd_table t.ahci fis
          [ { Ahci.buf_addr = buf.Dma.addr; sectors = Array.length buf.Dma.data } ]
      in
      Ahci.set_slot t.ahci ~clb:t.clb ~slot:0 ~table_addr:table;
      let latch = Signal.Latch.create () in
      t.completion <- Some latch;
      wreg t Ahci.Regs.px_ci 1;
      Signal.Latch.wait latch;
      t.ios <- t.ios + 1)

let read t ~lba ~count =
  let buf = Dma.alloc t.machine.Machine.dma ~sectors:count in
  submit t { Ahci.Fis.op = Ahci.Fis.Read; lba; count } buf;
  let data = Array.copy buf.Dma.data in
  Dma.free t.machine.Machine.dma buf;
  data

let write t ~lba ~count data =
  if Array.length data <> count then
    invalid_arg "Ahci_driver.write: data length mismatch";
  let buf = Dma.alloc t.machine.Machine.dma ~sectors:count in
  Dma.write buf ~off:0 data;
  submit t { Ahci.Fis.op = Ahci.Fis.Write; lba; count } buf;
  Dma.free t.machine.Machine.dma buf

let ios_completed t = t.ios
