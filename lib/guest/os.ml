module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Prng = Bmcast_engine.Prng
module Runtime = Bmcast_platform.Runtime
module Machine = Bmcast_platform.Machine

type profile = {
  total_read_bytes : int;
  op_count : int;
  sequential_fraction : float;
  span_bytes : int;
  cpu_total : Time.span;
  cpu_mem_intensity : float;
}

let default_profile =
  { total_read_bytes = 72 * 1024 * 1024;
    op_count = 4500;
    sequential_fraction = 0.5;
    span_bytes = 8 * 1024 * 1024 * 1024;
    cpu_total = Time.of_float_s 12.0;
    cpu_mem_intensity = 0.3 }

let ubuntu_1404 = default_profile

(* Windows Server 2008 (the paper's other guest; its EC2 image is the
   30-GB default of 2): a much larger boot working set, more registry /
   service churn, a longer CPU phase. *)
let windows_server_2008 =
  { total_read_bytes = 210 * 1024 * 1024;
    op_count = 9000;
    sequential_fraction = 0.45;
    span_bytes = 12 * 1024 * 1024 * 1024;
    cpu_total = Time.of_float_s 35.0;
    cpu_mem_intensity = 0.3 }

(* A stripped cloud image (small initramfs, no desktop services): the
   kind of guest a 1,000+-machine elasticity sweep provisions. Small
   enough that fleet-scale runs are dominated by deployment physics,
   not by replaying thousands of identical boot traces. *)
let cloud_minimal =
  { total_read_bytes = 8 * 1024 * 1024;
    op_count = 400;
    sequential_fraction = 0.7;
    span_bytes = 1024 * 1024 * 1024;
    cpu_total = Time.of_float_s 2.0;
    cpu_mem_intensity = 0.2 }

let trace prng p =
  let span_sectors = p.span_bytes / 512 in
  let avg_sectors = max 1 (p.total_read_bytes / 512 / p.op_count) in
  let rec gen i last_end acc remaining =
    if i >= p.op_count || remaining <= 0 then List.rev acc
    else begin
      (* Sector count: exponential around the mean, at least 1. *)
      let count =
        max 1
          (min remaining
             (int_of_float (Prng.exponential prng (float_of_int avg_sectors))))
      in
      let lba =
        if last_end > 0 && Prng.bernoulli prng p.sequential_fraction then
          last_end
        else Prng.int prng (span_sectors - count)
      in
      gen (i + 1) (lba + count) ((lba, count) :: acc) (remaining - count)
    end
  in
  gen 0 0 [] (p.total_read_bytes / 512)

let boot runtime ?(profile = default_profile) () =
  let machine = runtime.Runtime.machine in
  let prng = Prng.split (Sim.rand machine.Machine.sim) in
  let ops = trace prng profile in
  let n = List.length ops in
  let cpu_slice = Time.div profile.cpu_total (max 1 n) in
  List.iter
    (fun (lba, count) ->
      ignore (runtime.Runtime.block_read ~lba ~count : Bmcast_storage.Content.t array);
      Runtime.cpu_run runtime ~core:0 ~work:cpu_slice
        ~mem_intensity:profile.cpu_mem_intensity)
    ops
