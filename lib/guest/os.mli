(** Guest OS boot model.

    Boot is a deterministic trace of block reads (boot loader, kernel,
    initramfs, services — the paper observed 72 MB read during an Ubuntu
    14.04 boot; §5.1) interleaved with CPU work, generated from the
    simulation's seeded PRNG. Played against any {!Bmcast_platform.Runtime},
    it yields the bare-metal 29 s boot, the BMcast 58 s cold boot (every
    read redirected to the storage server), and the KVM/NFS/iSCSI boot
    times — purely from each stack's I/O behaviour. *)

type profile = {
  total_read_bytes : int;
  op_count : int;
  sequential_fraction : float;  (** chance the next read continues the last *)
  span_bytes : int;  (** disk region holding boot files *)
  cpu_total : Bmcast_engine.Time.span;  (** CPU work interleaved with reads *)
  cpu_mem_intensity : float;
}

val default_profile : profile
(** Calibrated to the paper's testbed: 72 MB over ~4500 reads within the
    first 8 GB, 29 s bare-metal boot (Ubuntu 14.04). *)

val ubuntu_1404 : profile
(** Alias of {!default_profile}. *)

val windows_server_2008 : profile
(** The paper's other guest family: Windows deploys unmodified too
    (§4.3). Larger boot working set (~210 MB), longer boot. *)

val cloud_minimal : profile
(** A stripped cloud image (~8 MB working set, 2 s CPU): the guest used
    by the 1,000+-client fleet sweeps, where replaying thousands of
    72 MB boot traces would swamp the deployment physics being
    measured. *)

val boot : Bmcast_platform.Runtime.t -> ?profile:profile -> unit -> unit
(** Run the boot sequence to completion (process context). *)

val trace :
  Bmcast_engine.Prng.t -> profile -> (int * int) list
(** The [(lba, sectors)] read sequence boot will issue (deterministic in
    the PRNG state); exposed for tests and for prefetch experiments. *)
