(* bmcastctl: drive BMcast deployments on the simulated testbed.

     dune exec bin/bmcastctl.exe -- deploy --image-gb 8 --disk ahci
     dune exec bin/bmcastctl.exe -- trace --image-mb 256 -o deploy.trace.json
     dune exec bin/bmcastctl.exe -- compare --image-gb 32
     dune exec bin/bmcastctl.exe -- params *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Machine = Bmcast_platform.Machine
module Os = Bmcast_guest.Os
module Vmm = Bmcast_core.Vmm
module Params = Bmcast_core.Params
module Stacks = Bmcast_experiments.Stacks
module Trace = Bmcast_obs.Trace
module Metrics = Bmcast_obs.Metrics
module Fault = Bmcast_faults.Fault
module Timeseries = Bmcast_obs.Timeseries
module Watchdog = Bmcast_obs.Watchdog
module Fabric = Bmcast_net.Fabric
module Disk = Bmcast_storage.Disk
module Vblade = Bmcast_proto.Vblade
module Content = Bmcast_storage.Content
module Block_io = Bmcast_guest.Block_io

let secs t = Time.to_float_s t

(* --- logging ---

   App-level messages are the tool's normal output and go to stdout
   bare, exactly as the old Printf-based output did. Everything else
   (errors, -v debug detail) goes to stderr with a prefix. *)

let reporter () =
  let report _src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    let ppf =
      match level with
      | Logs.App -> Format.std_formatter
      | _ -> Format.err_formatter
    in
    msgf @@ fun ?header:_ ?tags:_ fmt ->
    match level with
    | Logs.App -> Format.kfprintf k ppf (fmt ^^ "@.")
    | level ->
      Format.kfprintf k ppf
        ("bmcastctl: [%s] " ^^ fmt ^^ "@.")
        (Logs.level_to_string (Some level))
  in
  { Logs.report }

let setup_logs quiet verbose =
  Logs.set_reporter (reporter ());
  Logs.set_level ~all:true
    (if quiet then None
     else if verbose then Some Logs.Debug
     else Some Logs.Warning)

(* --- observability plumbing shared by the subcommands --- *)

let make_tracer ?(sample_every = 1) = function
  | None -> Trace.null
  | Some _ ->
    if sample_every < 1 then begin
      Logs.err (fun m -> m "--trace-sample must be >= 1 (got %d)" sample_every);
      exit 2
    end;
    Trace.create ~capacity:(1 lsl 22) ~sample_every ()

let make_metrics = function None -> Metrics.null | Some _ -> Metrics.create ()

let prefix_filter prefix =
  Option.map
    (fun p ->
      let n = String.length p in
      fun k -> String.length k >= n && String.sub k 0 n = p)
    prefix

let write_obs ~jsonl ?filter tracer trace_out metrics metrics_out =
  Option.iter
    (fun path ->
      (if jsonl then Trace.write_jsonl else Trace.write_chrome) tracer path;
      let dropped = Trace.dropped tracer in
      Logs.app (fun m ->
          m "trace: %d event(s) -> %s%s" (Trace.event_count tracer) path
            (if dropped > 0 then Printf.sprintf " (%d dropped)" dropped
             else "")))
    trace_out;
  Option.iter
    (fun path ->
      Metrics.write ?filter metrics path;
      Logs.app (fun m ->
          m "metrics: %d instrument(s) -> %s" (Metrics.size metrics) path))
    metrics_out

(* Watchdog outcome, shared by fleet and watch: the alert record plus
   every fault->alert detection latency the run measured. *)
let show_watchdog w =
  Logs.app (fun m ->
      m "watchdog: %d alert(s), %d detection(s)%s" (Watchdog.alert_count w)
        (List.length (Watchdog.detections w))
        (match Watchdog.pending_expectations w with
        | 0 -> ""
        | n -> Printf.sprintf ", %d expectation(s) unresolved" n));
  List.iter
    (fun a ->
      Logs.app (fun m ->
          m "  ! [%7.2fs] %s %s: %s"
            (float_of_int a.Watchdog.a_at /. 1e9)
            a.Watchdog.a_rule a.Watchdog.a_key a.Watchdog.a_msg))
    (Watchdog.alerts w);
  List.iter
    (fun d ->
      Logs.app (fun m ->
          m "  detected %S via %s (%s) in %.3fs" d.Watchdog.d_label
            d.Watchdog.d_rule d.Watchdog.d_key
            (float_of_int (Watchdog.detection_latency_ns d) /. 1e9)))
    (Watchdog.detections w)

let default_fleet_rules () =
  [ Watchdog.threshold ~name:"server-down" ~key:"vblade.up" Watchdog.Below 0.5 ]

(* --- deploy: one instance, streaming deployment, progress timeline --- *)

let deploy () image_gb disk watch trace_out metrics_out filter jsonl
    trace_sample =
  let disk_kind =
    match disk with
    | "ide" -> Machine.Ide_disk
    | "ahci" -> Machine.Ahci_disk
    | other ->
      Logs.err (fun m -> m "unknown disk kind %S (ahci|ide)" other);
      exit 2
  in
  let tracer = make_tracer ~sample_every:trace_sample trace_out in
  let metrics = make_metrics metrics_out in
  let env = Stacks.make_env ~image_gb ~trace:tracer ~metrics () in
  let m = Stacks.machine env ~name:"instance0" ~disk_kind () in
  Logs.app (fun l ->
      l "Deploying a %d GB image to %s over AoE (disk: %s)" image_gb
        m.Machine.name disk);
  Stacks.run env (fun () ->
      let t0 = Sim.clock () in
      let rt, vmm = Stacks.bmcast env m () in
      Logs.app (fun l ->
          l "[%7.2fs] VMM booted (PXE + init); deployment phase begins"
            (secs (Time.diff (Sim.clock ()) t0)));
      if watch then
        Sim.spawn (fun () ->
            let rec tick () =
              if Vmm.devirtualized_at vmm = None then begin
                Sim.sleep (Time.s 10);
                Logs.app (fun l ->
                    l "[%7.2fs] progress %5.1f%%  guest IO %.0f/s"
                      (secs (Time.diff (Sim.clock ()) t0))
                      (Vmm.progress vmm *. 100.0)
                      (Vmm.guest_io_rate vmm));
                tick ()
              end
            in
            tick ());
      Os.boot rt ();
      Logs.app (fun l ->
          l "[%7.2fs] guest OS up (instance is serving)"
            (secs (Time.diff (Sim.clock ()) t0)));
      Vmm.wait_devirtualized vmm;
      Logs.app (fun l ->
          l "[%7.2fs] de-virtualized: VMM gone, bare-metal phase"
            (secs (Time.diff (Sim.clock ()) t0)));
      let t = Vmm.totals vmm in
      Logs.app (fun l ->
          l
            "totals: %d redirects (%.1f MB copy-on-read), %.1f MB background \
             copy,\n        %d multiplexed commands, %d queued guest \
             commands, %d VM exits, %d AoE retransmits"
            t.Vmm.redirects
            (float_of_int t.Vmm.redirected_bytes /. 1e6)
            (float_of_int t.Vmm.background_bytes /. 1e6)
            t.Vmm.multiplexed_ops t.Vmm.queued_commands t.Vmm.vm_exits
            t.Vmm.aoe_retransmits);
      Logs.app (fun l -> l "lifecycle:");
      List.iter
        (fun (at, what) ->
          Logs.app (fun l -> l "  [%7.2fs] %s" (secs (Time.diff at t0)) what))
        (Vmm.events vmm));
  write_obs ~jsonl ?filter:(prefix_filter filter) tracer trace_out metrics
    metrics_out;
  0

(* --- shared single-machine testbed for the chaos and trace commands --- *)

type testbed = {
  sim : Sim.t;
  fabric : Fabric.t;
  server_disk : Disk.t;
  vblade : Vblade.t;
  machine : Machine.t;
  params : Params.t;
  image_sectors : int;
}

let make_testbed ~seed ~image_mb ~trace ~metrics =
  let image_sectors = image_mb * 2048 in
  Logs.debug (fun m ->
      m "testbed: %d MB image (%d sectors), seed %d" image_mb image_sectors
        seed);
  let sim = Sim.create ~seed ~trace ~metrics () in
  let fabric = Fabric.create sim () in
  let profile =
    { Disk.hdd_constellation2 with Disk.capacity_sectors = 2 * image_sectors }
  in
  let server_disk = Disk.create sim profile in
  Disk.fill_with_image server_disk;
  let vblade = Vblade.create sim ~fabric ~name:"server" ~disk:server_disk () in
  let machine =
    Machine.create sim ~name:"instance0" ~disk_profile:profile
      ~disk_kind:Machine.Ahci_disk ~fabric ()
  in
  let params = Params.default ~image_sectors in
  { sim; fabric; server_disk; vblade; machine; params; image_sectors }

let resolve_plan ~seed ~image_sectors scenario =
  if scenario = "random" then
    Fault.random_plan ~seed ~active:(Time.s 10) ~image_sectors
  else
    match Fault.scenario ~image_sectors scenario with
    | Some p -> p
    | None ->
      Logs.err (fun m ->
          m "unknown scenario %S; known: random %s" scenario
            (String.concat " " Fault.scenario_names));
      exit 2

(* Boot the VMM, touch the disk once to force a copy-on-read redirect,
   then wait out the full deployment. *)
let spawn_deployment tb vmm_ref =
  Sim.spawn_at tb.sim ~name:"scenario" Time.zero (fun () ->
      let vmm =
        Vmm.boot tb.machine ~params:tb.params
          ~server_port:(Vblade.port_id tb.vblade) ()
      in
      vmm_ref := Some vmm;
      let blk = Block_io.attach tb.machine in
      ignore (Block_io.read blk ~lba:0 ~count:8 : Content.t array);
      Vmm.wait_devirtualized vmm)

(* --- chaos: deploy under a named fault scenario, check invariants --- *)

let chaos () scenario seed image_mb trace_out metrics_out filter jsonl
    trace_sample =
  let plan =
    resolve_plan ~seed ~image_sectors:(image_mb * 2048) scenario
  in
  let tracer = make_tracer ~sample_every:trace_sample trace_out in
  let metrics = make_metrics metrics_out in
  let tb = make_testbed ~seed ~image_mb ~trace:tracer ~metrics in
  Logs.app (fun m ->
      m "Chaos run: scenario %S, seed %d, %d MB image" scenario seed image_mb);
  let rig =
    { Fault.sim = tb.sim;
      fabric = tb.fabric;
      server = tb.vblade;
      server_disk = tb.server_disk }
  in
  let inj = Fault.inject rig plan in
  let vmm_ref = ref None in
  spawn_deployment tb vmm_ref;
  Sim.run ~until:(Time.minutes 60) tb.sim;
  let vmm = Option.get !vmm_ref in
  Logs.app (fun m -> m "fault trace:");
  List.iter
    (fun (at, what) -> Logs.app (fun m -> m "  [%7.2fs] %s" (secs at) what))
    (Fault.trace inj);
  Logs.app (fun m -> m "lifecycle:");
  List.iter
    (fun (at, what) -> Logs.app (fun m -> m "  [%7.2fs] %s" (secs at) what))
    (Vmm.events vmm);
  let t = Vmm.totals vmm in
  Logs.app (fun m ->
      m
        "totals: %d retransmits, %d escalations, %d fetch failures, %d \
         server crashes, %d injected disk errors"
        t.Vmm.aoe_retransmits t.Vmm.aoe_escalations t.Vmm.fetch_failures
        (Vblade.crashes tb.vblade)
        (Disk.read_errors tb.server_disk));
  let checks =
    Fault.Invariants.all ~image_sectors:tb.image_sectors
      ~disk:tb.machine.Machine.disk vmm
  in
  Logs.app (fun m -> m "invariants:\n%s" (Fault.Invariants.report checks));
  write_obs ~jsonl ?filter:(prefix_filter filter) tracer trace_out metrics
    metrics_out;
  if Fault.Invariants.failures checks = [] then 0 else 1

(* --- trace: run a deployment purely to produce a trace file --- *)

let trace_cmd () scenario seed image_mb image_gb output jsonl metrics_out
    filter trace_sample =
  let image_mb =
    match image_gb with Some gb -> gb * 1024 | None -> image_mb
  in
  if trace_sample < 1 then begin
    Logs.err (fun m -> m "--trace-sample must be >= 1 (got %d)" trace_sample);
    exit 2
  end;
  let tracer =
    Trace.create ~capacity:(1 lsl 22) ~sample_every:trace_sample ()
  in
  let metrics = make_metrics metrics_out in
  let tb = make_testbed ~seed ~image_mb ~trace:tracer ~metrics in
  Logs.app (fun m ->
      m "Trace run: scenario %S, seed %d, %d MB image" scenario seed image_mb);
  let inj =
    if scenario = "none" then None
    else
      let plan = resolve_plan ~seed ~image_sectors:tb.image_sectors scenario in
      let rig =
        { Fault.sim = tb.sim;
          fabric = tb.fabric;
          server = tb.vblade;
          server_disk = tb.server_disk }
      in
      Some (Fault.inject rig plan)
  in
  let vmm_ref = ref None in
  spawn_deployment tb vmm_ref;
  Sim.run ~until:(Time.minutes 60) tb.sim;
  Option.iter
    (fun inj ->
      List.iter
        (fun (at, what) ->
          Logs.debug (fun m -> m "fault [%7.2fs] %s" (secs at) what))
        (Fault.trace inj))
    inj;
  (match Option.bind !vmm_ref Vmm.devirtualized_at with
  | Some at -> Logs.app (fun m -> m "de-virtualized at %.2fs" (secs at))
  | None -> Logs.app (fun m -> m "run ended before de-virtualization"));
  write_obs ~jsonl ?filter:(prefix_filter filter) tracer (Some output) metrics
    metrics_out;
  0

(* --- fleet: many machines against a replicated storage tier --- *)

module Scaleout = Bmcast_experiments.Scaleout
module Replica_set = Bmcast_fleet.Replica_set
module Scheduler = Bmcast_fleet.Scheduler

(* "<ms>:<replica>" -> (span, replica index) *)
let parse_fault_spec what s =
  match String.split_on_char ':' s with
  | [ ms; i ] -> (
    match (int_of_string_opt ms, int_of_string_opt i) with
    | Some ms, Some i when ms >= 0 && i >= 0 -> (Time.ms ms, i)
    | _ ->
      Logs.err (fun m -> m "bad --%s %S (want <ms>:<replica>)" what s);
      exit 2)
  | _ ->
    Logs.err (fun m -> m "bad --%s %S (want <ms>:<replica>)" what s);
    exit 2

let fleet_cmd () machines replicas policy sched limit image_mb seed crash
    restart trace_out metrics_out filter jsonl trace_sample =
  let policy =
    match Replica_set.policy_of_string policy with
    | Some p -> p
    | None ->
      Logs.err (fun m ->
          m
            "unknown policy %S (shard | shard:<sectors> | least-outstanding \
             | weighted-rtt)"
            policy);
      exit 2
  in
  let sched =
    match Scheduler.wave_policy_of_string sched with
    | Some p -> p
    | None ->
      Logs.err (fun m ->
          m "unknown schedule %S (all | waves:<k> | stagger:<ms>)" sched);
      exit 2
  in
  let crashes = List.map (parse_fault_spec "crash") crash in
  let restarts = List.map (parse_fault_spec "restart") restart in
  let tracer = make_tracer ~sample_every:trace_sample trace_out in
  (* The fleet always runs with live telemetry so the watchdog summary
     below (and any --metrics snapshot) is populated. *)
  let metrics = Metrics.create () in
  let timeseries = Timeseries.create metrics in
  let watchdog = Watchdog.create (default_fleet_rules ()) in
  Watchdog.attach watchdog timeseries;
  Logs.app (fun m ->
      m
        "Fleet deployment: %d machine(s), %d storage replica(s), %d MB \
         image, policy %s, schedule %s"
        machines replicas image_mb
        (Replica_set.policy_to_string policy)
        (Scheduler.wave_policy_to_string sched));
  let r =
    Scaleout.deploy_fleet ~seed ~image_mb ~policy ~sched
      ~limit_per_server:limit ~crashes ~restarts ~trace:tracer ~metrics
      ~timeseries ~watchdog ~machines ~replicas ()
  in
  let show label (s : Scaleout.summary) =
    Logs.app (fun m ->
        m "  %-20s p50 %7.2fs  p90 %7.2fs  p99 %7.2fs  mean %7.2fs  max %7.2fs"
          label s.Scaleout.p50 s.Scaleout.p90 s.Scaleout.p99 s.Scaleout.mean
          s.Scaleout.max)
  in
  show "time-to-first-boot" r.Scaleout.ttfb;
  show "time-to-devirt" r.Scaleout.ttdv;
  Logs.app (fun m ->
      m
        "  admission: peak queue %d, peak in service %d, per-server leases \
         [%s]"
        r.Scaleout.peak_queue r.Scaleout.peak_in_service
        (Array.to_list r.Scaleout.admitted_per_server
        |> List.map string_of_int
        |> String.concat " "));
  Logs.app (fun m ->
      m "  storage tier: %.1f MB served, %d failover(s)"
        (float_of_int r.Scaleout.server_bytes /. 1e6)
        r.Scaleout.failovers);
  show_watchdog watchdog;
  write_obs ~jsonl ?filter:(prefix_filter filter) tracer trace_out metrics
    metrics_out;
  0

(* --- watch: live fleet-health dashboard over a seeded deployment --- *)

let spark_blocks =
  [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
     "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline samples =
  match List.map snd samples with
  | [] -> ""
  | vs ->
    let lo = List.fold_left min infinity vs in
    let hi = List.fold_left max neg_infinity vs in
    let buf = Buffer.create (3 * List.length vs) in
    List.iter
      (fun v ->
        let i =
          if hi <= lo then 0
          else int_of_float (7.999 *. ((v -. lo) /. (hi -. lo)))
        in
        Buffer.add_string buf spark_blocks.(max 0 (min 7 i)))
      vs;
    Buffer.contents buf

let scalar_value metrics key =
  match Metrics.find metrics key with
  | Some v -> Metrics.scalar v
  | None -> 0.0

(* Keys worth a sparkline when no --filter narrows the view; shown in
   this order, skipping any not yet tracked. *)
let default_spark_keys =
  [ "fleet.sched.queue_depth";
    "fleet.sched.in_service";
    "copy.active";
    "copy.bytes";
    "net.bytes_delivered";
    "vblade.inflight|server=vblade0" ]

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let spark_keys ~filtered timeseries =
  if filtered then take 8 (Timeseries.keys timeseries)
  else
    List.filter
      (fun k -> Timeseries.status timeseries k <> None)
      default_spark_keys

let render_frame ~metrics ~timeseries ~watchdog ~filtered ~now =
  let stage s = scalar_value metrics ("fleet.stage|stage=" ^ s) in
  Logs.app (fun m ->
      m "-- t=%8.2fs  sweep %-4d keys %-4d alerts %d --"
        (float_of_int now /. 1e9)
        (Timeseries.sweeps timeseries)
        (Timeseries.nkeys timeseries)
        (Watchdog.alert_count watchdog));
  Logs.app (fun m ->
      m
        "   stages: vmm_init %.0f  discover %.0f  copy %.0f  devirt %.0f  \
         done %.0f | queue %.0f  in-service %.0f"
        (stage "vmm_init") (stage "discover") (stage "copy") (stage "devirt")
        (scalar_value metrics "fleet.devirtualized")
        (scalar_value metrics "fleet.sched.queue_depth")
        (scalar_value metrics "fleet.sched.in_service"));
  List.iter
    (fun key ->
      match Timeseries.raw ~n:32 timeseries key with
      | [] -> ()
      | samples ->
        let _, last = List.nth samples (List.length samples - 1) in
        Logs.app (fun m ->
            m "   %-32s %s %s" key (sparkline samples)
              (Timeseries.fmt_float last)))
    (spark_keys ~filtered timeseries);
  match Watchdog.firing watchdog with
  | [] -> ()
  | f ->
    Logs.app (fun m ->
        m "   firing: %s"
          (String.concat ", " (List.map (fun (r, k) -> r ^ "(" ^ k ^ ")") f)))

let watch_cmd () machines replicas limit image_mb seed crash restart
    interval_ms refresh filter rules min_alerts ts_out om_out =
  if interval_ms <= 0 then begin
    Logs.err (fun m -> m "--interval-ms must be positive (got %d)" interval_ms);
    exit 2
  end;
  if refresh < 1 then begin
    Logs.err (fun m -> m "--refresh must be >= 1 (got %d)" refresh);
    exit 2
  end;
  let crashes = List.map (parse_fault_spec "crash") crash in
  let restarts = List.map (parse_fault_spec "restart") restart in
  let rules =
    match rules with
    | [] -> default_fleet_rules ()
    | specs ->
      List.map
        (fun s ->
          try Watchdog.rule_of_string s
          with Invalid_argument msg ->
            Logs.err (fun m -> m "%s" msg);
            exit 2)
        specs
  in
  let metrics = Metrics.create () in
  let timeseries =
    Timeseries.create
      ~interval_ns:(Time.ms interval_ms)
      ?filter:(prefix_filter filter) metrics
  in
  let watchdog = Watchdog.create rules in
  (* Wire the watchdog first so each frame reflects the sweep that was
     just evaluated, then the dashboard subscriber. *)
  Watchdog.attach watchdog timeseries;
  let filtered = filter <> None in
  Timeseries.on_sample timeseries (fun ~now ->
      if Timeseries.sweeps timeseries mod refresh = 0 then
        render_frame ~metrics ~timeseries ~watchdog ~filtered ~now);
  Logs.app (fun m ->
      m
        "Watching fleet: %d machine(s), %d replica(s), %d MB image — sample \
         every %d ms, frame every %d sweep(s)"
        machines replicas image_mb interval_ms refresh);
  let r =
    Scaleout.deploy_fleet ~seed ~image_mb ~limit_per_server:limit ~crashes
      ~restarts ~metrics ~timeseries ~watchdog ~machines ~replicas ()
  in
  Logs.app (fun m ->
      m
        "done: ttfb p50 %.2fs max %.2fs | ttdv p50 %.2fs max %.2fs | %d \
         failover(s), %d sweep(s)"
        r.Scaleout.ttfb.Scaleout.p50 r.Scaleout.ttfb.Scaleout.max
        r.Scaleout.ttdv.Scaleout.p50 r.Scaleout.ttdv.Scaleout.max
        r.Scaleout.failovers (Timeseries.sweeps timeseries));
  show_watchdog watchdog;
  Option.iter
    (fun path ->
      Timeseries.write_csv timeseries path;
      Logs.app (fun m ->
          m "timeseries: %d key(s) -> %s" (Timeseries.nkeys timeseries) path))
    ts_out;
  Option.iter
    (fun path ->
      Timeseries.write_openmetrics timeseries path;
      Logs.app (fun m -> m "openmetrics: -> %s" path))
    om_out;
  if Watchdog.alert_count watchdog < min_alerts then begin
    Logs.err (fun m ->
        m "expected at least %d alert(s), saw %d" min_alerts
          (Watchdog.alert_count watchdog));
    1
  end
  else 0

(* --- report: provisioning analytics + allocation profile --- *)

module Analytics = Bmcast_obs.Analytics
module Profile = Bmcast_obs.Profile
module Os_guest = Bmcast_guest.Os

let report_cmd () machines replicas image_mb seed slo_s detailed output =
  (* The per-operation table needs the op-level spans (AoE commands,
     copy-on-read redirects, background-copy chunks) in addition to the
     boot pipeline; record exactly those categories so fleet-scale runs
     stay inside the ring. *)
  let categories =
    if detailed then [ "boot"; "aoe"; "mediator"; "bgcopy" ] else [ "boot" ]
  in
  let tracer = Trace.create ~capacity:(1 lsl 22) ~categories () in
  let profile = Profile.create () in
  Logs.app (fun m ->
      m "Fleet report: %d machine(s), %d replica(s), %d MB image, seed %d"
        machines replicas image_mb seed);
  let r =
    Scaleout.deploy_fleet ~seed ~image_mb ~trace:tracer ~profile ~slo_s
      ~boot_profile:Os_guest.cloud_minimal ~machines ~replicas ()
  in
  let a = r.Scaleout.analytics in
  Logs.app (fun m -> m "%s" (Analytics.to_text a));
  Logs.app (fun m -> m "%s" (Profile.to_text profile));
  (match output with
  | Some path ->
    (* Same-seed runs are byte-identical in the "deterministic"
       section; the allocation figures depend on the host runtime and
       are quarantined under "nondeterministic". *)
    let oc = open_out_bin path in
    Printf.fprintf oc
      {|{"report":"bmcast-fleet","machines":%d,"replicas":%d,"image_mb":%d,"seed":%d,
"deterministic":%s,
"nondeterministic":%s}
|}
      machines replicas image_mb seed (Analytics.to_json a)
      (Profile.to_json profile);
    close_out oc;
    Logs.app (fun m -> m "report: -> %s" path)
  | None -> ());
  if Profile.mismatches profile > 0 then begin
    Logs.err (fun m ->
        m "profiler observed %d mismatched scope exits"
          (Profile.mismatches profile));
    1
  end
  else 0

(* --- compare: startup-time comparison (Figure 4 on demand) --- *)

let compare_cmd () image_gb =
  Bmcast_experiments.Fig04_startup.run ~image_gb ();
  0

(* --- params: print the calibrated model constants --- *)

let params () () =
  let p = Params.default ~image_sectors:Params.image_32gb_sectors in
  Logs.app (fun m -> m "BMcast deployment parameters (32 GB image):");
  Logs.app (fun m ->
      m "  chunk                 %d sectors (%d KB)" p.Params.chunk_sectors
        (p.Params.chunk_sectors / 2));
  Logs.app (fun m ->
      m "  VMM-write interval    %s" (Time.to_string p.Params.write_interval));
  Logs.app (fun m ->
      m "  suspend interval      %s" (Time.to_string p.Params.suspend_interval));
  Logs.app (fun m ->
      m "  guest IO threshold    %.0f IOs/s" p.Params.guest_io_threshold);
  Logs.app (fun m ->
      m "  poll interval         %s" (Time.to_string p.Params.poll_interval));
  Logs.app (fun m ->
      m "  VMM memory            %d MB" (p.Params.vmm_mem_bytes / 1024 / 1024));
  Logs.app (fun m ->
      m "  VM-exit cost          %s" (Time.to_string p.Params.exit_cost));
  Logs.app (fun m ->
      m "  deployment CPU steal  %.1f%%" (p.Params.deploy_steal *. 100.0));
  0

let () =
  let open Cmdliner in
  let verbosity =
    let quiet =
      Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress all output.")
    in
    let verbose =
      Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print debug detail.")
    in
    Term.(const setup_logs $ quiet $ verbose)
  in
  let image_gb =
    Arg.(value & opt int 8 & info [ "image-gb" ] ~docv:"GB" ~doc:"OS image size")
  in
  let disk =
    Arg.(value & opt string "ahci" & info [ "disk" ] ~docv:"KIND" ~doc:"ahci or ide")
  in
  let watch =
    Arg.(value & flag & info [ "watch" ] ~doc:"print deployment progress")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace of the run to $(docv).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write a metrics snapshot (JSON) to $(docv).")
  in
  let jsonl =
    Arg.(
      value & flag
      & info [ "jsonl" ]
          ~doc:"Write the trace as JSON-lines instead of Chrome JSON.")
  in
  let filter =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter" ] ~docv:"PREFIX"
          ~doc:
            "Restrict metric output to keys starting with $(docv) \
             (e.g. $(b,fleet.) or $(b,vblade.)).")
  in
  let crash =
    Arg.(
      value & opt_all string []
      & info [ "crash" ] ~docv:"MS:REPLICA"
          ~doc:"crash replica $(i,REPLICA) $(i,MS) ms after fleet start \
                (repeatable)")
  in
  let restart =
    Arg.(
      value & opt_all string []
      & info [ "restart" ] ~docv:"MS:REPLICA"
          ~doc:"restart replica $(i,REPLICA) $(i,MS) ms after fleet start \
                (repeatable)")
  in
  let trace_sample =
    Arg.(
      value & opt int 1
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Record every $(docv)th trace event per category (1 = record \
             all). Sampling keeps fleet-scale traces within the ring \
             buffer at a proportional cost in completeness.")
  in
  let deploy_cmd =
    Cmd.v
      (Cmd.info "deploy" ~doc:"stream-deploy one bare-metal instance")
      Term.(
        const deploy $ verbosity $ image_gb $ disk $ watch $ trace_out
        $ metrics_out $ filter $ jsonl $ trace_sample)
  in
  let compare_cmd =
    Cmd.v
      (Cmd.info "compare" ~doc:"compare startup time across deployment methods")
      Term.(const compare_cmd $ verbosity $ image_gb)
  in
  let scenario =
    Arg.(
      value
      & opt string "crash-mid-copy"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"fault scenario (or 'random' for a seeded random plan)")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed")
  in
  let image_mb =
    Arg.(
      value & opt int 256
      & info [ "image-mb" ] ~docv:"MB" ~doc:"OS image size in MB")
  in
  let chaos_cmd =
    Cmd.v
      (Cmd.info "chaos"
         ~doc:"deploy under a named fault scenario and check invariants")
      Term.(
        const chaos $ verbosity $ scenario $ seed $ image_mb $ trace_out
        $ metrics_out $ filter $ jsonl $ trace_sample)
  in
  let trace_scenario =
    Arg.(
      value
      & opt string "crash-mid-copy"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            "fault scenario to run under ('none' for a clean deployment, \
             'random' for a seeded random plan)")
  in
  let trace_output =
    Arg.(
      value
      & opt string "bmcast.trace.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"trace output path")
  in
  let trace_image_gb =
    Arg.(
      value
      & opt (some int) None
      & info [ "image-gb" ] ~docv:"GB"
          ~doc:"OS image size in GB (overrides $(b,--image-mb))")
  in
  let trace_cmd =
    Cmd.v
      (Cmd.info "trace"
         ~doc:
           "run a seeded deployment and export its execution trace \
            (Chrome/Perfetto format)")
      Term.(
        const trace_cmd $ verbosity $ trace_scenario $ seed $ image_mb
        $ trace_image_gb $ trace_output $ jsonl $ metrics_out $ filter
        $ trace_sample)
  in
  let params_cmd =
    Cmd.v
      (Cmd.info "params" ~doc:"print deployment parameters")
      Term.(const params $ verbosity $ const ())
  in
  let fleet_cmd =
    let machines =
      Arg.(
        value & opt int 16
        & info [ "machines" ] ~docv:"N" ~doc:"fleet size (deployments)")
    in
    let replicas =
      Arg.(
        value & opt int 3
        & info [ "replicas" ] ~docv:"N"
            ~doc:"storage replicas exporting the golden image")
    in
    let policy =
      Arg.(
        value
        & opt string "least-outstanding"
        & info [ "policy" ] ~docv:"POLICY"
            ~doc:
              "replica selection: $(b,shard), $(b,shard:<sectors>), \
               $(b,least-outstanding) or $(b,weighted-rtt)")
    in
    let sched =
      Arg.(
        value & opt string "all"
        & info [ "schedule" ] ~docv:"POLICY"
            ~doc:
              "deployment start policy: $(b,all), $(b,waves:<k>) or \
               $(b,stagger:<ms>)")
    in
    let limit =
      Arg.(
        value & opt int 4
        & info [ "limit-per-server" ] ~docv:"N"
            ~doc:"admission limit: concurrent deployments per storage server")
    in
    Cmd.v
      (Cmd.info "fleet"
         ~doc:
           "deploy a fleet of machines against a replicated storage tier \
            under admission control")
      Term.(
        const fleet_cmd $ verbosity $ machines $ replicas $ policy $ sched
        $ limit $ image_mb $ seed $ crash $ restart $ trace_out $ metrics_out
        $ filter $ jsonl $ trace_sample)
  in
  let watch_cmd =
    let machines =
      Arg.(
        value & opt int 16
        & info [ "machines" ] ~docv:"N" ~doc:"fleet size (deployments)")
    in
    let replicas =
      Arg.(
        value & opt int 3
        & info [ "replicas" ] ~docv:"N"
            ~doc:"storage replicas exporting the golden image")
    in
    let limit =
      Arg.(
        value & opt int 4
        & info [ "limit-per-server" ] ~docv:"N"
            ~doc:"admission limit: concurrent deployments per storage server")
    in
    let interval_ms =
      Arg.(
        value & opt int 1000
        & info [ "interval-ms" ] ~docv:"MS"
            ~doc:"sampling interval in virtual milliseconds")
    in
    let refresh =
      Arg.(
        value & opt int 5
        & info [ "refresh" ] ~docv:"N"
            ~doc:"render a dashboard frame every $(docv) sweeps")
    in
    let rule =
      Arg.(
        value & opt_all string []
        & info [ "rule" ] ~docv:"SPEC"
            ~doc:
              "watchdog rule (repeatable): $(b,NAME:KEY>VAL[@HOLD]), \
               $(b,NAME:KEY<VAL[@HOLD]), $(b,NAME:rate(KEY)>VAL), \
               $(b,NAME:absent(KEY)@N) or $(b,NAME:stale(KEY)@N). \
               Default: $(b,server-down:vblade.up<0.5).")
    in
    let min_alerts =
      Arg.(
        value & opt int 0
        & info [ "min-alerts" ] ~docv:"N"
            ~doc:
              "exit non-zero unless at least $(docv) watchdog alert(s) \
               fired (CI smoke assertion)")
    in
    let ts_out =
      Arg.(
        value
        & opt (some string) None
        & info [ "timeseries-out" ] ~docv:"FILE"
            ~doc:"write the sampled time series as CSV to $(docv)")
    in
    let om_out =
      Arg.(
        value
        & opt (some string) None
        & info [ "openmetrics-out" ] ~docv:"FILE"
            ~doc:"write the final sweep as OpenMetrics text to $(docv)")
    in
    Cmd.v
      (Cmd.info "watch"
         ~doc:
           "deploy a fleet and render a live fleet-health dashboard (stage \
            occupancy, sparklines, watchdog alerts) from the in-run \
            time-series sampler")
      Term.(
        const watch_cmd $ verbosity $ machines $ replicas $ limit $ image_mb
        $ seed $ crash $ restart $ interval_ms $ refresh $ filter $ rule
        $ min_alerts $ ts_out $ om_out)
  in
  let report_cmd =
    let machines =
      Arg.(
        value & opt int 1000
        & info [ "machines" ] ~docv:"N" ~doc:"fleet size (deployments)")
    in
    let replicas =
      Arg.(
        value & opt int 16
        & info [ "replicas" ] ~docv:"N"
            ~doc:"storage replicas exporting the golden image")
    in
    let report_image_mb =
      Arg.(
        value & opt int 8
        & info [ "image-mb" ] ~docv:"MB" ~doc:"OS image size in MB")
    in
    let slo =
      Arg.(
        value & opt float 120.0
        & info [ "slo" ] ~docv:"SECONDS"
            ~doc:"provisioning-time SLO target evaluated by the report")
    in
    let detailed =
      Arg.(
        value & flag
        & info [ "detailed" ]
            ~doc:
              "also record per-operation spans (AoE commands, copy-on-read \
               redirects, copy chunks) for the per-operation latency table")
    in
    let output =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:
              "write the report as JSON to $(docv) (deterministic analytics \
               and non-deterministic allocation figures in separate \
               sections)")
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "run a seeded fleet deployment and report boot-stage latency \
            percentiles, critical-path attribution, SLO compliance and the \
            top-allocators table")
      Term.(
        const report_cmd $ verbosity $ machines $ replicas $ report_image_mb
        $ seed $ slo $ detailed $ output)
  in
  let group =
    Cmd.group
      (Cmd.info "bmcastctl" ~doc:"BMcast bare-metal deployment control")
      [ deploy_cmd;
        chaos_cmd;
        trace_cmd;
        compare_cmd;
        fleet_cmd;
        watch_cmd;
        report_cmd;
        params_cmd ]
  in
  exit (Cmd.eval' group)
