(* Engine hot-path benchmark: scheduler churn (binary heap vs timer
   wheel at fleet-scale pending-event counts) and a full-simulation
   workload, both reported as events/sec and minor-heap words allocated
   per event.

   [run] writes the snapshot as BENCH_engine.json (the committed
   baseline CI diffs against); [check] re-measures and fails when the
   fresh wheel or whole-simulation throughput regresses more than 25%
   against the committed snapshot. *)

open Bmcast_experiments
module Heap = Bmcast_engine.Heap
module Wheel = Bmcast_engine.Timer_wheel
module Prng = Bmcast_engine.Prng
module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time

type rate = { events_per_sec : float; minor_words_per_event : float }

(* Wall-clock + minor-allocation cost of [f], amortized over [ops]
   events. [Gc.minor] first so the allocation delta starts from an
   empty minor heap. *)
let measure ~ops f =
  Gc.minor ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  f ();
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  { events_per_sec = (if dt > 0.0 then float_of_int ops /. dt else infinity);
    minor_words_per_event = dw /. float_of_int ops }

(* Steady-state churn: [pending] timers armed, then [ops] cycles of
   pop-min / re-arm at a random future offset — the event-queue access
   pattern of a large fleet where every pop schedules a successor. *)
let churn_pending = 32_768
let churn_ops = 2_000_000

let heap_churn () =
  let h = Heap.create () in
  let prng = Prng.create 11 in
  for _ = 1 to churn_pending do
    Heap.push h (Prng.int prng 1_000_000) ()
  done;
  measure ~ops:churn_ops (fun () ->
      for _ = 1 to churn_ops do
        match Heap.pop h with
        | None -> assert false
        | Some (t, ()) -> Heap.push h (t + 1 + Prng.int prng 1_000_000) ()
      done)

let wheel_churn () =
  let w = Wheel.create ~dummy:() () in
  let prng = Prng.create 11 in
  for _ = 1 to churn_pending do
    ignore (Wheel.push w (Prng.int prng 1_000_000) () : Wheel.token)
  done;
  measure ~ops:churn_ops (fun () ->
      for _ = 1 to churn_ops do
        let t = Wheel.next_time w in
        Wheel.pop_exn w;
        ignore (Wheel.push w (t + 1 + Prng.int prng 1_000_000) () : Wheel.token)
      done)

(* Whole-engine throughput: [procs] concurrent processes, each a chain
   of [sleeps_per_proc] random sleeps — every event crosses the full
   effects-handler path (perform, continuation park, wheel, resume). *)
let sim_procs = 20_000
let sim_sleeps_per_proc = 100

let sim_workload () =
  let sim = Sim.create ~seed:5 () in
  let prng = Prng.create 17 in
  for i = 0 to sim_procs - 1 do
    Sim.spawn_at sim
      ~name:(if i = 0 then "worker" else "w")
      Time.zero
      (fun () ->
        for _ = 1 to sim_sleeps_per_proc do
          Sim.sleep (Time.us (1 + Prng.int prng 5_000))
        done)
  done;
  let rate = measure ~ops:1 (fun () -> Sim.run sim) in
  let events = Sim.events_executed sim in
  let scale = 1.0 /. float_of_int events in
  ( events,
    { events_per_sec = rate.events_per_sec /. scale;
      minor_words_per_event = rate.minor_words_per_event *. scale } )

(* Fleet workload: the real full-stack hot path (AoE frames through the
   fabric, MMIO polling through the mediators, scratch buffers through
   the proto layer) at cloud-burst scale, with the allocation profiler
   attributing the scoped categories. This is the number the
   whole-stack allocation diet is accountable to; the synthetic [sim]
   workload above isolates the engine. *)
let fleet_machines = 250
let fleet_replicas = 16

(* Aggregate minor words per call across the profile categories matching
   [pred] (e.g. every "mmio."-prefixed category). -1 when no call was
   scoped — distinct from a genuine 0, and never gated. *)
let profile_words_per_call prof pred =
  let calls, words =
    List.fold_left
      (fun (c, w) r ->
        let open Bmcast_obs.Profile in
        if pred r.row_cat then (c + r.calls, w +. r.minor_words) else (c, w))
      (0, 0.0)
      (Bmcast_obs.Profile.rows prof)
  in
  if calls = 0 then -1.0 else words /. float_of_int calls

let fleet_deploy ?profile () =
  Scaleout.deploy_fleet ~seed:42 ~image_mb:8
    ~boot_profile:Bmcast_guest.Os.cloud_minimal ?profile
    ~machines:fleet_machines ~replicas:fleet_replicas ()

let fleet_workload () =
  (* Headline rate from an unprofiled run — the profiler's own scope
     bookkeeping (GC counter snapshots per enter/exit) would inflate
     the per-event figure it is supposed to attribute. A second,
     profiled run supplies the per-category breakdown. *)
  let events = ref 0 in
  let rate =
    measure ~ops:1 (fun () ->
        events := (fleet_deploy ()).Scaleout.sim_events)
  in
  let scale = 1.0 /. float_of_int !events in
  let prof = Bmcast_obs.Profile.create () in
  ignore (fleet_deploy ~profile:prof () : Scaleout.result);
  ( !events,
    { events_per_sec = rate.events_per_sec /. scale;
      minor_words_per_event = rate.minor_words_per_event *. scale },
    profile_words_per_call prof (String.equal "net.send"),
    profile_words_per_call prof (fun cat ->
        String.length cat >= 5 && String.sub cat 0 5 = "mmio.") )

(* --- report + JSON --- *)

let report label r =
  Report.row
    ~label:(Printf.sprintf "%s events/sec" label)
    ~units:"M/s" (r.events_per_sec /. 1e6);
  Report.row
    ~label:(Printf.sprintf "%s minor words/event" label)
    ~units:"w" r.minor_words_per_event

let rate_json r =
  Printf.sprintf {|{"events_per_sec":%.0f,"minor_words_per_event":%.2f}|}
    r.events_per_sec r.minor_words_per_event

let write_json path ~heap ~wheel ~sim_events ~sim ~fleet_events ~fleet
    ~net_send_wpc ~mmio_wpc =
  let oc = open_out path in
  Printf.fprintf oc
    {|{"experiment":"engine",
  "churn":{"pending":%d,"ops":%d,
    "heap":%s,
    "wheel":%s,
    "wheel_speedup":%.2f},
  "sim":{"procs":%d,"sleeps_per_proc":%d,"events":%d,
    "full":%s},
  "fleet":{"machines":%d,"replicas":%d,"events":%d,
    "full":%s,
    "net_send_words_per_call":%.2f,
    "mmio_words_per_call":%.2f}}
|}
    churn_pending churn_ops (rate_json heap) (rate_json wheel)
    (wheel.events_per_sec /. heap.events_per_sec)
    sim_procs sim_sleeps_per_proc sim_events (rate_json sim)
    fleet_machines fleet_replicas fleet_events (rate_json fleet)
    net_send_wpc mmio_wpc;
  close_out oc

let run_all () =
  Report.section
    (Printf.sprintf
       "Engine hot path: scheduler churn (%d pending), full-sim and \
        fleet throughput"
       churn_pending);
  let heap = heap_churn () in
  let wheel = wheel_churn () in
  let sim_events, sim = sim_workload () in
  let fleet_events, fleet, net_send_wpc, mmio_wpc = fleet_workload () in
  report "heap churn" heap;
  report "wheel churn" wheel;
  Report.row ~label:"wheel vs heap churn" ~units:"x speedup"
    (wheel.events_per_sec /. heap.events_per_sec);
  report "full sim" sim;
  report
    (Printf.sprintf "fleet (%d machines)" fleet_machines)
    fleet;
  Report.row ~label:"fleet net.send" ~units:"w/call" net_send_wpc;
  Report.row ~label:"fleet mmio.*" ~units:"w/call" mmio_wpc;
  (heap, wheel, sim_events, sim, fleet_events, fleet, net_send_wpc, mmio_wpc)

let run ~out () =
  let heap, wheel, sim_events, sim, fleet_events, fleet, net_send_wpc, mmio_wpc
      =
    run_all ()
  in
  write_json out ~heap ~wheel ~sim_events ~sim ~fleet_events ~fleet
    ~net_send_wpc ~mmio_wpc;
  Report.note "wrote %s" out

(* --- regression check against the committed snapshot --- *)

(* Every float that follows an occurrence of ["key":] in [s], in
   order. BENCH_engine.json is machine-written by [write_json] above,
   so positional extraction (heap, wheel, sim) is reliable and spares a
   JSON-parser dependency. *)
let numbers_after key s =
  let key = Printf.sprintf "%S:" key in
  let klen = String.length key and n = String.length s in
  let is_num = function
    | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go i acc =
    if i + klen > n then List.rev acc
    else if String.sub s i klen = key then begin
      let stop = ref (i + klen) in
      while !stop < n && is_num s.[!stop] do incr stop done;
      match float_of_string_opt (String.sub s (i + klen) (!stop - i - klen)) with
      | Some v -> go !stop (v :: acc)
      | None -> go !stop acc
    end
    else go (i + 1) acc
  in
  go 0 []

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let regression_threshold = 0.75

(* Allocation gate: >25% growth in minor words per event fails. The
   comparison gets one word of absolute slack because the wheel-churn
   baseline is ~0 words/event, where a pure ratio test would trip on
   measurement noise (or divide by zero). *)
let alloc_threshold = 1.25
let alloc_slack_words = 1.0

let check ~committed () =
  let baseline = read_file committed in
  let heap, wheel, sim_events, sim, fleet_events, fleet, net_send_wpc, mmio_wpc
      =
    run_all ()
  in
  let fresh = "BENCH_engine.fresh.json" in
  write_json fresh ~heap ~wheel ~sim_events ~sim ~fleet_events ~fleet
    ~net_send_wpc ~mmio_wpc;
  Report.note "wrote %s" fresh;
  (* [write_json] emits events_per_sec / minor_words_per_event in the
     fixed order heap, wheel, sim, fleet. The heap tier is informational
     (it exists to show the wheel speedup), so it is never gated. *)
  let throughput_ok =
    match numbers_after "events_per_sec" baseline with
    | [ _heap_base; wheel_base; sim_base; fleet_base ] ->
      let gate label base now =
        let ratio = now /. base in
        Report.row ~label:(Printf.sprintf "%s vs %s" label committed)
          ~units:"x baseline" ratio;
        if ratio < regression_threshold then begin
          Printf.eprintf
            "engine regression: %s %.0f events/sec < %.0f%% of committed \
             %.0f\n"
            label now (100.0 *. regression_threshold) base;
          false
        end
        else true
      in
      let ok_wheel = gate "wheel churn" wheel_base wheel.events_per_sec in
      let ok_sim = gate "full sim" sim_base sim.events_per_sec in
      let ok_fleet = gate "fleet" fleet_base fleet.events_per_sec in
      ok_wheel && ok_sim && ok_fleet
    | nums ->
      Printf.eprintf
        "engine check: expected 4 events_per_sec entries in %s, found %d\n"
        committed (List.length nums);
      false
  in
  (* Allocation gate, shared by the per-event and per-call (profile
     category) comparisons: >25% growth plus one word of absolute slack
     fails. A negative baseline means the category was never scoped in
     the committed run — nothing to gate against. *)
  let alloc_gate ~units label base now =
    Report.row
      ~label:(Printf.sprintf "%s alloc vs %s" label committed)
      ~units:(units ^ " vs baseline")
      (now -. base);
    if base >= 0.0 && now > (base *. alloc_threshold) +. alloc_slack_words
    then begin
      Printf.eprintf
        "engine allocation regression: %s %.2f minor %s > %.0f%% of \
         committed %.2f (+%.1fw slack)\n"
        label now units (100.0 *. alloc_threshold) base alloc_slack_words;
      false
    end
    else true
  in
  let alloc_ok =
    match numbers_after "minor_words_per_event" baseline with
    | [ _heap_base; wheel_base; sim_base; fleet_base ] ->
      let gate = alloc_gate ~units:"words/event" in
      let ok_wheel = gate "wheel churn" wheel_base wheel.minor_words_per_event in
      let ok_sim = gate "full sim" sim_base sim.minor_words_per_event in
      let ok_fleet = gate "fleet" fleet_base fleet.minor_words_per_event in
      ok_wheel && ok_sim && ok_fleet
    | nums ->
      Printf.eprintf
        "engine check: expected 4 minor_words_per_event entries in %s, \
         found %d\n"
        committed (List.length nums);
      false
  in
  (* Per-category diet gates: the pooled fabric send path and the
     untagged-int MMIO path must stay lean, not just the aggregate. *)
  let category_ok key now =
    match numbers_after key baseline with
    | [ base ] -> alloc_gate ~units:"words/call" key base now
    | nums ->
      Printf.eprintf "engine check: expected 1 %s entry in %s, found %d\n"
        key committed (List.length nums);
      false
  in
  let net_send_ok = category_ok "net_send_words_per_call" net_send_wpc in
  let mmio_ok = category_ok "mmio_words_per_call" mmio_wpc in
  throughput_ok && alloc_ok && net_send_ok && mmio_ok
