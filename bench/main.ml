(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Figures 4-14), the design-choice ablations, the multi-instance
   scale-up study, and Bechamel micro-benchmarks of the simulator's hot
   paths.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig4 fig10
     dune exec bench/main.exe -- micro *)

open Bmcast_experiments

(* --- Bechamel micro-benchmarks of simulator hot paths --- *)

let micro_tests () =
  let open Bechamel in
  let heap_churn =
    let h = Bmcast_engine.Heap.create () in
    let prng = Bmcast_engine.Prng.create 7 in
    Test.make ~name:"heap push+pop"
      (Staged.stage (fun () ->
           Bmcast_engine.Heap.push h (Bmcast_engine.Prng.int prng 1_000_000) ();
           ignore (Bmcast_engine.Heap.pop h)))
  in
  let bitmap_fill =
    let bm = Bmcast_core.Bitmap.create ~sectors:(1 lsl 20) in
    let pos = ref 0 in
    Test.make ~name:"bitmap fill_range(64)"
      (Staged.stage (fun () ->
           ignore
             (Bmcast_core.Bitmap.fill_range bm ~lba:!pos ~count:64 : int);
           pos := (!pos + 64) land ((1 lsl 20) - 65)))
  in
  let bitmap_scan =
    let bm = Bmcast_core.Bitmap.create ~sectors:(1 lsl 20) in
    ignore (Bmcast_core.Bitmap.fill_range bm ~lba:0 ~count:((1 lsl 20) - 1) : int);
    Test.make ~name:"bitmap find_empty_run (worst case)"
      (Staged.stage (fun () ->
           ignore
             (Bmcast_core.Bitmap.find_empty_run bm ~from:0 ~max:2048
               : (int * int) option)))
  in
  let extent_set =
    let m = Bmcast_storage.Extent_map.create () in
    let prng = Bmcast_engine.Prng.create 9 in
    Test.make ~name:"extent_map set"
      (Staged.stage (fun () ->
           Bmcast_storage.Extent_map.set m
             ~lba:(Bmcast_engine.Prng.int prng 1_000_000)
             ~count:64
             (Bmcast_engine.Prng.int prng 4)))
  in
  let aoe_codec =
    let hdr =
      { Bmcast_proto.Aoe.major = 1;
        minor = 2;
        command = Bmcast_proto.Aoe.Ata_read;
        tag = 12345;
        frag = 3;
        is_response = true;
        error = false;
        lba = 987654321;
        count = 17 }
    in
    Test.make ~name:"aoe encode+decode"
      (Staged.stage (fun () ->
           ignore
             (Bmcast_proto.Aoe.decode_header
                (Bmcast_proto.Aoe.encode_header hdr)
               : Bmcast_proto.Aoe.header)))
  in
  let prng_draw =
    let prng = Bmcast_engine.Prng.create 3 in
    Test.make ~name:"prng zipf"
      (Staged.stage (fun () ->
           ignore (Bmcast_engine.Prng.zipf prng ~n:10_000 ~theta:0.99 : int)))
  in
  [ heap_churn; bitmap_fill; bitmap_scan; extent_set; aoe_codec; prng_draw ]

let run_micro () =
  let open Bechamel in
  Report.section "Micro-benchmarks (Bechamel, ns per run)";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> Report.row ~label:name ~units:"ns/run" t
          | Some [] | None -> Report.note "%s: no estimate" name)
        analyzed)
    (micro_tests ())

(* --- experiment registry --- *)

(* [metrics_dir] turns on per-phase metrics snapshots for the
   experiments that support them, written as BENCH_<name>.json. *)
let experiments ~metrics_dir =
  let out name =
    Option.map
      (fun dir -> Filename.concat dir (Printf.sprintf "BENCH_%s.json" name))
      metrics_dir
  in
  [ ("fig4", fun () -> Fig04_startup.run ?metrics_out:(out "fig4") ());
    ( "fig4-quick",
      fun () ->
        Fig04_startup.run ~image_gb:4 ?metrics_out:(out "fig4_quick") () );
    ("fig5", fun () -> Fig05_database.run ());
    ("fig6", fun () -> Fig06_mpi.run ());
    ("fig7", fun () -> Fig07_kernbench.run ());
    ("fig8", fun () -> Fig08_threads.run ());
    ("fig9", fun () -> Fig09_memory.run ());
    ("fig10", fun () -> Fig10_storage_tput.run ());
    ("fig11", fun () -> Fig11_storage_lat.run ());
    ("fig12", fun () -> Fig12_13_infiniband.run ());
    ("fig13", fun () -> Fig12_13_infiniband.run ());
    ("fig14", fun () -> Fig14_moderation.run ());
    ("ablations", fun () -> Ablations.run ());
    ("scaleup", fun () -> Scaleup.run ());
    ( "fleet",
      fun () ->
        (* The fleet sweep always snapshots: BENCH_fleet.json is the
           artifact CI uploads. It covers three regimes: the replica
           sweep (256 MB images), the cloud-burst scale sweep
           (250/1,000 clients, minimal guests), and the
           distribution-crossover sweep (replica fan-out vs P2P vs
           multicast under constrained uplinks). *)
        let metrics_out =
          Option.value (out "fleet") ~default:"BENCH_fleet.json"
        in
        let std = Scaleout.run () in
        let scale = Scaleout.run_scale () in
        (* The crossover curve also lands in its own snapshot so CI can
           upload it as a standalone artifact. *)
        let crossover =
          Scaleout.run_crossover ~metrics_out:"BENCH_crossover.json" ()
        in
        Scaleout.write_metrics metrics_out (std @ scale @ crossover);
        Report.note "wrote %s" metrics_out );
    ( "fleet10k",
      fun () ->
        (* Opt-in (several minutes): the 10,000-machine burst the
           engine rework targets. *)
        ignore
          (Scaleout.run_scale ~client_counts:[ 10_000 ] ~replicas:64
             ?metrics_out:(out "fleet10k") ()
            : Scaleout.result list) );
    ( "engine",
      fun () ->
        let out =
          Option.value (out "engine") ~default:"BENCH_engine.json"
        in
        Engine_bench.run ~out () );
    ("micro", run_micro) ]

(* "all" runs the fig12/fig13 pair once. *)
let all_keys =
  [ "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
    "fig12"; "fig14"; "ablations"; "scaleup"; "micro" ]

(* "quick": the sub-minute figures, with fig4 on a smaller image. *)
let quick_keys =
  [ "fig4-quick"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12";
    "micro" ]

let run_named experiments name =
  match List.assoc_opt name experiments with
  | Some f ->
    f ();
    true
  | None ->
    Printf.eprintf "unknown experiment %S\n" name;
    false

let main metrics_dir fleet engine check names =
  match check with
  | Some committed ->
    (* bench --engine --check FILE: regression gate for CI. *)
    if Engine_bench.check ~committed () then 0 else 1
  | None ->
    let experiments = experiments ~metrics_dir in
    let names =
      match (names, fleet || engine) with
      | [], true -> []  (* bench --fleet/--engine: just those sweeps *)
      | ([] | [ "all" ]), _ -> all_keys
      | [ "quick" ], _ -> quick_keys
      | names, _ -> names
    in
    let append key wanted names =
      if wanted && not (List.mem key names) then names @ [ key ] else names
    in
    let names = names |> append "fleet" fleet |> append "engine" engine in
    Printf.printf
      "BMcast evaluation harness - regenerating %d experiment group(s)\n%!"
      (List.length names);
    if List.for_all (run_named experiments) names then 0 else 1

let () =
  let open Cmdliner in
  let names = Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT") in
  let metrics_dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "metrics-dir" ] ~docv:"DIR"
          ~doc:
            "Write per-experiment metrics snapshots (BENCH_<name>.json) \
             into $(docv).")
  in
  let fleet =
    Arg.(
      value & flag
      & info [ "fleet" ]
          ~doc:
            "Run the fleet scale-out sweep (machines x storage replicas \
             plus the cloud-burst scale sweep) and write \
             BENCH_fleet.json. Alone it runs just the sweep; with \
             experiment names it is appended to them.")
  in
  let engine =
    Arg.(
      value & flag
      & info [ "engine" ]
          ~doc:
            "Run the engine hot-path benchmark (heap vs timer-wheel \
             churn, full-simulation events/sec and allocations per \
             event) and write BENCH_engine.json. Alone it runs just the \
             benchmark; with experiment names it is appended to them.")
  in
  let check =
    Arg.(
      value
      & opt (some file) None
      & info [ "check" ] ~docv:"BASELINE"
          ~doc:
            "Re-measure the engine benchmark, write \
             BENCH_engine.fresh.json, and exit non-zero if wheel or \
             full-simulation events/sec fall below 75% of the committed \
             $(docv). Overrides every other argument.")
  in
  let doc =
    "Regenerate the BMcast paper's tables and figures (fig4-fig14, \
     ablations, scaleup, fleet, micro, or the 'quick' subset; default: all)"
  in
  let cmd =
    Cmd.v
      (Cmd.info "bmcast-bench" ~doc)
      Term.(const main $ metrics_dir $ fleet $ engine $ check $ names)
  in
  exit (Cmd.eval' cmd)
