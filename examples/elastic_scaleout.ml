(* Elastic scale-out: the cloud provider's view. Demand spikes and N
   fresh bare-metal instances must join the pool NOW. Deployments go
   through the fleet scheduler (admission control, least-outstanding
   replica routing) against a replicated storage tier; the same fleet on
   a single storage server shows what the replicas buy.

     dune exec examples/elastic_scaleout.exe -- --instances 8 --servers 3 *)

module Scaleout = Bmcast_experiments.Scaleout

let usage () =
  prerr_endline
    "usage: elastic_scaleout [--instances N] [--servers N] [--image-mb N]";
  exit 2

let () =
  let instances = ref 8 and servers = ref 3 and image_mb = ref 64 in
  let rec parse = function
    | [] -> ()
    | "--instances" :: v :: rest -> set instances v rest
    | "--servers" :: v :: rest -> set servers v rest
    | "--image-mb" :: v :: rest -> set image_mb v rest
    | _ -> usage ()
  and set r v rest =
    match int_of_string_opt v with
    | Some n when n > 0 ->
      r := n;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let instances = !instances and servers = !servers and image_mb = !image_mb in
  Printf.printf
    "== Elastic scale-out: %d instances, %d storage server(s), %d MB image \
     ==\n\n"
    instances servers image_mb;
  let deploy replicas =
    Scaleout.deploy_fleet ~image_mb ~machines:instances ~replicas ()
  in
  let fleet = deploy servers in
  Printf.printf
    "replicated tier (%s routing, schedule %s, admission 4/server):\n"
    fleet.Scaleout.policy fleet.Scaleout.sched;
  Printf.printf "  serving (p50/max):        %7.2f / %7.2f s\n"
    fleet.Scaleout.ttfb.Scaleout.p50 fleet.Scaleout.ttfb.Scaleout.max;
  Printf.printf "  de-virtualized (p50/max): %7.2f / %7.2f s\n"
    fleet.Scaleout.ttdv.Scaleout.p50 fleet.Scaleout.ttdv.Scaleout.max;
  Printf.printf "  leases per server: [%s], peak admission queue %d\n"
    (Array.to_list fleet.Scaleout.admitted_per_server
    |> List.map string_of_int
    |> String.concat " ")
    fleet.Scaleout.peak_queue;
  let single = if servers = 1 then fleet else deploy 1 in
  if servers > 1 then begin
    Printf.printf "\nsame fleet on one storage server:\n";
    Printf.printf "  serving (p50/max):        %7.2f / %7.2f s\n"
      single.Scaleout.ttfb.Scaleout.p50 single.Scaleout.ttfb.Scaleout.max;
    Printf.printf "  de-virtualized (p50/max): %7.2f / %7.2f s\n"
      single.Scaleout.ttdv.Scaleout.p50 single.Scaleout.ttdv.Scaleout.max
  end;
  Printf.printf
    "\nfleet fully bare-metal after %.2f s; %d server(s) give a %.2fx \
     speedup over one (median time-to-devirt)\n"
    fleet.Scaleout.ttdv.Scaleout.max servers
    (single.Scaleout.ttdv.Scaleout.p50 /. fleet.Scaleout.ttdv.Scaleout.p50);
  (* The example doubles as a regression check: a replicated tier must
     never be slower than the single-server baseline. *)
  if fleet.Scaleout.ttdv.Scaleout.p50 > single.Scaleout.ttdv.Scaleout.p50
  then begin
    prerr_endline "FAIL: replicated tier slower than a single server";
    exit 1
  end
