(* Tests for the fleet layer: replica-set routing and failover, the
   deployment scheduler, and the end-to-end fleet experiment —
   including the determinism contract (same seed => byte-identical
   trace) with a replica crash injected mid-copy. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Vblade = Bmcast_proto.Vblade
module Aoe = Bmcast_proto.Aoe
module Trace = Bmcast_obs.Trace
module Analytics = Bmcast_obs.Analytics
module Metrics = Bmcast_obs.Metrics
module Timeseries = Bmcast_obs.Timeseries
module Watchdog = Bmcast_obs.Watchdog
module Replica_set = Bmcast_fleet.Replica_set
module Scheduler = Bmcast_fleet.Scheduler
module Scaleout = Bmcast_experiments.Scaleout

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- rig: a sim with [n] image-filled vblade targets --- *)

let small_profile =
  { Disk.hdd_constellation2 with Disk.capacity_sectors = 1 lsl 16 }

let rig ?(seed = 42) n =
  let sim = Sim.create ~seed () in
  let fabric = Fabric.create sim () in
  let vblades =
    List.init n (fun i ->
        let d = Disk.create sim small_profile in
        Disk.fill_with_image d;
        Vblade.create sim ~fabric ~name:(Printf.sprintf "v%d" i) ~disk:d ())
  in
  (sim, vblades)

let hdr ?(cmd = Aoe.Ata_read) ?(count = 8) ~tag ~lba () =
  { Aoe.major = 1;
    minor = 0;
    command = cmd;
    tag;
    frag = 0;
    is_response = false;
    error = false;
    lba;
    count }

let response h = { h with Aoe.is_response = true }

(* Map a routed port back to the replica index. *)
let idx_of_port rset port =
  let rec go i =
    if i >= Replica_set.size rset then Alcotest.fail "unknown port"
    else if Replica_set.port_of rset i = port then i
    else go (i + 1)
  in
  go 0

(* --- replica set: policies --- *)

let test_policy_strings () =
  let roundtrip s =
    match Replica_set.policy_of_string s with
    | Some p -> Replica_set.policy_to_string p
    | None -> Alcotest.failf "did not parse %S" s
  in
  Alcotest.(check string) "shard" "shard:131072" (roundtrip "shard");
  Alcotest.(check string) "shard:n" "shard:4096" (roundtrip "shard:4096");
  Alcotest.(check string) "least" "least-outstanding"
    (roundtrip "least-outstanding");
  Alcotest.(check string) "rtt" "weighted-rtt" (roundtrip "weighted-rtt");
  check_bool "junk rejected" true
    (Replica_set.policy_of_string "round-robin" = None);
  check_bool "bad shard rejected" true
    (Replica_set.policy_of_string "shard:0" = None)

let test_wave_policy_strings () =
  let roundtrip s =
    match Scheduler.wave_policy_of_string s with
    | Some p -> Scheduler.wave_policy_to_string p
    | None -> Alcotest.failf "did not parse %S" s
  in
  Alcotest.(check string) "all" "all" (roundtrip "all");
  Alcotest.(check string) "waves" "waves:4" (roundtrip "waves:4");
  Alcotest.(check string) "stagger" "stagger:250ms" (roundtrip "stagger:250");
  check_bool "junk rejected" true
    (Scheduler.wave_policy_of_string "bursty" = None);
  check_bool "waves:0 rejected" true
    (Scheduler.wave_policy_of_string "waves:0" = None)

let test_shard_routing () =
  let sim, vblades = rig 3 in
  let rset =
    Replica_set.create sim ~policy:(Replica_set.Static_shard 1000) vblades
  in
  (* lba / 1000 mod 3 picks the home replica. *)
  List.iteri
    (fun tag (lba, expect) ->
      let port = Replica_set.route rset (hdr ~tag ~lba ()) in
      check_int (Printf.sprintf "lba %d" lba) expect (idx_of_port rset port))
    [ (0, 0); (999, 0); (1000, 1); (2500, 2); (3000, 0); (4001, 1) ]

let test_shard_skips_crashed_owner () =
  let sim, vblades = rig 3 in
  let rset =
    Replica_set.create sim ~policy:(Replica_set.Static_shard 1000) vblades
  in
  Vblade.crash (List.nth vblades 1);
  let port = Replica_set.route rset (hdr ~tag:7 ~lba:1000 ()) in
  (* Home owner (1) is down: the next replica (2) takes the stripe. *)
  check_int "next live owner" 2 (idx_of_port rset port)

let test_least_outstanding_spreads () =
  let sim, vblades = rig 3 in
  let rset = Replica_set.create sim vblades in
  let where tag = idx_of_port rset (Replica_set.route rset (hdr ~tag ~lba:0 ())) in
  check_int "first -> 0" 0 (where 1);
  check_int "second -> 1" 1 (where 2);
  check_int "third -> 2" 2 (where 3);
  check_int "wraps to least" 0 (where 4);
  check_int "outstanding 0" 2 (Replica_set.outstanding rset 0);
  check_int "outstanding 1" 1 (Replica_set.outstanding rset 1);
  (* A response drains the count and frees the slot. *)
  Replica_set.observe rset (response (hdr ~tag:1 ~lba:0 ()));
  check_int "drained" 1 (Replica_set.outstanding rset 0);
  check_int "routed counts" 2 (Replica_set.requests_routed rset 0)

let test_weighted_rtt_valid_and_seeded () =
  (* Whatever the draw, the chosen replica is valid; the same seed gives
     the same sequence of choices. *)
  let choices seed =
    let sim, vblades = rig ~seed 3 in
    let rset =
      Replica_set.create sim ~policy:Replica_set.Weighted_rtt vblades
    in
    List.init 20 (fun tag ->
        idx_of_port rset (Replica_set.route rset (hdr ~tag ~lba:0 ())))
  in
  let a = choices 7 and b = choices 7 in
  check_bool "deterministic for a seed" true (a = b);
  check_bool "indices valid" true (List.for_all (fun i -> i >= 0 && i < 3) a)

let test_retransmit_fails_over () =
  let sim, vblades = rig 3 in
  let rset = Replica_set.create sim vblades in
  let h = hdr ~tag:42 ~lba:0 () in
  let first = idx_of_port rset (Replica_set.route rset h) in
  check_int "no failover yet" 0 (Replica_set.failovers rset);
  (* Same tag again = retransmission: must move off the silent replica
     (now on probation) and count a failover. *)
  let second = idx_of_port rset (Replica_set.route rset h) in
  check_bool "moved" true (first <> second);
  check_int "failover counted" 1 (Replica_set.failovers rset);
  check_int "old drained" 0 (Replica_set.outstanding rset first);
  check_int "new charged" 1 (Replica_set.outstanding rset second)

let test_crashed_replica_excluded () =
  let sim, vblades = rig 3 in
  let rset = Replica_set.create sim vblades in
  Vblade.crash (List.nth vblades 0);
  for tag = 1 to 12 do
    let i = idx_of_port rset (Replica_set.route rset (hdr ~tag ~lba:0 ())) in
    check_bool "avoids crashed" true (i <> 0)
  done

let test_all_down_still_routes () =
  (* With every replica dead the set must still return some port (the
     retransmission loop keeps the command alive until a restart). *)
  let sim, vblades = rig 2 in
  let rset = Replica_set.create sim vblades in
  List.iter Vblade.crash vblades;
  let i = idx_of_port rset (Replica_set.route rset (hdr ~tag:1 ~lba:0 ())) in
  check_bool "valid index" true (i = 0 || i = 1)

let test_rtt_estimate_updates () =
  let sim, vblades = rig 2 in
  let rset = Replica_set.create sim vblades in
  let h = hdr ~tag:5 ~lba:0 ~count:4 () in
  ignore (Replica_set.route rset h : int);
  check_bool "unmeasured" true (Replica_set.rtt_estimate_ms rset 0 = 0.0);
  (* Responses arrive instantly at t=0 here, so the sample is 0 but the
     flight completes; use a second sim-free check: count=4 read answered
     by two 2-sector fragments completes only on the second. *)
  Replica_set.observe rset (response { h with Aoe.count = 2 });
  check_int "still in flight" 1 (Replica_set.outstanding rset 0);
  Replica_set.observe rset (response { h with Aoe.count = 2 });
  check_int "completed" 0 (Replica_set.outstanding rset 0);
  ignore sim

(* --- scheduler --- *)

(* Run [f] as a process inside a fresh sim and return its result. *)
let in_sim ?(seed = 42) f =
  let sim = Sim.create ~seed () in
  let result = ref None in
  Sim.spawn_at sim ~name:"test" Time.zero (fun () -> result := Some (f sim));
  Sim.run sim;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "scenario did not complete"

let sleepy_jobs n span =
  List.init n (fun i ->
      (Printf.sprintf "job%d" i, fun (_ : int) -> Sim.sleep span))

let test_scheduler_admission_cap () =
  let stats, peak_q, peak_s, admitted =
    in_sim (fun sim ->
        let s =
          Scheduler.create sim ~servers:2 ~limit_per_server:2 ()
        in
        let stats = Scheduler.run s (sleepy_jobs 8 (Time.s 1)) in
        ( stats,
          Scheduler.peak_queue s,
          Scheduler.peak_in_service s,
          Scheduler.admitted_per_server s ))
  in
  check_int "all ran" 8 (List.length stats);
  check_bool "capacity respected" true (peak_s <= 4);
  check_bool "queue built up" true (peak_q >= 4);
  check_int "every job leased" 8 (Array.fold_left ( + ) 0 admitted);
  (* Least-loaded leasing balances a uniform fleet. *)
  check_int "balanced" 4 admitted.(0);
  (* 8 jobs of 1 s through 4 slots: the second batch queues ~1 s. *)
  let delayed =
    List.filter (fun j -> Scheduler.queue_delay_s j > 0.5) stats
  in
  check_int "second batch waited" 4 (List.length delayed)

let test_scheduler_waves () =
  let stats =
    in_sim (fun sim ->
        let s =
          Scheduler.create sim ~servers:4 ~limit_per_server:4
            ~policy:(Scheduler.Waves 2) ()
        in
        Scheduler.run s (sleepy_jobs 6 (Time.s 1)))
  in
  (* Wave w starts only after wave w-1 finished: starts come in strictly
     separated pairs. *)
  let starts = List.map (fun j -> Time.to_float_s j.Scheduler.started) stats in
  let sorted = List.sort compare starts in
  (match sorted with
  | [ a; b; c; d; e; f ] ->
    check_bool "pairs together" true (a = b && c = d && e = f);
    check_bool "wave 2 after wave 1 done" true (c -. a >= 1.0);
    check_bool "wave 3 after wave 2 done" true (e -. c >= 1.0)
  | _ -> Alcotest.fail "expected 6 stats");
  check_bool "no overlap beyond wave" true
    (in_sim (fun sim ->
         let s =
           Scheduler.create sim ~servers:4 ~limit_per_server:4
             ~policy:(Scheduler.Waves 2) ()
         in
         ignore (Scheduler.run s (sleepy_jobs 6 (Time.s 1)));
         Scheduler.peak_in_service s <= 2))

let test_scheduler_stagger () =
  let stats =
    in_sim (fun sim ->
        let s =
          Scheduler.create sim ~servers:4 ~limit_per_server:4
            ~policy:(Scheduler.Stagger (Time.ms 200)) ()
        in
        Scheduler.run s (sleepy_jobs 4 (Time.s 1)))
  in
  List.iteri
    (fun i j ->
      check_bool
        (Printf.sprintf "job %d released at %dms" i (i * 200))
        true
        (Time.to_float_s j.Scheduler.started
        >= (float_of_int i *. 0.2) -. 1e-9))
    stats

let test_scheduler_single_use () =
  check_bool "second run raises" true
    (in_sim (fun sim ->
         let s = Scheduler.create sim ~servers:1 () in
         ignore (Scheduler.run s (sleepy_jobs 1 (Time.ms 1)));
         try
           ignore (Scheduler.run s (sleepy_jobs 1 (Time.ms 1)));
           false
         with Invalid_argument _ -> true))

(* --- end-to-end: fleet deployment, failover, determinism --- *)

(* 16 machines x 3 replicas with replica 1 crashed mid-copy and never
   restarted: every deployment must still de-virtualize (deploy_fleet
   raises otherwise), surviving replicas absorb the load via failover. *)
let fleet_run ~trace () =
  Scaleout.deploy_fleet ~seed:7 ~image_mb:32 ~machines:16 ~replicas:3
    ~crashes:[ (Time.s 10, 1) ]
    ~trace ()

let test_fleet_failover_converges () =
  let r = fleet_run ~trace:Trace.null () in
  check_bool "failovers happened" true (r.Scaleout.failovers > 0);
  check_bool "devirt after boot" true
    (r.Scaleout.ttdv.Scaleout.p50 > r.Scaleout.ttfb.Scaleout.p50);
  check_int "three servers leased" 3
    (Array.length r.Scaleout.admitted_per_server)

let test_fleet_deterministic_trace () =
  let export () =
    let tr = Trace.create ~capacity:(1 lsl 20) () in
    let r = fleet_run ~trace:tr () in
    (Trace.to_chrome tr, Trace.to_jsonl tr, r)
  in
  let chrome_a, jsonl_a, ra = export () in
  let chrome_b, jsonl_b, rb = export () in
  check_bool "traces non-trivial" true (String.length chrome_a > 1000);
  check_bool "chrome export byte-identical" true (chrome_a = chrome_b);
  check_bool "jsonl export byte-identical" true (jsonl_a = jsonl_b);
  check_bool "summaries identical" true
    (ra.Scaleout.ttdv = rb.Scaleout.ttdv
    && ra.Scaleout.ttfb = rb.Scaleout.ttfb
    && ra.Scaleout.failovers = rb.Scaleout.failovers)

(* The engine-rework contract at scale: a 1,000-client cloud-burst run
   (minimal guests, small image, sampled tracer) is bit-for-bit
   reproducible — same seed gives a byte-identical JSONL trace, the
   same event count, and the same latency summaries. This is the test
   that pins the timer wheel's FIFO tie-breaking and the lazy-guest
   accounting across the whole stack. *)
let test_fleet_scale_deterministic_trace () =
  let export () =
    let tr = Trace.create ~capacity:(1 lsl 20) ~sample_every:64 () in
    let r =
      Scaleout.deploy_fleet ~seed:11 ~image_mb:4
        ~boot_profile:Bmcast_guest.Os.cloud_minimal ~machines:1000
        ~replicas:16 ~trace:tr ()
    in
    (Trace.to_jsonl tr, r)
  in
  let jsonl_a, ra = export () in
  let jsonl_b, rb = export () in
  check_bool "sampled trace non-trivial" true (String.length jsonl_a > 1000);
  check_bool "jsonl export byte-identical" true (jsonl_a = jsonl_b);
  check_int "event counts identical" ra.Scaleout.sim_events
    rb.Scaleout.sim_events;
  check_bool "summaries identical" true
    (ra.Scaleout.ttdv = rb.Scaleout.ttdv
    && ra.Scaleout.ttfb = rb.Scaleout.ttfb
    && ra.Scaleout.failovers = rb.Scaleout.failovers)

(* The report determinism contract on a seeded 250-client cloud burst:
   the analytics section of the report (stage table, critical path,
   SLO) derives from virtual-time spans only, so two same-seed runs
   must render byte-identical JSON and text. *)
let test_fleet_report_deterministic () =
  let go () =
    let r =
      Scaleout.deploy_fleet ~seed:11 ~image_mb:4
        ~boot_profile:Bmcast_guest.Os.cloud_minimal ~machines:250 ~replicas:16
        ()
    in
    r.Scaleout.analytics
  in
  let a = go () and b = go () in
  check_int "all machines folded" 250 (Analytics.machine_count a);
  check_int "slo saw every boot" 250 (Analytics.slo a).Analytics.boots;
  check_bool "json byte-identical" true
    (String.equal (Analytics.to_json a) (Analytics.to_json b));
  check_bool "text byte-identical" true
    (String.equal (Analytics.to_text a) (Analytics.to_text b))

(* Stage-sum = boot-total on a real deployment: per machine, the five
   pipeline spans (queue, vmm_init, discover, copy, devirt) must tile
   the boot timeline with no gaps or overlaps, so their durations sum
   exactly (integer ns) to last-span-end minus first-span-start. *)
let test_fleet_stage_tiling () =
  let tr = Trace.create ~capacity:(1 lsl 16) ~categories:[ "boot" ] () in
  let r =
    Scaleout.deploy_fleet ~seed:5 ~image_mb:4
      ~boot_profile:Bmcast_guest.Os.cloud_minimal ~machines:32 ~replicas:4
      ~trace:tr ()
  in
  let per_machine = Hashtbl.create 32 in
  Trace.iter tr (fun (e : Trace.event) ->
      match (e.Trace.phase, List.assoc_opt "m" e.Trace.args) with
      | Trace.P_span, Some (Trace.Str m) ->
        let spans, first, last, sum =
          Option.value
            (Hashtbl.find_opt per_machine m)
            ~default:(0, max_int, min_int, 0)
        in
        Hashtbl.replace per_machine m
          ( spans + 1,
            min first e.Trace.ts,
            max last (e.Trace.ts + e.Trace.dur),
            sum + e.Trace.dur )
      | _ -> ());
  check_int "dropped no boot spans" 0 (Trace.dropped tr);
  check_int "every machine traced" 32 (Hashtbl.length per_machine);
  Hashtbl.iter
    (fun m (spans, first, last, sum) ->
      check_int (m ^ " has the full pipeline") 5 spans;
      check_int (m ^ " stages tile the boot") (last - first) sum)
    per_machine;
  (* and the analytics fold agrees with the raw spans *)
  check_int "analytics saw the fleet" 32
    (Analytics.machine_count r.Scaleout.analytics);
  List.iter
    (fun m ->
      let _, _, _, sum = Hashtbl.find per_machine m in
      match Analytics.boot_total_ms r.Scaleout.analytics m with
      | Some total_ms ->
        check_bool (m ^ " boot total matches trace") true
          (Float.abs (total_ms -. (float_of_int sum /. 1e6)) < 1e-6)
      | None -> Alcotest.failf "machine %s missing from analytics" m)
    (Analytics.machine_names r.Scaleout.analytics)

(* The telemetry determinism contract on a seeded 250-client cloud
   burst: the sampler sweeps on virtual time and reads only
   deterministic registry state, so two same-seed runs with the same
   sampling config must export byte-identical CSV and OpenMetrics. *)
let test_fleet_timeseries_deterministic () =
  let go () =
    let metrics = Metrics.create () in
    let ts = Timeseries.create ~interval_ns:(Time.ms 500) metrics in
    let (_ : Scaleout.result) =
      Scaleout.deploy_fleet ~seed:11 ~image_mb:4
        ~boot_profile:Bmcast_guest.Os.cloud_minimal ~machines:250 ~replicas:16
        ~metrics ~timeseries:ts ()
    in
    (Timeseries.to_csv ts, Timeseries.to_openmetrics ts, Timeseries.sweeps ts)
  in
  let csv_a, om_a, sweeps_a = go () in
  let csv_b, om_b, sweeps_b = go () in
  check_bool "sampler swept" true (sweeps_a > 10);
  check_int "sweep counts identical" sweeps_a sweeps_b;
  check_bool "csv non-trivial" true (String.length csv_a > 1000);
  check_bool "csv byte-identical" true (String.equal csv_a csv_b);
  check_bool "openmetrics byte-identical" true (String.equal om_a om_b)

(* Watchdog detection latency against an injected server crash: replica
   0 dies at 4.2 s into a run sampled every 500 ms, so the server-down
   rule must fire on the next sweep after the fault — latency strictly
   positive (the crash is not sweep-aligned) and bounded by the
   sampling interval. *)
let test_fleet_watchdog_detects_crash () =
  let interval = Time.ms 500 in
  let metrics = Metrics.create () in
  let ts = Timeseries.create ~interval_ns:interval metrics in
  let wd =
    Watchdog.create
      [ Watchdog.threshold ~name:"server-down" ~key:"vblade.up" Watchdog.Below
          0.5 ]
  in
  (* Supplying both sampler and watchdog means we own the wiring. *)
  Watchdog.attach wd ts;
  let r =
    Scaleout.deploy_fleet ~seed:7 ~image_mb:32 ~machines:16 ~replicas:3
      ~crashes:[ (Time.ms 4200, 0) ]
      ~metrics ~timeseries:ts ~watchdog:wd ()
  in
  check_bool "watchdog alerted" true (Watchdog.alert_count wd >= 1);
  check_int "result mirrors alert count" (Watchdog.alert_count wd)
    r.Scaleout.alert_count;
  check_int "crash expectation resolved" 0 (Watchdog.pending_expectations wd);
  match Watchdog.detections wd with
  | [] -> Alcotest.fail "no detection recorded"
  | d :: _ ->
    check_bool "detection labelled" true
      (String.length d.Watchdog.d_label > 0);
    let lat = Watchdog.detection_latency_ns d in
    check_bool "latency positive" true (lat > 0);
    check_bool "latency bounded by sampling interval" true (lat <= interval)

(* --- distribution modes: P2P swarm + multicast carousel --- *)

let small_fleet ?(seed = 7) ?(machines = 12) ?(replicas = 2) ?uplink_mbps
    ?peer_crashes ?chaos ?crashes ?restarts ?trace ~distribution () =
  Scaleout.deploy_fleet ~seed ~image_mb:4
    ~boot_profile:Bmcast_guest.Os.cloud_minimal ~digest_images:true
    ?uplink_mbps ?peer_crashes ?chaos ?crashes ?restarts ?trace ~distribution
    ~machines ~replicas ()

let test_p2p_offloads_and_converges () =
  let r = small_fleet ~distribution:`P2p ~uplink_mbps:50. () in
  check_bool "gossip announcements folded" true
    (r.Scaleout.gossip_announces > 0);
  check_bool "commands peer-routed" true (r.Scaleout.p2p_routed > 0);
  check_bool "bytes served peer-to-peer" true
    (r.Scaleout.p2p_served_bytes > 0);
  check_bool "every image converged" true (r.Scaleout.images_ok = Some true)

let test_mcast_fills_and_converges () =
  let r = small_fleet ~distribution:`Mcast () in
  check_bool "carousel transmitted" true (r.Scaleout.mcast_tx_bytes > 0);
  check_bool "clients filled from the carousel" true
    (r.Scaleout.mcast_fill_bytes > 0);
  check_bool "every image converged" true (r.Scaleout.images_ok = Some true)

(* The equivalence contract: whatever path delivered each sector —
   replica unicast, a peer's page cache, or the multicast carousel —
   every client disk must equal the golden image, so the three modes
   produce the same fleet-wide digest. *)
let test_cross_mode_image_equivalence () =
  let go d =
    let r = small_fleet ~distribution:d () in
    check_bool
      (Scaleout.distribution_to_string d ^ " converged")
      true
      (r.Scaleout.images_ok = Some true);
    r.Scaleout.image_digest
  in
  let u = go `Unicast and p = go `P2p and m = go `Mcast in
  check_bool "digest present" true (u <> None);
  check_bool "p2p image identical to unicast" true (p = u);
  check_bool "mcast image identical to unicast" true (m = u)

(* A peer dies mid-serve: its in-flight and queued requests vanish, the
   requesters' AoE timeouts fire, and the router fails the commands over
   to the replica set — the deployment still converges byte-for-byte. *)
let test_peer_crash_mid_serve_converges () =
  (* t=14 s lands mid second wave: wave-1 peers are actively serving
     wave-2 copy-on-read when every peer dies at once. *)
  let r =
    small_fleet ~distribution:`P2p ~uplink_mbps:25. ~machines:16
      ~peer_crashes:(List.init 16 (fun i -> (Time.s 14, i)))
      ()
  in
  check_bool "peer-routed commands" true (r.Scaleout.p2p_routed > 0);
  check_bool "failovers recorded" true (r.Scaleout.p2p_failovers > 0);
  check_bool "every image converged" true (r.Scaleout.images_ok = Some true)

(* --- QCheck: equivalence + determinism under random fault plans --- *)

(* A fault plan derived deterministically from a QCheck-drawn seed:
   uniform or Gilbert frame loss, a replica crash/restart pair, vblade
   link flaps, and peer crashes (harmless outside P2P mode). Every
   distribution mode faces the same plan. *)
type fault_plan = {
  fp_seed : int;
  loss : Fabric.loss_model;
  vblade_crash : (Time.span * int) list;
  vblade_restart : (Time.span * int) list;
  flaps : (Time.span * Time.span * int) list;  (* down at, up after, idx *)
  fp_peer_crashes : (Time.span * int) list;
}

let fault_plan_of_seed fp_seed =
  let st = Random.State.make [| fp_seed |] in
  let rnd lo hi = lo + Random.State.int st (hi - lo + 1) in
  let loss =
    if Random.State.bool st then
      Fabric.Uniform (float_of_int (rnd 0 30) /. 1000.)
    else
      Fabric.Gilbert
        { p_enter_bad = 0.01;
          p_exit_bad = 0.2;
          loss_good = 0.002;
          loss_bad = float_of_int (rnd 5 20) /. 100. }
  in
  let crash_at = Time.ms (rnd 500 4000) in
  let vblade_crash, vblade_restart =
    if Random.State.bool st then
      ([ (crash_at, 1) ], [ (Time.add crash_at (Time.ms (rnd 500 3000)), 1) ])
    else ([], [])
  in
  let flaps =
    List.init (rnd 0 2) (fun _ ->
        (Time.ms (rnd 200 5000), Time.ms (rnd 50 800), 0))
  in
  let fp_peer_crashes =
    List.init (rnd 0 3) (fun i -> (Time.ms (rnd 1000 6000), i))
  in
  { fp_seed; loss; vblade_crash; vblade_restart; flaps; fp_peer_crashes }

let chaos_of_plan plan sim fabric vblades =
  Fabric.set_loss_model fabric plan.loss;
  List.iter
    (fun (down_at, dur, i) ->
      let p = Vblade.port (List.nth vblades i) in
      let at span f = Sim.schedule sim (Time.add (Sim.now sim) span) f in
      at down_at (fun () -> Fabric.set_link_up p false);
      at (Time.add down_at dur) (fun () -> Fabric.set_link_up p true))
    plan.flaps

let faulted_fleet ?trace plan distribution =
  small_fleet ~seed:(plan.fp_seed land 0xFFFF) ~machines:8 ~distribution
    ~crashes:plan.vblade_crash ~restarts:plan.vblade_restart
    ~peer_crashes:plan.fp_peer_crashes
    ~chaos:(chaos_of_plan plan)
    ?trace ()

(* Under any fault plan, all three distribution modes converge to
   byte-identical per-client images (equal fleet digests), and each mode
   is individually deterministic: the same seed and plan reproduce the
   byte-identical JSONL trace and result summaries. *)
let prop_equivalence_under_faults =
  QCheck.Test.make ~name:"fault-plan equivalence across distribution modes"
    ~count:3
    QCheck.(map fault_plan_of_seed small_nat)
    (fun plan ->
      let u = faulted_fleet plan `Unicast in
      let p = faulted_fleet plan `P2p in
      let m = faulted_fleet plan `Mcast in
      List.for_all
        (fun r -> r.Scaleout.images_ok = Some true)
        [ u; p; m ]
      && p.Scaleout.image_digest = u.Scaleout.image_digest
      && m.Scaleout.image_digest = u.Scaleout.image_digest)

let prop_deterministic_under_faults =
  QCheck.Test.make
    ~name:"fault-plan runs are trace-deterministic per mode" ~count:2
    QCheck.(map fault_plan_of_seed small_nat)
    (fun plan ->
      List.for_all
        (fun d ->
          let export () =
            let tr = Trace.create ~capacity:(1 lsl 18) ~sample_every:16 () in
            let r = faulted_fleet ~trace:tr plan d in
            (Trace.to_jsonl tr, r)
          in
          let ja, ra = export () in
          let jb, rb = export () in
          String.equal ja jb
          && ra.Scaleout.image_digest = rb.Scaleout.image_digest
          && ra.Scaleout.ttdv = rb.Scaleout.ttdv
          && ra.Scaleout.p2p_routed = rb.Scaleout.p2p_routed
          && ra.Scaleout.mcast_fill_bytes = rb.Scaleout.mcast_fill_bytes)
        [ `Unicast; `P2p; `Mcast ])

(* The multicast analogue of the 1,000-client contract: a 250-client
   cloud burst with the carousel running is bit-for-bit reproducible —
   the carousel's unsolicited frames, the write-if-empty races and the
   dedup accounting all replay identically under the same seed. *)
let test_fleet_mcast_scale_deterministic_trace () =
  let export () =
    let tr = Trace.create ~capacity:(1 lsl 20) ~sample_every:64 () in
    let r =
      Scaleout.deploy_fleet ~seed:11 ~image_mb:4
        ~boot_profile:Bmcast_guest.Os.cloud_minimal ~distribution:`Mcast
        ~machines:250 ~replicas:4 ~trace:tr ()
    in
    (Trace.to_jsonl tr, r)
  in
  let jsonl_a, ra = export () in
  let jsonl_b, rb = export () in
  check_bool "sampled trace non-trivial" true (String.length jsonl_a > 1000);
  check_bool "jsonl export byte-identical" true (jsonl_a = jsonl_b);
  check_int "event counts identical" ra.Scaleout.sim_events
    rb.Scaleout.sim_events;
  check_bool "carousel filled bytes" true (ra.Scaleout.mcast_fill_bytes > 0);
  check_int "fill accounting identical" ra.Scaleout.mcast_fill_bytes
    rb.Scaleout.mcast_fill_bytes;
  check_int "dedup accounting identical" ra.Scaleout.mcast_dups
    rb.Scaleout.mcast_dups;
  check_bool "summaries identical" true
    (ra.Scaleout.ttdv = rb.Scaleout.ttdv && ra.Scaleout.ttfb = rb.Scaleout.ttfb)

let test_fleet_replicas_beat_single () =
  (* The tentpole claim at test scale: 8 machines on 1 replica vs 2. *)
  let one =
    Scaleout.deploy_fleet ~image_mb:32 ~machines:8 ~replicas:1 ()
  in
  let two =
    Scaleout.deploy_fleet ~image_mb:32 ~machines:8 ~replicas:2 ()
  in
  check_bool "2 replicas faster (median ttdv)" true
    (two.Scaleout.ttdv.Scaleout.p50 < one.Scaleout.ttdv.Scaleout.p50)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "fleet"
    [ ( "replica_set",
        [ tc "policy strings" `Quick test_policy_strings;
          tc "shard routing" `Quick test_shard_routing;
          tc "shard skips crashed owner" `Quick test_shard_skips_crashed_owner;
          tc "least outstanding spreads" `Quick test_least_outstanding_spreads;
          tc "weighted rtt seeded" `Quick test_weighted_rtt_valid_and_seeded;
          tc "retransmit fails over" `Quick test_retransmit_fails_over;
          tc "crashed replica excluded" `Quick test_crashed_replica_excluded;
          tc "all down still routes" `Quick test_all_down_still_routes;
          tc "fragmented read completion" `Quick test_rtt_estimate_updates ] );
      ( "scheduler",
        [ tc "wave policy strings" `Quick test_wave_policy_strings;
          tc "admission cap" `Quick test_scheduler_admission_cap;
          tc "waves" `Quick test_scheduler_waves;
          tc "stagger" `Quick test_scheduler_stagger;
          tc "single use" `Quick test_scheduler_single_use ] );
      ( "fleet",
        [ tc "failover converges" `Slow test_fleet_failover_converges;
          tc "deterministic trace" `Slow test_fleet_deterministic_trace;
          tc "1000-client deterministic trace" `Slow
            test_fleet_scale_deterministic_trace;
          tc "250-client deterministic report" `Slow
            test_fleet_report_deterministic;
          tc "boot stages tile exactly" `Slow test_fleet_stage_tiling;
          tc "250-client deterministic telemetry" `Slow
            test_fleet_timeseries_deterministic;
          tc "watchdog detects injected crash" `Slow
            test_fleet_watchdog_detects_crash;
          tc "replicas beat single" `Slow test_fleet_replicas_beat_single ] );
      ( "distribution",
        [ tc "p2p offloads and converges" `Slow test_p2p_offloads_and_converges;
          tc "mcast fills and converges" `Slow test_mcast_fills_and_converges;
          tc "cross-mode image equivalence" `Slow
            test_cross_mode_image_equivalence;
          tc "peer crash mid-serve converges" `Slow
            test_peer_crash_mid_serve_converges;
          tc "250-client mcast deterministic trace" `Slow
            test_fleet_mcast_scale_deterministic_trace;
          QCheck_alcotest.to_alcotest ~long:true prop_equivalence_under_faults;
          QCheck_alcotest.to_alcotest ~long:true
            prop_deterministic_under_faults ] ) ]
