(* Tests for the network substrate: Ethernet fabric, NIC rings, IB. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Mmio = Bmcast_hw.Mmio
module Irq = Bmcast_hw.Irq
module Packet = Bmcast_net.Packet
module Fabric = Bmcast_net.Fabric
module Nic = Bmcast_net.Nic
module Ib = Bmcast_net.Ib

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Fabric --- *)

let test_fabric_delivery () =
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let got = ref [] in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b = Fabric.attach fab ~name:"b" (fun p -> got := p :: !got) in
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:1000 (Packet.Raw "hi"));
  Sim.run sim;
  check_int "one frame" 1 (List.length !got);
  let p = List.hd !got in
  check_int "src" (Fabric.port_id a) p.Packet.src;
  check_int "size" 1000 p.Packet.size_bytes

let test_fabric_serialization_time () =
  (* 1 MB spread over jumbo frames on GbE should take ~8.4 ms one-way
     (two serializations: uplink + egress, pipelined, so ~1x + 1 frame). *)
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let done_at = ref Time.zero in
  let frames = 112 (* ~1 MB / 9038 *) in
  let received = ref 0 in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b =
    Fabric.attach fab ~name:"b" (fun _ ->
        incr received;
        if !received = frames then done_at := Sim.now sim)
  in
  Sim.spawn_at sim Time.zero (fun () ->
      for _ = 1 to frames do
        Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:9038 (Packet.Raw "x")
      done);
  Sim.run sim;
  let secs = Time.to_float_s !done_at in
  let expected = float_of_int (frames * 9038) /. 125e6 in
  check_bool
    (Printf.sprintf "%.4fs close to %.4fs" secs expected)
    true
    (secs > expected *. 0.95 && secs < expected *. 1.3)

let test_fabric_mtu_enforced () =
  let sim = Sim.create () in
  let fab = Fabric.create sim ~mtu:1500 () in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  check_bool "oversize rejected" true
    (try
       Fabric.send a ~dst:0 ~size_bytes:9038 (Packet.Raw "x");
       false
     with Invalid_argument _ -> true)

let test_fabric_loss () =
  let sim = Sim.create () in
  let fab = Fabric.create sim ~loss_rate:0.5 () in
  let received = ref 0 in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b = Fabric.attach fab ~name:"b" (fun _ -> incr received) in
  Sim.spawn_at sim Time.zero (fun () ->
      for _ = 1 to 1000 do
        Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:100 (Packet.Raw "x")
      done);
  Sim.run sim;
  check_bool "some lost" true (Fabric.frames_dropped fab > 300);
  check_bool "some delivered" true (!received > 300);
  check_int "conservation" 1000 (!received + Fabric.frames_dropped fab)

let test_fabric_gilbert_bursty_loss () =
  (* Gilbert-Elliott chain with a lossless good state and a fully lossy
     bad state: all drops come from bad-state visits, so losses arrive
     in runs of consecutive frames — the burst pattern the AoE
     retransmission extension has to survive. *)
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  Fabric.set_loss_model fab
    (Fabric.Gilbert
       { p_enter_bad = 0.05; p_exit_bad = 0.25; loss_good = 0.0; loss_bad = 1.0 });
  let n = 2000 in
  let got = ref [] in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b =
    Fabric.attach fab ~name:"b" (fun p ->
        match p.Packet.payload with
        | Packet.Raw s -> got := int_of_string s :: !got
        | _ -> ())
  in
  Sim.spawn_at sim Time.zero (fun () ->
      for i = 0 to n - 1 do
        Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:100
          (Packet.Raw (string_of_int i))
      done);
  Sim.run sim;
  let received = List.length !got in
  check_int "conservation" n (received + Fabric.frames_dropped fab);
  check_bool "some lost" true (Fabric.frames_dropped fab > 0);
  check_bool "most delivered" true (received > n / 2);
  (* At least one burst: two consecutive frame indices both missing. *)
  let delivered = Array.make n false in
  List.iter (fun i -> delivered.(i) <- true) !got;
  let burst = ref false in
  for i = 0 to n - 2 do
    if (not delivered.(i)) && not delivered.(i + 1) then burst := true
  done;
  check_bool "losses are bursty" true !burst

let test_fabric_link_flap () =
  (* Frames sent while either end's link is down are dropped at the
     switch and counted separately; delivery resumes as soon as the
     link returns — no queued ghosts from the outage. *)
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let got = ref [] in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b =
    Fabric.attach fab ~name:"b" (fun p ->
        match p.Packet.payload with
        | Packet.Raw s -> got := int_of_string s :: !got
        | _ -> ())
  in
  check_bool "links start up" true (Fabric.link_up a && Fabric.link_up b);
  Sim.spawn_at sim ~name:"sender" Time.zero (fun () ->
      for i = 0 to 99 do
        Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:100
          (Packet.Raw (string_of_int i));
        Sim.sleep (Time.ms 1)
      done);
  Sim.spawn_at sim ~name:"flapper" (Time.ms 30) (fun () ->
      Fabric.set_link_up b false;
      Sim.sleep (Time.ms 30);
      Fabric.set_link_up b true);
  Sim.run sim;
  let received = List.length !got in
  check_int "conservation" 100 (received + Fabric.frames_dropped fab);
  check_int "all drops are link drops" (Fabric.frames_dropped fab)
    (Fabric.link_drops fab);
  check_bool "outage dropped frames" true (Fabric.link_drops fab >= 20);
  check_bool "frames before the flap delivered" true (List.mem 5 !got);
  check_bool "delivery resumed after the flap" true (List.mem 99 !got)

let test_fabric_nic_stall_delays_delivery () =
  (* A stalled destination NIC holds a frame without dropping it. *)
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let at = ref Time.zero in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b = Fabric.attach fab ~name:"b" (fun _ -> at := Sim.now sim) in
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.stall b (Time.ms 5);
      Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:100 (Packet.Raw "x"));
  Sim.run sim;
  check_bool "delivered" true (!at > Time.zero);
  check_bool "held until the stall expired" true (!at >= Time.ms 5)

let test_fabric_contention_shares_egress () =
  (* Two senders to one destination: total delivery time ~= sum of both
     at the egress port (the server-saturation effect of §5.1). *)
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let received = ref 0 and done_at = ref Time.zero in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b = Fabric.attach fab ~name:"b" (fun _ -> ()) in
  let dst =
    Fabric.attach fab ~name:"dst" (fun _ ->
        incr received;
        if !received = 200 then done_at := Sim.now sim)
  in
  let send_from p =
    for _ = 1 to 100 do
      Fabric.send p ~dst:(Fabric.port_id dst) ~size_bytes:9038 (Packet.Raw "x")
    done
  in
  Sim.spawn_at sim Time.zero (fun () -> send_from a);
  Sim.spawn_at sim Time.zero (fun () -> send_from b);
  Sim.run sim;
  let secs = Time.to_float_s !done_at in
  let one_sender = float_of_int (100 * 9038) /. 125e6 in
  check_bool "egress saturates" true (secs > 1.9 *. one_sender)

(* --- Nic --- *)

type nic_rig = {
  sim : Sim.t;
  fab : Fabric.t;
  nic : Nic.t;
  peer : Fabric.port;
  peer_rx : Packet.t list ref;
}

let nic_rig () =
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let mmio = Mmio.create () in
  let irq = Irq.create sim in
  let nic = Nic.create sim ~mmio ~base:0xE000_0000 ~fabric:fab ~name:"nic" ~irq ~irq_vec:10 in
  let peer_rx = ref [] in
  let peer = Fabric.attach fab ~name:"peer" (fun p -> peer_rx := p :: !peer_rx) in
  { sim; fab; nic; peer; peer_rx }

let test_nic_tx () =
  let r = nic_rig () in
  let h = Nic.raw r.nic in
  let ring = Nic.default_tx_ring r.nic in
  Nic.set_tx_desc r.nic ~ring ~idx:0 ~dst:(Fabric.port_id r.peer) ~size_bytes:500
    (Packet.Raw "one");
  Nic.set_tx_desc r.nic ~ring ~idx:1 ~dst:(Fabric.port_id r.peer) ~size_bytes:600
    (Packet.Raw "two");
  Sim.spawn_at r.sim Time.zero (fun () -> h.Mmio.write Nic.Regs.tdt 2);
  Sim.run r.sim;
  check_int "two frames" 2 (List.length !(r.peer_rx));
  check_int "tdh advanced" 2 (h.Mmio.read Nic.Regs.tdh)

let test_nic_rx_ring () =
  let r = nic_rig () in
  let h = Nic.raw r.nic in
  (* Publish 4 rx buffers. *)
  h.Mmio.write Nic.Regs.rdt 4;
  Sim.spawn_at r.sim Time.zero (fun () ->
      Fabric.send r.peer ~dst:(Fabric.port_id (Nic.port r.nic)) ~size_bytes:700
        (Packet.Raw "hello"));
  Sim.run r.sim;
  check_int "rdh advanced" 1 (h.Mmio.read Nic.Regs.rdh);
  (match Nic.rx_desc r.nic ~ring:(Nic.default_rx_ring r.nic) ~idx:0 with
  | Some p -> check_int "size" 700 p.Packet.size_bytes
  | None -> Alcotest.fail "no frame in rx ring");
  Nic.clear_rx_desc r.nic ~ring:(Nic.default_rx_ring r.nic) ~idx:0

let test_nic_rx_overflow_drops () =
  let r = nic_rig () in
  (* No buffers published: everything drops. *)
  Sim.spawn_at r.sim Time.zero (fun () ->
      for _ = 1 to 3 do
        Fabric.send r.peer ~dst:(Fabric.port_id (Nic.port r.nic)) ~size_bytes:100
          (Packet.Raw "x")
      done);
  Sim.run r.sim;
  check_int "all dropped" 3 (Nic.rx_dropped r.nic)

let test_nic_rx_irq () =
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let mmio = Mmio.create () in
  let irq = Irq.create sim in
  let nic = Nic.create sim ~mmio ~base:0xE000_0000 ~fabric:fab ~name:"nic" ~irq ~irq_vec:10 in
  let fired = ref 0 in
  Irq.register irq ~vec:10 (fun () -> incr fired);
  let peer = Fabric.attach fab ~name:"peer" (fun _ -> ()) in
  let h = Nic.raw nic in
  h.Mmio.write Nic.Regs.rdt 8;
  h.Mmio.write Nic.Regs.ie 1;
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send peer ~dst:(Fabric.port_id (Nic.port nic)) ~size_bytes:100
        (Packet.Raw "x"));
  Sim.run sim;
  check_int "irq" 1 !fired

(* --- Ib --- *)

let test_ib_rdma_latency () =
  let sim = Sim.create () in
  let ib = Ib.create sim () in
  let a = Ib.attach ib ~name:"a" and b = Ib.attach ib ~name:"b" in
  let elapsed = ref 0 in
  Sim.spawn_at sim Time.zero (fun () ->
      let t0 = Sim.clock () in
      Ib.rdma a ~dst:b ~bytes:65536;
      elapsed := Time.diff (Sim.clock ()) t0);
  Sim.run sim;
  (* 64 KB at 3.2 GB/s = 20.5 us + 1.3 us base. *)
  check_bool "latency plausible" true
    (!elapsed > Time.us 20 && !elapsed < Time.us 25)

let test_ib_overhead_adds_to_latency () =
  let sim = Sim.create () in
  let ib = Ib.create sim () in
  let a = Ib.attach ib ~name:"a" and b = Ib.attach ib ~name:"b" in
  let base = ref 0 and virt = ref 0 in
  Sim.spawn_at sim Time.zero (fun () ->
      let t0 = Sim.clock () in
      Ib.rdma a ~dst:b ~bytes:65536;
      base := Time.diff (Sim.clock ()) t0;
      Ib.set_op_overhead a (Time.us 5);
      let t1 = Sim.clock () in
      Ib.rdma a ~dst:b ~bytes:65536;
      virt := Time.diff (Sim.clock ()) t1);
  Sim.run sim;
  check_int "overhead lands on latency" (Time.us 5) (!virt - !base)

let test_ib_bandwidth_hides_overhead () =
  (* Pipelined posts: per-op overhead below the wire time is hidden, so
     virtualized and bare throughput match (Fig 12's explanation). *)
  let run_with overhead =
    let sim = Sim.create () in
    let ib = Ib.create sim () in
    let a = Ib.attach ib ~name:"a" and b = Ib.attach ib ~name:"b" in
    Ib.set_op_overhead a overhead;
    let finish = ref 0 in
    Sim.spawn_at sim Time.zero (fun () ->
        let remaining = ref 1000 in
        for _ = 1 to 1000 do
          Ib.post a ~dst:b ~bytes:65536 ~on_complete:(fun () ->
              decr remaining;
              if !remaining = 0 then finish := Sim.now sim)
        done);
    Sim.run sim;
    float_of_int (1000 * 65536) /. Time.to_float_s !finish
  in
  let bare = run_with 0 and virt = run_with (Time.us 5) in
  check_bool
    (Printf.sprintf "bw %.2f vs %.2f GB/s" (bare /. 1e9) (virt /. 1e9))
    true
    (abs_float (bare -. virt) /. bare < 0.01)

let test_ib_msg_rendezvous () =
  let sim = Sim.create () in
  let ib = Ib.create sim () in
  let a = Ib.attach ib ~name:"a" and b = Ib.attach ib ~name:"b" in
  let got = ref 0 in
  Sim.spawn_at sim Time.zero (fun () -> got := Ib.recv_msg b ~src:a);
  Sim.spawn_at sim (Time.ms 1) (fun () -> Ib.send_msg a ~dst:b ~bytes:4096);
  Sim.run sim;
  check_int "message size" 4096 !got

let test_ib_bytes_counted () =
  let sim = Sim.create () in
  let ib = Ib.create sim () in
  let a = Ib.attach ib ~name:"a" and b = Ib.attach ib ~name:"b" in
  Sim.spawn_at sim Time.zero (fun () -> Ib.rdma a ~dst:b ~bytes:1234);
  Sim.run sim;
  check_int "counted" 1234 (Ib.bytes_transferred ib)

(* --- fabric hot-path bugfixes + frame pool --- *)

(* A rejected send must not open (and leak) a profiler scope: the old
   code entered "net.send" before validating, so the [invalid_arg] path
   left the scope on the stack and poisoned every later attribution. *)
let test_fabric_send_invalid_keeps_profiler_balanced () =
  let prof = Bmcast_obs.Profile.create () in
  let sim = Sim.create ~profile:prof () in
  let fab = Fabric.create sim () in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b = Fabric.attach fab ~name:"b" (fun _ -> ()) in
  Sim.spawn_at sim Time.zero (fun () ->
      (try
         Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:1_000_000
           (Packet.Raw "jumbo");
         Alcotest.fail "oversized send must raise"
       with Invalid_argument _ -> ());
      (try
         Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:0 (Packet.Raw "");
         Alcotest.fail "empty send must raise"
       with Invalid_argument _ -> ());
      Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:1000 (Packet.Raw "ok"));
  Sim.run sim;
  check_int "balanced scopes" 0 (Bmcast_obs.Profile.mismatches prof);
  let send_calls =
    List.fold_left
      (fun acc r ->
        if r.Bmcast_obs.Profile.row_cat = "net.send" then
          acc + r.Bmcast_obs.Profile.calls
        else acc)
      0
      (Bmcast_obs.Profile.rows prof)
  in
  check_int "only the valid send was scoped" 1 send_calls

let stuck_bad_gilbert =
  (* Enters the bad state on the first forwarded frame and never
     leaves; drops everything while bad. *)
  Fabric.Gilbert
    { p_enter_bad = 1.0; p_exit_bad = 0.0; loss_good = 0.0; loss_bad = 1.0 }

let test_fabric_set_loss_rate_resets_gilbert () =
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b = Fabric.attach fab ~name:"b" (fun _ -> ()) in
  Fabric.set_loss_model fab stuck_bad_gilbert;
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:100 (Packet.Raw "x"));
  Sim.run sim;
  check_bool "chain driven into bad state" true (Fabric.loss_in_bad fab);
  Fabric.set_loss_rate fab 0.25;
  check_bool "set_loss_rate resets the channel" false (Fabric.loss_in_bad fab);
  (* And the same contract via set_loss_model, for symmetry. *)
  Fabric.set_loss_model fab stuck_bad_gilbert;
  let c = Fabric.attach fab ~name:"c" (fun _ -> ()) in
  Sim.spawn_at sim (Time.ms 1) (fun () ->
      Fabric.send a ~dst:(Fabric.port_id c) ~size_bytes:100 (Packet.Raw "y"));
  Sim.run sim;
  check_bool "fresh chain re-enters bad from good" true (Fabric.loss_in_bad fab)

(* 10,000 attaches used to re-copy the whole port array each time
   (O(n^2) words); geometric growth keeps this instant, and delivery
   to the last-attached port still works. *)
let test_fabric_attach_scales () =
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let n = 10_000 in
  let hits = ref 0 in
  let first = Fabric.attach fab ~name:"p0" (fun _ -> ()) in
  let last = ref first in
  for i = 1 to n - 1 do
    last :=
      Fabric.attach fab ~name:(if i = n - 1 then "plast" else "p")
        (fun _ -> incr hits)
  done;
  check_int "ids are dense" (n - 1) (Fabric.port_id !last);
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send first ~dst:(Fabric.port_id !last) ~size_bytes:1000
        (Packet.Raw "hi"));
  Sim.run sim;
  check_int "delivered to last port" 1 !hits

let test_fabric_frame_pool_recycles () =
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b = Fabric.attach fab ~name:"b" (fun _ -> ()) in
  Sim.spawn_at sim Time.zero (fun () ->
      for _ = 1 to 50 do
        Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:100 (Packet.Raw "x");
        Sim.sleep (Time.us 100)
      done);
  Sim.run sim;
  let free = Fabric.pool_free_count fab in
  check_bool "frames returned to the pool" true (free > 0);
  (* Reuse, not one record per send: sends were spaced out, so only a
     handful of frames were ever in flight at once. *)
  check_bool "pool holds in-flight peak, not send count" true (free < 10)

let test_fabric_keep_frame_prevents_aliasing () =
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let kept = ref None in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b =
    Fabric.attach fab ~name:"b" (fun p ->
        match !kept with
        | None ->
          Fabric.keep_frame fab;
          kept := Some p
        | Some _ -> ())
  in
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:111 (Packet.Raw "first");
      Sim.sleep (Time.ms 1);
      for _ = 1 to 10 do
        Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:222
          (Packet.Raw "later");
        Sim.sleep (Time.ms 1)
      done);
  Sim.run sim;
  match !kept with
  | None -> Alcotest.fail "first frame not delivered"
  | Some p ->
    (* The kept record must not have been recycled under later traffic. *)
    check_int "kept frame size intact" 111 p.Packet.size_bytes;
    check_bool "kept payload intact" true (p.Packet.payload = Packet.Raw "first");
    Fabric.release_frame fab p;
    check_bool "released payload detached" true
      (p.Packet.payload <> Packet.Raw "first")

(* Without [keep_frame], a handler that squirrels the record away sees
   it recycled once delivery returns — payload replaced by the pool
   sentinel. This is the reuse invariant the ownership contract rests
   on: the fabric owns the record after [rx] unless the handler kept it. *)
let test_fabric_unkept_frame_is_recycled () =
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let stolen = ref None in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b =
    Fabric.attach fab ~name:"b" (fun p ->
        if !stolen = None then stolen := Some p)
  in
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:333 (Packet.Raw "gone"));
  Sim.run sim;
  match !stolen with
  | None -> Alcotest.fail "frame not delivered"
  | Some p ->
    check_bool "payload recycled after rx returned" true
      (p.Packet.payload <> Packet.Raw "gone")

let test_fabric_pooling_off_allocates_fresh () =
  let sim = Sim.create () in
  let fab = Fabric.create sim ~pool_frames:false () in
  let got = ref [] in
  let a = Fabric.attach fab ~name:"a" (fun _ -> ()) in
  let b = Fabric.attach fab ~name:"b" (fun p -> got := p :: !got) in
  Sim.spawn_at sim Time.zero (fun () ->
      for i = 1 to 5 do
        Fabric.send a ~dst:(Fabric.port_id b) ~size_bytes:(100 * i)
          (Packet.Raw "keep");
        Sim.sleep (Time.ms 1)
      done);
  Sim.run sim;
  check_int "all delivered" 5 (List.length !got);
  check_int "nothing pooled" 0 (Fabric.pool_free_count fab);
  (* Un-pooled frames are never recycled: handlers may retain them
     without keep_frame and the contents stay put. *)
  List.iter
    (fun p ->
      check_bool "retained frame intact" true (p.Packet.payload = Packet.Raw "keep"))
    !got

(* --- Fabric: multicast groups --- *)

(* [n] ports joined to a fresh group; returns (fab, group, ports,
   per-port delivery counts, last payload seen per port). *)
let mcast_rig ?(seed = 42) ?loss n =
  let sim = Sim.create ~seed () in
  let fab = Fabric.create sim ?loss_rate:loss () in
  let counts = Array.make n 0 in
  let last = Array.make n None in
  let ports =
    Array.init n (fun i ->
        Fabric.attach fab
          ~name:(Printf.sprintf "m%d" i)
          (fun p ->
            counts.(i) <- counts.(i) + 1;
            last.(i) <- Some p.Packet.payload))
  in
  let g = Fabric.mcast_group fab in
  Array.iter (fun p -> Fabric.mcast_join p ~group:g) ports;
  (sim, fab, g, ports, counts, last)

let test_mcast_fanout_excludes_sender () =
  let sim, fab, g, ports, counts, last = mcast_rig 4 in
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send ports.(0) ~dst:g ~size_bytes:1000 (Packet.Raw "carousel"));
  Sim.run sim;
  check_int "sender excluded" 0 counts.(0);
  for i = 1 to 3 do
    check_int (Printf.sprintf "member %d got one copy" i) 1 counts.(i)
  done;
  check_int "one mcast send" 1 (Fabric.mcast_sent fab);
  check_int "three deliveries" 3 (Fabric.mcast_deliveries fab);
  (* Fan-out copies the frame record but shares the payload: every
     member sees the same physical payload value. *)
  (match (last.(1), last.(2)) with
  | Some a, Some b -> check_bool "payload shared" true (a == b)
  | _ -> Alcotest.fail "missing deliveries")

let test_mcast_non_member_not_delivered () =
  let sim, fab, g, ports, counts, _ = mcast_rig 3 in
  let quiet = ref 0 in
  let _outsider = Fabric.attach fab ~name:"outsider" (fun _ -> incr quiet) in
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send ports.(0) ~dst:g ~size_bytes:500 (Packet.Raw "x"));
  Sim.run sim;
  check_int "outsider silent" 0 !quiet;
  check_int "members heard" 2 (counts.(1) + counts.(2))

let test_mcast_join_idempotent_leave_removes () =
  let sim, fab, g, ports, counts, _ = mcast_rig 3 in
  (* Double-join must not double-deliver. *)
  Fabric.mcast_join ports.(1) ~group:g;
  check_int "membership stable" 3 (Fabric.mcast_members fab ~group:g);
  Fabric.mcast_leave ports.(2) ~group:g;
  check_int "leave removes" 2 (Fabric.mcast_members fab ~group:g);
  Fabric.mcast_leave ports.(2) ~group:g;
  check_int "leave idempotent" 2 (Fabric.mcast_members fab ~group:g);
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send ports.(0) ~dst:g ~size_bytes:500 (Packet.Raw "x"));
  Sim.run sim;
  check_int "joined member: one copy" 1 counts.(1);
  check_int "left member: nothing" 0 counts.(2)

let test_mcast_link_down_member_skipped () =
  let sim, fab, g, ports, counts, _ = mcast_rig 4 in
  Fabric.set_link_up ports.(2) false;
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send ports.(0) ~dst:g ~size_bytes:500 (Packet.Raw "x"));
  Sim.run sim;
  check_int "up members delivered" 1 counts.(1);
  check_int "down member skipped" 0 counts.(2);
  check_int "down member counted as link drop" 1 (Fabric.link_drops fab);
  check_int "deliveries exclude the drop" 2 (Fabric.mcast_deliveries fab)

let test_mcast_loss_rolled_per_member () =
  (* With certain loss every copy drops independently; the send still
     counts, the deliveries do not. *)
  let sim, fab, g, ports, counts, _ = mcast_rig ~loss:1.0 4 in
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send ports.(0) ~dst:g ~size_bytes:500 (Packet.Raw "x"));
  Sim.run sim;
  Array.iter (fun c -> check_int "all lost" 0 c) counts;
  check_int "send counted" 1 (Fabric.mcast_sent fab);
  check_int "no deliveries" 0 (Fabric.mcast_deliveries fab);
  check_int "three member drops" 3 (Fabric.frames_dropped fab)

let test_mcast_original_frame_recycled () =
  (* The fan-out source frame goes back to the pool once copies are cut;
     receivers release their own copies on return. *)
  let sim, fab, g, ports, _, _ = mcast_rig 3 in
  Sim.spawn_at sim Time.zero (fun () ->
      Fabric.send ports.(0) ~dst:g ~size_bytes:500 (Packet.Raw "x"));
  Sim.run sim;
  (* original + 2 copies, all returned *)
  check_int "pool holds all frames" 3 (Fabric.pool_free_count fab);
  ignore ports

let test_mcast_bad_group_rejected () =
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let p = Fabric.attach fab ~name:"p" (fun _ -> ()) in
  check_bool "unallocated group raises" true
    (try
       Fabric.mcast_join p ~group:(-99);
       false
     with Invalid_argument _ -> true);
  check_bool "positive id is not a group" true (not (Fabric.is_mcast 3));
  check_bool "allocated id is a group" true
    (Fabric.is_mcast (Fabric.mcast_group fab))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "net"
    [ ( "fabric",
        [ tc "delivery" `Quick test_fabric_delivery;
          tc "serialization time" `Quick test_fabric_serialization_time;
          tc "mtu enforced" `Quick test_fabric_mtu_enforced;
          tc "loss" `Quick test_fabric_loss;
          tc "gilbert bursty loss" `Quick test_fabric_gilbert_bursty_loss;
          tc "link flap" `Quick test_fabric_link_flap;
          tc "nic stall delays delivery" `Quick
            test_fabric_nic_stall_delays_delivery;
          tc "contention shares egress" `Quick test_fabric_contention_shares_egress;
          tc "send validation keeps profiler balanced" `Quick
            test_fabric_send_invalid_keeps_profiler_balanced;
          tc "set_loss_rate resets gilbert state" `Quick
            test_fabric_set_loss_rate_resets_gilbert;
          tc "attach scales to 10k ports" `Quick test_fabric_attach_scales;
          tc "frame pool recycles" `Quick test_fabric_frame_pool_recycles;
          tc "keep_frame prevents aliasing" `Quick
            test_fabric_keep_frame_prevents_aliasing;
          tc "unkept frame is recycled" `Quick
            test_fabric_unkept_frame_is_recycled;
          tc "pooling off allocates fresh" `Quick
            test_fabric_pooling_off_allocates_fresh ] );
      ( "fabric-mcast",
        [ tc "fan-out excludes sender" `Quick test_mcast_fanout_excludes_sender;
          tc "non-member not delivered" `Quick
            test_mcast_non_member_not_delivered;
          tc "join idempotent, leave removes" `Quick
            test_mcast_join_idempotent_leave_removes;
          tc "link-down member skipped" `Quick
            test_mcast_link_down_member_skipped;
          tc "loss rolled per member" `Quick test_mcast_loss_rolled_per_member;
          tc "original frame recycled" `Quick
            test_mcast_original_frame_recycled;
          tc "bad group rejected" `Quick test_mcast_bad_group_rejected ] );
      ( "nic",
        [ tc "tx" `Quick test_nic_tx;
          tc "rx ring" `Quick test_nic_rx_ring;
          tc "rx overflow drops" `Quick test_nic_rx_overflow_drops;
          tc "rx irq" `Quick test_nic_rx_irq ] );
      ( "ib",
        [ tc "rdma latency" `Quick test_ib_rdma_latency;
          tc "overhead adds to latency" `Quick test_ib_overhead_adds_to_latency;
          tc "bandwidth hides overhead" `Quick test_ib_bandwidth_hides_overhead;
          tc "msg rendezvous" `Quick test_ib_msg_rendezvous;
          tc "bytes counted" `Quick test_ib_bytes_counted ] ) ]
