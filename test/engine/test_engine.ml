(* Tests for the discrete-event simulation engine. *)

module Time = Bmcast_engine.Time
module Heap = Bmcast_engine.Heap
module Wheel = Bmcast_engine.Timer_wheel
module Prng = Bmcast_engine.Prng
module Sim = Bmcast_engine.Sim
module Mailbox = Bmcast_engine.Mailbox
module Semaphore = Bmcast_engine.Semaphore
module Signal = Bmcast_engine.Signal
module Stats = Bmcast_engine.Stats

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Time --- *)

let test_time_units () =
  check_int "us" 1_000 (Time.us 1);
  check_int "ms" 1_000_000 (Time.ms 1);
  check_int "s" 1_000_000_000 (Time.s 1);
  check_int "minutes" 60_000_000_000 (Time.minutes 1);
  check_int "of_float_s" (Time.ms 1500) (Time.of_float_s 1.5);
  check_float "to_float_s" 2.5 (Time.to_float_s (Time.ms 2500))

let test_time_arith () =
  check_int "add" (Time.s 3) (Time.add (Time.s 1) (Time.s 2));
  check_int "diff" (Time.s 1) (Time.diff (Time.s 3) (Time.s 2));
  check_int "mul" (Time.s 6) (Time.mul (Time.s 2) 3);
  check_int "div" (Time.s 2) (Time.div (Time.s 6) 3)

let test_time_pp () =
  Alcotest.(check string) "ns" "999ns" (Time.to_string 999);
  Alcotest.(check string) "s" "1.500s" (Time.to_string (Time.ms 1500))

(* --- Heap --- *)

let test_heap_order () =
  let h = Heap.create () in
  Heap.push h 30 "c";
  Heap.push h 10 "a";
  Heap.push h 20 "b";
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  check_bool "empty" true (Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h 5 i
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list int)) "fifo among equal times" (List.init 10 Fun.id) order

let test_heap_peek () =
  let h = Heap.create () in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek_time h);
  Heap.push h 42 ();
  Alcotest.(check (option int)) "peek" (Some 42) (Heap.peek_time h);
  check_int "size" 1 (Heap.size h)

let test_heap_interleaved () =
  (* Push/pop interleaving maintains order. *)
  let h = Heap.create () in
  let prng = Prng.create 7 in
  let popped = ref [] in
  for _ = 1 to 500 do
    Heap.push h (Prng.int prng 1000) ()
  done;
  for _ = 1 to 250 do
    match Heap.pop h with
    | Some (t, ()) -> popped := t :: !popped
    | None -> ()
  done;
  for _ = 1 to 500 do
    Heap.push h (500 + Prng.int prng 1000) ()
  done;
  let rec drain () =
    match Heap.pop h with
    | Some (t, ()) ->
      popped := t :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  let l = List.rev !popped in
  (* First 250 pops are sorted; remaining pops are sorted. *)
  let rec is_sorted = function
    | a :: (b :: _ as rest) -> a <= b && is_sorted rest
    | _ -> true
  in
  let first, rest =
    (List.filteri (fun i _ -> i < 250) l, List.filteri (fun i _ -> i >= 250) l)
  in
  check_bool "first sorted" true (is_sorted first);
  check_bool "rest sorted" true (is_sorted rest)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in nondecreasing time order" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Heap.create () in
      List.iter (fun t -> Heap.push h t ()) times;
      let rec drain acc =
        match Heap.pop h with
        | Some (t, ()) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare times)

(* --- Timer_wheel --- *)

let drain_wheel w =
  let rec go acc =
    match Wheel.pop w with Some e -> go (e :: acc) | None -> List.rev acc
  in
  go []

let test_wheel_order () =
  let w = Wheel.create ~dummy:"" () in
  ignore (Wheel.push w 30 "c");
  ignore (Wheel.push w 10 "a");
  ignore (Wheel.push w 20 "b");
  Alcotest.(check (list (pair int string)))
    "sorted"
    [ (10, "a"); (20, "b"); (30, "c") ]
    (drain_wheel w);
  check_bool "empty" true (Wheel.is_empty w)

let test_wheel_fifo_ties () =
  let w = Wheel.create ~dummy:(-1) () in
  for i = 0 to 9 do
    ignore (Wheel.push w 5 i)
  done;
  Alcotest.(check (list int))
    "fifo among equal times"
    (List.init 10 Fun.id)
    (List.map snd (drain_wheel w))

let test_wheel_time_zero () =
  (* An event at Time.zero is valid and fires first, even when pushed
     after later events. *)
  let w = Wheel.create ~dummy:(-1) () in
  ignore (Wheel.push w (Time.ms 1) 1);
  ignore (Wheel.push w Time.zero 0);
  Alcotest.(check (list (pair int int)))
    "zero first"
    [ (Time.zero, 0); (Time.ms 1, 1) ]
    (drain_wheel w)

let test_wheel_tick_boundaries () =
  (* Times exactly on wheel-tick boundaries (multiples of 256^k) land on
     level boundaries; order must be unaffected. *)
  let w = Wheel.create ~dummy:(-1) () in
  let times = [ 256; 255; 257; 65536; 65535; 65537; 16777216; 0; 16777215 ] in
  List.iteri (fun i t -> ignore (Wheel.push w t i)) times;
  Alcotest.(check (list int))
    "boundary times sorted"
    (List.sort compare times)
    (List.map fst (drain_wheel w))

let test_wheel_cascade () =
  (* A spread of times across byte boundaries forces higher-level slots
     to cascade down as the cursor advances. *)
  let w = Wheel.create ~dummy:(-1) () in
  let prng = Prng.create 11 in
  let times = List.init 500 (fun _ -> Prng.int prng 5_000_000) in
  List.iteri (fun i t -> ignore (Wheel.push w t i)) times;
  let out = drain_wheel w in
  Alcotest.(check (list int)) "sorted" (List.sort compare times) (List.map fst out);
  check_bool "cascades happened" true ((Wheel.stats w).Wheel.cascaded > 0)

let test_wheel_overflow_promotion () =
  (* With a 2-level wheel (horizon 65536 ns) far-future events overflow
     to the heap tier and get promoted back once the wheel drains. *)
  let w = Wheel.create ~levels:2 ~dummy:(-1) () in
  ignore (Wheel.push w 10 0);
  ignore (Wheel.push w 1_000_000 1);
  ignore (Wheel.push w 900_000 2);
  ignore (Wheel.push w 1_000_000 3);
  check_bool "overflowed" true ((Wheel.stats w).Wheel.far_pushed >= 3);
  Alcotest.(check (list (pair int int)))
    "order across tiers"
    [ (10, 0); (900_000, 2); (1_000_000, 1); (1_000_000, 3) ]
    (drain_wheel w);
  check_bool "promoted" true ((Wheel.stats w).Wheel.promoted > 0)

let test_wheel_backlog_after_peek () =
  (* peek_time on a far-future event advances the internal cursor (the
     Sim.run ~until park pattern); a later push at an earlier time must
     still pop first. *)
  let w = Wheel.create ~levels:2 ~dummy:(-1) () in
  ignore (Wheel.push w 100_000 1);
  Alcotest.(check (option int)) "peek far" (Some 100_000) (Wheel.peek_time w);
  ignore (Wheel.push w 50_000 0);
  Alcotest.(check (list (pair int int)))
    "earlier push still first"
    [ (50_000, 0); (100_000, 1) ]
    (drain_wheel w)

let test_wheel_cancel () =
  let w = Wheel.create ~dummy:(-1) () in
  let t0 = Wheel.push w 10 0 in
  let t1 = Wheel.push w 20 1 in
  let t2 = Wheel.push w 10 2 in
  check_bool "cancel live" true (Wheel.cancel w t1);
  check_int "size after cancel" 2 (Wheel.size w);
  check_bool "double cancel" false (Wheel.cancel w t1);
  Alcotest.(check (list (pair int int)))
    "cancelled event skipped"
    [ (10, 0); (10, 2) ]
    (drain_wheel w);
  check_bool "cancel after fire" false (Wheel.cancel w t0);
  check_bool "cancel after fire 2" false (Wheel.cancel w t2)

let test_wheel_cancel_fired_slot () =
  (* Cancelling a token whose slot already fired must be a no-op even
     after the pool entry has been recycled by a new push. *)
  let w = Wheel.create ~dummy:(-1) () in
  let tok = Wheel.push w 5 0 in
  Alcotest.(check (option (pair int int))) "fired" (Some (5, 0)) (Wheel.pop w);
  ignore (Wheel.push w 7 1);
  check_bool "stale token rejected" false (Wheel.cancel w tok);
  check_int "recycled event untouched" 1 (Wheel.size w);
  Alcotest.(check (option (pair int int))) "recycled fires" (Some (7, 1)) (Wheel.pop w)

let test_wheel_next_time_pop_exn () =
  let w = Wheel.create ~dummy:(-1) () in
  check_int "empty sentinel" Wheel.no_time (Wheel.next_time w);
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Timer_wheel.pop_exn: empty") (fun () ->
      ignore (Wheel.pop_exn w));
  ignore (Wheel.push w 9 42);
  check_int "next_time" 9 (Wheel.next_time w);
  check_int "pop_exn" 42 (Wheel.pop_exn w);
  check_int "empty again" Wheel.no_time (Wheel.next_time w)

(* Randomized equivalence against the reference heap: any interleaving
   of pushes (with same-timestamp bursts, tick boundaries and far-future
   times), cancels, peeks and pops must produce the identical event
   stream from both schedulers. *)

type wheel_op = WPush of int | WCancel of int | WAdvance of int | WPeek

let pp_wheel_op = function
  | WPush d -> Printf.sprintf "push+%d" d
  | WCancel i -> Printf.sprintf "cancel#%d" i
  | WAdvance n -> Printf.sprintf "pop*%d" n
  | WPeek -> "peek"

let gen_wheel_ops =
  let open QCheck.Gen in
  let delta =
    frequency
      [ (3, return 0);
        (5, int_bound 1000);
        (2, map (fun k -> k * 256) (int_bound 600));
        (2, int_bound 2_000_000);
        (1, map (fun k -> 70_000 + k) (int_bound 200_000));
        (1, map (fun k -> 1_000_000_000 + k) (int_bound 3)) ]
  in
  let op =
    frequency
      [ (6, map (fun d -> WPush d) delta);
        (2, map (fun i -> WCancel i) (int_bound 60));
        (2, map (fun n -> WAdvance n) (int_bound 8));
        (1, return WPeek) ]
  in
  QCheck.make
    ~print:(fun ops -> String.concat " " (List.map pp_wheel_op ops))
    (list_size (int_range 1 150) op)

let wheel_matches_heap ~levels ops =
  let w = Wheel.create ~levels ~dummy:(-1) () in
  let h = Heap.create () in
  let canceled = Hashtbl.create 16 in
  let fired = Hashtbl.create 16 in
  let tokens = ref [||] in
  let n_pushed = ref 0 in
  let base = ref 0 in
  let next_id = ref 0 in
  let live = ref 0 in
  let ref_pop () =
    let rec go () =
      match Heap.pop h with
      | None -> None
      | Some (_, id) when Hashtbl.mem canceled id -> go ()
      | Some _ as e -> e
    in
    go ()
  in
  let ok = ref true in
  let expect b = if not b then ok := false in
  List.iter
    (fun op ->
      if !ok then
        match op with
        | WPush d ->
          let t = !base + d in
          let id = !next_id in
          incr next_id;
          let tok = Wheel.push w t id in
          Heap.push h t id;
          tokens := Array.append !tokens [| (id, tok) |];
          incr n_pushed;
          incr live;
          expect (Wheel.size w = !live)
        | WCancel i ->
          if !n_pushed > 0 then begin
            let id, tok = !tokens.(i mod !n_pushed) in
            let expected =
              (not (Hashtbl.mem fired id)) && not (Hashtbl.mem canceled id)
            in
            let got = Wheel.cancel w tok in
            expect (got = expected);
            if expected then begin
              Hashtbl.replace canceled id ();
              decr live
            end;
            expect (Wheel.size w = !live)
          end
        | WAdvance n ->
          for _ = 1 to n do
            let got = Wheel.pop w in
            let want = ref_pop () in
            expect (got = want);
            (match want with
            | Some (t, id) ->
              Hashtbl.replace fired id ();
              decr live;
              base := t
            | None -> ())
          done
        | WPeek ->
          (* normalize the reference: a cancelled heap top is invisible
             (ref_pop would skip it), so drop it before comparing *)
          let rec ref_peek () =
            match Heap.peek h with
            | Some (_, id) when Hashtbl.mem canceled id ->
              ignore (Heap.pop h);
              ref_peek ()
            | Some (t, _) -> Some t
            | None -> None
          in
          expect (Wheel.peek_time w = ref_peek ()))
    ops;
  (* drain both completely *)
  let rec drain () =
    if !ok then begin
      let got = Wheel.pop w in
      let want = ref_pop () in
      expect (got = want);
      match want with
      | Some (_, id) ->
        Hashtbl.replace fired id ();
        decr live;
        drain ()
      | None -> ()
    end
  in
  drain ();
  if !ok then expect (Wheel.is_empty w);
  !ok

let prop_wheel_equiv_heap =
  QCheck.Test.make ~name:"timer wheel ≡ reference heap (6 levels)" ~count:300
    gen_wheel_ops
    (wheel_matches_heap ~levels:6)

let prop_wheel_equiv_heap_tiny =
  (* 2-level wheel: the same workloads constantly overflow/promote
     through the heap tier. *)
  QCheck.Test.make ~name:"timer wheel ≡ reference heap (2 levels)" ~count:300
    gen_wheel_ops
    (wheel_matches_heap ~levels:2)

(* --- Prng --- *)

let test_prng_determinism () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create 1 in
  let b = Prng.split a in
  let xs = List.init 10 (fun _ -> Prng.bits64 a) in
  let ys = List.init 10 (fun _ -> Prng.bits64 b) in
  check_bool "streams differ" true (xs <> ys)

let test_prng_int_bounds () =
  let p = Prng.create 9 in
  for _ = 1 to 10_000 do
    let v = Prng.int p 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_prng_float_bounds () =
  let p = Prng.create 10 in
  for _ = 1 to 10_000 do
    let v = Prng.float p 3.0 in
    check_bool "in range" true (v >= 0.0 && v < 3.0)
  done

let test_prng_exponential_mean () =
  let p = Prng.create 11 in
  let m = Stats.Mean.create () in
  for _ = 1 to 50_000 do
    Stats.Mean.add m (Prng.exponential p 5.0)
  done;
  let mu = Stats.Mean.mean m in
  check_bool "mean near 5" true (abs_float (mu -. 5.0) < 0.2)

let test_prng_gaussian_moments () =
  let p = Prng.create 12 in
  let m = Stats.Mean.create () in
  for _ = 1 to 50_000 do
    Stats.Mean.add m (Prng.gaussian p ~mu:10.0 ~sigma:2.0)
  done;
  check_bool "mean near 10" true (abs_float (Stats.Mean.mean m -. 10.0) < 0.1);
  check_bool "std near 2" true (abs_float (Stats.Mean.stddev m -. 2.0) < 0.1)

let test_prng_zipf_skew () =
  let p = Prng.create 13 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let r = Prng.zipf p ~n:100 ~theta:0.99 in
    check_bool "in range" true (r >= 0 && r < 100);
    counts.(r) <- counts.(r) + 1
  done;
  (* Rank 0 must be much more popular than rank 50. *)
  check_bool "skewed" true (counts.(0) > 10 * max 1 counts.(50))

let test_prng_bernoulli () =
  let p = Prng.create 14 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bernoulli p 0.3 then incr hits
  done;
  check_bool "p near 0.3" true (abs_float (float_of_int !hits /. 10_000.0 -. 0.3) < 0.03)

let test_prng_shuffle_permutation () =
  let p = Prng.create 15 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* --- Sim --- *)

let test_sim_clock_advances () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn_at sim Time.zero (fun () ->
      log := (Sim.clock (), "start") :: !log;
      Sim.sleep (Time.ms 5);
      log := (Sim.clock (), "mid") :: !log;
      Sim.sleep (Time.ms 10);
      log := (Sim.clock (), "end") :: !log);
  Sim.run sim;
  Alcotest.(check (list (pair int string)))
    "timeline"
    [ (Time.zero, "start"); (Time.ms 5, "mid"); (Time.ms 15, "end") ]
    (List.rev !log)

let test_sim_schedule_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim (Time.ms 2) (fun () -> log := 2 :: !log);
  Sim.schedule sim (Time.ms 1) (fun () -> log := 1 :: !log);
  Sim.schedule sim (Time.ms 3) (fun () -> log := 3 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log)

(* The past-time rejection must identify the entry point and both
   times — it's the error a mis-ordered experiment script sees first. *)
let expect_past_error label f =
  match f () with
  | () -> Alcotest.failf "%s: expected Invalid_argument" label
  | exception Invalid_argument msg ->
    check_bool
      (Printf.sprintf "%s: message names entry point (%s)" label msg)
      true
      (String.length msg > String.length label
      && String.sub msg 0 (String.length label) = label);
    check_bool (Printf.sprintf "%s: message says 'in the past'" label) true
      (let sub = "in the past" in
       let n = String.length msg and m = String.length sub in
       let rec has i = i + m <= n && (String.sub msg i m = sub || has (i + 1)) in
       has 0)

let test_sim_schedule_past_rejected () =
  let sim = Sim.create () in
  Sim.schedule sim (Time.ms 10) (fun () ->
      expect_past_error "Sim.schedule" (fun () ->
          Sim.schedule sim (Time.ms 5) ignore);
      expect_past_error "Sim.spawn_at" (fun () ->
          Sim.spawn_at sim (Time.ms 5) ignore));
  Sim.run sim;
  check_int "clock reached the scheduling point" (Time.ms 10) (Sim.now sim)

let test_sim_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  Sim.spawn_at sim Time.zero (fun () ->
      for _ = 1 to 100 do
        incr count;
        Sim.sleep (Time.ms 1)
      done);
  Sim.run ~until:(Time.ms 10) sim;
  check_bool "stopped early" true (!count <= 11);
  check_int "clock at horizon" (Time.ms 10) (Sim.now sim)

let test_sim_spawn_children () =
  let sim = Sim.create () in
  let sum = ref 0 in
  Sim.spawn_at sim Time.zero (fun () ->
      for i = 1 to 5 do
        Sim.spawn (fun () ->
            Sim.sleep (Time.ms i);
            sum := !sum + i)
      done);
  Sim.run sim;
  check_int "all children ran" 15 !sum

let test_sim_process_failure () =
  let sim = Sim.create () in
  Sim.spawn_at sim ~name:"boom" Time.zero (fun () ->
      Sim.sleep (Time.ms 1);
      failwith "exploded");
  (match Sim.run sim with
  | () -> Alcotest.fail "expected Process_failure"
  | exception Sim.Process_failure (name, Failure msg) ->
    Alcotest.(check string) "name" "boom" name;
    Alcotest.(check string) "msg" "exploded" msg
  | exception _ -> Alcotest.fail "wrong exception")

let test_sim_suspend_waker () =
  let sim = Sim.create () in
  let waker_ref = ref None in
  let got = ref 0 in
  Sim.spawn_at sim Time.zero (fun () ->
      let v = Sim.suspend (fun waker -> waker_ref := Some waker) in
      got := v);
  Sim.spawn_at sim (Time.ms 3) (fun () ->
      match !waker_ref with
      | Some w ->
        check_bool "first wake accepted" true (w 42);
        check_bool "second wake rejected" false (w 43)
      | None -> Alcotest.fail "waker not registered");
  Sim.run sim;
  check_int "value delivered" 42 !got

let test_sim_determinism () =
  (* Two identical runs produce identical event orderings. *)
  let run_once () =
    let sim = Sim.create ~seed:5 () in
    let log = ref [] in
    Sim.spawn_at sim Time.zero (fun () ->
        let p = Sim.rand (Sim.self ()) in
        for _ = 1 to 50 do
          Sim.sleep (Prng.int p 1000);
          log := Sim.clock () :: !log
        done);
    Sim.run sim;
    !log
  in
  Alcotest.(check (list int)) "identical" (run_once ()) (run_once ())

let test_sim_yield_interleave () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn_at sim Time.zero (fun () ->
      log := "a1" :: !log;
      Sim.yield ();
      log := "a2" :: !log);
  Sim.spawn_at sim Time.zero (fun () ->
      log := "b1" :: !log;
      Sim.yield ();
      log := "b2" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "interleaved" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let test_sim_wait_until () =
  let sim = Sim.create () in
  Sim.spawn_at sim Time.zero (fun () ->
      Sim.wait_until (Time.ms 7);
      check_int "at 7ms" (Time.ms 7) (Sim.clock ());
      Sim.wait_until (Time.ms 3);
      check_int "no travel back" (Time.ms 7) (Sim.clock ()));
  Sim.run sim

(* Recurring daemon jobs never keep [run] alive: the loop stops once
   only daemon events remain, so a sampler can tick forever without
   turning an open-ended run into an infinite loop. *)
let test_sim_every_daemon () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  let cancel = Sim.every sim (Time.ms 10) (fun () -> incr ticks) in
  Sim.schedule sim (Time.ms 95) (fun () -> ());
  Sim.run sim;
  check_bool "run terminated at the last real event" true
    (Sim.now sim <= Time.ms 100);
  check_int "ticked every period up to the last event" 9 !ticks;
  cancel ();
  Sim.run sim;
  check_int "cancelled recurrence stops" 9 !ticks;
  (try
     let (_cancel : unit -> unit) = Sim.every sim 0 (fun () -> ()) in
     Alcotest.fail "every 0: expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_sim_every_non_daemon () =
  let sim = Sim.create () in
  let ticks = ref 0 in
  let cancel = Sim.every sim ~daemon:false (Time.ms 10) (fun () -> incr ticks) in
  (* a non-daemon recurrence keeps the run alive up to the horizon *)
  Sim.run ~until:(Time.ms 55) sim;
  check_int "runs to the horizon" 5 !ticks;
  check_int "clock parked at horizon" (Time.ms 55) (Sim.now sim);
  cancel ();
  Sim.run ~until:(Time.ms 200) sim;
  check_int "at most the armed occurrence after cancel" 5 !ticks

let test_sim_create_with_timeseries () =
  let module Metrics = Bmcast_obs.Metrics in
  let module Timeseries = Bmcast_obs.Timeseries in
  let metrics = Metrics.create () in
  let g = Metrics.gauge metrics "g" in
  let ts = Timeseries.create ~interval_ns:(Time.ms 1) metrics in
  let sim = Sim.create ~metrics ~timeseries:ts () in
  Sim.spawn_at sim Time.zero (fun () ->
      Metrics.set g 2.0;
      Sim.sleep (Time.ms 10));
  Sim.run sim;
  (* sampler swept at 1..9 ms; at 10 ms the wake runs, after which only
     the daemon remains and the run ends instead of hanging — the final
     instant is intentionally not sampled *)
  check_int "one sweep per interval" 9 (Timeseries.sweeps ts);
  check_int "last sweep before the final event" (Time.ms 9)
    (Timeseries.last_sweep_at ts);
  (match Timeseries.status ts "g" with
  | Some st ->
    check_int "samples recorded" 9 st.Timeseries.s_count;
    check_bool "sampled the gauge" true (snd st.Timeseries.s_last = 2.0)
  | None -> Alcotest.fail "gauge was not sampled")

(* --- Mailbox --- *)

let test_mailbox_fifo () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let out = ref [] in
  Sim.spawn_at sim Time.zero (fun () ->
      for i = 1 to 5 do
        Mailbox.send mb i
      done);
  Sim.spawn_at sim Time.zero (fun () ->
      for _ = 1 to 5 do
        out := Mailbox.recv mb :: !out
      done);
  Sim.run sim;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !out)

let test_mailbox_blocking_recv () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let got_at = ref Time.zero in
  Sim.spawn_at sim Time.zero (fun () ->
      ignore (Mailbox.recv mb : int);
      got_at := Sim.clock ());
  Sim.spawn_at sim (Time.ms 20) (fun () -> Mailbox.send mb 1);
  Sim.run sim;
  check_int "receiver blocked until send" (Time.ms 20) !got_at

let test_mailbox_capacity_blocks_sender () =
  let sim = Sim.create () in
  let mb = Mailbox.create ~capacity:2 () in
  let sent_all_at = ref Time.zero in
  Sim.spawn_at sim Time.zero (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3;
      (* blocks until a recv *)
      sent_all_at := Sim.clock ());
  Sim.spawn_at sim (Time.ms 50) (fun () -> ignore (Mailbox.recv mb : int));
  Sim.run sim;
  check_int "third send blocked" (Time.ms 50) !sent_all_at

let test_mailbox_recv_timeout () =
  let sim = Sim.create () in
  let mb : int Mailbox.t = Mailbox.create () in
  let result = ref (Some 0) in
  Sim.spawn_at sim Time.zero (fun () ->
      result := Mailbox.recv_timeout mb (Time.ms 10);
      check_int "timed out at 10ms" (Time.ms 10) (Sim.clock ()));
  Sim.run sim;
  Alcotest.(check (option int)) "none" None !result

let test_mailbox_recv_timeout_success () =
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  let result = ref None in
  Sim.spawn_at sim Time.zero (fun () ->
      result := Mailbox.recv_timeout mb (Time.ms 10));
  Sim.spawn_at sim (Time.ms 5) (fun () -> Mailbox.send mb 99);
  Sim.run sim;
  Alcotest.(check (option int)) "delivered" (Some 99) !result

let test_mailbox_timeout_not_lost () =
  (* A message sent after a receiver timed out must stay in the box. *)
  let sim = Sim.create () in
  let mb = Mailbox.create () in
  Sim.spawn_at sim Time.zero (fun () ->
      ignore (Mailbox.recv_timeout mb (Time.ms 1) : int option));
  Sim.spawn_at sim (Time.ms 5) (fun () -> Mailbox.send mb 7);
  Sim.run sim;
  check_int "message retained" 1 (Mailbox.length mb)

let test_mailbox_try_ops () =
  let sim = Sim.create () in
  Sim.spawn_at sim Time.zero (fun () ->
      let mb = Mailbox.create ~capacity:1 () in
      Alcotest.(check (option int)) "empty" None (Mailbox.try_recv mb);
      check_bool "send ok" true (Mailbox.try_send mb 1);
      check_bool "full" false (Mailbox.try_send mb 2);
      Alcotest.(check (option int)) "recv" (Some 1) (Mailbox.try_recv mb));
  Sim.run sim

(* --- Semaphore --- *)

let test_semaphore_mutual_exclusion () =
  let sim = Sim.create () in
  let sem = Semaphore.create 1 in
  let inside = ref 0 and max_inside = ref 0 in
  for _ = 1 to 5 do
    Sim.spawn_at sim Time.zero (fun () ->
        Semaphore.with_permit sem (fun () ->
            incr inside;
            if !inside > !max_inside then max_inside := !inside;
            Sim.sleep (Time.ms 3);
            decr inside))
  done;
  Sim.run sim;
  check_int "never two inside" 1 !max_inside

let test_semaphore_counting () =
  let sim = Sim.create () in
  let sem = Semaphore.create 3 in
  let done_at = ref [] in
  for _ = 1 to 6 do
    Sim.spawn_at sim Time.zero (fun () ->
        Semaphore.with_permit sem (fun () -> Sim.sleep (Time.ms 10));
        done_at := Sim.clock () :: !done_at)
  done;
  Sim.run sim;
  let sorted = List.sort compare !done_at in
  Alcotest.(check (list int))
    "two batches"
    [ Time.ms 10; Time.ms 10; Time.ms 10; Time.ms 20; Time.ms 20; Time.ms 20 ]
    sorted

let test_semaphore_release_on_exception () =
  let sim = Sim.create () in
  let sem = Semaphore.create 1 in
  Sim.spawn_at sim Time.zero (fun () ->
      (try Semaphore.with_permit sem (fun () -> failwith "oops")
       with Failure _ -> ());
      check_int "released" 1 (Semaphore.available sem));
  Sim.run sim

(* --- Signal --- *)

let test_latch_blocks_then_releases_all () =
  let sim = Sim.create () in
  let latch = Signal.Latch.create () in
  let released = ref [] in
  for i = 1 to 3 do
    Sim.spawn_at sim Time.zero (fun () ->
        Signal.Latch.wait latch;
        released := (i, Sim.clock ()) :: !released)
  done;
  Sim.spawn_at sim (Time.ms 5) (fun () -> Signal.Latch.set latch);
  Sim.run sim;
  check_int "all released" 3 (List.length !released);
  List.iter (fun (_, t) -> check_int "at set time" (Time.ms 5) t) !released

let test_latch_set_is_level_triggered () =
  let sim = Sim.create () in
  let latch = Signal.Latch.create () in
  Signal.Latch.set latch;
  let passed = ref false in
  Sim.spawn_at sim Time.zero (fun () ->
      Signal.Latch.wait latch;
      passed := true);
  Sim.run sim;
  check_bool "no block" true !passed

let test_pulse_edge_triggered () =
  let sim = Sim.create () in
  let p = Signal.Pulse.create () in
  Signal.Pulse.pulse p;
  (* past pulse ignored *)
  let woke_at = ref Time.zero in
  Sim.spawn_at sim Time.zero (fun () ->
      Signal.Pulse.wait p;
      woke_at := Sim.clock ());
  Sim.spawn_at sim (Time.ms 8) (fun () -> Signal.Pulse.pulse p);
  Sim.run sim;
  check_int "woke on next pulse" (Time.ms 8) !woke_at

let test_pulse_wait_timeout () =
  let sim = Sim.create () in
  let p = Signal.Pulse.create () in
  let r1 = ref true and r2 = ref false in
  Sim.spawn_at sim Time.zero (fun () -> r1 := Signal.Pulse.wait_timeout p (Time.ms 5));
  Sim.spawn_at sim (Time.ms 10) (fun () ->
      Sim.spawn (fun () -> r2 := Signal.Pulse.wait_timeout p (Time.ms 100));
      Sim.sleep (Time.ms 1);
      Signal.Pulse.pulse p);
  Sim.run sim;
  check_bool "timed out" false !r1;
  check_bool "pulsed" true !r2

(* --- Stats --- *)

let test_histogram_basic () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_int "count" 5 (Stats.Histogram.count h);
  check_float "mean" 3.0 (Stats.Histogram.mean h);
  check_float "min" 1.0 (Stats.Histogram.min h);
  check_float "max" 5.0 (Stats.Histogram.max h);
  check_float "median" 3.0 (Stats.Histogram.median h);
  check_float "p0" 1.0 (Stats.Histogram.percentile h 0.0);
  check_float "p100" 5.0 (Stats.Histogram.percentile h 100.0);
  check_float "p25" 2.0 (Stats.Histogram.percentile h 25.0)

let test_histogram_clear () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h 1.0;
  Stats.Histogram.clear h;
  check_int "cleared" 0 (Stats.Histogram.count h)

let test_histogram_stddev () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "stddev" 2.0 (Stats.Histogram.stddev h)

let prop_histogram_percentile_monotone =
  QCheck.Test.make ~name:"histogram percentiles are monotone" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_exclusive 1000.0))
    (fun samples ->
      let h = Stats.Histogram.create () in
      List.iter (Stats.Histogram.add h) samples;
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ] in
      let vals = List.map (Stats.Histogram.percentile h) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vals)

let test_series_bucket_mean () =
  let s = Stats.Series.create () in
  Stats.Series.add s (Time.ms 1) 10.0;
  Stats.Series.add s (Time.ms 2) 20.0;
  Stats.Series.add s (Time.ms 12) 30.0;
  let buckets = Stats.Series.bucket_mean s ~width:(Time.ms 10) in
  Alcotest.(check (list (pair int (float 1e-9))))
    "buckets"
    [ (0, 15.0); (Time.ms 10, 30.0) ]
    buckets

let test_rate_windows () =
  let r = Stats.Rate.create () in
  Stats.Rate.add r (Time.ms 100) 50.0;
  Stats.Rate.add r (Time.ms 900) 50.0;
  Stats.Rate.add r (Time.ms 1500) 200.0;
  check_float "total" 300.0 (Stats.Rate.total r);
  check_float "rate [0,1s)" 100.0 (Stats.Rate.rate_between r Time.zero (Time.s 1));
  let windows = Stats.Rate.per_window r ~width:(Time.s 1) in
  Alcotest.(check (list (pair int (float 1e-9))))
    "windows"
    [ (0, 100.0); (Time.s 1, 200.0) ]
    windows

let test_mean_welford () =
  let m = Stats.Mean.create () in
  List.iter (Stats.Mean.add m) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.Mean.count m);
  check_float "mean" 2.5 (Stats.Mean.mean m);
  check_bool "stddev" true (abs_float (Stats.Mean.stddev m -. 1.2909944487) < 1e-6)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "engine"
    [ ( "time",
        [ tc "units" `Quick test_time_units;
          tc "arith" `Quick test_time_arith;
          tc "pp" `Quick test_time_pp ] );
      ( "heap",
        [ tc "order" `Quick test_heap_order;
          tc "fifo ties" `Quick test_heap_fifo_ties;
          tc "peek" `Quick test_heap_peek;
          tc "interleaved" `Quick test_heap_interleaved;
          QCheck_alcotest.to_alcotest prop_heap_sorted ] );
      ( "timer_wheel",
        [ tc "order" `Quick test_wheel_order;
          tc "fifo ties" `Quick test_wheel_fifo_ties;
          tc "time zero" `Quick test_wheel_time_zero;
          tc "tick boundaries" `Quick test_wheel_tick_boundaries;
          tc "cascade" `Quick test_wheel_cascade;
          tc "overflow promotion" `Quick test_wheel_overflow_promotion;
          tc "backlog after peek" `Quick test_wheel_backlog_after_peek;
          tc "cancel" `Quick test_wheel_cancel;
          tc "cancel fired slot" `Quick test_wheel_cancel_fired_slot;
          tc "next_time/pop_exn" `Quick test_wheel_next_time_pop_exn;
          QCheck_alcotest.to_alcotest prop_wheel_equiv_heap;
          QCheck_alcotest.to_alcotest prop_wheel_equiv_heap_tiny ] );
      ( "prng",
        [ tc "determinism" `Quick test_prng_determinism;
          tc "split" `Quick test_prng_split_independent;
          tc "int bounds" `Quick test_prng_int_bounds;
          tc "float bounds" `Quick test_prng_float_bounds;
          tc "exponential mean" `Quick test_prng_exponential_mean;
          tc "gaussian moments" `Quick test_prng_gaussian_moments;
          tc "zipf skew" `Quick test_prng_zipf_skew;
          tc "bernoulli" `Quick test_prng_bernoulli;
          tc "shuffle permutation" `Quick test_prng_shuffle_permutation ] );
      ( "sim",
        [ tc "clock advances" `Quick test_sim_clock_advances;
          tc "schedule order" `Quick test_sim_schedule_order;
          tc "schedule past rejected" `Quick test_sim_schedule_past_rejected;
          tc "run until" `Quick test_sim_until;
          tc "spawn children" `Quick test_sim_spawn_children;
          tc "process failure" `Quick test_sim_process_failure;
          tc "suspend waker once" `Quick test_sim_suspend_waker;
          tc "determinism" `Quick test_sim_determinism;
          tc "yield interleave" `Quick test_sim_yield_interleave;
          tc "wait_until" `Quick test_sim_wait_until;
          tc "every daemon job" `Quick test_sim_every_daemon;
          tc "every non-daemon job" `Quick test_sim_every_non_daemon;
          tc "create with timeseries" `Quick test_sim_create_with_timeseries ] );
      ( "mailbox",
        [ tc "fifo" `Quick test_mailbox_fifo;
          tc "blocking recv" `Quick test_mailbox_blocking_recv;
          tc "capacity blocks sender" `Quick test_mailbox_capacity_blocks_sender;
          tc "recv timeout" `Quick test_mailbox_recv_timeout;
          tc "recv timeout success" `Quick test_mailbox_recv_timeout_success;
          tc "timeout does not lose messages" `Quick test_mailbox_timeout_not_lost;
          tc "try ops" `Quick test_mailbox_try_ops ] );
      ( "semaphore",
        [ tc "mutual exclusion" `Quick test_semaphore_mutual_exclusion;
          tc "counting" `Quick test_semaphore_counting;
          tc "release on exception" `Quick test_semaphore_release_on_exception ] );
      ( "signal",
        [ tc "latch releases all" `Quick test_latch_blocks_then_releases_all;
          tc "latch level triggered" `Quick test_latch_set_is_level_triggered;
          tc "pulse edge triggered" `Quick test_pulse_edge_triggered;
          tc "pulse wait timeout" `Quick test_pulse_wait_timeout ] );
      ( "stats",
        [ tc "histogram basic" `Quick test_histogram_basic;
          tc "histogram clear" `Quick test_histogram_clear;
          tc "histogram stddev" `Quick test_histogram_stddev;
          QCheck_alcotest.to_alcotest prop_histogram_percentile_monotone;
          tc "series bucket mean" `Quick test_series_bucket_mean;
          tc "rate windows" `Quick test_rate_windows;
          tc "mean welford" `Quick test_mean_welford ] ) ]
