(* Tests for the network storage protocols: AoE codec, client
   retransmission/reassembly, vblade target, iSCSI/NFS baselines. *)

module Sim = Bmcast_engine.Sim
module Time = Bmcast_engine.Time
module Content = Bmcast_storage.Content
module Disk = Bmcast_storage.Disk
module Fabric = Bmcast_net.Fabric
module Aoe = Bmcast_proto.Aoe
module Aoe_client = Bmcast_proto.Aoe_client
module Vblade = Bmcast_proto.Vblade
module Remote_block = Bmcast_proto.Remote_block

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let content_testable = Alcotest.testable Content.pp Content.equal

(* --- Aoe codec --- *)

let sample_header =
  { Aoe.major = 7;
    minor = 3;
    command = Aoe.Ata_read;
    tag = 0x00ABCD;
    frag = 5;
    is_response = true;
    error = false;
    lba = 0x1234_5678_9A;
    count = 17 }

let test_aoe_roundtrip () =
  let b = Aoe.encode_header sample_header in
  check_int "length" Aoe.header_bytes (Bytes.length b);
  let h = Aoe.decode_header b in
  check_bool "roundtrip" true (h = sample_header)

let prop_aoe_roundtrip =
  let gen =
    QCheck.Gen.(
      let* major = int_bound 0xFFFF in
      let* minor = int_bound 0xFF in
      let* cmd = int_bound 2 in
      let* tag = int_bound 0xFF_FFFF in
      let* frag = int_bound 0xFF in
      let* is_response = bool in
      let* error = bool in
      let* lba = int_bound 0xFFFF_FFFF (* plenty *) in
      let* count = int_bound 0xFFFF in
      return
        { Aoe.major;
          minor;
          command =
            (match cmd with
            | 0 -> Aoe.Ata_read
            | 1 -> Aoe.Ata_write
            | _ -> Aoe.Query_config);
          tag;
          frag;
          is_response;
          error;
          lba;
          count })
  in
  QCheck.Test.make ~name:"aoe header encode/decode roundtrip" ~count:500
    (QCheck.make gen) (fun h ->
      Aoe.decode_header (Aoe.encode_header h) = h)

let test_aoe_rejects_out_of_range () =
  check_bool "bad major" true
    (try
       ignore (Aoe.encode_header { sample_header with Aoe.major = 0x1_0000 } : Bytes.t);
       false
     with Invalid_argument _ -> true);
  check_bool "bad tag" true
    (try
       ignore (Aoe.encode_header { sample_header with Aoe.tag = 0x100_0000 } : Bytes.t);
       false
     with Invalid_argument _ -> true)

let test_aoe_rejects_short_buffer () =
  check_bool "short" true
    (try
       ignore (Aoe.decode_header (Bytes.create 10) : Aoe.header);
       false
     with Invalid_argument _ -> true)

let test_aoe_max_sectors () =
  check_int "jumbo" 17 (Aoe.max_sectors ~mtu:9000);
  check_int "standard" 2 (Aoe.max_sectors ~mtu:1500)

let test_aoe_wire_size () =
  check_int "wire" (Aoe.header_bytes + 512) (Aoe.wire_size ~sectors:1)

(* --- client + vblade end to end --- *)

type rig = {
  sim : Sim.t;
  fab : Fabric.t;
  server_disk : Disk.t;
  vblade : Vblade.t;
  client : Aoe_client.t;
}

let small = { Disk.hdd_constellation2 with Disk.capacity_sectors = 1 lsl 22 }

let make_rig ?(loss = 0.0) ?(workers = 8) ?(mtu = 9000) ?timeout () =
  let sim = Sim.create () in
  let fab = Fabric.create sim ~mtu ~loss_rate:loss () in
  let server_disk = Disk.create sim small in
  Disk.fill_with_image server_disk;
  let vblade = Vblade.create sim ~fabric:fab ~name:"vblade" ~disk:server_disk ~workers () in
  (* Client transport: a dedicated fabric port feeding the client. *)
  let client_ref = ref None in
  let port =
    Fabric.attach fab ~name:"client" (fun pkt ->
        match pkt.Bmcast_net.Packet.payload with
        | Aoe.Frame f -> Option.iter (fun c -> Aoe_client.on_frame c f) !client_ref
        | _ -> ())
  in
  let send hdr data = Aoe.send port ~dst:(Vblade.port_id vblade) hdr data in
  let client = Aoe_client.create sim ~send ~mtu ?timeout () in
  client_ref := Some client;
  { sim; fab; server_disk; vblade; client }

let run_in rig f =
  let out = ref None in
  Sim.spawn_at rig.sim (Sim.now rig.sim) (fun () -> out := Some (f ()));
  Sim.run rig.sim;
  Option.get !out

let test_query_capacity () =
  let rig = make_rig () in
  let cap = run_in rig (fun () -> Aoe_client.query_capacity rig.client) in
  check_int "capacity" (Disk.capacity_sectors rig.server_disk) cap

let test_client_read_small () =
  let rig = make_rig () in
  let data = run_in rig (fun () -> Aoe_client.read rig.client ~lba:5000 ~count:8) in
  Alcotest.(check (array content_testable))
    "image data" (Content.image_sectors ~lba:5000 ~count:8) data

let test_client_read_large_fragments () =
  (* 1 MB read: one command, many jumbo fragments reassembled. *)
  let rig = make_rig () in
  let data = run_in rig (fun () -> Aoe_client.read rig.client ~lba:0 ~count:2048) in
  check_int "length" 2048 (Array.length data);
  check_bool "all sectors correct" true
    (Array.for_all2 Content.equal data (Content.image_sectors ~lba:0 ~count:2048));
  check_int "no retransmits" 0 (Aoe_client.retransmits rig.client)

let test_client_write_roundtrip () =
  let rig = make_rig () in
  let payload = Content.data_sectors ~count:100 in
  run_in rig (fun () -> Aoe_client.write rig.client ~lba:777 ~count:100 payload);
  Alcotest.(check (array content_testable))
    "server disk updated" payload
    (Disk.peek rig.server_disk ~lba:777 ~count:100)

let test_client_recovers_from_loss () =
  (* 20% frame loss: reads still complete via retransmission. *)
  let rig = make_rig ~loss:0.2 ~timeout:(Time.ms 5) () in
  let data = run_in rig (fun () -> Aoe_client.read rig.client ~lba:100 ~count:512) in
  check_bool "data intact" true
    (Array.for_all2 Content.equal data (Content.image_sectors ~lba:100 ~count:512));
  check_bool "retransmits happened" true (Aoe_client.retransmits rig.client > 0)

let test_client_timeout_raises () =
  (* 100% loss: command exhausts retries. *)
  let rig = make_rig ~loss:1.0 ~timeout:(Time.ms 1) () in
  let raised =
    run_in rig (fun () ->
        try
          ignore (Aoe_client.read rig.client ~lba:0 ~count:1 : Content.t array);
          false
        with Aoe_client.Timeout _ -> true)
  in
  check_bool "timeout raised" true raised

let test_target_rejects_out_of_range () =
  let rig = make_rig () in
  let raised =
    run_in rig (fun () ->
        try
          ignore
            (Aoe_client.read rig.client
               ~lba:(Disk.capacity_sectors rig.server_disk)
               ~count:8
              : Content.t array);
          false
        with Aoe_client.Target_error _ -> true)
  in
  check_bool "target error surfaced" true raised;
  (* The target survives and keeps serving. *)
  let data = run_in rig (fun () -> Aoe_client.read rig.client ~lba:0 ~count:8) in
  check_bool "target still alive" true
    (Array.for_all2 Content.equal data (Content.image_sectors ~lba:0 ~count:8))

let test_client_duplicate_fragments_harmless () =
  (* Force a retransmission via a slow first response: use tiny timeout
     so the client re-sends while the response is in flight; duplicates
     must not corrupt assembly. *)
  let rig = make_rig ~timeout:(Time.ms 3) () in
  let data = run_in rig (fun () -> Aoe_client.read rig.client ~lba:42 ~count:1024) in
  check_bool "data intact despite duplicates" true
    (Array.for_all2 Content.equal data (Content.image_sectors ~lba:42 ~count:1024))

let prop_client_correct_under_loss =
  (* Any mix of reads and writes, at any loss rate up to 15%, ends with
     every read returning exactly the server's current content. *)
  QCheck.Test.make ~name:"aoe client correct under random loss" ~count:12
    QCheck.(pair (int_bound 1000) (int_bound 15))
    (fun (seed, loss_pct) ->
      let rig =
        make_rig
          ~loss:(float_of_int loss_pct /. 100.0)
          ~timeout:(Time.ms 5) ()
      in
      let ok = ref true in
      Sim.spawn_at rig.sim Time.zero (fun () ->
          let prng = Bmcast_engine.Prng.create seed in
          let written = Hashtbl.create 16 in
          for _ = 0 to 19 do
            let lba = Bmcast_engine.Prng.int prng 100_000 in
            let count = 1 + Bmcast_engine.Prng.int prng 63 in
            if Bmcast_engine.Prng.bool prng then begin
              let data = Content.data_sectors ~count in
              Aoe_client.write rig.client ~lba ~count data;
              Array.iteri (fun i c -> Hashtbl.replace written (lba + i) c) data
            end
            else begin
              let data = Aoe_client.read rig.client ~lba ~count in
              Array.iteri
                (fun i c ->
                  let expect =
                    Option.value
                      (Hashtbl.find_opt written (lba + i))
                      ~default:(Content.Image (lba + i))
                  in
                  if not (Content.equal c expect) then ok := false)
                data
            end
          done);
      Sim.run rig.sim;
      !ok)

let test_jumbo_vs_standard_frames () =
  (* Jumbo frames: fewer, larger frames for the same payload. *)
  let count_frames mtu =
    let rig = make_rig ~mtu () in
    ignore (run_in rig (fun () -> Aoe_client.read rig.client ~lba:0 ~count:1024));
    Fabric.frames_sent rig.fab
  in
  let jumbo = count_frames 9000 and standard = count_frames 1500 in
  check_bool
    (Printf.sprintf "jumbo %d << standard %d" jumbo standard)
    true
    (jumbo * 5 < standard)

let test_vblade_thread_pool_throughput () =
  (* The §4.2 claim: single-threaded vblade bottlenecks large read
     streams; the thread pool restores throughput. *)
  let measure workers =
    let rig = make_rig ~workers ~timeout:(Time.ms 500) () in
    let finish =
      run_in rig (fun () ->
          (* Issue 64 x 512 KB reads back to back from 4 concurrent
             streams to keep the server busy. *)
          let done_count = ref 0 in
          let all_done = Bmcast_engine.Signal.Latch.create () in
          for s = 0 to 3 do
            Sim.spawn (fun () ->
                for i = 0 to 15 do
                  ignore
                    (Aoe_client.read rig.client
                       ~lba:((s * 16384) + (i * 1024))
                       ~count:1024
                      : Content.t array)
                done;
                incr done_count;
                if !done_count = 4 then Bmcast_engine.Signal.Latch.set all_done)
          done;
          Bmcast_engine.Signal.Latch.wait all_done;
          Sim.clock ())
    in
    float_of_int (64 * 1024 * 512) /. Time.to_float_s finish
  in
  let single = measure 1 and pooled = measure 8 in
  check_bool
    (Printf.sprintf "pooled %.1f MB/s > single %.1f MB/s" (pooled /. 1e6)
       (single /. 1e6))
    true
    (pooled > single *. 1.15)

(* --- Remote_block --- *)

let rb_rig protocol =
  let sim = Sim.create () in
  let fab = Fabric.create sim () in
  let disk = Disk.create sim small in
  Disk.fill_with_image disk;
  let server = Remote_block.create_server sim ~fabric:fab ~name:"server" ~disk protocol in
  let client = Remote_block.connect sim ~fabric:fab ~name:"client" server in
  (sim, disk, client)

let rb_run sim f =
  let out = ref None in
  Sim.spawn_at sim Time.zero (fun () -> out := Some (f ()));
  Sim.run sim;
  Option.get !out

let test_iscsi_read_write () =
  let sim, disk, client = rb_rig Remote_block.Iscsi in
  let data = rb_run sim (fun () ->
      let d = Remote_block.read client ~lba:1000 ~count:64 in
      Remote_block.write client ~lba:5000 ~count:4 (Content.data_sectors ~count:4);
      d)
  in
  check_bool "read data" true
    (Array.for_all2 Content.equal data (Content.image_sectors ~lba:1000 ~count:64));
  check_bool "write landed" true
    (match Disk.sector disk 5000 with Content.Data _ -> true | _ -> false)

let test_nfs_readahead_reduces_ops () =
  (* Sequential 4 KB reads: NFS read-ahead batches them into far fewer
     wire operations than iSCSI without read-ahead. *)
  let seq_read protocol =
    let sim, _, client = rb_rig protocol in
    rb_run sim (fun () ->
        for i = 0 to 127 do
          ignore (Remote_block.read client ~lba:(i * 8) ~count:8 : Content.t array)
        done;
        Remote_block.ops_issued client)
  in
  let nfs_ops = seq_read Remote_block.Nfs in
  let iscsi_ops = seq_read Remote_block.Iscsi in
  check_bool
    (Printf.sprintf "nfs %d ops << iscsi %d ops" nfs_ops iscsi_ops)
    true (nfs_ops * 4 < iscsi_ops)

let test_rb_large_read_chunks () =
  let sim, _, client = rb_rig Remote_block.Iscsi in
  let data = rb_run sim (fun () -> Remote_block.read client ~lba:0 ~count:2048) in
  check_int "length" 2048 (Array.length data);
  check_bool "content" true
    (Array.for_all2 Content.equal data (Content.image_sectors ~lba:0 ~count:2048))

let test_iscsi_rate_reasonable () =
  (* Bulk sequential reads in dd-sized (4 MB) requests should approach
     (but not exceed) GbE line rate; the paper measured ~100 MB/s for
     image copying. A single synchronous stream stays somewhat below
     line rate (image copying uses two, see Image_copy). *)
  let sim, _, client = rb_rig Remote_block.Iscsi in
  let elapsed = rb_run sim (fun () ->
      let t0 = Sim.clock () in
      for i = 0 to 31 do
        ignore (Remote_block.read client ~lba:(i * 8192) ~count:8192 : Content.t array)
      done;
      Time.diff (Sim.clock ()) t0)
  in
  let rate = float_of_int (128 * 1024 * 1024) /. Time.to_float_s elapsed /. 1e6 in
  check_bool (Printf.sprintf "rate %.1f MB/s in [70,125]" rate) true
    (rate > 70.0 && rate < 125.0)

(* --- gossip codec --- *)

module Gossip = Bmcast_proto.Gossip

let summary_of (chunks, held) =
  let s = Gossip.create ~chunks in
  List.iter (fun c -> Gossip.set s (c mod chunks)) held;
  s

let arb_summary_spec =
  QCheck.(
    pair (int_range 1 200) (small_list (int_bound 199))
    |> set_print (fun (chunks, held) ->
           Printf.sprintf "chunks=%d held=[%s]" chunks
             (String.concat ";" (List.map string_of_int held))))

let prop_gossip_wire_roundtrip =
  QCheck.Test.make ~name:"gossip encode/decode round-trips" ~count:200
    QCheck.(triple arb_summary_spec (int_bound 0xFFFF) (int_bound 1000))
    (fun (spec, origin, epoch) ->
      let m = { Gossip.origin; epoch; summary = summary_of spec } in
      let b = Gossip.encode m in
      Bytes.length b = Gossip.wire_size m
      &&
      let m' = Gossip.decode b in
      m'.Gossip.origin = origin
      && m'.Gossip.epoch = epoch
      && Gossip.equal m'.Gossip.summary m.Gossip.summary)

let prop_gossip_runs_canonical =
  QCheck.Test.make ~name:"gossip runs are canonical and invert" ~count:200
    arb_summary_spec (fun spec ->
      let s = summary_of spec in
      let rs = Gossip.runs s in
      (* maximal coalescing: non-empty, ascending, separated by gaps *)
      let rec canonical prev_end = function
        | [] -> true
        | (start, len) :: rest ->
          len >= 1 && start > prev_end && canonical (start + len) rest
      in
      canonical (-1) rs
      && List.fold_left (fun a (_, l) -> a + l) 0 rs = Gossip.cardinal s
      && Gossip.equal (Gossip.of_runs ~chunks:(Gossip.chunks s) rs) s)

let prop_gossip_merge_commutative =
  QCheck.Test.make ~name:"gossip merge commutes" ~count:200
    QCheck.(pair arb_summary_spec (small_list (int_bound 199)))
    (fun ((chunks, held_a), held_b) ->
      let a = summary_of (chunks, held_a)
      and b = summary_of (chunks, held_b) in
      Gossip.equal (Gossip.merge a b) (Gossip.merge b a))

let prop_gossip_merge_idempotent_associative =
  QCheck.Test.make ~name:"gossip merge idempotent + associative" ~count:200
    QCheck.(
      triple arb_summary_spec (small_list (int_bound 199))
        (small_list (int_bound 199)))
    (fun ((chunks, ha), hb, hc) ->
      let a = summary_of (chunks, ha)
      and b = summary_of (chunks, hb)
      and c = summary_of (chunks, hc) in
      Gossip.equal (Gossip.merge a a) a
      && Gossip.equal
           (Gossip.merge (Gossip.merge a b) c)
           (Gossip.merge a (Gossip.merge b c))
      && Gossip.cardinal (Gossip.merge a b) >= Gossip.cardinal a)

(* Hand-built wire images for the rejection paths. *)
let raw_gossip ~chunks rs =
  let put32 b off v =
    Bytes.set_uint8 b off ((v lsr 24) land 0xFF);
    Bytes.set_uint8 b (off + 1) ((v lsr 16) land 0xFF);
    Bytes.set_uint8 b (off + 2) ((v lsr 8) land 0xFF);
    Bytes.set_uint8 b (off + 3) (v land 0xFF)
  in
  let n = List.length rs in
  let b = Bytes.make (16 + (8 * n)) '\000' in
  Bytes.set_uint8 b 0 0xB7;
  Bytes.set_uint8 b 1 1;
  put32 b 10 chunks;
  Bytes.set_uint8 b 14 ((n lsr 8) land 0xFF);
  Bytes.set_uint8 b 15 (n land 0xFF);
  List.iteri
    (fun i (start, len) ->
      put32 b (16 + (8 * i)) start;
      put32 b (16 + (8 * i) + 4) len)
    rs;
  b

let test_gossip_decode_rejects () =
  let rejects label b =
    check_bool label true
      (try
         ignore (Gossip.decode b : Gossip.msg);
         false
       with Invalid_argument _ -> true)
  in
  (* the canonical image decodes *)
  ignore (Gossip.decode (raw_gossip ~chunks:10 [ (0, 2); (4, 3) ]) : Gossip.msg);
  rejects "short buffer" (Bytes.make 8 '\000');
  rejects "bad magic"
    (let b = raw_gossip ~chunks:10 [ (0, 2) ] in
     Bytes.set_uint8 b 0 0x7B;
     b);
  rejects "bad version"
    (let b = raw_gossip ~chunks:10 [ (0, 2) ] in
     Bytes.set_uint8 b 1 9;
     b);
  rejects "empty run" (raw_gossip ~chunks:10 [ (0, 0) ]);
  rejects "adjacent runs not coalesced" (raw_gossip ~chunks:10 [ (0, 2); (2, 3) ]);
  rejects "overlapping runs" (raw_gossip ~chunks:10 [ (0, 4); (2, 3) ]);
  rejects "descending runs" (raw_gossip ~chunks:10 [ (5, 2); (0, 2) ]);
  rejects "run past end" (raw_gossip ~chunks:10 [ (8, 4) ]);
  rejects "truncated payload"
    (let b = raw_gossip ~chunks:10 [ (0, 2) ] in
     Bytes.sub b 0 (Bytes.length b - 4))

(* --- multicast carousel + client subscription --- *)

type mrig = {
  msim : Sim.t;
  mfab : Fabric.t;
  mvblade : Vblade.t;
  mclient : Aoe_client.t;
  mport : Fabric.port;
  mgroup : int;
}

let make_mcast_rig ?(mtu = 9000) () =
  let sim = Sim.create () in
  let fab = Fabric.create sim ~mtu () in
  let disk = Disk.create sim small in
  Disk.fill_with_image disk;
  let vblade = Vblade.create sim ~fabric:fab ~name:"vblade" ~disk () in
  let client_ref = ref None in
  let port =
    Fabric.attach fab ~name:"client" (fun pkt ->
        match pkt.Bmcast_net.Packet.payload with
        | Aoe.Frame f -> Option.iter (fun c -> Aoe_client.on_frame c f) !client_ref
        | _ -> ())
  in
  let send hdr data = Aoe.send port ~dst:(Vblade.port_id vblade) hdr data in
  let client = Aoe_client.create sim ~send ~mtu () in
  client_ref := Some client;
  let group = Fabric.mcast_group fab in
  Fabric.mcast_join port ~group;
  { msim = sim; mfab = fab; mvblade = vblade; mclient = client;
    mport = port; mgroup = group }

let test_mcast_carousel_reaches_subscriber () =
  let r = make_mcast_rig () in
  let count = 256 in
  let seen = Array.make count 0 in
  let wrong = ref 0 in
  Aoe_client.subscribe_mcast r.mclient (fun ~lba ~count:n data ->
      for i = 0 to n - 1 do
        if lba + i < count then begin
          seen.(lba + i) <- seen.(lba + i) + 1;
          if not (Content.equal data.(i) (Content.image (lba + i))) then
            incr wrong
        end
      done);
  Vblade.multicast r.mvblade ~group:r.mgroup ~lba:0 ~count ~passes:2 ();
  Sim.run r.msim;
  check_bool "frames observed" true (Aoe_client.mcast_frames r.mclient > 0);
  Array.iteri
    (fun lba n -> check_int (Printf.sprintf "sector %d seen twice" lba) 2 n)
    seen;
  check_int "payload matches the image" 0 !wrong;
  check_int "tx accounting" (2 * count * 512)
    (Vblade.mcast_bytes_sent r.mvblade)

let test_mcast_tag_reserved_for_carousel () =
  (* Unsolicited tag-0 frames must not disturb the pending table: a
     normal read issued while the carousel streams still completes and
     returns the right data. *)
  let r = make_mcast_rig () in
  Aoe_client.subscribe_mcast r.mclient (fun ~lba:_ ~count:_ _ -> ());
  Vblade.multicast r.mvblade ~group:r.mgroup ~lba:0 ~count:512 ~passes:1 ();
  let out = ref None in
  Sim.spawn_at r.msim (Sim.now r.msim) (fun () ->
      Sim.sleep (Time.ms 1);
      out := Some (Aoe_client.read r.mclient ~lba:9000 ~count:16));
  Sim.run r.msim;
  (match !out with
  | None -> Alcotest.fail "read never completed"
  | Some data ->
    Alcotest.(check (array content_testable))
      "read correct under carousel" (Content.image_sectors ~lba:9000 ~count:16)
      data);
  check_bool "carousel frames flowed" true (Aoe_client.mcast_frames r.mclient > 0)

let test_mcast_unsubscribed_client_ignores () =
  let r = make_mcast_rig () in
  (* No subscription: the frames arrive at the port and are dropped
     without touching the client. *)
  Vblade.multicast r.mvblade ~group:r.mgroup ~lba:0 ~count:64 ~passes:1 ();
  Sim.run r.msim;
  check_int "nothing counted" 0 (Aoe_client.mcast_frames r.mclient);
  check_bool "carousel still transmitted" true
    (Vblade.mcast_frames_sent r.mvblade > 0)

let test_mcast_crash_suppresses_pass () =
  (* The epoch guard: a crash mid-pass silences the carousel; after
     restart the next pass streams in full. *)
  let r = make_mcast_rig () in
  let got = ref 0 in
  Aoe_client.subscribe_mcast r.mclient (fun ~lba:_ ~count:n _ -> got := !got + n);
  let count = 4096 in
  Vblade.multicast r.mvblade ~group:r.mgroup ~lba:0 ~count ~passes:2
    ~gap:(Time.ms 10) ();
  (* per_sector_cpu puts a full pass well past 1 ms: crash mid-stream. *)
  Sim.schedule r.msim (Time.ms 1) (fun () -> Vblade.crash r.mvblade);
  Sim.schedule r.msim (Time.ms 50) (fun () -> Vblade.restart r.mvblade);
  Sim.run r.msim;
  let full = 2 * count in
  check_bool "first pass truncated" true (!got < full);
  check_bool "second pass streamed" true (!got >= count)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "proto"
    [ ( "aoe-codec",
        [ tc "roundtrip" `Quick test_aoe_roundtrip;
          QCheck_alcotest.to_alcotest prop_aoe_roundtrip;
          tc "rejects out of range" `Quick test_aoe_rejects_out_of_range;
          tc "rejects short buffer" `Quick test_aoe_rejects_short_buffer;
          tc "max sectors" `Quick test_aoe_max_sectors;
          tc "wire size" `Quick test_aoe_wire_size ] );
      ( "aoe-client",
        [ tc "query capacity" `Quick test_query_capacity;
          tc "read small" `Quick test_client_read_small;
          tc "read large fragments" `Quick test_client_read_large_fragments;
          tc "write roundtrip" `Quick test_client_write_roundtrip;
          tc "recovers from loss" `Quick test_client_recovers_from_loss;
          tc "timeout raises" `Quick test_client_timeout_raises;
          tc "target rejects out of range" `Quick test_target_rejects_out_of_range;
          tc "duplicate fragments harmless" `Quick test_client_duplicate_fragments_harmless;
          QCheck_alcotest.to_alcotest prop_client_correct_under_loss;
          tc "jumbo vs standard" `Quick test_jumbo_vs_standard_frames ] );
      ( "vblade",
        [ tc "thread pool throughput" `Quick test_vblade_thread_pool_throughput ] );
      ( "gossip",
        [ QCheck_alcotest.to_alcotest prop_gossip_wire_roundtrip;
          QCheck_alcotest.to_alcotest prop_gossip_runs_canonical;
          QCheck_alcotest.to_alcotest prop_gossip_merge_commutative;
          QCheck_alcotest.to_alcotest prop_gossip_merge_idempotent_associative;
          tc "decode rejects malformed" `Quick test_gossip_decode_rejects ] );
      ( "mcast",
        [ tc "carousel reaches subscriber" `Quick
            test_mcast_carousel_reaches_subscriber;
          tc "tag 0 reserved for carousel" `Quick
            test_mcast_tag_reserved_for_carousel;
          tc "unsubscribed client ignores" `Quick
            test_mcast_unsubscribed_client_ignores;
          tc "crash suppresses pass" `Quick test_mcast_crash_suppresses_pass ] );
      ( "remote-block",
        [ tc "iscsi read write" `Quick test_iscsi_read_write;
          tc "nfs readahead reduces ops" `Quick test_nfs_readahead_reduces_ops;
          tc "large read chunks" `Quick test_rb_large_read_chunks;
          tc "iscsi rate reasonable" `Quick test_iscsi_rate_reasonable ] ) ]
